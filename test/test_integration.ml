(* Cross-module integration checks: rendered artefacts (Pretty/Dot)
   per application, baseline metrics across the whole model zoo,
   discovery over generated domains, and assorted boundary behaviour
   that no single-module suite pins down. *)

module P = Pfsm.Predicate
module V = Pfsm.Value

let contains ~needle h =
  let nh = String.length h and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub h i nn = needle || at (i + 1)) in
  nn > 0 && at 0

let model_zoo () =
  [ ("sendmail", Apps.Sendmail.model (Apps.Sendmail.setup ()),
     Apps.Sendmail.exploit_scenario (Apps.Sendmail.setup ()));
    ("nullhttpd",
     (let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
      Apps.Nullhttpd.model app),
     (let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
      let cl, body = Exploit.Attack.nullhttpd_6255 app in
      Apps.Nullhttpd.scenario ~content_len:cl ~body));
    ("xterm", Apps.Xterm.model (), Apps.Xterm.race_scenario);
    ("rwall", Apps.Rwall.model (Apps.Rwall.setup ()), Apps.Rwall.attack_scenario);
    ("iis", Apps.Iis.model (Apps.Iis.setup ()),
     Apps.Iis.scenario ~path:Exploit.Attack.iis_path);
    ("ghttpd",
     (let app = Apps.Ghttpd.setup () in
      Apps.Ghttpd.model app),
     (let app = Apps.Ghttpd.setup () in
      Apps.Ghttpd.scenario ~request:(Exploit.Attack.ghttpd_request app)));
    ("rpcstatd",
     (let app = Apps.Rpc_statd.setup () in
      Apps.Rpc_statd.model app),
     (let app = Apps.Rpc_statd.setup () in
      Apps.Rpc_statd.scenario ~filename:(Exploit.Attack.rpc_statd_filename app))) ]

(* ---- rendered artefacts -------------------------------------------- *)

let test_pretty_mentions_every_pfsm () =
  List.iter
    (fun (name, model, _) ->
       let text = Pfsm.Pretty.model_to_string model in
       List.iter
         (fun (op, pfsm) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s/%s rendered" name op pfsm.Pfsm.Primitive.name)
              true
              (contains ~needle:pfsm.Pfsm.Primitive.name text))
         (Pfsm.Model.all_pfsms model))
    (model_zoo ())

let test_pretty_marks_missing_checks () =
  List.iter
    (fun (name, model, _) ->
       let text = Pfsm.Pretty.model_to_string model in
       let has_missing =
         List.exists
           (fun (_, p) -> Pfsm.Primitive.missing_check p)
           (Pfsm.Model.all_pfsms model)
       in
       Alcotest.(check bool) (name ^ " '?' marker") has_missing
         (contains ~needle:"no check in implementation" text))
    (model_zoo ())

let test_dot_contains_operations () =
  List.iter
    (fun (name, model, _) ->
       let dot = Pfsm.Dot.of_model model in
       Alcotest.(check bool) (name ^ " digraph") true (contains ~needle:"digraph" dot);
       List.iteri
         (fun i _ ->
            Alcotest.(check bool)
              (Printf.sprintf "%s cluster_op%d" name i)
              true
              (contains ~needle:(Printf.sprintf "cluster_op%d" i) dot))
         (Pfsm.Model.operations model);
       (* vulnerable models must show at least one hidden edge *)
       Alcotest.(check bool) (name ^ " hidden edge") true
         (contains ~needle:"IMPL_ACPT" dot))
    (model_zoo ())

let test_trace_pp_reports_exploit () =
  List.iter
    (fun (name, model, scenario) ->
       let trace = Pfsm.Model.run model ~env:scenario in
       let text = Format.asprintf "%a" Pfsm.Trace.pp trace in
       Alcotest.(check bool) (name ^ " EXPLOITED in trace text") true
         (contains ~needle:"EXPLOITED" text))
    (model_zoo ())

(* ---- baselines across the zoo -------------------------------------- *)

let test_metf_finite_everywhere_vulnerable () =
  List.iter
    (fun (name, model, scenario) ->
       match Baselines.Markov.metf_of_model ~retry:0.25 model ~scenario with
       | Some e ->
           let hidden =
             Pfsm.Trace.hidden_count (Pfsm.Model.run model ~env:scenario)
           in
           let passthrough =
             List.length (Pfsm.Model.all_pfsms model) - hidden
           in
           (* k hidden obstacles at 1/p plus the free steps. *)
           Alcotest.(check (float 1e-6)) (name ^ " METF closed form")
             (float_of_int passthrough +. (float_of_int hidden /. 0.25))
             e
       | None -> Alcotest.fail (name ^ ": METF infinite on the exploit scenario"))
    (model_zoo ())

let test_attack_graph_zoo () =
  List.iter
    (fun (name, model, scenario) ->
       let report = Pfsm.Analysis.analyze model ~scenarios:[ scenario ] in
       let g = Baselines.Attack_graph.of_report report in
       Alcotest.(check bool) (name ^ " reachable") true
         (Baselines.Attack_graph.exploit_reachable g);
       Alcotest.(check bool) (name ^ " lemma") true
         (Baselines.Attack_graph.agrees_with_lemma g))
    (model_zoo ())

(* ---- discovery over generated domains ------------------------------ *)

let test_discovery_rwall_scenario_product () =
  let model = Apps.Rwall.model (Apps.Rwall.setup ()) in
  let scenarios =
    Discovery.Domain_gen.scenario_product
      [ ("user.is_root", [ V.Bool true; V.Bool false ]);
        ("target.kind", [ V.Str "terminal"; V.Str "regular file" ]) ]
  in
  Alcotest.(check int) "4 scenarios" 4 (List.length scenarios);
  let hits = (Discovery.Search.hidden_paths model ~scenarios).Discovery.Search.hits in
  let names =
    List.sort_uniq compare
      (List.map (fun h -> h.Discovery.Search.pfsm.Pfsm.Primitive.name) hits)
  in
  Alcotest.(check (list string)) "both pFSMs vulnerable" [ "pFSM1"; "pFSM2" ] names

let test_witness_nullhttpd_length_domain () =
  let app = Apps.Nullhttpd.setup () in
  let model = Apps.Nullhttpd.model app in
  let pfsm2 =
    match Pfsm.Model.all_pfsms model with
    | [ _; (_, p); _; _ ] -> p
    | _ -> Alcotest.fail "unexpected model shape"
  in
  let env =
    Pfsm.Env.empty |> Pfsm.Env.add_int "buffer.size" 1024
  in
  let candidates =
    List.map
      (fun s -> { Pfsm.Witness.env; obj = V.Str s })
      (Discovery.Domain_gen.length_strings ~seed:5 ~n:10 ~around:1024)
  in
  let witnesses = Pfsm.Witness.hidden_witnesses pfsm2 ~candidates in
  Alcotest.(check bool) "found oversized witnesses" true (witnesses <> []);
  List.iter
    (fun (w : Pfsm.Witness.candidate) ->
       Alcotest.(check bool) "witness longer than the buffer" true
         (String.length (V.as_str w.Pfsm.Witness.obj) > 1024))
    witnesses

(* ---- boundary behaviour -------------------------------------------- *)

let test_process_aslr_deterministic () =
  let a = Apps.Ghttpd.setup ~aslr_seed:9 () in
  let b = Apps.Ghttpd.setup ~aslr_seed:9 () in
  Alcotest.(check int) "same seed, same layout" (Apps.Ghttpd.expected_buf_addr a)
    (Apps.Ghttpd.expected_buf_addr b);
  let c = Apps.Ghttpd.setup ~aslr_seed:10 () in
  Alcotest.(check bool) "different seed, different layout" true
    (Apps.Ghttpd.expected_buf_addr a <> Apps.Ghttpd.expected_buf_addr c)

let test_heap_calloc_count_overflow () =
  let mem = Machine.Memory.create ~base:0x1000 ~size:0x10000 in
  let heap = Machine.Heap.create mem ~base:0x1000 ~size:0x8000 ~safe_unlink:false in
  (* 2^31 elements of 2 bytes wraps to 0 in 32-bit arithmetic. *)
  Alcotest.(check (option int)) "wrapped product rejected" None
    (Machine.Heap.calloc heap ~count:0x4000_0000 ~size:4)

let test_strcodec_percent_null_byte () =
  Alcotest.(check string) "%00 decodes to NUL" "\000" (Pfsm.Strcodec.percent_decode "%00");
  Alcotest.(check (list string)) "%hn reported as %n" [ "%n" ]
    (Pfsm.Strcodec.format_directives "%hn")

let test_payload_pattern_locatable () =
  (* Every aligned 4-byte window in the cyclic pattern is unique --
     that's what makes offsets recoverable. *)
  let p = Machine.Payload.pattern 256 in
  let windows = List.init 63 (fun i -> String.sub p (i * 4) 4) in
  Alcotest.(check int) "unique windows"
    (List.length windows)
    (List.length (List.sort_uniq compare windows))

let test_env_pp_lists_bindings () =
  let env = Pfsm.Env.empty |> Pfsm.Env.add_int "x" 1 |> Pfsm.Env.add_str "s" "v" in
  let text = Format.asprintf "%a" Pfsm.Env.pp env in
  Alcotest.(check bool) "x" true (contains ~needle:"x = 1" text);
  Alcotest.(check bool) "s" true (contains ~needle:"s = \"v\"" text)

let test_driver_row_counts_per_app () =
  let count rows = List.length rows in
  Alcotest.(check int) "sendmail" 5 (count (Exploit.Driver.sendmail_rows ()));
  Alcotest.(check int) "nullhttpd" 7 (count (Exploit.Driver.nullhttpd_rows ()));
  Alcotest.(check int) "xterm" 3 (count (Exploit.Driver.xterm_rows ()));
  Alcotest.(check int) "rwall" 4 (count (Exploit.Driver.rwall_rows ()));
  Alcotest.(check int) "iis" 4 (count (Exploit.Driver.iis_rows ()));
  Alcotest.(check int) "ghttpd" 5 (count (Exploit.Driver.ghttpd_rows ()));
  Alcotest.(check int) "rpcstatd" 6 (count (Exploit.Driver.rpc_statd_rows ()))

let test_sendmail_every_negative_index_unsafe () =
  (* Sampled sweep: every spec-violating index either corrupts memory,
     crashes, or lands the arbitrary write -- never a clean return. *)
  let app () = Apps.Sendmail.setup () in
  List.iter
    (fun x ->
       let o = Apps.Sendmail.tTflag (app ()) ~str_x:(string_of_int x) ~str_i:"1" in
       Alcotest.(check bool)
         (Printf.sprintf "x=%d compromised" x)
         true
         (Apps.Outcome.is_compromised o))
    [ -1; -2; -100; -1024; -4096; -100000 ]

let test_iis_decode_equivalents () =
  (* Different encodings of the same traversal all behave per their
     decode depth. *)
  let app = Apps.Iis.setup () in
  List.iter
    (fun (path, expect_blocked) ->
       let o = Apps.Iis.handle_request app path in
       Alcotest.(check bool) path expect_blocked
         (Apps.Outcome.verdict o = Apps.Outcome.Blocked))
    [ ("../x", true);            (* caught raw *)
      ("%2e%2e/x", true);        (* one decode makes ../ -- caught *)
      ("..%2fx", true);          (* one decode makes ../ -- caught *)
      ("..%252fx", false) ]      (* needs the second decode -- missed *)

let () =
  Alcotest.run "integration"
    [ ("rendered artefacts",
       [ Alcotest.test_case "pretty mentions pFSMs" `Quick
           test_pretty_mentions_every_pfsm;
         Alcotest.test_case "pretty marks missing checks" `Quick
           test_pretty_marks_missing_checks;
         Alcotest.test_case "dot per app" `Quick test_dot_contains_operations;
         Alcotest.test_case "trace pp" `Quick test_trace_pp_reports_exploit ]);
      ("baseline zoo",
       [ Alcotest.test_case "METF closed form everywhere" `Quick
           test_metf_finite_everywhere_vulnerable;
         Alcotest.test_case "attack graphs everywhere" `Quick test_attack_graph_zoo ]);
      ("discovery domains",
       [ Alcotest.test_case "rwall scenario product" `Quick
           test_discovery_rwall_scenario_product;
         Alcotest.test_case "nullhttpd length domain" `Quick
           test_witness_nullhttpd_length_domain ]);
      ("boundaries",
       [ Alcotest.test_case "aslr deterministic" `Quick test_process_aslr_deterministic;
         Alcotest.test_case "calloc count overflow" `Quick
           test_heap_calloc_count_overflow;
         Alcotest.test_case "strcodec NUL / %hn" `Quick test_strcodec_percent_null_byte;
         Alcotest.test_case "payload pattern" `Quick test_payload_pattern_locatable;
         Alcotest.test_case "env pp" `Quick test_env_pp_lists_bindings;
         Alcotest.test_case "driver row counts" `Quick test_driver_row_counts_per_app;
         Alcotest.test_case "negative indices unsafe" `Quick
           test_sendmail_every_negative_index_unsafe;
         Alcotest.test_case "iis decode equivalents" `Quick
           test_iis_decode_equivalents ]) ]
