(* Tests for the discovery engine: candidate generation, model-level
   hidden-path search, and the differential rediscovery of #6255. *)

module V = Pfsm.Value
module E = Pfsm.Env

(* ---- domain generation ------------------------------------------- *)

let test_boundary_ints_cover_the_classics () =
  List.iter
    (fun v ->
       Alcotest.(check bool) (string_of_int v) true
         (List.mem v Discovery.Domain_gen.boundary_ints))
    [ 0; -1; 100; 101; 0x7fffffff; 0x80000000; -800 ]

let test_int_candidates_deterministic () =
  Alcotest.(check (list int)) "seeded"
    (Discovery.Domain_gen.int_candidates ~seed:5 ~n:10)
    (Discovery.Domain_gen.int_candidates ~seed:5 ~n:10)

let test_length_strings_cluster () =
  let ss = Discovery.Domain_gen.length_strings ~seed:1 ~n:5 ~around:200 in
  List.iter
    (fun len ->
       Alcotest.(check bool) (string_of_int len) true
         (List.exists (fun s -> String.length s = len) ss))
    [ 0; 199; 200; 201 ]

let test_traversal_and_format_strings () =
  Alcotest.(check bool) "..%252f present" true
    (List.exists
       (fun s -> Pfsm.Strcodec.percent_decode_n 2 s <> Pfsm.Strcodec.percent_decode s)
       Discovery.Domain_gen.traversal_strings);
  Alcotest.(check bool) "%n present" true
    (List.exists Pfsm.Strcodec.contains_format_directive
       Discovery.Domain_gen.format_strings)

let test_scenario_product () =
  let envs =
    Discovery.Domain_gen.scenario_product
      [ ("a", [ V.Int 1; V.Int 2 ]); ("b", [ V.Str "x"; V.Str "y"; V.Str "z" ]) ]
  in
  Alcotest.(check int) "2 x 3" 6 (List.length envs);
  Alcotest.(check bool) "all complete" true
    (List.for_all (fun env -> E.mem "a" env && E.mem "b" env) envs)

(* ---- model-level search ------------------------------------------ *)

let test_search_finds_sendmail_hidden_paths () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in
  (* Generated scenarios: decimal strings around the int32 boundary. *)
  let scenarios =
    List.map
      (fun s -> Apps.Sendmail.scenario ~str_x:s ~str_i:"7")
      (Discovery.Domain_gen.int_strings ~seed:9 ~n:20)
  in
  let hits = (Discovery.Search.hidden_paths model ~scenarios).Discovery.Search.hits in
  let sites =
    List.sort_uniq compare
      (List.map (fun h -> h.Discovery.Search.pfsm.Pfsm.Primitive.name) hits)
  in
  Alcotest.(check bool) "pFSM1 found" true (List.mem "pFSM1" sites);
  Alcotest.(check bool) "pFSM2 found" true (List.mem "pFSM2" sites)

let test_search_clean_on_secured_model () =
  let app = Apps.Sendmail.setup () in
  let model = Pfsm.Model.secure_all (Apps.Sendmail.model app) in
  let scenarios =
    List.map
      (fun s -> Apps.Sendmail.scenario ~str_x:s ~str_i:"7")
      (Discovery.Domain_gen.int_strings ~seed:9 ~n:20)
  in
  Alcotest.(check int) "no hits" 0
    (List.length (Discovery.Search.hidden_paths model ~scenarios).Discovery.Search.hits)

let test_search_iis_traversal_domain () =
  let app = Apps.Iis.setup () in
  let model = Apps.Iis.model app in
  let scenarios =
    List.map (fun p -> Apps.Iis.scenario ~path:p) Discovery.Domain_gen.traversal_strings
  in
  let findings = Discovery.Search.discover model ~scenarios in
  Alcotest.(check bool) "the double-decode hole found" true (List.length findings >= 1);
  let f = List.hd findings in
  Alcotest.(check bool) "finding names the predicate" true
    (String.length f.Discovery.Finding.violated_predicate > 0)

(* ---- differential rediscovery of #6255 --------------------------- *)

let test_rediscover_6255 () =
  match Discovery.Differential.rediscover_6255 () with
  | Some f ->
      Alcotest.(check string) "against 0.5.1" "Null HTTPD 0.5.1" f.Discovery.Finding.app;
      Alcotest.(check bool) "critical" true
        (f.Discovery.Finding.severity = Discovery.Finding.Critical)
  | None -> Alcotest.fail "#6255 not rediscovered"

let test_sweep_divergences_only_above_buffer () =
  let cases =
    Discovery.Differential.nullhttpd_sweep ~config:Apps.Nullhttpd.v0_5_1 ()
  in
  Alcotest.(check bool) "sweep is non-trivial" true (List.length cases >= 20);
  List.iter
    (fun c ->
       if c.Discovery.Differential.spec_holds then
         Alcotest.(check bool)
           (c.Discovery.Differential.input_desc ^ " spec-ok never diverges")
           false c.Discovery.Differential.divergent)
    cases;
  Alcotest.(check bool) "at least one divergence" true
    (List.exists (fun c -> c.Discovery.Differential.divergent) cases)

let test_confirm_fix () =
  Alcotest.(check bool) "fixed build has no divergence" true
    (Discovery.Differential.confirm_fix ())

let test_v0_5_diverges_even_more () =
  (* v0.5 also accepts negative contentLen: the sweep must flag it. *)
  let cases =
    Discovery.Differential.nullhttpd_sweep ~config:Apps.Nullhttpd.vulnerable_v0_5 ()
  in
  Alcotest.(check bool) "divergences found" true
    (List.exists (fun c -> c.Discovery.Differential.divergent) cases)

let test_finding_report_text () =
  match Discovery.Differential.rediscover_6255 () with
  | None -> Alcotest.fail "no finding"
  | Some f ->
      let text = Discovery.Finding.to_report f in
      List.iter
        (fun needle ->
           let contains =
             let nh = String.length text and nn = String.length needle in
             let rec at i = i + nn <= nh && (String.sub text i nn = needle || at (i + 1)) in
             at 0
           in
           Alcotest.(check bool) ("report mentions " ^ needle) true contains)
        [ "FINDING"; "critical"; "recv"; "length(input) <= size(PostData)" ]

let () =
  Alcotest.run "discovery"
    [ ("domain_gen",
       [ Alcotest.test_case "boundary ints" `Quick test_boundary_ints_cover_the_classics;
         Alcotest.test_case "deterministic" `Quick test_int_candidates_deterministic;
         Alcotest.test_case "length clusters" `Quick test_length_strings_cluster;
         Alcotest.test_case "traversal/format" `Quick test_traversal_and_format_strings;
         Alcotest.test_case "scenario product" `Quick test_scenario_product ]);
      ("search",
       [ Alcotest.test_case "sendmail hidden paths" `Quick
           test_search_finds_sendmail_hidden_paths;
         Alcotest.test_case "secured model clean" `Quick
           test_search_clean_on_secured_model;
         Alcotest.test_case "iis traversal domain" `Quick
           test_search_iis_traversal_domain ]);
      ("differential",
       [ Alcotest.test_case "rediscover #6255" `Quick test_rediscover_6255;
         Alcotest.test_case "divergence only above buffer" `Quick
           test_sweep_divergences_only_above_buffer;
         Alcotest.test_case "confirm fix" `Quick test_confirm_fix;
         Alcotest.test_case "v0.5 diverges" `Quick test_v0_5_diverges_even_more;
         Alcotest.test_case "report text" `Quick test_finding_report_text ]) ]
