(* The observability layer: deterministic traces (byte-identical at
   every job count), metrics whose snapshot is the fold of the
   per-domain cells, well-parenthesized span nesting, the bounded
   model-digest cache, per-pFSM transition coverage, and the chaos
   harness's typed ingest-failure leg. *)

let with_jobs j f =
  Par.set_jobs j;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

let job_counts = [ 1; 2; 4 ]

(* A workload with orchestrator spans, nested item spans and instants,
   fanned out over the pool. *)
let traced_jsonl xs =
  Obs.Trace.start ();
  let out =
    Obs.Span.with_span ~cat:"test" "workload" @@ fun () ->
    Par.map_list ~label:"obs-test"
      (fun x ->
         Obs.Span.with_span ~cat:"test"
           ~args:[ ("x", string_of_int x) ]
           "outer"
           (fun () ->
              Obs.Span.with_span ~cat:"test" "inner" (fun () ->
                  Obs.Span.instant "tick";
                  x * x)))
      xs
  in
  let jsonl = Obs.Trace.to_jsonl (Obs.Trace.drain ()) in
  (out, jsonl)

(* ---- trace byte-identity across job counts ------------------------ *)

let prop_trace_identity =
  let open QCheck in
  Test.make ~name:"trace JSONL is byte-identical at -j 1/2/4" ~count:30
    (small_list small_int)
    (fun xs ->
       let reference = with_jobs 1 (fun () -> traced_jsonl xs) in
       List.for_all
         (fun j -> with_jobs j (fun () -> traced_jsonl xs) = reference)
         job_counts)

let test_chaos_trace_identity () =
  (* the flagship contract: a traced chaos run serializes identically
     at every -j *)
  let render () =
    Obs.Trace.start ();
    let report = Chaos.run ~plans:Fault.Catalog.smoke ~seed:7 () in
    let jsonl = Obs.Trace.to_jsonl (Obs.Trace.drain ()) in
    (Chaos.to_json report, jsonl)
  in
  let reference = with_jobs 1 render in
  List.iter
    (fun j ->
       let got = with_jobs j render in
       Alcotest.(check string)
         (Printf.sprintf "chaos report at -j %d" j)
         (fst reference) (fst got);
       Alcotest.(check string)
         (Printf.sprintf "chaos trace at -j %d" j)
         (snd reference) (snd got))
    job_counts

(* ---- span nesting ------------------------------------------------- *)

let test_span_nesting () =
  (* every item's span stream, keyed by (epoch, slot), obeys stack
     discipline: depth never goes negative, every E closes the B on
     top of the stack, and the stream ends balanced *)
  let events =
    with_jobs 4 (fun () ->
        Obs.Trace.start ();
        ignore
          (Par.map_list ~label:"nesting"
             (fun x ->
                Obs.Span.with_span "outer" (fun () ->
                    Obs.Span.with_span "inner" (fun () ->
                        Obs.Span.instant "tick";
                        x)))
             (List.init 20 Fun.id));
        Obs.Trace.drain ())
  in
  Alcotest.(check bool) "trace non-empty" true (events <> []);
  let streams = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.Trace.event) ->
       if e.slot >= 0 then
         let key = (e.epoch, e.slot) in
         Hashtbl.replace streams key
           (e :: (Option.value ~default:[] (Hashtbl.find_opt streams key))))
    events;
  Hashtbl.iter
    (fun (epoch, slot) rev_stream ->
       let stack = ref [] in
       List.iter
         (fun (e : Obs.Trace.event) ->
            match e.ph with
            | Obs.Trace.B -> stack := e.name :: !stack
            | Obs.Trace.E -> (
                match !stack with
                | top :: rest ->
                    Alcotest.(check string)
                      (Printf.sprintf "E closes top at (%d,%d)" epoch slot)
                      top e.name;
                    stack := rest
                | [] ->
                    Alcotest.failf "unmatched E %S at (%d,%d)" e.name epoch
                      slot)
            | Obs.Trace.I -> ())
         (List.rev rev_stream);
       Alcotest.(check (list string))
         (Printf.sprintf "balanced at (%d,%d)" epoch slot)
         [] !stack)
    streams

let test_seq_strictly_increasing () =
  let _, jsonl = with_jobs 2 (fun () -> traced_jsonl (List.init 10 Fun.id)) in
  (* vt in the serialized JSONL is the merged rank: line i carries
     "vt":i *)
  List.iteri
    (fun i line ->
       let needle = Printf.sprintf "\"vt\":%d," i in
       let ok =
         let nh = String.length line and nn = String.length needle in
         let rec at k = k + nn <= nh && (String.sub line k nn = needle || at (k + 1)) in
         at 0
       in
       Alcotest.(check bool) (Printf.sprintf "line %d carries its rank" i) true ok)
    (String.split_on_char '\n' (String.trim jsonl))

(* ---- metrics: snapshot = fold of per-domain cells ----------------- *)

let m_test = Obs.Metrics.counter "test.obs.counter"

let prop_counter_fold =
  let open QCheck in
  Test.make ~name:"counter total = sum of per-domain cells" ~count:30
    (pair (int_range 0 200) (int_range 1 4))
    (fun (n, j) ->
       let before = Obs.Metrics.counter_value m_test in
       with_jobs j (fun () ->
           ignore
             (Par.map (fun () -> Obs.Metrics.incr m_test) (Array.make n ())));
       let total = Obs.Metrics.counter_value m_test in
       total = before + n
       && total
          = List.fold_left ( + ) 0 (Obs.Metrics.per_domain_counts m_test))

let test_snapshot_reports_counter () =
  Obs.Metrics.incr m_test;
  let snap = Obs.Metrics.snapshot () in
  match List.assoc_opt "test.obs.counter" snap with
  | Some (Obs.Metrics.Counter_v v) ->
      Alcotest.(check int) "snapshot value" (Obs.Metrics.counter_value m_test) v
  | _ -> Alcotest.fail "counter missing from snapshot"

let test_registration_idempotent () =
  let a = Obs.Metrics.counter "test.obs.idem" in
  let b = Obs.Metrics.counter "test.obs.idem" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr b;
  Alcotest.(check int) "one metric behind both handles"
    (Obs.Metrics.counter_value a) (Obs.Metrics.counter_value b);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Obs.Metrics: \"test.obs.idem\" already registered with another kind")
    (fun () -> ignore (Obs.Metrics.gauge "test.obs.idem"))

(* ---- bounded model-digest cache ----------------------------------- *)

let test_digest_cache_bounded () =
  let env = Apps.Iis.scenario ~path:Apps.Iis.attack_path in
  let before = Pfsm.Analysis.digest_cache_stats () in
  (* every freshly built model is a distinct physical key; overfilling
     the ring by 8 must evict, never grow (the unbounded assoc list
     this replaces retained all of them) *)
  for _ = 1 to before.Pfsm.Analysis.capacity + 8 do
    let model = Apps.Iis.model (Apps.Iis.setup ()) in
    ignore (Pfsm.Analysis.run_memo model ~env)
  done;
  let s = Pfsm.Analysis.digest_cache_stats () in
  Alcotest.(check bool) "entries <= capacity" true
    (s.Pfsm.Analysis.entries <= s.Pfsm.Analysis.capacity);
  Alcotest.(check bool) "evictions counted" true
    (s.Pfsm.Analysis.evictions > before.Pfsm.Analysis.evictions)

(* ---- per-pFSM transition coverage --------------------------------- *)

let iis_report () =
  let app = Apps.Iis.setup () in
  let model = Apps.Iis.model app in
  let scenarios =
    [ Apps.Iis.scenario ~path:Apps.Iis.attack_path;
      Apps.Iis.scenario ~path:Apps.Iis.benign_path ]
  in
  Pfsm.Analysis.analyze model ~scenarios

let test_coverage_of_report () =
  let report = iis_report () in
  let cov = Pfsm.Coverage.of_report report in
  Alcotest.(check int) "one cell per pFSM"
    (List.length (Pfsm.Model.all_pfsms report.Pfsm.Analysis.model))
    (List.length cov.Pfsm.Coverage.cells);
  (* conservation: the cells count exactly the transitions the traces
     took, no more, no less *)
  let in_cells =
    List.fold_left
      (fun acc (c : Pfsm.Coverage.cell) ->
         acc + c.spec_acpt + c.spec_rej + c.impl_rej + c.impl_acpt)
      0 cov.Pfsm.Coverage.cells
  in
  let in_traces =
    List.fold_left
      (fun acc (_env, trace) ->
         List.fold_left
           (fun a (s : Pfsm.Trace.step) ->
              a + List.length s.verdict.Pfsm.Primitive.path)
           acc trace.Pfsm.Trace.steps)
      0 report.Pfsm.Analysis.traces
  in
  Alcotest.(check int) "transition counts conserved" in_traces in_cells;
  Alcotest.(check bool) "exercised <= total" true
    (Pfsm.Coverage.edges_exercised cov <= Pfsm.Coverage.edges_total cov);
  Alcotest.(check bool) "attack+benign exercise something" true
    (Pfsm.Coverage.edges_exercised cov > 0)

let test_coverage_merge () =
  let cov = Pfsm.Coverage.of_report (iis_report ()) in
  let doubled = Pfsm.Coverage.merge cov cov in
  Alcotest.(check int) "scenarios sum"
    (2 * cov.Pfsm.Coverage.scenarios) doubled.Pfsm.Coverage.scenarios;
  Alcotest.(check int) "same cell set"
    (Pfsm.Coverage.edges_total cov) (Pfsm.Coverage.edges_total doubled);
  Alcotest.(check int) "same edges exercised"
    (Pfsm.Coverage.edges_exercised cov)
    (Pfsm.Coverage.edges_exercised doubled);
  List.iter2
    (fun (a : Pfsm.Coverage.cell) (b : Pfsm.Coverage.cell) ->
       Alcotest.(check int) ("doubled " ^ a.operation ^ "/" ^ a.pfsm)
         (2 * (a.spec_acpt + a.spec_rej + a.impl_rej + a.impl_acpt))
         (b.spec_acpt + b.spec_rej + b.impl_rej + b.impl_acpt))
    cov.Pfsm.Coverage.cells doubled.Pfsm.Coverage.cells;
  let e = Pfsm.Coverage.merge Pfsm.Coverage.empty cov in
  Alcotest.(check int) "empty is neutral"
    (Pfsm.Coverage.edges_exercised cov) (Pfsm.Coverage.edges_exercised e)

(* ---- chaos: a mangled CSV document is a typed leg, not a crash ---- *)

let test_chaos_mangled_csv () =
  (* an unterminated quote mangles the document itself: tokenisation
     fails before any row parses.  chaos.ml used to [failwith] here. *)
  let mangled = "id,\"unterminated\nnot,even,close" in
  let report =
    match Chaos.run ~plans:[ List.hd Fault.Catalog.smoke ] ~csv:mangled () with
    | r -> r
    | exception e ->
        Alcotest.failf "chaos crashed on mangled CSV: %s" (Printexc.to_string e)
  in
  List.iter
    (fun (run : Chaos.plan_run) ->
       List.iter
         (fun (leg : Chaos.leg) ->
            if leg.Chaos.leg_name = "ingest" then
              match leg.Chaos.outcome with
              | Chaos.Failed { stage; detail } ->
                  Alcotest.(check string) "stage" "ingest" stage;
                  Alcotest.(check bool) "detail names the offence" true
                    (String.length detail > 0)
              | Chaos.Ran _ -> Alcotest.fail "mangled document parsed")
         run.Chaos.legs)
    report.Chaos.runs;
  Alcotest.(check bool) "violations flag the failed leg" true
    (Chaos.violations report <> []);
  Alcotest.(check bool) "report not ok" true (not (Chaos.ok report));
  (* and the failure renders, both ways *)
  Alcotest.(check bool) "json renders" true
    (String.length (Chaos.to_json report) > 0);
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Chaos.pp report) > 0)

(* ---- allocs: span-scoped allocation accounting -------------------- *)

let counter_in_snapshot name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Counter_v v) -> v
  | _ -> Alcotest.failf "%s missing from snapshot" name

let test_allocs_scope_measures () =
  let scope = Obs.Allocs.scope "test.obs.leg" in
  let r =
    Obs.Allocs.measure scope (fun () ->
        Array.length (Array.init 4096 string_of_int))
  in
  Alcotest.(check int) "closure result" 4096 r;
  Alcotest.(check bool) "bytes charged" true
    (counter_in_snapshot "alloc.test.obs.leg.bytes" > 0);
  Alcotest.(check bool) "minor words charged" true
    (counter_in_snapshot "alloc.test.obs.leg.minor_words" > 0);
  Alcotest.(check int) "one span" 1 (counter_in_snapshot "alloc.test.obs.leg.spans")

let test_allocs_records_on_raise () =
  let scope = Obs.Allocs.scope "test.obs.raise" in
  (match
     Obs.Allocs.measure scope (fun () ->
         ignore (Sys.opaque_identity (List.init 1000 string_of_int));
         raise Exit)
   with
   | () -> Alcotest.fail "closure was expected to raise"
   | exception Exit -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (counter_in_snapshot "alloc.test.obs.raise.spans");
  Alcotest.(check bool) "bytes recorded despite raise" true
    (counter_in_snapshot "alloc.test.obs.raise.bytes" > 0)

let test_allocs_bytes_of () =
  let r, bytes = Obs.Allocs.bytes_of (fun () -> Bytes.make 100_000 'x') in
  Alcotest.(check int) "probe result" 100_000 (Bytes.length r);
  Alcotest.(check bool) "probe saw the allocation" true (bytes >= 100_000.)

let () =
  Alcotest.run "obs"
    [ ("trace",
       [ QCheck_alcotest.to_alcotest prop_trace_identity;
         Alcotest.test_case "chaos trace identity" `Slow
           test_chaos_trace_identity;
         Alcotest.test_case "span nesting" `Quick test_span_nesting;
         Alcotest.test_case "vt = merged rank" `Quick
           test_seq_strictly_increasing ]);
      ("metrics",
       [ QCheck_alcotest.to_alcotest prop_counter_fold;
         Alcotest.test_case "snapshot reports counters" `Quick
           test_snapshot_reports_counter;
         Alcotest.test_case "registration idempotent" `Quick
           test_registration_idempotent ]);
      ("allocs",
       [ Alcotest.test_case "scope measures" `Quick test_allocs_scope_measures;
         Alcotest.test_case "records on raise" `Quick
           test_allocs_records_on_raise;
         Alcotest.test_case "bytes_of probe" `Quick test_allocs_bytes_of ]);
      ("digest-cache",
       [ Alcotest.test_case "bounded with evictions" `Quick
           test_digest_cache_bounded ]);
      ("coverage",
       [ Alcotest.test_case "of_report conserves counts" `Quick
           test_coverage_of_report;
         Alcotest.test_case "merge sums cells" `Quick test_coverage_merge ]);
      ("chaos",
       [ Alcotest.test_case "mangled CSV is a typed leg" `Quick
           test_chaos_mangled_csv ]) ]
