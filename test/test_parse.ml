(* Tests for the predicate parser: units, error reporting, and the
   pretty-printer/parser round-trip property. *)

module P = Pfsm.Predicate
module Parse = Pfsm.Parse

let ok src =
  match Parse.predicate src with
  | Ok p -> p
  | Error e ->
      Alcotest.fail (Printf.sprintf "%s: at %d: %s" src e.Parse.position e.Parse.message)

let err src =
  match Parse.predicate src with
  | Ok p -> Alcotest.fail (src ^ " parsed to " ^ P.to_string p)
  | Error e -> e

(* ---- units -------------------------------------------------------- *)

let test_parse_paper_predicates () =
  (* Every predicate shape the figures use. *)
  List.iter
    (fun (src, expected) -> Alcotest.(check string) src expected (P.to_string (ok src)))
    [ ("(self >= 0 && self <= 100)", "(self >= 0 && self <= 100)");
      ("self <= 100", "self <= 100");
      ("fits_int32(self)", "fits_int32(self)");
      ("!(contains(decode^2(self), \"../\"))", "!(contains(decode^2(self), \"../\"))");
      ("length(self) <= env[buffer.size]", "length(self) <= env[buffer.size]");
      ("env[chunkB.links.unchanged]", "env[chunkB.links.unchanged]");
      ("env[target.kind] == \"terminal\"", "env[target.kind] == \"terminal\"");
      ("format_free(self)", "format_free(self)");
      ("self == 0x00010000", "self == 0x00010000");
      ("true", "true");
      ("false", "false") ]

let test_parse_evaluates_correctly () =
  let p = ok "(self >= 0 && self <= 100)" in
  Alcotest.(check bool) "50 in" true
    (P.holds ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int 50) p);
  Alcotest.(check bool) "-1 out" false
    (P.holds ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int (-1)) p);
  let q = ok "contains_any(self, [\"%n\"; \"%x\"])" in
  Alcotest.(check bool) "%x hits" true
    (P.holds ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Str "a%xb") q)

let test_parse_precedence () =
  (* && binds tighter than ||. *)
  let p = ok "true || false && false" in
  Alcotest.(check bool) "or of and" true
    (P.holds ~env:Pfsm.Env.empty ~self:Pfsm.Value.Unit p);
  match p with
  | P.Or (P.True, P.And (P.False, P.False)) -> ()
  | other -> Alcotest.fail (P.to_string other)

let test_parse_negative_literals () =
  match ok "self >= -800" with
  | P.Cmp (P.Ge, P.Self, P.Lit (Pfsm.Value.Int -800)) -> ()
  | other -> Alcotest.fail (P.to_string other)

let test_parse_string_escapes () =
  match ok "contains(self, \"a\\\"b\")" with
  | P.Contains (P.Self, needle) -> Alcotest.(check string) "escape" "a\"b" needle
  | other -> Alcotest.fail (P.to_string other)

let test_parse_errors_have_positions () =
  let e = err "self >" in
  Alcotest.(check bool) "position points past the operator" true (e.Parse.position >= 5);
  let e = err "self <= 100 garbage" in
  Alcotest.(check string) "trailing input" "trailing input" e.Parse.message;
  let e = err "contains(self" in
  Alcotest.(check bool) "message nonempty" true (String.length e.Parse.message > 0);
  ignore (err "\"unterminated");
  ignore (err "@@@")

let test_parse_term_standalone () =
  (match Parse.term "decode^2(env[path])" with
   | Ok (P.Decode (2, P.Env_val "path")) -> ()
   | Ok t -> Alcotest.fail (Format.asprintf "%a" P.pp_term t)
   | Error _ -> Alcotest.fail "no parse");
  match Parse.term "length(self)" with
  | Ok (P.Length P.Self) -> ()
  | _ -> Alcotest.fail "length"

let test_parse_exn () =
  (match Parse.predicate_exn "true" with P.True -> () | _ -> Alcotest.fail "true");
  match Parse.predicate_exn "((" with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

(* ---- roundtrip on every model predicate --------------------------- *)

let all_model_predicates () =
  let models =
    [ Apps.Sendmail.model (Apps.Sendmail.setup ());
      Apps.Nullhttpd.model (Apps.Nullhttpd.setup ());
      Apps.Xterm.model ();
      Apps.Rwall.model (Apps.Rwall.setup ());
      Apps.Iis.model (Apps.Iis.setup ());
      Apps.Ghttpd.model (Apps.Ghttpd.setup ());
      Apps.Rpc_statd.model (Apps.Rpc_statd.setup ());
      Apps.Int_overflow_pattern.model ();
      Apps.Buffer_overflow_pattern.model ();
      Apps.Format_string_pattern.model () ]
  in
  List.concat_map
    (fun m ->
       List.concat_map
         (fun (_, p) -> [ p.Pfsm.Primitive.spec; p.Pfsm.Primitive.impl ])
         (Pfsm.Model.all_pfsms m))
    models

let test_roundtrip_all_model_predicates () =
  let preds = all_model_predicates () in
  Alcotest.(check bool) "plenty of predicates" true (List.length preds >= 40);
  List.iter
    (fun p ->
       Alcotest.(check bool) (P.to_string p) true (Parse.roundtrips p))
    preds

(* ---- roundtrip property over random predicates -------------------- *)

let gen_pred =
  let open QCheck.Gen in
  let gen_key = oneofl [ "k"; "buffer.size"; "got.unchanged" ] in
  let gen_needle = oneofl [ "../"; "%n"; "abc" ] in
  let gen_term =
    oneof
      [ return P.Self;
        map (fun k -> P.Env_val k) gen_key;
        map (fun n -> P.Lit (Pfsm.Value.Int n)) (int_range (-1000) 1000);
        return (P.Length P.Self);
        map (fun n -> P.Decode (n, P.Self)) (int_range 0 3) ]
  in
  let gen_cmp = oneofl [ P.Le; P.Lt; P.Eq; P.Ne; P.Ge; P.Gt ] in
  let gen_atom =
    oneof
      [ return P.True;
        return P.False;
        map3 (fun op a b -> P.Cmp (op, a, b)) gen_cmp gen_term gen_term;
        map2 (fun t needle -> P.Contains (t, needle)) gen_term gen_needle;
        map (fun t -> P.Fits_int32 t) gen_term;
        map (fun t -> P.Is_format_free t) gen_term;
        map (fun k -> P.Env_flag k) gen_key;
        map2 (fun t needles -> P.Contains_any (t, needles)) gen_term
          (list_size (int_range 1 3) gen_needle) ]
  in
  let rec build depth =
    if depth = 0 then gen_atom
    else
      frequency
        [ (3, gen_atom);
          (1, map (fun p -> P.Not p) (build (depth - 1)));
          (1, map2 (fun a b -> P.And (a, b)) (build (depth - 1)) (build (depth - 1)));
          (1, map2 (fun a b -> P.Or (a, b)) (build (depth - 1)) (build (depth - 1))) ]
  in
  build 4

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"parse: pp then parse is the identity (rendered)" ~count:500
    (QCheck.make ~print:P.to_string gen_pred)
    Parse.roundtrips

let () =
  Alcotest.run "parse"
    [ ("units",
       [ Alcotest.test_case "paper predicates" `Quick test_parse_paper_predicates;
         Alcotest.test_case "evaluates" `Quick test_parse_evaluates_correctly;
         Alcotest.test_case "precedence" `Quick test_parse_precedence;
         Alcotest.test_case "negative literals" `Quick test_parse_negative_literals;
         Alcotest.test_case "string escapes" `Quick test_parse_string_escapes;
         Alcotest.test_case "error positions" `Quick test_parse_errors_have_positions;
         Alcotest.test_case "terms" `Quick test_parse_term_standalone;
         Alcotest.test_case "exn variant" `Quick test_parse_exn ]);
      ("roundtrip",
       [ Alcotest.test_case "all model predicates" `Quick
           test_roundtrip_all_model_predicates;
         QCheck_alcotest.to_alcotest prop_parser_roundtrip ]) ]
