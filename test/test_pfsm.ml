(* Tests for the core pFSM formalism: values, environments, string
   codecs, predicates, the primitive FSM semantics, operations,
   models, witness search, analysis, the lemma, and dot export. *)

module P = Pfsm.Predicate
module V = Pfsm.Value
module E = Pfsm.Env
module Prim = Pfsm.Primitive
module Sc = Pfsm.Strcodec

(* ---- value ------------------------------------------------------- *)

let test_value_equal () =
  Alcotest.(check bool) "int eq" true (V.equal (V.Int 3) (V.Int 3));
  Alcotest.(check bool) "int ne" false (V.equal (V.Int 3) (V.Int 4));
  Alcotest.(check bool) "cross-type" false (V.equal (V.Int 3) (V.Str "3"));
  Alcotest.(check bool) "unit" true (V.equal V.Unit V.Unit)

let test_value_projections () =
  Alcotest.(check int) "as_int" 7 (V.as_int (V.Int 7));
  Alcotest.(check string) "as_str" "x" (V.as_str (V.Str "x"));
  match V.as_int (V.Str "no") with
  | _ -> Alcotest.fail "projection should fail"
  | exception Invalid_argument _ -> ()

(* ---- env --------------------------------------------------------- *)

let test_env_basics () =
  let e = E.empty |> E.add_int "x" 5 |> E.add_str "s" "hi" |> E.add_bool "f" true in
  Alcotest.(check int) "int" 5 (E.get_int "x" e);
  Alcotest.(check string) "str" "hi" (E.get_str "s" e);
  Alcotest.(check bool) "flag true" true (E.flag "f" e);
  Alcotest.(check bool) "flag absent defaults false" false (E.flag "nope" e);
  match E.get "missing" e with
  | _ -> Alcotest.fail "expected Not_found_key"
  | exception E.Not_found_key "missing" -> ()
  | exception _ -> Alcotest.fail "wrong exception"

let test_env_shadowing () =
  let e = E.empty |> E.add_int "x" 1 |> E.add_int "x" 2 in
  Alcotest.(check int) "last add wins" 2 (E.get_int "x" e)

(* ---- strcodec ---------------------------------------------------- *)

let test_decode_once () =
  Alcotest.(check string) "%2f" "../" (Sc.percent_decode "..%2f");
  Alcotest.(check string) "%25 then 2f" "..%2f" (Sc.percent_decode "..%252f");
  Alcotest.(check string) "untouched" "plain" (Sc.percent_decode "plain");
  Alcotest.(check string) "malformed passes through" "%zz" (Sc.percent_decode "%zz");
  Alcotest.(check string) "trailing percent" "a%" (Sc.percent_decode "a%")

let test_decode_twice () =
  Alcotest.(check string) "the IIS case" "../"
    (Sc.percent_decode_n 2 "..%252f");
  Alcotest.(check string) "n=0 is identity" "..%252f" (Sc.percent_decode_n 0 "..%252f")

let test_parse_integer () =
  Alcotest.(check (option int)) "plain" (Some 42) (Sc.parse_integer "42");
  Alcotest.(check (option int)) "negative" (Some (-7)) (Sc.parse_integer "-7");
  Alcotest.(check (option int)) "plus" (Some 9) (Sc.parse_integer "+9");
  Alcotest.(check (option int)) "junk" None (Sc.parse_integer "12ab");
  Alcotest.(check (option int)) "empty" None (Sc.parse_integer "");
  Alcotest.(check (option int)) "big" (Some 4294967200) (Sc.parse_integer "4294967200")

let test_atoi32_wrap () =
  Alcotest.(check int) "in range" 100 (Sc.atoi32 "100");
  Alcotest.(check int) "leading spaces" 7 (Sc.atoi32 "  7");
  Alcotest.(check int) "junk is zero" 0 (Sc.atoi32 "abc");
  Alcotest.(check int) "prefix parse" 12 (Sc.atoi32 "12ab");
  (* The Sendmail attack value: 2^32 - 1024 wraps to -1024. *)
  Alcotest.(check int) "wraps negative" (-1024) (Sc.atoi32 "4294966272");
  Alcotest.(check int) "2^31 wraps" (-0x80000000) (Sc.atoi32 "2147483648")

let test_fits_int32 () =
  Alcotest.(check bool) "max" true (Sc.fits_int32 0x7fffffff);
  Alcotest.(check bool) "min" true (Sc.fits_int32 (-0x80000000));
  Alcotest.(check bool) "max+1" false (Sc.fits_int32 0x80000000)

let test_format_directives () =
  Alcotest.(check (list string)) "mixed" [ "%x"; "%n" ] (Sc.format_directives "a%xb%n");
  Alcotest.(check (list string)) "width" [ "%x" ] (Sc.format_directives "%08x");
  Alcotest.(check (list string)) "escaped percent skipped" []
    (Sc.format_directives "100%% legit");
  Alcotest.(check bool) "detector" true (Sc.contains_format_directive "%n");
  Alcotest.(check bool) "clean" false (Sc.contains_format_directive "hello world")

let prop_decode_idempotent_on_clean =
  let open QCheck in
  Test.make ~name:"strcodec: decoding a %-free string is the identity" ~count:200
    (string_gen (Gen.char_range 'a' 'z'))
    (fun s -> Sc.percent_decode s = s)

let prop_encode_decode_roundtrip =
  let open QCheck in
  Test.make ~name:"strcodec: percent_decode inverts percent_encode" ~count:300 string
    (fun s -> Sc.percent_decode (Sc.percent_encode s) = s)

let test_percent_encode_units () =
  Alcotest.(check string) "unreserved untouched" "a/b.c" (Sc.percent_encode "a/b.c");
  Alcotest.(check string) "space and percent" "a%20b%25" (Sc.percent_encode "a b%");
  Alcotest.(check string) "dotdot attack survives a roundtrip" "..%252f"
    (Sc.percent_decode (Sc.percent_encode "..%252f"))

let prop_wrap32_fixed_point =
  let open QCheck in
  Test.make ~name:"strcodec: wrap32 is a fixed point on int32 values" ~count:200
    (int_range (-0x80000000) 0x7fffffff)
    (fun v -> Sc.wrap32 v = v && Sc.fits_int32 (Sc.wrap32 (v * 3)))

(* ---- predicates -------------------------------------------------- *)

let holds ?(env = E.empty) ~self p = P.holds ~env ~self p

let test_pred_between () =
  let p = P.between P.Self ~low:0 ~high:100 in
  Alcotest.(check bool) "0" true (holds ~self:(V.Int 0) p);
  Alcotest.(check bool) "100" true (holds ~self:(V.Int 100) p);
  Alcotest.(check bool) "101" false (holds ~self:(V.Int 101) p);
  Alcotest.(check bool) "-1" false (holds ~self:(V.Int (-1)) p)

let test_pred_length_and_env () =
  let env = E.add_int "buffer.size" 10 E.empty in
  let p = P.Cmp (P.Le, P.Length P.Self, P.Env_val "buffer.size") in
  Alcotest.(check bool) "fits" true (P.holds ~env ~self:(V.Str "short") p);
  Alcotest.(check bool) "overflows" false
    (P.holds ~env ~self:(V.Str "0123456789A") p)

let test_pred_contains_decode () =
  let spec = P.Not (P.Contains (P.Decode (2, P.Self), "../")) in
  let impl = P.Not (P.Contains (P.Decode (1, P.Self), "../")) in
  let attack = V.Str "..%252fx" in
  Alcotest.(check bool) "spec rejects" false (holds ~self:attack spec);
  Alcotest.(check bool) "impl accepts" true (holds ~self:attack impl)

let test_pred_fits_int32_on_strings () =
  Alcotest.(check bool) "small" true (holds ~self:(V.Str "42") (P.Fits_int32 P.Self));
  Alcotest.(check bool) "huge" false
    (holds ~self:(V.Str "4294966272") (P.Fits_int32 P.Self));
  Alcotest.(check bool) "non-numeric treated as not-representable" false
    (holds ~self:(V.Str "4ab") (P.Fits_int32 P.Self))

let test_pred_format_free () =
  Alcotest.(check bool) "clean" true (holds ~self:(V.Str "file") (P.Is_format_free P.Self));
  Alcotest.(check bool) "%n" false (holds ~self:(V.Str "a%nb") (P.Is_format_free P.Self))

let test_pred_type_error () =
  match holds ~self:(V.Int 3) (P.Contains (P.Self, "x")) with
  | _ -> Alcotest.fail "expected type error"
  | exception P.Type_error _ -> ()

let test_pred_holds_safely () =
  Alcotest.(check (option bool)) "ill-typed is None" None
    (P.holds_safely ~env:E.empty ~self:(V.Int 3) (P.Contains (P.Self, "x")));
  Alcotest.(check (option bool)) "missing env key is None" None
    (P.holds_safely ~env:E.empty ~self:V.Unit (P.Cmp (P.Eq, P.Env_val "k", P.Lit (V.Int 1))));
  Alcotest.(check (option bool)) "fine" (Some true)
    (P.holds_safely ~env:E.empty ~self:(V.Int 1) P.True)

let test_pred_connectives () =
  let t = P.True and f = P.False in
  Alcotest.(check bool) "and" false (holds ~self:V.Unit (P.And (t, f)));
  Alcotest.(check bool) "or" true (holds ~self:V.Unit (P.Or (f, t)));
  Alcotest.(check bool) "not" true (holds ~self:V.Unit (P.Not f));
  Alcotest.(check bool) "conj []" true (holds ~self:V.Unit (P.conj []));
  Alcotest.(check bool) "disj []" false (holds ~self:V.Unit (P.disj []))

let test_pred_pp () =
  let p = P.between P.Self ~low:0 ~high:100 in
  Alcotest.(check string) "renders like the paper"
    "(self >= 0 && self <= 100)" (P.to_string p)

(* ---- primitive FSM ----------------------------------------------- *)

let simple_pfsm ?(impl = P.True) () =
  Prim.make ~name:"p" ~kind:Pfsm.Taxonomy.Content_attribute_check ~activity:"check x"
    ~spec:(P.between P.Self ~low:0 ~high:100) ~impl

let test_primitive_spec_accept () =
  let v = Prim.run (simple_pfsm ()) ~env:E.empty ~self:(V.Int 50) in
  Alcotest.(check bool) "accepted" true (v.Prim.final = Prim.Accept_state);
  Alcotest.(check bool) "no hidden" false v.Prim.hidden;
  Alcotest.(check bool) "via SPEC_ACPT" true (v.Prim.path = [ Prim.Spec_acpt ])

let test_primitive_hidden_path () =
  let v = Prim.run (simple_pfsm ()) ~env:E.empty ~self:(V.Int (-5)) in
  Alcotest.(check bool) "accepted anyway" true (v.Prim.final = Prim.Accept_state);
  Alcotest.(check bool) "hidden" true v.Prim.hidden;
  Alcotest.(check bool) "via IMPL_ACPT" true
    (v.Prim.path = [ Prim.Spec_rej; Prim.Impl_acpt ])

let test_primitive_impl_reject () =
  let pfsm = simple_pfsm ~impl:(P.Cmp (P.Le, P.Self, P.Lit (V.Int 100))) () in
  let v = Prim.run pfsm ~env:E.empty ~self:(V.Int 101) in
  Alcotest.(check bool) "rejected" true (v.Prim.final = Prim.Reject_state);
  Alcotest.(check bool) "via IMPL_REJ" true
    (v.Prim.path = [ Prim.Spec_rej; Prim.Impl_rej ])

let test_primitive_secured () =
  let pfsm = Prim.secured (simple_pfsm ()) in
  let v = Prim.run pfsm ~env:E.empty ~self:(V.Int (-5)) in
  Alcotest.(check bool) "now rejected" true (v.Prim.final = Prim.Reject_state);
  Alcotest.(check bool) "missing_check cleared" false (Prim.missing_check pfsm)

let test_primitive_missing_check () =
  Alcotest.(check bool) "no check" true (Prim.missing_check (simple_pfsm ()));
  Alcotest.(check bool) "has check" false
    (Prim.missing_check (simple_pfsm ~impl:P.False ()))

(* Property: the Figure-2 semantics, exhaustively -- hidden iff
   impl accepts and spec rejects. *)
let prop_primitive_semantics =
  let open QCheck in
  Test.make ~name:"primitive: hidden <=> impl-accepts && spec-rejects" ~count:500
    (pair (int_range (-200) 200) (int_range (-200) 200))
    (fun (bound, x) ->
       let pfsm =
         Prim.make ~name:"q" ~kind:Pfsm.Taxonomy.Object_type_check ~activity:"a"
           ~spec:(P.between P.Self ~low:0 ~high:100)
           ~impl:(P.Cmp (P.Le, P.Self, P.Lit (V.Int bound)))
       in
       let spec_ok = 0 <= x && x <= 100 in
       let impl_ok = x <= bound in
       let v = Prim.run pfsm ~env:E.empty ~self:(V.Int x) in
       let accepted = v.Prim.final = Prim.Accept_state in
       accepted = (spec_ok || impl_ok)
       && v.Prim.hidden = ((not spec_ok) && impl_ok))

(* ---- operation / model / trace ----------------------------------- *)

(* A toy cascade modelled after the paper's shape: operation 1 checks
   an index and flips an env fact when a violating index completes;
   operation 2's reference check consults that fact. *)
let toy_model ?(impl1 = P.Cmp (P.Le, P.Self, P.Lit (V.Int 100))) ?(impl2 = P.True) () =
  let pfsm1 =
    Prim.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"index check" ~spec:(P.between P.Self ~low:0 ~high:100) ~impl:impl1
  in
  let effect1 env =
    E.add_bool "ref.unchanged" (E.get_int "x" env >= 0) env
  in
  let record env obj = (E.add_int "x" (V.as_int obj) env, obj) in
  let op1 =
    Pfsm.Operation.make ~name:"op1" ~object_name:"x" ~effect_label:"write"
      ~effect_:effect1
      [ Pfsm.Operation.stage ~action:record pfsm1 ]
  in
  let pfsm2 =
    Prim.make ~name:"pFSM2" ~kind:Pfsm.Taxonomy.Reference_consistency_check
      ~activity:"ref check" ~spec:(P.Env_flag "ref.unchanged") ~impl:impl2
  in
  let op2 =
    Pfsm.Operation.make ~name:"op2" ~object_name:"ref" ~effect_label:"execute"
      [ Pfsm.Operation.stage pfsm2 ]
  in
  Pfsm.Model.make ~name:"toy" ~description:"toy cascade"
    [ Pfsm.Model.bind ~input:(fun env -> E.get "input" env) ~input_label:"x" op1;
      Pfsm.Model.bind ~input:(fun _ -> V.Unit) ~input_label:"ref" op2 ]

let scenario x = E.add "input" (V.Int x) E.empty

let test_model_benign_run () =
  let trace = Pfsm.Model.run (toy_model ()) ~env:(scenario 50) in
  Alcotest.(check bool) "completed" true trace.Pfsm.Trace.completed;
  Alcotest.(check int) "no hidden" 0 (Pfsm.Trace.hidden_count trace);
  Alcotest.(check bool) "not exploited" false (Pfsm.Trace.exploited trace)

let test_model_exploit_run () =
  let trace = Pfsm.Model.run (toy_model ()) ~env:(scenario (-3)) in
  Alcotest.(check bool) "completed" true trace.Pfsm.Trace.completed;
  Alcotest.(check int) "hidden twice" 2 (Pfsm.Trace.hidden_count trace);
  Alcotest.(check bool) "exploited" true (Pfsm.Trace.exploited trace)

let test_model_rejection_stops_cascade () =
  let model = toy_model ~impl1:(P.between P.Self ~low:0 ~high:100) () in
  let trace = Pfsm.Model.run model ~env:(scenario (-3)) in
  Alcotest.(check bool) "foiled" true (Pfsm.Trace.foiled trace);
  (match trace.Pfsm.Trace.stopped_at with
   | Some ("op1", "pFSM1") -> ()
   | _ -> Alcotest.fail "wrong stop site");
  Alcotest.(check int) "only one step ran" 1 (List.length trace.Pfsm.Trace.steps)

let test_model_secure_operation () =
  let hardened = Pfsm.Model.secure_operation (toy_model ()) ~op_name:"op2" in
  let trace = Pfsm.Model.run hardened ~env:(scenario (-3)) in
  Alcotest.(check bool) "op2 now rejects" true (Pfsm.Trace.foiled trace)

let test_model_secure_unknown_operation () =
  match Pfsm.Model.secure_operation (toy_model ()) ~op_name:"nope" with
  | _ -> Alcotest.fail "unknown op accepted"
  | exception Invalid_argument _ -> ()

let test_model_all_pfsms () =
  let names = List.map (fun (_, p) -> p.Prim.name) (Pfsm.Model.all_pfsms (toy_model ())) in
  Alcotest.(check (list string)) "cascade order" [ "pFSM1"; "pFSM2" ] names

(* ---- witness ----------------------------------------------------- *)

let test_witness_search () =
  let pfsm = simple_pfsm () in
  let candidates =
    List.map (fun x -> Pfsm.Witness.candidate (V.Int x)) [ -5; 0; 50; 100; 101; 200 ]
  in
  let hidden = Pfsm.Witness.hidden_witnesses pfsm ~candidates in
  (* impl = True accepts everything, so every spec-rejected value is
     a hidden witness: -5, 101, 200. *)
  Alcotest.(check int) "three witnesses" 3 (List.length hidden);
  Alcotest.(check bool) "not correctly implemented" false
    (Pfsm.Witness.correctly_implemented pfsm ~candidates);
  Alcotest.(check bool) "secured is clean" true
    (Pfsm.Witness.correctly_implemented (Prim.secured pfsm) ~candidates)

let test_witness_overstrict () =
  let pfsm = simple_pfsm ~impl:(P.between P.Self ~low:10 ~high:90) () in
  let candidates = List.map (fun x -> Pfsm.Witness.candidate (V.Int x)) [ 5; 50; 95 ] in
  Alcotest.(check int) "5 and 95 are overstrict" 2
    (List.length (Pfsm.Witness.overstrict_witnesses pfsm ~candidates))

let test_witness_skips_ill_typed () =
  let pfsm = simple_pfsm () in
  let candidates = [ Pfsm.Witness.candidate (V.Str "not an int") ] in
  Alcotest.(check int) "skipped" 0
    (List.length (Pfsm.Witness.hidden_witnesses pfsm ~candidates))

(* ---- analysis ---------------------------------------------------- *)

let test_analysis_findings () =
  let model = toy_model () in
  let report = Pfsm.Analysis.analyze model ~scenarios:[ scenario (-3); scenario 50 ] in
  Alcotest.(check int) "scenarios" 2 report.Pfsm.Analysis.scenarios_run;
  Alcotest.(check int) "one exploited" 1 (List.length (Pfsm.Analysis.exploited report));
  let vulnerable = Pfsm.Analysis.vulnerable_operations report in
  Alcotest.(check (list string)) "both ops vulnerable" [ "op1"; "op2" ] vulnerable;
  let checks = Pfsm.Analysis.security_checks report in
  Alcotest.(check int) "two checks to add" 2 (List.length checks)

let test_analysis_taxonomy_matrix () =
  let matrix = Pfsm.Analysis.taxonomy_matrix (toy_model ()) in
  let count kind =
    match List.assoc_opt kind matrix with
    | Some cells -> List.length cells
    | None -> -1
  in
  Alcotest.(check int) "content" 1 (count Pfsm.Taxonomy.Content_attribute_check);
  Alcotest.(check int) "reference" 1 (count Pfsm.Taxonomy.Reference_consistency_check);
  Alcotest.(check int) "object (empty bucket present)" 0
    (count Pfsm.Taxonomy.Object_type_check)

(* ---- lemma ------------------------------------------------------- *)

let test_lemma_sufficiency () =
  let model = toy_model () in
  let checks = Pfsm.Lemma.sufficiency model ~scenarios:[ scenario (-3) ] in
  Alcotest.(check int) "both vulnerable ops checked" 2 (List.length checks);
  Alcotest.(check bool) "lemma holds" true (Pfsm.Lemma.holds model ~scenarios:[ scenario (-3) ])

let test_lemma_pfsm_sufficiency () =
  let model = toy_model () in
  let checks = Pfsm.Lemma.pfsm_sufficiency model ~scenarios:[ scenario (-3) ] in
  Alcotest.(check int) "both sites" 2 (List.length checks);
  Alcotest.(check bool) "each single pFSM fix foils" true
    (List.for_all (fun c -> c.Pfsm.Lemma.foiled) checks)

let test_lemma_full_security () =
  Alcotest.(check bool) "secure_all kills all exploits" true
    (Pfsm.Lemma.full_security (toy_model ())
       ~scenarios:[ scenario (-3); scenario 50; scenario 1000 ])

(* Property: for random violating inputs, the lemma holds on the toy
   cascade regardless of where the violation lands. *)
let prop_lemma_random_inputs =
  let open QCheck in
  Test.make ~name:"lemma: securing any hidden operation foils the exploit" ~count:200
    (int_range (-1000) 1000)
    (fun x -> Pfsm.Lemma.holds (toy_model ()) ~scenarios:[ scenario x ])

(* ---- taxonomy / dot / pretty ------------------------------------- *)

let test_taxonomy_strings () =
  Alcotest.(check int) "three kinds" 3 (List.length Pfsm.Taxonomy.all);
  List.iter
    (fun k ->
       Alcotest.(check bool)
         (Pfsm.Taxonomy.to_string k ^ " has description")
         true
         (String.length (Pfsm.Taxonomy.description k) > 0))
    Pfsm.Taxonomy.all

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn > 0 && at 0

let test_dot_output () =
  let dot = Pfsm.Dot.of_model (toy_model ()) in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle dot))
    [ "digraph"; "SPEC_ACPT"; "IMPL_ACPT"; "style=dotted"; "cluster_op0"; "triangle" ];
  let single = Pfsm.Dot.of_primitive (simple_pfsm ()) in
  Alcotest.(check bool) "single pFSM digraph" true (contains ~needle:"digraph" single)

let test_dot_secured_has_no_hidden_edge () =
  let model = Pfsm.Model.secure_all (toy_model ()) in
  Alcotest.(check bool) "no dotted edge" false
    (contains ~needle:"IMPL_ACPT" (Pfsm.Dot.of_model model))

let test_pretty_model_renders () =
  let s = Pfsm.Pretty.model_to_string (toy_model ()) in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("mentions " ^ needle) true (contains ~needle s))
    [ "toy"; "op1"; "pFSM1"; "SPEC accepts iff"; "no check in implementation" ]

(* ---- predset ------------------------------------------------------ *)

module Ps = Pfsm.Predset

(* A pool of distinct interned predicates; [Predicate.id] assigns each
   a stable intern id, and ids keep growing across the suite, so the
   pool routinely spans more than one bitset word. *)
let pred_pool =
  lazy (List.init 48 (fun i -> P.between P.Self ~low:i ~high:(100 + i)))

let pool_ids () = List.map P.id (Lazy.force pred_pool)

let test_predset_basics () =
  let pool = Lazy.force pred_pool in
  let p0 = List.nth pool 0 and p1 = List.nth pool 1 in
  Alcotest.(check bool) "empty is empty" true (Ps.is_empty Ps.empty);
  Alcotest.(check bool) "mem singleton" true (Ps.mem p0 (Ps.singleton p0));
  Alcotest.(check bool) "not mem other" false (Ps.mem p1 (Ps.singleton p0));
  let s = Ps.of_list [ p0; p1; p0 ] in
  Alcotest.(check int) "of_list dedups" 2 (Ps.cardinal s);
  (* structurally equal predicates intern to the same id *)
  Alcotest.(check bool) "structural re-add is no-op" true
    (Ps.equal s (Ps.add (P.between P.Self ~low:0 ~high:100) s));
  (* removing the top member must normalize back to the singleton,
     structurally (equality is [=] on the packed words) *)
  Alcotest.(check bool) "diff normalizes" true
    (Ps.equal (Ps.singleton p0) (Ps.diff s (Ps.singleton p1)));
  Alcotest.(check bool) "elements ascending ids" true
    (let ids = List.map P.id (Ps.elements (Ps.of_list pool)) in
     ids = List.sort_uniq compare ids)

let test_predset_id_roundtrip () =
  List.iter
    (fun p ->
       match P.of_id (P.id p) with
       | Some q ->
           Alcotest.(check bool) "of_id returns the canon" true (P.equal p q);
           Alcotest.(check int) "id stable" (P.id p) (P.id q)
       | None -> Alcotest.fail "of_id lost an interned predicate")
    (Lazy.force pred_pool);
  Alcotest.(check bool) "max_id covers pool" true
    (List.for_all (fun i -> i < P.max_id ()) (pool_ids ()))

(* Reference semantics: a predicate set is its sorted unique id list. *)
let prop_predset_matches_reference =
  let open QCheck in
  Test.make ~name:"predset ops agree with sorted-unique id lists" ~count:500
    (pair (list (int_bound 47)) (list (int_bound 47)))
    (fun (xs, ys) ->
       let ids = Array.of_list (pool_ids ()) in
       let pick = List.map (fun i -> ids.(i)) in
       let ia = pick xs and ib = pick ys in
       let ra = List.sort_uniq compare ia and rb = List.sort_uniq compare ib in
       let sa = List.fold_left (fun s i -> Ps.add_id i s) Ps.empty ia in
       let sb = List.fold_left (fun s i -> Ps.add_id i s) Ps.empty ib in
       Ps.to_ids sa = ra
       && Ps.to_ids (Ps.union sa sb) = List.sort_uniq compare (ra @ rb)
       && Ps.to_ids (Ps.inter sa sb) = List.filter (fun i -> List.mem i rb) ra
       && Ps.to_ids (Ps.diff sa sb)
          = List.filter (fun i -> not (List.mem i rb)) ra
       && Ps.cardinal sa = List.length ra
       && List.for_all (fun i -> Ps.mem_id i sa) ra
       && Ps.equal sa sb = (ra = rb)
       && Ps.subset sa (Ps.union sa sb)
       && Ps.fold_ids (fun i acc -> i :: acc) sa [] = List.rev ra)

let () =
  Alcotest.run "pfsm"
    [ ("value",
       [ Alcotest.test_case "equal" `Quick test_value_equal;
         Alcotest.test_case "projections" `Quick test_value_projections ]);
      ("env",
       [ Alcotest.test_case "basics" `Quick test_env_basics;
         Alcotest.test_case "shadowing" `Quick test_env_shadowing ]);
      ("strcodec",
       [ Alcotest.test_case "decode once" `Quick test_decode_once;
         Alcotest.test_case "decode twice" `Quick test_decode_twice;
         Alcotest.test_case "parse integer" `Quick test_parse_integer;
         Alcotest.test_case "atoi32 wrap" `Quick test_atoi32_wrap;
         Alcotest.test_case "fits_int32" `Quick test_fits_int32;
         Alcotest.test_case "format directives" `Quick test_format_directives;
         Alcotest.test_case "percent encode" `Quick test_percent_encode_units;
         QCheck_alcotest.to_alcotest prop_decode_idempotent_on_clean;
         QCheck_alcotest.to_alcotest prop_encode_decode_roundtrip;
         QCheck_alcotest.to_alcotest prop_wrap32_fixed_point ]);
      ("predicate",
       [ Alcotest.test_case "between" `Quick test_pred_between;
         Alcotest.test_case "length/env" `Quick test_pred_length_and_env;
         Alcotest.test_case "contains/decode" `Quick test_pred_contains_decode;
         Alcotest.test_case "fits_int32 on strings" `Quick
           test_pred_fits_int32_on_strings;
         Alcotest.test_case "format free" `Quick test_pred_format_free;
         Alcotest.test_case "type error" `Quick test_pred_type_error;
         Alcotest.test_case "holds_safely" `Quick test_pred_holds_safely;
         Alcotest.test_case "connectives" `Quick test_pred_connectives;
         Alcotest.test_case "pretty" `Quick test_pred_pp ]);
      ("primitive",
       [ Alcotest.test_case "spec accept" `Quick test_primitive_spec_accept;
         Alcotest.test_case "hidden path" `Quick test_primitive_hidden_path;
         Alcotest.test_case "impl reject" `Quick test_primitive_impl_reject;
         Alcotest.test_case "secured" `Quick test_primitive_secured;
         Alcotest.test_case "missing check" `Quick test_primitive_missing_check;
         QCheck_alcotest.to_alcotest prop_primitive_semantics ]);
      ("model",
       [ Alcotest.test_case "benign run" `Quick test_model_benign_run;
         Alcotest.test_case "exploit run" `Quick test_model_exploit_run;
         Alcotest.test_case "rejection stops cascade" `Quick
           test_model_rejection_stops_cascade;
         Alcotest.test_case "secure operation" `Quick test_model_secure_operation;
         Alcotest.test_case "secure unknown op" `Quick
           test_model_secure_unknown_operation;
         Alcotest.test_case "all pfsms" `Quick test_model_all_pfsms ]);
      ("witness",
       [ Alcotest.test_case "search" `Quick test_witness_search;
         Alcotest.test_case "overstrict" `Quick test_witness_overstrict;
         Alcotest.test_case "skips ill-typed" `Quick test_witness_skips_ill_typed ]);
      ("analysis",
       [ Alcotest.test_case "findings" `Quick test_analysis_findings;
         Alcotest.test_case "taxonomy matrix" `Quick test_analysis_taxonomy_matrix ]);
      ("lemma",
       [ Alcotest.test_case "sufficiency" `Quick test_lemma_sufficiency;
         Alcotest.test_case "pfsm sufficiency" `Quick test_lemma_pfsm_sufficiency;
         Alcotest.test_case "full security" `Quick test_lemma_full_security;
         QCheck_alcotest.to_alcotest prop_lemma_random_inputs ]);
      ("predset",
       [ Alcotest.test_case "basics" `Quick test_predset_basics;
         Alcotest.test_case "id roundtrip" `Quick test_predset_id_roundtrip;
         QCheck_alcotest.to_alcotest prop_predset_matches_reference ]);
      ("taxonomy/dot/pretty",
       [ Alcotest.test_case "taxonomy" `Quick test_taxonomy_strings;
         Alcotest.test_case "dot output" `Quick test_dot_output;
         Alcotest.test_case "dot secured" `Quick test_dot_secured_has_no_hidden_edge;
         Alcotest.test_case "pretty model" `Quick test_pretty_model_renders ]) ]
