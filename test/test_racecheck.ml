(* The race-analysis pass: footprint soundness (every dynamic access a
   step performs is contained in its declared static footprint, on
   every schedule), the static TOCTTOU scan, and the replay bridge
   that confirms or refutes each finding. *)

module Sched = Osmodel.Scheduler
module E = Osmodel.Effect
module Fs = Osmodel.Filesystem
module D = Racecheck.Driver

(* ---- footprint soundness ----------------------------------------- *)

(* Replay every (unreduced) schedule of an instance with the dynamic
   observer installed around each step, and fail on any access the
   step's declared footprint does not cover.  Exhaustive — the
   property partial-order reduction relies on, checked on the exact
   systems the detector analyses. *)
let check_instance_footprints inst =
  match inst with
  | Racecheck.Instances.I { name; init; procs; _ } ->
      Seq.iter
        (fun steps ->
          let st = init () in
          List.iter
            (fun s ->
              let bad = ref [] in
              (try
                 E.with_observer
                   (fun access ->
                     if not (E.covered_by access s.Sched.effects) then
                       bad := access :: !bad)
                   (fun () -> s.Sched.run st)
               with Fs.Fs_error _ | Fault.Condition.Simulated _ -> ());
              match !bad with
              | [] -> ()
              | accesses ->
                  Alcotest.failf "%s: step %S performed undeclared %s" name
                    s.Sched.label
                    (String.concat ", " (List.map E.to_string accesses)))
            steps)
        (Sched.schedules_n procs)

let test_footprints_sound () =
  List.iter check_instance_footprints Racecheck.Instances.all

let test_footprints_catch_undeclared () =
  (* The harness itself must be able to fail: a step whose footprint
     omits its write is flagged. *)
  let lying =
    Sched.step_e "liar" ~effects:[ E.reads (E.Path_attr "/f") ] (fun fs ->
        Fs.mkfile fs "/f" ~owner:Osmodel.User.Root
          ~mode:(Osmodel.Perm.of_octal 0o644) "")
  in
  let caught = ref false in
  let fs = Fs.create () in
  E.with_observer
    (fun access ->
      if not (E.covered_by access lying.Sched.effects) then caught := true)
    (fun () -> lying.Sched.run fs);
  Alcotest.(check bool) "undeclared create detected" true !caught

(* ---- effect algebra ---------------------------------------------- *)

let test_effect_conflicts () =
  let attr = E.reads (E.Path_attr "/a") in
  let content_write = E.writes (E.Path "/a") in
  let other = E.writes (E.Path "/b") in
  Alcotest.(check bool) "attr read conflicts with content write" true
    (E.conflicts attr content_write);
  Alcotest.(check bool) "reads never conflict" false
    (E.conflicts attr (E.reads (E.Path "/a")));
  Alcotest.(check bool) "distinct paths independent" true
    (E.independent [ attr ] [ other ]);
  Alcotest.(check bool) "covers: read by write-like entry" true
    (E.covered_by (E.reads (E.Path_attr "/a")) [ content_write ]);
  Alcotest.(check bool) "covers: write needs write-like entry" false
    (E.covered_by content_write [ attr ])

(* ---- partial-order reduction equivalence ------------------------- *)

(* Random small step systems over three shared cells and per-process
   accumulators; writes are non-commutative (x*3+k) so conflicting
   orders genuinely differ.  The reduced verdict set over final states
   must equal full enumeration's — the soundness claim of sleep sets
   for terminal-state properties. *)
let prop_por_equals_full =
  let open QCheck in
  Test.make ~name:"por: verdict set equals full enumeration" ~count:300
    (list_of_size
       Gen.(2 -- 3)
       (list_of_size Gen.(0 -- 2) (pair (int_range 0 2) (int_range 0 3))))
    (fun spec ->
      let procs =
        List.mapi
          (fun pi steps ->
            List.mapi
              (fun si (cell, k) ->
                let label = Printf.sprintf "p%ds%d" pi si in
                let cname = "c" ^ string_of_int cell in
                if k = 0 then
                  Sched.step_e label
                    ~effects:
                      [ E.reads (E.Mem cname);
                        E.writes (E.Mem ("acc" ^ string_of_int pi)) ]
                    (fun (cells, acc) ->
                      acc.(pi) <- (acc.(pi) * 5) + cells.(cell) + 1)
                else
                  Sched.step_e label
                    ~effects:[ E.writes (E.Mem cname) ]
                    (fun (cells, _) -> cells.(cell) <- (cells.(cell) * 3) + k))
              steps)
          spec
      in
      let init () = (Array.make 3 0, Array.make 3 0) in
      let check (cells, acc) = Some (Array.to_list cells, Array.to_list acc) in
      let finals r =
        r.Sched.verdicts
        |> List.map (fun v -> v.Sched.result)
        |> List.sort_uniq compare
      in
      finals (Sched.explore_n ~init ~procs ~check ())
      = finals (Sched.explore_n ~independent:E.independent ~init ~procs ~check ()))

(* ---- the static scan --------------------------------------------- *)

let xterm_procs nofollow =
  [ Apps.Xterm.logger_steps { Apps.Xterm.open_nofollow = nofollow };
    Apps.Xterm.attacker_steps;
    Apps.Xterm.bystander_steps ]

let test_detect_xterm () =
  let findings = Racecheck.Detect.scan ~app:"xterm" (xterm_procs false) in
  Alcotest.(check int) "two findings (unlink, symlink writers)" 2
    (List.length findings);
  List.iter
    (fun f ->
      Alcotest.(check string) "raced object" "/usr/tom/x" f.Racecheck.Finding.obj;
      Alcotest.(check string) "check step" "xterm: access(log, W_OK) as tom"
        f.Racecheck.Finding.check;
      Alcotest.(check string) "use step" "xterm: open(log) as root"
        f.Racecheck.Finding.use)
    findings

let test_detect_bystander_silent () =
  (* cron's stat-then-read pair has no foreign writer on its object:
     the detector must not flag it. *)
  let findings = Racecheck.Detect.scan ~app:"xterm" (xterm_procs false) in
  Alcotest.(check bool) "no finding on /var/cron/log" true
    (List.for_all
       (fun f -> f.Racecheck.Finding.obj <> "/var/cron/log")
       findings)

let test_detect_memory_apps_silent () =
  let scan app procs = Racecheck.Detect.scan ~app procs in
  Alcotest.(check int) "rpcstatd" 0
    (List.length
       (scan "rpcstatd"
          [ Apps.Rpc_statd.server_steps; Apps.Rpc_statd.client_steps ]));
  Alcotest.(check int) "ghttpd" 0
    (List.length
       (scan "ghttpd" [ Apps.Ghttpd.server_steps; Apps.Ghttpd.client_steps ]))

(* ---- the replay bridge ------------------------------------------- *)

let kind = function
  | D.Confirmed _ -> "confirmed"
  | D.Refuted _ -> "refuted"
  | D.Unresolved _ -> "unresolved"

let instance_report r name =
  List.find (fun ir -> String.equal ir.D.instance name) r.D.instances

let kinds r name =
  List.map (fun c -> kind c.D.status) (instance_report r name).D.findings

let test_por_verdicts () =
  let r = D.analyze ~por:true () in
  Alcotest.(check (list string)) "xterm confirmed"
    [ "confirmed"; "confirmed" ] (kinds r "xterm");
  Alcotest.(check (list string)) "xterm+nofollow refuted"
    [ "refuted"; "refuted" ] (kinds r "xterm+nofollow");
  Alcotest.(check (list string)) "rwall confirmed"
    [ "confirmed"; "confirmed" ] (kinds r "rwall");
  Alcotest.(check (list string)) "rwall+ttycheck refuted"
    [ "refuted"; "refuted" ] (kinds r "rwall+ttycheck");
  Alcotest.(check (list string)) "rpcstatd no findings" [] (kinds r "rpcstatd");
  Alcotest.(check (list string)) "ghttpd no findings" [] (kinds r "ghttpd");
  Alcotest.(check bool) "report confirmed" true (D.confirmed r)

let test_witness_realises_window () =
  (* Every confirmed schedule must actually place the writer strictly
     between check and use. *)
  let r = D.analyze ~por:true () in
  List.iter
    (fun ir ->
      List.iter
        (fun c ->
          match c.D.status with
          | D.Confirmed { schedule; _ } ->
              let pos l =
                let rec go i = function
                  | [] -> Alcotest.failf "label %S missing from witness" l
                  | x :: rest -> if String.equal x l then i else go (i + 1) rest
                in
                go 0 schedule
              in
              let f = c.D.finding in
              let ck = pos f.Racecheck.Finding.check
              and w = pos f.Racecheck.Finding.writer
              and u = pos f.Racecheck.Finding.use in
              Alcotest.(check bool) "check < writer < use" true (ck < w && w < u)
          | _ -> ())
        ir.D.findings)
    r.D.instances

let test_plain_partial_por_complete () =
  (* The headline: at the default budget, plain enumeration exhausts
     fuel on the hardened instances (Partial) while reduction drains
     the whole window (Complete) — same confirmed verdict. *)
  let plain = D.analyze () in
  let por = D.analyze ~por:true () in
  let unresolved r name = List.mem "unresolved" (kinds r name) in
  Alcotest.(check bool) "plain xterm+nofollow exhausts the budget" true
    (unresolved plain "xterm+nofollow");
  Alcotest.(check bool) "por xterm+nofollow is complete" false
    (unresolved por "xterm+nofollow");
  Alcotest.(check bool) "por rwall+ttycheck is complete" false
    (unresolved por "rwall+ttycheck");
  Alcotest.(check bool) "same top-level verdict" true
    (Bool.equal (D.confirmed plain) (D.confirmed por))

let test_counters () =
  Obs.Metrics.reset ();
  ignore (D.analyze ~por:true ());
  let snap = Obs.Metrics.snapshot () in
  let v name =
    match List.assoc_opt name snap with
    | Some (Obs.Metrics.Counter_v n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "racecheck.findings counts all eight" 8
    (v "racecheck.findings");
  Alcotest.(check bool) "scheduler.por_pruned recorded savings" true
    (v "scheduler.por_pruned" > 0)

let test_json_deterministic () =
  let j1 = D.to_json (D.analyze ~por:true ()) in
  let j2 = D.to_json (D.analyze ~por:true ()) in
  Alcotest.(check string) "stable across runs" j1 j2;
  Alcotest.(check bool) "single line" true
    (not (String.contains j1 '\n'));
  Alcotest.(check bool) "carries the verdict" true
    (let needle = "\"confirmed\":true" in
     let rec search i =
       i + String.length needle <= String.length j1
       && (String.equal (String.sub j1 i (String.length needle)) needle
           || search (i + 1))
     in
     search 0)

let test_app_restriction () =
  let r = D.analyze ~por:true ~app:"ghttpd" () in
  Alcotest.(check int) "one instance" 1 (List.length r.D.instances);
  Alcotest.(check bool) "not confirmed" false (D.confirmed r)

let () =
  Alcotest.run "racecheck"
    [ ("footprints",
       [ Alcotest.test_case "sound on every instance schedule" `Quick
           test_footprints_sound;
         Alcotest.test_case "harness catches undeclared access" `Quick
           test_footprints_catch_undeclared;
         Alcotest.test_case "conflict/cover algebra" `Quick test_effect_conflicts ]);
      ("por", [ QCheck_alcotest.to_alcotest prop_por_equals_full ]);
      ("detect",
       [ Alcotest.test_case "xterm findings" `Quick test_detect_xterm;
         Alcotest.test_case "bystander silent" `Quick test_detect_bystander_silent;
         Alcotest.test_case "memory apps silent" `Quick
           test_detect_memory_apps_silent ]);
      ("driver",
       [ Alcotest.test_case "por verdicts" `Quick test_por_verdicts;
         Alcotest.test_case "witness realises window" `Quick
           test_witness_realises_window;
         Alcotest.test_case "plain partial, por complete" `Quick
           test_plain_partial_por_complete;
         Alcotest.test_case "counters" `Quick test_counters;
         Alcotest.test_case "json deterministic" `Quick test_json_deterministic;
         Alcotest.test_case "app restriction" `Quick test_app_restriction ]) ]
