(* The deterministic multicore runtime: the Par contract (byte-equal
   output for every job count), seed splitting, the hashconsed
   predicate store, the analysis memo, and exactly-once supervision
   under parallel speculation. *)

let with_jobs j f =
  Par.set_jobs j;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

let job_counts = [ 1; 2; 4 ]

(* every batch surface, rendered at -j 1, must be byte-identical at
   every other job count *)
let check_identical name render =
  let reference = with_jobs 1 render in
  List.iter
    (fun j ->
       Alcotest.(check string)
         (Printf.sprintf "%s: -j %d = -j 1" name j)
         reference
         (with_jobs j render))
    job_counts

(* ---- Par.map core ------------------------------------------------- *)

let prop_map_equals_array_map =
  let open QCheck in
  Test.make ~name:"Par.map f = Array.map f for every job count" ~count:50
    (pair (array small_int) (int_range 1 4))
    (fun (xs, j) ->
       let f x = (x * 31) lxor (x lsr 2) in
       with_jobs j (fun () -> Par.map f xs) = Array.map f xs)

let prop_filter_map =
  let open QCheck in
  Test.make ~name:"Par.filter_map matches sequential for every job count"
    ~count:50
    (pair (array small_int) (int_range 1 4))
    (fun (xs, j) ->
       let f x = if x mod 3 = 0 then Some (x * x) else None in
       with_jobs j (fun () -> Par.filter_map f xs)
       = Array.of_seq (Seq.filter_map f (Array.to_seq xs)))

let test_map_exception () =
  (* the lowest failing index wins, at any job count *)
  let xs = Array.init 64 (fun i -> i) in
  List.iter
    (fun j ->
       match
         with_jobs j (fun () ->
             Par.map (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i) xs)
       with
       | _ -> Alcotest.fail "exception swallowed"
       | exception Failure msg ->
           Alcotest.(check string)
             (Printf.sprintf "lowest failing index at -j %d" j)
             "3" msg)
    job_counts

let test_nested_map () =
  (* nested maps degrade to sequential instead of deadlocking *)
  let out =
    with_jobs 4 (fun () ->
        Par.map
          (fun i -> Array.fold_left ( + ) 0 (Par.map (fun k -> i * k) (Array.init 8 Fun.id)))
          (Array.init 16 Fun.id))
  in
  Alcotest.(check (array int)) "nested result"
    (Array.init 16 (fun i -> 28 * i))
    out

let test_lost_result_slot () =
  (* the missing-result path must raise the typed Par.Error naming the
     batch, the index and the claiming worker — not [assert false] *)
  with_jobs 4 (fun () ->
      Par.For_testing.drop_result := Some 5;
      Fun.protect ~finally:(fun () -> Par.For_testing.drop_result := None)
        (fun () ->
           match Par.map ~label:"drop-test" (fun i -> i * 2) (Array.init 16 Fun.id) with
           | _ -> Alcotest.fail "missing slot not detected"
           | exception Par.Error { batch; index; worker } ->
               Alcotest.(check string) "batch label" "drop-test" batch;
               Alcotest.(check int) "dropped index" 5 index;
               Alcotest.(check bool) "claiming worker recorded" true (worker >= 0)));
  (* and the seam is consumed: the next map is healthy *)
  Alcotest.(check (array int)) "subsequent map intact"
    (Array.init 8 (fun i -> i + 1))
    (with_jobs 4 (fun () -> Par.map (fun i -> i + 1) (Array.init 8 Fun.id)))

(* ---- seed splitting ----------------------------------------------- *)

let prop_seed_child =
  let open QCheck in
  Test.make ~name:"Seed.child: deterministic, non-negative" ~count:200
    (pair int (int_range 0 10_000))
    (fun (seed, index) ->
       let a = Par.Seed.child ~seed ~index in
       a = Par.Seed.child ~seed ~index && a >= 0)

let test_seed_child_spreads () =
  (* consecutive indices must not collide (the synth shards rely on
     distinct per-category streams) *)
  let children = List.init 64 (fun i -> Par.Seed.child ~seed:42 ~index:i) in
  Alcotest.(check int) "64 distinct children" 64
    (List.length (List.sort_uniq compare children))

(* ---- job-count parsing -------------------------------------------- *)

let test_parse_jobs () =
  (match Par.parse_jobs "4" with
   | Ok 4 -> ()
   | _ -> Alcotest.fail "4 rejected");
  (match Par.parse_jobs "1000000" with
   | Ok n -> Alcotest.(check int) "clamped" Par.max_jobs n
   | Error _ -> Alcotest.fail "huge value should clamp, not error");
  List.iter
    (fun s ->
       match Par.parse_jobs s with
       | Error _ -> ()
       | Ok n -> Alcotest.failf "%S accepted as %d" s n)
    [ "0"; "-2"; "banana"; ""; "2.5" ]

(* ---- byte-identity across the batch surfaces ---------------------- *)

let test_lint_sweep_identity () =
  check_identical "lint sweep JSON" (fun () ->
      Staticcheck.Linter.sweep_to_json (Staticcheck.Linter.corpus_sweep ()))

let test_fault_matrix_identity () =
  check_identical "fault matrix reports" (fun () ->
      Exploit.Fault_matrix.run ~plans:Fault.Catalog.smoke ()
      |> List.map (Format.asprintf "%a" Exploit.Fault_matrix.pp_report)
      |> String.concat "\n")

let test_chaos_identity () =
  check_identical "chaos JSON" (fun () ->
      Chaos.to_json (Chaos.run ~plans:Fault.Catalog.smoke ()))

let test_synth_identity () =
  List.iter
    (fun seed ->
       check_identical
         (Printf.sprintf "synth CSV (seed %d)" seed)
         (fun () -> Vulndb.Csv.of_database (Vulndb.Synth.generate ~seed)))
    [ 1; 20021130 ]

(* ---- supervised parallel speculation ------------------------------ *)

let flaky_items n =
  (* per-item mutable counters, distinct resources: fails the first
     [i mod 3] invocations, then succeeds *)
  List.init n (fun i ->
      let left = ref (i mod 3) in
      { Resilience.Supervisor.id = Printf.sprintf "item-%02d" i;
        resource = Printf.sprintf "res-%02d" i;
        work =
          (fun () ->
             if !left > 0 then begin
               decr left;
               Fault.Condition.fail
                 (Fault.Condition.Heap_exhausted { requested = 64 })
             end;
             i * i) })

let test_parallel_supervision () =
  let n = 12 in
  let sequential = Resilience.Supervisor.run ~label:"par-test" (flaky_items n) in
  let parallel =
    with_jobs 4 (fun () ->
        Resilience.Supervisor.run ~label:"par-test" ~parallel:true (flaky_items n))
  in
  Alcotest.(check bool) "no lost items" true
    (Resilience.Run_report.no_lost ~expected:n parallel.Resilience.Supervisor.report);
  Alcotest.(check bool) "same outcomes as sequential" true
    (Resilience.Run_report.same_outcomes sequential.Resilience.Supervisor.report
       parallel.Resilience.Supervisor.report);
  Alcotest.(check (list (pair string int))) "same results"
    sequential.Resilience.Supervisor.results parallel.Resilience.Supervisor.results

let test_parallel_supervision_with_faults () =
  (* under an active fault plan the serial guard must keep the
     injector's event stream intact: parallel and sequential sweeps
     see identical reports *)
  let plan = List.hd Fault.Catalog.smoke in
  let sweep parallel =
    Fault.Hooks.with_plan plan (fun () ->
        let _, report = Staticcheck.Linter.supervised_sweep ~parallel () in
        Format.asprintf "%a" Resilience.Run_report.pp report)
  in
  let reference = with_jobs 1 (fun () -> sweep false) in
  List.iter
    (fun j ->
       Alcotest.(check string)
         (Printf.sprintf "faulted sweep at -j %d" j)
         reference
         (with_jobs j (fun () -> sweep true)))
    job_counts

(* ---- hashconsing and the analysis memo ---------------------------- *)

let test_hashcons () =
  let p () =
    Pfsm.Predicate.And
      (Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100,
       Pfsm.Predicate.Not
         (Pfsm.Predicate.Contains
            (Pfsm.Predicate.Decode (2, Pfsm.Predicate.Self), "../")))
  in
  let a = Pfsm.Predicate.intern (p ()) in
  let b = Pfsm.Predicate.intern (p ()) in
  Alcotest.(check bool) "interned twins are physically equal" true (a == b);
  Alcotest.(check bool) "equal" true (Pfsm.Predicate.equal a b);
  let stats = Pfsm.Predicate.intern_stats () in
  Alcotest.(check bool) "intern table populated" true (stats.Pfsm.Predicate.distinct > 0)

let test_memo () =
  let app = Apps.Iis.setup () in
  let model = Apps.Iis.model app in
  let env = Apps.Iis.scenario ~path:Apps.Iis.attack_path in
  Pfsm.Analysis.memo_reset ();
  let t1 = Pfsm.Analysis.run_memo model ~env in
  let t2 = Pfsm.Analysis.run_memo model ~env in
  Alcotest.(check bool) "memo returns the computed trace" true
    (t1 = Pfsm.Model.run model ~env);
  Alcotest.(check bool) "second lookup is the same trace" true (t1 == t2);
  let s = Pfsm.Analysis.memo_stats () in
  Alcotest.(check int) "lookups" 2 s.Pfsm.Analysis.lookups;
  Alcotest.(check int) "hits" 1 s.Pfsm.Analysis.hits;
  Alcotest.(check int) "misses" 1 s.Pfsm.Analysis.misses;
  (* an independently built but identical model shares the entry *)
  let model' = Apps.Iis.model (Apps.Iis.setup ()) in
  let t3 = Pfsm.Analysis.run_memo model' ~env in
  Alcotest.(check bool) "twin model hits the same key" true (t1 == t3);
  let s' = Pfsm.Analysis.memo_stats () in
  Alcotest.(check int) "no new miss for the twin" s.Pfsm.Analysis.misses
    s'.Pfsm.Analysis.misses

let test_memo_analyze_equals_plain () =
  let app = Apps.Iis.setup () in
  let model = Apps.Iis.model app in
  let scenarios =
    [ Apps.Iis.scenario ~path:Apps.Iis.attack_path;
      Apps.Iis.scenario ~path:Apps.Iis.benign_path;
      Apps.Iis.scenario ~path:Apps.Iis.attack_path ]
  in
  let plain = Pfsm.Analysis.analyze model ~scenarios in
  let memod = Pfsm.Analysis.analyze ~memo:true ~par:true model ~scenarios in
  Alcotest.(check int) "scenarios_run" plain.Pfsm.Analysis.scenarios_run
    memod.Pfsm.Analysis.scenarios_run;
  Alcotest.(check bool) "identical traces" true
    (plain.Pfsm.Analysis.traces = memod.Pfsm.Analysis.traces)

let () =
  Alcotest.run "par"
    [ ("pool",
       [ Alcotest.test_case "exception: lowest index wins" `Quick test_map_exception;
         Alcotest.test_case "nested maps run sequentially" `Quick test_nested_map;
         Alcotest.test_case "lost result slot raises typed Par.Error" `Quick
           test_lost_result_slot;
         QCheck_alcotest.to_alcotest prop_map_equals_array_map;
         QCheck_alcotest.to_alcotest prop_filter_map ]);
      ("seed",
       [ QCheck_alcotest.to_alcotest prop_seed_child;
         Alcotest.test_case "children spread" `Quick test_seed_child_spreads ]);
      ("jobs", [ Alcotest.test_case "parse_jobs contract" `Quick test_parse_jobs ]);
      ("identity",
       [ Alcotest.test_case "lint sweep" `Quick test_lint_sweep_identity;
         Alcotest.test_case "fault matrix" `Quick test_fault_matrix_identity;
         Alcotest.test_case "chaos" `Slow test_chaos_identity;
         Alcotest.test_case "synth database" `Quick test_synth_identity ]);
      ("supervision",
       [ Alcotest.test_case "parallel speculation: exactly once" `Quick
           test_parallel_supervision;
         Alcotest.test_case "serial guard under fault plan" `Quick
           test_parallel_supervision_with_faults ]);
      ("memo",
       [ Alcotest.test_case "hashcons" `Quick test_hashcons;
         Alcotest.test_case "compute-once counters" `Quick test_memo;
         Alcotest.test_case "analyze ~memo ~par = analyze" `Quick
           test_memo_analyze_equals_plain ]) ]
