(* Model-based property tests: the heap and the filesystem are
   exercised with random operation sequences and compared, after
   every step, against trivially-correct reference implementations. *)

(* ---- heap vs a map of byte strings -------------------------------- *)

type heap_op =
  | Alloc of int
  | Free_nth of int
  | Write_nth of int * int   (* which allocation, seed byte *)
  | Realloc_nth of int * int

let heap_op_gen =
  let open QCheck.Gen in
  frequency
    [ (4, map (fun n -> Alloc n) (int_range 1 160));
      (2, map (fun i -> Free_nth i) (int_range 0 20));
      (3, map2 (fun i b -> Write_nth (i, b)) (int_range 0 20) (int_range 0 255));
      (1, map2 (fun i n -> Realloc_nth (i, n)) (int_range 0 20) (int_range 1 200)) ]

let print_heap_op = function
  | Alloc n -> Printf.sprintf "alloc %d" n
  | Free_nth i -> Printf.sprintf "free #%d" i
  | Write_nth (i, b) -> Printf.sprintf "write #%d <- %d" i b
  | Realloc_nth (i, n) -> Printf.sprintf "realloc #%d to %d" i n

(* Reference: an association list of live allocations and the bytes
   we believe they hold. *)
let run_heap_ops ops =
  let mem = Machine.Memory.create ~base:0x1000 ~size:0x40000 in
  let heap = Machine.Heap.create mem ~base:0x1000 ~size:0x40000 ~safe_unlink:false in
  let live = ref [] in   (* (user, expected bytes) in allocation order *)
  let nth i = if !live = [] then None else Some (List.nth !live (i mod List.length !live)) in
  let replace user value =
    live := List.map (fun (u, v) -> if u = user then (u, value) else (u, v)) !live
  in
  let remove user = live := List.filter (fun (u, _) -> u <> user) !live in
  let fill user n b =
    let s = String.init n (fun i -> Char.chr ((b + i) land 0xff)) in
    Machine.Memory.write_string mem user s;
    s
  in
  let step op =
    match op with
    | Alloc n -> (
        match Machine.Heap.malloc heap n with
        | Some user -> live := !live @ [ (user, fill user n 7) ]
        | None -> ())
    | Free_nth i -> (
        match nth i with
        | Some (user, _) ->
            Machine.Heap.free heap user;
            remove user
        | None -> ())
    | Write_nth (i, b) -> (
        match nth i with
        | Some (user, expected) ->
            replace user (fill user (String.length expected) b)
        | None -> ())
    | Realloc_nth (i, n) -> (
        match nth i with
        | Some (user, expected) -> (
            match Machine.Heap.realloc heap user n with
            | Some fresh ->
                remove user;
                let keep = min (String.length expected) n in
                let value = String.sub expected 0 keep in
                live := !live @ [ (fresh, value) ]
            | None -> ())
        | None -> ())
  in
  let contents_ok () =
    List.for_all
      (fun (user, expected) ->
         Machine.Memory.read_bytes mem user (String.length expected) = expected)
      !live
  in
  let all_ok = ref true in
  List.iter
    (fun op ->
       step op;
       if not (contents_ok () && Machine.Heap.validate heap = []) then all_ok := false)
    ops;
  !all_ok

let prop_heap_against_reference =
  QCheck.Test.make ~name:"heap: contents and metadata survive random op sequences"
    ~count:150
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map print_heap_op ops))
       QCheck.Gen.(list_size (int_range 1 40) heap_op_gen))
    run_heap_ops

(* ---- filesystem vs a string map ----------------------------------- *)

type fs_op =
  | Create of int * string          (* path index, content *)
  | Append of int * string
  | Overwrite of int * string
  | Remove of int

let paths = [| "/a"; "/b"; "/tmp/c"; "/home/u/d"; "/var/log/e" |]

let fs_op_gen =
  let open QCheck.Gen in
  let content = string_size ~gen:(char_range 'a' 'z') (int_range 0 12) in
  frequency
    [ (3, map2 (fun i s -> Create (i, s)) (int_range 0 4) content);
      (3, map2 (fun i s -> Append (i, s)) (int_range 0 4) content);
      (2, map2 (fun i s -> Overwrite (i, s)) (int_range 0 4) content);
      (1, map (fun i -> Remove i) (int_range 0 4)) ]

let print_fs_op = function
  | Create (i, s) -> Printf.sprintf "create %s %S" paths.(i) s
  | Append (i, s) -> Printf.sprintf "append %s %S" paths.(i) s
  | Overwrite (i, s) -> Printf.sprintf "overwrite %s %S" paths.(i) s
  | Remove i -> Printf.sprintf "remove %s" paths.(i)

module SM = Map.Make (String)

let run_fs_ops ops =
  let fs = Osmodel.Filesystem.create () in
  let user = Osmodel.User.Regular "u" in
  let reference = ref SM.empty in
  let step op =
    match op with
    | Create (i, s) ->
        let path = paths.(i) in
        if not (SM.mem path !reference) then begin
          Osmodel.Filesystem.mkfile fs path ~owner:user
            ~mode:(Osmodel.Perm.of_octal 0o644) s;
          reference := SM.add path s !reference
        end
    | Append (i, s) ->
        let path = paths.(i) in
        let fd = Osmodel.Filesystem.open_write fs path ~as_user:user in
        Osmodel.Filesystem.append fs fd s;
        let before = Option.value ~default:"" (SM.find_opt path !reference) in
        reference := SM.add path (before ^ s) !reference
    | Overwrite (i, s) ->
        let path = paths.(i) in
        let fd = Osmodel.Filesystem.open_write fs path ~as_user:user in
        Osmodel.Filesystem.write fs fd s;
        reference := SM.add path s !reference
    | Remove i ->
        let path = paths.(i) in
        if SM.mem path !reference then begin
          Osmodel.Filesystem.unlink fs path ~as_user:user;
          reference := SM.remove path !reference
        end
  in
  let agree () =
    SM.for_all
      (fun path content -> Osmodel.Filesystem.content fs path = content)
      !reference
    && List.for_all
         (fun path -> SM.mem path !reference || not (Osmodel.Filesystem.exists fs path))
         (Array.to_list paths)
  in
  let all_ok = ref true in
  List.iter
    (fun op ->
       step op;
       if not (agree ()) then all_ok := false)
    ops;
  !all_ok

let prop_fs_against_reference =
  QCheck.Test.make ~name:"filesystem: agrees with a string-map reference" ~count:200
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map print_fs_op ops))
       QCheck.Gen.(list_size (int_range 1 30) fs_op_gen))
    run_fs_ops

(* ---- socket/recv loop model --------------------------------------- *)

(* The NULL HTTPD read loop against a pure specification of how many
   bytes each loop variant consumes. *)
let expected_bytes_read ~fixed ~content_len ~body_len =
  (* mirror of the do-while semantics, computed arithmetically *)
  let rec go x =
    let rc = min 1024 (body_len - x) in
    if rc = 0 then x
    else
      let x = x + rc in
      let continue =
        if fixed then rc = 1024 && x < content_len
        else rc = 1024 || x < content_len
      in
      if continue then go x else x
  in
  go 0

let prop_read_loop_byte_counts =
  QCheck.Test.make
    ~name:"nullhttpd: loop reads exactly the bytes its condition dictates" ~count:150
    QCheck.(triple bool (int_range 0 3000) (int_range 0 6000))
    (fun (fixed, content_len, body_len) ->
       let config =
         { Apps.Nullhttpd.version = Apps.Nullhttpd.V0_5_1;
           loop_fixed = fixed;
           safe_unlink = false }
       in
       let app = Apps.Nullhttpd.setup ~config () in
       let body = String.make body_len 'z' in
       let outcome = Apps.Nullhttpd.handle_post app ~content_len ~body in
       let expected = expected_bytes_read ~fixed ~content_len ~body_len in
       (* We can't observe the count directly, but the outcome class
          is determined by it. *)
       let usable = Apps.Nullhttpd.usable_for ~content_len in
       match outcome with
       | Apps.Outcome.Refused _ -> fixed && expected < body_len
       | Apps.Outcome.Benign _ -> expected <= usable && expected = body_len || not fixed && expected <= usable
       | Apps.Outcome.Memory_corruption _ | Apps.Outcome.Crash _
       | Apps.Outcome.Arbitrary_write _ | Apps.Outcome.Code_execution _ ->
           expected > usable
       | _ -> false)

let () =
  Alcotest.run "modelbased"
    [ ("heap", [ QCheck_alcotest.to_alcotest prop_heap_against_reference ]);
      ("filesystem", [ QCheck_alcotest.to_alcotest prop_fs_against_reference ]);
      ("read loop", [ QCheck_alcotest.to_alcotest prop_read_loop_byte_counts ]) ]
