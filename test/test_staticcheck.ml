(* Tests for lib/staticcheck: the interval domain, CFG path
   addressing, the abstract interpreter on the corpus, the
   validation bridge, and the full sweep with its expectations. *)

module A = Minic.Ast
module I = Minic.Interp
module C = Minic.Corpus
module Iv = Staticcheck.Interval
module Cfg = Staticcheck.Cfg
module Ai = Staticcheck.Absint
module F = Staticcheck.Finding
module L = Staticcheck.Linter
module G = Staticcheck.Progen

let itv = Alcotest.testable (fun ppf t -> Iv.pp ppf t) Iv.equal

(* ---- interval domain ----------------------------------------------- *)

let test_interval_lattice () =
  Alcotest.check itv "join" (Iv.range 0 10) (Iv.join (Iv.range 0 3) (Iv.range 5 10));
  Alcotest.check itv "meet" (Iv.range 5 7) (Iv.meet (Iv.range 0 7) (Iv.range 5 10));
  Alcotest.check itv "disjoint meet" Iv.bot (Iv.meet (Iv.range 0 3) (Iv.range 5 10));
  Alcotest.(check bool) "subset" true (Iv.subset (Iv.range 2 3) (Iv.range 0 10));
  Alcotest.check itv "const arith" (Iv.const 12)
    (Iv.add (Iv.const 5) (Iv.const 7));
  Alcotest.check itv "sub range" (Iv.range (-10) 7)
    (Iv.sub (Iv.range 0 10) (Iv.range 3 10));
  Alcotest.check itv "mul signs" (Iv.range (-20) 20)
    (Iv.mul (Iv.range (-2) 2) (Iv.range 5 10))

let test_interval_widen () =
  (* A grown upper bound jumps to +inf; a stable one stays. *)
  Alcotest.check itv "hi widens"
    (Iv.of_bounds (Iv.Fin 0) Iv.Pinf)
    (Iv.widen (Iv.range 0 10) (Iv.range 0 11));
  Alcotest.check itv "lo widens"
    (Iv.of_bounds Iv.Minf (Iv.Fin 10))
    (Iv.widen (Iv.range 0 10) (Iv.range (-1) 10));
  Alcotest.check itv "stable fixpoint" (Iv.range 0 10)
    (Iv.widen (Iv.range 0 10) (Iv.range 0 10))

let test_interval_refine () =
  let a, b = Iv.refine Iv.Lt (Iv.range 0 100) (Iv.range 0 50) in
  Alcotest.check itv "a under a < b" (Iv.range 0 49) a;
  Alcotest.check itv "b under a < b" (Iv.range 1 50) b;
  let a, _ = Iv.refine Iv.Ge (Iv.range 0 100) (Iv.const 60) in
  Alcotest.check itv "a under a >= 60" (Iv.range 60 100) a;
  let a, _ = Iv.refine Iv.Eq (Iv.range 0 100) (Iv.range 200 300) in
  Alcotest.check itv "infeasible eq" Iv.bot a

(* ---- CFG path addressing ------------------------------------------- *)

let test_cfg_addressing () =
  let cfg = Cfg.build C.read_post_data_buggy in
  Alcotest.(check bool) "has a back edge" true (Cfg.back_edge_count cfg = 1);
  (* 3.0.0 is the recv inside the while body. *)
  (match Cfg.stmt_at cfg [ 3; 0; 0 ] with
   | Some (A.Recv_into (_, "PostData", _, _)) -> ()
   | _ -> Alcotest.fail "expected the recv at 3.0.0");
  let s = Cfg.path_to_string cfg [ 3; 0; 0 ] in
  Alcotest.(check bool) "resolved path names the loop body" true
    (String.length s > 0 && String.sub s 0 1 = "3")

let test_cfg_counts () =
  let cfg = Cfg.build C.log_vulnerable in
  Alcotest.(check bool) "straight line: nodes = stmts + entry/exit" true
    (Cfg.node_count cfg = List.length C.log_vulnerable.A.body + 2);
  Alcotest.(check int) "no back edges" 0 (Cfg.back_edge_count cfg)

(* ---- abstract interpreter on the corpus ----------------------------- *)

let corpus_lint f = L.lint ~config:L.corpus_config f

let kinds r = List.map (fun f -> F.kind_name f.F.kind) r.L.findings

let test_absint_tTflag () =
  let r = corpus_lint C.tTflag_vulnerable in
  Alcotest.(check (list string)) "both kinds"
    [ "array-store-oob-low"; "atoi-wrap-index" ]
    (List.sort compare (kinds r));
  List.iter
    (fun f -> Alcotest.(check bool) "confirmed" true (F.is_confirmed f))
    r.L.findings;
  Alcotest.(check (list string)) "fixed variant clean" []
    (kinds (corpus_lint C.tTflag_fixed))

let test_absint_distinguishes_off_by_one () =
  Alcotest.(check (list string)) "unbounded" [ "strcpy-unbounded" ]
    (kinds (corpus_lint C.log_vulnerable));
  Alcotest.(check (list string)) "off-by-one" [ "strcpy-off-by-one" ]
    (kinds (corpus_lint C.log_off_by_one));
  Alcotest.(check (list string)) "fixed clean" []
    (kinds (corpus_lint C.log_fixed))

let test_absint_widening_converges () =
  (* The || loop accumulates an offset; widening must close the
     fixpoint in a handful of rounds, not the 64-round safety cap. *)
  let r = corpus_lint C.read_post_data_buggy in
  Alcotest.(check bool) "few iterations" true (r.L.loop_iterations < 10);
  Alcotest.(check bool) "widened at least once" true (r.L.widenings >= 1);
  Alcotest.(check (list string)) "recv flagged" [ "recv-overflow" ] (kinds r);
  (* The && fix bounds the same loop; symbolic bounds prove it clean. *)
  Alcotest.(check (list string)) "fix clean" []
    (kinds (corpus_lint C.read_post_data_fixed))

let test_confirmed_witnesses_replay () =
  (* Every Confirmed finding carries a witness the interpreter
     reproduces — re-run each one and require the same violation. *)
  let rows = L.corpus_sweep () in
  let replayed = ref 0 in
  List.iter
    (fun row ->
       List.iter
         (fun f ->
            match f.F.status with
            | F.Unconfirmed -> Alcotest.fail ("unconfirmed: " ^ f.F.site)
            | F.Confirmed w ->
                incr replayed;
                let outcome =
                  I.run ~arrays:w.F.arrays ~socket:w.F.socket row.L.report.L.func
                    ~args:w.F.args
                in
                Alcotest.(check bool)
                  ("witness replays for " ^ F.kind_name f.F.kind)
                  true
                  (F.outcome_matches f.F.kind outcome))
         row.L.report.L.findings)
    rows;
  Alcotest.(check bool) "some witnesses replayed" true (!replayed >= 5)

let test_sweep_meets_expectations () =
  let rows = L.corpus_sweep () in
  List.iter
    (fun row ->
       Alcotest.(check bool) ("row ok: " ^ row.L.label) true row.L.ok)
    rows;
  Alcotest.(check bool) "sweep ok" true (L.sweep_ok rows)

let test_pfsm_corroboration () =
  (* The second validation leg: pFSM verification refutes the same
     sites the linter flags. *)
  let r = corpus_lint C.tTflag_vulnerable in
  List.iter
    (fun f ->
       match f.F.pfsm with
       | Some note ->
           Alcotest.(check bool) ("refuted: " ^ note) true
             (String.length note >= 7 && String.sub note 0 7 = "refuted")
       | None -> Alcotest.fail "no corroboration")
    r.L.findings

let test_json_renders () =
  let rows = L.corpus_sweep () in
  let json = L.sweep_to_json rows in
  Alcotest.(check bool) "ok flag" true
    (String.length json > 2 && String.sub json 0 11 = {|{"ok": true|});
  (* keep it parseable by eye: balanced braces *)
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
       if c = '{' then incr depth
       else if c = '}' then decr depth;
       if !depth < !min_depth then min_depth := !depth)
    json;
  Alcotest.(check int) "balanced" 0 !depth;
  Alcotest.(check int) "never negative" 0 !min_depth

(* ---- seeded linter property ----------------------------------------- *)

(* On random guard-then-sink programs, the linter flags exactly the
   constant choices that admit an overflow, and every Confirmed
   finding's stored witness reproduces the violation in the
   interpreter. *)
let prop_linter_precise_and_witnessed =
  QCheck.Test.make
    ~name:"staticcheck: flags iff vulnerable; witnesses reproduce" ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let v = G.vuln ~seed in
       let config = { Ai.default_config with Ai.arrays = v.G.arrays } in
       let r = L.lint ~config v.G.f in
       let flagged = r.L.findings <> [] in
       flagged = v.G.vulnerable
       && List.for_all
            (fun f ->
               match f.F.status with
               | F.Unconfirmed -> false
               | F.Confirmed w ->
                   F.outcome_matches f.F.kind
                     (I.run ~arrays:w.F.arrays ~socket:w.F.socket v.G.f
                        ~args:w.F.args))
            r.L.findings)

(* ---- absint vs its Smap reference -------------------------------- *)

(* [Absint_ref] is the pre-slot string-map interpreter, kept as the
   executable specification; the production analyzer must match it
   finding for finding and fixpoint count for fixpoint count. *)

let result_sig (r : Ai.result) =
  (List.map (fun (raw : Ai.raw) -> (F.kind_name raw.Ai.kind, raw.Ai.path, raw.Ai.detail))
     r.Ai.raws,
   r.Ai.loop_iterations,
   r.Ai.widenings)

let sig_t =
  Alcotest.(triple (list (triple string (list int) string)) int int)

let test_absint_matches_reference_corpus () =
  List.iter
    (fun (name, f) ->
       Alcotest.check sig_t name
         (result_sig (Staticcheck.Absint_ref.analyze ~config:L.corpus_config f))
         (result_sig (Ai.analyze ~config:L.corpus_config f)))
    C.all

let prop_absint_matches_reference_progen =
  let open QCheck in
  Test.make ~name:"slot-env absint = Smap reference on progen" ~count:60
    (int_range 0 100_000)
    (fun seed ->
       let f = G.func ~seed in
       result_sig (Ai.analyze f)
       = result_sig (Staticcheck.Absint_ref.analyze f))

let () =
  Alcotest.run "staticcheck"
    [ ("interval",
       [ Alcotest.test_case "lattice + arithmetic" `Quick test_interval_lattice;
         Alcotest.test_case "widening" `Quick test_interval_widen;
         Alcotest.test_case "refine" `Quick test_interval_refine ]);
      ("cfg",
       [ Alcotest.test_case "path addressing" `Quick test_cfg_addressing;
         Alcotest.test_case "counts" `Quick test_cfg_counts ]);
      ("abstract interpreter",
       [ Alcotest.test_case "tTflag kinds" `Quick test_absint_tTflag;
         Alcotest.test_case "off-by-one distinguished" `Quick
           test_absint_distinguishes_off_by_one;
         Alcotest.test_case "widening converges" `Quick
           test_absint_widening_converges;
         Alcotest.test_case "matches Smap reference on corpus" `Quick
           test_absint_matches_reference_corpus;
         QCheck_alcotest.to_alcotest prop_absint_matches_reference_progen ]);
      ("validation",
       [ Alcotest.test_case "witnesses replay" `Quick
           test_confirmed_witnesses_replay;
         Alcotest.test_case "pFSM corroborates" `Quick test_pfsm_corroboration ]);
      ("sweep",
       [ Alcotest.test_case "expectations met" `Quick test_sweep_meets_expectations;
         Alcotest.test_case "json renders" `Quick test_json_renders;
         QCheck_alcotest.to_alcotest prop_linter_precise_and_witnessed ]) ]
