(* The streaming corpus pipeline: plan validation (typed errors
   instead of deep Database.add crashes), chunk-merge equality with
   the legacy generator, id-space safety around curated ids inside
   the synthetic block, the nearest-centroid classifier's
   determinism, and store-backed incremental sweeps surviving the
   durability fault catalog. *)

module Synth = Vulndb.Synth
module Report = Vulndb.Report
module Category = Vulndb.Category
module Database = Vulndb.Database

let fresh_dir () =
  let d = Filename.temp_file "dfsm-corpus" ".d" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_jobs jobs f =
  let prev = Par.jobs () in
  Par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Par.set_jobs prev) f

let sort_by_id rs =
  List.sort (fun (a : Report.t) (b : Report.t) -> compare a.Report.id b.Report.id) rs

(* ---- stream ≡ generate -------------------------------------------- *)

let stream_all ~seed ~chunk =
  let acc = ref [] in
  (match
     Synth.generate_stream ~seed ~total:Synth.legacy_total ~chunk
       (fun ~index:_ rs -> acc := rs :: !acc)
   with
   | Ok n -> Alcotest.(check int) "streamed count" Synth.legacy_total n
   | Error e -> Alcotest.failf "generate_stream: %s" (Synth.error_to_string e));
  List.concat (List.rev !acc)

let prop_stream_equals_generate =
  let open QCheck in
  Test.make
    ~name:"corpus: generate_stream chunk-merge = generate, any seed/chunk"
    ~count:6
    (pair small_nat (int_range 1 9000))
    (fun (seed, chunk) ->
      let streamed = sort_by_id (stream_all ~seed ~chunk) in
      let reference = Database.reports (Synth.generate ~seed) in
      streamed = reference)

let test_stream_jobs_identical () =
  (* the same merge, report for report, at -j 1 / 2 / 4 *)
  let at jobs = with_jobs jobs (fun () -> stream_all ~seed:7 ~chunk:1024) in
  let j1 = at 1 in
  Alcotest.(check bool) "-j2 identical" true (at 2 = j1);
  Alcotest.(check bool) "-j4 identical" true (at 4 = j1);
  Alcotest.(check bool)
    "chunk order is index order" true
    (sort_by_id j1 = Database.reports (Synth.generate ~seed:7))

(* ---- plan validation ---------------------------------------------- *)

let test_plan_typed_errors () =
  (match Synth.plan ~total:0 () with
   | Error (Synth.Invalid_total 0) -> ()
   | _ -> Alcotest.fail "total 0 must be Invalid_total");
  (match Synth.plan ~total:((max_int / Synth.legacy_total) + 1) () with
   | Error (Synth.Id_overflow _) -> ()
   | _ -> Alcotest.fail "huge total must be Id_overflow");
  (match
     Synth.generate_stream ~seed:1 ~total:100 ~chunk:0 (fun ~index:_ _ -> ())
   with
   | Error (Synth.Invalid_chunk 0) -> ()
   | _ -> Alcotest.fail "chunk 0 must be Invalid_chunk");
  let dup =
    [ Report.make ~id:42 ~title:"a" ~date:"2000-01-01"
        ~category:Category.Unknown ~software:"x" ();
      Report.make ~id:42 ~title:"b" ~date:"2000-01-02"
        ~category:Category.Unknown ~software:"y" () ]
  in
  match Synth.plan ~curated:dup ~total:100 () with
  | Error (Synth.Duplicate_curated_id 42) -> ()
  | _ -> Alcotest.fail "duplicate curated ids must be a typed error"

let test_curated_id_inside_synthetic_block () =
  (* a curated report forced into the synthetic id range: the old
     generator would have crashed with Database.add: duplicate id the
     moment the block reached it; the plan now steps over it *)
  let intruder =
    Report.make ~id:(Synth.synthetic_id_base + 5)
      ~title:"Curated report squatting in the synthetic block"
      ~date:"2001-01-01" ~category:Category.Design_error ~software:"intruder" ()
  in
  match Synth.plan ~curated:[ intruder ] ~total:60 () with
  | Error e -> Alcotest.failf "plan: %s" (Synth.error_to_string e)
  | Ok p ->
      let reports =
        List.concat
          (List.init
             (Synth.chunk_count p ~chunk:16)
             (fun i -> Synth.chunk_reports p ~seed:3 ~chunk:16 ~index:i))
      in
      Alcotest.(check int) "plan size" (Synth.plan_size p) (List.length reports);
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (r : Report.t) ->
          if Hashtbl.mem seen r.Report.id then
            Alcotest.failf "duplicate id %d" r.Report.id;
          Hashtbl.add seen r.Report.id ())
        reports;
      Alcotest.(check bool) "intruder present" true
        (Hashtbl.mem seen intruder.Report.id);
      Alcotest.(check int) "intruder id used exactly once" 1
        (List.length
           (List.filter
              (fun (r : Report.t) -> r.Report.id = intruder.Report.id)
              reports))

let test_million_scale_skips_stock_curated_ids () =
  (* the stock data has curated ids 900001/900002 inside a
     million-report synthetic block — the live satellite-3 collision *)
  match Synth.plan ~total:1_000_000 () with
  | Error e -> Alcotest.failf "plan: %s" (Synth.error_to_string e)
  | Ok p ->
      Alcotest.(check int) "planned size" 1_000_000 (Synth.plan_size p);
      let curated_high = [ Vulndb.Seed_data.xterm_id; Vulndb.Seed_data.rwall_id ] in
      let cross = Vulndb.Seed_data.xterm_id - Synth.synthetic_id_base in
      List.iter
        (fun pos ->
          if pos >= 0 && pos < Synth.plan_synthetic p then begin
            let id = Synth.id_at p pos in
            if List.mem id curated_high then
              Alcotest.failf "synthetic position %d collides with curated id %d"
                pos id
          end)
        [ 0; 1; cross - 2; cross - 1; cross; cross + 1; cross + 2;
          Synth.plan_synthetic p - 1 ];
      (* strictly monotonic across the skip: no reuse, no gap-induced dup *)
      let rec mono pos =
        if pos < min (cross + 4) (Synth.plan_synthetic p - 1) then begin
          if not (Synth.id_at p pos < Synth.id_at p (pos + 1)) then
            Alcotest.failf "ids not strictly increasing at %d" pos;
          mono (pos + 1)
        end
      in
      mono (max 0 (cross - 4))

(* ---- classifier --------------------------------------------------- *)

let run_exn ?curated ~seed ~total ~chunk () =
  match Corpus.Pipeline.run ?curated ~seed ~total ~chunk () with
  | Ok t -> t
  | Error e -> Alcotest.failf "pipeline: %s" (Synth.error_to_string e)

let test_classifier_contract () =
  let t = run_exn ~seed:11 ~total:Synth.legacy_total ~chunk:512 () in
  Alcotest.(check int) "conservation" t.Corpus.Pipeline.planned
    t.Corpus.Pipeline.confusion.Corpus.Classifier.n;
  Alcotest.(check bool) "beats the majority baseline" true
    (t.Corpus.Pipeline.accuracy >= t.Corpus.Pipeline.baseline);
  Alcotest.(check bool) "gate" true (Corpus.Pipeline.ok t);
  (* deterministic: a second identical run renders byte-identically *)
  let t' = run_exn ~seed:11 ~total:Synth.legacy_total ~chunk:512 () in
  Alcotest.(check string) "byte-identical rerun"
    (Corpus.Pipeline.to_json t) (Corpus.Pipeline.to_json t')

let test_classifier_chunk_and_jobs_invariant () =
  let base = run_exn ~seed:5 ~total:2000 ~chunk:512 () in
  let other = run_exn ~seed:5 ~total:2000 ~chunk:333 () in
  Alcotest.(check bool) "confusion invariant under chunk size" true
    (base.Corpus.Pipeline.confusion = other.Corpus.Pipeline.confusion);
  let at jobs =
    with_jobs jobs (fun () ->
        Corpus.Pipeline.to_json (run_exn ~seed:5 ~total:2000 ~chunk:512 ()))
  in
  let j1 = at 1 in
  Alcotest.(check string) "-j2 byte-identical" j1 (at 2);
  Alcotest.(check string) "-j4 byte-identical" j1 (at 4)

(* ---- store-backed sweeps ------------------------------------------ *)

let test_warm_sweep_incremental () =
  let reference =
    Corpus.Pipeline.to_json (run_exn ~seed:3 ~total:1200 ~chunk:128 ())
  in
  with_dir (fun dir ->
      let s = Store.Disk.open_ ~dir in
      Store.Handle.with_store (Some s) (fun () ->
          let cold =
            Corpus.Pipeline.to_json (run_exn ~seed:3 ~total:1200 ~chunk:128 ())
          in
          Alcotest.(check string) "cold = store-less" reference cold;
          let before = Store.Disk.stats s in
          let warm =
            Corpus.Pipeline.to_json (run_exn ~seed:3 ~total:1200 ~chunk:128 ())
          in
          let d = Store.Disk.sub_stats (Store.Disk.stats s) before in
          Alcotest.(check string) "warm = store-less" reference warm;
          Alcotest.(check int) "warm recomputes nothing" 0 d.Store.Disk.misses;
          Alcotest.(check int) "warm writes nothing" 0 d.Store.Disk.writes;
          Alcotest.(check bool) "warm is all hits" true (d.Store.Disk.hits > 0)))

let test_spill_crash_recovery () =
  (* the SIGKILL-mid-spill shape, via the store crash harness: every
     durability plan in the catalog (torn shard writes, flips, write
     errors, crash-before-rename — the states a kill leaves behind)
     runs a spilling sweep; the answer must equal the store-less
     reference, fsck --repair must end clean, and an honest rerun
     against the battered store must still agree *)
  let reference =
    Corpus.Pipeline.to_json (run_exn ~seed:9 ~total:800 ~chunk:64 ())
  in
  List.iteri
    (fun i plan ->
      let plan = { plan with Fault.Plan.seed = 100 + i } in
      with_dir (fun dir ->
          let s = Store.Disk.open_ ~dir in
          let faulted, _events =
            Fault.Hooks.run plan (fun () ->
                Store.Handle.with_store (Some s) (fun () ->
                    Corpus.Pipeline.to_json
                      (run_exn ~seed:9 ~total:800 ~chunk:64 ())))
          in
          Alcotest.(check string)
            (Printf.sprintf "plan %s: faulted spill never lies"
               plan.Fault.Plan.name)
            reference faulted;
          let s2 = Store.Disk.open_ ~dir in
          let repaired = Store.Fsck.scan ~repair:true s2 in
          let after = Store.Fsck.scan s2 in
          Alcotest.(check bool)
            (Printf.sprintf "plan %s: fsck --repair ends clean"
               plan.Fault.Plan.name)
            true
            (Store.Fsck.clean repaired && Store.Fsck.clean after);
          let honest =
            Store.Handle.with_store (Some s2) (fun () ->
                Corpus.Pipeline.to_json (run_exn ~seed:9 ~total:800 ~chunk:64 ()))
          in
          Alcotest.(check string)
            (Printf.sprintf "plan %s: post-repair rerun agrees"
               plan.Fault.Plan.name)
            reference honest))
    Fault.Catalog.disk

(* ---- suite -------------------------------------------------------- *)

let () =
  Alcotest.run "corpus"
    [ ("stream",
       [ QCheck_alcotest.to_alcotest prop_stream_equals_generate;
         Alcotest.test_case "byte-identical at -j 1/2/4" `Quick
           test_stream_jobs_identical ]);
      ("plan",
       [ Alcotest.test_case "typed errors" `Quick test_plan_typed_errors;
         Alcotest.test_case "curated id inside the synthetic block" `Quick
           test_curated_id_inside_synthetic_block;
         Alcotest.test_case "million-scale skips stock curated ids" `Quick
           test_million_scale_skips_stock_curated_ids ]);
      ("classifier",
       [ Alcotest.test_case "conservation, baseline, determinism" `Quick
           test_classifier_contract;
         Alcotest.test_case "chunk- and jobs-invariant" `Quick
           test_classifier_chunk_and_jobs_invariant ]);
      ("store",
       [ Alcotest.test_case "warm sweep recomputes nothing" `Quick
           test_warm_sweep_incremental;
         Alcotest.test_case "crash-mid-spill recovery" `Quick
           test_spill_crash_recovery ]) ]
