(* Tests for the related-work baselines: the Ortalo-style Markov METF
   chain and the Sheyner-style attack graph, both derived from pFSM
   models. *)

module M = Baselines.Markov
module G = Baselines.Attack_graph

(* ---- linear solver ------------------------------------------------ *)

let test_solver_identity () =
  match M.solve_linear [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] [| 3.0; 4.0 |] with
  | Some x ->
      Alcotest.(check (float 1e-9)) "x0" 3.0 x.(0);
      Alcotest.(check (float 1e-9)) "x1" 4.0 x.(1)
  | None -> Alcotest.fail "singular?"

let test_solver_2x2 () =
  (* 2x + y = 5; x - y = 1  =>  x = 2, y = 1 *)
  match M.solve_linear [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] [| 5.0; 1.0 |] with
  | Some x ->
      Alcotest.(check (float 1e-9)) "x" 2.0 x.(0);
      Alcotest.(check (float 1e-9)) "y" 1.0 x.(1)
  | None -> Alcotest.fail "singular?"

let test_solver_needs_pivoting () =
  (* Zero pivot in the naive order. *)
  match M.solve_linear [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] [| 7.0; 9.0 |] with
  | Some x ->
      Alcotest.(check (float 1e-9)) "x" 9.0 x.(0);
      Alcotest.(check (float 1e-9)) "y" 7.0 x.(1)
  | None -> Alcotest.fail "pivoting failed"

let test_solver_singular () =
  Alcotest.(check bool) "singular detected" true
    (M.solve_linear [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] [| 1.0; 2.0 |] = None)

(* ---- Markov chains ------------------------------------------------ *)

let test_metf_deterministic_chain () =
  let t = M.create ~states:4 ~start:0 ~target:3 in
  M.add_transition t ~src:0 ~dst:1 ~prob:1.0 ~effort:1.0;
  M.add_transition t ~src:1 ~dst:2 ~prob:1.0 ~effort:1.0;
  M.add_transition t ~src:2 ~dst:3 ~prob:1.0 ~effort:1.0;
  match M.metf t with
  | Some e -> Alcotest.(check (float 1e-9)) "3 steps" 3.0 e
  | None -> Alcotest.fail "unreachable?"

let test_metf_geometric_retry () =
  (* One obstacle with success probability p: expected effort 1/p. *)
  let t = M.create ~states:2 ~start:0 ~target:1 in
  M.add_transition t ~src:0 ~dst:1 ~prob:0.25 ~effort:1.0;
  M.normalize_with_self_loops t;
  match M.metf t with
  | Some e -> Alcotest.(check (float 1e-9)) "1/p" 4.0 e
  | None -> Alcotest.fail "unreachable?"

let test_metf_unreachable () =
  let t = M.create ~states:3 ~start:0 ~target:2 in
  M.add_transition t ~src:0 ~dst:1 ~prob:1.0 ~effort:1.0;
  M.normalize_with_self_loops t;
  Alcotest.(check bool) "infinite effort" true (M.metf t = None)

let test_metf_of_sendmail () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in
  let scenario = Apps.Sendmail.exploit_scenario app in
  (match M.metf_of_model ~retry:0.2 model ~scenario with
   | Some e ->
       (* Three hidden obstacles at 1/0.2 each. *)
       Alcotest.(check (float 1e-6)) "3/0.2" 15.0 e
   | None -> Alcotest.fail "should be finite");
  (* The lemma through Ortalo's metric: secure any operation and the
     effort diverges. *)
  List.iter
    (fun op_name ->
       Alcotest.(check bool) (op_name ^ " secured => infinite") true
         (M.metf_of_model ~retry:0.2
            (Pfsm.Model.secure_operation model ~op_name)
            ~scenario
          = None))
    (Pfsm.Model.operation_names model)

let test_metf_retry_monotone () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in
  let scenario = Apps.Sendmail.exploit_scenario app in
  let effort retry =
    match M.metf_of_model ~retry model ~scenario with
    | Some e -> e
    | None -> Float.infinity
  in
  Alcotest.(check bool) "harder obstacles cost more" true
    (effort 0.1 > effort 0.5 && effort 0.5 > effort 0.9)

let prop_metf_closed_form =
  let open QCheck in
  Test.make ~name:"markov: chain of k obstacles costs k/p" ~count:100
    (pair (int_range 1 8) (int_range 1 99))
    (fun (k, percent) ->
       let p = float_of_int percent /. 100.0 in
       let t = M.create ~states:(k + 1) ~start:0 ~target:k in
       for i = 0 to k - 1 do
         M.add_transition t ~src:i ~dst:(i + 1) ~prob:p ~effort:1.0
       done;
       M.normalize_with_self_loops t;
       match M.metf t with
       | Some e -> Float.abs (e -. (float_of_int k /. p)) < 1e-6
       | None -> false)

(* ---- attack graphs ------------------------------------------------ *)

let sendmail_graph () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in
  let report =
    Pfsm.Analysis.analyze model
      ~scenarios:[ Apps.Sendmail.exploit_scenario app; Apps.Sendmail.benign_scenario ]
  in
  G.of_report report

let test_graph_reachability () =
  let g = sendmail_graph () in
  Alcotest.(check bool) "compromised reachable" true (G.exploit_reachable g);
  Alcotest.(check bool) "has hidden edges" true (G.hidden_edges g <> [])

let test_graph_paths_end_compromised () =
  let g = sendmail_graph () in
  let paths = G.attack_paths g ~max_paths:50 in
  Alcotest.(check bool) "at least one path" true (paths <> []);
  List.iter
    (fun path ->
       match List.rev path with
       | G.Compromised :: _ -> ()
       | _ -> Alcotest.fail "path does not end compromised")
    paths

let test_graph_min_cut_is_single_edge () =
  let g = sendmail_graph () in
  (match G.min_hidden_cut g with
   | Some [ e ] ->
       Alcotest.(check bool) "cut edge is hidden" true (e.G.kind = G.Hidden_step)
   | Some cut ->
       Alcotest.fail (Printf.sprintf "cut size %d, expected 1" (List.length cut))
   | None -> Alcotest.fail "no cut");
  Alcotest.(check bool) "agrees with lemma" true (G.agrees_with_lemma g)

let test_graph_secured_model_not_reachable () =
  let app = Apps.Sendmail.setup () in
  let model = Pfsm.Model.secure_all (Apps.Sendmail.model app) in
  let report =
    Pfsm.Analysis.analyze model ~scenarios:[ Apps.Sendmail.exploit_scenario app ]
  in
  let g = G.of_report report in
  Alcotest.(check bool) "not reachable" false (G.exploit_reachable g);
  Alcotest.(check bool) "cut is None" true (G.min_hidden_cut g = None);
  Alcotest.(check bool) "lemma vacuous" true (G.agrees_with_lemma g)

let test_graph_all_apps_agree_with_lemma () =
  let graphs =
    [ (let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
       let cl, body = Exploit.Attack.nullhttpd_6255 app in
       Pfsm.Analysis.analyze (Apps.Nullhttpd.model app)
         ~scenarios:[ Apps.Nullhttpd.scenario ~content_len:cl ~body ]);
      Pfsm.Analysis.analyze (Apps.Xterm.model ())
        ~scenarios:[ Apps.Xterm.race_scenario ];
      (let app = Apps.Rwall.setup () in
       Pfsm.Analysis.analyze (Apps.Rwall.model app)
         ~scenarios:[ Apps.Rwall.attack_scenario ]);
      (let app = Apps.Iis.setup () in
       Pfsm.Analysis.analyze (Apps.Iis.model app)
         ~scenarios:[ Apps.Iis.scenario ~path:Exploit.Attack.iis_path ]) ]
  in
  List.iteri
    (fun i report ->
       let g = G.of_report report in
       Alcotest.(check bool) (Printf.sprintf "graph %d reachable" i) true
         (G.exploit_reachable g);
       Alcotest.(check bool) (Printf.sprintf "graph %d lemma" i) true
         (G.agrees_with_lemma g))
    graphs

let test_graph_dot_export () =
  let dot = G.to_dot (sendmail_graph ()) in
  let contains ~needle h =
    let nh = String.length h and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub h i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "hidden styling" true (contains ~needle:"style=dotted" dot);
  Alcotest.(check bool) "compromised node" true (contains ~needle:"COMPROMISED" dot)

let () =
  Alcotest.run "baselines"
    [ ("linear solver",
       [ Alcotest.test_case "identity" `Quick test_solver_identity;
         Alcotest.test_case "2x2" `Quick test_solver_2x2;
         Alcotest.test_case "pivoting" `Quick test_solver_needs_pivoting;
         Alcotest.test_case "singular" `Quick test_solver_singular ]);
      ("markov / METF",
       [ Alcotest.test_case "deterministic chain" `Quick test_metf_deterministic_chain;
         Alcotest.test_case "geometric retry" `Quick test_metf_geometric_retry;
         Alcotest.test_case "unreachable" `Quick test_metf_unreachable;
         Alcotest.test_case "sendmail METF" `Quick test_metf_of_sendmail;
         Alcotest.test_case "retry monotone" `Quick test_metf_retry_monotone;
         QCheck_alcotest.to_alcotest prop_metf_closed_form ]);
      ("attack graph",
       [ Alcotest.test_case "reachability" `Quick test_graph_reachability;
         Alcotest.test_case "paths end compromised" `Quick
           test_graph_paths_end_compromised;
         Alcotest.test_case "min cut = 1" `Quick test_graph_min_cut_is_single_edge;
         Alcotest.test_case "secured unreachable" `Quick
           test_graph_secured_model_not_reachable;
         Alcotest.test_case "all apps agree with lemma" `Quick
           test_graph_all_apps_agree_with_lemma;
         Alcotest.test_case "dot export" `Quick test_graph_dot_export ]) ]
