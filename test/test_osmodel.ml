(* Tests for the OS substrate: permissions, filesystem with symlinks,
   interleaving scheduler, sockets. *)

module Fs = Osmodel.Filesystem
module U = Osmodel.User
module Perm = Osmodel.Perm
module Sched = Osmodel.Scheduler
module Sock = Osmodel.Socket

let tom = U.Regular "tom"

let mode = Perm.of_octal

(* ---- perm -------------------------------------------------------- *)

(* Only owner/other bits are modelled; group bits are dropped. *)
let test_perm_octal_roundtrip () =
  List.iter
    (fun m ->
       Alcotest.(check int) (Printf.sprintf "0o%o" m) m (Perm.to_octal (mode m)))
    [ 0o604; 0o600; 0o606; 0o204; 0o000 ];
  Alcotest.(check int) "group bits dropped" 0o606 (Perm.to_octal (mode 0o666))

let test_perm_owner_vs_other () =
  let p = mode 0o644 in
  Alcotest.(check bool) "owner writes" true
    (Perm.can_write p ~owner:tom ~as_user:tom);
  Alcotest.(check bool) "other cannot write" false
    (Perm.can_write p ~owner:tom ~as_user:(U.Regular "eve"));
  Alcotest.(check bool) "other reads" true
    (Perm.can_read p ~owner:tom ~as_user:(U.Regular "eve"))

let test_perm_root_bypasses () =
  let p = mode 0o600 in
  Alcotest.(check bool) "root writes anything" true
    (Perm.can_write p ~owner:tom ~as_user:U.Root);
  Alcotest.(check bool) "root reads anything" true
    (Perm.can_read p ~owner:tom ~as_user:U.Root)

let test_perm_world_writable () =
  Alcotest.(check bool) "666" true (Perm.world_writable (mode 0o666));
  Alcotest.(check bool) "644" false (Perm.world_writable (mode 0o644))

(* ---- filesystem -------------------------------------------------- *)

let fs_with_passwd () =
  let fs = Fs.create () in
  Fs.mkfile fs "/etc/passwd" ~owner:U.Root ~mode:(mode 0o644) "root::0:0\n";
  fs

let test_fs_create_read () =
  let fs = fs_with_passwd () in
  Alcotest.(check string) "content" "root::0:0\n" (Fs.content fs "/etc/passwd");
  Alcotest.(check bool) "exists" true (Fs.exists fs "/etc/passwd");
  Alcotest.(check bool) "absent" false (Fs.exists fs "/etc/shadow")

let test_fs_normalise_dotdot () =
  let fs = fs_with_passwd () in
  Alcotest.(check string) "dev-relative escape" "/etc/passwd"
    (Fs.resolve fs ~cwd:"/dev" "../etc/passwd");
  Alcotest.(check string) "double slash and dot" "/etc/passwd"
    (Fs.resolve fs "//etc/./passwd");
  Alcotest.(check string) "dotdot at root clamps" "/etc/passwd"
    (Fs.resolve fs "/../../etc/passwd")

let test_fs_symlink_resolution () =
  let fs = fs_with_passwd () in
  Fs.symlink fs ~link:"/tmp/x" ~target:"/etc/passwd";
  Alcotest.(check string) "follows" "/etc/passwd" (Fs.resolve fs "/tmp/x");
  Alcotest.(check bool) "lstat-style" true (Fs.is_symlink fs "/tmp/x");
  Alcotest.(check bool) "target is not a symlink" false
    (Fs.is_symlink fs "/etc/passwd")

let test_fs_symlink_chain_and_loop () =
  let fs = fs_with_passwd () in
  Fs.symlink fs ~link:"/a" ~target:"/b";
  Fs.symlink fs ~link:"/b" ~target:"/etc/passwd";
  Alcotest.(check string) "chain" "/etc/passwd" (Fs.resolve fs "/a");
  Fs.symlink fs ~link:"/loop1" ~target:"/loop2";
  Fs.symlink fs ~link:"/loop2" ~target:"/loop1";
  match Fs.resolve fs "/loop1" with
  | _ -> Alcotest.fail "loop not detected"
  | exception Fs.Fs_error (Fs.Too_many_links _) -> ()

let test_fs_relative_symlink_target () =
  let fs = fs_with_passwd () in
  Fs.mkfile fs "/usr/tom/real" ~owner:tom ~mode:(mode 0o644) "data";
  Fs.symlink fs ~link:"/usr/tom/x" ~target:"real";
  Alcotest.(check string) "relative to link dir" "/usr/tom/real"
    (Fs.resolve fs "/usr/tom/x")

let test_fs_open_write_permissions () =
  let fs = fs_with_passwd () in
  (match Fs.open_write fs "/etc/passwd" ~as_user:tom with
   | _ -> Alcotest.fail "tom wrote /etc/passwd"
   | exception Fs.Fs_error (Fs.Permission_denied _) -> ());
  let fd = Fs.open_write fs "/etc/passwd" ~as_user:U.Root in
  Fs.append fs fd "eve::0:0\n";
  Alcotest.(check string) "append as root" "root::0:0\neve::0:0\n"
    (Fs.content fs "/etc/passwd")

let test_fs_open_write_follows_symlink () =
  let fs = fs_with_passwd () in
  Fs.symlink fs ~link:"/tmp/log" ~target:"/etc/passwd";
  let fd = Fs.open_write fs "/tmp/log" ~as_user:U.Root in
  Alcotest.(check string) "fd designates the target" "/etc/passwd" (Fs.fd_path fd)

let test_fs_open_creates_missing () =
  let fs = Fs.create () in
  let fd = Fs.open_write fs "/home/tom/new" ~as_user:tom in
  Fs.write fs fd "hi";
  Alcotest.(check string) "created and written" "hi" (Fs.content fs "/home/tom/new");
  Alcotest.(check bool) "owner is creator" true
    (U.equal (Fs.owner_of fs "/home/tom/new") tom)

let test_fs_unlink_and_exists () =
  let fs = fs_with_passwd () in
  Fs.unlink fs "/etc/passwd" ~as_user:U.Root;
  Alcotest.(check bool) "gone" false (Fs.exists fs "/etc/passwd");
  match Fs.unlink fs "/etc/passwd" ~as_user:U.Root with
  | _ -> Alcotest.fail "unlinked twice"
  | exception Fs.Fs_error (Fs.Not_found_ _) -> ()

let test_fs_access_write () =
  let fs = fs_with_passwd () in
  Fs.mkfile fs "/usr/tom/x" ~owner:tom ~mode:(mode 0o644) "";
  Alcotest.(check bool) "tom's own file" true
    (Fs.access_write fs "/usr/tom/x" ~as_user:tom);
  Alcotest.(check bool) "tom on /etc/passwd" false
    (Fs.access_write fs "/etc/passwd" ~as_user:tom);
  Alcotest.(check bool) "missing file" false (Fs.access_write fs "/nope" ~as_user:tom)

let test_fs_kind_and_chmod () =
  let fs = Fs.create () in
  Fs.mkfile fs "/dev/pts/25" ~owner:tom ~mode:(mode 0o620) ~kind:Fs.Terminal "";
  Alcotest.(check bool) "terminal" true (Fs.kind_of fs "/dev/pts/25" = Fs.Terminal);
  Fs.chmod fs "/dev/pts/25" (mode 0o600);
  Alcotest.(check int) "chmod applied" 0o600
    (Perm.to_octal (Fs.mode_of fs "/dev/pts/25"))

let test_fs_mkfile_duplicate () =
  let fs = fs_with_passwd () in
  match Fs.mkfile fs "/etc/passwd" ~owner:U.Root ~mode:(mode 0o644) "x" with
  | _ -> Alcotest.fail "overwrote existing file"
  | exception Fs.Fs_error (Fs.Already_exists _) -> ()

(* ---- scheduler --------------------------------------------------- *)

let test_sched_interleaving_count () =
  Alcotest.(check int) "C(5,2)" 10 (Sched.interleaving_count 3 2);
  Alcotest.(check int) "C(2,1)" 2 (Sched.interleaving_count 1 1);
  Alcotest.(check int) "n=0" 1 (Sched.interleaving_count 0 7);
  Alcotest.(check int) "C(8,4)" 70 (Sched.interleaving_count 4 4)

let test_sched_interleaving_count_saturates () =
  (* max_int is 2^62 - 1; C(64,32) still fits, C(66,33) is the first
     central binomial that does not. *)
  Alcotest.(check int) "C(64,32) exact" 1832624140942590534
    (Sched.interleaving_count 32 32);
  Alcotest.(check bool) "C(66,33) saturates" true
    (max_int = Sched.interleaving_count 33 33);
  Alcotest.(check bool) "far past the edge still saturates" true
    (max_int = Sched.interleaving_count 500 500);
  Alcotest.(check bool) "one-sided overflow saturates" true
    (max_int = Sched.interleaving_count 1 max_int);
  match Sched.interleaving_count (-1) 3 with
  | _ -> Alcotest.fail "negative length accepted"
  | exception Invalid_argument _ -> ()

let test_sched_interleavings_exhaustive () =
  let merges = Sched.interleavings [ 1; 2 ] [ 3 ] in
  Alcotest.(check int) "3 merges" 3 (List.length merges);
  Alcotest.(check bool) "contains [1;2;3]" true (List.mem [ 1; 2; 3 ] merges);
  Alcotest.(check bool) "contains [1;3;2]" true (List.mem [ 1; 3; 2 ] merges);
  Alcotest.(check bool) "contains [3;1;2]" true (List.mem [ 3; 1; 2 ] merges)

let prop_interleavings_preserve_order =
  let open QCheck in
  Test.make ~name:"scheduler: every merge preserves each side's order" ~count:100
    (pair (list_of_size Gen.(0 -- 5) small_int) (list_of_size Gen.(0 -- 5) small_int))
    (fun (xs, ys) ->
       let tagged_xs = List.map (fun x -> `A x) xs in
       let tagged_ys = List.map (fun y -> `B y) ys in
       let merges = Sched.interleavings tagged_xs tagged_ys in
       let lefts merge = List.filter_map (function `A x -> Some x | `B _ -> None) merge in
       let rights merge = List.filter_map (function `B y -> Some y | `A _ -> None) merge in
       List.length merges = Sched.interleaving_count (List.length xs) (List.length ys)
       && List.for_all (fun m -> lefts m = xs && rights m = ys) merges)

let test_sched_explore_finds_window () =
  (* The property holds only when b1 lands between a1 and a2: exactly
     one of the C(3,1) = 3 schedules. *)
  let init () = ref [] in
  let a =
    [ Sched.step "a1" (fun l -> l := "a1" :: !l);
      Sched.step "a2" (fun l -> l := "a2" :: !l) ]
  in
  let b = [ Sched.step "b1" (fun l -> l := "b1" :: !l) ] in
  let check l = if !l = [ "a2"; "b1"; "a1" ] then Some "window hit" else None in
  let verdicts = (Sched.explore ~init ~a ~b ~check ()).Sched.verdicts in
  Alcotest.(check int) "one winning schedule" 1 (List.length verdicts);
  Alcotest.(check (list string)) "schedule recorded" [ "a1"; "b1"; "a2" ]
    (List.hd verdicts).Sched.schedule

let test_sched_explore_swallows_typed_errors () =
  (* A step whose syscall fails with one of the osmodel's typed errors
     is a no-op for that process — the exploration continues. *)
  let init () = ref 0 in
  let a =
    [ Sched.step "enoent" (fun _ ->
          raise (Fs.Fs_error (Fs.Not_found_ "/no/such/file"))) ]
  in
  let b = [ Sched.step "inc" (fun r -> incr r) ] in
  let verdicts =
    (Sched.explore ~init ~a ~b ~check:(fun r -> if !r = 1 then Some () else None) ())
      .Sched.verdicts
  in
  Alcotest.(check int) "both schedules complete" 2 (List.length verdicts)

let test_sched_explore_propagates_programming_errors () =
  (* Swallowing every exception used to hide real bugs: anything that
     is not a typed osmodel error must escape the exploration. *)
  let init () = ref 0 in
  let a = [ Sched.step "bug" (fun _ -> invalid_arg "broken step") ] in
  let b = [ Sched.step "inc" (fun r -> incr r) ] in
  match Sched.explore ~init ~a ~b ~check:(fun _ -> None) () with
  | _ -> Alcotest.fail "Invalid_argument was swallowed"
  | exception Invalid_argument _ -> ()

let test_sched_interleaving_count_n_edges () =
  Alcotest.(check int) "no processes" 1 (Sched.interleaving_count_n []);
  Alcotest.(check int) "single process" 1 (Sched.interleaving_count_n [ 5 ]);
  Alcotest.(check int) "empty processes" 1 (Sched.interleaving_count_n [ 0; 0 ]);
  Alcotest.(check int) "3!/(1!1!1!)" 6 (Sched.interleaving_count_n [ 1; 1; 1 ]);
  Alcotest.(check int) "matches 2-proc count" (Sched.interleaving_count 3 2)
    (Sched.interleaving_count_n [ 3; 2 ]);
  Alcotest.(check bool) "saturates" true
    (max_int = Sched.interleaving_count_n [ 33; 33 ]);
  match Sched.interleaving_count_n [ 2; -1 ] with
  | _ -> Alcotest.fail "negative length accepted"
  | exception Invalid_argument _ -> ()

(* ---- partial-order reduction ------------------------------------- *)

module E = Osmodel.Effect

let append_step name cell =
  Sched.step_e name
    ~effects:[ E.writes (E.Mem cell) ]
    (fun log -> log := name :: !log)

let test_sched_por_prunes_independent () =
  (* Two processes on disjoint cells: every interleaving reaches the
     same final state, so sleep sets keep exactly one schedule. *)
  let a = [ append_step "a1" "x"; append_step "a2" "x" ] in
  let b = [ append_step "b1" "y" ] in
  let count seq = Seq.fold_left (fun n _ -> n + 1) 0 seq in
  Alcotest.(check int) "full enumeration has 3" 3
    (count (Sched.schedules_n [ a; b ]));
  Alcotest.(check int) "reduction keeps 1" 1
    (count (Sched.schedules_n ~independent:E.independent [ a; b ]))

let test_sched_por_keeps_conflicting () =
  (* Same cell: nothing commutes, reduction must keep all schedules. *)
  let a = [ append_step "a1" "x"; append_step "a2" "x" ] in
  let b = [ append_step "b1" "x" ] in
  let count seq = Seq.fold_left (fun n _ -> n + 1) 0 seq in
  Alcotest.(check int) "reduction keeps all 3" 3
    (count (Sched.schedules_n ~independent:E.independent [ a; b ]))

let test_sched_por_preserves_final_states () =
  (* A conflicting pair plus an independent spectator: the reduced
     verdict set over final states equals the full one. *)
  let mk name cell f = Sched.step_e name ~effects:[ E.writes (E.Mem cell) ] f in
  let procs =
    [ [ mk "a1" "x" (fun (x, _) -> x := (!x * 3) + 1);
        mk "a2" "x" (fun (x, _) -> x := (!x * 3) + 2) ];
      [ mk "b1" "x" (fun (x, _) -> x := (!x * 3) + 3) ];
      [ mk "c1" "y" (fun (_, y) -> y := !y + 7) ] ]
  in
  let init () = (ref 0, ref 0) in
  let check (x, y) = Some (!x, !y) in
  let finals r =
    r.Sched.verdicts
    |> List.map (fun v -> v.Sched.result)
    |> List.sort_uniq compare
  in
  let full = Sched.explore_n ~init ~procs ~check () in
  let reduced =
    Sched.explore_n ~independent:E.independent ~init ~procs ~check ()
  in
  Alcotest.(check (list (pair int int)))
    "same final states" (finals full) (finals reduced);
  Alcotest.(check bool) "reduction ran fewer schedules" true
    (reduced.Sched.explored < full.Sched.explored);
  Alcotest.(check bool) "reduced run is still complete" true
    (Fault.Budget.complete reduced.Sched.coverage)

(* The bitmask [schedules_por] must emit the exact schedule sequence of
   the list-set reference, not merely the same trace coverage. *)
let schedule_labels seq =
  List.of_seq (Seq.map (List.map (fun s -> s.Sched.label)) seq)

let check_por_matches_ref name procs =
  Alcotest.(check (list (list string)))
    name
    (schedule_labels (Sched.schedules_por_ref ~independent:E.independent procs))
    (schedule_labels (Sched.schedules_por ~independent:E.independent procs))

let test_sched_por_bitmask_matches_ref () =
  check_por_matches_ref "independent pair"
    [ [ append_step "a1" "x"; append_step "a2" "x" ]; [ append_step "b1" "y" ] ];
  check_por_matches_ref "conflicting pair"
    [ [ append_step "a1" "x"; append_step "a2" "x" ]; [ append_step "b1" "x" ] ];
  check_por_matches_ref "spectator"
    [ [ append_step "a1" "x"; append_step "a2" "x" ];
      [ append_step "b1" "x" ];
      [ append_step "c1" "y" ] ];
  check_por_matches_ref "empty process dropped"
    [ [ append_step "a1" "x" ]; []; [ append_step "b1" "y" ] ];
  check_por_matches_ref "no processes" []

let prop_por_bitmask_matches_reference =
  let open QCheck in
  let cell = Gen.oneofl [ "x"; "y"; "z" ] in
  let proc p =
    Gen.map
      (List.mapi (fun i (c, w) ->
           let label = Printf.sprintf "p%d.%d:%s%s" p i (if w then "w" else "r") c in
           let eff = if w then E.writes (E.Mem c) else E.reads (E.Mem c) in
           Sched.step_e label ~effects:[ eff ] (fun log -> log := label :: !log)))
      (Gen.list_size (Gen.int_range 0 3) (Gen.pair cell Gen.bool))
  in
  let procs =
    Gen.(int_range 2 3 >>= fun n -> flatten_l (List.init n proc))
  in
  Test.make ~name:"bitmask POR = list-set POR, schedule for schedule"
    ~count:200
    (make ~print:(fun ps ->
         String.concat " | "
           (List.map (fun p -> String.concat "," (List.map (fun s -> s.Sched.label) p)) ps))
       procs)
    (fun procs ->
       schedule_labels (Sched.schedules_por ~independent:E.independent procs)
       = schedule_labels (Sched.schedules_por_ref ~independent:E.independent procs))

(* ---- socket ------------------------------------------------------ *)

let test_socket_chunked_recv () =
  let s = Sock.of_string (String.make 2500 'x') in
  Alcotest.(check int) "first chunk" 1024 (String.length (Sock.recv s 1024));
  Alcotest.(check int) "second chunk" 1024 (String.length (Sock.recv s 1024));
  Alcotest.(check int) "tail" 452 (String.length (Sock.recv s 1024));
  Alcotest.(check string) "eof" "" (Sock.recv s 1024);
  Alcotest.(check int) "consumed all" 2500 (Sock.consumed s)

let test_socket_remaining () =
  let s = Sock.of_string "abcdef" in
  Alcotest.(check string) "partial" "abc" (Sock.recv s 3);
  Alcotest.(check int) "remaining" 3 (Sock.remaining s)

let test_socket_zero_or_negative_recv () =
  let s = Sock.of_string "abc" in
  Alcotest.(check string) "zero" "" (Sock.recv s 0);
  Alcotest.(check string) "negative" "" (Sock.recv s (-4));
  Alcotest.(check int) "nothing consumed" 0 (Sock.consumed s)

let prop_socket_recv_conserves_bytes =
  let open QCheck in
  Test.make ~name:"socket: concatenated recvs reproduce the stream" ~count:100
    (pair string (list (int_range 1 64)))
    (fun (data, sizes) ->
       let s = Sock.of_string data in
       let buf = Buffer.create 64 in
       List.iter (fun n -> Buffer.add_string buf (Sock.recv s n)) sizes;
       let rec drain () =
         let c = Sock.recv s 97 in
         if c <> "" then begin
           Buffer.add_string buf c;
           drain ()
         end
       in
       drain ();
       Buffer.contents buf = data)

let () =
  Alcotest.run "osmodel"
    [ ("perm",
       [ Alcotest.test_case "octal roundtrip" `Quick test_perm_octal_roundtrip;
         Alcotest.test_case "owner vs other" `Quick test_perm_owner_vs_other;
         Alcotest.test_case "root bypasses" `Quick test_perm_root_bypasses;
         Alcotest.test_case "world writable" `Quick test_perm_world_writable ]);
      ("filesystem",
       [ Alcotest.test_case "create/read" `Quick test_fs_create_read;
         Alcotest.test_case "normalise .." `Quick test_fs_normalise_dotdot;
         Alcotest.test_case "symlink resolution" `Quick test_fs_symlink_resolution;
         Alcotest.test_case "chain and loop" `Quick test_fs_symlink_chain_and_loop;
         Alcotest.test_case "relative symlink" `Quick test_fs_relative_symlink_target;
         Alcotest.test_case "open permissions" `Quick test_fs_open_write_permissions;
         Alcotest.test_case "open follows symlink" `Quick
           test_fs_open_write_follows_symlink;
         Alcotest.test_case "open creates" `Quick test_fs_open_creates_missing;
         Alcotest.test_case "unlink" `Quick test_fs_unlink_and_exists;
         Alcotest.test_case "access_write" `Quick test_fs_access_write;
         Alcotest.test_case "kind/chmod" `Quick test_fs_kind_and_chmod;
         Alcotest.test_case "mkfile duplicate" `Quick test_fs_mkfile_duplicate ]);
      ("scheduler",
       [ Alcotest.test_case "interleaving count" `Quick test_sched_interleaving_count;
         Alcotest.test_case "count saturates at 63-bit" `Quick
           test_sched_interleaving_count_saturates;
         Alcotest.test_case "exhaustive merges" `Quick
           test_sched_interleavings_exhaustive;
         QCheck_alcotest.to_alcotest prop_interleavings_preserve_order;
         Alcotest.test_case "n-proc count edges" `Quick
           test_sched_interleaving_count_n_edges;
         Alcotest.test_case "finds the window" `Quick test_sched_explore_finds_window;
         Alcotest.test_case "swallows typed step errors" `Quick
           test_sched_explore_swallows_typed_errors;
         Alcotest.test_case "propagates programming errors" `Quick
           test_sched_explore_propagates_programming_errors ]);
      ("partial-order reduction",
       [ Alcotest.test_case "prunes independent" `Quick
           test_sched_por_prunes_independent;
         Alcotest.test_case "keeps conflicting" `Quick
           test_sched_por_keeps_conflicting;
         Alcotest.test_case "preserves final states" `Quick
           test_sched_por_preserves_final_states;
         Alcotest.test_case "bitmask matches reference" `Quick
           test_sched_por_bitmask_matches_ref;
         QCheck_alcotest.to_alcotest prop_por_bitmask_matches_reference ]);
      ("socket",
       [ Alcotest.test_case "chunked recv" `Quick test_socket_chunked_recv;
         Alcotest.test_case "remaining" `Quick test_socket_remaining;
         Alcotest.test_case "zero/negative" `Quick test_socket_zero_or_negative_recv;
         QCheck_alcotest.to_alcotest prop_socket_recv_conserves_bytes ]) ]
