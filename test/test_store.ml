(* The persistent result store: record codec taxonomy, disk round
   trips and graceful degradation, the ambient handle, fsck's
   verify-and-repair, and the crash-recovery property under injected
   durability faults. *)

module S = Store

let fresh_dir () =
  let d = Filename.temp_file "dfsm-store" ".d" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_open_store f =
  with_dir (fun dir ->
      let s = S.Disk.open_ ~dir in
      Fun.protect ~finally:(fun () -> S.Disk.close s) (fun () -> f s))

let key_a = "aabbccdd00112233"
let key_b = "ffee998877665544"

(* ---- record codec ------------------------------------------------- *)

let test_record_roundtrip () =
  List.iter
    (fun payload ->
       match S.Record.decode (S.Record.encode payload) with
       | Ok p -> Alcotest.(check string) "round trip" payload p
       | Error e ->
           Alcotest.failf "round trip failed: %s" (S.Record.error_to_string e))
    [ ""; "x"; "line\nbreaks\nand \000 nulls"; String.make 4096 'q' ]

let test_record_taxonomy () =
  let img = S.Record.encode "the payload under test" in
  (* every strict prefix is Torn — exactly what a crash mid-write
     leaves behind *)
  for cut = 0 to String.length img - 1 do
    match S.Record.decode (String.sub img 0 cut) with
    | Error S.Record.Torn -> ()
    | Error e ->
        Alcotest.failf "prefix %d: %s, wanted torn" cut
          (S.Record.error_to_string e)
    | Ok _ -> Alcotest.failf "prefix %d decoded" cut
  done;
  (* a flip anywhere is Checksum_mismatch (header fields that stay
     parseable change the digest; unparseable ones fail structurally) *)
  List.iter
    (fun i ->
       let b = Bytes.of_string img in
       Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
       match S.Record.decode (Bytes.to_string b) with
       | Error (S.Record.Checksum_mismatch | S.Record.Torn) -> ()
       | Error S.Record.Stale_version -> Alcotest.failf "flip %d: stale" i
       | Ok _ -> Alcotest.failf "flip at byte %d went undetected" i)
    [ 0; 10; String.length img - 1 ];
  (* trailing garbage is corruption, not a longer record *)
  (match S.Record.decode (img ^ "extra") with
   | Error S.Record.Checksum_mismatch -> ()
   | _ -> Alcotest.fail "trailing bytes accepted");
  (* a well-formed record from another codec version is Stale_version *)
  match
    S.Record.decode
      (S.Record.For_testing.encode_with_version
         ~version:(S.Record.current_version + 1) "p")
  with
  | Error S.Record.Stale_version -> ()
  | _ -> Alcotest.fail "foreign version not detected"

let test_sealed_lines () =
  let line = S.Record.seal_line "7 some-id" in
  (match S.Record.unseal_line line with
   | `Sealed "7 some-id" -> ()
   | _ -> Alcotest.fail "sealed line did not verify");
  let b = Bytes.of_string line in
  Bytes.set b (String.length line - 1) '!';
  (match S.Record.unseal_line (Bytes.to_string b) with
   | `Mismatch -> ()
   | _ -> Alcotest.fail "corrupt sealed line verified");
  match S.Record.unseal_line "7 some-id" with
  | `Unsealed -> ()
  | _ -> Alcotest.fail "legacy line not recognized"

(* ---- disk --------------------------------------------------------- *)

let test_disk_roundtrip_and_reopen () =
  with_dir (fun dir ->
      let s = S.Disk.open_ ~dir in
      Alcotest.(check (option string)) "cold miss" None (S.Disk.find s ~key:key_a);
      S.Disk.put s ~key:key_a ~payload:"alpha";
      S.Disk.put s ~key:key_b ~payload:"beta\nwith newline";
      S.Disk.put s ~key:key_a ~payload:"alpha-v2";
      Alcotest.(check (option string)) "last write wins" (Some "alpha-v2")
        (S.Disk.find s ~key:key_a);
      let st = S.Disk.stats s in
      Alcotest.(check int) "one miss" 1 st.S.Disk.misses;
      Alcotest.(check int) "one hit" 1 st.S.Disk.hits;
      Alcotest.(check int) "three writes" 3 st.S.Disk.writes;
      S.Disk.close s;
      (* a second process: everything persisted, manifest verifiable *)
      let s2 = S.Disk.open_ ~dir in
      Alcotest.(check (option string)) "reopen finds alpha" (Some "alpha-v2")
        (S.Disk.find s2 ~key:key_a);
      Alcotest.(check (option string)) "reopen finds beta"
        (Some "beta\nwith newline")
        (S.Disk.find s2 ~key:key_b);
      Alcotest.(check (list string)) "manifest lists both, deduplicated"
        [ key_a; key_b ]
        (List.sort compare (S.Disk.manifest_keys s2));
      S.Disk.close s2)

let test_disk_key_validation () =
  Alcotest.(check bool) "hex key ok" true (S.Disk.valid_key key_a);
  List.iter
    (fun k ->
       Alcotest.(check bool) (Printf.sprintf "%S invalid" k) false
         (S.Disk.valid_key k))
    [ ""; "short"; "AABBCCDD00112233"; "zzzzzzzzzzzzzzzz"; "../../etc/passwd" ];
  with_open_store (fun s ->
      Alcotest.check_raises "find rejects bad key"
        (Invalid_argument "Store.Disk: invalid key \"nope\"") (fun () ->
          ignore (S.Disk.find s ~key:"nope")))

let test_disk_degrades_on_corruption () =
  with_open_store (fun s ->
      S.Disk.put s ~key:key_a ~payload:"precious";
      (* flip one payload byte on disk behind the store's back *)
      let path = S.Disk.record_path s ~key:key_a in
      let img = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string img in
      Bytes.set b (Bytes.length b - 1) '\000';
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc b);
      Alcotest.(check (option string)) "corrupt record reads as a miss" None
        (S.Disk.find s ~key:key_a);
      Alcotest.(check bool) "corrupt record evicted" false (Sys.file_exists path);
      let st = S.Disk.stats s in
      Alcotest.(check int) "counted corrupt" 1 st.S.Disk.corrupt;
      (* the caller's recompute-and-rewrite is a repair *)
      S.Disk.put s ~key:key_a ~payload:"recomputed";
      Alcotest.(check int) "rewrite counted as repair" 1
        (S.Disk.stats s).S.Disk.repaired;
      Alcotest.(check (option string)) "store healthy again"
        (Some "recomputed")
        (S.Disk.find s ~key:key_a))

(* ---- codec -------------------------------------------------------- *)

let test_codec () =
  let v = [ ("x", 1); ("y", 2) ] in
  let p = S.Codec.to_payload ~tag:"pairs" v in
  (match S.Codec.of_payload ~tag:"pairs" p with
   | Some v' -> Alcotest.(check bool) "round trip" true (v = v')
   | None -> Alcotest.fail "decode failed");
  (match (S.Codec.of_payload ~tag:"other" p : int option) with
   | None -> ()
   | Some _ -> Alcotest.fail "tag mismatch accepted");
  (match (S.Codec.of_payload ~tag:"pairs" "pairs\ngarbage" : int option) with
   | None -> ()
   | Some _ -> Alcotest.fail "garbage unmarshalled");
  Alcotest.check_raises "newline tag rejected"
    (Invalid_argument "Store.Codec: tag has newline") (fun () ->
      ignore (S.Codec.to_payload ~tag:"a\nb" ()))

(* ---- handle ------------------------------------------------------- *)

let test_handle_cached () =
  with_dir (fun dir ->
      let s = S.Disk.open_ ~dir in
      S.Handle.with_store (Some s) (fun () ->
          let computes = ref 0 in
          let compute () = incr computes; 40 + 2 in
          Alcotest.(check int) "miss computes" 42
            (S.Handle.cached ~tag:"t" ~key:key_a compute);
          Alcotest.(check int) "hit short-circuits" 42
            (S.Handle.cached ~tag:"t" ~key:key_a compute);
          Alcotest.(check int) "computed exactly once" 1 !computes;
          (* a record holding another caller's tag is stale payload:
             note_corrupt + recompute + rewrite, never a wrong value *)
          (match S.Handle.get () with
           | Some st -> S.Disk.put st ~key:key_b ~payload:"other-tag\njunk"
           | None -> Alcotest.fail "ambient store missing");
          Alcotest.(check int) "stale payload recomputes" 42
            (S.Handle.cached ~tag:"t" ~key:key_b compute);
          Alcotest.(check int) "stale rewrite is a repair" 1
            (S.Disk.stats s).S.Disk.repaired);
      Alcotest.(check bool) "with_store restores" true (S.Handle.get () = None))

let test_handle_sim_plan_bypass () =
  with_dir (fun dir ->
      let s = S.Disk.open_ ~dir in
      S.Handle.with_store (Some s) (fun () ->
          Fault.Hooks.with_plan Fault.Catalog.bitflip (fun () ->
              Alcotest.(check bool) "ambient hidden under sim plan" true
                (S.Handle.ambient () = None);
              Alcotest.(check int) "cached still computes" 7
                (S.Handle.cached ~tag:"t" ~key:key_a (fun () -> 7)));
          let st = S.Disk.stats s in
          Alcotest.(check int) "nothing written under the plan" 0
            st.S.Disk.writes;
          Alcotest.(check (option string)) "no poisoned record" None
            (S.Disk.find s ~key:key_a)))

(* ---- fsck --------------------------------------------------------- *)

let tampered_store dir =
  (* four sound records, then: one torn, one flipped, one from a
     foreign codec version, one stranded tmp *)
  let s = S.Disk.open_ ~dir in
  let keys =
    [ "1111111111111111"; "2222222222222222"; "3333333333333333";
      "4444444444444444" ]
  in
  List.iter (fun k -> S.Disk.put s ~key:k ~payload:("v:" ^ k)) keys;
  let tamper key f =
    let path = S.Disk.record_path s ~key in
    let img = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (f img))
  in
  tamper "1111111111111111" (fun img ->
      String.sub img 0 (String.length img / 2));
  tamper "2222222222222222" (fun img ->
      let b = Bytes.of_string img in
      Bytes.set b (Bytes.length b - 1) '\255';
      Bytes.to_string b);
  tamper "3333333333333333" (fun _ ->
      S.Record.For_testing.encode_with_version
        ~version:(S.Record.current_version + 9) "future");
  let tmp =
    Filename.concat
      (Filename.dirname (S.Disk.record_path s ~key:"4444444444444444"))
      "4444444444444444.99.tmp"
  in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc "in flight");
  s

let count_status st (r : S.Fsck.report) =
  List.length
    (List.filter (fun (e : S.Fsck.entry) -> e.S.Fsck.status = st) r.S.Fsck.entries)

let test_fsck_classify_and_repair () =
  with_dir (fun dir ->
      let s = tampered_store dir in
      let r = S.Fsck.scan s in
      Alcotest.(check int) "one sound" 1 r.S.Fsck.sound;
      Alcotest.(check int) "one torn" 1 r.S.Fsck.torn;
      Alcotest.(check int) "one flipped" 1 r.S.Fsck.checksum_mismatch;
      Alcotest.(check int) "one stale" 1 r.S.Fsck.stale_version;
      Alcotest.(check int) "one orphan tmp" 1 r.S.Fsck.orphan_tmp;
      Alcotest.(check int) "unsound manifest lines counted" 3
        r.S.Fsck.manifest_stale;
      Alcotest.(check int) "torn classified" 1 (count_status S.Fsck.Torn r);
      Alcotest.(check bool) "scan alone repairs nothing" false
        (S.Fsck.clean r);
      Alcotest.(check int) "nothing removed without repair" 0 r.S.Fsck.removed;
      let r2 = S.Fsck.scan ~repair:true s in
      Alcotest.(check int) "repair removes the four bad files" 4
        r2.S.Fsck.removed;
      Alcotest.(check bool) "repair leaves the store clean" true
        (S.Fsck.clean r2);
      Alcotest.(check bool) "manifest compacted" true
        r2.S.Fsck.manifest_rewritten;
      let r3 = S.Fsck.scan s in
      Alcotest.(check bool) "post-repair scan is clean" true (S.Fsck.clean r3);
      Alcotest.(check int) "survivor intact" 1 r3.S.Fsck.sound;
      Alcotest.(check int) "no manifest drift left" 0
        (r3.S.Fsck.manifest_stale + r3.S.Fsck.manifest_missing);
      Alcotest.(check (option string)) "sound record still reads"
        (Some "v:4444444444444444")
        (S.Disk.find s ~key:"4444444444444444");
      S.Disk.close s)

(* ---- crash-recovery property -------------------------------------- *)

let prop_faulted_store_repairs_clean =
  let open QCheck in
  (* Under any durability plan — torn writes, bit flips, write errors,
     crash-before-rename, or all four at once — a store that absorbed a
     burst of puts is always recoverable: [fsck --repair] leaves it
     clean, and every surviving record still decodes to the exact
     payload that was put.  Silent wrong answers are the one forbidden
     outcome. *)
  Test.make ~name:"store: fsck --repair recovers any fault-injected store"
    ~count:40
    (pair (int_range 0 4) small_nat)
    (fun (plan_ix, seed) ->
       let plan =
         { (List.nth Fault.Catalog.disk plan_ix) with Fault.Plan.seed }
       in
       let dir = fresh_dir () in
       Fun.protect ~finally:(fun () -> rm_rf dir)
         (fun () ->
            let s = S.Disk.open_ ~dir in
            let keys =
              List.init 12 (fun i -> Printf.sprintf "%032x" (i * 7919 + seed))
            in
            let (), _events =
              Fault.Hooks.run plan (fun () ->
                  List.iter
                    (fun k -> S.Disk.put s ~key:k ~payload:("payload:" ^ k))
                    keys)
            in
            let repaired = S.Fsck.scan ~repair:true s in
            let after = S.Fsck.scan s in
            let honest =
              List.for_all
                (fun k ->
                   match S.Disk.find s ~key:k with
                   | None -> true (* lost to a fault: degrade, not lie *)
                   | Some p -> p = "payload:" ^ k)
                keys
            in
            S.Disk.close s;
            S.Fsck.clean repaired && S.Fsck.clean after
            && after.S.Fsck.removed = 0 && honest))

(* ---- warm-store sweeps -------------------------------------------- *)

let test_warm_sweep_byte_identical () =
  (* the store must never change results: a store-less sweep, a cold
     store-backed sweep, and a warm one are byte-identical, and the
     warm pass recomputes nothing *)
  let sweep () =
    Staticcheck.Linter.sweep_to_json (Staticcheck.Linter.corpus_sweep ())
  in
  let reference = sweep () in
  with_dir (fun dir ->
      let s = S.Disk.open_ ~dir in
      let cold, warm =
        S.Handle.with_store (Some s) (fun () ->
            let cold = sweep () in
            let before = S.Disk.stats s in
            let warm = sweep () in
            let d = S.Disk.sub_stats (S.Disk.stats s) before in
            Alcotest.(check int) "warm pass misses nothing" 0 d.S.Disk.misses;
            Alcotest.(check int) "warm pass writes nothing" 0 d.S.Disk.writes;
            Alcotest.(check bool) "warm pass all hits" true (d.S.Disk.hits > 0);
            (cold, warm))
      in
      Alcotest.(check string) "cold sweep matches store-less" reference cold;
      Alcotest.(check string) "warm sweep matches store-less" reference warm)

let test_warm_sweep_jobs_identical () =
  (* -j independence survives a shared warm store *)
  with_dir (fun dir ->
      let s = S.Disk.open_ ~dir in
      let prev = Par.jobs () in
      let sweep jobs =
        Par.set_jobs jobs;
        Staticcheck.Linter.sweep_to_json (Staticcheck.Linter.corpus_sweep ())
      in
      Fun.protect ~finally:(fun () -> Par.set_jobs prev)
        (fun () ->
          S.Handle.with_store (Some s) (fun () ->
              let j1 = sweep 1 in
              let j2 = sweep 2 and j4 = sweep 4 in
              Alcotest.(check string) "-j2 byte-identical on warm store" j1 j2;
              Alcotest.(check string) "-j4 byte-identical on warm store" j1 j4)))

(* ---- suite -------------------------------------------------------- *)

let () =
  Alcotest.run "store"
    [ ("record",
       [ Alcotest.test_case "round trip" `Quick test_record_roundtrip;
         Alcotest.test_case "tamper taxonomy" `Quick test_record_taxonomy;
         Alcotest.test_case "sealed lines" `Quick test_sealed_lines ]);
      ("disk",
       [ Alcotest.test_case "round trip and reopen" `Quick
           test_disk_roundtrip_and_reopen;
         Alcotest.test_case "key validation" `Quick test_disk_key_validation;
         Alcotest.test_case "degrades on corruption" `Quick
           test_disk_degrades_on_corruption ]);
      ("codec", [ Alcotest.test_case "tagged marshal" `Quick test_codec ]);
      ("handle",
       [ Alcotest.test_case "cached flow" `Quick test_handle_cached;
         Alcotest.test_case "sim-plan bypass" `Quick
           test_handle_sim_plan_bypass ]);
      ("fsck",
       [ Alcotest.test_case "classify and repair" `Quick
           test_fsck_classify_and_repair;
         QCheck_alcotest.to_alcotest prop_faulted_store_repairs_clean ]);
      ("sweep",
       [ Alcotest.test_case "byte-identical store-less/cold/warm" `Quick
           test_warm_sweep_byte_identical;
         Alcotest.test_case "byte-identical across -j" `Quick
           test_warm_sweep_jobs_identical ]) ]
