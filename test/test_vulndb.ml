(* Tests for the vulnerability database: categories, reports, the
   store, curated seed data, the synthetic generator and Figure-1
   statistics. *)

module C = Vulndb.Category
module R = Vulndb.Report
module D = Vulndb.Database

(* ---- prng -------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Vulndb.Prng.create ~seed:7 and b = Vulndb.Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Vulndb.Prng.next a) (Vulndb.Prng.next b)
  done

let test_prng_bounds () =
  let rng = Vulndb.Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Vulndb.Prng.below rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds";
    let r = Vulndb.Prng.in_range rng ~low:(-5) ~high:5 in
    if r < -5 || r > 5 then Alcotest.fail "range violated"
  done

let test_prng_shuffle_permutes () =
  let rng = Vulndb.Prng.create ~seed:3 in
  let arr = Array.init 50 (fun i -> i) in
  Vulndb.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

(* ---- category ---------------------------------------------------- *)

let test_category_counts_sum () =
  let total = List.fold_left (fun acc c -> acc + C.paper_count c) 0 C.all in
  Alcotest.(check int) "5925 reports" C.total_reports total

let test_category_percent_consistent () =
  List.iter
    (fun c ->
       let pct =
         100.0 *. float_of_int (C.paper_count c) /. float_of_int C.total_reports
       in
       Alcotest.(check int) (C.to_string c) (C.paper_percent c)
         (int_of_float (Float.round pct)))
    C.all

let test_category_top_five () =
  (* The paper: input validation 23, boundary 21, design 18,
     exceptional 11, access validation 10. *)
  Alcotest.(check int) "input" 23 (C.paper_percent C.Input_validation_error);
  Alcotest.(check int) "boundary" 21 (C.paper_percent C.Boundary_condition_error);
  Alcotest.(check int) "design" 18 (C.paper_percent C.Design_error);
  Alcotest.(check int) "exceptional" 11
    (C.paper_percent C.Failure_to_handle_exceptional_conditions);
  Alcotest.(check int) "access" 10 (C.paper_percent C.Access_validation_error)

let test_category_string_roundtrip () =
  List.iter
    (fun c ->
       match C.of_string (C.to_string c) with
       | Some c' -> Alcotest.(check bool) (C.to_string c) true (C.equal c c')
       | None -> Alcotest.fail (C.to_string c))
    C.all;
  Alcotest.(check bool) "unknown string" true (C.of_string "Bogus" = None)

let test_category_twelve_classes () =
  Alcotest.(check int) "12 classes" 12 (List.length C.all)

(* ---- report ------------------------------------------------------ *)

let test_report_family () =
  Alcotest.(check bool) "stack" true (R.studied_family R.Stack_buffer_overflow);
  Alcotest.(check bool) "heap" true (R.studied_family R.Heap_overflow);
  Alcotest.(check bool) "integer" true (R.studied_family R.Integer_overflow);
  Alcotest.(check bool) "format" true (R.studied_family R.Format_string);
  Alcotest.(check bool) "race" true (R.studied_family R.File_race);
  Alcotest.(check bool) "traversal out" false (R.studied_family R.Path_traversal);
  Alcotest.(check bool) "other out" false (R.studied_family R.Other_flaw)

(* ---- database ---------------------------------------------------- *)

let sample_report id =
  R.make ~id ~title:"t" ~date:"2002-01-01" ~category:C.Design_error ~software:"s" ()

let test_database_add_find () =
  let db = D.empty () in
  D.add db (sample_report 1);
  D.add db (sample_report 2);
  Alcotest.(check int) "size" 2 (D.size db);
  Alcotest.(check bool) "find" true (D.find db 1 <> None);
  Alcotest.(check bool) "missing" true (D.find db 3 = None)

let test_database_duplicate () =
  let db = D.empty () in
  D.add db (sample_report 1);
  match D.add db (sample_report 1) with
  | _ -> Alcotest.fail "duplicate accepted"
  | exception Invalid_argument _ -> ()

let test_database_sorted_reports () =
  let db = D.of_reports [ sample_report 5; sample_report 2; sample_report 9 ] in
  Alcotest.(check (list int)) "ascending" [ 2; 5; 9 ]
    (List.map (fun (r : R.t) -> r.R.id) (D.reports db))

(* ---- seed data --------------------------------------------------- *)

let test_seed_contains_paper_ids () =
  let db = Vulndb.Seed_data.database () in
  List.iter
    (fun id ->
       Alcotest.(check bool) (string_of_int id) true (D.find db id <> None))
    [ 3163; 5493; 3958; 5960; 5774; 6255; 1480; 2708; 1387; 2210; 2264 ]

let test_seed_table1 () =
  let ids = List.map (fun (r : R.t) -> r.R.id) Vulndb.Seed_data.table1 in
  Alcotest.(check (list int)) "paper order" [ 3163; 5493; 3958 ] ids;
  (* All three are the same mechanism yet three different categories. *)
  let cats =
    List.sort_uniq compare
      (List.map (fun (r : R.t) -> C.to_string r.R.category) Vulndb.Seed_data.table1)
  in
  Alcotest.(check int) "three distinct categories" 3 (List.length cats);
  List.iter
    (fun (r : R.t) ->
       Alcotest.(check bool) "integer overflow" true (r.R.flaw = R.Integer_overflow);
       Alcotest.(check bool) "has activity" true (r.R.elementary_activity <> None))
    Vulndb.Seed_data.table1

let test_seed_all_curated () =
  List.iter
    (fun (r : R.t) ->
       Alcotest.(check bool) r.R.title false r.R.synthetic)
    Vulndb.Seed_data.reports

(* ---- synth ------------------------------------------------------- *)

let db = lazy (Vulndb.Synth.generate ~seed:20021130)

let test_synth_total () =
  Alcotest.(check int) "5925 reports" C.total_reports (D.size (Lazy.force db))

let test_synth_category_counts_exact () =
  let db = Lazy.force db in
  List.iter
    (fun c ->
       Alcotest.(check int) (C.to_string c) (C.paper_count c)
         (List.length (D.by_category db c)))
    C.all

let test_synth_matches_paper_percentages () =
  Alcotest.(check bool) "Figure 1 reproduced" true
    (Vulndb.Stats.matches_paper (Lazy.force db))

let test_synth_family_share () =
  let share = Vulndb.Stats.family_share (Lazy.force db) in
  Alcotest.(check bool)
    (Printf.sprintf "family share %.1f%% within 22 +/- 1" share)
    true
    (share > 21.0 && share < 23.0)

let test_synth_deterministic () =
  let a = Vulndb.Synth.generate ~seed:1 and b = Vulndb.Synth.generate ~seed:1 in
  let titles d = List.map (fun (r : R.t) -> r.R.title) (D.reports d) in
  Alcotest.(check bool) "same titles" true (titles a = titles b)

let test_synth_includes_curated () =
  let db = Lazy.force db in
  Alcotest.(check int) "curated present"
    (List.length Vulndb.Seed_data.reports)
    (List.length (D.curated db));
  Alcotest.(check bool) "#6255 in the full database" true (D.find db 6255 <> None)

let test_synth_ids_disjoint () =
  let db = Lazy.force db in
  List.iter
    (fun (r : R.t) ->
       if r.R.synthetic then
         Alcotest.(check bool) "synthetic id space" true
           (r.R.id >= Vulndb.Synth.synthetic_id_base))
    (D.reports db)

(* ---- stats ------------------------------------------------------- *)

let test_stats_breakdown_sorted () =
  let rows = Vulndb.Stats.breakdown (Lazy.force db) in
  Alcotest.(check int) "12 rows" 12 (List.length rows);
  let counts = List.map (fun r -> r.Vulndb.Stats.count) rows in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) counts)
    counts;
  (match rows with
   | top :: _ ->
       Alcotest.(check bool) "input validation leads" true
         (C.equal top.Vulndb.Stats.category C.Input_validation_error)
   | [] -> Alcotest.fail "no rows")

let test_stats_flaw_breakdown () =
  let flaws = Vulndb.Stats.flaw_breakdown (Lazy.force db) in
  let get f = try List.assoc f flaws with Not_found -> 0 in
  Alcotest.(check bool) "stack overflows dominate the family" true
    (get R.Stack_buffer_overflow > get R.Heap_overflow);
  Alcotest.(check bool) "other is the long tail" true
    (get R.Other_flaw > get R.Stack_buffer_overflow)

let prop_synth_any_seed_matches_figure1 =
  let open QCheck in
  Test.make ~name:"synth: Figure 1 holds for any seed" ~count:10 (int_range 0 10000)
    (fun seed ->
       let db = Vulndb.Synth.generate ~seed in
       D.size db = C.total_reports && Vulndb.Stats.matches_paper db)

let () =
  Alcotest.run "vulndb"
    [ ("prng",
       [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
         Alcotest.test_case "bounds" `Quick test_prng_bounds;
         Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes ]);
      ("category",
       [ Alcotest.test_case "counts sum to 5925" `Quick test_category_counts_sum;
         Alcotest.test_case "percent consistent" `Quick
           test_category_percent_consistent;
         Alcotest.test_case "top five" `Quick test_category_top_five;
         Alcotest.test_case "string roundtrip" `Quick test_category_string_roundtrip;
         Alcotest.test_case "twelve classes" `Quick test_category_twelve_classes ]);
      ("report", [ Alcotest.test_case "studied family" `Quick test_report_family ]);
      ("database",
       [ Alcotest.test_case "add/find" `Quick test_database_add_find;
         Alcotest.test_case "duplicate" `Quick test_database_duplicate;
         Alcotest.test_case "sorted" `Quick test_database_sorted_reports ]);
      ("seed data",
       [ Alcotest.test_case "paper ids present" `Quick test_seed_contains_paper_ids;
         Alcotest.test_case "table 1" `Quick test_seed_table1;
         Alcotest.test_case "all curated" `Quick test_seed_all_curated ]);
      ("synth",
       [ Alcotest.test_case "total" `Quick test_synth_total;
         Alcotest.test_case "exact category counts" `Quick
           test_synth_category_counts_exact;
         Alcotest.test_case "matches paper" `Quick test_synth_matches_paper_percentages;
         Alcotest.test_case "family ~22%" `Quick test_synth_family_share;
         Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
         Alcotest.test_case "includes curated" `Quick test_synth_includes_curated;
         Alcotest.test_case "id spaces disjoint" `Quick test_synth_ids_disjoint;
         QCheck_alcotest.to_alcotest prop_synth_any_seed_matches_figure1 ]);
      ("stats",
       [ Alcotest.test_case "breakdown sorted" `Quick test_stats_breakdown_sorted;
         Alcotest.test_case "flaw breakdown" `Quick test_stats_flaw_breakdown ]) ]
