(* Tests for the extension modules: the predicate check library,
   finite-domain verification, model metrics, database queries/trends/
   CSV, heap realloc & validation, ASLR, and the Table-1 generic
   pattern. *)

module P = Pfsm.Predicate
module V = Pfsm.Value
module E = Pfsm.Env
module C = Pfsm.Checks
module Vf = Pfsm.Verify

let holds ?(env = E.empty) ~self p = P.holds ~env ~self p

(* ---- checks ------------------------------------------------------ *)

let test_checks_registry () =
  Alcotest.(check int) "eleven checks" 11 (List.length C.names);
  List.iter
    (fun name ->
       Alcotest.(check bool) name true (C.kind_of name <> None))
    C.names;
  Alcotest.(check bool) "unknown" true (C.kind_of "bogus" = None)

let test_checks_predicates_behave () =
  Alcotest.(check bool) "representable yes" true
    (holds ~self:(V.Str "42") C.representable_int32);
  Alcotest.(check bool) "representable no" false
    (holds ~self:(V.Str "4294966272") C.representable_int32);
  Alcotest.(check bool) "length_within" false
    (holds ~self:(V.Str (String.make 201 'x')) (C.length_within 200));
  Alcotest.(check bool) "non_negative" false (holds ~self:(V.Int (-1)) C.non_negative);
  Alcotest.(check bool) "traversal_free catches double decode" false
    (holds ~self:(V.Str "..%252fx") (C.traversal_free ~decodes:2));
  Alcotest.(check bool) "format_free" false (holds ~self:(V.Str "%n") C.format_free);
  let env = E.add_str "k" "terminal" E.empty in
  Alcotest.(check bool) "is_terminal" true
    (P.holds ~env ~self:V.Unit (C.is_terminal ~kind_key:"k"));
  let env = E.add_bool "priv" true E.empty in
  Alcotest.(check bool) "has_privilege" true
    (P.holds ~env ~self:V.Unit (C.has_privilege ~flag:"priv"));
  Alcotest.(check bool) "address_equals" true
    (holds ~self:(V.Addr 5) (C.address_equals (V.Addr 5)))

let test_checks_pfsm_builder () =
  let pfsm =
    C.pfsm ~name:"p" ~check:"index_in_bounds" ~activity:"a"
      (C.index_in_bounds ~low:0 ~high:9)
  in
  Alcotest.(check bool) "kind derived" true
    (Pfsm.Taxonomy.equal pfsm.Pfsm.Primitive.kind
       Pfsm.Taxonomy.Content_attribute_check);
  Alcotest.(check bool) "default impl is no check" true
    (Pfsm.Primitive.missing_check pfsm);
  match C.pfsm ~name:"p" ~check:"nope" ~activity:"a" P.True with
  | _ -> Alcotest.fail "unknown check accepted"
  | exception Invalid_argument _ -> ()

(* ---- verify ------------------------------------------------------ *)

let bounded_pfsm =
  Pfsm.Primitive.make ~name:"p" ~kind:Pfsm.Taxonomy.Content_attribute_check
    ~activity:"a"
    ~spec:(P.between P.Self ~low:0 ~high:100)
    ~impl:(P.Cmp (P.Le, P.Self, P.Lit (V.Int 100)))

let test_verify_refutes () =
  match Vf.verify bounded_pfsm (Vf.Int_range { low = -10; high = 10 }) with
  | Vf.Refuted { witness = V.Int w; _ } ->
      Alcotest.(check bool) "negative witness" true (w < 0)
  | other -> Alcotest.fail (Format.asprintf "%a" Vf.pp_result other)

let test_verify_verifies_secured () =
  Alcotest.(check bool) "secured verifies" true
    (Vf.verify_secured bounded_pfsm (Vf.Int_range { low = -2048; high = 2048 }));
  match Vf.verify (Pfsm.Primitive.secured bounded_pfsm)
          (Vf.Int_range { low = -100; high = 200 })
  with
  | Vf.Verified { candidates = 301 } -> ()
  | other -> Alcotest.fail (Format.asprintf "%a" Vf.pp_result other)

let test_verify_domain_sizes () =
  Alcotest.(check int) "range" 21 (Vf.size (Vf.Int_range { low = -10; high = 10 }));
  Alcotest.(check int) "empty range" 0 (Vf.size (Vf.Int_range { low = 5; high = 4 }));
  Alcotest.(check int) "strings" 3 (Vf.size (Vf.Strings [ "a"; "b"; "c" ]));
  (* 1 + 2 + 4 + 8 strings over a 2-letter alphabet up to length 3 *)
  Alcotest.(check int) "alphabet" 15
    (Vf.size (Vf.Alphabet_strings { alphabet = "ab"; max_len = 3 }));
  Alcotest.(check int) "enumerate matches size" 15
    (List.length (Vf.enumerate (Vf.Alphabet_strings { alphabet = "ab"; max_len = 3 })))

let test_verify_too_large () =
  match Vf.verify bounded_pfsm (Vf.Int_range { low = 0; high = 1_000_000 }) with
  | Vf.Domain_too_large _ -> ()
  | other -> Alcotest.fail (Format.asprintf "%a" Vf.pp_result other)

let test_verify_alphabet_finds_witness () =
  let pfsm =
    Pfsm.Primitive.make ~name:"p" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"a"
      ~spec:(P.Not (P.Contains (P.Self, "ab")))
      ~impl:P.True
  in
  match Vf.verify pfsm (Vf.Alphabet_strings { alphabet = "ab"; max_len = 3 }) with
  | Vf.Refuted { witness = V.Str w; _ } ->
      Alcotest.(check bool) "contains ab" true
        (String.length w >= 2)
  | other -> Alcotest.fail (Format.asprintf "%a" Vf.pp_result other)

let prop_verify_agrees_with_witness_search =
  let open QCheck in
  Test.make ~name:"verify: refutation agrees with witness search on the same domain"
    ~count:100
    (pair (int_range (-50) 150) (int_range (-50) 150))
    (fun (bound, low) ->
       let pfsm =
         Pfsm.Primitive.make ~name:"q" ~kind:Pfsm.Taxonomy.Content_attribute_check
           ~activity:"a"
           ~spec:(P.between P.Self ~low:0 ~high:100)
           ~impl:(P.Cmp (P.Le, P.Self, P.Lit (V.Int bound)))
       in
       let domain = Vf.Int_range { low; high = low + 60 } in
       let exhaustive =
         match Vf.verify pfsm domain with
         | Vf.Refuted _ -> true
         | Vf.Verified _ -> false
         | Vf.Budget_exhausted _ | Vf.Domain_too_large _ -> false
       in
       let sampled =
         Pfsm.Witness.hidden_witnesses pfsm
           ~candidates:(List.map (fun v -> Pfsm.Witness.candidate v) (Vf.enumerate domain))
         <> []
       in
       exhaustive = sampled)

(* ---- metrics ----------------------------------------------------- *)

let test_metrics_sendmail () =
  let m = Pfsm.Metrics.of_model (Apps.Sendmail.model (Apps.Sendmail.setup ())) in
  Alcotest.(check int) "operations" 2 m.Pfsm.Metrics.operations;
  Alcotest.(check int) "activities" 3 m.Pfsm.Metrics.elementary_activities;
  Alcotest.(check int) "predicates" 3 m.Pfsm.Metrics.predicates;
  Alcotest.(check int) "missing checks" 2 m.Pfsm.Metrics.missing_checks;
  Alcotest.(check bool) "obs1" true (Pfsm.Metrics.observation1_holds m);
  Alcotest.(check bool) "obs2" true (Pfsm.Metrics.observation2_holds m);
  Alcotest.(check bool) "obs3" true (Pfsm.Metrics.observation3_holds m)

let test_metrics_nullhttpd () =
  let m = Pfsm.Metrics.of_model (Apps.Nullhttpd.model (Apps.Nullhttpd.setup ())) in
  Alcotest.(check int) "operations" 3 m.Pfsm.Metrics.operations;
  Alcotest.(check int) "objects" 3 (List.length m.Pfsm.Metrics.objects);
  Alcotest.(check int) "activities" 4 m.Pfsm.Metrics.elementary_activities

let test_metrics_kinds_sum () =
  List.iter
    (fun model ->
       let m = Pfsm.Metrics.of_model model in
       let kind_total = List.fold_left (fun acc (_, n) -> acc + n) 0 m.Pfsm.Metrics.kinds in
       Alcotest.(check int) m.Pfsm.Metrics.model_name m.Pfsm.Metrics.elementary_activities
         kind_total)
    [ Apps.Sendmail.model (Apps.Sendmail.setup ());
      Apps.Nullhttpd.model (Apps.Nullhttpd.setup ());
      Apps.Xterm.model ();
      Apps.Iis.model (Apps.Iis.setup ()) ]

(* ---- vulndb query / trend / csv ---------------------------------- *)

let db = lazy (Vulndb.Synth.generate ~seed:20021130)

let test_query_by_software () =
  let hits = Vulndb.Query.by_software (Lazy.force db) "sendmail" in
  Alcotest.(check bool) "finds #3163 case-insensitively" true
    (List.exists (fun (r : Vulndb.Report.t) -> r.Vulndb.Report.id = 3163) hits)

let test_query_by_flaw () =
  let races = Vulndb.Query.by_flaw (Lazy.force db) Vulndb.Report.File_race in
  Alcotest.(check int) "file races at quota" 100 (List.length races)

let test_query_between_dates () =
  let hits = Vulndb.Query.between (Lazy.force db) ~since:"2001-01-01" ~until:"2001-12-31" in
  Alcotest.(check bool) "nonempty" true (hits <> []);
  List.iter
    (fun (r : Vulndb.Report.t) ->
       Alcotest.(check bool) r.Vulndb.Report.date true
         (Vulndb.Query.year_of r = 2001))
    hits

let test_query_text_search () =
  let hits = Vulndb.Query.text_search (Lazy.force db) "ReadPOSTData" in
  Alcotest.(check bool) "finds #6255" true
    (List.exists (fun (r : Vulndb.Report.t) -> r.Vulndb.Report.id = 6255) hits)

let test_query_remote_share () =
  let share = Vulndb.Query.remote_share (Lazy.force db) in
  Alcotest.(check bool) "plausible" true (share > 50.0 && share < 95.0)

let test_trend_per_year_sums () =
  let db = Lazy.force db in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Vulndb.Trend.per_year db) in
  Alcotest.(check int) "sums to database size" (Vulndb.Database.size db) total;
  let family_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Vulndb.Trend.family_per_year db)
  in
  Alcotest.(check int) "family sums" (Vulndb.Stats.family_count db) family_total

let test_trend_years_sorted () =
  let years = List.map fst (Vulndb.Trend.per_year (Lazy.force db)) in
  Alcotest.(check (list int)) "ascending" (List.sort compare years) years

let test_csv_escaping () =
  Alcotest.(check string) "plain untouched" "abc" (Vulndb.Csv.escape "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Vulndb.Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Vulndb.Csv.escape "a\"b")

let test_csv_export_shape () =
  let csv = Vulndb.Csv.of_database (Vulndb.Seed_data.database ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + reports"
    (1 + List.length Vulndb.Seed_data.reports)
    (List.length lines);
  Alcotest.(check string) "header" Vulndb.Csv.header (List.hd lines)

let test_csv_parse_round_trip_seed () =
  let db = Vulndb.Seed_data.database () in
  match Vulndb.Csv.parse (Vulndb.Csv.of_database db) with
  | Ok reports ->
      Alcotest.(check bool) "seed database survives the round trip" true
        (reports = Vulndb.Database.reports db)
  | Error e -> Alcotest.failf "parse failed at line %d: %s" e.line e.message

let test_csv_parse_quoted_fields () =
  let nasty =
    Vulndb.Report.make ~id:1 ~title:"a,b \"and\" c\nd" ~date:"2002-11-30"
      ~category:Vulndb.Category.Boundary_condition_error ~software:"x, y"
      ~elementary_activity:"copy \"input\",\nthen free" ~description:"line1\nline2"
      ()
  in
  let doc = Vulndb.Csv.header ^ "\n" ^ Vulndb.Csv.of_report nasty ^ "\n" in
  (match Vulndb.Csv.parse doc with
   | Ok [ r ] ->
       Alcotest.(check bool) "embedded commas/quotes/newlines survive" true
         (r = nasty)
   | Ok rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)
   | Error e -> Alcotest.failf "parse failed at line %d: %s" e.line e.message);
  (* CRLF row endings parse to the same reports *)
  let plain =
    Vulndb.Report.make ~id:2 ~title:"a,b" ~date:"2002-11-30"
      ~category:Vulndb.Category.Race_condition_error ~software:"s"
      ~description:"d" ()
  in
  let crlf = Vulndb.Csv.header ^ "\r\n" ^ Vulndb.Csv.of_report plain ^ "\r\n" in
  match Vulndb.Csv.parse crlf with
  | Ok [ r ] -> Alcotest.(check bool) "CRLF accepted" true (r = plain)
  | Ok _ | Error _ -> Alcotest.fail "CRLF document rejected"

let test_csv_parse_errors () =
  (match Vulndb.Csv.parse "nonsense\n1,2,3\n" with
   | Error { line = 1; _ } -> ()
   | Error e -> Alcotest.failf "wrong line %d" e.line
   | Ok _ -> Alcotest.fail "bad header accepted");
  (match Vulndb.Csv.parse (Vulndb.Csv.header ^ "\n1,2,3\n") with
   | Error { line = 2; _ } -> ()
   | Error e -> Alcotest.failf "wrong line %d" e.line
   | Ok _ -> Alcotest.fail "short row accepted");
  (match
     Vulndb.Csv.parse
       (Vulndb.Csv.header
        ^ "\n7,t,2002-01-01,Not A Category,s,remote,other,false,,d\n")
   with
   | Error { line = 2; _ } -> ()
   | Error e -> Alcotest.failf "wrong line %d" e.line
   | Ok _ -> Alcotest.fail "unknown category accepted");
  match Vulndb.Csv.parse (Vulndb.Csv.header ^ "\n7,\"unterminated\n") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated quote accepted"

(* The typed-error contract: every malformed input names the line,
   the column and (for bad fields) the offending field itself. *)
let test_csv_malformed_locations () =
  (match Vulndb.Csv.parse_rows "a,\"unterm" with
   | Error { line = 1; column = 3; field = None; message } ->
       Alcotest.(check bool) "names the quote" true
         (String.length message > 0)
   | Error e ->
       Alcotest.failf "unterminated quote at %d:%d, wanted 1:3" e.line e.column
   | Ok _ -> Alcotest.fail "unterminated quote accepted");
  (match Vulndb.Csv.parse_rows "ab\rcd\n" with
   | Error { line = 1; column = 3; _ } -> ()
   | Error e -> Alcotest.failf "bare CR at %d:%d, wanted 1:3" e.line e.column
   | Ok _ -> Alcotest.fail "bare CR outside quotes accepted");
  (match Vulndb.Csv.parse_rows "\"a\rb\"\n" with
   | Ok [ { fields = [ (1, "a\rb") ]; _ } ] -> ()
   | _ -> Alcotest.fail "quoted CR should be data");
  (match Vulndb.Csv.parse_rows "\"ok\"garbage\n" with
   | Error { line = 1; column = 5; _ } -> ()
   | Error e -> Alcotest.failf "garbage after quote at %d:%d" e.line e.column
   | Ok _ -> Alcotest.fail "garbage after closing quote accepted");
  (* ragged row: counted against the row's starting line *)
  (match Vulndb.Csv.parse (Vulndb.Csv.header ^ "\n1,2,3\n") with
   | Error { line = 2; column = 1; field = None; message } ->
       Alcotest.(check bool) "says ragged" true
         (String.length message > 0 && String.sub message 0 6 = "ragged")
   | Error e -> Alcotest.failf "ragged row at %d:%d" e.line e.column
   | Ok _ -> Alcotest.fail "ragged row accepted");
  (* a bad field carries the field and its exact starting column:
     "7,t,2002-01-01," is 15 chars, so category starts at column 16 *)
  match
    Vulndb.Csv.parse
      (Vulndb.Csv.header ^ "\n7,t,2002-01-01,Not A Category,s,remote,other,false,,d\n")
  with
  | Error { line = 2; column = 16; field = Some "Not A Category"; _ } -> ()
  | Error e ->
      Alcotest.failf "bad category at %d:%d field %s" e.line e.column
        (Option.value e.field ~default:"<none>")
  | Ok _ -> Alcotest.fail "unknown category accepted"

let prop_csv_round_trip =
  let open QCheck in
  let field_gen =
    (* strings biased towards the characters that exercise quoting *)
    string_gen_of_size (Gen.int_range 0 12)
      (Gen.oneof
         [ Gen.char_range 'a' 'z';
           Gen.oneofl [ ','; '"'; '\n'; ' '; '%'; '0' ] ])
  in
  Test.make ~name:"csv: parse (of_database db) = reports db" ~count:100
    (pair (list_of_size (Gen.int_range 0 8) (triple field_gen field_gen field_gen))
       small_nat)
    (fun (rows, seed) ->
       let category i =
         List.nth Vulndb.Category.all (i mod List.length Vulndb.Category.all)
       in
       let reports =
         List.mapi
           (fun i (title, software, description) ->
              Vulndb.Report.make ~id:(i + 1) ~title ~date:"2002-11-30"
                ~category:(category (seed + i)) ~software
                ?elementary_activity:
                  (if i mod 2 = 0 || description = "" then None
                   else Some description)
                ~description ~synthetic:(i mod 3 = 0) ())
           rows
       in
       let db = Vulndb.Database.of_reports reports in
       Vulndb.Csv.parse (Vulndb.Csv.of_database db)
       = Ok (Vulndb.Database.reports db))

(* ---- heap realloc & validate ------------------------------------- *)

let heap () =
  let mem = Machine.Memory.create ~base:0x1000 ~size:0x10000 in
  (mem, Machine.Heap.create mem ~base:0x1100 ~size:0x8000 ~safe_unlink:false)

let test_heap_realloc_preserves_prefix () =
  let mem, h = heap () in
  let a = match Machine.Heap.malloc h 32 with Some a -> a | None -> assert false in
  Machine.Memory.write_string mem a "payload-data";
  (match Machine.Heap.realloc h a 256 with
   | Some b ->
       Alcotest.(check string) "prefix copied" "payload-data"
         (String.sub (Machine.Memory.read_bytes mem b 12) 0 12);
       Alcotest.(check bool) "grew" true (Machine.Heap.usable_size h ~user:b >= 256)
   | None -> Alcotest.fail "realloc failed")

let test_heap_validate_clean () =
  let _, h = heap () in
  let users =
    List.filter_map (fun i -> Machine.Heap.malloc h (24 + (8 * i))) (List.init 10 Fun.id)
  in
  List.iteri (fun i u -> if i mod 3 = 0 then Machine.Heap.free h u) users;
  Alcotest.(check int) "no issues" 0 (List.length (Machine.Heap.validate h))

let test_heap_validate_detects_smashed_size () =
  let mem, h = heap () in
  let a = match Machine.Heap.malloc h 64 with Some a -> a | None -> assert false in
  let _b = Machine.Heap.malloc h 64 in
  (* Smash a's size field to a nonsense value. *)
  Machine.Memory.write_i32 mem (Machine.Heap.chunk_of_user a + 4) 0x3;
  Alcotest.(check bool) "issue reported" true (Machine.Heap.validate h <> [])

let test_heap_validate_after_unlink_attack () =
  let mem, h = heap () in
  let big = match Machine.Heap.malloc h 2048 with Some a -> a | None -> assert false in
  Machine.Heap.free h big;
  let victim = match Machine.Heap.malloc h 128 with Some a -> a | None -> assert false in
  let b_chunk = victim + Machine.Heap.usable_size h ~user:victim in
  Machine.Memory.write_i32 mem (Machine.Heap.fd_addr ~chunk:b_chunk) (0x1000 + 0x20 - 12);
  Machine.Memory.write_i32 mem (Machine.Heap.bk_addr ~chunk:b_chunk) (0x1000 + 0x40);
  Machine.Heap.free h victim;
  Alcotest.(check bool) "attack leaves detectable damage" true
    (Machine.Heap.validate h <> [])

(* ---- ASLR & ablation --------------------------------------------- *)

let test_aslr_slides_regions () =
  let seed = Exploit.Ablation.aslr_seed in
  List.iter
    (fun region ->
       let s = Machine.Process.aslr_slide ~seed ~region in
       Alcotest.(check bool) "nonzero" true (s <> 0);
       Alcotest.(check int) "16-aligned" 0 (s land 0xf);
       Alcotest.(check bool) "bounded by a page" true (s <= 0xff0))
    [ 1; 2; 3 ]

let test_aslr_moves_layout () =
  let plain = Apps.Ghttpd.setup () in
  let slid = Apps.Ghttpd.setup ~aslr_seed:Exploit.Ablation.aslr_seed () in
  Alcotest.(check bool) "buffer moved" true
    (Apps.Ghttpd.expected_buf_addr plain <> Apps.Ghttpd.expected_buf_addr slid)

let test_aslr_got_not_slid () =
  let plain = Apps.Sendmail.setup () in
  let slid = Apps.Sendmail.setup ~aslr_seed:Exploit.Ablation.aslr_seed () in
  Alcotest.(check int) "GOT slot fixed (pre-PIE)" (Apps.Sendmail.setuid_slot plain)
    (Apps.Sendmail.setuid_slot slid)

let test_ablation_rows () =
  let rows = Exploit.Ablation.rows () in
  Alcotest.(check int) "four exploits" 4 (List.length rows);
  List.iter
    (fun r ->
       Alcotest.(check bool) (r.Exploit.Ablation.app ^ " hijacks without") true
         r.Exploit.Ablation.hijack_without;
       Alcotest.(check bool) (r.Exploit.Ablation.app ^ " no hijack with") false
         r.Exploit.Ablation.hijack_with)
    rows;
  Alcotest.(check bool) "summary" true
    (Exploit.Ablation.control_flow_hijacks_prevented ())

(* ---- Table-1 generic pattern ------------------------------------- *)

let test_pattern_ambiguity_rows () =
  let rows = Apps.Int_overflow_pattern.ambiguity_rows () in
  Alcotest.(check int) "three activities" 3 (List.length rows);
  List.iter
    (fun (activity, bugtraq, category, hidden) ->
       Alcotest.(check bool)
         (Apps.Int_overflow_pattern.activity_description activity ^ " hidden")
         true hidden;
       Alcotest.(check bool) "real bugtraq id" true (List.mem bugtraq [ 3163; 5493; 3958 ]);
       ignore category)
    rows;
  let categories =
    List.sort_uniq compare
      (List.map (fun (_, _, c, _) -> Vulndb.Category.to_string c) rows)
  in
  Alcotest.(check int) "three distinct categories" 3 (List.length categories)

let test_pattern_matches_seed_data () =
  List.iter
    (fun (activity, bugtraq, category, _) ->
       let report = Vulndb.Database.find_exn (Vulndb.Seed_data.database ()) bugtraq in
       Alcotest.(check string) "category agrees with the curated report"
         (Vulndb.Category.to_string report.Vulndb.Report.category)
         (Vulndb.Category.to_string category);
       ignore activity)
    (Apps.Int_overflow_pattern.ambiguity_rows ())

let test_pattern_benign () =
  let trace =
    Pfsm.Model.run (Apps.Int_overflow_pattern.model ())
      ~env:Apps.Int_overflow_pattern.benign_scenario
  in
  Alcotest.(check bool) "benign not exploited" false (Pfsm.Trace.exploited trace);
  Alcotest.(check bool) "completes" true trace.Pfsm.Trace.completed

let test_pattern_lemma () =
  Alcotest.(check bool) "lemma on the generic chain" true
    (Pfsm.Lemma.holds
       (Apps.Int_overflow_pattern.model ())
       ~scenarios:[ Apps.Int_overflow_pattern.exploit_scenario ])

(* ---- simplify ----------------------------------------------------- *)

let test_simplify_units () =
  let s = Pfsm.Simplify.simplify in
  let check name input expected =
    Alcotest.(check string) name (P.to_string expected) (P.to_string (s input))
  in
  check "true && p" (P.And (P.True, P.Env_flag "k")) (P.Env_flag "k");
  check "p && false" (P.And (P.Env_flag "k", P.False)) P.False;
  check "false || p" (P.Or (P.False, P.Env_flag "k")) (P.Env_flag "k");
  check "double negation" (P.Not (P.Not (P.Env_flag "k"))) (P.Env_flag "k");
  check "!true" (P.Not P.True) P.False;
  check "constant cmp" (P.Cmp (P.Lt, P.Lit (V.Int 3), P.Lit (V.Int 5))) P.True;
  check "constant contains"
    (P.Contains (P.Lit (V.Str "a/../b"), "../"))
    P.True;
  check "empty needle" (P.Contains (P.Self, "")) P.True;
  check "contains_any []" (P.Contains_any (P.Self, [])) P.False;
  check "contains_any singleton"
    (P.Contains_any (P.Self, [ "x" ]))
    (P.Contains (P.Self, "x"));
  check "fits_int32 literal" (P.Fits_int32 (P.Lit (V.Int 0x80000000))) P.False;
  check "format_free literal" (P.Is_format_free (P.Lit (V.Str "%n"))) P.False;
  check "nested fold"
    (P.And (P.Not P.False, P.Or (P.Env_flag "k", P.Not P.True)))
    (P.Env_flag "k")

let test_simplify_keeps_nontrivial () =
  let p = P.between P.Self ~low:0 ~high:100 in
  Alcotest.(check string) "untouched" (P.to_string p)
    (P.to_string (Pfsm.Simplify.simplify p))

let simplify_candidates =
  List.concat_map
    (fun v -> [ (E.empty, v); (E.add_bool "k" true E.empty, v) ])
    [ V.Int 0; V.Int (-5); V.Int 101; V.Str "../x"; V.Str "%n"; V.Str ""; V.Unit ]

let prop_simplify_refines =
  QCheck.Test.make ~name:"simplify: refines the original on a mixed domain" ~count:300
    (QCheck.make ~print:P.to_string
       QCheck.Gen.(
         let base =
           oneofl
             [ P.True; P.False; P.Env_flag "k";
               P.Cmp (P.Le, P.Self, P.Lit (V.Int 100));
               P.Contains (P.Self, "../"); P.Is_format_free P.Self;
               P.Fits_int32 (P.Lit (V.Int 7)); P.Contains_any (P.Self, []) ]
         in
         let rec build d =
           if d = 0 then base
           else
             frequency
               [ (2, base);
                 (1, map (fun p -> P.Not p) (build (d - 1)));
                 (1, map2 (fun a b -> P.And (a, b)) (build (d - 1)) (build (d - 1)));
                 (1, map2 (fun a b -> P.Or (a, b)) (build (d - 1)) (build (d - 1))) ]
         in
         build 4))
    (fun p ->
       let q = Pfsm.Simplify.simplify p in
       Pfsm.Simplify.refines_on simplify_candidates ~original:p ~simplified:q
       && Pfsm.Simplify.size q <= Pfsm.Simplify.size p)

(* ---- n-process scheduler ------------------------------------------ *)

let test_scheduler_n_counts () =
  let module S = Osmodel.Scheduler in
  Alcotest.(check int) "pairwise agrees" (S.interleaving_count 3 2)
    (S.interleaving_count_n [ 3; 2 ]);
  Alcotest.(check int) "3 singletons = 3!" 6 (S.interleaving_count_n [ 1; 1; 1 ]);
  Alcotest.(check int) "multinomial 2,1,1" 12 (S.interleaving_count_n [ 2; 1; 1 ]);
  Alcotest.(check int) "enumeration matches count"
    (S.interleaving_count_n [ 2; 2; 1 ])
    (List.length (S.interleavings_n [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]))

let test_scheduler_n_order_preserved () =
  let module S = Osmodel.Scheduler in
  let merges = S.interleavings_n [ [ `A 1; `A 2 ]; [ `B 1 ]; [ `C 1 ] ] in
  Alcotest.(check int) "12 merges" 12 (List.length merges);
  List.iter
    (fun m ->
       let asides = List.filter_map (function `A x -> Some x | _ -> None) m in
       Alcotest.(check (list int)) "A order" [ 1; 2 ] asides)
    merges

let test_scheduler_explore_n_three_party_race () =
  (* A three-process variant of the xterm window: the logger, the
     attacker, and a janitor that re-creates the file.  The attack
     only wins when the symlink lands in the window AND the janitor
     has not yet repaired it. *)
  let module S = Osmodel.Scheduler in
  let init () = ref [] in
  let mark label = S.step label (fun l -> l := label :: !l) in
  let verdicts =
    S.explore_n ~init
      ~procs:
        [ [ mark "check"; mark "open" ];
          [ mark "swap" ];
          [ mark "repair" ] ]
      ~check:(fun l ->
          match List.rev !l with
          | [ "check"; "swap"; "open"; "repair" ]
          | [ "check"; "swap"; "repair"; "open" ] ->
              (* swap inside the window; did repair beat the open? *)
              if List.rev !l = [ "check"; "swap"; "open"; "repair" ] then Some "won"
              else None
          | _ -> None)
      ()
  in
  Alcotest.(check int) "exactly one winning schedule" 1
    (List.length verdicts.S.verdicts)

(* ---- %hn ----------------------------------------------------------- *)

let test_fmt_hn_short_write () =
  let mem = Machine.Memory.create ~base:0x1000 ~size:0x1000 in
  Machine.Memory.write_i32 mem 0x1200 0x11223344;
  Machine.Memory.write_i32 mem 0x1100 0x1200;
  let r = Apps.Format_interp.interpret mem ~fmt:"abcdef%hn" ~arg_cursor:0x1100 in
  (* Only the low 16 bits change: 0x1122_0006. *)
  Alcotest.(check int) "low half written" 0x11220006
    (Machine.Memory.read_i32 mem 0x1200);
  Alcotest.(check (list (pair int int))) "recorded" [ (0x1200, 6) ]
    r.Apps.Format_interp.writes

let test_fmt_hn_pair_composes_address () =
  (* The classic two-%hn trick: write both halves of a 32-bit value. *)
  let mem = Machine.Memory.create ~base:0x1000 ~size:0x2000 in
  let target = 0x1300 in
  Machine.Memory.write_i32 mem 0x1100 target;          (* arg 0: low half *)
  Machine.Memory.write_i32 mem 0x1104 (target + 2);    (* arg 1: high half *)
  (* Want 0x00020001: low half = 1 chars written, then 2 total. *)
  let r = Apps.Format_interp.interpret mem ~fmt:"a%hnb%hn" ~arg_cursor:0x1100 in
  Alcotest.(check int) "composed value" 0x00020001
    (Machine.Memory.read_i32 mem target);
  Alcotest.(check int) "two writes" 2 (List.length r.Apps.Format_interp.writes)

(* ---- the other two ambiguity families ---------------------------- *)

let test_buffer_pattern () =
  let rows = Apps.Buffer_overflow_pattern.ambiguity_rows () in
  Alcotest.(check int) "three activities" 3 (List.length rows);
  List.iter
    (fun (_, bugtraq, _, hidden) ->
       Alcotest.(check bool) (string_of_int bugtraq) true hidden;
       Alcotest.(check bool) "cited id" true (List.mem bugtraq [ 6157; 5960; 4479 ]))
    rows;
  Alcotest.(check bool) "lemma" true
    (Pfsm.Lemma.holds
       (Apps.Buffer_overflow_pattern.model ())
       ~scenarios:[ Apps.Buffer_overflow_pattern.exploit_scenario ]);
  Alcotest.(check bool) "benign" false
    (Pfsm.Trace.exploited
       (Pfsm.Model.run
          (Apps.Buffer_overflow_pattern.model ())
          ~env:Apps.Buffer_overflow_pattern.benign_scenario))

let test_format_pattern () =
  let rows = Apps.Format_string_pattern.ambiguity_rows () in
  Alcotest.(check int) "three activities" 3 (List.length rows);
  List.iter
    (fun (_, bugtraq, _, hidden) ->
       Alcotest.(check bool) (string_of_int bugtraq) true hidden;
       Alcotest.(check bool) "cited id" true (List.mem bugtraq [ 1387; 2210; 2264 ]))
    rows;
  Alcotest.(check bool) "lemma" true
    (Pfsm.Lemma.holds
       (Apps.Format_string_pattern.model ())
       ~scenarios:[ Apps.Format_string_pattern.exploit_scenario ]);
  Alcotest.(check bool) "benign" false
    (Pfsm.Trace.exploited
       (Pfsm.Model.run
          (Apps.Format_string_pattern.model ())
          ~env:Apps.Format_string_pattern.benign_scenario))

let test_patterns_distinct_categories () =
  let distinct rows =
    List.length
      (List.sort_uniq compare
         (List.map (fun (_, _, c, _) -> Vulndb.Category.to_string c) rows))
  in
  Alcotest.(check int) "buffer family" 3
    (distinct (Apps.Buffer_overflow_pattern.ambiguity_rows ()));
  Alcotest.(check int) "format family" 3
    (distinct (Apps.Format_string_pattern.ambiguity_rows ()))

let () =
  Alcotest.run "extensions"
    [ ("checks",
       [ Alcotest.test_case "registry" `Quick test_checks_registry;
         Alcotest.test_case "predicates behave" `Quick test_checks_predicates_behave;
         Alcotest.test_case "pfsm builder" `Quick test_checks_pfsm_builder ]);
      ("verify",
       [ Alcotest.test_case "refutes" `Quick test_verify_refutes;
         Alcotest.test_case "verifies secured" `Quick test_verify_verifies_secured;
         Alcotest.test_case "domain sizes" `Quick test_verify_domain_sizes;
         Alcotest.test_case "too large" `Quick test_verify_too_large;
         Alcotest.test_case "alphabet witness" `Quick test_verify_alphabet_finds_witness;
         QCheck_alcotest.to_alcotest prop_verify_agrees_with_witness_search ]);
      ("metrics",
       [ Alcotest.test_case "sendmail" `Quick test_metrics_sendmail;
         Alcotest.test_case "nullhttpd" `Quick test_metrics_nullhttpd;
         Alcotest.test_case "kinds sum" `Quick test_metrics_kinds_sum ]);
      ("query/trend/csv",
       [ Alcotest.test_case "by software" `Quick test_query_by_software;
         Alcotest.test_case "by flaw" `Quick test_query_by_flaw;
         Alcotest.test_case "between dates" `Quick test_query_between_dates;
         Alcotest.test_case "text search" `Quick test_query_text_search;
         Alcotest.test_case "remote share" `Quick test_query_remote_share;
         Alcotest.test_case "trend sums" `Quick test_trend_per_year_sums;
         Alcotest.test_case "trend sorted" `Quick test_trend_years_sorted;
         Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
         Alcotest.test_case "csv export" `Quick test_csv_export_shape;
         Alcotest.test_case "csv parse round trip" `Quick
           test_csv_parse_round_trip_seed;
         Alcotest.test_case "csv quoted fields" `Quick test_csv_parse_quoted_fields;
         Alcotest.test_case "csv parse errors" `Quick test_csv_parse_errors;
         Alcotest.test_case "csv malformed locations" `Quick
           test_csv_malformed_locations;
         QCheck_alcotest.to_alcotest prop_csv_round_trip ]);
      ("heap extensions",
       [ Alcotest.test_case "realloc" `Quick test_heap_realloc_preserves_prefix;
         Alcotest.test_case "validate clean" `Quick test_heap_validate_clean;
         Alcotest.test_case "validate smashed size" `Quick
           test_heap_validate_detects_smashed_size;
         Alcotest.test_case "validate after attack" `Quick
           test_heap_validate_after_unlink_attack ]);
      ("aslr",
       [ Alcotest.test_case "slides regions" `Quick test_aslr_slides_regions;
         Alcotest.test_case "moves layout" `Quick test_aslr_moves_layout;
         Alcotest.test_case "GOT fixed" `Quick test_aslr_got_not_slid;
         Alcotest.test_case "ablation rows" `Quick test_ablation_rows ]);
      ("table-1 pattern",
       [ Alcotest.test_case "ambiguity rows" `Quick test_pattern_ambiguity_rows;
         Alcotest.test_case "matches seed data" `Quick test_pattern_matches_seed_data;
         Alcotest.test_case "benign" `Quick test_pattern_benign;
         Alcotest.test_case "lemma" `Quick test_pattern_lemma ]);
      ("simplify",
       [ Alcotest.test_case "rewrite rules" `Quick test_simplify_units;
         Alcotest.test_case "keeps nontrivial" `Quick test_simplify_keeps_nontrivial;
         QCheck_alcotest.to_alcotest prop_simplify_refines ]);
      ("scheduler n",
       [ Alcotest.test_case "counts" `Quick test_scheduler_n_counts;
         Alcotest.test_case "order preserved" `Quick test_scheduler_n_order_preserved;
         Alcotest.test_case "three-party race" `Quick
           test_scheduler_explore_n_three_party_race ]);
      ("%hn",
       [ Alcotest.test_case "short write" `Quick test_fmt_hn_short_write;
         Alcotest.test_case "pair composes address" `Quick
           test_fmt_hn_pair_composes_address ]);
      ("ambiguity families",
       [ Alcotest.test_case "buffer overflow family" `Quick test_buffer_pattern;
         Alcotest.test_case "format string family" `Quick test_format_pattern;
         Alcotest.test_case "distinct categories" `Quick
           test_patterns_distinct_categories ]) ]
