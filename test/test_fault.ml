(* The fault-injection layer and the resilience harness.

   Three contracts: the no-op plan is perfectly transparent (the 33
   consistency cells and the lemma are exactly what they were before
   the fault layer existed); every injected fault surfaces as a typed
   [Fault.outcome], never a raw exception; and a plan's seed fully
   determines its verdicts. *)

module B = Fault.Budget
module Cond = Fault.Condition
module FM = Exploit.Fault_matrix
module Sched = Osmodel.Scheduler
module Fs = Osmodel.Filesystem
module O = Apps.Outcome

(* ---- budget ------------------------------------------------------ *)

let test_budget_fuel () =
  let b = B.of_fuel 2 in
  Alcotest.(check bool) "first take" true (B.take b);
  Alcotest.(check bool) "second take" true (B.take b);
  Alcotest.(check bool) "third take refused" false (B.take b);
  Alcotest.(check bool) "exhausted" true (B.exhausted b);
  Alcotest.(check int) "used" 2 (B.used b);
  let u = B.unlimited () in
  for _ = 1 to 100 do ignore (B.take u) done;
  Alcotest.(check bool) "unlimited never exhausts" true (B.take u);
  Alcotest.(check bool) "complete coverage" true
    (B.complete (B.coverage ~covered:5 ~total:5));
  match B.coverage ~covered:3 ~total:5 with
  | B.Partial { covered = 3; total = 5 } -> ()
  | _ -> Alcotest.fail "expected Partial {3; 5}"

(* ---- no-op transparency ------------------------------------------ *)

let test_noop_plan_transparent () =
  let r = FM.run_plan Fault.Catalog.none in
  Alcotest.(check int) "all 33 consistency cells" 33 (List.length r.FM.cells);
  Alcotest.(check bool) "every cell consistent" true
    (List.for_all (fun (c : FM.cell) -> c.FM.classification = FM.Consistent)
       r.FM.cells);
  Alcotest.(check bool) "lemma still holds" true (r.FM.lemma_ok = Some true);
  Alcotest.(check int) "no fault fired" 0 (List.length r.FM.events);
  Alcotest.(check int) "no findings" 0 (List.length r.FM.findings)

let test_noop_matches_direct_matrix () =
  let direct = Exploit.Consistency.check_all () in
  let under_plan =
    Fault.Hooks.with_plan Fault.Catalog.none Exploit.Consistency.check_all
  in
  Alcotest.(check bool) "bit-identical entries" true (direct = under_plan)

(* ---- typed degradation ------------------------------------------- *)

let plan_with name knobs = { knobs with Fault.Plan.name; benign = false }

let test_heap_fault_typed () =
  let plan =
    plan_with "heap-always"
      { Fault.Plan.none with seed = 7; heap_fail_percent = Some 100 }
  in
  Fault.Hooks.with_plan plan (fun () ->
      match Cond.protect (fun () -> Apps.Nullhttpd.setup ()) with
      | Error (Cond.Heap_exhausted _) -> ()
      | Error c -> Alcotest.failf "wrong condition: %s" (Cond.to_string c)
      | Ok _ -> Alcotest.fail "allocation unexpectedly succeeded")

let test_socket_fault_typed () =
  let plan =
    plan_with "reset-now"
      { Fault.Plan.none with seed = 7; socket_reset_after = Some 0 }
  in
  Fault.Hooks.with_plan plan (fun () ->
      let s = Osmodel.Socket.of_string "hello" in
      match Osmodel.Socket.recv s 5 with
      | _ -> Alcotest.fail "recv survived a reset connection"
      | exception Fault.Simulated (Cond.Socket_reset _) -> ())

let test_fs_fault_typed () =
  let plan =
    plan_with "deny-all"
      { Fault.Plan.none with seed = 7; fs_deny_percent = Some 100 }
  in
  let fs = Fs.create () in
  Fs.mkfile fs "/tmp/x" ~owner:Osmodel.User.Root
    ~mode:(Osmodel.Perm.of_octal 0o644) "data";
  Fault.Hooks.with_plan plan (fun () ->
      (match Fs.read fs "/tmp/x" ~as_user:Osmodel.User.Root with
       | _ -> Alcotest.fail "read survived EACCES"
       | exception Fault.Simulated (Cond.Fs_denied _) -> ());
      match
        O.guard (fun () ->
            ignore (Fs.open_write fs "/tmp/x" ~as_user:Osmodel.User.Root);
            O.Benign "wrote")
      with
      | O.Resource_fault (Cond.Fs_denied { path = "/tmp/x" }) -> ()
      | o -> Alcotest.failf "guard returned %s" (O.to_string o))

(* Every catalog plan must drive the whole matrix to completion with
   only typed outcomes — any raw failwith escaping a simulation would
   abort run_plan and fail this test. *)
let test_catalog_runs_to_typed_outcomes () =
  List.iter
    (fun plan ->
       let r = FM.run_plan plan in
       Alcotest.(check bool)
         (plan.Fault.Plan.name ^ ": produced cells")
         true
         (List.length r.FM.cells > 0))
    Fault.Catalog.all;
  Alcotest.(check bool) "catalog has >= 5 fault plans" true
    (List.length Fault.Catalog.all >= 5)

(* ---- resilience assertions --------------------------------------- *)

let test_benign_plans_survive () =
  let benign =
    List.filter (fun p -> p.Fault.Plan.benign) Fault.Catalog.all
  in
  Alcotest.(check bool) "two benign plans" true (List.length benign >= 2);
  Alcotest.(check bool) "agreement survives benign faults" true
    (FM.all_benign_ok (FM.run ~plans:benign ()))

let test_matrix_seed_stable () =
  Alcotest.(check bool) "same seeds, same reports" true (FM.stable ())

let test_divergence_would_be_reported () =
  (* Findings carry every non-consistent cell, so a fail-open
     divergence cannot pass silently: check the wiring on a plan that
     certainly degrades. *)
  let r = FM.run_plan Fault.Catalog.socket_reset in
  Alcotest.(check int) "every degraded cell becomes a finding"
    (FM.count FM.Degraded r + FM.count FM.Divergent r)
    (List.length r.FM.findings)

(* ---- seed determinism (property) --------------------------------- *)

let prop_same_seed_same_verdict =
  let open QCheck in
  let plans =
    [ Fault.Catalog.short_recv; Fault.Catalog.heap_pressure;
      Fault.Catalog.fs_chaos; Fault.Catalog.bitflip;
      Fault.Catalog.socket_reset ]
  in
  Test.make ~name:"fault: same plan seed => identical outcome and events"
    ~count:25
    (pair (int_range 1 5000) (int_range 0 (List.length plans - 1)))
    (fun (seed, i) ->
       let plan = { (List.nth plans i) with Fault.Plan.seed } in
       let run () =
         Fault.Hooks.run plan (fun () ->
             Cond.protect (fun () ->
                 let t = Apps.Nullhttpd.setup () in
                 let content_len, body = Exploit.Attack.nullhttpd_5774 t in
                 Apps.Nullhttpd.handle_post t ~content_len ~body))
       in
       run () = run ())

(* ---- budgets ----------------------------------------------------- *)

let explore_labels budget =
  let init () = ref [] in
  let mark l = Sched.step l (fun st -> st := l :: !st) in
  Sched.explore ?budget ~init
    ~a:[ mark "a1"; mark "a2"; mark "a3" ]
    ~b:[ mark "b1"; mark "b2" ]
    ~check:(fun st -> Some (String.concat ";" (List.rev !st)))
    ()

let test_explore_budget_partial () =
  let full = explore_labels None in
  Alcotest.(check bool) "unbudgeted is complete" true
    (B.complete full.Sched.coverage);
  Alcotest.(check int) "C(5,2) verdicts" 10 (List.length full.Sched.verdicts);
  let cut = explore_labels (Some (B.of_fuel 4)) in
  (match cut.Sched.coverage with
   | B.Partial { covered = 4; total = 10 } -> ()
   | _ -> Alcotest.fail "expected Partial {4; 10}");
  Alcotest.(check int) "4 verdicts" 4 (List.length cut.Sched.verdicts)

let prop_explore_budget_monotone =
  let open QCheck in
  Test.make ~name:"fault: a bigger explore budget keeps every witness" ~count:50
    (pair (int_range 0 12) (int_range 0 12))
    (fun (k, extra) ->
       let small = (explore_labels (Some (B.of_fuel k))).Sched.verdicts in
       let large = (explore_labels (Some (B.of_fuel (k + extra)))).Sched.verdicts in
       List.length small <= List.length large
       && small = List.filteri (fun i _ -> i < List.length small) large)

let sendmail_scenarios =
  lazy
    (let app = Apps.Sendmail.setup () in
     let model = Apps.Sendmail.model app in
     let scenarios =
       List.map
         (fun s -> Apps.Sendmail.scenario ~str_x:s ~str_i:"7")
         (Discovery.Domain_gen.int_strings ~seed:9 ~n:20)
     in
     (model, scenarios))

let hidden_sites budget =
  let model, scenarios = Lazy.force sendmail_scenarios in
  let e = Discovery.Search.hidden_paths ?budget model ~scenarios in
  ( List.map
      (fun h ->
         (h.Discovery.Search.operation, h.Discovery.Search.pfsm.Pfsm.Primitive.name))
      e.Discovery.Search.hits,
    e.Discovery.Search.coverage )

let test_hidden_paths_budget_partial () =
  let _, scenarios = Lazy.force sendmail_scenarios in
  let n = List.length scenarios in
  let sites, coverage = hidden_sites (Some (B.of_fuel 5)) in
  (match coverage with
   | B.Partial { covered = 5; total } when total = n -> ()
   | _ -> Alcotest.fail "expected Partial {covered = 5}");
  ignore sites;
  let full_sites, full_coverage = hidden_sites None in
  Alcotest.(check bool) "unbudgeted complete" true (B.complete full_coverage);
  Alcotest.(check bool) "full search finds sites" true (full_sites <> [])

let prop_hidden_paths_budget_monotone =
  let open QCheck in
  Test.make ~name:"fault: a bigger search budget keeps every hidden path"
    ~count:30
    (pair (int_range 0 25) (int_range 0 25))
    (fun (k, extra) ->
       let small, _ = hidden_sites (Some (B.of_fuel k)) in
       let large, _ = hidden_sites (Some (B.of_fuel (k + extra))) in
       List.for_all (fun site -> List.mem site large) small)

let leaky_pfsm =
  lazy
    (let module P = Pfsm.Predicate in
     Pfsm.Primitive.make ~name:"budgeted"
       ~kind:Pfsm.Taxonomy.Content_attribute_check ~activity:"bounds check"
       ~spec:(P.between P.Self ~low:0 ~high:100)
       ~impl:P.True)

let verify_with budget =
  Pfsm.Verify.verify ?budget (Lazy.force leaky_pfsm)
    (Pfsm.Verify.Int_range { low = 0; high = 200 })

let test_verify_budget_exhausted () =
  (match verify_with (Some (B.of_fuel 10)) with
   | Pfsm.Verify.Budget_exhausted { tried = 10; total = 201 } -> ()
   | r -> Alcotest.failf "expected Budget_exhausted: %a" Pfsm.Verify.pp_result r);
  match verify_with None with
  | Pfsm.Verify.Refuted { witness = Pfsm.Value.Int 101; candidates_tried = 102 } -> ()
  | r -> Alcotest.failf "expected Refuted on 101: %a" Pfsm.Verify.pp_result r

let prop_verify_budget_monotone =
  let open QCheck in
  Test.make ~name:"fault: a bigger verify budget keeps the verdict" ~count:50
    (pair (int_range 0 250) (int_range 0 250))
    (fun (k, extra) ->
       match verify_with (Some (B.of_fuel k)), verify_with (Some (B.of_fuel (k + extra))) with
       | Pfsm.Verify.Refuted { witness = w1; _ }, Pfsm.Verify.Refuted { witness = w2; _ } ->
           w1 = w2
       | Pfsm.Verify.Budget_exhausted { tried; total = 201 }, _ -> tried = k
       | Pfsm.Verify.Verified _, Pfsm.Verify.Verified _ -> true
       | _, _ -> false)

(* ---- suite ------------------------------------------------------- *)

let () =
  Alcotest.run "fault"
    [ ("budget",
       [ Alcotest.test_case "fuel accounting" `Quick test_budget_fuel;
         Alcotest.test_case "explore partial coverage" `Quick
           test_explore_budget_partial;
         Alcotest.test_case "hidden_paths partial coverage" `Quick
           test_hidden_paths_budget_partial;
         Alcotest.test_case "verify budget exhausted" `Quick
           test_verify_budget_exhausted;
         QCheck_alcotest.to_alcotest prop_explore_budget_monotone;
         QCheck_alcotest.to_alcotest prop_hidden_paths_budget_monotone;
         QCheck_alcotest.to_alcotest prop_verify_budget_monotone ]);
      ("injection",
       [ Alcotest.test_case "heap fault is typed" `Quick test_heap_fault_typed;
         Alcotest.test_case "socket fault is typed" `Quick test_socket_fault_typed;
         Alcotest.test_case "fs fault is typed" `Quick test_fs_fault_typed;
         Alcotest.test_case "catalog runs to typed outcomes" `Quick
           test_catalog_runs_to_typed_outcomes;
         QCheck_alcotest.to_alcotest prop_same_seed_same_verdict ]);
      ("matrix",
       [ Alcotest.test_case "no-op plan transparent" `Quick
           test_noop_plan_transparent;
         Alcotest.test_case "no-op matches direct matrix" `Quick
           test_noop_matches_direct_matrix;
         Alcotest.test_case "benign plans survive" `Quick test_benign_plans_survive;
         Alcotest.test_case "seed-stable reports" `Quick test_matrix_seed_stable;
         Alcotest.test_case "degradation becomes findings" `Quick
           test_divergence_would_be_reported ]) ]
