(* Tests for the seven vulnerable-application simulations and their
   FSM models, plus the format-string interpreter. *)

module O = Apps.Outcome
module V = Pfsm.Value
module E = Pfsm.Env

let check_verdict name expected outcome =
  Alcotest.(check string) name
    (O.verdict_to_string expected)
    (O.verdict_to_string (O.verdict outcome))

(* ---- outcome ----------------------------------------------------- *)

let test_outcome_verdicts () =
  check_verdict "benign" O.Normal (O.Benign "x");
  check_verdict "refused" O.Blocked (O.Refused "x");
  check_verdict "protection" O.Blocked (O.Protection_triggered "x");
  check_verdict "exec" O.Compromised (O.Code_execution "m");
  check_verdict "write" O.Compromised (O.Arbitrary_write { addr = 1; value = 2 });
  check_verdict "leak" O.Compromised (O.Info_leak "x");
  check_verdict "crash" O.Compromised (O.Crash "x")

(* ---- format interpreter ------------------------------------------ *)

let fmt_mem () =
  let mem = Machine.Memory.create ~base:0x1000 ~size:0x1000 in
  Machine.Memory.write_i32 mem 0x1100 0xbeef;
  Machine.Memory.write_i32 mem 0x1104 77;
  mem

let test_fmt_literal () =
  let r = Apps.Format_interp.interpret (fmt_mem ()) ~fmt:"hello" ~arg_cursor:0x1100 in
  Alcotest.(check string) "passthrough" "hello" r.Apps.Format_interp.output;
  Alcotest.(check int) "count" 5 r.Apps.Format_interp.chars_written

let test_fmt_pops_args_in_order () =
  let r = Apps.Format_interp.interpret (fmt_mem ()) ~fmt:"%x:%d" ~arg_cursor:0x1100 in
  Alcotest.(check string) "hex then dec" "beef:77" r.Apps.Format_interp.output

let test_fmt_width_padding () =
  let r = Apps.Format_interp.interpret (fmt_mem ()) ~fmt:"%8x" ~arg_cursor:0x1100 in
  Alcotest.(check string) "padded" "    beef" r.Apps.Format_interp.output;
  Alcotest.(check int) "exactly 8" 8 r.Apps.Format_interp.chars_written

let test_fmt_percent_escape () =
  let r = Apps.Format_interp.interpret (fmt_mem ()) ~fmt:"100%%" ~arg_cursor:0x1100 in
  Alcotest.(check string) "escape" "100%" r.Apps.Format_interp.output

let test_fmt_percent_n_writes () =
  let mem = fmt_mem () in
  (* arg word at 0x1100 must be an address for %n: point it at 0x1200 *)
  Machine.Memory.write_i32 mem 0x1100 0x1200;
  let r = Apps.Format_interp.interpret mem ~fmt:"abcd%n" ~arg_cursor:0x1100 in
  Alcotest.(check int) "stored count" 4 (Machine.Memory.read_i32 mem 0x1200);
  Alcotest.(check (list (pair int int))) "write recorded" [ (0x1200, 4) ]
    r.Apps.Format_interp.writes

let test_fmt_percent_n_with_width_control () =
  let mem = fmt_mem () in
  Machine.Memory.write_i32 mem 0x1100 1;        (* popped by %50x *)
  Machine.Memory.write_i32 mem 0x1104 0x1200;   (* popped by %n *)
  let r = Apps.Format_interp.interpret mem ~fmt:"%50x%n" ~arg_cursor:0x1100 in
  Alcotest.(check int) "count == width" 50 (Machine.Memory.read_i32 mem 0x1200);
  Alcotest.(check int) "chars" 50 r.Apps.Format_interp.chars_written

let test_fmt_s_reads_string () =
  let mem = fmt_mem () in
  Machine.Memory.write_string mem 0x1200 "pwd\000";
  Machine.Memory.write_i32 mem 0x1100 0x1200;
  let r = Apps.Format_interp.interpret mem ~fmt:"<%s>" ~arg_cursor:0x1100 in
  Alcotest.(check string) "dereferenced" "<pwd>" r.Apps.Format_interp.output

let test_fmt_output_capped_count_exact () =
  let mem = fmt_mem () in
  Machine.Memory.write_i32 mem 0x1100 1;
  let r = Apps.Format_interp.interpret mem ~fmt:"%9999x" ~arg_cursor:0x1100 in
  Alcotest.(check int) "true count" 9999 r.Apps.Format_interp.chars_written;
  Alcotest.(check bool) "output capped" true
    (String.length r.Apps.Format_interp.output <= 4096)

(* ---- sendmail ---------------------------------------------------- *)

let test_sendmail_exploit_chain () =
  let app = Apps.Sendmail.setup () in
  let str_x, str_i = Exploit.Attack.sendmail_inputs app in
  let o = Apps.Sendmail.run_attack app ~str_x ~str_i in
  (match o with
   | O.Code_execution "Mcode" -> ()
   | other -> Alcotest.fail ("expected Mcode execution, got " ^ O.to_string other));
  Alcotest.(check bool) "GOT corrupted" false
    (Machine.Got.unchanged (Machine.Process.got (Apps.Sendmail.proc app)) "setuid")

let test_sendmail_benign () =
  let app = Apps.Sendmail.setup () in
  check_verdict "benign inputs" O.Normal (Apps.Sendmail.run_attack app ~str_x:"42" ~str_i:"7")

let test_sendmail_index_math () =
  let app = Apps.Sendmail.setup () in
  let x = Apps.Sendmail.exploit_index app in
  Alcotest.(check bool) "negative index" true (x < 0);
  Alcotest.(check int) "lands on the GOT slot"
    (Apps.Sendmail.setuid_slot app)
    (Apps.Sendmail.tTvect_addr app + (4 * x));
  Alcotest.(check int) "str_x wraps back to x" x
    (Pfsm.Strcodec.atoi32 (Apps.Sendmail.exploit_str_x app))

let test_sendmail_in_range_write_is_benign () =
  let app = Apps.Sendmail.setup () in
  check_verdict "x=100 boundary" O.Normal (Apps.Sendmail.tTflag app ~str_x:"100" ~str_i:"1");
  check_verdict "x=101 refused" O.Blocked (Apps.Sendmail.tTflag app ~str_x:"101" ~str_i:"1")

let test_sendmail_wild_negative_corrupts () =
  let app = Apps.Sendmail.setup () in
  (* A negative index that misses the GOT slot: silent corruption or
     crash, never benign. *)
  let o = Apps.Sendmail.tTflag app ~str_x:"-3" ~str_i:"9" in
  check_verdict "memory corruption" O.Compromised o

let test_sendmail_protections_block () =
  let base = Apps.Sendmail.vulnerable in
  let run config =
    let app = Apps.Sendmail.setup ~config () in
    let str_x, str_i = Exploit.Attack.sendmail_inputs app in
    Apps.Sendmail.run_attack app ~str_x ~str_i
  in
  check_verdict "input check" O.Blocked
    (run { base with Apps.Sendmail.input_check = true });
  check_verdict "index check" O.Blocked
    (run { base with Apps.Sendmail.full_index_check = true });
  check_verdict "GOT audit" O.Blocked
    (run { base with Apps.Sendmail.got_audit = true })

let test_sendmail_model_trace () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in
  let trace = Pfsm.Model.run model ~env:(Apps.Sendmail.exploit_scenario app) in
  Alcotest.(check bool) "exploited" true (Pfsm.Trace.exploited trace);
  Alcotest.(check int) "three hidden steps" 3 (Pfsm.Trace.hidden_count trace);
  let benign = Pfsm.Model.run model ~env:Apps.Sendmail.benign_scenario in
  Alcotest.(check bool) "benign not exploited" false (Pfsm.Trace.exploited benign);
  Alcotest.(check bool) "benign completes" true benign.Pfsm.Trace.completed

let test_sendmail_model_taxonomy () =
  let app = Apps.Sendmail.setup () in
  let matrix = Pfsm.Analysis.taxonomy_matrix (Apps.Sendmail.model app) in
  let names kind =
    List.map (fun (_, p) -> p.Pfsm.Primitive.name) (List.assoc kind matrix)
  in
  (* Table 2's Sendmail row. *)
  Alcotest.(check (list string)) "object type" [ "pFSM1" ]
    (names Pfsm.Taxonomy.Object_type_check);
  Alcotest.(check (list string)) "content" [ "pFSM2" ]
    (names Pfsm.Taxonomy.Content_attribute_check);
  Alcotest.(check (list string)) "reference" [ "pFSM3" ]
    (names Pfsm.Taxonomy.Reference_consistency_check)

(* ---- nullhttpd --------------------------------------------------- *)

let test_nullhttpd_5774 () =
  let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.vulnerable_v0_5 () in
  let content_len, body = Exploit.Attack.nullhttpd_5774 app in
  Alcotest.(check int) "negative contentLen" (-800) content_len;
  match Apps.Nullhttpd.handle_post app ~content_len ~body with
  | O.Code_execution "Mcode" -> ()
  | other -> Alcotest.fail ("expected Mcode, got " ^ O.to_string other)

let test_nullhttpd_6255 () =
  let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let content_len, body = Exploit.Attack.nullhttpd_6255 app in
  Alcotest.(check bool) "correct contentLen" true (content_len >= 0);
  match Apps.Nullhttpd.handle_post app ~content_len ~body with
  | O.Code_execution "Mcode" -> ()
  | other -> Alcotest.fail ("expected Mcode, got " ^ O.to_string other)

let test_nullhttpd_0_5_1_blocks_5774 () =
  let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let content_len, body = Exploit.Attack.nullhttpd_5774 app in
  check_verdict "0.5.1 check" O.Blocked
    (Apps.Nullhttpd.handle_post app ~content_len ~body)

let test_nullhttpd_loop_fix_blocks_6255 () =
  let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.fully_fixed () in
  let content_len, body = Exploit.Attack.nullhttpd_6255 app in
  check_verdict "&& fix" O.Blocked (Apps.Nullhttpd.handle_post app ~content_len ~body)

let test_nullhttpd_safe_unlink_blocks () =
  let config = { Apps.Nullhttpd.v0_5_1 with Apps.Nullhttpd.safe_unlink = true } in
  let app = Apps.Nullhttpd.setup ~config () in
  let content_len, body = Exploit.Attack.nullhttpd_6255 app in
  match Apps.Nullhttpd.handle_post app ~content_len ~body with
  | O.Protection_triggered _ -> ()
  | other -> Alcotest.fail ("expected safe unlink, got " ^ O.to_string other)

let test_nullhttpd_benign_posts () =
  List.iter
    (fun (content_len, body_len) ->
       let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.fully_fixed () in
       check_verdict
         (Printf.sprintf "cl=%d len=%d" content_len body_len)
         O.Normal
         (Apps.Nullhttpd.handle_post app ~content_len
            ~body:(String.make body_len 'b')))
    [ (0, 0); (64, 64); (2048, 2048); (5000, 3000) ]

let test_nullhttpd_silent_corruption_without_fake_header () =
  (* An overflow with plain filler corrupts the heap but never
     reaches code execution: the fake fd/bk are what weaponise it. *)
  let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let o = Apps.Nullhttpd.handle_post app ~content_len:0 ~body:(String.make 2048 'A') in
  match o with
  | O.Memory_corruption _ | O.Crash _ -> ()
  | other -> Alcotest.fail ("expected silent corruption, got " ^ O.to_string other)

let test_nullhttpd_usable_for () =
  Alcotest.(check int) "cl=-800 gives 224 bytes" 224
    (Apps.Nullhttpd.usable_for ~content_len:(-800));
  Alcotest.(check int) "cl=0 gives 1024" 1024 (Apps.Nullhttpd.usable_for ~content_len:0)

let test_nullhttpd_model_verdicts () =
  let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let model = Apps.Nullhttpd.model app in
  let content_len, body = Exploit.Attack.nullhttpd_6255 app in
  let trace =
    Pfsm.Model.run model ~env:(Apps.Nullhttpd.scenario ~content_len ~body)
  in
  Alcotest.(check bool) "#6255 exploited in model" true (Pfsm.Trace.exploited trace);
  let benign = Pfsm.Model.run model ~env:Apps.Nullhttpd.benign_scenario in
  Alcotest.(check bool) "benign ok" false (Pfsm.Trace.exploited benign)

(* ---- xterm ------------------------------------------------------- *)

let test_xterm_race_window () =
  let winners = Apps.Xterm.run_race { Apps.Xterm.open_nofollow = false } in
  Alcotest.(check int) "exactly one winning schedule" 1 (List.length winners);
  let v = List.hd winners in
  (* The winning schedule: both attacker steps inside the
     check-to-open window. *)
  Alcotest.(check (list string)) "the TOCTTOU schedule"
    [ "xterm: access(log, W_OK) as tom";
      "tom: unlink /usr/tom/x";
      "tom: symlink /usr/tom/x -> /etc/passwd";
      "xterm: open(log) as root";
      "xterm: write log data" ]
    v.Osmodel.Scheduler.schedule

let test_xterm_race_result_is_passwd_overwrite () =
  match Apps.Xterm.run_race { Apps.Xterm.open_nofollow = false } with
  | [ v ] -> (
      match v.Osmodel.Scheduler.result with
      | O.File_overwritten { path = "/etc/passwd"; _ } -> ()
      | other -> Alcotest.fail (O.to_string other))
  | l -> Alcotest.fail (Printf.sprintf "%d winners" (List.length l))

let test_xterm_nofollow_blocks_all () =
  Alcotest.(check int) "no winning schedule" 0
    (List.length (Apps.Xterm.run_race { Apps.Xterm.open_nofollow = true }))

let test_xterm_interleaving_budget () =
  Alcotest.(check int) "C(5,2) = 10 schedules" 10 Apps.Xterm.total_interleavings

let test_xterm_model () =
  let model = Apps.Xterm.model () in
  Alcotest.(check bool) "race exploited" true
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:Apps.Xterm.race_scenario));
  Alcotest.(check bool) "benign fine" false
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:Apps.Xterm.benign_scenario));
  (* pFSM1 is correctly implemented (no hidden path): the race lives
     in pFSM2 only -- Figure 5's point. *)
  let report =
    Pfsm.Analysis.analyze model ~scenarios:[ Apps.Xterm.race_scenario ]
  in
  let hidden =
    List.map
      (fun f -> f.Pfsm.Analysis.pfsm.Pfsm.Primitive.name)
      (Pfsm.Analysis.vulnerable_pfsms report)
  in
  Alcotest.(check (list string)) "only pFSM2" [ "pFSM2" ] hidden

(* ---- rwall ------------------------------------------------------- *)

let test_rwall_attack () =
  let app = Apps.Rwall.setup () in
  match Apps.Rwall.run_attack app ~message:"evil::0:0\n" with
  | O.File_overwritten { path = "/etc/passwd"; data = "evil::0:0\n" } -> ()
  | other -> Alcotest.fail (O.to_string other)

let test_rwall_benign_broadcast_hits_terminal () =
  let app = Apps.Rwall.setup () in
  let outcomes = Apps.Rwall.broadcast app ~message:"hi\n" in
  Alcotest.(check int) "one utmp entry" 1 (List.length outcomes);
  check_verdict "terminal write" O.Normal (List.hd outcomes);
  Alcotest.(check string) "terminal got the message" "hi\n"
    (Osmodel.Filesystem.content (Apps.Rwall.fs app) "/dev/pts/25")

let test_rwall_protections () =
  let base = Apps.Rwall.vulnerable in
  let attack config =
    Apps.Rwall.run_attack (Apps.Rwall.setup ~config ()) ~message:"x\n"
  in
  check_verdict "utmp 644" O.Blocked
    (attack { base with Apps.Rwall.utmp_world_writable = false });
  check_verdict "terminal check" O.Blocked
    (attack { base with Apps.Rwall.terminal_check = true })

let test_rwall_dev_relative_resolution () =
  let app = Apps.Rwall.setup () in
  ignore (Apps.Rwall.add_utmp_entry app ~as_user:Apps.Rwall.attacker "../etc/passwd");
  (* The entry resolves relative to /dev, escaping to /etc/passwd. *)
  let outcomes = Apps.Rwall.broadcast app ~message:"m\n" in
  Alcotest.(check int) "two entries now" 2 (List.length outcomes)

let test_rwall_model () =
  let app = Apps.Rwall.setup () in
  let model = Apps.Rwall.model app in
  Alcotest.(check bool) "attack exploited" true
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:Apps.Rwall.attack_scenario));
  Alcotest.(check bool) "benign" false
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:Apps.Rwall.benign_scenario))

(* ---- iis --------------------------------------------------------- *)

let test_iis_attack_escapes () =
  let app = Apps.Iis.setup () in
  match Apps.Iis.handle_request app Exploit.Attack.iis_path with
  | O.Code_execution msg ->
      Alcotest.(check bool) "cmd.exe" true
        (String.length msg > 0
         && (let contains ~needle h =
               let nh = String.length h and nn = String.length needle in
               let rec at i = i + nn <= nh && (String.sub h i nn = needle || at (i + 1)) in
               at 0
             in
             contains ~needle:"/winnt/system32/cmd.exe" msg))
  | other -> Alcotest.fail (O.to_string other)

let test_iis_plain_dotdot_blocked () =
  let app = Apps.Iis.setup () in
  check_verdict "../ caught" O.Blocked (Apps.Iis.handle_request app "../x.exe");
  check_verdict "..%2f caught (one decode)" O.Blocked
    (Apps.Iis.handle_request app "..%2fx.exe")

let test_iis_benign () =
  let app = Apps.Iis.setup () in
  check_verdict "hello.exe" O.Normal (Apps.Iis.handle_request app "hello.exe")

let test_iis_single_decode_fix () =
  let app = Apps.Iis.setup ~config:{ Apps.Iis.single_decode = true } () in
  check_verdict "attack harmless" O.Normal
    (Apps.Iis.handle_request app Exploit.Attack.iis_path)

let test_iis_model_hidden_path () =
  let app = Apps.Iis.setup () in
  let model = Apps.Iis.model app in
  Alcotest.(check bool) "..%252f exploited" true
    (Pfsm.Trace.exploited
       (Pfsm.Model.run model ~env:(Apps.Iis.scenario ~path:Exploit.Attack.iis_path)));
  Alcotest.(check bool) "..%2f foiled (impl catches it)" true
    (Pfsm.Trace.foiled
       (Pfsm.Model.run model ~env:(Apps.Iis.scenario ~path:"..%2fx")))

(* ---- ghttpd ------------------------------------------------------ *)

let test_ghttpd_smash () =
  let app = Apps.Ghttpd.setup () in
  match Apps.Ghttpd.serve app ~request:(Exploit.Attack.ghttpd_request app) with
  | O.Code_execution "MCODE" -> ()
  | other -> Alcotest.fail (O.to_string other)

let test_ghttpd_boundary_lengths () =
  let app = Apps.Ghttpd.setup () in
  check_verdict "199 fits with its terminator" O.Normal
    (Apps.Ghttpd.serve app ~request:(String.make 199 'a'));
  (* char buf[200] with strcpy: exactly 200 bytes already clobbers
     the return address with the NUL terminator -- the classic
     off-by-one. *)
  check_verdict "200 smashes via the NUL" O.Compromised
    (Apps.Ghttpd.serve app ~request:(String.make 200 'a'));
  check_verdict "201 smashes outright" O.Compromised
    (Apps.Ghttpd.serve app ~request:(String.make 201 'a'))

let test_ghttpd_garbage_ret_crashes () =
  let app = Apps.Ghttpd.setup () in
  let d = Apps.Ghttpd.distance_to_ret app in
  (* Fill through the return slot with 'AAAA' = 0x41414141: wild jump. *)
  match Apps.Ghttpd.serve app ~request:(String.make (d + 4) 'A') with
  | O.Crash _ -> ()
  | other -> Alcotest.fail (O.to_string other)

let test_ghttpd_protections () =
  let base = Apps.Ghttpd.vulnerable in
  let attack config =
    let app = Apps.Ghttpd.setup ~config () in
    Apps.Ghttpd.serve app ~request:(Exploit.Attack.ghttpd_request app)
  in
  check_verdict "length check" O.Blocked
    (attack { base with Apps.Ghttpd.length_check = true });
  check_verdict "StackGuard" O.Blocked
    (attack { base with Apps.Ghttpd.protection = Machine.Stack.Stackguard });
  check_verdict "split stack" O.Blocked
    (attack { base with Apps.Ghttpd.protection = Machine.Stack.Split_stack })

let test_ghttpd_model () =
  let app = Apps.Ghttpd.setup () in
  let model = Apps.Ghttpd.model app in
  let attack = Apps.Ghttpd.scenario ~request:(Exploit.Attack.ghttpd_request app) in
  Alcotest.(check bool) "exploited" true
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:attack));
  Alcotest.(check bool) "benign" false
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:Apps.Ghttpd.benign_scenario))

(* ---- rpc.statd --------------------------------------------------- *)

let test_statd_exploit () =
  let app = Apps.Rpc_statd.setup () in
  match Apps.Rpc_statd.notify app ~filename:(Exploit.Attack.rpc_statd_filename app) with
  | O.Code_execution "MCODE" -> ()
  | other -> Alcotest.fail (O.to_string other)

let test_statd_benign () =
  let app = Apps.Rpc_statd.setup () in
  check_verdict "plain filename" O.Normal
    (Apps.Rpc_statd.notify app ~filename:"/var/statmon/sm/web1")

let test_statd_leak () =
  let app = Apps.Rpc_statd.setup () in
  match Apps.Rpc_statd.notify app ~filename:"%8x.%8x" with
  | O.Info_leak _ -> ()
  | other -> Alcotest.fail (O.to_string other)

let test_statd_stackguard_powerless () =
  (* The %n write skips the canary entirely -- StackGuard does not
     stop format-string return-address rewrites (Section 6). *)
  let config =
    { Apps.Rpc_statd.vulnerable with
      Apps.Rpc_statd.protection = Machine.Stack.Stackguard }
  in
  let app = Apps.Rpc_statd.setup ~config () in
  match Apps.Rpc_statd.notify app ~filename:(Exploit.Attack.rpc_statd_filename app) with
  | O.Code_execution "MCODE" -> ()
  | other -> Alcotest.fail ("StackGuard should not stop %n: " ^ O.to_string other)

let test_statd_protections () =
  let base = Apps.Rpc_statd.vulnerable in
  let attack config =
    let app = Apps.Rpc_statd.setup ~config () in
    Apps.Rpc_statd.notify app ~filename:(Exploit.Attack.rpc_statd_filename app)
  in
  check_verdict "format check" O.Blocked
    (attack { base with Apps.Rpc_statd.format_check = true });
  check_verdict "split stack" O.Blocked
    (attack { base with Apps.Rpc_statd.protection = Machine.Stack.Split_stack })

let test_statd_model () =
  let app = Apps.Rpc_statd.setup () in
  let model = Apps.Rpc_statd.model app in
  let attack =
    Apps.Rpc_statd.scenario ~filename:(Exploit.Attack.rpc_statd_filename app)
  in
  Alcotest.(check bool) "exploited" true
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:attack));
  Alcotest.(check bool) "benign" false
    (Pfsm.Trace.exploited (Pfsm.Model.run model ~env:Apps.Rpc_statd.benign_scenario))

(* ---- Table 2: the classification matrix across all models -------- *)

let test_table2_matrix () =
  let kind_names model =
    List.map
      (fun kind ->
         ( kind,
           List.map
             (fun (_, p) -> p.Pfsm.Primitive.name)
             (List.assoc kind (Pfsm.Analysis.taxonomy_matrix model)) ))
      Pfsm.Taxonomy.all
  in
  let check_model model ~object_type ~content ~reference =
    let m = kind_names model in
    Alcotest.(check (list string)) "object type" object_type
      (List.assoc Pfsm.Taxonomy.Object_type_check m);
    Alcotest.(check (list string)) "content/attribute" content
      (List.assoc Pfsm.Taxonomy.Content_attribute_check m);
    Alcotest.(check (list string)) "reference consistency" reference
      (List.assoc Pfsm.Taxonomy.Reference_consistency_check m)
  in
  (* The rows of Table 2. *)
  check_model (Apps.Sendmail.model (Apps.Sendmail.setup ()))
    ~object_type:[ "pFSM1" ] ~content:[ "pFSM2" ] ~reference:[ "pFSM3" ];
  check_model (Apps.Nullhttpd.model (Apps.Nullhttpd.setup ()))
    ~object_type:[] ~content:[ "pFSM1"; "pFSM2" ] ~reference:[ "pFSM3"; "pFSM4" ];
  check_model (Apps.Rwall.model (Apps.Rwall.setup ()))
    ~object_type:[ "pFSM2" ] ~content:[ "pFSM1" ] ~reference:[];
  check_model (Apps.Iis.model (Apps.Iis.setup ()))
    ~object_type:[] ~content:[ "pFSM1" ] ~reference:[];
  check_model (Apps.Xterm.model ())
    ~object_type:[] ~content:[ "pFSM1" ] ~reference:[ "pFSM2" ];
  check_model (Apps.Ghttpd.model (Apps.Ghttpd.setup ()))
    ~object_type:[] ~content:[ "pFSM1" ] ~reference:[ "pFSM2" ];
  check_model (Apps.Rpc_statd.model (Apps.Rpc_statd.setup ()))
    ~object_type:[] ~content:[ "pFSM1" ] ~reference:[ "pFSM2" ]

let () =
  Alcotest.run "apps"
    [ ("outcome", [ Alcotest.test_case "verdicts" `Quick test_outcome_verdicts ]);
      ("format_interp",
       [ Alcotest.test_case "literal" `Quick test_fmt_literal;
         Alcotest.test_case "pops in order" `Quick test_fmt_pops_args_in_order;
         Alcotest.test_case "width padding" `Quick test_fmt_width_padding;
         Alcotest.test_case "%% escape" `Quick test_fmt_percent_escape;
         Alcotest.test_case "%n writes" `Quick test_fmt_percent_n_writes;
         Alcotest.test_case "%n width control" `Quick
           test_fmt_percent_n_with_width_control;
         Alcotest.test_case "%s dereferences" `Quick test_fmt_s_reads_string;
         Alcotest.test_case "output capped, count exact" `Quick
           test_fmt_output_capped_count_exact ]);
      ("sendmail",
       [ Alcotest.test_case "exploit chain" `Quick test_sendmail_exploit_chain;
         Alcotest.test_case "benign" `Quick test_sendmail_benign;
         Alcotest.test_case "index math" `Quick test_sendmail_index_math;
         Alcotest.test_case "boundaries" `Quick test_sendmail_in_range_write_is_benign;
         Alcotest.test_case "wild negative" `Quick test_sendmail_wild_negative_corrupts;
         Alcotest.test_case "protections" `Quick test_sendmail_protections_block;
         Alcotest.test_case "model trace" `Quick test_sendmail_model_trace;
         Alcotest.test_case "model taxonomy" `Quick test_sendmail_model_taxonomy ]);
      ("nullhttpd",
       [ Alcotest.test_case "#5774" `Quick test_nullhttpd_5774;
         Alcotest.test_case "#6255" `Quick test_nullhttpd_6255;
         Alcotest.test_case "0.5.1 blocks #5774" `Quick test_nullhttpd_0_5_1_blocks_5774;
         Alcotest.test_case "loop fix blocks #6255" `Quick
           test_nullhttpd_loop_fix_blocks_6255;
         Alcotest.test_case "safe unlink blocks" `Quick test_nullhttpd_safe_unlink_blocks;
         Alcotest.test_case "benign posts" `Quick test_nullhttpd_benign_posts;
         Alcotest.test_case "silent corruption" `Quick
           test_nullhttpd_silent_corruption_without_fake_header;
         Alcotest.test_case "usable_for" `Quick test_nullhttpd_usable_for;
         Alcotest.test_case "model verdicts" `Quick test_nullhttpd_model_verdicts ]);
      ("xterm",
       [ Alcotest.test_case "race window" `Quick test_xterm_race_window;
         Alcotest.test_case "passwd overwrite" `Quick
           test_xterm_race_result_is_passwd_overwrite;
         Alcotest.test_case "nofollow blocks" `Quick test_xterm_nofollow_blocks_all;
         Alcotest.test_case "interleaving budget" `Quick test_xterm_interleaving_budget;
         Alcotest.test_case "model" `Quick test_xterm_model ]);
      ("rwall",
       [ Alcotest.test_case "attack" `Quick test_rwall_attack;
         Alcotest.test_case "benign broadcast" `Quick
           test_rwall_benign_broadcast_hits_terminal;
         Alcotest.test_case "protections" `Quick test_rwall_protections;
         Alcotest.test_case "/dev-relative" `Quick test_rwall_dev_relative_resolution;
         Alcotest.test_case "model" `Quick test_rwall_model ]);
      ("iis",
       [ Alcotest.test_case "..%252f escapes" `Quick test_iis_attack_escapes;
         Alcotest.test_case "../ blocked" `Quick test_iis_plain_dotdot_blocked;
         Alcotest.test_case "benign" `Quick test_iis_benign;
         Alcotest.test_case "single decode fix" `Quick test_iis_single_decode_fix;
         Alcotest.test_case "model" `Quick test_iis_model_hidden_path ]);
      ("ghttpd",
       [ Alcotest.test_case "smash" `Quick test_ghttpd_smash;
         Alcotest.test_case "boundary lengths" `Quick test_ghttpd_boundary_lengths;
         Alcotest.test_case "garbage ret crashes" `Quick test_ghttpd_garbage_ret_crashes;
         Alcotest.test_case "protections" `Quick test_ghttpd_protections;
         Alcotest.test_case "model" `Quick test_ghttpd_model ]);
      ("rpc.statd",
       [ Alcotest.test_case "%n exploit" `Quick test_statd_exploit;
         Alcotest.test_case "benign" `Quick test_statd_benign;
         Alcotest.test_case "%x leak" `Quick test_statd_leak;
         Alcotest.test_case "StackGuard powerless" `Quick
           test_statd_stackguard_powerless;
         Alcotest.test_case "protections" `Quick test_statd_protections;
         Alcotest.test_case "model" `Quick test_statd_model ]);
      ("table 2", [ Alcotest.test_case "matrix" `Quick test_table2_matrix ]) ]
