(* Tests for the machine substrate: memory, heap (including the
   unlink attack primitive), stack, GOT, C strings, payloads. *)

module M = Machine.Memory
module H = Machine.Heap

let base = 0x1000

let mem () = M.create ~base ~size:0x10000

(* ---- memory ------------------------------------------------------ *)

let test_mem_roundtrip_u8 () =
  let m = mem () in
  M.write_u8 m base 0xab;
  Alcotest.(check int) "u8 roundtrip" 0xab (M.read_u8 m base);
  M.write_u8 m base 0x1ff;
  Alcotest.(check int) "u8 truncates" 0xff (M.read_u8 m base)

let test_mem_roundtrip_i32 () =
  let m = mem () in
  List.iter
    (fun v ->
       M.write_i32 m (base + 8) v;
       Alcotest.(check int) (string_of_int v) v (M.read_i32 m (base + 8)))
    [ 0; 1; -1; 0x7fff_ffff; -0x8000_0000; 12345; -98765 ]

let test_mem_i32_wraps () =
  let m = mem () in
  M.write_i32 m base 0x1_0000_0001;
  Alcotest.(check int) "wraps to 32 bits" 1 (M.read_i32 m base)

let test_mem_little_endian () =
  let m = mem () in
  M.write_i32 m base 0x04030201;
  Alcotest.(check int) "byte 0" 1 (M.read_u8 m base);
  Alcotest.(check int) "byte 3" 4 (M.read_u8 m (base + 3))

let test_mem_faults () =
  let m = mem () in
  let check_fault name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected fault")
    | exception M.Fault _ -> ()
  in
  check_fault "read below" (fun () -> M.read_u8 m (base - 1));
  check_fault "read above" (fun () -> M.read_u8 m (M.limit m));
  check_fault "write above" (fun () -> M.write_i32 m (M.limit m - 3) 0);
  check_fault "string over edge" (fun () -> M.write_string m (M.limit m - 2) "abc")

let test_mem_cstring () =
  let m = mem () in
  M.write_string m base "hello\000world";
  Alcotest.(check string) "stops at NUL" "hello" (M.read_cstring m base)

let test_mem_fill_and_read_bytes () =
  let m = mem () in
  M.fill m base 5 'x';
  Alcotest.(check string) "fill" "xxxxx" (M.read_bytes m base 5)

let test_mem_diff_ranges () =
  let m = mem () in
  let before = M.snapshot m in
  M.write_u8 m (base + 10) 1;
  M.write_u8 m (base + 11) 2;
  M.write_u8 m (base + 100) 3;
  let after = M.snapshot m in
  Alcotest.(check (list (pair int int)))
    "two ranges"
    [ (base + 10, 2); (base + 100, 1) ]
    (M.diff_ranges ~before ~after ~base)

(* ---- heap -------------------------------------------------------- *)

let heap ?(safe_unlink = false) () =
  let m = mem () in
  (m, H.create m ~base:(base + 0x100) ~size:0x8000 ~safe_unlink)

let get = function Some x -> x | None -> Alcotest.fail "allocation failed"

let test_heap_malloc_distinct () =
  let _, h = heap () in
  let a = get (H.malloc h 100) in
  let b = get (H.malloc h 100) in
  Alcotest.(check bool) "distinct chunks" true (a <> b);
  Alcotest.(check bool) "no overlap" true (abs (a - b) >= 100)

let test_heap_usable_size () =
  let _, h = heap () in
  let a = get (H.malloc h 100) in
  Alcotest.(check bool) "usable >= requested" true (H.usable_size h ~user:a >= 100)

let test_heap_malloc_rejects_nonpositive () =
  let _, h = heap () in
  Alcotest.(check (option int)) "zero" None (H.malloc h 0);
  Alcotest.(check (option int)) "negative" None (H.malloc h (-8))

let test_heap_calloc_zeroes () =
  let m, h = heap () in
  let a = get (H.malloc h 64) in
  M.fill m a 64 'Z';
  H.free h a;
  let b = get (H.calloc h ~count:64 ~size:1) in
  Alcotest.(check string) "zeroed" (String.make 64 '\000') (M.read_bytes m b 64)

let test_heap_free_then_reuse () =
  let _, h = heap () in
  let a = get (H.malloc h 256) in
  H.free h a;
  let b = get (H.malloc h 200) in
  Alcotest.(check int) "first fit reuses the freed chunk" a b

let test_heap_split_leaves_free_remainder () =
  let _, h = heap () in
  let a = get (H.malloc h 1024) in
  H.free h a;
  let b = get (H.malloc h 100) in
  Alcotest.(check int) "reused" a b;
  (* The remainder of the split must be back on the free list. *)
  Alcotest.(check int) "one free chunk" 1 (List.length (H.free_list h));
  Alcotest.(check bool) "list consistent" true (H.free_list_consistent h)

let test_heap_double_free_detected () =
  let _, h = heap () in
  let a = get (H.malloc h 64) in
  H.free h a;
  (match H.free h a with
   | _ -> Alcotest.fail "double free not detected"
   | exception H.Double_free _ -> ())

let test_heap_forward_coalesce () =
  let _, h = heap () in
  let a = get (H.malloc h 128) in
  let b = get (H.malloc h 128) in
  let _guard = get (H.malloc h 16) in
  H.free h b;
  H.free h a;
  (* a coalesced with b: a single free chunk able to hold both. *)
  let chunk = H.chunk_of_user a in
  Alcotest.(check bool) "merged size" true
    (H.chunk_size h ~chunk >= 2 * 128);
  Alcotest.(check bool) "list consistent" true (H.free_list_consistent h)

(* The attack primitive of Figure 4: overflow a buffer into the next
   (free) chunk's fd/bk, then free the buffer; the unlink writes an
   attacker value at an attacker address. *)
let unlink_attack ~safe_unlink () =
  let m, h = heap ~safe_unlink () in
  let big = get (H.malloc h 2048) in
  H.free h big;
  let victim = get (H.malloc h 128) in        (* split: free B follows *)
  Alcotest.(check int) "reused" big victim;
  let usable = H.usable_size h ~user:victim in
  let b_chunk = victim + usable in
  let target = base + 0x20 in  (* attacker-chosen address *)
  (* The attacker-chosen value must itself be a mapped address: the
     unlink's mirror write (BK->fd = FD) dereferences it, which is
     why real exploits point bk at mapped shellcode. *)
  let value = base + 0x40 in
  M.write_i32 m (H.fd_addr ~chunk:b_chunk) (target - H.bk_field_offset);
  M.write_i32 m (H.bk_addr ~chunk:b_chunk) value;
  (m, h, victim, target, value)

let test_heap_unlink_attack () =
  let m, h, victim, target, value = unlink_attack ~safe_unlink:false () in
  H.free h victim;
  Alcotest.(check int) "arbitrary 4-byte write happened" value (M.read_i32 m target)

let test_heap_safe_unlink_detects () =
  let _, h, victim, _, _ = unlink_attack ~safe_unlink:true () in
  match H.free h victim with
  | _ -> Alcotest.fail "safe unlink did not fire"
  | exception H.Corruption_detected _ -> ()

let test_heap_exhaustion () =
  let m = mem () in
  let h = H.create m ~base:(base + 0x100) ~size:64 ~safe_unlink:false in
  Alcotest.(check (option int)) "too big" None (H.malloc h 4096)

(* Property: random alloc/free sequences keep the free list
   consistent and never hand out overlapping live chunks. *)
let prop_heap_invariants =
  let open QCheck in
  Test.make ~name:"heap: random alloc/free keeps invariants" ~count:200
    (list (pair (int_range 1 200) bool))
    (fun ops ->
       let _, h = heap () in
       let live = ref [] in
       List.iter
         (fun (size, do_free) ->
            match do_free, !live with
            | true, user :: rest ->
                H.free h user;
                live := rest
            | true, [] | false, _ -> (
                match H.malloc h size with
                | Some user -> live := !live @ [ user ]
                | None -> ()))
         ops;
       let interval user =
         let chunk = H.chunk_of_user user in
         (chunk, chunk + H.chunk_size h ~chunk)
       in
       let sorted = List.sort compare (List.map interval !live) in
       let rec disjoint = function
         | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
         | [ _ ] | [] -> true
       in
       H.free_list_consistent h && disjoint sorted)

(* ---- stack ------------------------------------------------------- *)

module S = Machine.Stack

let stack ?(protection = S.No_protection) () =
  let m = mem () in
  (m, S.create m ~base:(base + 0x8000) ~size:0x4000 ~protection)

let test_stack_frame_roundtrip () =
  let _, s = stack () in
  S.push_frame s ~func:"f" ~ret_addr:0x8000000 ~locals:[ ("x", 16) ];
  Alcotest.(check int) "depth" 1 (S.depth s);
  Alcotest.(check int) "local size" 16 (S.local_size s "x");
  (match S.pop_frame s with
   | S.Returned a -> Alcotest.(check int) "clean return" 0x8000000 a
   | S.Smashed_canary _ -> Alcotest.fail "no canary expected");
  Alcotest.(check int) "depth back to 0" 0 (S.depth s)

let test_stack_locals_below_ret () =
  let _, s = stack () in
  S.push_frame s ~func:"f" ~ret_addr:1 ~locals:[ ("buf", 100) ];
  let d = S.distance_to_ret s "buf" in
  Alcotest.(check bool) "buffer ends at/below ret slot" true (d >= 100)

let test_stack_overflow_reaches_ret () =
  let m, s = stack () in
  S.push_frame s ~func:"g" ~ret_addr:7 ~locals:[ ("outer", 32) ];
  S.push_frame s ~func:"f" ~ret_addr:42 ~locals:[ ("buf", 100) ];
  let buf = S.local_addr s "buf" in
  let d = S.distance_to_ret s "buf" in
  let payload = String.make d 'A' ^ "\x39\x05\x00\x00" in
  M.write_string m buf payload;
  Alcotest.(check bool) "ret corrupted" false (S.ret_addr_intact s);
  (match S.pop_frame s with
   | S.Returned a -> Alcotest.(check int) "hijacked" 0x539 a
   | S.Smashed_canary _ -> Alcotest.fail "no canary configured")

let test_stack_canary_detects () =
  let m, s = stack ~protection:S.Stackguard () in
  S.push_frame s ~func:"g" ~ret_addr:7 ~locals:[ ("outer", 32) ];
  S.push_frame s ~func:"f" ~ret_addr:42 ~locals:[ ("buf", 64) ];
  let buf = S.local_addr s "buf" in
  M.write_string m buf (String.make (S.distance_to_ret s "buf" + 4) 'A');
  Alcotest.(check bool) "canary gone" false (S.canary_intact s);
  (match S.pop_frame s with
   | S.Smashed_canary _ -> ()
   | S.Returned _ -> Alcotest.fail "canary missed the smash")

let test_stack_canary_distance_larger () =
  let _, s0 = stack () in
  S.push_frame s0 ~func:"f" ~ret_addr:1 ~locals:[ ("buf", 64) ];
  let d0 = S.distance_to_ret s0 "buf" in
  let _, s1 = stack ~protection:S.Stackguard () in
  S.push_frame s1 ~func:"f" ~ret_addr:1 ~locals:[ ("buf", 64) ];
  Alcotest.(check int) "canary adds a word" (d0 + 4) (S.distance_to_ret s1 "buf")

let test_stack_split_stack_survives () =
  let m, s = stack ~protection:S.Split_stack () in
  S.push_frame s ~func:"g" ~ret_addr:7 ~locals:[ ("outer", 32) ];
  S.push_frame s ~func:"f" ~ret_addr:42 ~locals:[ ("buf", 64) ];
  let buf = S.local_addr s "buf" in
  M.write_string m buf (String.make (S.distance_to_ret s "buf" + 4) 'B');
  Alcotest.(check bool) "memory copy corrupted" false (S.ret_addr_intact s);
  (match S.pop_frame s with
   | S.Returned a -> Alcotest.(check int) "shadow wins" 42 a
   | S.Smashed_canary _ -> Alcotest.fail "split stack has no canary")

let test_stack_nested_frames () =
  let _, s = stack () in
  S.push_frame s ~func:"a" ~ret_addr:1 ~locals:[ ("x", 8) ];
  let xa = S.local_addr s "x" in
  S.push_frame s ~func:"b" ~ret_addr:2 ~locals:[ ("x", 8) ];
  let xb = S.local_addr s "x" in
  Alcotest.(check bool) "inner frame lower" true (xb < xa);
  ignore (S.pop_frame s);
  Alcotest.(check int) "outer x visible again" xa (S.local_addr s "x")

(* ---- GOT --------------------------------------------------------- *)

module G = Machine.Got

let test_got_register_resolve () =
  let m = mem () in
  let g = G.create m ~base ~capacity:8 in
  G.register g "free" ~code:0x8000010;
  G.register g "setuid" ~code:0x8000020;
  Alcotest.(check int) "resolve" 0x8000010 (G.resolve g "free");
  Alcotest.(check bool) "unchanged" true (G.unchanged g "setuid");
  Alcotest.(check bool) "slots distinct" true
    (G.slot_addr g "free" <> G.slot_addr g "setuid")

let test_got_corruption_visible () =
  let m = mem () in
  let g = G.create m ~base ~capacity:8 in
  G.register g "free" ~code:0x8000010;
  M.write_i32 m (G.slot_addr g "free") 0x41414141;
  Alcotest.(check bool) "changed" false (G.unchanged g "free");
  Alcotest.(check int) "resolves to attacker value" 0x41414141 (G.resolve g "free");
  Alcotest.(check int) "original remembered" 0x8000010 (G.original g "free")

let test_got_duplicate_rejected () =
  let m = mem () in
  let g = G.create m ~base ~capacity:8 in
  G.register g "free" ~code:1;
  match G.register g "free" ~code:2 with
  | _ -> Alcotest.fail "duplicate accepted"
  | exception Invalid_argument _ -> ()

(* ---- cstring / payload ------------------------------------------- *)

let test_strcpy_stops_at_nul () =
  let m = mem () in
  Machine.Cstring.strcpy m ~dst:base "ab\000cd";
  Alcotest.(check string) "copied prefix" "ab" (M.read_cstring m base)

let test_strcpy_is_unbounded () =
  let m = mem () in
  let s = String.make 500 'q' in
  Machine.Cstring.strcpy m ~dst:base s;
  Alcotest.(check string) "all 500 bytes" s (M.read_cstring m base)

let test_strncpy_no_nul_when_full () =
  let m = mem () in
  M.write_u8 m (base + 3) 0x7a;
  Machine.Cstring.strncpy m ~dst:base "abcdef" ~n:3;
  Alcotest.(check string) "3 bytes" "abc" (M.read_bytes m base 3);
  Alcotest.(check int) "no terminator written" 0x7a (M.read_u8 m (base + 3))

let test_strcat () =
  let m = mem () in
  Machine.Cstring.strcpy m ~dst:base "foo";
  Machine.Cstring.strcat m ~dst:base "bar";
  Alcotest.(check string) "concatenated" "foobar" (M.read_cstring m base)

let test_payload_embed () =
  let p = Machine.Payload.create 16 ~fill:'A' in
  Machine.Payload.set_i32 p ~off:8 0x01020304;
  let s = Machine.Payload.to_string p in
  Alcotest.(check char) "fill" 'A' s.[0];
  Alcotest.(check int) "LE low byte" 4 (Char.code s.[8]);
  Alcotest.(check int) "LE high byte" 1 (Char.code s.[11])

let test_payload_repeat_pattern () =
  Alcotest.(check string) "repeat" "%x%x%x" (Machine.Payload.repeat "%x" 3);
  Alcotest.(check int) "pattern length" 37 (String.length (Machine.Payload.pattern 37))

(* ---- process ----------------------------------------------------- *)

let test_process_call_via_got () =
  let p = Machine.Process.create () in
  Machine.Process.register_function p "setuid";
  (match Machine.Process.call_via_got p "setuid" with
   | Machine.Process.Legit "setuid" -> ()
   | _ -> Alcotest.fail "expected legit call");
  let got = Machine.Process.got p in
  let scratch = Machine.Process.alloc_global p "sc" 32 in
  Machine.Process.mark_shellcode p ~addr:scratch ~len:32 ~label:"MC";
  Machine.Memory.write_i32 (Machine.Process.mem p) (G.slot_addr got "setuid") scratch;
  (match Machine.Process.call_via_got p "setuid" with
   | Machine.Process.Shellcode "MC" -> ()
   | _ -> Alcotest.fail "expected shellcode jump")

let test_process_wild_jump () =
  let p = Machine.Process.create () in
  Machine.Process.register_function p "f";
  Machine.Memory.write_i32 (Machine.Process.mem p)
    (G.slot_addr (Machine.Process.got p) "f")
    0x31337;
  match Machine.Process.call_via_got p "f" with
  | Machine.Process.Wild 0x31337 -> ()
  | _ -> Alcotest.fail "expected wild jump"

let test_process_globals () =
  let p = Machine.Process.create () in
  let a = Machine.Process.alloc_global p "tTvect" 400 in
  let b = Machine.Process.alloc_global p "other" 8 in
  Alcotest.(check int) "lookup" a (Machine.Process.global p "tTvect");
  Alcotest.(check int) "size" 400 (Machine.Process.global_size p "tTvect");
  Alcotest.(check bool) "disjoint" true (b >= a + 400)

let () =
  Alcotest.run "machine"
    [ ("memory",
       [ Alcotest.test_case "u8 roundtrip" `Quick test_mem_roundtrip_u8;
         Alcotest.test_case "i32 roundtrip" `Quick test_mem_roundtrip_i32;
         Alcotest.test_case "i32 wraps" `Quick test_mem_i32_wraps;
         Alcotest.test_case "little endian" `Quick test_mem_little_endian;
         Alcotest.test_case "faults" `Quick test_mem_faults;
         Alcotest.test_case "cstring" `Quick test_mem_cstring;
         Alcotest.test_case "fill/read" `Quick test_mem_fill_and_read_bytes;
         Alcotest.test_case "diff ranges" `Quick test_mem_diff_ranges ]);
      ("heap",
       [ Alcotest.test_case "malloc distinct" `Quick test_heap_malloc_distinct;
         Alcotest.test_case "usable size" `Quick test_heap_usable_size;
         Alcotest.test_case "nonpositive rejected" `Quick
           test_heap_malloc_rejects_nonpositive;
         Alcotest.test_case "calloc zeroes" `Quick test_heap_calloc_zeroes;
         Alcotest.test_case "free then reuse" `Quick test_heap_free_then_reuse;
         Alcotest.test_case "split remainder" `Quick
           test_heap_split_leaves_free_remainder;
         Alcotest.test_case "double free" `Quick test_heap_double_free_detected;
         Alcotest.test_case "forward coalesce" `Quick test_heap_forward_coalesce;
         Alcotest.test_case "unlink attack" `Quick test_heap_unlink_attack;
         Alcotest.test_case "safe unlink" `Quick test_heap_safe_unlink_detects;
         Alcotest.test_case "exhaustion" `Quick test_heap_exhaustion;
         QCheck_alcotest.to_alcotest prop_heap_invariants ]);
      ("stack",
       [ Alcotest.test_case "frame roundtrip" `Quick test_stack_frame_roundtrip;
         Alcotest.test_case "locals below ret" `Quick test_stack_locals_below_ret;
         Alcotest.test_case "overflow reaches ret" `Quick
           test_stack_overflow_reaches_ret;
         Alcotest.test_case "canary detects" `Quick test_stack_canary_detects;
         Alcotest.test_case "canary distance" `Quick test_stack_canary_distance_larger;
         Alcotest.test_case "split stack survives" `Quick
           test_stack_split_stack_survives;
         Alcotest.test_case "nested frames" `Quick test_stack_nested_frames ]);
      ("got",
       [ Alcotest.test_case "register/resolve" `Quick test_got_register_resolve;
         Alcotest.test_case "corruption visible" `Quick test_got_corruption_visible;
         Alcotest.test_case "duplicate rejected" `Quick test_got_duplicate_rejected ]);
      ("cstring/payload",
       [ Alcotest.test_case "strcpy stops at NUL" `Quick test_strcpy_stops_at_nul;
         Alcotest.test_case "strcpy unbounded" `Quick test_strcpy_is_unbounded;
         Alcotest.test_case "strncpy no NUL" `Quick test_strncpy_no_nul_when_full;
         Alcotest.test_case "strcat" `Quick test_strcat;
         Alcotest.test_case "payload embed" `Quick test_payload_embed;
         Alcotest.test_case "repeat/pattern" `Quick test_payload_repeat_pattern ]);
      ("process",
       [ Alcotest.test_case "call via GOT" `Quick test_process_call_via_got;
         Alcotest.test_case "wild jump" `Quick test_process_wild_jump;
         Alcotest.test_case "globals" `Quick test_process_globals ]) ]
