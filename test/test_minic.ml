(* Tests for the mini-C subsystem: AST rendering, the interpreter on
   the simulated machine, guard extraction, and the end-to-end
   "automatic tool" loop (extract -> verify -> predict execution). *)

module A = Minic.Ast
module I = Minic.Interp
module X = Minic.Extract
module C = Minic.Corpus
module P = Pfsm.Predicate

let contains ~needle h =
  let nh = String.length h and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub h i nn = needle || at (i + 1)) in
  nn > 0 && at 0

(* ---- pretty printing ---------------------------------------------- *)

let test_pp_renders_cish_source () =
  let src = A.func_to_string C.tTflag_vulnerable in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("mentions " ^ needle) true (contains ~needle src))
    [ "int tTflag(const char *str_x, const char *str_i)";
      "int x = atoi(str_x);"; "if (x > 100)"; "tTvect[x] = i;"; "return 0;" ]

(* ---- interpreter: expressions & control flow ---------------------- *)

let run_expr e =
  let f = { A.name = "t"; params = []; body = [ A.Return e ] } in
  match I.run f ~args:[] with
  | I.Returned n -> n
  | other -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome other)

let test_interp_arithmetic () =
  Alcotest.(check int) "3*4+2" 14
    (run_expr A.(Bin (Add, Bin (Mul, Int_lit 3, Int_lit 4), Int_lit 2)));
  Alcotest.(check int) "sub" (-7) (run_expr A.(Bin (Sub, Int_lit 3, Int_lit 10)));
  Alcotest.(check int) "wraps like C" (-0x80000000)
    (run_expr A.(Bin (Add, Int_lit 0x7fffffff, Int_lit 1)))

let test_interp_comparisons_and_bools () =
  Alcotest.(check int) "lt" 1 (run_expr A.(Bin (Lt, Int_lit 2, Int_lit 3)));
  Alcotest.(check int) "ge" 0 (run_expr A.(Bin (Ge, Int_lit 2, Int_lit 3)));
  Alcotest.(check int) "and" 0 (run_expr A.(Bin (And, Int_lit 1, Int_lit 0)));
  Alcotest.(check int) "or" 1 (run_expr A.(Bin (Or, Int_lit 0, Int_lit 5)));
  Alcotest.(check int) "not" 1 (run_expr A.(Not (Int_lit 0)))

let test_interp_short_circuit () =
  (* the right operand is a type error if evaluated; the dedicated
     And/Or arms must skip it when the left side decides *)
  let bad = A.Strlen (A.Int_lit 1) in
  Alcotest.(check int) "0 && bad short-circuits" 0
    (run_expr A.(Bin (And, Int_lit 0, bad)));
  Alcotest.(check int) "7 || bad short-circuits" 1
    (run_expr A.(Bin (Or, Int_lit 7, bad)));
  let strict =
    { A.name = "t"; params = [];
      body = [ A.Return (A.Bin (A.And, A.Int_lit 1, bad)) ] }
  in
  match I.run strict ~args:[] with
  | I.Rejected _ -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_interp_atoi_strlen () =
  let f =
    { A.name = "t"; params = [ A.Str_param "s" ];
      body = [ A.Return (A.Bin (A.Add, A.Atoi (A.Var "s"), A.Strlen (A.Var "s"))) ] }
  in
  match I.run f ~args:[ I.Vstr "42" ] with
  | I.Returned 44 -> ()
  | other -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome other)

let test_interp_if_else_assign () =
  let f =
    { A.name = "t"; params = [ A.Int_param "n" ];
      body =
        [ A.Decl_int ("r", A.Int_lit 0);
          A.If
            (A.Bin (A.Gt, A.Var "n", A.Int_lit 10),
             [ A.Assign ("r", A.Int_lit 1) ],
             [ A.Assign ("r", A.Int_lit 2) ]);
          A.Return (A.Var "r") ] }
  in
  (match I.run f ~args:[ I.Vint 11 ] with
   | I.Returned 1 -> ()
   | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o));
  match I.run f ~args:[ I.Vint 3 ] with
  | I.Returned 2 -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_interp_while_loop () =
  (* sum 1..n *)
  let f =
    { A.name = "t"; params = [ A.Int_param "n" ];
      body =
        [ A.Decl_int ("acc", A.Int_lit 0);
          A.Decl_int ("i", A.Int_lit 1);
          A.While
            (A.Bin (A.Le, A.Var "i", A.Var "n"),
             [ A.Assign ("acc", A.Bin (A.Add, A.Var "acc", A.Var "i"));
               A.Assign ("i", A.Bin (A.Add, A.Var "i", A.Int_lit 1)) ]);
          A.Return (A.Var "acc") ] }
  in
  match I.run f ~args:[ I.Vint 10 ] with
  | I.Returned 55 -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_interp_divergence_guard () =
  let f =
    { A.name = "t"; params = [];
      body = [ A.While (A.Int_lit 1, [ A.Decl_int ("x", A.Int_lit 0) ]);
               A.Return (A.Int_lit 0) ] }
  in
  Alcotest.(check bool) "diverged" true (I.run f ~args:[] = I.Diverged)

let test_interp_reject () =
  match C.run_tTflag C.tTflag_vulnerable ~str_x:"101" ~str_i:"1" with
  | I.Rejected _ -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_interp_buffer_roundtrip () =
  (* A buffer read back in expression position yields its C string. *)
  let f =
    { A.name = "t"; params = [ A.Str_param "s" ];
      body =
        [ A.Decl_buf ("buf", 64);
          A.Strcpy ("buf", A.Var "s");
          A.Return (A.Strlen (A.Var "buf")) ] }
  in
  match I.run f ~args:[ I.Vstr "hello" ] with
  | I.Returned 5 -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_interp_strncpy_bounded () =
  let f =
    { A.name = "t"; params = [ A.Str_param "s" ];
      body =
        [ A.Decl_buf ("buf", 8);
          A.Strncpy ("buf", A.Var "s", A.Int_lit 4);
          A.Return (A.Int_lit 0) ] }
  in
  match I.run f ~args:[ I.Vstr (String.make 100 'z') ] with
  | I.Returned 0 -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

(* ---- interpreter: the vulnerabilities ----------------------------- *)

let test_tTflag_wrap_exploit () =
  match C.run_tTflag C.tTflag_vulnerable ~str_x:"4294966272" ~str_i:"7" with
  | I.Memory_violation (I.Array_oob { array = "tTvect"; index = -1024 }) -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_tTflag_fixed_rejects_wrap () =
  match C.run_tTflag C.tTflag_fixed ~str_x:"4294966272" ~str_i:"7" with
  | I.Rejected _ -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_tTflag_benign () =
  (match C.run_tTflag C.tTflag_vulnerable ~str_x:"100" ~str_i:"9" with
   | I.Returned 0 -> ()
   | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o));
  match C.run_tTflag C.tTflag_fixed ~str_x:"0" ~str_i:"9" with
  | I.Returned 0 -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_log_overflow () =
  match C.run_log C.log_vulnerable ~request:(String.make 300 'A') with
  | I.Memory_violation (I.Buffer_overflow { wrote = 301; capacity = 200; _ }) -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_log_fixed_boundaries () =
  (match C.run_log C.log_fixed ~request:(String.make 199 'a') with
   | I.Returned 0 -> ()
   | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o));
  match C.run_log C.log_fixed ~request:(String.make 200 'a') with
  | I.Rejected _ -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_log_off_by_one_still_overflows () =
  (* The wrong fix admits exactly the 200-byte request, whose
     terminator lands one past the buffer. *)
  match C.run_log C.log_off_by_one ~request:(String.make 200 'a') with
  | I.Memory_violation (I.Buffer_overflow { wrote = 201; capacity = 200; _ }) -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

(* ---- extraction ---------------------------------------------------- *)

let impl f ov =
  match X.impl_predicate f ~object_var:ov with
  | Some p -> P.to_string p
  | None -> "<none>"

let test_extract_guards () =
  Alcotest.(check string) "vulnerable tTflag" "!(self > 100)"
    (impl C.tTflag_vulnerable "x");
  Alcotest.(check string) "fixed tTflag" "!((self < 0 || self > 100))"
    (impl C.tTflag_fixed "x");
  Alcotest.(check string) "vulnerable Log" "true" (impl C.log_vulnerable "request");
  Alcotest.(check string) "fixed Log" "!(length(self) > 199)" (impl C.log_fixed "request");
  Alcotest.(check string) "off-by-one Log" "!(length(self) > 200)"
    (impl C.log_off_by_one "request")

let test_extract_sites () =
  let sites = X.dangerous_sites C.tTflag_vulnerable in
  Alcotest.(check int) "one site" 1 (List.length sites);
  (match sites with
   | [ { X.danger = X.Store_to "tTvect"; _ } ] -> ()
   | _ -> Alcotest.fail "wrong site");
  match X.dangerous_sites C.log_vulnerable with
  | [ { X.danger = X.Copy_to "buf"; _ } ] -> ()
  | _ -> Alcotest.fail "wrong Log site"

let test_extract_untranslatable () =
  (* A guard over a foreign variable cannot be rendered over Self. *)
  let f =
    { A.name = "t"; params = [ A.Int_param "a"; A.Int_param "b" ];
      body =
        [ A.If (A.Bin (A.Gt, A.Var "b", A.Int_lit 0), [ A.Reject "nope" ], []);
          A.Array_store ("arr", A.Var "a", A.Int_lit 1);
          A.Return (A.Int_lit 0) ] }
  in
  Alcotest.(check bool) "None" true (X.impl_predicate f ~object_var:"a" = None)

let test_extract_nested_guards () =
  let f =
    { A.name = "t"; params = [ A.Int_param "x" ];
      body =
        [ A.If (A.Bin (A.Lt, A.Var "x", A.Int_lit 0), [ A.Reject "neg" ], []);
          A.If
            (A.Bin (A.Le, A.Var "x", A.Int_lit 100),
             [ A.Array_store ("arr", A.Var "x", A.Int_lit 1) ],
             []);
          A.Return (A.Int_lit 0) ] }
  in
  (* Reaching the store needs !(x < 0) from the reject idiom and
     x <= 100 from the enclosing branch. *)
  match X.impl_predicate f ~object_var:"x" with
  | Some p ->
      let holds v = P.holds ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int v) p in
      Alcotest.(check bool) "50 in" true (holds 50);
      Alcotest.(check bool) "-1 out" false (holds (-1));
      Alcotest.(check bool) "101 out" false (holds 101)
  | None -> Alcotest.fail "not extracted"

let test_extract_clobbered_guard () =
  (* Check-then-clobber: the guard no longer speaks about the value
     that reaches the store, so extraction must drop it rather than
     report a protection that is not there. *)
  let store = A.Array_store ("tTvect", A.Var "x", A.Int_lit 1) in
  let guard = A.If (A.Bin (A.Gt, A.Var "x", A.Int_lit 100), [ A.Reject "range" ], []) in
  let clobbered =
    { A.name = "t"; params = [ A.Str_param "s" ];
      body =
        [ A.Decl_int ("x", A.Atoi (A.Var "s"));
          guard;
          A.Assign ("x", A.Bin (A.Add, A.Var "x", A.Int_lit 50));
          store;
          A.Return (A.Int_lit 0) ] }
  in
  Alcotest.(check string) "guard dropped" "true" (impl clobbered "x");
  let intact =
    { clobbered with
      A.body = [ A.Decl_int ("x", A.Atoi (A.Var "s")); guard; store;
                 A.Return (A.Int_lit 0) ] }
  in
  Alcotest.(check string) "guard kept without the clobber" "!(self > 100)"
    (impl intact "x")

let test_extract_loop_clobbered_guard () =
  (* An assignment anywhere in a loop body invalidates a pre-loop
     guard for every site inside the loop. *)
  let f =
    { A.name = "t"; params = [ A.Int_param "x" ];
      body =
        [ A.If (A.Bin (A.Gt, A.Var "x", A.Int_lit 10), [ A.Reject "range" ], []);
          A.While
            ( A.Bin (A.Lt, A.Var "x", A.Int_lit 100),
              [ A.Array_store ("arr", A.Var "x", A.Int_lit 1);
                A.Assign ("x", A.Bin (A.Add, A.Var "x", A.Int_lit 1)) ] );
          A.Return (A.Int_lit 0) ] }
  in
  match X.dangerous_sites f with
  | [ site ] ->
      (* Only the loop condition survives; the x > 10 reject does not. *)
      let p = Option.get (X.impl_predicate_at ~object_var:"x" site) in
      let holds v = P.holds ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int v) p in
      Alcotest.(check bool) "50 reaches the store" true (holds 50);
      Alcotest.(check bool) "100 does not" false (holds 100)
  | sites -> Alcotest.fail (Printf.sprintf "%d sites" (List.length sites))

let test_weakest_predicate_disjunction () =
  (* Two stores guarded differently: the function-level weakest
     predicate is the disjunction of the per-site conditions. *)
  let f =
    { A.name = "t"; params = [ A.Int_param "x" ];
      body =
        [ A.If (A.Bin (A.Lt, A.Var "x", A.Int_lit 0), [ A.Reject "neg" ], []);
          A.If
            ( A.Bin (A.Lt, A.Var "x", A.Int_lit 10),
              [ A.Array_store ("small", A.Var "x", A.Int_lit 1) ],
              [ A.If (A.Bin (A.Gt, A.Var "x", A.Int_lit 100), [ A.Reject "big" ], []);
                A.Array_store ("large", A.Var "x", A.Int_lit 2) ] );
          A.Return (A.Int_lit 0) ] }
  in
  let sites = X.dangerous_sites f in
  Alcotest.(check int) "two sites" 2 (List.length sites);
  List.iter
    (fun s -> Alcotest.(check bool) "relevant" true (X.site_relevant ~object_var:"x" s))
    sites;
  match X.weakest_predicate f ~object_var:"x" with
  | Some p ->
      let holds v = P.holds ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int v) p in
      Alcotest.(check bool) "5 via small" true (holds 5);
      Alcotest.(check bool) "50 via large" true (holds 50);
      Alcotest.(check bool) "-1 nowhere" false (holds (-1));
      Alcotest.(check bool) "101 nowhere" false (holds 101)
  | None -> Alcotest.fail "no weakest predicate"

(* ---- the automatic tool, end to end -------------------------------- *)

let test_auto_verify_refutes_vulnerable () =
  let pfsm =
    X.pfsm_of ~name:"auto" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"tTvect[x] = i" ~spec:C.tTflag_spec ~object_var:C.tTflag_object
      C.tTflag_vulnerable
  in
  (match Pfsm.Verify.verify pfsm (Pfsm.Verify.Int_range { low = -2048; high = 2048 }) with
   | Pfsm.Verify.Refuted { witness = Pfsm.Value.Int w; _ } ->
       Alcotest.(check bool) "negative witness" true (w < 0)
   | o -> Alcotest.fail (Format.asprintf "%a" Pfsm.Verify.pp_result o));
  let fixed =
    X.pfsm_of ~name:"auto" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"tTvect[x] = i" ~spec:C.tTflag_spec ~object_var:C.tTflag_object
      C.tTflag_fixed
  in
  match Pfsm.Verify.verify fixed (Pfsm.Verify.Int_range { low = -2048; high = 2048 }) with
  | Pfsm.Verify.Verified _ -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" Pfsm.Verify.pp_result o)

let test_auto_verify_catches_off_by_one () =
  let pfsm =
    X.pfsm_of ~name:"auto" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"strcpy(buf, request)" ~spec:C.log_spec ~object_var:C.log_object
      C.log_off_by_one
  in
  let domain =
    Pfsm.Verify.Strings (List.init 260 (fun n -> String.make n 'a'))
  in
  match Pfsm.Verify.verify pfsm domain with
  | Pfsm.Verify.Refuted { witness = Pfsm.Value.Str w; _ } ->
      Alcotest.(check int) "the 200-byte witness" 200 (String.length w)
  | o -> Alcotest.fail (Format.asprintf "%a" Pfsm.Verify.pp_result o)

(* Differential oracle: for every input, the extracted implementation
   predicate predicts whether the interpreter reaches the dangerous
   operation, and the specification predicts whether doing so is
   safe. *)
let prop_extracted_predicate_predicts_execution =
  QCheck.Test.make
    ~name:"minic: extracted impl + spec predict the interpreter's outcome" ~count:300
    QCheck.(int_range (-3000) 3000)
    (fun x ->
       let impl =
         Option.get (X.impl_predicate C.tTflag_vulnerable ~object_var:"x")
       in
       let self = Pfsm.Value.Int x in
       let impl_accepts = P.holds ~env:Pfsm.Env.empty ~self impl in
       let spec_accepts = P.holds ~env:Pfsm.Env.empty ~self C.tTflag_spec in
       let outcome =
         C.run_tTflag C.tTflag_vulnerable ~str_x:(string_of_int x) ~str_i:"1"
       in
       match outcome with
       | I.Rejected _ -> not impl_accepts
       | I.Returned _ -> impl_accepts && spec_accepts
       | I.Memory_violation _ -> impl_accepts && not spec_accepts
       | I.Diverged -> false)

let prop_log_predicates_predict =
  QCheck.Test.make ~name:"minic: Log variants predicted over request lengths" ~count:100
    QCheck.(pair (oneofl [ `Vuln; `Fixed; `Off_by_one ]) (int_range 0 400))
    (fun (variant, len) ->
       let f =
         match variant with
         | `Vuln -> C.log_vulnerable
         | `Fixed -> C.log_fixed
         | `Off_by_one -> C.log_off_by_one
       in
       let impl = Option.get (X.impl_predicate f ~object_var:"request") in
       let request = String.make len 'q' in
       let self = Pfsm.Value.Str request in
       let impl_accepts = P.holds ~env:Pfsm.Env.empty ~self impl in
       let spec_accepts = P.holds ~env:Pfsm.Env.empty ~self C.log_spec in
       match C.run_log f ~request with
       | I.Rejected _ -> not impl_accepts
       | I.Returned _ -> impl_accepts && spec_accepts
       | I.Memory_violation _ -> impl_accepts && not spec_accepts
       | I.Diverged -> false)

(* Seeded random ASTs survive a print -> parse -> print roundtrip.
   The generator (Staticcheck.Progen) only avoids the shapes the
   concrete syntax cannot distinguish (a bare [return -1] reads back
   as a reject). *)
let prop_progen_roundtrips =
  QCheck.Test.make ~name:"minic: random ASTs roundtrip through the parser"
    ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed -> Minic.Parser.roundtrips (Staticcheck.Progen.func ~seed))

(* ---- ReadPOSTData in source form ----------------------------------- *)

let test_read_post_data_6255 () =
  match
    C.run_read_post_data C.read_post_data_buggy ~content_len:0
      ~body:(String.make 2048 'z')
  with
  | I.Memory_violation (I.Buffer_overflow { buffer = "PostData"; wrote = 2048; capacity = 1024 }) ->
      ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_read_post_data_5774 () =
  (* Negative contentLen: the buffer is carved at 224 bytes while the
     first recv writes 1024. *)
  match
    C.run_read_post_data C.read_post_data_buggy ~content_len:(-800)
      ~body:(String.make 1024 'z')
  with
  | I.Memory_violation (I.Buffer_overflow { capacity = 224; _ }) -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_read_post_data_fixed_safe () =
  (match
     C.run_read_post_data C.read_post_data_fixed ~content_len:0
       ~body:(String.make 2048 'z')
   with
   | I.Returned 1024 -> ()
   | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o));
  match
    C.run_read_post_data C.read_post_data_fixed ~content_len:2000
      ~body:(String.make 2000 'z')
  with
  | I.Returned 2000 -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_read_post_data_dos_hang () =
  (* The shipped loop spins forever when the peer sends less than it
     declared (rc = 0 but x < contentLen) -- the DoS flavour. *)
  match
    C.run_read_post_data C.read_post_data_buggy ~content_len:500
      ~body:(String.make 100 'z')
  with
  | I.Diverged -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o)

let test_read_post_data_static_blindspot () =
  (* Path-condition extraction cannot tell || from &&: both recv
     sites are unguarded on the first iteration.  The dynamic
     differential above is what separates them -- the documented
     reason the paper's method is data-driven. *)
  List.iter
    (fun f ->
       Alcotest.(check string) f.A.name "true"
         (impl f "contentLen"))
    [ C.read_post_data_buggy; C.read_post_data_fixed ]

(* ---- parser --------------------------------------------------------- *)

let test_parser_roundtrips_whole_corpus () =
  List.iter
    (fun (label, f) ->
       Alcotest.(check bool) label true (Minic.Parser.roundtrips f))
    C.all

let test_parser_parses_handwritten_source () =
  let src =
    "int check(const char *s) {\n\
    \  int x = atoi(s);\n\
    \  if (x < 0 || x > 100) { return -1; /* reject: bad */ }\n\
    \  table[x] = 1;\n\
    \  return 0;\n\
     }"
  in
  match Minic.Parser.func src with
  | Ok f ->
      Alcotest.(check string) "name" "check" f.A.name;
      Alcotest.(check string) "impl extracted" "!((self < 0 || self > 100))"
        (impl f "x")
  | Error e -> Alcotest.fail (Printf.sprintf "line %d: %s" e.Minic.Parser.line e.Minic.Parser.message)

let test_parser_do_while_and_recv () =
  let src =
    "int f(int n) {\n\
    \  char buf[n + 16];\n\
    \  int x = 0;\n\
    \  int rc = 0;\n\
    \  do {\n\
    \    rc = recv(sock, buf + x, 8);\n\
    \    x = x + rc;\n\
    \  } while (rc == 8 && x < n);\n\
    \  return x;\n\
     }"
  in
  match Minic.Parser.func src with
  | Ok f -> (
      match Minic.Interp.run ~socket:(String.make 20 'q') f ~args:[ I.Vint 100 ] with
      | I.Returned 20 -> ()
      | o -> Alcotest.fail (Format.asprintf "%a" I.pp_outcome o))
  | Error e ->
      Alcotest.fail (Printf.sprintf "line %d: %s" e.Minic.Parser.line e.Minic.Parser.message)

let test_parser_program_multiple_funcs () =
  let src = "int a() { return 1; }\nint b(int x) { return x; }" in
  match Minic.Parser.program src with
  | Ok [ fa; fb ] ->
      Alcotest.(check string) "a" "a" fa.A.name;
      Alcotest.(check string) "b" "b" fb.A.name
  | Ok l -> Alcotest.fail (Printf.sprintf "%d funcs" (List.length l))
  | Error e -> Alcotest.fail e.Minic.Parser.message

let test_parser_error_reports_line () =
  match Minic.Parser.func "int f() {\n  int x = ;\n}" with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error e -> Alcotest.(check int) "line 2" 2 e.Minic.Parser.line

let () =
  Alcotest.run "minic"
    [ ("ast", [ Alcotest.test_case "pretty printing" `Quick test_pp_renders_cish_source ]);
      ("interpreter",
       [ Alcotest.test_case "arithmetic" `Quick test_interp_arithmetic;
         Alcotest.test_case "comparisons/bools" `Quick test_interp_comparisons_and_bools;
         Alcotest.test_case "short-circuit && / ||" `Quick test_interp_short_circuit;
         Alcotest.test_case "atoi/strlen" `Quick test_interp_atoi_strlen;
         Alcotest.test_case "if/else" `Quick test_interp_if_else_assign;
         Alcotest.test_case "while" `Quick test_interp_while_loop;
         Alcotest.test_case "divergence guard" `Quick test_interp_divergence_guard;
         Alcotest.test_case "reject" `Quick test_interp_reject;
         Alcotest.test_case "buffer roundtrip" `Quick test_interp_buffer_roundtrip;
         Alcotest.test_case "strncpy bounded" `Quick test_interp_strncpy_bounded ]);
      ("vulnerabilities",
       [ Alcotest.test_case "tTflag wrap exploit" `Quick test_tTflag_wrap_exploit;
         Alcotest.test_case "tTflag fixed rejects" `Quick test_tTflag_fixed_rejects_wrap;
         Alcotest.test_case "tTflag benign" `Quick test_tTflag_benign;
         Alcotest.test_case "Log overflow" `Quick test_log_overflow;
         Alcotest.test_case "Log fixed boundaries" `Quick test_log_fixed_boundaries;
         Alcotest.test_case "off-by-one still overflows" `Quick
           test_log_off_by_one_still_overflows ]);
      ("extraction",
       [ Alcotest.test_case "guards" `Quick test_extract_guards;
         Alcotest.test_case "sites" `Quick test_extract_sites;
         Alcotest.test_case "untranslatable" `Quick test_extract_untranslatable;
         Alcotest.test_case "nested guards" `Quick test_extract_nested_guards;
         Alcotest.test_case "clobbered guard dropped" `Quick
           test_extract_clobbered_guard;
         Alcotest.test_case "loop clobber" `Quick test_extract_loop_clobbered_guard;
         Alcotest.test_case "weakest predicate" `Quick
           test_weakest_predicate_disjunction ]);
      ("ReadPOSTData",
       [ Alcotest.test_case "#6255 from source" `Quick test_read_post_data_6255;
         Alcotest.test_case "#5774 from source" `Quick test_read_post_data_5774;
         Alcotest.test_case "&& fix safe" `Quick test_read_post_data_fixed_safe;
         Alcotest.test_case "DoS hang" `Quick test_read_post_data_dos_hang;
         Alcotest.test_case "static blind spot" `Quick
           test_read_post_data_static_blindspot ]);
      ("parser",
       [ Alcotest.test_case "corpus roundtrips" `Quick
           test_parser_roundtrips_whole_corpus;
         Alcotest.test_case "handwritten source" `Quick
           test_parser_parses_handwritten_source;
         Alcotest.test_case "do-while and recv" `Quick test_parser_do_while_and_recv;
         Alcotest.test_case "multiple functions" `Quick
           test_parser_program_multiple_funcs;
         Alcotest.test_case "error line" `Quick test_parser_error_reports_line;
         QCheck_alcotest.to_alcotest prop_progen_roundtrips ]);
      ("automatic tool",
       [ Alcotest.test_case "verify refutes/verifies" `Quick
           test_auto_verify_refutes_vulnerable;
         Alcotest.test_case "catches the off-by-one" `Quick
           test_auto_verify_catches_off_by_one;
         QCheck_alcotest.to_alcotest prop_extracted_predicate_predicts_execution;
         QCheck_alcotest.to_alcotest prop_log_predicates_predict ]) ]
