(* The serve layer: JSON codec round trips, protocol parsing, bounded
   admission, and the request loop's contract — exactly one typed
   response per admitted request, typed shedding past the bound,
   per-class breaker isolation, fuel deadlines, graceful drain, and a
   response stream byte-identical at every job count. *)

module S = Serve.Server
module P = Serve.Protocol
module J = Serve.Json

let with_jobs j f =
  Par.set_jobs j;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

(* ---- json --------------------------------------------------------- *)

let test_json_values () =
  let roundtrip s =
    match J.parse s with
    | Ok v -> J.to_string v
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  Alcotest.(check string) "object" {|{"a": 1, "b": [true, null, "x"]}|}
    (roundtrip {| {"a": 1, "b": [true, null, "x"]} |});
  Alcotest.(check string) "negative int" "-42" (roundtrip "-42");
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (roundtrip {|"a\"b\\c\nd"|});
  Alcotest.(check bool) "trailing garbage rejected" true
    (Result.is_error (J.parse "1 2"));
  Alcotest.(check bool) "unterminated string rejected" true
    (Result.is_error (J.parse {|{"a": "b|}));
  Alcotest.(check bool) "bare word rejected" true
    (Result.is_error (J.parse "nope"));
  match J.parse {|{"x": 3, "x": 4}|} with
  | Ok v -> Alcotest.(check (option int)) "first binding wins" (Some 3)
              (J.field_int "x" v)
  | Error e -> Alcotest.failf "duplicate-field object: %s" e

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) small_signed_int;
        map (fun s -> J.Str s) (string_size ~gen:printable (int_range 0 8)) ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (2, scalar);
            (1, map (fun l -> J.List l) (list_size (int_range 0 4) (self (n / 2))));
            (1,
             map
               (fun ps -> J.Obj ps)
               (list_size (int_range 0 4)
                  (pair (string_size ~gen:printable (int_range 1 6))
                     (self (n / 2))))) ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json: print/parse round trip" ~count:300
    (QCheck.make json_gen ~print:(fun v -> J.to_string v))
    (fun v ->
       match J.parse (J.to_string v) with
       | Ok v' -> J.to_string v' = J.to_string v
       | Error _ -> false)

(* ---- protocol ----------------------------------------------------- *)

let test_protocol_parse () =
  (match P.parse ~line_id:"line:1" {|{"id":"a","kind":"lint","target":"corpus"}|} with
   | Ok (P.Work { id = "a"; fuel = None; work = P.Lint { target = "corpus" } }) -> ()
   | _ -> Alcotest.fail "lint request");
  (match P.parse ~line_id:"line:1" {|{"kind":"analyze","app":"xterm","fuel":9}|} with
   | Ok (P.Work { id = "line:1"; fuel = Some 9; work = P.Analyze { app = "xterm" } })
     -> ()
   | _ -> Alcotest.fail "id defaults to the line id; fuel carried");
  (match P.parse ~line_id:"x" {|{"kind":"boom"}|} with
   | Ok (P.Work { work = P.Boom { mode = "crash"; times = t }; _ }) ->
       Alcotest.(check bool) "boom defaults" true (t = max_int)
   | _ -> Alcotest.fail "boom defaults");
  (match P.parse ~line_id:"x" {|{"kind":"stats"}|} with
   | Ok (P.Stats { full = false; _ }) -> ()
   | _ -> Alcotest.fail "stats defaults to partial");
  (match P.parse ~line_id:"x" {|{"kind":"flush"}|} with
   | Ok P.Flush -> ()
   | _ -> Alcotest.fail "flush");
  (match P.parse ~line_id:"x" {|{"kind":"shutdown"}|} with
   | Ok P.Shutdown -> ()
   | _ -> Alcotest.fail "shutdown");
  Alcotest.(check bool) "unknown kind is typed" true
    (Result.is_error (P.parse ~line_id:"x" {|{"kind":"frobnicate"}|}));
  Alcotest.(check bool) "missing field is typed" true
    (Result.is_error (P.parse ~line_id:"x" {|{"kind":"analyze"}|}));
  Alcotest.(check bool) "non-object is typed" true
    (Result.is_error (P.parse ~line_id:"x" "[1,2]"))

(* ---- admission ---------------------------------------------------- *)

let test_admission_bound () =
  let q = Serve.Admission.create ~capacity:3 in
  let outcomes = List.map (Serve.Admission.admit q) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "bounded: nothing buffered past capacity" 3
    (Serve.Admission.depth q);
  Alcotest.(check bool) "first three admitted, rest shed" true
    (outcomes = [ `Admitted; `Admitted; `Admitted; `Shed; `Shed ]);
  Alcotest.(check (list int)) "drain is FIFO" [ 1; 2; 3 ]
    (Serve.Admission.drain q);
  Alcotest.(check int) "drain empties" 0 (Serve.Admission.depth q);
  Alcotest.(check bool) "capacity restored after drain" true
    (Serve.Admission.admit q 6 = `Admitted);
  Alcotest.(check int) "admitted is a running total" 4
    (Serve.Admission.admitted q);
  Alcotest.(check int) "shed is a running total" 2 (Serve.Admission.shed q);
  let clamped = Serve.Admission.create ~capacity:(-5) in
  Alcotest.(check int) "capacity clamps to 1" 1
    (Serve.Admission.capacity clamped)

(* ---- the request loop --------------------------------------------- *)

let script =
  [ {|{"id":"a1","kind":"analyze","app":"sendmail"}|};
    {|{"id":"e1","kind":"exploit","app":"iis"}|};
    {|{"id":"bad-app","kind":"analyze","app":"nonesuch"}|};
    {|{"id":"tiny","kind":"lint","target":"corpus","fuel":2}|};
    {|{"id":"b1","kind":"boom","mode":"crash"}|};
    "";
    "# a comment line";
    {|{"kind":"flush"}|};
    {|{"id":"s1","kind":"stats"}|};
    "definitely not json";
    {|{"id":"l1","kind":"lint","target":"tTflag (vulnerable)"}|};
    {|{"kind":"shutdown"}|} ]

let run_with ?config lines = S.run_script ?config lines

let status_of line =
  match J.parse line with
  | Ok v -> Option.value ~default:"?" (J.field_str "status" v)
  | Error e -> Alcotest.failf "response is not JSON: %s (%s)" line e

let id_of line =
  match J.parse line with
  | Ok v -> Option.value ~default:"?" (J.field_str "id" v)
  | Error _ -> "?"

let test_statuses () =
  let lines, s = run_with script in
  Alcotest.(check bool) "drained" true s.S.drained;
  Alcotest.(check bool) "accounted: one terminal response per admitted" true
    (S.accounted s);
  Alcotest.(check int) "six admitted" 6 s.S.admitted;
  Alcotest.(check int) "one malformed line" 1 s.S.malformed;
  let status id =
    match List.find_opt (fun l -> id_of l = id) lines with
    | Some l -> status_of l
    | None -> Alcotest.failf "no response for %s" id
  in
  Alcotest.(check string) "analyze ok" "ok" (status "a1");
  Alcotest.(check string) "exploit ok" "ok" (status "e1");
  Alcotest.(check string) "unknown app is a typed error" "error"
    (status "bad-app");
  Alcotest.(check string) "fuel exhaustion is a typed deadline" "deadline"
    (status "tiny");
  Alcotest.(check string) "crash quarantines" "quarantined" (status "b1");
  Alcotest.(check string) "malformed line answered by line id" "error"
    (status "line:10");
  Alcotest.(check string) "summary is the last line" "summary"
    (status_of (List.nth lines (List.length lines - 1)))

let test_overload_shedding () =
  let config = { S.default_config with S.capacity = 2 } in
  let burst =
    List.init 5 (fun i ->
        Printf.sprintf {|{"id":"r%d","kind":"lint","target":"Log (fixed)"}|} i)
  in
  let lines, s = run_with ~config (burst @ [ {|{"kind":"shutdown"}|} ]) in
  Alcotest.(check int) "two admitted" 2 s.S.admitted;
  Alcotest.(check int) "three shed with a typed response" 3 s.S.shed;
  Alcotest.(check bool) "accounted" true (S.accounted s);
  let overloaded =
    List.filter (fun l -> status_of l = "overloaded") lines
  in
  Alcotest.(check int) "every shed request answered" 3 (List.length overloaded);
  (* stats must answer even when the queue is full *)
  let lines2, _ =
    run_with ~config
      (List.filteri (fun i _ -> i < 4) burst
       @ [ {|{"id":"s","kind":"stats"}|}; {|{"kind":"shutdown"}|} ])
  in
  match List.find_opt (fun l -> id_of l = "s") lines2 with
  | Some l -> Alcotest.(check string) "stats bypasses admission" "ok" (status_of l)
  | None -> Alcotest.fail "stats starved by a full queue"

let test_breaker_isolation () =
  (* a poison class (boom crashes) trips its breaker; lint work in the
     same batches is untouched *)
  let booms =
    List.init 6 (fun i ->
        Printf.sprintf {|{"id":"b%d","kind":"boom","mode":"crash"}|} i)
  in
  let lints =
    List.init 6 (fun i ->
        Printf.sprintf {|{"id":"l%d","kind":"lint","target":"Log (fixed)"}|} i)
  in
  let interleaved =
    List.concat_map (fun (b, l) -> [ b; l ]) (List.combine booms lints)
  in
  let config = { S.default_config with S.capacity = 32 } in
  let lines, s = run_with ~config (interleaved @ [ {|{"kind":"shutdown"}|} ]) in
  Alcotest.(check bool) "accounted" true (S.accounted s);
  List.iteri
    (fun i l ->
       Alcotest.(check string)
         (Printf.sprintf "lint l%d unaffected by the boom breaker" i)
         "ok"
         (status_of l))
    (List.filter (fun l -> String.length (id_of l) > 0 && (id_of l).[0] = 'l')
       lines);
  Alcotest.(check int) "every boom quarantined" 6 s.S.quarantined

let test_drain_semantics () =
  (* lines after shutdown are never read; queued work still completes *)
  let lines, s =
    run_with
      [ {|{"id":"w1","kind":"lint","target":"Log (fixed)"}|};
        {|{"kind":"shutdown"}|};
        {|{"id":"never","kind":"lint","target":"Log (fixed)"}|} ]
  in
  Alcotest.(check bool) "drained" true s.S.drained;
  Alcotest.(check int) "queued work finished during drain" 1 s.S.completed;
  Alcotest.(check bool) "post-shutdown line never admitted" true
    (not (List.exists (fun l -> id_of l = "never") lines));
  (* EOF with work still queued drains too *)
  let _, s2 = run_with [ {|{"id":"w1","kind":"lint","target":"Log (fixed)"}|} ] in
  Alcotest.(check bool) "EOF drains the queue" true
    (s2.S.drained && s2.S.completed = 1)

let test_job_count_identity () =
  let run j = with_jobs j (fun () -> run_with script) in
  let lines1, s1 = run 1 in
  let lines2, _ = run 2 in
  let lines4, _ = run 4 in
  Alcotest.(check (list string)) "-j2 stream = -j1 stream" lines1 lines2;
  Alcotest.(check (list string)) "-j4 stream = -j1 stream" lines1 lines4;
  Alcotest.(check string) "summary JSON identical" (S.summary_to_json s1)
    (let _, s4 = run 4 in
     S.summary_to_json s4)

let test_latency_percentiles () =
  Alcotest.(check int) "empty" 0 (S.percentile 99 []);
  Alcotest.(check int) "p50 of 1..10" 5 (S.percentile 50 [ 10; 9; 8; 7; 6; 5; 4; 3; 2; 1 ]);
  Alcotest.(check int) "p99 of 1..10" 10 (S.percentile 99 [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]);
  Alcotest.(check int) "p1 is the minimum" 1 (S.percentile 1 [ 3; 1; 2 ])

(* ---- the chaos soak ----------------------------------------------- *)

let test_soak_smoke () =
  let report = Chaos.soak ~plans:Fault.Catalog.smoke () in
  Alcotest.(check (list string)) "soak contract under the smoke plans" []
    (Chaos.soak_violations report);
  List.iter
    (fun (sr : Chaos.soak_run) ->
       Alcotest.(check bool)
         (Printf.sprintf "plan %s sheds deterministically"
            sr.Chaos.soak_plan.Fault.Plan.name)
         true
         (sr.Chaos.summary.S.shed = report.Chaos.expect_shed))
    report.Chaos.soak_runs

let test_soak_stable () =
  Alcotest.(check bool) "soak: same seed, byte-identical JSON" true
    (Chaos.soak_stable ~plans:Fault.Catalog.smoke ())

(* ---- suite -------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [ ("json",
       [ Alcotest.test_case "values and errors" `Quick test_json_values;
         QCheck_alcotest.to_alcotest prop_json_roundtrip ]);
      ("protocol",
       [ Alcotest.test_case "request parsing" `Quick test_protocol_parse ]);
      ("admission",
       [ Alcotest.test_case "bounded queue" `Quick test_admission_bound ]);
      ("server",
       [ Alcotest.test_case "typed statuses" `Quick test_statuses;
         Alcotest.test_case "overload shedding" `Quick test_overload_shedding;
         Alcotest.test_case "breaker class isolation" `Quick
           test_breaker_isolation;
         Alcotest.test_case "graceful drain" `Quick test_drain_semantics;
         Alcotest.test_case "byte-identical at every -j" `Quick
           test_job_count_identity;
         Alcotest.test_case "percentiles" `Quick test_latency_percentiles ]);
      ("soak",
       [ Alcotest.test_case "smoke contract" `Quick test_soak_smoke;
         Alcotest.test_case "stable" `Quick test_soak_stable ]) ]
