(* The supervision layer: deterministic backoff, circuit breaking,
   quarantine, checkpointed resume, and the chaos harness contract. *)

module R = Resilience
module Sup = R.Supervisor

let transient failures =
  (* a work thunk that hits a simulated fault [failures] times, then
     succeeds *)
  let left = ref failures in
  fun () ->
    if !left > 0 then begin
      decr left;
      Fault.Condition.fail (Fault.Condition.Heap_exhausted { requested = 64 })
    end
    else "done"

(* ---- retry -------------------------------------------------------- *)

let test_delays () =
  let d = R.Retry.delays R.Retry.default in
  Alcotest.(check int) "max_attempts - 1 delays" 4 (List.length d);
  Alcotest.(check (list int)) "pure" d (R.Retry.delays R.Retry.default);
  List.iter
    (fun delay ->
       Alcotest.(check bool) "within jitter envelope" true
         (delay >= 0 && delay <= 400 + 100))
    d

let test_retry_run () =
  (match R.Retry.run R.Retry.default (transient 2) with
   | Ok ("done", 3) -> ()
   | Ok (_, k) -> Alcotest.failf "succeeded after %d attempts, wanted 3" k
   | Error _ -> Alcotest.fail "transient failure not retried");
  (match R.Retry.run R.Retry.default (transient 99) with
   | Error (R.Quarantine.Retries_exhausted { attempts = 5; last = _ }, 5) -> ()
   | Error _ -> Alcotest.fail "wrong exhaustion cause"
   | Ok _ -> Alcotest.fail "exhausted work succeeded");
  (match R.Retry.run R.Retry.default (fun () -> raise (R.Quarantine.Reject "bad")) with
   | Error (R.Quarantine.Rejected { detail = "bad" }, 1) -> ()
   | _ -> Alcotest.fail "Reject not terminal on first attempt");
  match R.Retry.run R.Retry.default (fun () -> failwith "boom") with
  | Error (R.Quarantine.Crash _, 1) -> ()
  | _ -> Alcotest.fail "crash not terminal"

let prop_same_seed_same_schedule =
  let open QCheck in
  Test.make ~name:"retry: same seed, same backoff schedule" ~count:200
    (quad small_nat (int_range 1 8) (int_range 1 100) (int_range 0 50))
    (fun (seed, max_attempts, base_delay, jitter_percent) ->
       let policy =
         { R.Retry.max_attempts; base_delay; max_delay = base_delay * 8;
           jitter_percent; seed }
       in
       let d1 = R.Retry.delays policy and d2 = R.Retry.delays policy in
       d1 = d2
       && List.length d1 = max_attempts - 1
       && List.for_all (fun d -> d >= 0) d1)

(* ---- breaker ------------------------------------------------------ *)

let test_breaker_lifecycle () =
  let b = R.Breaker.create ~resource:"db" () in
  R.Breaker.failure b ~now:1 ~cause:"x";
  R.Breaker.failure b ~now:2 ~cause:"x";
  Alcotest.(check bool) "two failures stay closed" true
    (R.Breaker.state b = R.Breaker.Closed);
  R.Breaker.failure b ~now:3 ~cause:"x";
  Alcotest.(check bool) "third failure trips" true
    (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check bool) "open refuses" false (R.Breaker.acquire b ~now:10);
  Alcotest.(check bool) "cooldown admits a probe" true
    (R.Breaker.acquire b ~now:203);
  Alcotest.(check bool) "probing" true (R.Breaker.state b = R.Breaker.Half_open);
  R.Breaker.failure b ~now:204 ~cause:"y";
  Alcotest.(check bool) "failed probe re-opens" true
    (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check int) "two typed trips" 2 (List.length (R.Breaker.trips b));
  ignore (R.Breaker.acquire b ~now:500);
  R.Breaker.success b;
  Alcotest.(check bool) "successful probe closes" true
    (R.Breaker.state b = R.Breaker.Closed);
  let trip = List.hd (R.Breaker.trips b) in
  Alcotest.(check string) "trip names the resource" "db"
    trip.R.Breaker.resource;
  Alcotest.(check int) "trip records the time" 3 trip.R.Breaker.at

let prop_breaker_no_open_to_closed =
  let open QCheck in
  (* whatever the operation sequence, Open -> Closed never happens
     directly: it must pass Half_open *)
  let op = oneofl [ `Acquire; `Success; `Failure ] in
  Test.make ~name:"breaker: Open->Closed only via Half_open" ~count:500
    (list_of_size (Gen.int_range 0 40) op)
    (fun ops ->
       let b =
         R.Breaker.create
           ~config:{ R.Breaker.failure_threshold = 2; cooldown = 5 }
           ~resource:"r" ()
       in
       let now = ref 0 in
       List.iter
         (fun o ->
            incr now;
            match o with
            | `Acquire -> ignore (R.Breaker.acquire b ~now:!now)
            | `Success -> R.Breaker.success b
            | `Failure -> R.Breaker.failure b ~now:!now ~cause:"f")
         ops;
       List.for_all
         (fun edge -> edge <> (R.Breaker.Open, R.Breaker.Closed))
         (R.Breaker.transitions b))

(* ---- deadline ----------------------------------------------------- *)

let test_deadline () =
  let d = R.Deadline.of_fuel 10 in
  Alcotest.(check bool) "grant within fuel" true (R.Deadline.spend d 4);
  Alcotest.(check int) "used" 4 (R.Deadline.used d);
  Alcotest.(check (option int)) "remaining" (Some 6) (R.Deadline.remaining d);
  Alcotest.(check bool) "refuse beyond fuel" false (R.Deadline.spend d 7);
  Alcotest.(check bool) "exhaustion is sticky" false (R.Deadline.spend d 1);
  Alcotest.(check bool) "exceeded" true (R.Deadline.exceeded d);
  (* child spends the parent; parent exhaustion refuses the child *)
  let parent = R.Deadline.of_fuel 5 in
  let child = R.Deadline.sub parent ~fuel:100 in
  Alcotest.(check bool) "child grant" true (R.Deadline.spend child 3);
  Alcotest.(check int) "parent charged" 3 (R.Deadline.used parent);
  Alcotest.(check bool) "parent cap binds child" false (R.Deadline.spend child 3);
  (* composition with Fault.Budget *)
  let b = Fault.Budget.of_fuel 2 in
  let bd = R.Deadline.of_budget b in
  Alcotest.(check bool) "budget-backed grant" true (R.Deadline.spend bd 2);
  Alcotest.(check bool) "budget exhausted refuses" false (R.Deadline.spend bd 1);
  Alcotest.(check int) "budget consumed" 2 (Fault.Budget.used b)

(* ---- checkpoint --------------------------------------------------- *)

let test_checkpoint_file () =
  let path = Filename.temp_file "dfsm-test" ".checkpoint" in
  Sys.remove path;
  let cp = R.Checkpoint.load path in
  R.Checkpoint.mark cp ~id:"plain" ~attempts:1;
  R.Checkpoint.mark cp ~id:"with space" ~attempts:2;
  R.Checkpoint.mark cp ~id:"with\nnewline" ~attempts:3;
  R.Checkpoint.mark cp ~id:"plain" ~attempts:9;
  let reloaded = R.Checkpoint.load path in
  Alcotest.(check int) "entries survive reload" 3 (R.Checkpoint.count reloaded);
  Alcotest.(check (list string)) "journal order"
    [ "plain"; "with space"; "with\nnewline" ]
    (R.Checkpoint.ids reloaded);
  Alcotest.(check (option int)) "first mark wins" (Some 1)
    (R.Checkpoint.attempts reloaded "plain");
  Alcotest.(check (option int)) "escaped id round-trips" (Some 3)
    (R.Checkpoint.attempts reloaded "with\nnewline");
  R.Checkpoint.reset reloaded;
  Alcotest.(check bool) "reset removes the file" false (Sys.file_exists path)

let test_checkpoint_skipped_surfaced () =
  let path = Filename.temp_file "dfsm-test" ".checkpoint" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "1 ok\nnot a journal line\n2 also-ok\nx y\n");
  let cp = R.Checkpoint.load path in
  Alcotest.(check int) "valid entries load" 2 (R.Checkpoint.count cp);
  Alcotest.(check int) "corrupt lines counted" 2 (R.Checkpoint.skipped cp);
  Alcotest.(check (list int)) "corrupt lines located" [ 2; 4 ]
    (R.Checkpoint.skipped_lines cp);
  (* per-line classification: only the final line can be the prefix a
     crash mid-append leaves; damage before it is mid-file corruption *)
  Alcotest.(check (list string)) "damage classified"
    [ "corrupt"; "torn-tail" ]
    (List.map
       (fun (_, d) -> R.Checkpoint.damage_to_string d)
       (R.Checkpoint.skipped_detail cp));
  R.Checkpoint.reset cp;
  Alcotest.(check int) "reset clears the count" 0 (R.Checkpoint.skipped cp)

let test_checkpoint_midfile_corruption () =
  (* a sealed journal with one line flipped in the middle: the damaged
     line is skipped and classified Corrupt, every other entry loads *)
  let path = Filename.temp_file "dfsm-test" ".checkpoint" in
  Sys.remove path;
  let cp = R.Checkpoint.load path in
  List.iter
    (fun id -> R.Checkpoint.mark cp ~id ~attempts:1)
    [ "a"; "b"; "c" ];
  R.Checkpoint.finalize cp;
  let journal = In_channel.with_open_bin path In_channel.input_all in
  let second = String.index_from journal (String.index journal '\n' + 1) '\n' in
  let b = Bytes.of_string journal in
  Bytes.set b (second - 1) (Char.chr (Char.code (Bytes.get b (second - 1)) lxor 1));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  let reloaded = R.Checkpoint.load path in
  Alcotest.(check (list string)) "undamaged entries load" [ "a"; "c" ]
    (R.Checkpoint.ids reloaded);
  (match R.Checkpoint.skipped_detail reloaded with
   | [ (2, R.Checkpoint.Corrupt) ] -> ()
   | _ -> Alcotest.fail "mid-file damage not classified Corrupt at line 2");
  R.Checkpoint.reset reloaded

(* ---- supervisor --------------------------------------------------- *)

let item id work = { Sup.id; resource = "r"; work }

let test_supervisor_outcomes () =
  let out =
    Sup.run ~label:"t"
      [ item "ok" (fun () -> 1);
        item "flaky" (let w = transient 2 in fun () -> ignore (w ()); 2);
        item "reject" (fun () -> raise (R.Quarantine.Reject "malformed"));
        item "crash" (fun () -> failwith "bug");
        item "after" (fun () -> 5) ]
  in
  let r = out.Sup.report in
  Alcotest.(check int) "all items accounted for" 5 (R.Run_report.total r);
  Alcotest.(check int) "three completed" 3 (R.Run_report.completed r);
  Alcotest.(check int) "one retried" 1 (R.Run_report.retried r);
  Alcotest.(check int) "two quarantined" 2 (R.Run_report.quarantined r);
  Alcotest.(check bool) "degraded, not ok" false (R.Run_report.ok r);
  Alcotest.(check (list (pair string int))) "results in order, sweep continued"
    [ ("ok", 1); ("flaky", 2); ("after", 5) ]
    out.Sup.results;
  (match R.Quarantine.find out.Sup.quarantined "reject" with
   | Some { R.Quarantine.cause = R.Quarantine.Rejected { detail }; _ } ->
       Alcotest.(check string) "typed rejection" "malformed" detail
   | _ -> Alcotest.fail "reject not quarantined as Rejected");
  match R.Quarantine.find out.Sup.quarantined "crash" with
  | Some { R.Quarantine.cause = R.Quarantine.Crash _; attempts = 1; _ } -> ()
  | _ -> Alcotest.fail "crash not quarantined as Crash"

let test_supervisor_deadline () =
  (* tiny fuel: the first item eats it, the rest are quarantined as
     Deadline_exceeded rather than silently dropped *)
  let config = { Sup.default_config with Sup.deadline = Some 1 } in
  let out =
    Sup.run ~config [ item "a" (fun () -> 1); item "b" (fun () -> 2) ]
  in
  let r = out.Sup.report in
  Alcotest.(check bool) "no lost items" true (R.Run_report.no_lost ~expected:2 r);
  match R.Quarantine.find out.Sup.quarantined "b" with
  | Some { R.Quarantine.cause = R.Quarantine.Deadline_exceeded _; _ } -> ()
  | _ -> Alcotest.fail "starved item not Deadline_exceeded"

let test_supervisor_breaker_trips () =
  (* one shared resource failing hard: the breaker trips and later
     items are refused without burning their full schedules *)
  let fail_item id =
    { Sup.id;
      resource = "shared";
      work =
        (fun () ->
           Fault.Condition.fail (Fault.Condition.Fs_denied { path = id })) }
  in
  let out = Sup.run (List.init 4 (fun i -> fail_item (string_of_int i))) in
  Alcotest.(check int) "every item accounted for" 4
    (R.Run_report.total out.Sup.report);
  match out.Sup.breakers with
  | [ b ] ->
      Alcotest.(check bool) "breaker tripped" true (R.Breaker.trips b <> []);
      Alcotest.(check bool) "typed trip cause" true
        (String.length (List.hd (R.Breaker.trips b)).R.Breaker.cause > 0)
  | bs -> Alcotest.failf "expected 1 breaker, got %d" (List.length bs)

let flaky_items ~seed n =
  (* n items, deterministically flaky from [seed]; records how often
     each id was analyzed to completion (retries before success are
     the same analysis, so the counter ticks on success only) *)
  let runs = Hashtbl.create 16 in
  let items =
    List.init n (fun i ->
        let id = Printf.sprintf "item-%02d" i in
        let failures = (seed + (i * 7)) mod 3 in
        let w = transient failures in
        { Sup.id;
          resource = "r" ^ string_of_int (i mod 2);
          work =
            (fun () ->
               let v = w () in
               Hashtbl.replace runs id
                 (1 + try Hashtbl.find runs id with Not_found -> 0);
               v) })
  in
  (items, runs)

let executions runs id = try Hashtbl.find runs id with Not_found -> 0

let test_resume_exactly_once () =
  let n = 6 in
  let cp = R.Checkpoint.in_memory () in
  let items, runs = flaky_items ~seed:3 n in
  let _interrupted = Sup.run ~checkpoint:cp ~stop_after:3 items in
  let items2, runs2 = flaky_items ~seed:3 n in
  let resumed = Sup.run ~checkpoint:cp items2 in
  let fresh_items, _ = flaky_items ~seed:3 n in
  let uninterrupted = Sup.run fresh_items in
  Alcotest.(check bool) "resumed report covers every item" true
    (R.Run_report.no_lost ~expected:n resumed.Sup.report);
  Alcotest.(check int) "three items resumed from the journal" 3
    (R.Run_report.resumed resumed.Sup.report);
  Alcotest.(check bool) "same outcomes as an uninterrupted run" true
    (R.Run_report.same_outcomes resumed.Sup.report uninterrupted.Sup.report);
  List.iter
    (fun (it : _ Sup.item) ->
       let total = executions runs it.Sup.id + executions runs2 it.Sup.id in
       Alcotest.(check int)
         (Printf.sprintf "%s analyzed exactly once" it.Sup.id)
         1 total)
    items

let prop_resume_exactly_once =
  let open QCheck in
  Test.make ~name:"supervisor: checkpointed resume analyzes each item once"
    ~count:50
    (triple (int_range 1 12) small_nat small_nat)
    (fun (n, stop, seed) ->
       let stop = stop mod (n + 1) in
       let cp = R.Checkpoint.in_memory () in
       let items, runs = flaky_items ~seed n in
       ignore (Sup.run ~checkpoint:cp ~stop_after:stop items);
       let items2, runs2 = flaky_items ~seed n in
       let resumed = Sup.run ~checkpoint:cp items2 in
       let fresh, _ = flaky_items ~seed n in
       let uninterrupted = Sup.run fresh in
       R.Run_report.no_lost ~expected:n resumed.Sup.report
       && R.Run_report.same_outcomes resumed.Sup.report uninterrupted.Sup.report
       && List.for_all
            (fun (it : _ Sup.item) ->
               executions runs it.Sup.id + executions runs2 it.Sup.id = 1)
            items)

let prop_torn_journal_resume =
  let open QCheck in
  (* Crash-consistency of the file journal: kill a sweep after [stop]
     items, then truncate its journal at an arbitrary byte offset — a
     torn tail, as a real crash mid-append leaves.  Reloading must
     surface at most one unparseable line (the torn one), never error;
     the resumed sweep must account for every item with the same
     outcomes as an uninterrupted run; and no item's side effects run
     more than twice (once before the kill, once more only if the
     truncation ate its journal record). *)
  Test.make ~name:"checkpoint: torn journal resumes with no loss, no double effects"
    ~count:60
    (quad (int_range 1 10) small_nat small_nat small_nat)
    (fun (n, stop, seed, cut) ->
       let stop = stop mod (n + 1) in
       let path = Filename.temp_file "dfsm-torn" ".journal" in
       Sys.remove path;
       let cp = R.Checkpoint.load path in
       let items, runs = flaky_items ~seed n in
       ignore (Sup.run ~checkpoint:cp ~stop_after:stop items);
       R.Checkpoint.finalize cp;
       let journal =
         if Sys.file_exists path then
           In_channel.with_open_bin path In_channel.input_all
         else ""
       in
       let cut = cut mod (String.length journal + 1) in
       Out_channel.with_open_bin path (fun oc ->
           Out_channel.output_string oc (String.sub journal 0 cut));
       let reloaded = R.Checkpoint.load path in
       let items2, runs2 = flaky_items ~seed n in
       let resumed = Sup.run ~checkpoint:reloaded items2 in
       let fresh, _ = flaky_items ~seed n in
       let uninterrupted = Sup.run fresh in
       if Sys.file_exists path then begin
         R.Checkpoint.finalize reloaded;
         Sys.remove path
       end;
       R.Checkpoint.skipped reloaded <= 1
       (* a truncation can only damage the final surviving line, and
          the per-line checksum classifies exactly that *)
       && List.for_all
            (fun (_, d) -> d = R.Checkpoint.Torn_tail)
            (R.Checkpoint.skipped_detail reloaded)
       && resumed.Sup.report.R.Run_report.journal_skipped
          = R.Checkpoint.skipped reloaded
       && R.Run_report.no_lost ~expected:n resumed.Sup.report
       && R.Run_report.same_outcomes resumed.Sup.report uninterrupted.Sup.report
       && List.for_all
            (fun (it : _ Sup.item) ->
               let e = executions runs it.Sup.id + executions runs2 it.Sup.id in
               1 <= e && e <= 2)
            items)

(* ---- ingest ------------------------------------------------------- *)

let curated_csv = Vulndb.Csv.of_database (Vulndb.Seed_data.database ())

let test_ingest_clean () =
  match R.Ingest.csv curated_csv with
  | Error e -> Alcotest.failf "clean ingest failed: %s" (Vulndb.Csv.error_to_string e)
  | Ok o ->
      Alcotest.(check bool) "whole database survives" true
        (Vulndb.Database.reports o.R.Ingest.db
         = Vulndb.Database.reports (Vulndb.Seed_data.database ()));
      Alcotest.(check bool) "report ok" true (R.Run_report.ok o.R.Ingest.report)

let test_ingest_bad_document () =
  (match R.Ingest.csv "not,a,header\n1,2,3\n" with
   | Error { Vulndb.Csv.line = 1; _ } -> ()
   | Error e -> Alcotest.failf "wrong line %d" e.Vulndb.Csv.line
   | Ok _ -> Alcotest.fail "bad header accepted");
  match R.Ingest.csv (Vulndb.Csv.header ^ "\n1,2,3\n") with
  | Ok o ->
      Alcotest.(check int) "ragged row quarantined, not fatal" 1
        (R.Quarantine.count o.R.Ingest.rejected);
      Alcotest.(check int) "nothing ingested" 0 (Vulndb.Database.size o.R.Ingest.db)
  | Error e -> Alcotest.failf "row-level error escaped: %s" (Vulndb.Csv.error_to_string e)

let test_ingest_under_bitflip () =
  let run () =
    Fault.Hooks.with_plan Fault.Catalog.bitflip (fun () -> R.Ingest.csv curated_csv)
  in
  match run (), run () with
  | Ok a, Ok b ->
      let expected = Vulndb.Database.size (Vulndb.Seed_data.database ()) in
      Alcotest.(check bool) "no lost rows under bitflip" true
        (R.Run_report.no_lost ~expected a.R.Ingest.report);
      Alcotest.(check bool) "corruption quarantines as Rejected" true
        (List.for_all
           (fun (e : _ R.Quarantine.entry) ->
              match e.R.Quarantine.cause with
              | R.Quarantine.Rejected _ -> true
              | _ -> false)
           (R.Quarantine.entries a.R.Ingest.rejected));
      Alcotest.(check string) "deterministic under the plan seed"
        (R.Run_report.to_json a.R.Ingest.report)
        (R.Run_report.to_json b.R.Ingest.report)
  | _ -> Alcotest.fail "document-level failure under bitflip"

let with_jobs jobs f =
  let prev = Par.jobs () in
  Par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Par.set_jobs prev) f

let test_ingest_duplicates_parallel_identical () =
  (* duplicate detection used to live inside the per-row work closure
     behind a shared Hashtbl, so speculating rows on pool domains
     raced on it; it is now a sequential post-pass, and a
     duplicate-bearing document must ingest identically at -j 1
     sequential and -j 4 parallel *)
  let reports = Vulndb.Database.reports (Vulndb.Seed_data.database ()) in
  let first = List.hd reports in
  let impostor =
    Vulndb.Report.make ~id:first.Vulndb.Report.id
      ~title:"Impostor row with a recycled id" ~date:"1999-01-01"
      ~category:Vulndb.Category.Unknown ~software:"impostor" ()
  in
  let rows =
    List.concat
      (List.mapi
         (fun i r ->
           let row = Vulndb.Csv.of_report r in
           if i mod 3 = 0 then [ row; row ] else [ row ])
         reports)
    @ [ Vulndb.Csv.of_report impostor ]
  in
  let doc = String.concat "\n" (Vulndb.Csv.header :: rows) ^ "\n" in
  let seq = with_jobs 1 (fun () -> R.Ingest.csv doc) in
  let par = with_jobs 4 (fun () -> R.Ingest.csv ~parallel:true doc) in
  match seq, par with
  | Ok a, Ok b ->
      Alcotest.(check bool) "databases identical" true
        (Vulndb.Database.reports a.R.Ingest.db
         = Vulndb.Database.reports b.R.Ingest.db);
      Alcotest.(check string) "run reports byte-identical"
        (R.Run_report.to_json a.R.Ingest.report)
        (R.Run_report.to_json b.R.Ingest.report);
      Alcotest.(check bool) "first occurrence wins" true
        (List.exists
           (fun (r : Vulndb.Report.t) ->
             r.Vulndb.Report.id = first.Vulndb.Report.id
             && r.Vulndb.Report.title = first.Vulndb.Report.title)
           (Vulndb.Database.reports a.R.Ingest.db));
      let dup_count =
        List.length
          (List.filter
             (fun (e : _ R.Quarantine.entry) ->
               match e.R.Quarantine.cause with
               | R.Quarantine.Rejected { detail } ->
                   let sub = "duplicate report id" in
                   let rec find i =
                     i + String.length sub <= String.length detail
                     && (String.sub detail i (String.length sub) = sub
                         || find (i + 1))
                   in
                   find 0
               | _ -> false)
             (R.Quarantine.entries a.R.Ingest.rejected))
      in
      Alcotest.(check int) "every later duplicate quarantined"
        (List.length rows - List.length reports)
        dup_count
  | _ -> Alcotest.fail "duplicate-bearing document failed to ingest"

let test_ingest_many_rejects () =
  (* back-mapping quarantined supervisor items to their source rows
     was a List.find over the quarantine per row — O(rows x rejects);
     with ~6000 rejects among ~12000 rows that was minutes, the
     Hashtbl index makes it instant *)
  let valid =
    Vulndb.Database.reports (Vulndb.Synth.generate ~seed:41)
    |> List.map Vulndb.Csv.of_report
  in
  let bad = List.init 6000 (fun i -> Printf.sprintf "bad,row,%d" i) in
  let doc = String.concat "\n" (Vulndb.Csv.header :: (valid @ bad)) ^ "\n" in
  match R.Ingest.csv doc with
  | Error e -> Alcotest.failf "document-level failure: %s" (Vulndb.Csv.error_to_string e)
  | Ok o ->
      Alcotest.(check int) "valid rows ingested" (List.length valid)
        (Vulndb.Database.size o.R.Ingest.db);
      Alcotest.(check int) "every bad row quarantined" (List.length bad)
        (R.Quarantine.count o.R.Ingest.rejected);
      Alcotest.(check bool) "no lost rows" true
        (R.Run_report.no_lost
           ~expected:(List.length valid + List.length bad)
           o.R.Ingest.report)

let test_synth_verified () =
  let out = R.Ingest.synth_verified ~seed:20021130 () in
  Alcotest.(check bool) "four stages complete" true
    (R.Run_report.ok out.Sup.report && R.Run_report.total out.Sup.report = 4);
  match List.assoc_opt "synth:verify" out.Sup.results with
  | Some "roundtrip ok" -> ()
  | _ -> Alcotest.fail "synthetic database did not round-trip"

(* ---- chaos -------------------------------------------------------- *)

let test_chaos_contract () =
  let report = Chaos.run () in
  Alcotest.(check (list string)) "full-catalog contract" []
    (Chaos.violations report);
  Alcotest.(check bool) "no lost items" true (Chaos.no_lost_items report);
  Alcotest.(check bool) "bounded retries" true (Chaos.bounded_retries report)

let test_chaos_stable () =
  Alcotest.(check bool) "same seed, byte-identical JSON" true
    (Chaos.stable ~plans:Fault.Catalog.smoke ())

let prop_chaos_deterministic =
  let open QCheck in
  Test.make ~name:"chaos: same seed, identical run report" ~count:8 small_nat
    (fun seed ->
       let plans = [ Fault.Catalog.heap_pressure ] in
       Chaos.to_json (Chaos.run ~seed ~plans ())
       = Chaos.to_json (Chaos.run ~seed ~plans ()))

(* ---- suite -------------------------------------------------------- *)

let () =
  Alcotest.run "resilience"
    [ ("retry",
       [ Alcotest.test_case "schedule shape" `Quick test_delays;
         Alcotest.test_case "run outcomes" `Quick test_retry_run;
         QCheck_alcotest.to_alcotest prop_same_seed_same_schedule ]);
      ("breaker",
       [ Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
         QCheck_alcotest.to_alcotest prop_breaker_no_open_to_closed ]);
      ("deadline", [ Alcotest.test_case "fuel and nesting" `Quick test_deadline ]);
      ("checkpoint",
       [ Alcotest.test_case "file journal round trip" `Quick test_checkpoint_file;
         Alcotest.test_case "corrupt lines surfaced" `Quick
           test_checkpoint_skipped_surfaced;
         Alcotest.test_case "mid-file corruption classified" `Quick
           test_checkpoint_midfile_corruption;
         QCheck_alcotest.to_alcotest prop_torn_journal_resume ]);
      ("supervisor",
       [ Alcotest.test_case "typed outcomes" `Quick test_supervisor_outcomes;
         Alcotest.test_case "deadline quarantines rest" `Quick
           test_supervisor_deadline;
         Alcotest.test_case "breaker trips" `Quick test_supervisor_breaker_trips;
         Alcotest.test_case "resume exactly once" `Quick test_resume_exactly_once;
         QCheck_alcotest.to_alcotest prop_resume_exactly_once ]);
      ("ingest",
       [ Alcotest.test_case "clean round trip" `Quick test_ingest_clean;
         Alcotest.test_case "bad documents and rows" `Quick test_ingest_bad_document;
         Alcotest.test_case "bitflip quarantine" `Quick test_ingest_under_bitflip;
         Alcotest.test_case "duplicates: -j 1 = -j 4 parallel" `Quick
           test_ingest_duplicates_parallel_identical;
         Alcotest.test_case "many rejects back-map instantly" `Quick
           test_ingest_many_rejects;
         Alcotest.test_case "synth pipeline" `Quick test_synth_verified ]);
      ("chaos",
       [ Alcotest.test_case "catalog contract" `Quick test_chaos_contract;
         Alcotest.test_case "stable smoke" `Quick test_chaos_stable;
         QCheck_alcotest.to_alcotest prop_chaos_deterministic ]) ]
