(* Quickstart: model your own elementary activity as a pFSM.

   Suppose a service accepts a user-chosen nickname.  The
   specification says: at most 16 characters and no printf
   directives.  The implementation only checks the length.  We build
   the pFSM, watch the hidden path appear, and fix it.

   Run with: dune exec examples/quickstart.exe *)

module P = Pfsm.Predicate

let () =
  (* 1. Write the specification and implementation predicates. *)
  let spec =
    P.And
      (P.Cmp (P.Le, P.Length P.Self, P.Lit (Pfsm.Value.Int 16)),
       P.Is_format_free P.Self)
  in
  let impl = P.Cmp (P.Le, P.Length P.Self, P.Lit (Pfsm.Value.Int 16)) in

  (* 2. Wrap them in a primitive FSM (Figure 2 of the paper). *)
  let pfsm =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"accept a nickname from the user" ~spec ~impl
  in
  Format.printf "%a@.@." Pfsm.Pretty.pp_pfsm pfsm;

  (* 3. Run objects through it. *)
  let try_one nickname =
    let verdict =
      Pfsm.Primitive.run pfsm ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Str nickname)
    in
    Format.printf "  %-24s -> %a@." (Printf.sprintf "%S" nickname)
      Pfsm.Primitive.pp_verdict verdict
  in
  print_endline "running objects through the pFSM:";
  List.iter try_one [ "alice"; "a-very-long-nickname-indeed"; "bob%n" ];

  (* 4. "bob%n" took the hidden IMPL_ACPT path: the implementation
     accepts what the spec rejects.  Search for witnesses
     systematically... *)
  let candidates =
    List.map
      (fun s -> Pfsm.Witness.candidate (Pfsm.Value.Str s))
      Discovery.Domain_gen.format_strings
  in
  let witnesses = Pfsm.Witness.hidden_witnesses pfsm ~candidates in
  Format.printf "@.%d hidden-path witnesses in the candidate domain:@."
    (List.length witnesses);
  List.iter
    (fun (w : Pfsm.Witness.candidate) ->
       Format.printf "  %s@." (Pfsm.Value.to_string w.Pfsm.Witness.obj))
    witnesses;

  (* 5. ...and fix the implementation: enforce the spec. *)
  let fixed = Pfsm.Primitive.secured pfsm in
  Format.printf "@.after securing the pFSM: %d witnesses remain@."
    (List.length (Pfsm.Witness.hidden_witnesses fixed ~candidates));

  (* 6. A full model is operations of pFSMs cascaded by propagation
     gates; see sendmail_analysis.ml for a real one. *)
  print_endline "\nnext: dune exec examples/sendmail_analysis.exe"
