(* The NULL HTTPD story (Figure 4): model the known heap overflow
   (#5774), and in doing so discover the new one (#6255) — exactly
   the sequence of events the paper reports, reproduced mechanically.

   Run with: dune exec examples/nullhttpd_discovery.exe *)

let banner title = Format.printf "@.==== %s ====@.@." title

let () =
  banner "step 1: the known vulnerability, #5774 against v0.5";
  let v05 = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.vulnerable_v0_5 () in
  let content_len, body = Exploit.Attack.nullhttpd_5774 v05 in
  Format.printf "POST with Content-Length: %d and a %d-byte body@." content_len
    (String.length body);
  Format.printf "  (%s)@." Exploit.Attack.fake_chunk_note;
  Format.printf "  -> %a@." Apps.Outcome.pp
    (Apps.Nullhttpd.handle_post v05 ~content_len ~body);

  banner "step 2: v0.5.1 fixes the negative Content-Length";
  let v051 = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let content_len, body = Exploit.Attack.nullhttpd_5774 v051 in
  Format.printf "the same attack -> %a@." Apps.Outcome.pp
    (Apps.Nullhttpd.handle_post v051 ~content_len ~body);

  banner "step 3: building the FSM model exposes pFSM2's missing check";
  let model = Apps.Nullhttpd.model v051 in
  Format.printf "%a@." Pfsm.Pretty.pp_model model;

  banner "step 4: differential sweep rediscovers #6255";
  (match Discovery.Differential.rediscover_6255 () with
   | Some finding -> Format.printf "%a@." Discovery.Finding.pp finding
   | None -> print_endline "no divergence found (unexpected)");

  banner "step 5: weaponising it -- correct contentLen, oversized body";
  let v051' = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let content_len, body = Exploit.Attack.nullhttpd_6255 v051' in
  Format.printf "POST with Content-Length: %d and a %d-byte body -> %a@." content_len
    (String.length body) Apps.Outcome.pp
    (Apps.Nullhttpd.handle_post v051' ~content_len ~body);

  banner "step 6: the && fix closes it";
  let fixed = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.fully_fixed () in
  let content_len, body = Exploit.Attack.nullhttpd_6255 fixed in
  Format.printf "the same attack -> %a@." Apps.Outcome.pp
    (Apps.Nullhttpd.handle_post fixed ~content_len ~body);
  Format.printf "sweep against the fixed build finds no divergence: %b@."
    (Discovery.Differential.confirm_fix ())
