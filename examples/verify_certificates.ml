(* Finite-domain verification: from "no witness found" to "no hidden
   path exists on this domain".

   The data-driven witness search samples candidate inputs; on the
   small domains the studied predicates actually range over, we can
   do better and enumerate, certifying impl => spec — or producing
   the exact witness that breaks it.

   Run with: dune exec examples/verify_certificates.exe *)

let report name pfsm domain =
  Format.printf "  %-52s %a@." name Pfsm.Verify.pp_result (Pfsm.Verify.verify pfsm domain)

let () =
  print_endline "Sendmail's index check, exhaustively:";
  let sendmail = Apps.Sendmail.model (Apps.Sendmail.setup ()) in
  let pfsm2 =
    match Pfsm.Model.all_pfsms sendmail with
    | [ _; (_, p); _ ] -> p
    | _ -> assert false
  in
  report "as shipped (x <= 100), on [-2048, 2048]" pfsm2
    (Pfsm.Verify.Int_range { low = -2048; high = 2048 });
  report "as shipped, on the int32 edge values" pfsm2 Pfsm.Verify.Int_edges;
  report "secured (0 <= x <= 100), on [-2048, 2048]"
    (Pfsm.Primitive.secured pfsm2)
    (Pfsm.Verify.Int_range { low = -2048; high = 2048 });

  print_endline "\nIIS's decode check, over strings:";
  let iis = Apps.Iis.model (Apps.Iis.setup ()) in
  let pfsm1 =
    match Pfsm.Model.all_pfsms iis with [ (_, p) ] -> p | _ -> assert false
  in
  report "on the hand-written traversal corpus" pfsm1
    (Pfsm.Verify.Strings Discovery.Domain_gen.traversal_strings);
  report "on every string over {./%2fa} up to length 6" pfsm1
    (Pfsm.Verify.Alphabet_strings { alphabet = "./%2fa"; max_len = 6 });
  print_endline
    "  note: the shortest double-decode witness (\"..%252f\") is 7 characters long,\n\
    \  so bounded exhaustion at 6 'verifies' while the corpus refutes -- a bounded\n\
    \  certificate is only as good as its bound.";

  print_endline "\nGHTTPD's length check:";
  let ghttpd = Apps.Ghttpd.model (Apps.Ghttpd.setup ()) in
  let gp1 =
    match Pfsm.Model.all_pfsms ghttpd with
    | (_, p) :: _ -> p
    | _ -> assert false
  in
  report "as shipped (no check), lengths 0..512" gp1
    (Pfsm.Verify.Strings (List.init 513 (fun n -> String.make n 'a')));
  report "secured, lengths 0..512" (Pfsm.Primitive.secured gp1)
    (Pfsm.Verify.Strings (List.init 513 (fun n -> String.make n 'a')))
