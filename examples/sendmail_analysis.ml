(* Figure 3 end-to-end: the Sendmail signed-integer overflow.

   We print the FSM model, run the published exploit through the
   model AND through the simulated process image, watch the GOT entry
   of setuid() get rewritten, and foil the attack three different
   ways — one per elementary activity.

   Run with: dune exec examples/sendmail_analysis.exe *)

let banner title = Format.printf "@.==== %s ====@.@." title

let () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in

  banner "the FSM model (Figure 3)";
  Format.printf "%a@." Pfsm.Pretty.pp_model model;

  banner "the exploit, at the machine level";
  let str_x, str_i = Exploit.Attack.sendmail_inputs app in
  Format.printf "tTvect lives at %s; the GOT slot of setuid at %s@."
    (Machine.Addr.to_string (Apps.Sendmail.tTvect_addr app))
    (Machine.Addr.to_string (Apps.Sendmail.setuid_slot app));
  Format.printf "the attacker runs: sendmail -d%s.%s@." str_x str_i;
  Format.printf "  str_x wraps to array index %d (4 * %d below tTvect)@."
    (Apps.Sendmail.exploit_index app)
    (- Apps.Sendmail.exploit_index app);
  let o1 = Apps.Sendmail.tTflag app ~str_x ~str_i in
  Format.printf "  tTflag outcome: %a@." Apps.Outcome.pp o1;
  let got = Machine.Process.got (Apps.Sendmail.proc app) in
  Format.printf "  GOT entry of setuid unchanged? %b@."
    (Machine.Got.unchanged got "setuid");
  let o2 = Apps.Sendmail.call_setuid app in
  Format.printf "  calling setuid(): %a@." Apps.Outcome.pp o2;

  banner "the same exploit, through the model";
  let scenario = Apps.Sendmail.exploit_scenario app in
  let trace = Pfsm.Model.run model ~env:scenario in
  Format.printf "%a@." Pfsm.Trace.pp trace;

  banner "foiling it at each elementary activity";
  let foil label config =
    let hardened = Apps.Sendmail.setup ~config () in
    let str_x, str_i = Exploit.Attack.sendmail_inputs hardened in
    Format.printf "  %-44s -> %a@." label Apps.Outcome.pp
      (Apps.Sendmail.run_attack hardened ~str_x ~str_i)
  in
  let base = Apps.Sendmail.vulnerable in
  foil "activity 1: check str_x is representable" { base with input_check = true };
  foil "activity 2: enforce 0 <= x <= 100" { base with full_index_check = true };
  foil "activity 3: audit the GOT before the call" { base with got_audit = true };

  banner "the lemma, mechanically";
  let checks = Pfsm.Lemma.sufficiency model ~scenarios:[ scenario ] in
  Format.printf "%a@." Pfsm.Pretty.pp_lemma_checks checks
