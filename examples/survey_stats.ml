(* Figure 1: the Bugtraq survey.

   Builds the 5925-report database (curated paper reports + synthetic
   fill matching the published marginals) and prints the category
   breakdown, the studied-family share, and Table 1's ambiguity
   example.

   Run with: dune exec examples/survey_stats.exe *)

let () =
  let db = Vulndb.Synth.generate ~seed:20021130 in
  Format.printf "%a@." Vulndb.Stats.pp_breakdown db;
  Format.printf "@.breakdown by flaw mechanism:@.";
  List.iter
    (fun (flaw, count) ->
       Format.printf "  %-26s %5d@." (Vulndb.Report.flaw_to_string flaw) count)
    (Vulndb.Stats.flaw_breakdown db);

  Format.printf
    "@.Table 1 -- one mechanism, three categories (the ambiguity that motivates \
     elementary activities):@.@.";
  List.iter
    (fun (r : Vulndb.Report.t) ->
       Format.printf "  #%-6d %-70s@.          activity: %-55s category: %s@." r.id
         r.title
         (match r.elementary_activity with Some a -> a | None -> "?")
         (Vulndb.Category.to_string r.category))
    Vulndb.Seed_data.table1;

  Format.printf "@.curated reports from the paper: %d@."
    (List.length (Vulndb.Database.curated db))
