(* Figure 5: the xterm log-file race, explored exhaustively.

   Instead of racing the wall clock, we enumerate every interleaving
   of the logger's check/open/write with the attacker's
   unlink/symlink, and show exactly which schedule wins.

   Run with: dune exec examples/xterm_race.exe *)

let () =
  Format.printf "%a@.@." Pfsm.Pretty.pp_model (Apps.Xterm.model ());

  let config = { Apps.Xterm.open_nofollow = false } in
  Format.printf "exploring all %d interleavings of 3 logger steps x 2 attacker steps@.@."
    Apps.Xterm.total_interleavings;
  let winners = Apps.Xterm.run_race config in
  Format.printf "%d schedule(s) corrupt /etc/passwd:@." (List.length winners);
  List.iter
    (fun (v : Apps.Outcome.t Osmodel.Scheduler.verdict) ->
       Format.printf "  schedule:@.";
       List.iter (fun s -> Format.printf "    %s@." s) v.Osmodel.Scheduler.schedule;
       Format.printf "  result: %a@." Apps.Outcome.pp v.Osmodel.Scheduler.result)
    winners;

  Format.printf "@.with O_NOFOLLOW at open time: %d winning schedule(s)@."
    (List.length (Apps.Xterm.run_race { Apps.Xterm.open_nofollow = true }));

  (* The model agrees: the race scenario is exploited, and securing
     pFSM2 (the binding-consistency check) foils it. *)
  let model = Apps.Xterm.model () in
  let trace = Pfsm.Model.run model ~env:Apps.Xterm.race_scenario in
  Format.printf "@.model verdict on the race scenario: %s@."
    (if Pfsm.Trace.exploited trace then "exploited" else "safe");
  let hardened =
    Pfsm.Model.secure_pfsm model ~op_name:"Writing the log file of user Tom"
      ~pfsm_name:"pFSM2"
  in
  Format.printf "after securing pFSM2: %s@."
    (if Pfsm.Trace.foiled (Pfsm.Model.run hardened ~env:Apps.Xterm.race_scenario) then
       "foiled"
     else "still exploited")
