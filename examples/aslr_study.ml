(* Address-space layout randomisation vs the paper's exploits.

   The attacker compiles their payload against the layout they expect;
   we then slide the victim's heap, stack and data segments (but not
   the GOT — pre-PIE executables could not move it) and watch every
   control-flow hijack degrade into a crash or a stray write.

   Run with: dune exec examples/aslr_study.exe *)

let () =
  let seed = Exploit.Ablation.aslr_seed in
  Format.printf "ASLR seed %d slides: heap +0x%x, stack +0x%x, data +0x%x@.@." seed
    (Machine.Process.aslr_slide ~seed ~region:1)
    (Machine.Process.aslr_slide ~seed ~region:2)
    (Machine.Process.aslr_slide ~seed ~region:3);

  Format.printf "%a@." Exploit.Ablation.pp_rows (Exploit.Ablation.rows ());

  Format.printf
    "@.control-flow hijacks prevented: %b@."
    (Exploit.Ablation.control_flow_hijacks_prevented ());
  print_endline
    "every exploit still reaches its memory error -- randomisation degrades the\n\
     outcome (no attacker code runs) without removing the vulnerability; only the\n\
     elementary-activity checks of the FSM model remove it.";

  (* The pFSM view: ASLR is NOT one of the model's checks.  The hidden
     paths are still there; what changed is the attacker's knowledge
     of addresses, which lives outside the predicates. *)
  let app = Apps.Ghttpd.setup ~aslr_seed:seed () in
  let model = Apps.Ghttpd.model app in
  let reference = Apps.Ghttpd.setup () in
  let request = Exploit.Attack.ghttpd_request reference in
  let trace = Pfsm.Model.run model ~env:(Apps.Ghttpd.scenario ~request) in
  Format.printf
    "@.the FSM model still flags the slid GHTTPD as exploited (%b): the hidden@.\
     paths are properties of the checks, not of the addresses.@."
    (Pfsm.Trace.exploited trace)
