(* The "automatic tool for the vulnerability analysis" the paper's
   conclusion proposes, end to end:

     source code  --extract-->  implementation predicate
     + analyst's spec  --verify-->  certificate or witness
     + interpreter  --differential-->  the witness really misbehaves

   Run with: dune exec examples/auto_extract.exe *)

let analyse ~label ~func ~object_var ~spec ~domain ~witness_runner =
  Format.printf "=== %s ===@.@.%a@.@." label Minic.Ast.pp_func func;
  match Minic.Extract.impl_predicate func ~object_var with
  | None -> print_endline "guard not extractable (outside the supported fragment)"
  | Some impl ->
      Format.printf "extracted impl predicate : %s@." (Pfsm.Predicate.to_string impl);
      Format.printf "analyst's spec predicate : %s@." (Pfsm.Predicate.to_string spec);
      let pfsm =
        Pfsm.Primitive.make ~name:"auto" ~kind:Pfsm.Taxonomy.Content_attribute_check
          ~activity:label ~spec ~impl
      in
      (match Pfsm.Verify.verify pfsm domain with
       | Pfsm.Verify.Verified { candidates } ->
           Format.printf "verification             : SECURE on all %d candidates@.@."
             candidates
       | Pfsm.Verify.Refuted { witness; _ } ->
           Format.printf "verification             : VULNERABLE, witness %s@."
             (Pfsm.Value.to_string witness);
           Format.printf "running the witness      : %a@.@." Minic.Interp.pp_outcome
             (witness_runner witness)
       | Pfsm.Verify.Budget_exhausted { tried; total } ->
           Format.printf "budget exhausted after %d of %d candidates@.@." tried total
       | Pfsm.Verify.Domain_too_large _ ->
           Format.printf "domain too large@.@.")

let () =
  let int_domain = Pfsm.Verify.Int_range { low = -2048; high = 2048 } in
  let str_domain =
    Pfsm.Verify.Strings (List.init 260 (fun n -> String.make n 'a'))
  in
  let run_tTflag f witness =
    match witness with
    | Pfsm.Value.Int x ->
        Minic.Corpus.run_tTflag f ~str_x:(string_of_int x) ~str_i:"7"
    | _ -> Minic.Interp.Rejected "bad witness type"
  in
  let run_log f witness =
    match witness with
    | Pfsm.Value.Str request -> Minic.Corpus.run_log f ~request
    | _ -> Minic.Interp.Rejected "bad witness type"
  in
  analyse ~label:"Sendmail tTflag, as shipped" ~func:Minic.Corpus.tTflag_vulnerable
    ~object_var:Minic.Corpus.tTflag_object ~spec:Minic.Corpus.tTflag_spec
    ~domain:int_domain ~witness_runner:(run_tTflag Minic.Corpus.tTflag_vulnerable);
  analyse ~label:"Sendmail tTflag, fixed" ~func:Minic.Corpus.tTflag_fixed
    ~object_var:Minic.Corpus.tTflag_object ~spec:Minic.Corpus.tTflag_spec
    ~domain:int_domain ~witness_runner:(run_tTflag Minic.Corpus.tTflag_fixed);
  analyse ~label:"GHTTPD Log, as shipped" ~func:Minic.Corpus.log_vulnerable
    ~object_var:Minic.Corpus.log_object ~spec:Minic.Corpus.log_spec
    ~domain:str_domain ~witness_runner:(run_log Minic.Corpus.log_vulnerable);
  analyse ~label:"GHTTPD Log, the tempting off-by-one fix"
    ~func:Minic.Corpus.log_off_by_one ~object_var:Minic.Corpus.log_object
    ~spec:Minic.Corpus.log_spec ~domain:str_domain
    ~witness_runner:(run_log Minic.Corpus.log_off_by_one);
  analyse ~label:"GHTTPD Log, correct fix" ~func:Minic.Corpus.log_fixed
    ~object_var:Minic.Corpus.log_object ~spec:Minic.Corpus.log_spec
    ~domain:str_domain ~witness_runner:(run_log Minic.Corpus.log_fixed)
