(* The related-work analyses of Section 2, driven from our models.

   The paper positions the pFSM method between two schools: the
   quantitative one (Ortalo's Markov METF) and the model-checking one
   (Sheyner's attack graphs).  Both are implemented here as analyses
   DERIVED from pFSM models, which makes the paper's comparison
   concrete: the Markov metric needs probabilities nobody measures,
   the attack graph needs the transition structure the pFSM model
   already has.

   Run with: dune exec examples/baselines_tour.exe *)

let () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in
  let scenario = Apps.Sendmail.exploit_scenario app in

  print_endline "== Ortalo-style METF (mean effort to security failure) ==\n";
  List.iter
    (fun retry ->
       match Baselines.Markov.metf_of_model ~retry model ~scenario with
       | Some e ->
           Printf.printf "  retry probability %.1f  ->  METF %.1f effort units\n" retry e
       | None -> Printf.printf "  retry probability %.1f  ->  infinite\n" retry)
    [ 0.1; 0.2; 0.5; 0.9 ];
  print_endline "\n  securing a single operation sends the effort to infinity:";
  List.iter
    (fun op_name ->
       let hardened = Pfsm.Model.secure_operation model ~op_name in
       Printf.printf "  secured %-48s -> %s\n" op_name
         (match Baselines.Markov.metf_of_model ~retry:0.2 hardened ~scenario with
          | Some e -> Printf.sprintf "METF %.1f (?!)" e
          | None -> "infinite (foiled)"))
    (Pfsm.Model.operation_names model);

  print_endline "\n== Sheyner-style attack graph from observed traces ==\n";
  let report =
    Pfsm.Analysis.analyze model
      ~scenarios:[ scenario; Apps.Sendmail.benign_scenario ]
  in
  let g = Baselines.Attack_graph.of_report report in
  Format.printf "%a@." Baselines.Attack_graph.pp g;
  Printf.printf "compromised reachable : %b\n"
    (Baselines.Attack_graph.exploit_reachable g);
  Printf.printf "attack paths          : %d\n"
    (List.length (Baselines.Attack_graph.attack_paths g ~max_paths:50));
  (match Baselines.Attack_graph.min_hidden_cut g with
   | Some cut ->
       Printf.printf "minimal hidden cut    : %d edge(s)\n" (List.length cut)
   | None -> print_endline "minimal hidden cut    : none needed");
  Printf.printf "agrees with the lemma : %b\n"
    (Baselines.Attack_graph.agrees_with_lemma g);
  print_endline "\n(dot output: dune exec bin/dfsm_cli.exe -- baselines)"
