(* Benchmark & reproduction harness.

   Part 1 regenerates every table and figure of the paper (the rows /
   series the paper reports); part 2 runs Bechamel micro-benchmarks —
   one Test.make per experiment plus the substrate hot paths.

   Run with: dune exec bench/main.exe --
               [--smoke] [--json [FILE]] [--compare FILE] [--threshold PCT]

   --smoke     runs the fast subset (figure-1 check, lint sweep, the
               resilience, PAR, OBS, SERVE, STORE, PERF and CORPUS sections) —
               the CI perf-trajectory step
   --json      additionally writes every recorded metric as machine-
               readable JSON (default file: BENCH.json)
   --compare   diffs this run's cost metrics (keys suffixed -ms, -s,
               -ns, -bytes) against a committed baseline JSON and
               exits 1 on a regression past --threshold (default 20%,
               with a per-unit absolute floor against timer jitter) *)

let smoke = ref false

let json_out : string option ref = ref None

(* ---- metric store: section -> metric -> value -------------------- *)

let metrics : (string * (string * float) list ref) list ref = ref []

let record ~section:s name v =
  match List.assoc_opt s !metrics with
  | Some cell -> cell := (name, v) :: !cell
  | None -> metrics := !metrics @ [ (s, ref [ (name, v) ]) ]

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let write_json path =
  let sections =
    List.map
      (fun (s, cell) ->
        let fields =
          List.rev_map
            (fun (name, v) ->
              Printf.sprintf "\"%s\": %s" (json_escape name) (json_float v))
            !cell
        in
        Printf.sprintf "    \"%s\": {%s}" (json_escape s)
          (String.concat ", " fields))
      !metrics
  in
  let doc =
    Printf.sprintf
      "{\n  \"schema\": \"dfsm-bench/1\",\n  \"smoke\": %b,\n  \"jobs\": %d,\n\
      \  \"sections\": {\n%s\n  }\n}\n"
      !smoke (Par.jobs ())
      (String.concat ",\n" sections)
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc doc);
  Format.printf "@.wrote %s@." path

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ---- baseline comparison: --compare FILE [--threshold PCT] -------- *)

let compare_baseline : string option ref = ref None

let threshold = ref 20.0

(* Only cost metrics are gated (lower is better); a name is a cost
   when it carries one of these unit suffixes.  Each class has an
   absolute floor the excess must clear before the relative threshold
   counts.  Allocation counts are deterministic for a deterministic
   workload (the PERF legs additionally take the min over three
   repetitions to shed one-off runtime housekeeping), so `-bytes` is
   the precise, load-bearing gate at the relative threshold alone.
   Wall-clock metrics on shared CI runners routinely jitter 2-3x on
   10-600 ms legs, so a timing metric must at least *double* past its
   unit floor before it fails the build — timings catch catastrophes,
   bytes catch representation regressions. *)
let cost_floor name ~base =
  let has suffix =
    let n = String.length name and s = String.length suffix in
    n >= s && String.sub name (n - s) s = suffix
  in
  if has "-bytes" then Some 4096.
  else if has "-ms" then Some (Float.max 100. base)
  else if has "-ns" then Some (Float.max 100_000. base)
  else if has "-s" || has "_s" then Some (Float.max 1.0 base)
  else None

let compare_with_baseline path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e ->
      Printf.eprintf "bench: cannot read baseline %s: %s\n" path e;
      exit 2
  in
  let doc =
    match Serve.Json.parse text with
    | Ok doc -> doc
    | Error e ->
        Printf.eprintf "bench: baseline %s is not valid JSON: %s\n" path e;
        exit 2
  in
  let num = function
    | Serve.Json.Int i -> Some (float_of_int i)
    | Serve.Json.Float f -> Some f
    | _ -> None
  in
  let base_sections =
    match Serve.Json.mem "sections" doc with
    | Some (Serve.Json.Obj secs) -> secs
    | _ -> []
  in
  let current s name =
    match List.assoc_opt s !metrics with
    | Some cell -> List.assoc_opt name !cell
    | None -> None
  in
  let compared = ref 0 in
  let regressions = ref [] in
  List.iter
    (fun (sec, fields) ->
      match fields with
      | Serve.Json.Obj fields ->
          List.iter
            (fun (name, v) ->
              match num v with
              | Some base when base > 0. -> (
                  match cost_floor name ~base, current sec name with
                  | Some floor, Some cur ->
                      incr compared;
                      if cur > base *. (1. +. (!threshold /. 100.))
                         && cur -. base > floor
                      then regressions := (sec, name, base, cur) :: !regressions
                  | _ -> ())
              | _ -> ())
            fields
      | _ -> ())
    base_sections;
  Format.printf "@.compared %d cost metrics against %s (threshold %.0f%%)@."
    !compared path !threshold;
  match List.rev !regressions with
  | [] -> Format.printf "no regressions past threshold@."
  | regs ->
      List.iter
        (fun (sec, name, base, cur) ->
          Printf.eprintf
            "bench: REGRESSION %s/%s: %.6g -> %.6g (+%.0f%%)\n" sec name base
            cur
            ((cur -. base) /. base *. 100.))
        regs;
      Printf.eprintf "bench: %d metric(s) regressed past %.0f%%\n"
        (List.length regs) !threshold;
      exit 1

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* ================= Part 1: figure/table reproduction ============== *)

let fig1 () =
  section "FIG1 -- Breakdown of 5925 Bugtraq vulnerabilities (Figure 1)";
  let db = Vulndb.Synth.generate ~seed:20021130 in
  Format.printf "%a@." Vulndb.Stats.pp_breakdown db;
  Format.printf "reproduction check: rounded shares match the paper = %b@."
    (Vulndb.Stats.matches_paper db)

let tab1 () =
  section "TAB1 -- One mechanism, three categories (Table 1)";
  List.iter
    (fun (r : Vulndb.Report.t) ->
       Format.printf "#%-6d %s@.        elementary activity: %s@.        assigned category:   %s@.@."
         r.Vulndb.Report.id r.Vulndb.Report.title
         (match r.Vulndb.Report.elementary_activity with Some a -> a | None -> "?")
         (Vulndb.Category.to_string r.Vulndb.Report.category))
    Vulndb.Seed_data.table1;
  Format.printf
    "formalised: one exploit run through the generic three-activity chain drives a \
     hidden path at every activity --@.each is an independent classification point:@.@.";
  List.iter
    (fun (activity, bugtraq, category, hidden) ->
       Format.printf "  %-70s #%-5d %-28s hidden-path=%b@."
         (Apps.Int_overflow_pattern.activity_description activity)
         bugtraq
         (Vulndb.Category.to_string category)
         hidden)
    (Apps.Int_overflow_pattern.ambiguity_rows ());
  Format.printf "@.the buffer-overflow family (#6157 / #5960 / #4479):@.@.";
  List.iter
    (fun (activity, bugtraq, category, hidden) ->
       Format.printf "  %-70s #%-5d %-28s hidden-path=%b@."
         (Apps.Buffer_overflow_pattern.activity_description activity)
         bugtraq
         (Vulndb.Category.to_string category)
         hidden)
    (Apps.Buffer_overflow_pattern.ambiguity_rows ());
  Format.printf "@.the format-string family (#1387 / #2210 / #2264):@.@.";
  List.iter
    (fun (activity, bugtraq, category, hidden) ->
       Format.printf "  %-70s #%-5d %-28s hidden-path=%b@."
         (Apps.Format_string_pattern.activity_description activity)
         bugtraq
         (Vulndb.Category.to_string category)
         hidden)
    (Apps.Format_string_pattern.ambiguity_rows ());
  Format.printf
    "@.three categories for one flaw mechanism => the code path has (at least) three \
     elementary activities -- Observation 1@."

let fig2 () =
  section "FIG2 -- The primitive FSM (Figure 2)";
  let pfsm =
    Pfsm.Primitive.make ~name:"pFSM" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"accept an index x"
      ~spec:(Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100)
      ~impl:
        (Pfsm.Predicate.Cmp
           (Pfsm.Predicate.Le, Pfsm.Predicate.Self, Pfsm.Predicate.Lit (Pfsm.Value.Int 100)))
  in
  Format.printf "%a@.@." Pfsm.Pretty.pp_pfsm pfsm;
  Format.printf "%-10s %s@." "object" "transition path";
  List.iter
    (fun x ->
       let v = Pfsm.Primitive.run pfsm ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int x) in
       Format.printf "%-10d %a@." x Pfsm.Primitive.pp_verdict v)
    [ 50; 101; -5 ];
  print_newline ();
  print_string (Pfsm.Dot.of_primitive pfsm)

let run_model_section ~title ~model ~scenarios ~rows =
  section title;
  Format.printf "%a@." Pfsm.Pretty.pp_model model;
  let report = Pfsm.Analysis.analyze model ~scenarios in
  Format.printf "%a@." Pfsm.Pretty.pp_report report;
  Format.printf "simulation rows:@.%a@." Exploit.Driver.pp_rows rows

let fig3 () =
  let app = Apps.Sendmail.setup () in
  run_model_section
    ~title:"FIG3 -- Sendmail signed integer overflow, Bugtraq #3163 (Figure 3)"
    ~model:(Apps.Sendmail.model app)
    ~scenarios:[ Apps.Sendmail.exploit_scenario app; Apps.Sendmail.benign_scenario ]
    ~rows:(Exploit.Driver.sendmail_rows ())

let fig4 () =
  let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let cl, body = Exploit.Attack.nullhttpd_6255 app in
  run_model_section
    ~title:"FIG4 -- NULL HTTPD heap overflow, #5774 and the new #6255 (Figure 4)"
    ~model:(Apps.Nullhttpd.model app)
    ~scenarios:
      [ Apps.Nullhttpd.scenario ~content_len:cl ~body; Apps.Nullhttpd.benign_scenario ]
    ~rows:(Exploit.Driver.nullhttpd_rows ());
  (match Discovery.Differential.rediscover_6255 () with
   | Some finding ->
       Format.printf "@.new vulnerability discovered while modeling the known one:@.%a@."
         Discovery.Finding.pp finding
   | None -> Format.printf "@.discovery sweep found nothing (unexpected)@.")

let fig5 () =
  run_model_section ~title:"FIG5 -- xterm log file race condition (Figure 5)"
    ~model:(Apps.Xterm.model ())
    ~scenarios:[ Apps.Xterm.race_scenario; Apps.Xterm.benign_scenario ]
    ~rows:(Exploit.Driver.xterm_rows ());
  Format.printf "@.schedule exploration: %d interleavings, winners:@."
    Apps.Xterm.total_interleavings;
  List.iter
    (fun (v : Apps.Outcome.t Osmodel.Scheduler.verdict) ->
       Format.printf "  %s@."
         (String.concat "  ->  " v.Osmodel.Scheduler.schedule))
    (Apps.Xterm.run_race { Apps.Xterm.open_nofollow = false })

let fig6 () =
  let app = Apps.Rwall.setup () in
  run_model_section
    ~title:"FIG6 -- Solaris rwall arbitrary file corruption (Figure 6)"
    ~model:(Apps.Rwall.model app)
    ~scenarios:[ Apps.Rwall.attack_scenario; Apps.Rwall.benign_scenario ]
    ~rows:(Exploit.Driver.rwall_rows ())

let fig7 () =
  let app = Apps.Iis.setup () in
  run_model_section
    ~title:"FIG7 -- IIS superfluous filename decoding, Bugtraq #2708 (Figure 7)"
    ~model:(Apps.Iis.model app)
    ~scenarios:
      [ Apps.Iis.scenario ~path:Exploit.Attack.iis_path;
        Apps.Iis.scenario ~path:Apps.Iis.benign_path ]
    ~rows:(Exploit.Driver.iis_rows ());
  Format.printf "@.companion [21] models (classified in Table 2):@.";
  Format.printf "%a@." Exploit.Driver.pp_rows
    (Exploit.Driver.ghttpd_rows () @ Exploit.Driver.rpc_statd_rows ())

let all_models () =
  [ ("Sendmail Signed Integer Overflow (Fig. 3)",
     Apps.Sendmail.model (Apps.Sendmail.setup ()));
    ("NULL HTTPD Heap Overflow (Fig. 4)",
     Apps.Nullhttpd.model (Apps.Nullhttpd.setup ()));
    ("Rwall File Corruption (Fig. 6)", Apps.Rwall.model (Apps.Rwall.setup ()));
    ("IIS Filename Decoding (Fig. 7)", Apps.Iis.model (Apps.Iis.setup ()));
    ("Xterm File Race Condition (Fig. 5)", Apps.Xterm.model ());
    ("GHTTPD Buffer Overflow on Stack [21]", Apps.Ghttpd.model (Apps.Ghttpd.setup ()));
    ("rpc.statd format string vulnerability [21]",
     Apps.Rpc_statd.model (Apps.Rpc_statd.setup ())) ]

let fig8 () =
  section "FIG8 -- The three generic pFSM types (Figure 8)";
  List.iter
    (fun kind ->
       Format.printf "%-32s: %s@."
         (Pfsm.Taxonomy.to_string kind)
         (Pfsm.Taxonomy.description kind))
    Pfsm.Taxonomy.all;
  Format.printf "@.pFSMs per type across all seven models:@.";
  let totals = Hashtbl.create 3 in
  List.iter
    (fun (_, model) ->
       List.iter
         (fun (kind, cells) ->
            let current = Option.value ~default:0 (Hashtbl.find_opt totals kind) in
            Hashtbl.replace totals kind (current + List.length cells))
         (Pfsm.Analysis.taxonomy_matrix model))
    (all_models ());
  List.iter
    (fun kind ->
       Format.printf "  %-32s %d@." (Pfsm.Taxonomy.to_string kind)
         (Option.value ~default:0 (Hashtbl.find_opt totals kind)))
    Pfsm.Taxonomy.all

let tab2 () =
  section "TAB2 -- Types of pFSMs per vulnerability (Table 2)";
  List.iter
    (fun (name, model) ->
       Format.printf "%s@.%a@." name Pfsm.Pretty.pp_matrix
         (Pfsm.Analysis.taxonomy_matrix model))
    (all_models ())

let observations () =
  section "OBS -- the three Observations of Section 3.2, counted over all models";
  let metrics = List.map (fun (_, m) -> Pfsm.Metrics.of_model m) (all_models ()) in
  Format.printf "%a@." Pfsm.Metrics.pp_table metrics;
  Format.printf
    "Observation 1 (>=2 elementary activities)            holds on %d/%d models@."
    (List.length (List.filter Pfsm.Metrics.observation1_holds metrics))
    (List.length metrics);
  Format.printf
    "Observation 2 (multiple operations/objects)          holds on %d/%d models@."
    (List.length (List.filter Pfsm.Metrics.observation2_holds metrics))
    (List.length metrics);
  Format.printf
    "Observation 3 (a predicate per elementary activity)  holds on %d/%d models@."
    (List.length (List.filter Pfsm.Metrics.observation3_holds metrics))
    (List.length metrics)

let verification () =
  section "VERIFY -- exhaustive impl=>spec checking on finite domains";
  let report name pfsm domain =
    Format.printf "  %-52s %a@." name Pfsm.Verify.pp_result
      (Pfsm.Verify.verify pfsm domain)
  in
  let sendmail = Apps.Sendmail.model (Apps.Sendmail.setup ()) in
  (match Pfsm.Model.all_pfsms sendmail with
   | [ (_, p1); (_, p2); (_, p3) ] ->
       report "Sendmail pFSM1 (str_x representable)" p1
         (Pfsm.Verify.Strings
            (List.map string_of_int
               [ 0; 100; 2147483647; 2147483648; 4294966272 ]));
       report "Sendmail pFSM2 (0 <= x <= 100) on [-2048, 2048]" p2
         (Pfsm.Verify.Int_range { low = -2048; high = 2048 });
       report "Sendmail pFSM2 on int32 edges" p2 Pfsm.Verify.Int_edges;
       report "Sendmail pFSM3 (GOT entry unchanged)" p3
         (Pfsm.Verify.Int_range { low = 0x08000000; high = 0x08000200 });
       report "Sendmail pFSM2 secured: verified" (Pfsm.Primitive.secured p2)
         (Pfsm.Verify.Int_range { low = -2048; high = 2048 })
   | _ -> ());
  let iis = Apps.Iis.model (Apps.Iis.setup ()) in
  (match Pfsm.Model.all_pfsms iis with
   | [ (_, p1) ] ->
       report "IIS pFSM1 on the traversal corpus" p1
         (Pfsm.Verify.Strings Discovery.Domain_gen.traversal_strings);
       report "IIS pFSM1 on alphabet {., /, %, 2, f, a} up to length 6" p1
         (Pfsm.Verify.Alphabet_strings { alphabet = "./%2fa"; max_len = 6 });
       Format.printf
         "  (the shortest double-decode witness, \"..%%252f\", is 7 characters: bounded \
          exhaustion at 6 passes while the corpus refutes -- the limit of \
          finite-domain certificates)@."
   | _ -> ())

let ablation_aslr () =
  section "ABLATION -- address-space randomisation vs the four memory exploits";
  Format.printf "attacker payloads built against the un-randomised layout, victims \
                 slid with seed %d (GOT deliberately not slid, as pre-PIE):@.@."
    Exploit.Ablation.aslr_seed;
  Format.printf "%a@." Exploit.Ablation.pp_rows (Exploit.Ablation.rows ());
  Format.printf "control-flow hijacks prevented by ASLR: %b@."
    (Exploit.Ablation.control_flow_hijacks_prevented ());
  Format.printf "(crashes and stray writes remain -- randomisation degrades, it does \
                 not remove, the vulnerability)@."

let auto_tool () =
  section "AUTO -- predicate extraction from source (the conclusion's future work)";
  let show label func object_var spec domain =
    match Minic.Extract.impl_predicate func ~object_var with
    | None -> Format.printf "  %-36s guard not extractable@." label
    | Some impl ->
        let pfsm =
          Pfsm.Primitive.make ~name:"auto" ~kind:Pfsm.Taxonomy.Content_attribute_check
            ~activity:label ~spec ~impl
        in
        Format.printf "  %-36s impl = %-28s %a@." label
          (Pfsm.Predicate.to_string impl)
          Pfsm.Verify.pp_result
          (Pfsm.Verify.verify pfsm domain)
  in
  let int_domain = Pfsm.Verify.Int_range { low = -2048; high = 2048 } in
  let str_domain = Pfsm.Verify.Strings (List.init 260 (fun n -> String.make n 'a')) in
  show "tTflag (as shipped)" Minic.Corpus.tTflag_vulnerable Minic.Corpus.tTflag_object
    Minic.Corpus.tTflag_spec int_domain;
  show "tTflag (fixed)" Minic.Corpus.tTflag_fixed Minic.Corpus.tTflag_object
    Minic.Corpus.tTflag_spec int_domain;
  show "Log (as shipped)" Minic.Corpus.log_vulnerable Minic.Corpus.log_object
    Minic.Corpus.log_spec str_domain;
  show "Log (off-by-one fix)" Minic.Corpus.log_off_by_one Minic.Corpus.log_object
    Minic.Corpus.log_spec str_domain;
  show "Log (correct fix)" Minic.Corpus.log_fixed Minic.Corpus.log_object
    Minic.Corpus.log_spec str_domain;
  Format.printf
    "@.(implementation predicates read straight off the mini-C source; the analyst \
     supplies only the spec)@."

let protection_matrix () =
  section "MATRIX -- which protection stops which exploit (Section 6's discussion)";
  Format.printf "%a@." Exploit.Matrix.pp ();
  Format.printf
    "section-6 claims hold (StackGuard blind to %%n, safe unlink heap-only, the      0.5.1 patch missing #6255, ASLR degrading not removing): %b@."
    (Exploit.Matrix.section6_claims_hold ())

let baselines () =
  section "BASELINES -- the related-work analyses, derived from our models (Section 2)";
  Format.printf
    "Ortalo-style Markov METF (mean effort to security failure), retry probability \
     0.2 per hidden obstacle:@.@.";
  let metf_case name model scenario =
    let fmt_effort = function
      | Some e -> Printf.sprintf "%.1f effort units" e
      | None -> "infinite (exploit foiled)"
    in
    Format.printf "  %-56s %s@." name
      (fmt_effort (Baselines.Markov.metf_of_model ~retry:0.2 model ~scenario));
    List.iter
      (fun op_name ->
         Format.printf "    secured %-50s %s@." op_name
           (fmt_effort
              (Baselines.Markov.metf_of_model ~retry:0.2
                 (Pfsm.Model.secure_operation model ~op_name)
                 ~scenario)))
      (Pfsm.Model.operation_names model)
  in
  let sendmail = Apps.Sendmail.setup () in
  metf_case "Sendmail #3163" (Apps.Sendmail.model sendmail)
    (Apps.Sendmail.exploit_scenario sendmail);
  let nh = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
  let cl, body = Exploit.Attack.nullhttpd_6255 nh in
  metf_case "NULL HTTPD #6255" (Apps.Nullhttpd.model nh)
    (Apps.Nullhttpd.scenario ~content_len:cl ~body);
  Format.printf
    "@.(the Markov metric needs the retry probability as an input; the pFSM model \
     needs only the predicates -- the contrast Section 2 draws)@.@.";
  Format.printf "Sheyner-style attack graphs from the observed traces:@.@.";
  List.iter
    (fun (name, report) ->
       let g = Baselines.Attack_graph.of_report report in
       let cut =
         match Baselines.Attack_graph.min_hidden_cut g with
         | Some c -> string_of_int (List.length c)
         | None -> "-"
       in
       Format.printf
         "  %-24s nodes=%-3d edges=%-3d hidden=%-2d reachable=%-5b paths=%-2d \
          min-cut=%s lemma-agrees=%b@."
         name
         (List.length (Baselines.Attack_graph.nodes g))
         (List.length (Baselines.Attack_graph.edges g))
         (List.length (Baselines.Attack_graph.hidden_edges g))
         (Baselines.Attack_graph.exploit_reachable g)
         (List.length (Baselines.Attack_graph.attack_paths g ~max_paths:50))
         cut
         (Baselines.Attack_graph.agrees_with_lemma g))
    [ ("Sendmail #3163",
       Pfsm.Analysis.analyze (Apps.Sendmail.model sendmail)
         ~scenarios:
           [ Apps.Sendmail.exploit_scenario sendmail; Apps.Sendmail.benign_scenario ]);
      ("NULL HTTPD #6255",
       Pfsm.Analysis.analyze (Apps.Nullhttpd.model nh)
         ~scenarios:
           [ Apps.Nullhttpd.scenario ~content_len:cl ~body;
             Apps.Nullhttpd.benign_scenario ]);
      ("xterm race",
       Pfsm.Analysis.analyze (Apps.Xterm.model ())
         ~scenarios:[ Apps.Xterm.race_scenario; Apps.Xterm.benign_scenario ]);
      ("IIS #2708",
       let app = Apps.Iis.setup () in
       Pfsm.Analysis.analyze (Apps.Iis.model app)
         ~scenarios:
           [ Apps.Iis.scenario ~path:Exploit.Attack.iis_path;
             Apps.Iis.scenario ~path:Apps.Iis.benign_path ]) ]

let ablation_interleavings () =
  section "ABLATION -- interleaving explosion (why races need exhaustive exploration)";
  Format.printf "%-28s %14s@." "logger x attacker steps" "interleavings";
  List.iter
    (fun (a, b) ->
       Format.printf "%-28s %14d@."
         (Printf.sprintf "%d x %d" a b)
         (Osmodel.Scheduler.interleaving_count a b))
    [ (3, 2); (4, 3); (6, 4); (8, 6); (10, 8); (12, 10) ];
  Format.printf "@.three processes (multinomial):@.";
  List.iter
    (fun lens ->
       Format.printf "%-28s %14d@."
         (String.concat " x " (List.map string_of_int lens))
         (Osmodel.Scheduler.interleaving_count_n lens))
    [ [ 3; 2; 1 ]; [ 3; 2; 2 ]; [ 4; 3; 2 ]; [ 5; 4; 3 ] ];
  Format.printf
    "@.the xterm experiment (3 x 2 = 10 schedules, 1 winner) is tractable; the \
     growth explains why real TOCTTOU bugs hide from stress testing@."

let races_bench () =
  section "RACE -- static TOCTTOU scan + replay confirmation (plain vs POR)";
  let budget = Racecheck.Driver.default_budget in
  let plain, t_plain = wall (fun () -> Racecheck.Driver.analyze ()) in
  let por, t_por = wall (fun () -> Racecheck.Driver.analyze ~por:true ()) in
  let explored st =
    match st with
    | Racecheck.Driver.Confirmed { explored; _ }
    | Racecheck.Driver.Refuted { explored }
    | Racecheck.Driver.Unresolved { explored; _ } -> explored
  in
  let sums ir =
    List.fold_left
      (fun (e, u) c ->
        ( e + explored c.Racecheck.Driver.status,
          u
          + match c.Racecheck.Driver.status with
            | Racecheck.Driver.Unresolved _ -> 1
            | _ -> 0 ))
      (0, 0) ir.Racecheck.Driver.findings
  in
  Format.printf "budget: %d replayed schedules per finding@.@." budget;
  Format.printf "%-16s %9s %8s | %15s %10s | %15s %10s@." "instance" "findings"
    "total" "plain explored" "unresolved" "por explored" "unresolved";
  List.iter2
    (fun ip ir ->
      let pe, pu = sums ip and re, ru = sums ir in
      Format.printf "%-16s %9d %8d | %15d %10d | %15d %10d@."
        ip.Racecheck.Driver.instance
        (List.length ip.Racecheck.Driver.findings)
        ip.Racecheck.Driver.total pe pu re ru;
      let slug =
        String.map (function '+' -> '_' | c -> c) ip.Racecheck.Driver.instance
      in
      record ~section:"RACE" (slug ^ "_plain_explored") (float_of_int pe);
      record ~section:"RACE" (slug ^ "_por_explored") (float_of_int re))
    plain.Racecheck.Driver.instances por.Racecheck.Driver.instances;
  Format.printf
    "@.plain: %.3fs (unresolved findings above), por: %.3fs (every window \
     drained)@."
    t_plain t_por;
  record ~section:"RACE" "plain_s" t_plain;
  record ~section:"RACE" "por_s" t_por

let trend_extension () =
  section "TREND -- report volume per year (synthetic population; extension)";
  let db = Vulndb.Synth.generate ~seed:20021130 in
  Format.printf "all reports:@.%a@." Vulndb.Trend.pp_series (Vulndb.Trend.per_year db);
  Format.printf "studied family:@.%a@." Vulndb.Trend.pp_series
    (Vulndb.Trend.family_per_year db);
  Format.printf "remote share: %.1f%%@." (Vulndb.Query.remote_share db)

let lemma () =
  section "LEMMA -- securing any one operation foils the exploit (Section 6)";
  Format.printf "%a@." Exploit.Protection.pp_entries (Exploit.Protection.entries ());
  Format.printf "lemma holds in model and simulation: %b@."
    (Exploit.Protection.lemma_holds ())

let consistency () =
  section "CONSISTENCY -- model verdicts vs simulated executions";
  let entries = Exploit.Consistency.check_all () in
  Format.printf "%a@." Exploit.Consistency.pp_entries entries;
  Format.printf "%d/%d cases consistent@."
    (List.length (List.filter (fun e -> e.Exploit.Consistency.consistent) entries))
    (List.length entries)

let faults () =
  section "FAULTS -- consistency matrix resilience under fault plans";
  let reports = Exploit.Fault_matrix.run () in
  List.iter (Format.printf "%a@." Exploit.Fault_matrix.pp_report) reports;
  Format.printf "%a@." Exploit.Fault_matrix.pp_grid reports;
  Format.printf
    "benign plans consistent: %b; no fail-open divergence: %b; seed-stable: %b@."
    (Exploit.Fault_matrix.all_benign_ok reports)
    (Exploit.Fault_matrix.no_divergence reports)
    (Exploit.Fault_matrix.stable ())

let lint_sweep () =
  section "LINT -- abstract-interpretation linter over the mini-C corpus";
  let rows = Staticcheck.Linter.corpus_sweep () in
  Format.printf "%a@." Staticcheck.Linter.pp_sweep rows

let resilience () =
  section "RESILIENCE -- supervision overhead and the chaos harness";
  let reps = if !smoke then 10 else 50 in
  (* warm-up, so neither side pays first-touch costs *)
  ignore (Staticcheck.Linter.corpus_sweep ());
  ignore (Staticcheck.Linter.supervised_sweep ());
  let (), raw =
    wall (fun () -> for _ = 1 to reps do ignore (Staticcheck.Linter.corpus_sweep ()) done)
  in
  let (), sup =
    wall (fun () ->
        for _ = 1 to reps do ignore (Staticcheck.Linter.supervised_sweep ()) done)
  in
  let overhead = (sup -. raw) /. raw *. 100. in
  Format.printf "fault-free corpus sweep, %d repetitions:@." reps;
  Format.printf "  raw                 %8.1f ms@." (raw *. 1000.);
  Format.printf "  supervised          %8.1f ms@." (sup *. 1000.);
  Format.printf "  wrapper overhead    %+7.1f%%   (target: < 5%% on the fault-free path)@."
    overhead;
  record ~section:"RESILIENCE" "sweep-raw-ms" (raw *. 1000.);
  record ~section:"RESILIENCE" "sweep-supervised-ms" (sup *. 1000.);
  record ~section:"RESILIENCE" "wrapper-overhead-pct" overhead;
  let plans = if !smoke then Fault.Catalog.smoke else Fault.Catalog.all in
  let report, chaos_t = wall (fun () -> Chaos.run ~plans ()) in
  let items =
    List.fold_left
      (fun acc (r : Chaos.plan_run) ->
         List.fold_left (fun acc (l : Chaos.leg) -> acc + l.Chaos.expected_items) acc
           r.Chaos.legs)
      0 report.Chaos.runs
  in
  Format.printf
    "@.chaos harness: %d plans x 3 legs (%d supervised items) in %.2f s; contract ok = %b@."
    (List.length report.Chaos.runs) items chaos_t (Chaos.ok report);
  record ~section:"RESILIENCE" "chaos-s" chaos_t;
  record ~section:"RESILIENCE" "chaos-ok" (if Chaos.ok report then 1. else 0.)

(* ================= PAR: domain pool + analysis memo =============== *)

(* Every batch path at -j 1 vs -j 2 / -j 4, with a built-in
   byte-identical-output assertion (the determinism contract), plus
   the analysis-memo hit rates.  Wall-clock numbers are honest for
   this machine: with a single hardware thread the -j speedups hover
   around 1.0 and the memo supplies the algorithmic win; on a
   multicore host the same harness shows the pool scaling. *)
let par_bench () =
  section "PAR -- deterministic domain pool and the analysis memo";
  let cores = Domain.recommended_domain_count () in
  Format.printf "hardware threads (recommended domain count): %d@.@." cores;
  record ~section:"PAR" "cores" (float_of_int cores);
  let job_counts = [ 1; 2; 4 ] in
  let at_jobs j f =
    Par.set_jobs j;
    let r, t = wall f in
    (r, t)
  in
  let batch name ~reps ~run ~show =
    ignore (run ());  (* warm-up outside the timed region *)
    let results = List.map (fun j -> (j, at_jobs j (fun () ->
        let r = ref (run ()) in
        for _ = 2 to reps do r := run () done;
        !r))) job_counts in
    let base = List.assoc 1 results in
    let identical =
      List.for_all (fun (_, (r, _)) -> show r = show (fst base)) results
    in
    Format.printf "%-22s %d reps:" name reps;
    List.iter
      (fun (j, (_, t)) ->
        let speedup = snd base /. t in
        Format.printf "  -j %d %7.1f ms (x%.2f)" j (t *. 1000.) speedup;
        record ~section:"PAR"
          (Printf.sprintf "%s-j%d-ms" name j) (t *. 1000.);
        record ~section:"PAR"
          (Printf.sprintf "%s-j%d-speedup" name j) (snd base /. t))
      results;
    Format.printf "  byte-identical=%b@." identical;
    record ~section:"PAR" (name ^ "-identical") (if identical then 1. else 0.);
    if not identical then
      Format.printf "  *** PAR DETERMINISM VIOLATION in %s ***@." name
  in
  let reps = if !smoke then 2 else 5 in
  (* a meatier lint batch than the 7-variant corpus: Progen functions *)
  let gen_funcs = List.init (if !smoke then 24 else 96) (fun i ->
      Staticcheck.Progen.func ~seed:(1000 + i)) in
  batch "lint-progen" ~reps
    ~run:(fun () -> Staticcheck.Linter.lint_program gen_funcs)
    ~show:(fun rs ->
        String.concat ";"
          (List.map (fun r ->
               Printf.sprintf "%s=%d" r.Staticcheck.Linter.func.Minic.Ast.name
                 (List.length r.Staticcheck.Linter.findings)) rs));
  let iis = Apps.Iis.setup () in
  let iis_model = Apps.Iis.model iis in
  let analyze_scenarios =
    List.init (if !smoke then 64 else 256) (fun i ->
        Apps.Iis.scenario
          ~path:(Printf.sprintf "/..%%252f..%%252fdir%d%%252ffile%d" i (i * 7)))
  in
  batch "analyze-fanout" ~reps
    ~run:(fun () ->
        Pfsm.Analysis.analyze ~par:true iis_model ~scenarios:analyze_scenarios)
    ~show:(fun rep ->
        Format.asprintf "%d:%a" rep.Pfsm.Analysis.scenarios_run
          (Format.pp_print_list
             (fun ppf (f : Pfsm.Analysis.pfsm_finding) ->
               Format.fprintf ppf "%s=%d" f.Pfsm.Analysis.operation
                 f.Pfsm.Analysis.hidden_hits))
          rep.Pfsm.Analysis.findings);
  batch "synth-generate" ~reps
    ~run:(fun () -> Vulndb.Synth.generate ~seed:20021130)
    ~show:Vulndb.Csv.of_database;
  batch "fault-matrix" ~reps:(max 1 (reps - 1))
    ~run:(fun () -> Exploit.Fault_matrix.run ~plans:Fault.Catalog.smoke ())
    ~show:(fun reports ->
        String.concat ";"
          (List.map (Format.asprintf "%a" Exploit.Fault_matrix.pp_report) reports));
  batch "chaos-smoke" ~reps:1
    ~run:(fun () -> Chaos.run ~plans:Fault.Catalog.smoke ())
    ~show:Chaos.to_json;
  Par.set_jobs (max 1 cores);
  (* the memo: repeated analysis of one model over one scenario set —
     exactly the recurrence the fault matrix and chaos legs produce
     (same pair once per plan per leg).  [analyze] vs [analyze ~memo]
     on the same inputs; the memoized pass pays two digests up front
     and table lookups thereafter. *)
  (* long request paths make [Model.run] scan kilobytes through the
     double-decode predicates, while a memo hit pays one MD5 pass *)
  let memo_scenarios =
    List.init (if !smoke then 12 else 24) (fun i ->
        let filler = String.concat "" (List.init 400 (fun _ -> "..%252f")) in
        Apps.Iis.scenario ~path:(Printf.sprintf "/%s/dir%d/cmd.exe" filler i))
  in
  let memo_reps = if !smoke then 5 else 20 in
  ignore (Pfsm.Analysis.analyze iis_model ~scenarios:memo_scenarios);
  let (), plain =
    wall (fun () ->
        for _ = 1 to memo_reps do
          ignore (Pfsm.Analysis.analyze iis_model ~scenarios:memo_scenarios)
        done)
  in
  Pfsm.Analysis.memo_reset ();
  let (), memod =
    wall (fun () ->
        for _ = 1 to memo_reps do
          ignore (Pfsm.Analysis.analyze ~memo:true iis_model ~scenarios:memo_scenarios)
        done)
  in
  let stats = Pfsm.Analysis.memo_stats () in
  let hit_rate =
    if stats.Pfsm.Analysis.lookups = 0 then 0.
    else
      float_of_int stats.Pfsm.Analysis.hits
      /. float_of_int stats.Pfsm.Analysis.lookups
  in
  Format.printf
    "@.analysis memo, IIS double-decode x %d scenario runs: plain %.1f ms, \
     memoized %.1f ms (x%.1f); %d lookups, %d hits, %d misses (hit rate %.0f%%)@."
    (memo_reps * List.length memo_scenarios)
    (plain *. 1000.) (memod *. 1000.) (plain /. memod)
    stats.Pfsm.Analysis.lookups stats.Pfsm.Analysis.hits
    stats.Pfsm.Analysis.misses (hit_rate *. 100.);
  record ~section:"PAR" "memo-plain-ms" (plain *. 1000.);
  record ~section:"PAR" "memo-memoized-ms" (memod *. 1000.);
  record ~section:"PAR" "memo-speedup" (plain /. memod);
  record ~section:"PAR" "memo-hit-rate" hit_rate;
  (* the chaos run's own hit rate, as surfaced in its report *)
  let chaos_report = Chaos.run ~plans:Fault.Catalog.smoke () in
  let m = chaos_report.Chaos.memo in
  let chaos_rate =
    if m.Pfsm.Analysis.lookups = 0 then 0.
    else float_of_int m.Pfsm.Analysis.hits /. float_of_int m.Pfsm.Analysis.lookups
  in
  Format.printf
    "chaos (smoke) memo: %d lookups, %d hits, %d misses (hit rate %.0f%%)@."
    m.Pfsm.Analysis.lookups m.Pfsm.Analysis.hits m.Pfsm.Analysis.misses
    (chaos_rate *. 100.);
  record ~section:"PAR" "chaos-memo-lookups" (float_of_int m.Pfsm.Analysis.lookups);
  record ~section:"PAR" "chaos-memo-hits" (float_of_int m.Pfsm.Analysis.hits);
  record ~section:"PAR" "chaos-memo-hit-rate" chaos_rate

(* ================= OBS: tracing + metrics overhead ================ *)

(* The observability contract: spans over virtual time cost nothing
   when tracing is off and stay cheap when it is on (target < 5 % on
   the lint sweep).  Also exercises the wall-clock annotation mode the
   determinism-traced paths never use. *)
let obs_bench () =
  section "OBS -- tracing and metrics overhead over the lint sweep";
  let reps = if !smoke then 20 else 100 in
  let gen_funcs =
    List.init 48 (fun i -> Staticcheck.Progen.func ~seed:(2000 + i))
  in
  let run () = ignore (Staticcheck.Linter.lint_program gen_funcs) in
  (* warm up the pool, the minor heap and the analysis caches so the
     first timed loop does not absorb one-time costs *)
  for _ = 1 to 3 do run () done;
  (* interleaved best-of-5 trials with a major GC before each loop:
     alternating off/on cancels machine drift, and taking the minimum
     discards trials that absorbed a GC slice or a scheduling stall *)
  let trial f =
    Gc.major ();
    let (), t = wall (fun () -> for _ = 1 to reps do f () done) in
    t
  in
  let off = ref infinity and on_ = ref infinity in
  let events = ref [] in
  for _ = 1 to 5 do
    let t_off = trial run in
    if t_off < !off then off := t_off;
    Obs.Trace.start ();
    let t_on = trial run in
    events := Obs.Trace.drain ();
    if t_on < !on_ then on_ := t_on
  done;
  let off = !off and on_ = !on_ and events = !events in
  let overhead = (on_ -. off) /. off *. 100. in
  Format.printf "lint sweep (%d Progen functions), %d repetitions:@."
    (List.length gen_funcs) reps;
  Format.printf "  tracing off         %8.1f ms@." (off *. 1000.);
  Format.printf "  tracing on          %8.1f ms  (%d events, %d dropped)@."
    (on_ *. 1000.) (List.length events) (Obs.Trace.dropped ());
  Format.printf
    "  tracing overhead    %+7.1f%%   (target: < 5%% on the lint sweep)@."
    overhead;
  record ~section:"OBS" "trace-off-ms" (off *. 1000.);
  record ~section:"OBS" "trace-on-ms" (on_ *. 1000.);
  record ~section:"OBS" "trace-overhead-pct" overhead;
  record ~section:"OBS" "trace-events" (float_of_int (List.length events));
  let ok = overhead < 5.0 in
  record ~section:"OBS" "trace-overhead-ok" (if ok then 1. else 0.);
  if !smoke && not ok then
    Format.printf "  *** OBS OVERHEAD TARGET MISSED (%.1f%% >= 5%%) ***@."
      overhead;
  (* wall-clock annotation: opt-in, breaks byte-identity, bench-only *)
  Obs.Trace.set_wall_clock (Some Unix.gettimeofday);
  Obs.Trace.start ();
  run ();
  let annotated = Obs.Trace.drain () in
  Obs.Trace.set_wall_clock None;
  let with_wall =
    List.length
      (List.filter (fun e -> e.Obs.Trace.wall_us <> None) annotated)
  in
  Format.printf
    "wall-clock annotated pass: %d/%d events carry wall_us@." with_wall
    (List.length annotated);
  record ~section:"OBS" "wall-annotated-events" (float_of_int with_wall);
  (* the metrics layer is always on; a snapshot is the fold of every
     per-domain cell and should stay microscopic *)
  let snap, snap_t = wall (fun () -> Obs.Metrics.snapshot ()) in
  Format.printf "metrics snapshot: %d metrics in %.3f ms@."
    (List.length snap) (snap_t *. 1000.);
  record ~section:"OBS" "snapshot-ms" (snap_t *. 1000.)

(* ================= SERVE: request loop throughput ================= *)

(* The serve loop end to end: a canned request script through
   [Server.run_script] at -j 1/2/4.  Requests/sec comes from wall
   time; p50/p99 per-request latency is over *virtual* time
   (completion tick minus admission tick), so the latency numbers are
   a pure function of the script and must agree at every job count —
   as must the whole response stream, byte for byte. *)
let serve_bench () =
  section "SERVE -- supervised request loop (req/s, latency over virtual time)";
  let module S = Serve.Server in
  let n_work = if !smoke then 40 else 200 in
  let reps = if !smoke then 3 else 10 in
  (* a mixed script: lint / analyze / exploit across the app registry,
     flushed in queue-sized waves so nothing is shed *)
  let corpus = [| "tTflag (vulnerable)"; "Log (fixed)"; "Log (vulnerable)" |] in
  let apps = [| "sendmail"; "nullhttpd"; "rwall" |] in
  let req i =
    match i mod 4 with
    | 0 ->
        Printf.sprintf "{\"id\": \"w%d\", \"kind\": \"lint\", \"target\": %s}" i
          (Serve.Json.to_string
             (Serve.Json.Str corpus.(i / 4 mod Array.length corpus)))
    | 1 ->
        Printf.sprintf "{\"id\": \"w%d\", \"kind\": \"analyze\", \"app\": \"%s\"}"
          i apps.(i / 4 mod Array.length apps)
    | 2 ->
        Printf.sprintf "{\"id\": \"w%d\", \"kind\": \"exploit\", \"app\": \"%s\"}"
          i apps.(i / 4 mod Array.length apps)
    | _ -> Printf.sprintf "{\"id\": \"w%d\", \"kind\": \"lint\", \"target\": \"corpus\"}" i
  in
  let config = { S.default_config with S.capacity = 8 } in
  let script =
    List.concat_map
      (fun wave ->
        List.init 8 (fun k -> req ((wave * 8) + k)) @ [ "{\"kind\": \"flush\"}" ])
      (List.init (n_work / 8) Fun.id)
    @ [ "{\"kind\": \"shutdown\"}" ]
  in
  ignore (S.run_script ~config script);  (* warm-up outside the timed region *)
  let job_counts = [ 1; 2; 4 ] in
  let results =
    List.map
      (fun j ->
        Par.set_jobs j;
        let r, t =
          wall (fun () ->
              let r = ref (S.run_script ~config script) in
              for _ = 2 to reps do r := S.run_script ~config script done;
              !r)
        in
        (j, r, t /. float_of_int reps))
      job_counts
  in
  let _, (base_lines, base_summary), base_t = List.hd results in
  let identical =
    List.for_all
      (fun (_, (lines, s), _) ->
        lines = base_lines && S.summary_to_json s = S.summary_to_json base_summary)
      results
  in
  Format.printf "%d work requests per run, %d runs per job count:@." n_work reps;
  List.iter
    (fun (j, (_, s), t) ->
      let rps = float_of_int s.S.admitted /. t in
      Format.printf "  -j %d %8.1f ms/run  %8.0f req/s  (x%.2f)@." j
        (t *. 1000.) rps (base_t /. t);
      record ~section:"SERVE" (Printf.sprintf "req-per-sec-j%d" j) rps;
      record ~section:"SERVE" (Printf.sprintf "run-ms-j%d" j) (t *. 1000.);
      record ~section:"SERVE" (Printf.sprintf "speedup-j%d" j) (base_t /. t))
    results;
  let lat = base_summary.S.latencies in
  let p50 = S.percentile 50 lat and p99 = S.percentile 99 lat in
  Format.printf
    "latency over virtual time: p50 %d ticks, p99 %d ticks (%d completed)@."
    p50 p99 (List.length lat);
  Format.printf "response streams byte-identical across -j 1/2/4: %b@." identical;
  record ~section:"SERVE" "latency-p50-vt" (float_of_int p50);
  record ~section:"SERVE" "latency-p99-vt" (float_of_int p99);
  record ~section:"SERVE" "admitted" (float_of_int base_summary.S.admitted);
  record ~section:"SERVE" "shed" (float_of_int base_summary.S.shed);
  record ~section:"SERVE" "identical" (if identical then 1. else 0.);
  if not identical then
    Format.printf "  *** SERVE DETERMINISM VIOLATION ***@."

(* ================= STORE: persistent result store ================= *)

(* The cost model of the crash-consistent store over the lint corpus
   sweep: a cold pass pays one record commit per corpus entry, a warm
   pass replaces every analysis with a verified read, and a pass over
   a fully corrupted store pays verification + eviction + recompute +
   rewrite on every entry — the graceful-degradation worst case.  The
   store-less sweep is the baseline all three compare against. *)
let store_bench () =
  section "STORE -- persistent result store (cold / warm / corrupt-degraded)";
  let reps = if !smoke then 5 else 20 in
  let sweep () = ignore (Staticcheck.Linter.corpus_sweep ()) in
  let timed f =
    let (), t = wall (fun () -> for _ = 1 to reps do f () done) in
    t /. float_of_int reps
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let dir = Filename.temp_file "dfsm-bench-store" ".d" in
  Sys.remove dir;
  sweep ();  (* warm-up outside every timed region *)
  let baseline = timed sweep in
  let s = Store.Disk.open_ ~dir in
  Fun.protect
    ~finally:(fun () -> Store.Disk.close s; rm_rf dir)
    (fun () ->
      Store.Handle.with_store (Some s) (fun () ->
          (* cold: every rep recommits (fresh store per rep would time
             mkdir; evicting between reps isolates the write path) *)
          let corrupt_all () =
            List.iter
              (fun k -> Store.Disk.note_corrupt s ~key:k)
              (Store.Disk.manifest_keys s)
          in
          sweep ();
          let cold = timed (fun () -> corrupt_all (); sweep ()) in
          let warm = timed sweep in
          (* corrupt-degraded: flip one byte of every record on disk,
             so each read fails verification and recomputes *)
          let tamper () =
            List.iter
              (fun k ->
                let path = Store.Disk.record_path s ~key:k in
                let img = In_channel.with_open_bin path In_channel.input_all in
                let b = Bytes.of_string img in
                let i = Bytes.length b - 1 in
                Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
                Out_channel.with_open_bin path (fun oc ->
                    Out_channel.output_bytes oc b))
              (Store.Disk.manifest_keys s)
          in
          let degraded = timed (fun () -> tamper (); sweep ()) in
          let st = Store.Disk.stats s in
          Format.printf "corpus sweep, %d repetitions per mode:@." reps;
          Format.printf "  store-less          %8.2f ms@." (baseline *. 1000.);
          Format.printf "  cold (all writes)   %8.2f ms@." (cold *. 1000.);
          Format.printf "  warm (all hits)     %8.2f ms  (x%.2f vs store-less)@."
            (warm *. 1000.) (baseline /. warm);
          Format.printf "  corrupt-degraded    %8.2f ms  (verify+evict+recompute+rewrite)@."
            (degraded *. 1000.);
          Format.printf
            "  totals: %d hits, %d misses, %d corrupt, %d repaired, %d writes@."
            st.Store.Disk.hits st.Store.Disk.misses st.Store.Disk.corrupt
            st.Store.Disk.repaired st.Store.Disk.writes;
          record ~section:"STORE" "sweep-storeless-ms" (baseline *. 1000.);
          record ~section:"STORE" "sweep-cold-ms" (cold *. 1000.);
          record ~section:"STORE" "sweep-warm-ms" (warm *. 1000.);
          record ~section:"STORE" "sweep-corrupt-ms" (degraded *. 1000.);
          record ~section:"STORE" "warm-speedup" (baseline /. warm);
          record ~section:"STORE" "repaired" (float_of_int st.Store.Disk.repaired)))

(* ================= PERF: data-representation before/after ========== *)

(* Each leg runs the retired representation (kept as an executable
   reference) against the production one over the same workload, and
   reports wall time plus this domain's allocated-bytes delta
   ([Obs.Allocs.bytes_of]).  The legs also cross-check agreement, so a
   "win" from a divergent implementation records 0 and is visible. *)

(* Runtime housekeeping (heap chunk growth, pool initialisation)
   occasionally lands a ~MB one-off allocation inside whichever timed
   region triggers it, which would flake a byte-level baseline gate.
   Each leg therefore runs three times and reports the minimum time
   and minimum bytes: the one-off can inflate at most one repetition,
   so the min is the stable, comparable figure. *)
let best_of leg =
  let run () =
    let (r, bytes), t = wall (fun () -> Obs.Allocs.bytes_of leg) in
    (r, bytes, t)
  in
  let r, b0, t0 = run () in
  let _, b1, t1 = run () in
  let _, b2, t2 = run () in
  ((r, Float.min b0 (Float.min b1 b2)), Float.min t0 (Float.min t1 t2))

let perf_bench () =
  section "PERF -- hot-path data representations, before/after";

  (* predicate sets: sorted-unique id lists vs Predset bitsets.
     Ids are pre-interned outside the timed region so both legs time
     only the set operations, not the intern lock. *)
  let per_model_ids =
    List.map
      (fun (_, m) ->
        List.concat_map
          (fun (_, p) ->
            [ Pfsm.Predicate.id p.Pfsm.Primitive.spec;
              Pfsm.Predicate.id p.Pfsm.Primitive.impl ])
          (Pfsm.Model.all_pfsms m))
      (all_models ())
  in
  let probe = List.concat per_model_ids in
  let reps = if !smoke then 2_000 else 20_000 in
  let list_leg () =
    let found = ref 0 in
    for _ = 1 to reps do
      let union =
        List.fold_left
          (fun u ids -> List.sort_uniq compare (List.rev_append ids u))
          [] per_model_ids
      in
      List.iter (fun i -> if List.mem i union then incr found) probe
    done;
    !found
  in
  let bitset_leg () =
    let found = ref 0 in
    for _ = 1 to reps do
      let union =
        List.fold_left
          (fun u ids ->
            List.fold_left (fun u i -> Pfsm.Predset.add_id i u) u ids)
          Pfsm.Predset.empty per_model_ids
      in
      List.iter (fun i -> if Pfsm.Predset.mem_id i union then incr found) probe
    done;
    !found
  in
  let (hits_l, bytes_l), t_l = best_of list_leg in
  let (hits_b, bytes_b), t_b = best_of bitset_leg in
  Format.printf
    "predicate sets (%d models, %d preds, %d union+probe rounds):@."
    (List.length per_model_ids) (List.length probe) reps;
  Format.printf "  id lists (sort_uniq)  %8.2f ms  %12.0f bytes@."
    (t_l *. 1000.) bytes_l;
  Format.printf "  Predset bitsets       %8.2f ms  %12.0f bytes  (agree=%b)@."
    (t_b *. 1000.) bytes_b (hits_l = hits_b);
  record ~section:"PERF" "predset-list-ms" (t_l *. 1000.);
  record ~section:"PERF" "predset-bitset-ms" (t_b *. 1000.);
  record ~section:"PERF" "predset-list-bytes" bytes_l;
  record ~section:"PERF" "predset-bitset-bytes" bytes_b;
  record ~section:"PERF" "predset-agree" (if hits_l = hits_b then 1. else 0.);

  (* POR sleep sets: int-list vs bitmask bookkeeping over a 3-process
     workload with both conflicting and commuting steps. *)
  let module Sch = Osmodel.Scheduler in
  let module E = Osmodel.Effect in
  let mk p i cell =
    Sch.step_e
      (Printf.sprintf "p%d.%d" p i)
      ~effects:[ E.writes (E.Mem cell) ]
      (fun (_ : unit ref) -> ())
  in
  let proc p cells = List.mapi (mk p) cells in
  let procs =
    [ proc 0 [ "x"; "y"; "x"; "z" ];
      proc 1 [ "y"; "u"; "x" ];
      proc 2 [ "v"; "w"; "y" ] ]
  in
  let drain schedules =
    Seq.fold_left (fun n sched -> n + List.length sched) 0 schedules
  in
  let preps = if !smoke then 50 else 200 in
  let por_leg enum () =
    let steps = ref 0 in
    for _ = 1 to preps do
      steps := !steps + drain (enum ~independent:E.independent procs)
    done;
    !steps
  in
  (* warm both enumerations (and the minor heap) outside the timed
     region, so the first leg doesn't pay the GC ramp-up *)
  ignore (drain (Sch.schedules_por_ref ~independent:E.independent procs));
  ignore (drain (Sch.schedules_por ~independent:E.independent procs));
  let (steps_l, pbytes_l), pt_l = best_of (por_leg Sch.schedules_por_ref) in
  let (steps_b, pbytes_b), pt_b = best_of (por_leg Sch.schedules_por) in
  Format.printf "@.POR sleep sets (3 processes, %d drains):@." preps;
  Format.printf "  int lists             %8.2f ms  %12.0f bytes@."
    (pt_l *. 1000.) pbytes_l;
  Format.printf "  bitmasks              %8.2f ms  %12.0f bytes  (agree=%b)@."
    (pt_b *. 1000.) pbytes_b (steps_l = steps_b);
  record ~section:"PERF" "por-list-ms" (pt_l *. 1000.);
  record ~section:"PERF" "por-bitmask-ms" (pt_b *. 1000.);
  record ~section:"PERF" "por-list-bytes" pbytes_l;
  record ~section:"PERF" "por-bitmask-bytes" pbytes_b;
  record ~section:"PERF" "por-agree" (if steps_l = steps_b then 1. else 0.);

  (* abstract interpreter: Smap environments vs slot arrays.  The
     corpus and Progen functions keep the legs honest on realistic
     shapes, but they are tiny (a handful of variables, one loop), so
     per-analyze fixed costs would drown the env representation.  The
     stress functions are what the slot refactor targets: many live
     variables joined/widened on every fixpoint round. *)
  let stress nvars =
    let open Minic.Ast in
    let v i = Printf.sprintf "v%d" i in
    let decls = List.init nvars (fun i -> Decl_int (v i, Int_lit i)) in
    let bumps =
      List.init nvars (fun i ->
          Assign (v i, Bin (Add, Var (v ((i + 1) mod nvars)), Int_lit 1)))
    in
    { name = Printf.sprintf "stress%d" nvars;
      params = [ Int_param "n"; Str_param "s" ];
      body =
        decls
        @ [ Decl_buf ("buf", 64);
            While
              ( Bin (Lt, Var "v0", Var "n"),
                bumps
                @ [ If
                      ( Bin (Lt, Var "v1", Int_lit 100),
                        [ Assign ("v2", Bin (Add, Var "v2", Int_lit 1)) ],
                        [ Assign ("v3", Bin (Sub, Var "v3", Int_lit 1)) ] );
                    Array_store ("tab", Var "v4", Var "v5");
                    Strcpy ("buf", Var "s") ] );
            Return (Var "v0") ] }
  in
  let funcs =
    List.map snd Minic.Corpus.all
    @ List.init (if !smoke then 8 else 24) (fun i ->
          Staticcheck.Progen.func ~seed:(3000 + i))
    @ List.map stress [ 8; 12; 16; 24 ]
  in
  let config =
    { Staticcheck.Absint.default_config with
      arrays = [ ("tab", 32) ] }
  in
  let areps = if !smoke then 5 else 20 in
  let absint_leg analyze () =
    let raws = ref 0 in
    for _ = 1 to areps do
      List.iter
        (fun f ->
          raws := !raws + List.length (analyze ~config f).Staticcheck.Absint.raws)
        funcs
    done;
    !raws
  in
  List.iter
    (fun f ->
      ignore (Staticcheck.Absint_ref.analyze ~config f);
      ignore (Staticcheck.Absint.analyze ~config f))
    funcs;
  let (raws_m, abytes_m), at_m =
    best_of
      (absint_leg (fun ~config f -> Staticcheck.Absint_ref.analyze ~config f))
  in
  let (raws_s, abytes_s), at_s =
    best_of (absint_leg (fun ~config f -> Staticcheck.Absint.analyze ~config f))
  in
  Format.printf "@.abstract interpreter (%d functions x %d reps):@."
    (List.length funcs) areps;
  Format.printf "  Smap environments     %8.2f ms  %12.0f bytes@."
    (at_m *. 1000.) abytes_m;
  Format.printf "  slot arrays           %8.2f ms  %12.0f bytes  (agree=%b)@."
    (at_s *. 1000.) abytes_s (raws_m = raws_s);
  record ~section:"PERF" "absint-smap-ms" (at_m *. 1000.);
  record ~section:"PERF" "absint-slots-ms" (at_s *. 1000.);
  record ~section:"PERF" "absint-smap-bytes" abytes_m;
  record ~section:"PERF" "absint-slots-bytes" abytes_s;
  record ~section:"PERF" "absint-agree" (if raws_m = raws_s then 1. else 0.)

(* ================= CORPUS: streaming generation + classification == *)

(* The cost model of the million-report path at bench scale: the
   legacy whole-database generator versus the chunked stream (same
   report content by construction), and the end-to-end store-less
   classification sweep.  Bytes come from {!Obs.Allocs.minor_bytes_of}
   (a pure allocation-event count, independent of collector phase)
   with the min over three repetitions, measured at -j 1 so every
   allocation lands on the measuring domain — pool-domain allocation
   is invisible to the caller's GC counters and scheduling-dependent.
   That makes -bytes the precise gate; wall-clock (at ambient jobs)
   catches catastrophes. *)
let corpus_bench () =
  section "CORPUS -- streaming corpus generation and classification";
  let total = Vulndb.Synth.legacy_total in
  let serial_bytes f =
    let prev = Par.jobs () in
    Par.set_jobs 1;
    Fun.protect ~finally:(fun () -> Par.set_jobs prev) (fun () ->
        let m = ref infinity in
        for _ = 1 to 3 do
          let _, b = Obs.Allocs.minor_bytes_of f in
          if b < !m then m := b
        done;
        !m)
  in
  let db = Vulndb.Synth.generate ~seed:1 in  (* warm-up *)
  let legacy_bytes = serial_bytes (fun () -> Vulndb.Synth.generate ~seed:1) in
  let _, legacy_t = wall (fun () -> ignore (Vulndb.Synth.generate ~seed:1)) in
  let stream () =
    let n = ref 0 in
    (match
       Vulndb.Synth.generate_stream ~seed:1 ~total ~chunk:1024
         (fun ~index:_ rs -> n := !n + List.length rs)
     with
     | Ok _ -> ()
     | Error e -> failwith (Vulndb.Synth.error_to_string e));
    !n
  in
  let stream_bytes = serial_bytes (fun () -> ignore (stream ())) in
  let streamed, stream_t = wall (fun () -> stream ()) in
  let chunk = if !smoke then 256 else 512 in
  let ctotal = if !smoke then 1500 else total in
  let classify () =
    match Corpus.Pipeline.run ~seed:1 ~total:ctotal ~chunk () with
    | Ok t -> t
    | Error e -> failwith (Vulndb.Synth.error_to_string e)
  in
  let t0 = classify () in  (* warm-up; also the reported accuracy *)
  let _, classify_t = wall (fun () -> ignore (classify ())) in
  let rate t n = float_of_int n /. t in
  Format.printf "corpus of %d reports (stream chunk 1024):@." total;
  Format.printf "  legacy generate     %8.2f ms  %12.0f bytes  %10.0f reports/s@."
    (legacy_t *. 1000.) legacy_bytes
    (rate legacy_t (Vulndb.Database.size db));
  Format.printf "  chunked stream      %8.2f ms  %12.0f bytes  %10.0f reports/s@."
    (stream_t *. 1000.) stream_bytes (rate stream_t streamed);
  Format.printf
    "  classify (%7d)  %8.2f ms  accuracy %.4f vs baseline %.4f@." ctotal
    (classify_t *. 1000.) t0.Corpus.Pipeline.accuracy
    t0.Corpus.Pipeline.baseline;
  record ~section:"CORPUS" "legacy-generate-ms" (legacy_t *. 1000.);
  record ~section:"CORPUS" "legacy-generate-bytes" legacy_bytes;
  record ~section:"CORPUS" "stream-generate-ms" (stream_t *. 1000.);
  record ~section:"CORPUS" "stream-generate-bytes" stream_bytes;
  record ~section:"CORPUS" "stream-reports-per-s" (rate stream_t streamed);
  record ~section:"CORPUS" "classify-ms" (classify_t *. 1000.);
  record ~section:"CORPUS" "classify-accuracy" t0.Corpus.Pipeline.accuracy

(* ================= Part 2: Bechamel micro-benchmarks ============== *)

open Bechamel
open Toolkit

let stage = Staged.stage

let experiment_tests =
  [ Test.make ~name:"fig1/synth+stats"
      (stage (fun () ->
           let db = Vulndb.Synth.generate ~seed:1 in
           Vulndb.Stats.breakdown db));
    Test.make ~name:"fig2/pfsm-run"
      (let pfsm =
         Pfsm.Primitive.make ~name:"p" ~kind:Pfsm.Taxonomy.Content_attribute_check
           ~activity:"a"
           ~spec:(Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100)
           ~impl:Pfsm.Predicate.True
       in
       stage (fun () -> Pfsm.Primitive.run pfsm ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int (-5))));
    Test.make ~name:"fig3/sendmail-model-run"
      (let app = Apps.Sendmail.setup () in
       let model = Apps.Sendmail.model app in
       let env = Apps.Sendmail.exploit_scenario app in
       stage (fun () -> Pfsm.Model.run model ~env));
    Test.make ~name:"fig3/sendmail-simulation"
      (stage (fun () ->
           let app = Apps.Sendmail.setup () in
           let str_x, str_i = Exploit.Attack.sendmail_inputs app in
           Apps.Sendmail.run_attack app ~str_x ~str_i));
    Test.make ~name:"fig4/nullhttpd-simulation-6255"
      (stage (fun () ->
           let app = Apps.Nullhttpd.setup ~config:Apps.Nullhttpd.v0_5_1 () in
           let content_len, body = Exploit.Attack.nullhttpd_6255 app in
           Apps.Nullhttpd.handle_post app ~content_len ~body));
    Test.make ~name:"fig4/differential-sweep"
      (stage (fun () ->
           Discovery.Differential.nullhttpd_sweep ~config:Apps.Nullhttpd.v0_5_1 ()));
    Test.make ~name:"fig5/xterm-race-exploration"
      (stage (fun () -> Apps.Xterm.run_race { Apps.Xterm.open_nofollow = false }));
    Test.make ~name:"fig6/rwall-simulation"
      (stage (fun () ->
           Apps.Rwall.run_attack (Apps.Rwall.setup ()) ~message:"m\n"));
    Test.make ~name:"fig7/iis-request"
      (let app = Apps.Iis.setup () in
       stage (fun () -> Apps.Iis.handle_request app Exploit.Attack.iis_path));
    Test.make ~name:"tab2/taxonomy-matrix"
      (let model = Apps.Nullhttpd.model (Apps.Nullhttpd.setup ()) in
       stage (fun () -> Pfsm.Analysis.taxonomy_matrix model));
    Test.make ~name:"lemma/sufficiency"
      (let app = Apps.Sendmail.setup () in
       let model = Apps.Sendmail.model app in
       let scenarios = [ Apps.Sendmail.exploit_scenario app ] in
       stage (fun () -> Pfsm.Lemma.sufficiency model ~scenarios)) ]

let substrate_tests =
  [ Test.make ~name:"heap/malloc-free-cycle"
      (let mem = Machine.Memory.create ~base:0x1000 ~size:0x100000 in
       let heap = Machine.Heap.create mem ~base:0x1000 ~size:0x100000 ~safe_unlink:false in
       stage (fun () ->
           match Machine.Heap.malloc heap 256 with
           | Some user -> Machine.Heap.free heap user
           | None -> ()));
    Test.make ~name:"stack/push-pop-frame"
      (let mem = Machine.Memory.create ~base:0x1000 ~size:0x100000 in
       let stack =
         Machine.Stack.create mem ~base:0x1000 ~size:0x100000
           ~protection:Machine.Stack.Stackguard
       in
       stage (fun () ->
           Machine.Stack.push_frame stack ~func:"f" ~ret_addr:0x8000000
             ~locals:[ ("buf", 200) ];
           Machine.Stack.pop_frame stack));
    Test.make ~name:"fmt/interpret-8-directives"
      (let mem = Machine.Memory.create ~base:0x1000 ~size:0x10000 in
       stage (fun () ->
           Apps.Format_interp.interpret mem ~fmt:"%8x%8x%8x%8x%8x%8x%8x%8x"
             ~arg_cursor:0x1000));
    Test.make ~name:"predicate/eval-index-check"
      (let p = Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100 in
       stage (fun () -> Pfsm.Predicate.holds ~env:Pfsm.Env.empty ~self:(Pfsm.Value.Int 42) p));
    Test.make ~name:"predicate/eval-double-decode"
      (let p =
         Pfsm.Predicate.Not
           (Pfsm.Predicate.Contains (Pfsm.Predicate.Decode (2, Pfsm.Predicate.Self), "../"))
       in
       stage (fun () ->
           Pfsm.Predicate.holds ~env:Pfsm.Env.empty
             ~self:(Pfsm.Value.Str "..%252f..%252fwinnt%252fsystem32") p));
    Test.make ~name:"witness/search-36-candidates"
      (let pfsm =
         Pfsm.Primitive.make ~name:"p" ~kind:Pfsm.Taxonomy.Content_attribute_check
           ~activity:"a"
           ~spec:(Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100)
           ~impl:Pfsm.Predicate.True
       in
       let candidates =
         List.map
           (fun x -> Pfsm.Witness.candidate (Pfsm.Value.Int x))
           (Discovery.Domain_gen.int_candidates ~seed:3 ~n:20)
       in
       stage (fun () -> Pfsm.Witness.hidden_witnesses pfsm ~candidates));
    Test.make ~name:"scheduler/interleavings-3x2"
      (stage (fun () -> Osmodel.Scheduler.interleavings [ 1; 2; 3 ] [ 4; 5 ]));
    Test.make ~name:"strcodec/percent-decode"
      (stage (fun () ->
           Pfsm.Strcodec.percent_decode_n 2 "..%252f..%252fwinnt%252fsystem32%252fcmd.exe"));
    Test.make ~name:"heap/validate-arena"
      (let mem = Machine.Memory.create ~base:0x1000 ~size:0x100000 in
       let heap = Machine.Heap.create mem ~base:0x1000 ~size:0x100000 ~safe_unlink:false in
       let live =
         List.filter_map (fun i -> Machine.Heap.malloc heap (64 + (i * 8)))
           (List.init 32 (fun i -> i))
       in
       List.iteri (fun i u -> if i mod 2 = 0 then Machine.Heap.free heap u) live;
       stage (fun () -> Machine.Heap.validate heap));
    Test.make ~name:"verify/exhaustive-4k-ints"
      (let pfsm =
         Pfsm.Primitive.make ~name:"p" ~kind:Pfsm.Taxonomy.Content_attribute_check
           ~activity:"a"
           ~spec:(Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100)
           ~impl:
             (Pfsm.Predicate.Cmp
                (Pfsm.Predicate.Le, Pfsm.Predicate.Self,
                 Pfsm.Predicate.Lit (Pfsm.Value.Int 100)))
       in
       stage (fun () ->
           Pfsm.Verify.verify pfsm (Pfsm.Verify.Int_range { low = -2048; high = 2048 })));
    Test.make ~name:"vulndb/csv-export-5925"
      (let db = Vulndb.Synth.generate ~seed:3 in
       stage (fun () -> Vulndb.Csv.of_database db));
    Test.make ~name:"vulndb/trend-per-year"
      (let db = Vulndb.Synth.generate ~seed:3 in
       stage (fun () -> Vulndb.Trend.per_year db));
    Test.make ~name:"parse/predicate"
      (stage (fun () ->
           Pfsm.Parse.predicate "(self >= 0 && self <= 100) || !(contains(decode^2(self), \"../\"))"));
    Test.make ~name:"simplify/fixpoint"
      (let p =
         Pfsm.Predicate.And
           (Pfsm.Predicate.Not (Pfsm.Predicate.Not (Pfsm.Predicate.Env_flag "k")),
            Pfsm.Predicate.Or
              (Pfsm.Predicate.True,
               Pfsm.Predicate.Contains (Pfsm.Predicate.Self, "../")))
       in
       stage (fun () -> Pfsm.Simplify.simplify p));
    Test.make ~name:"auto/extract+verify"
      (stage (fun () ->
           match
             Minic.Extract.impl_predicate Minic.Corpus.tTflag_vulnerable
               ~object_var:Minic.Corpus.tTflag_object
           with
           | Some impl ->
               let pfsm =
                 Pfsm.Primitive.make ~name:"auto"
                   ~kind:Pfsm.Taxonomy.Content_attribute_check ~activity:"a"
                   ~spec:Minic.Corpus.tTflag_spec ~impl
               in
               Some (Pfsm.Verify.verify pfsm (Pfsm.Verify.Int_range { low = -512; high = 512 }))
           | None -> None));
    Test.make ~name:"auto/interp-tTflag"
      (stage (fun () ->
           Minic.Corpus.run_tTflag Minic.Corpus.tTflag_vulnerable ~str_x:"42" ~str_i:"7"));
    Test.make ~name:"baselines/markov-metf"
      (let app = Apps.Sendmail.setup () in
       let model = Apps.Sendmail.model app in
       let scenario = Apps.Sendmail.exploit_scenario app in
       stage (fun () -> Baselines.Markov.metf_of_model ~retry:0.2 model ~scenario));
    Test.make ~name:"baselines/attack-graph"
      (let app = Apps.Sendmail.setup () in
       let report =
         Pfsm.Analysis.analyze (Apps.Sendmail.model app)
           ~scenarios:
             [ Apps.Sendmail.exploit_scenario app; Apps.Sendmail.benign_scenario ]
       in
       stage (fun () ->
           let g = Baselines.Attack_graph.of_report report in
           Baselines.Attack_graph.min_hidden_cut g));
    Test.make ~name:"ablation/aslr-ghttpd"
      (stage (fun () ->
           let reference = Apps.Ghttpd.setup () in
           let request = Exploit.Attack.ghttpd_request reference in
           let victim = Apps.Ghttpd.setup ~aslr_seed:Exploit.Ablation.aslr_seed () in
           Apps.Ghttpd.serve victim ~request));
    Test.make ~name:"lint/absint-readpostdata"
      (stage (fun () ->
           Staticcheck.Absint.analyze ~config:Staticcheck.Linter.corpus_config
             Minic.Corpus.read_post_data_buggy));
    Test.make ~name:"lint/validate-tTflag"
      (stage (fun () ->
           Staticcheck.Linter.lint ~config:Staticcheck.Linter.corpus_config
             Minic.Corpus.tTflag_vulnerable));
    Test.make ~name:"lint/corpus-sweep"
      (stage (fun () -> Staticcheck.Linter.corpus_sweep ()));
    Test.make ~name:"resilience/raw-sweep"
      (stage (fun () -> Staticcheck.Linter.corpus_sweep ()));
    Test.make ~name:"resilience/supervised-sweep"
      (stage (fun () -> Staticcheck.Linter.supervised_sweep ()));
    Test.make ~name:"resilience/retry-schedule"
      (stage (fun () -> Resilience.Retry.delays Resilience.Retry.default));
    Test.make ~name:"resilience/breaker-trip-cycle"
      (stage (fun () ->
           let b = Resilience.Breaker.create ~resource:"bench" () in
           for t = 0 to 2 do
             if Resilience.Breaker.acquire b ~now:t then
               Resilience.Breaker.failure b ~now:t ~cause:"bench fault"
           done;
           Resilience.Breaker.state b)) ]

let run_benchmarks () =
  section "BECHAMEL -- micro-benchmarks (ns per run, OLS estimate)";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.2) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let run_group group_name tests =
    Format.printf "@.[%s]@." group_name;
    let grouped = Test.make_grouped ~name:group_name tests in
    let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun name ols acc ->
           let estimate =
             match Analyze.OLS.estimates ols with
             | Some (e :: _) -> e
             | Some [] | None -> nan
           in
           let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
           (name, estimate, r2) :: acc)
        results []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    in
    List.iter
      (fun (name, estimate, r2) ->
         Format.printf "  %-44s %14.1f ns/run   (r² = %.3f)@." name estimate r2;
         record ~section:("BECHAMEL-" ^ group_name) (name ^ "-ns") estimate)
      rows
  in
  run_group "experiments" experiment_tests;
  run_group "substrate" substrate_tests

let usage () =
  prerr_endline
    "usage: bench [--smoke] [--json [FILE]] [--compare FILE] [--threshold PCT]\n\
    \  --smoke          fast subset (figure 1, lint sweep, resilience, PAR, OBS, SERVE, STORE, PERF, CORPUS)\n\
    \  --json [FILE]    also write metrics as JSON (default BENCH.json)\n\
    \  --compare FILE   diff this run's cost metrics (-ms/-s/-bytes keys)\n\
    \                   against a committed baseline JSON; exit 1 on any\n\
    \                   regression past the threshold\n\
    \  --threshold PCT  regression tolerance for --compare (default 20)";
  exit 2

let parse_argv () =
  let rec go = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        go rest
    | "--json" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        json_out := Some path;
        go rest
    | "--json" :: rest ->
        json_out := Some "BENCH.json";
        go rest
    | "--compare" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        compare_baseline := Some path;
        go rest
    | "--compare" :: _ ->
        prerr_endline "bench: --compare needs a baseline file";
        usage ()
    | "--threshold" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0. ->
            threshold := p;
            go rest
        | _ ->
            Printf.eprintf "bench: bad threshold %S\n" pct;
            usage ())
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %S\n" arg;
        usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

let () =
  parse_argv ();
  if !smoke then begin
    fig1 ();
    lint_sweep ();
    resilience ();
    par_bench ();
    obs_bench ();
    serve_bench ();
    store_bench ();
    perf_bench ();
    corpus_bench ()
  end
  else begin
    fig1 ();
    tab1 ();
    fig2 ();
    fig3 ();
    fig4 ();
    fig5 ();
    fig6 ();
    fig7 ();
    fig8 ();
    tab2 ();
    observations ();
    verification ();
    lemma ();
    consistency ();
    faults ();
    ablation_aslr ();
    ablation_interleavings ();
    races_bench ();
    protection_matrix ();
    auto_tool ();
    baselines ();
    trend_extension ();
    lint_sweep ();
    resilience ();
    par_bench ();
    obs_bench ();
    serve_bench ();
    store_bench ();
    perf_bench ();
    corpus_bench ();
    run_benchmarks ()
  end;
  (match !json_out with Some path -> write_json path | None -> ());
  Par.teardown ();
  (match !compare_baseline with
   | Some path -> compare_with_baseline path
   | None -> ());
  Format.printf "@.done.@."
