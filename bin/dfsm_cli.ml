(* dfsm — command-line front end to the pFSM vulnerability-analysis
   library: database statistics, per-application FSM analysis,
   Graphviz export, exploit driving, discovery, and lemma checking.

   Exit-code contract (tested in test/dune, documented in README.md):
     0   success — the requested analysis ran and found nothing wrong
     1   the analysis itself found a vulnerability or a violated gate
         (refuted check, confirmed lint finding, corpus mismatch,
         discovery hit, broken lemma, fault/chaos contract violation)
     2   usage error — unknown command, unknown application, bad
         arguments (usage is printed to stderr)
     125 unexpected internal error *)

(* The application registry lives in Serve.Handlers — one source of
   truth for the CLI's positional APP argument and the server's
   analyze/exploit requests.  Unknown names cannot reach these through
   the CLI (APP is a cmdliner enum). *)
let apps = Serve.Handlers.apps

let model_of = Serve.Handlers.model_of

let scenarios_of = Serve.Handlers.scenarios_of

(* A failed analysis gate: say why on stderr, exit 1. *)
let gate ~ok msg =
  if ok then `Ok 0
  else begin
    Printf.eprintf "%s\n%!" msg;
    `Ok 1
  end

(* ---- supervision plumbing ---------------------------------------- *)

(* [--resume] / [--checkpoint FILE] turn a sweep into a checkpointed
   one: completed item ids are journalled as they finish, a re-run
   skips them, and the journal is removed once the sweep completes
   with nothing quarantined (so the next invocation starts fresh). *)
let checkpoint_of ~default resume path =
  match resume, path with
  | false, None -> None
  | _, path ->
      let cp = Resilience.Checkpoint.load (Option.value path ~default) in
      (match Resilience.Checkpoint.skipped_detail cp with
       | [] -> ()
       | lines ->
           (* a torn final line after a crash, or corruption: the
              affected items simply re-run; say so instead of hiding it *)
           Printf.eprintf
             "warning: checkpoint journal: %d damaged line(s) skipped (%s); \
              affected items will re-run\n%!"
             (List.length lines)
             (String.concat ", "
                (List.map
                   (fun (n, d) ->
                     Printf.sprintf "line %d: %s" n
                       (Resilience.Checkpoint.damage_to_string d))
                   lines)));
      Some cp

let sweep_finished cp report ~expected =
  match cp with
  | Some cp
    when Resilience.Run_report.ok report
         && Resilience.Run_report.no_lost ~expected report ->
      Resilience.Checkpoint.reset cp
  | _ -> ()

let supervising resume checkpoint stop_after =
  resume || checkpoint <> None || stop_after <> None

(* ---- observability ------------------------------------------------ *)

(* [--trace FILE] / [--metrics FILE] wrap a batch command in the obs
   layer: tracing starts before the command body and the merged trace
   is written on the way out (even when the gate fails), as JSONL when
   FILE ends in .jsonl and Chrome trace_event JSON otherwise.  Metrics
   are reset up front so the written snapshot covers exactly this
   invocation.  Traces are over virtual time — byte-identical for a
   given seed at every -j. *)
let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)

let with_obs ?trace ?metrics k =
  if metrics <> None then Obs.Metrics.reset ();
  if trace <> None then Obs.Trace.start ();
  let finish () =
    (match trace with
     | None -> ()
     | Some path ->
         let events = Obs.Trace.drain () in
         let rendered =
           if Filename.check_suffix path ".jsonl" then Obs.Trace.to_jsonl events
           else Obs.Trace.to_chrome events
         in
         write_file path rendered);
    match metrics with
    | None -> ()
    | Some path ->
        write_file path (Obs.Metrics.to_json (Obs.Metrics.snapshot ()) ^ "\n")
  in
  Fun.protect ~finally:finish k

(* ---- persistence -------------------------------------------------- *)

(* [--store DIR] / $DFSM_STORE install the crash-consistent result
   store for the duration of the command: memoized analysis traces and
   lint reports are served from verified on-disk records and written
   back on computation, so a warm store makes a rerun recompute
   nothing — across processes.  Corruption, version skew and write
   failures all degrade to recompute (counted in the store.* metrics),
   never to a wrong answer or a crash. *)
let with_store store k =
  match store with
  | None -> k ()
  | Some dir -> (
      match Store.Disk.open_ ~dir with
      | disk -> Store.Handle.with_store (Some disk) k
      | exception Sys_error msg -> `Error (false, "--store: " ^ msg))

(* ---- parallelism -------------------------------------------------- *)

(* Resolve the worker-domain count before the command body runs:
   [-j N] wins, else $DFSM_JOBS, else the hardware count.  Invalid
   values (non-integers, < 1) are usage errors — exit 2 per the
   contract above.  Output never depends on the resolved count: every
   parallel path reduces in input order. *)
let with_jobs jobs k =
  match Par.configure ?jobs () with
  | Ok _ -> k ()
  | Error msg -> `Error (false, msg)

(* ---- commands ---------------------------------------------------- *)

let stats jobs seed =
  with_jobs jobs @@ fun () ->
  let db = Vulndb.Synth.generate ~seed in
  Format.printf "%a@." Vulndb.Stats.pp_breakdown db;
  `Ok 0

let analyze app =
  let model = model_of app in
  let scenarios = scenarios_of app in
  Format.printf "%a@." Pfsm.Pretty.pp_model model;
  let report = Pfsm.Analysis.analyze model ~scenarios in
  Format.printf "%a@." Pfsm.Pretty.pp_report report;
  Format.printf "taxonomy:@.%a@." Pfsm.Pretty.pp_matrix
    (Pfsm.Analysis.taxonomy_matrix model);
  `Ok 0

let dot app =
  print_string (Pfsm.Dot.of_model (model_of app));
  `Ok 0

let exploit_cmd jobs store resume checkpoint stop_after trace metrics =
  with_jobs jobs @@ fun () ->
  with_store store @@ fun () ->
  with_obs ?trace ?metrics @@ fun () ->
  if supervising resume checkpoint stop_after then begin
    let cp = checkpoint_of ~default:".dfsm-exploit.checkpoint" resume checkpoint in
    let rows, report =
      Exploit.Driver.supervised_rows ?checkpoint:cp ?stop_after ~parallel:true ()
    in
    let expected = List.length Exploit.Driver.app_row_groups in
    sweep_finished cp report ~expected;
    Format.printf "%a@." Exploit.Driver.pp_rows rows;
    Format.printf "%a@." Resilience.Run_report.pp report;
    gate
      ~ok:(Exploit.Driver.rows_ok rows && Resilience.Run_report.ok report)
      "exploit: verdict mismatch or quarantined application"
  end
  else begin
    let rows = Exploit.Driver.all_rows () in
    Format.printf "%a@." Exploit.Driver.pp_rows rows;
    gate ~ok:(Exploit.Driver.rows_ok rows) "exploit: verdict mismatch"
  end

let consistency () =
  Format.printf "%a@." Exploit.Consistency.pp_entries (Exploit.Consistency.check_all ());
  let ok = Exploit.Consistency.all_consistent () in
  Format.printf "all consistent: %b@." ok;
  gate ~ok "consistency: model and simulation disagree"

let discover jobs app =
  with_jobs jobs @@ fun () ->
  let differential =
    match app with
    | "nullhttpd" -> (
        match Discovery.Differential.rediscover_6255 () with
        | Some finding ->
            Format.printf "%a@.@." Discovery.Finding.pp finding;
            1
        | None ->
            Format.printf "differential sweep found no divergence@.";
            0)
    | _ -> 0
  in
  let findings = Discovery.Search.discover (model_of app) ~scenarios:(scenarios_of app) in
  List.iter (fun f -> Format.printf "%a@.@." Discovery.Finding.pp f) findings;
  Format.printf "%d hidden-path finding(s)@." (List.length findings);
  if List.length findings + differential = 0 then `Ok 0
  else begin
    Printf.eprintf "discover: hidden path found in %s\n%!" app;
    `Ok 1
  end

let lemma () =
  Format.printf "%a@." Exploit.Protection.pp_entries (Exploit.Protection.entries ());
  let ok = Exploit.Protection.lemma_holds () in
  Format.printf "lemma holds: %b@." ok;
  gate ~ok "lemma: a protected exploit was not foiled"

(* Structural model metrics (Observations 1-3) plus the observability
   summary: per-pFSM transition coverage over every application's
   scenarios — the Figure-8 taxonomy as a measured quantity — and the
   runtime metrics snapshot the sweep accumulated. *)
let metrics jobs store json =
  with_jobs jobs @@ fun () ->
  with_store store @@ fun () ->
  Obs.Metrics.reset ();
  Pfsm.Analysis.memo_reset ();
  let coverage =
    List.fold_left
      (fun acc app ->
        let report =
          Pfsm.Analysis.analyze ~memo:true (model_of app)
            ~scenarios:(scenarios_of app)
        in
        Pfsm.Coverage.merge acc (Pfsm.Coverage.of_report report))
      Pfsm.Coverage.empty apps
  in
  let snap = Obs.Metrics.snapshot () in
  let memo = Pfsm.Analysis.memo_stats () in
  let store_stats = Option.map Store.Disk.stats (Store.Handle.get ()) in
  if json then
    Printf.printf "{\"coverage\": %s, \"memo\": {\"lookups\": %d, \"hits\": \
                   %d, \"misses\": %d}%s, \"obs\": %s}\n"
      (Pfsm.Coverage.to_json coverage)
      memo.Pfsm.Analysis.lookups memo.Pfsm.Analysis.hits
      memo.Pfsm.Analysis.misses
      (match store_stats with
      | None -> ""
      | Some s -> ", \"store\": " ^ Store.Disk.stats_to_json s)
      (Obs.Metrics.to_json snap)
  else begin
    let ms = List.map (fun a -> Pfsm.Metrics.of_model (model_of a)) apps in
    Format.printf "%a@." Pfsm.Metrics.pp_table ms;
    Format.printf "%a@." Pfsm.Coverage.pp coverage;
    Format.printf "analysis memo: %d lookups, %d hits, %d misses@."
      memo.Pfsm.Analysis.lookups memo.Pfsm.Analysis.hits
      memo.Pfsm.Analysis.misses;
    (match store_stats with
    | None -> ()
    | Some s ->
        Format.printf
          "store: %d hits, %d misses, %d corrupt, %d repaired, %d writes (%d \
           failed)@."
          s.Store.Disk.hits s.Store.Disk.misses s.Store.Disk.corrupt
          s.Store.Disk.repaired s.Store.Disk.writes
          s.Store.Disk.write_failures);
    Format.printf "runtime metrics:@.%a@." Obs.Metrics.pp snap
  end;
  `Ok 0

let ablation () =
  Format.printf "%a@." Exploit.Ablation.pp_rows (Exploit.Ablation.rows ());
  let ok = Exploit.Ablation.control_flow_hijacks_prevented () in
  Format.printf "control-flow hijacks prevented: %b@." ok;
  gate ~ok "ablation: a control-flow hijack survived ASLR"

let csv jobs seed =
  with_jobs jobs @@ fun () ->
  print_string (Vulndb.Csv.of_database (Vulndb.Synth.generate ~seed));
  `Ok 0

let trend jobs seed =
  with_jobs jobs @@ fun () ->
  let db = Vulndb.Synth.generate ~seed in
  Format.printf "reports per year:@.%a@." Vulndb.Trend.pp_series
    (Vulndb.Trend.per_year db);
  Format.printf "studied family per year:@.%a@." Vulndb.Trend.pp_series
    (Vulndb.Trend.family_per_year db);
  `Ok 0

(* Check a user-supplied spec/impl predicate pair over a domain:
   the paper's methodology as a standalone tool. *)
let check spec_src impl_src ints strings =
  match Pfsm.Parse.predicate spec_src, Pfsm.Parse.predicate impl_src with
  | Error e, _ ->
      `Error (false, Printf.sprintf "--spec: at %d: %s" e.Pfsm.Parse.position
                e.Pfsm.Parse.message)
  | _, Error e ->
      `Error (false, Printf.sprintf "--impl: at %d: %s" e.Pfsm.Parse.position
                e.Pfsm.Parse.message)
  | Ok spec, Ok impl ->
      let pfsm =
        Pfsm.Primitive.make ~name:"pFSM" ~kind:Pfsm.Taxonomy.Content_attribute_check
          ~activity:"user-supplied check" ~spec ~impl
      in
      Format.printf "%a@.@." Pfsm.Pretty.pp_pfsm pfsm;
      let domain =
        match ints, strings with
        | Some (low, high), _ -> Pfsm.Verify.Int_range { low; high }
        | None, _ :: _ -> Pfsm.Verify.Strings strings
        | None, [] -> Pfsm.Verify.Int_range { low = -1024; high = 1024 }
      in
      let result = Pfsm.Verify.verify pfsm domain in
      Format.printf "%a@." Pfsm.Verify.pp_result result;
      (match result with
       | Pfsm.Verify.Verified _ -> `Ok 0
       | Pfsm.Verify.Refuted _ ->
           Printf.eprintf "check: impl does not imply spec (hidden path)\n%!";
           `Ok 1
       | Pfsm.Verify.Budget_exhausted _ | Pfsm.Verify.Domain_too_large _ ->
           Printf.eprintf "check: verification did not complete\n%!";
           `Ok 1)

(* The automatic tool on a source file: parse mini-C, extract the
   implementation predicate, verify it against the analyst's spec. *)
let extract file object_var spec_src ints =
  match Pfsm.Parse.predicate spec_src with
  | Error e ->
      `Error (false, Printf.sprintf "--spec: at %d: %s" e.Pfsm.Parse.position
                e.Pfsm.Parse.message)
  | Ok spec -> (
      let source = In_channel.with_open_text file In_channel.input_all in
      match Minic.Parser.program source with
      | Error e ->
          `Error (false, Printf.sprintf "%s: line %d: %s" file e.Minic.Parser.line
                    e.Minic.Parser.message)
      | Ok funcs ->
          let refuted = ref 0 in
          List.iter
            (fun f ->
               Format.printf "%a@.@." Minic.Ast.pp_func f;
               match Minic.Extract.impl_predicate f ~object_var with
               | None ->
                   Format.printf
                     "%s: no extractable guard over %s (outside the fragment, or no \
                      dangerous operation)@.@."
                     f.Minic.Ast.name object_var
               | Some impl ->
                   Format.printf "extracted impl: %s@." (Pfsm.Predicate.to_string impl);
                   Format.printf "analyst spec  : %s@." (Pfsm.Predicate.to_string spec);
                   let pfsm =
                     Pfsm.Primitive.make ~name:(f.Minic.Ast.name ^ "/auto")
                       ~kind:Pfsm.Taxonomy.Content_attribute_check
                       ~activity:("dangerous operation in " ^ f.Minic.Ast.name)
                       ~spec ~impl
                   in
                   let low, high = ints in
                   let result =
                     Pfsm.Verify.verify pfsm (Pfsm.Verify.Int_range { low; high })
                   in
                   (match result with
                    | Pfsm.Verify.Refuted _ -> incr refuted
                    | _ -> ());
                   Format.printf "verification  : %a@.@." Pfsm.Verify.pp_result result)
            funcs;
          gate ~ok:(!refuted = 0)
            (Printf.sprintf "extract: %d refuted guard(s) in %s" !refuted file))

(* The abstract-interpretation linter: a mini-C file, or the built-in
   corpus checked against its ground-truth expectations. *)
let lint jobs store corpus file json arrays resume checkpoint stop_after trace
    metrics =
  with_jobs jobs @@ fun () ->
  with_store store @@ fun () ->
  with_obs ?trace ?metrics @@ fun () ->
  if corpus then begin
    if supervising resume checkpoint stop_after then begin
      let cp = checkpoint_of ~default:".dfsm-lint.checkpoint" resume checkpoint in
      let rows, report =
        Staticcheck.Linter.supervised_sweep ?checkpoint:cp ?stop_after
          ~parallel:true ()
      in
      let expected = List.length Minic.Corpus.all in
      sweep_finished cp report ~expected;
      if json then
        Printf.printf "{\"sweep\": %s, \"run\": %s}\n"
          (Staticcheck.Linter.sweep_to_json rows)
          (Resilience.Run_report.to_json report)
      else begin
        Format.printf "%a@." Staticcheck.Linter.pp_sweep rows;
        Format.printf "%a@." Resilience.Run_report.pp report
      end;
      gate
        ~ok:(Staticcheck.Linter.sweep_ok rows && Resilience.Run_report.ok report)
        "corpus sweep: expectation mismatch or quarantined variant"
    end
    else begin
      let rows = Staticcheck.Linter.corpus_sweep () in
      if json then print_endline (Staticcheck.Linter.sweep_to_json rows)
      else Format.printf "%a@." Staticcheck.Linter.pp_sweep rows;
      gate ~ok:(Staticcheck.Linter.sweep_ok rows)
        "corpus sweep: expectation mismatch"
    end
  end
  else
    match file with
    | None -> `Error (true, "FILE is required unless --corpus is given")
    | Some file -> (
        let source = In_channel.with_open_text file In_channel.input_all in
        match Minic.Parser.program source with
        | Error e ->
            `Error (false, Printf.sprintf "%s: line %d: %s" file
                      e.Minic.Parser.line e.Minic.Parser.message)
        | Ok funcs ->
            let config =
              { Staticcheck.Absint.default_config with Staticcheck.Absint.arrays }
            in
            let reports = Staticcheck.Linter.lint_program ~config funcs in
            if json then
              print_endline
                ("[" ^ String.concat ", "
                         (List.map Staticcheck.Linter.report_to_json reports)
                 ^ "]")
            else
              List.iter
                (fun r -> Format.printf "%a@.@." Staticcheck.Linter.pp_report r)
                reports;
            let confirmed =
              List.concat_map
                (fun r ->
                   List.filter Staticcheck.Finding.is_confirmed
                     r.Staticcheck.Linter.findings)
                reports
            in
            gate ~ok:(confirmed = [])
              (Printf.sprintf "lint: %d confirmed finding(s) in %s"
                 (List.length confirmed) file))

let matrix () =
  Format.printf "%a@." Exploit.Matrix.pp ();
  let ok = Exploit.Matrix.section6_claims_hold () in
  Format.printf "section-6 claims hold: %b@." ok;
  gate ~ok "matrix: a section-6 claim failed"

(* Write every diagram the paper draws (and the attack graphs) as
   Graphviz files into a directory. *)
let export dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let path = Filename.concat dir name in
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
    Format.printf "wrote %s@." path
  in
  List.iter
    (fun app -> write (app ^ ".dot") (Pfsm.Dot.of_model (model_of app)))
    apps;
  let fig2 =
    Pfsm.Primitive.make ~name:"pFSM" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"accept an index x"
      ~spec:(Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100)
      ~impl:
        (Pfsm.Predicate.Cmp
           (Pfsm.Predicate.Le, Pfsm.Predicate.Self,
            Pfsm.Predicate.Lit (Pfsm.Value.Int 100)))
  in
  write "figure2_pfsm.dot" (Pfsm.Dot.of_primitive fig2);
  List.iter
    (fun app ->
       let model = model_of app in
       let report = Pfsm.Analysis.analyze model ~scenarios:(scenarios_of app) in
       write (app ^ "_attack_graph.dot")
         (Baselines.Attack_graph.to_dot (Baselines.Attack_graph.of_report report)))
    apps;
  Format.printf "render with: dot -Tsvg %s/sendmail.dot > sendmail.svg@." dir;
  `Ok 0

let baselines () =
  let app = Apps.Sendmail.setup () in
  let model = Apps.Sendmail.model app in
  let scenario = Apps.Sendmail.exploit_scenario app in
  (match Baselines.Markov.metf_of_model ~retry:0.2 model ~scenario with
   | Some e -> Format.printf "Sendmail METF (retry 0.2): %.1f effort units@." e
   | None -> Format.printf "Sendmail METF: infinite@.");
  let report =
    Pfsm.Analysis.analyze model ~scenarios:[ scenario; Apps.Sendmail.benign_scenario ]
  in
  let g = Baselines.Attack_graph.of_report report in
  Format.printf "%a@." Baselines.Attack_graph.pp g;
  print_string (Baselines.Attack_graph.to_dot g);
  `Ok 0

let faults jobs store smoke resume checkpoint stop_after trace metrics =
  with_jobs jobs @@ fun () ->
  with_store store @@ fun () ->
  with_obs ?trace ?metrics @@ fun () ->
  let plans = if smoke then Fault.Catalog.smoke else Fault.Catalog.all in
  let reports, run_report =
    if supervising resume checkpoint stop_after then begin
      let cp = checkpoint_of ~default:".dfsm-faults.checkpoint" resume checkpoint in
      let reports, report =
        Exploit.Fault_matrix.supervised_run ~plans ?checkpoint:cp ?stop_after
          ~parallel:true ()
      in
      sweep_finished cp report ~expected:(List.length plans);
      (reports, Some report)
    end
    else (Exploit.Fault_matrix.run ~plans (), None)
  in
  List.iter (Format.printf "%a@." Exploit.Fault_matrix.pp_report) reports;
  Format.printf "%a@." Exploit.Fault_matrix.pp_grid reports;
  (match run_report with
   | Some r -> Format.printf "%a@." Resilience.Run_report.pp r
   | None -> ());
  let benign = Exploit.Fault_matrix.all_benign_ok reports in
  let no_div = Exploit.Fault_matrix.no_divergence reports in
  let stable = Exploit.Fault_matrix.stable ~plans () in
  Format.printf "benign plans consistent: %b@." benign;
  Format.printf "no fail-open divergence: %b@." no_div;
  Format.printf "seed-stable verdicts:    %b@." stable;
  let supervised_ok =
    match run_report with Some r -> Resilience.Run_report.ok r | None -> true
  in
  gate
    ~ok:(benign && stable && supervised_ok)
    "fault matrix: benign-plan agreement or seed determinism violated"

let chaos jobs store seed json smoke soak disk trace metrics =
  with_jobs jobs @@ fun () ->
  with_store store @@ fun () ->
  with_obs ?trace ?metrics @@ fun () ->
  let plans = if smoke then Fault.Catalog.smoke else Fault.Catalog.all in
  if disk then begin
    let plans =
      if smoke then Fault.Catalog.disk_smoke else Fault.Catalog.disk
    in
    let report = Chaos.disk ~seed ~plans () in
    if json then print_endline (Chaos.disk_to_json report)
    else Format.printf "%a@." Chaos.pp_disk report;
    match Chaos.disk_violations report with
    | [] -> `Ok 0
    | vs ->
        List.iter (Printf.eprintf "chaos: %s\n") vs;
        Printf.eprintf "chaos: disk degradation contract violated\n%!";
        `Ok 1
  end
  else if soak then begin
    let report = Chaos.soak ~seed ~plans () in
    if json then print_endline (Chaos.soak_to_json report)
    else Format.printf "%a@." Chaos.pp_soak report;
    match Chaos.soak_violations report with
    | [] -> `Ok 0
    | vs ->
        List.iter (Printf.eprintf "chaos: %s\n") vs;
        Printf.eprintf "chaos: serve soak contract violated\n%!";
        `Ok 1
  end
  else begin
    let report = Chaos.run ~seed ~plans () in
    if json then print_endline (Chaos.to_json report)
    else Format.printf "%a@." Chaos.pp report;
    match Chaos.violations report with
    | [] -> `Ok 0
    | vs ->
        List.iter (Printf.eprintf "chaos: %s\n") vs;
        Printf.eprintf "chaos: supervision contract violated\n%!";
        `Ok 1
  end

(* ---- the server --------------------------------------------------- *)

(* [dfsm serve] — JSONL requests on stdin, JSONL responses on stdout
   (flushed per line), run summary repeated on stderr.  SIGTERM/SIGINT
   drain gracefully: stop admitting, finish everything queued, emit the
   summary line, exit per the contract (0 clean, 1 lost requests or an
   unclean drain).  The interrupt is CLI plumbing — [Serve.Server.run]
   only ever sees its source return [None]. *)
exception Drain_now

let serve jobs store capacity fuel max_line seed trace metrics =
  with_jobs jobs @@ fun () ->
  with_store store @@ fun () ->
  with_obs ?trace ?metrics @@ fun () ->
  let config =
    { Serve.Server.default_config with
      Serve.Server.capacity; default_fuel = fuel; max_line; seed }
  in
  let stop = ref false in
  let in_read = ref false in
  (* Raising interrupts a blocked [input_line]; outside the read the
     flag alone suffices (the source checks it before the next line)
     and raising would tear a response mid-write. *)
  let on_signal _ = if !in_read then raise Drain_now else stop := true in
  List.iter
    (fun s ->
       try Sys.set_signal s (Sys.Signal_handle on_signal)
       with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  let source () =
    if !stop then None
    else begin
      in_read := true;
      let line =
        try In_channel.input_line In_channel.stdin with Drain_now ->
          stop := true;
          None
      in
      in_read := false;
      line
    end
  in
  let emit line =
    print_string line;
    print_newline ();
    flush stdout
  in
  let summary = Serve.Server.run ~config ~emit source in
  Format.eprintf "%a@." Serve.Server.pp_summary summary;
  gate
    ~ok:(summary.Serve.Server.drained && Serve.Server.accounted summary)
    "serve: lost requests or unclean drain"

(* Verify-and-repair for a result store.  Exit 0 iff the store ends
   clean (after repair when --repair is given), 1 when damage remains,
   2 when no store directory was named or it is unusable. *)
let fsck store dir repair json =
  match (match dir with Some d -> Some d | None -> store) with
  | None ->
      `Error (true, "a store directory is required: DIR or --store/DFSM_STORE")
  | Some dir ->
      if not (Sys.file_exists dir) then
        `Error (false, Printf.sprintf "%s: no such store" dir)
      else if not (Sys.is_directory dir) then
        `Error (false, Printf.sprintf "%s: not a directory" dir)
      else begin
        let disk = Store.Disk.open_ ~dir in
        let report = Store.Fsck.scan ~repair disk in
        Store.Disk.close disk;
        if json then print_endline (Store.Fsck.to_json report)
        else Format.printf "%a@." Store.Fsck.pp report;
        gate
          ~ok:(Store.Fsck.clean report)
          (if repair then "fsck: damage could not be repaired"
           else "fsck: store is unclean (re-run with --repair)")
      end

(* Static TOCTTOU scan over declared step footprints, each finding
   confirmed or refuted by replaying only the flagged window under
   the scheduler.  Exit 1 iff a confirmed race exists. *)
let races jobs json por budget app trace metrics =
  with_jobs jobs @@ fun () ->
  with_obs ?trace ?metrics @@ fun () ->
  if budget < 1 then `Error (false, "--budget must be at least 1")
  else begin
    let report = Racecheck.Driver.analyze ~budget ~por ?app () in
    if json then print_endline (Racecheck.Driver.to_json report)
    else Format.printf "%a@." Racecheck.Driver.pp report;
    gate
      ~ok:(not (Racecheck.Driver.confirmed report))
      "races: confirmed TOCTTOU race(s) present"
  end

(* Streaming corpus classification: the Figure-1 distribution scaled
   to --total reports, generated chunk by chunk on the domain pool,
   spilled through the store as checksummed shards, per-chunk
   classification summaries cached so warm reruns recompute nothing,
   and merged in chunk-index order — byte-identical at every -j and
   invariant under --chunk.  Exit 1 iff the sweep loses reports or
   the classifier fails to beat the majority-class baseline. *)
let classify jobs store seed total chunk smoke json trace metrics =
  with_jobs jobs @@ fun () ->
  with_store store @@ fun () ->
  with_obs ?trace ?metrics @@ fun () ->
  let total = if smoke then 1500 else total in
  let chunk = if smoke then 128 else chunk in
  match Corpus.Pipeline.run ~seed ~total ~chunk () with
  | Error e -> `Error (false, "classify: " ^ Vulndb.Synth.error_to_string e)
  | Ok t ->
      if json then print_endline (Corpus.Pipeline.to_json t)
      else Format.printf "%a@?" Corpus.Pipeline.pp t;
      gate ~ok:(Corpus.Pipeline.ok t)
        "classify: lost reports or classifier below the majority baseline"

(* ---- cmdliner plumbing ------------------------------------------- *)

open Cmdliner

let app_arg =
  let doc =
    Printf.sprintf "Application to analyse: %s." (String.concat ", " apps)
  in
  Arg.(required & pos 0 (some (enum (List.map (fun a -> (a, a)) apps))) None
       & info [] ~docv:"APP" ~doc)

let seed_arg =
  Arg.(value & opt int 20021130 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel batch paths (default: \
               $(b,DFSM_JOBS), else the hardware thread count). Output is \
               byte-identical for every N; values < 1 are a usage error.")

let store_arg =
  let env =
    Cmd.Env.info "DFSM_STORE"
      ~doc:"Default directory for $(b,--store); the flag wins."
  in
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR" ~env
         ~doc:"Persist analysis results in a crash-consistent store at DIR \
               (created if absent): verified records are served instead of \
               recomputed — across processes — and corruption, version skew \
               or write failure silently degrades to recompute. Inspect with \
               $(b,dfsm fsck).")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
         ~doc:"Checkpoint the sweep: journal each completed item, skip items \
               a previous interrupted run already finished, and remove the \
               journal when the sweep completes cleanly.")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Journal file for $(b,--resume) (also implies it).")

let stop_after_arg =
  Arg.(value & opt (some int) None
       & info [ "stop-after" ] ~docv:"N"
         ~doc:"Simulate an interruption: stop dead after N items (testing aid).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a deterministic virtual-time trace of the run: JSONL when \
               FILE ends in .jsonl, Chrome trace_event JSON otherwise. \
               Byte-identical for a given seed at every $(b,-j).")

let metrics_file_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the metrics snapshot of the run (counters, gauges, \
               histograms) as JSON.")

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Figure-1 database breakdown")
    Term.(ret (const stats $ jobs_arg $ seed_arg))

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"Print an application's FSM model and analysis")
    Term.(ret (const analyze $ app_arg))

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit the model as Graphviz dot")
    Term.(ret (const dot $ app_arg))

let exploit_cmd_ =
  Cmd.v (Cmd.info "exploit" ~doc:"Run every canned exploit against every configuration")
    Term.(ret (const exploit_cmd $ jobs_arg $ store_arg $ resume_arg
               $ checkpoint_arg $ stop_after_arg $ trace_arg
               $ metrics_file_arg))

let consistency_cmd =
  Cmd.v (Cmd.info "consistency" ~doc:"Cross-check model verdicts against simulations")
    Term.(ret (const consistency $ const ()))

let discover_cmd =
  Cmd.v (Cmd.info "discover" ~doc:"Hunt for hidden IMPL_ACPT paths (rediscovers #6255)")
    Term.(ret (const discover $ jobs_arg $ app_arg))

let lemma_cmd =
  Cmd.v (Cmd.info "lemma" ~doc:"Validate the foiling lemma in model and simulation")
    Term.(ret (const lemma $ const ()))

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Structural metrics of every model (Observations 1-3), per-pFSM \
             transition coverage, and the runtime metrics snapshot")
    Term.(ret (const metrics $ jobs_arg $ store_arg $ json_flag))

let ablation_cmd =
  Cmd.v (Cmd.info "ablation" ~doc:"ASLR ablation over the four memory exploits")
    Term.(ret (const ablation $ const ()))

let csv_cmd =
  Cmd.v (Cmd.info "csv" ~doc:"Dump the synthetic database as CSV")
    Term.(ret (const csv $ jobs_arg $ seed_arg))

let trend_cmd =
  Cmd.v (Cmd.info "trend" ~doc:"Per-year report series")
    Term.(ret (const trend $ jobs_arg $ seed_arg))

let spec_arg =
  Arg.(required & opt (some string) None
       & info [ "spec" ] ~docv:"PRED" ~doc:"Specification accept-predicate.")

let impl_arg =
  Arg.(required & opt (some string) None
       & info [ "impl" ] ~docv:"PRED" ~doc:"Implementation accept-predicate.")

let ints_arg =
  Arg.(value & opt (some (pair ~sep:':' int int)) None
       & info [ "ints" ] ~docv:"LOW:HIGH" ~doc:"Integer domain to verify over.")

let strings_arg =
  Arg.(value & opt (list string) [] & info [ "strings" ] ~docv:"S1,S2,..."
       ~doc:"String domain to verify over.")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify impl => spec for user-supplied predicates over a finite domain")
    Term.(ret (const check $ spec_arg $ impl_arg $ ints_arg $ strings_arg))

let baselines_cmd =
  Cmd.v
    (Cmd.info "baselines"
       ~doc:"Markov METF and attack-graph baselines on the Sendmail model")
    Term.(ret (const baselines $ const ()))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"Mini-C source file.")

let object_arg =
  Arg.(required & opt (some string) None
       & info [ "object" ] ~docv:"VAR" ~doc:"The variable the predicate speaks about.")

let extract_ints_arg =
  Arg.(value & opt (pair ~sep:':' int int) (-2048, 2048)
       & info [ "ints" ] ~docv:"LOW:HIGH" ~doc:"Integer domain to verify over.")

let dir_arg =
  Arg.(value & opt string "diagrams" & info [ "out" ] ~docv:"DIR"
       ~doc:"Output directory for the .dot files.")

let export_cmd =
  Cmd.v
    (Cmd.info "export" ~doc:"Write every model and attack graph as Graphviz files")
    Term.(ret (const export $ dir_arg))

let matrix_cmd =
  Cmd.v
    (Cmd.info "matrix" ~doc:"Protection x vulnerability matrix (Section 6)")
    Term.(ret (const matrix $ const ()))

let smoke_arg =
  Arg.(value & flag
       & info [ "smoke" ] ~doc:"Run only the three-plan CI subset of the catalog.")

let faults_cmd =
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Re-run the consistency matrix and lemma under every fault plan")
    Term.(ret (const faults $ jobs_arg $ store_arg $ smoke_arg $ resume_arg
               $ checkpoint_arg $ stop_after_arg $ trace_arg
               $ metrics_file_arg))

let soak_flag =
  Arg.(value & flag
       & info [ "soak" ]
         ~doc:"Replay the fault catalog against a live $(b,dfsm serve) loop \
               instead of the batch pipeline, asserting zero lost requests \
               and a clean drain under every plan.")

let disk_flag =
  Arg.(value & flag
       & info [ "disk" ]
         ~doc:"Replay the durability-fault catalog (torn writes, bit flips, \
               ENOSPC/EACCES, crash-before-rename) against the persistent \
               result store instead of the batch pipeline, asserting \
               byte-identical analysis results under every fault and a clean \
               store after $(b,fsck --repair).")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Replay every fault plan against the supervised pipeline and check \
             the resilience contract: no lost items, bounded retries, \
             deterministic reports")
    Term.(ret (const chaos $ jobs_arg $ store_arg $ seed_arg $ json_flag
               $ smoke_arg $ soak_flag $ disk_flag $ trace_arg
               $ metrics_file_arg))

let capacity_arg =
  Arg.(value & opt int Serve.Server.default_config.Serve.Server.capacity
       & info [ "capacity" ] ~docv:"N"
         ~doc:"Admission-queue bound: work requests beyond N queued between \
               scheduling points are shed with a typed $(b,overloaded) \
               response, never buffered unboundedly.")

let fuel_arg =
  Arg.(value & opt int Serve.Server.default_config.Serve.Server.default_fuel
       & info [ "fuel" ] ~docv:"N"
         ~doc:"Default per-attempt handler fuel; a request's $(b,fuel) field \
               overrides it.  Exhaustion is a typed $(b,deadline) response.")

let max_line_arg =
  Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_line
       & info [ "max-line" ] ~docv:"BYTES"
         ~doc:"Request lines longer than this get a typed error response and \
               are never admitted.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running analysis service: JSONL requests on stdin, JSONL \
             responses on stdout.  Bounded admission with typed load-shedding, \
             per-request supervision (retry, per-class circuit breakers, fuel \
             deadlines, quarantine), graceful drain on EOF, shutdown request, \
             SIGTERM or SIGINT.  The response stream is byte-identical at \
             every $(b,-j).")
    Term.(ret (const serve $ jobs_arg $ store_arg $ capacity_arg $ fuel_arg
               $ max_line_arg $ seed_arg $ trace_arg $ metrics_file_arg))

let race_app_arg =
  let doc =
    Printf.sprintf "Restrict the analysis to one application's instances: %s."
      (String.concat ", " Racecheck.Instances.apps)
  in
  Arg.(value
       & pos 0
           (some (enum (List.map (fun a -> (a, a)) Racecheck.Instances.apps)))
           None
       & info [] ~docv:"APP" ~doc)

let por_flag =
  Arg.(value & flag
       & info [ "por" ]
         ~doc:"Confirm findings over sleep-set partial-order-reduced \
               schedules: one representative per Mazurkiewicz trace, same \
               verdicts, far fewer replays — complete where plain \
               enumeration exhausts the budget.")

let budget_arg =
  Arg.(value & opt int Racecheck.Driver.default_budget
       & info [ "budget" ] ~docv:"N"
         ~doc:"Replayed schedules per finding before reporting \
               $(b,unresolved).")

let races_cmd =
  Cmd.v
    (Cmd.info "races"
       ~doc:"Static TOCTTOU detection over step effect footprints, with every \
             finding confirmed or refuted by scheduler replay of the flagged \
             check/use window.  Exit 1 iff a race is confirmed.")
    Term.(ret (const races $ jobs_arg $ json_flag $ por_flag $ budget_arg
               $ race_app_arg $ trace_arg $ metrics_file_arg))

let extract_cmd =
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Extract implementation predicates from mini-C source and verify them")
    Term.(ret (const extract $ file_arg $ object_arg $ spec_arg $ extract_ints_arg))

let corpus_flag =
  Arg.(value & flag
       & info [ "corpus" ]
         ~doc:"Lint the built-in vulnerability corpus against its expectations; \
               exit nonzero on any missed vulnerable or flagged fixed variant.")

let lint_file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"Mini-C source file to lint.")

let lint_arrays_arg =
  Arg.(value & opt_all (pair ~sep:':' string int) []
       & info [ "array" ] ~docv:"NAME:COUNT"
         ~doc:"Register a global array and its element count (repeatable).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Abstract-interpretation linter with interpreter-validated findings")
    Term.(ret (const lint $ jobs_arg $ store_arg $ corpus_flag $ lint_file_arg
               $ json_flag $ lint_arrays_arg $ resume_arg $ checkpoint_arg
               $ stop_after_arg $ trace_arg $ metrics_file_arg))

let repair_flag =
  Arg.(value & flag
       & info [ "repair" ]
         ~doc:"Remove every unsound file (bad records, orphan tmps, strays) \
               and compact the manifest to exactly the keys that verify; \
               evicted results are recomputed by the next store-backed run.")

let fsck_dir_arg =
  Arg.(value & pos 0 (some string) None
       & info [] ~docv:"DIR"
         ~doc:"Store directory to check (default: $(b,--store) / \
               $(b,DFSM_STORE)).")

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify a result store offline: classify every record (ok, torn, \
             checksum-mismatch, stale-version, orphan-tmp), check the \
             manifest, and optionally repair.  Exit 0 iff the store ends \
             clean.")
    Term.(ret (const fsck $ store_arg $ fsck_dir_arg $ repair_flag $ json_flag))

let total_arg =
  Arg.(value & opt int Vulndb.Synth.legacy_total
       & info [ "total" ] ~docv:"N"
         ~doc:"Corpus size: the Figure-1 category distribution scaled to N \
               reports (largest-remainder apportionment; default the paper's \
               5925).  Invalid or id-space-overflowing totals are typed \
               usage errors, not crashes.")

let chunk_arg =
  Arg.(value & opt int 4096
       & info [ "chunk" ] ~docv:"N"
         ~doc:"Reports per generated chunk (the streaming granule and the \
               on-disk shard size; the result is invariant under it).")

let classify_smoke_arg =
  Arg.(value & flag
       & info [ "smoke" ]
         ~doc:"CI subset: a reduced corpus (1500 reports, 128-report \
               chunks), same contract.")

let classify_cmd =
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Stream a scaled Figure-1 corpus through the nearest-centroid \
             classifier: chunked generation on the domain pool, checksummed \
             store spill, cached per-chunk summaries (warm reruns recompute \
             nothing), deterministic merge.  Exit 1 iff reports are lost or \
             accuracy drops below the majority-class baseline.")
    Term.(ret (const classify $ jobs_arg $ store_arg $ seed_arg $ total_arg
               $ chunk_arg $ classify_smoke_arg $ json_flag $ trace_arg
               $ metrics_file_arg))

let main =
  Cmd.group
    (Cmd.info "dfsm" ~version:"1.0.0"
       ~doc:"Data-driven FSM analysis of security vulnerabilities (DSN 2003)")
    [ stats_cmd; analyze_cmd; dot_cmd; exploit_cmd_; consistency_cmd; discover_cmd;
      lemma_cmd; metrics_cmd; ablation_cmd; csv_cmd; trend_cmd; check_cmd;
      baselines_cmd; extract_cmd; lint_cmd; matrix_cmd; export_cmd; faults_cmd;
      chaos_cmd; serve_cmd; races_cmd; fsck_cmd; classify_cmd ]

(* The exit-code contract: cmdliner's usage errors (unknown command,
   unknown application, bad flags) land on 2; term-level failures
   ([`Error] results, e.g. an unreadable file) do too; analysis
   verdicts come back as the integer the command returned. *)
let () =
  match Cmd.eval_value main with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
