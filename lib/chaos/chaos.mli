(** The chaos harness: every {!Fault.Catalog} plan replayed against
    the supervised pipeline, end to end.

    For each plan, three legs of the analysis pipeline run inside
    {!Fault.Hooks.run}: the model-vs-simulation {e matrix} (one item
    per application plus the Section-6 lemma), the static-analysis
    {e lint} corpus sweep, and the CSV {e ingest} of the curated
    database (each row passing through the corruption seam).  The
    harness then asserts the supervision contract:

    {ul
    {- {e no lost items} — every leg's report accounts for exactly the
       items it was given, however hostile the plan;}
    {- {e bounded retries} — no item exceeded the retry policy;}
    {- {e determinism} — the same seed yields a byte-identical JSON
       report ({!stable}).}} *)

type leg_error = { stage : string; detail : string }
(** A leg that could not run at all — e.g. the ingest document itself
    failed to parse.  Typed so the harness reports it as a contract
    violation (CLI exit 1) instead of crashing with a raw backtrace
    (exit 125). *)

type leg_outcome = Ran of Resilience.Run_report.t | Failed of leg_error

type leg = {
  leg_name : string;  (** ["matrix"], ["lint"] or ["ingest"] *)
  expected_items : int;  (** how many items the leg was given *)
  outcome : leg_outcome;
}

type plan_run = {
  plan : Fault.Plan.t;
  events : int;  (** injected faults that actually fired *)
  legs : leg list;
}

type report = {
  seed : int;
  retry_max : int;  (** the policy's attempt ceiling, for {!bounded_retries} *)
  runs : plan_run list;
  memo : Pfsm.Analysis.memo_stats;
      (** analysis-memo counters for this run (the memo is reset when
          the run starts, so consecutive runs report identical
          numbers) *)
}

val default_seed : int

val run :
  ?seed:int ->
  ?plans:Fault.Plan.t list ->
  ?config:Resilience.Supervisor.config ->
  ?csv:string ->
  unit ->
  report
(** Defaults: {!default_seed}, {!Fault.Catalog.all},
    {!Resilience.Supervisor.default_config}.  The supervision retry
    seed is derived from [seed] and the plan name, so every plan owns
    its schedules and the whole report is a pure function of
    [(seed, plans, config)].  [csv] overrides the ingest leg's
    document (default: the curated database rendered to CSV) — a
    document that fails to parse yields a [Failed] ingest leg, never
    an exception. *)

val no_lost_items : report -> bool

val bounded_retries : report -> bool

val violations : report -> string list
(** Human-readable contract violations; empty iff {!ok}. *)

val ok : report -> bool

val stable : ?seed:int -> ?plans:Fault.Plan.t list -> unit -> bool
(** Run twice; byte-compare the JSON. *)

val to_json : report -> string

val pp : Format.formatter -> report -> unit

(** {1 Server soak}

    The fault catalog replayed against a live {!Serve.Server}: for
    each plan, a canned request script — mixed work classes, a burst
    past the admission bound, malformed and oversized lines, boom
    requests that crash and fault — runs through the server under
    {!Fault.Hooks.run}, and the harness asserts {e zero lost
    requests}: every admitted request got exactly one terminal
    response, every shed request a typed [overloaded], every bad line
    a typed error, and the server drained cleanly. *)

type soak_run = {
  soak_plan : Fault.Plan.t;
  soak_events : int;  (** injected faults that actually fired *)
  lines_emitted : int;  (** response lines, summary included *)
  summary : Serve.Server.summary;
}

type soak_report = {
  soak_seed : int;
  script_lines : int;
  work_requests : int;  (** work lines in the script: admitted + shed *)
  expect_shed : int;    (** the burst minus the admission capacity *)
  expect_malformed : int;
  soak_runs : soak_run list;
}

val soak_script : unit -> string list
(** The canned request script (shared with tests and the CLI). *)

val soak :
  ?seed:int ->
  ?plans:Fault.Plan.t list ->
  ?config:Serve.Server.config ->
  unit ->
  soak_report
(** Defaults: {!default_seed}, {!Fault.Catalog.all}, and a server
    config with capacity 4 / max_line 512 so the script's burst and
    oversized line actually bite.  Each plan's server seed is derived
    from [seed] and the plan name. *)

val soak_violations : soak_report -> string list
(** Human-readable contract violations; empty iff {!soak_ok}. *)

val soak_ok : soak_report -> bool

val soak_stable : ?seed:int -> ?plans:Fault.Plan.t list -> unit -> bool
(** Run twice; byte-compare the JSON. *)

val soak_to_json : soak_report -> string

val pp_soak : Format.formatter -> soak_report -> unit

(** {1 Disk chaos}

    The durability-fault catalog ({!Fault.Catalog.disk}) replayed
    against the persistent result store: for each plan, a cold and a
    warm corpus sweep run against a fresh store with every write
    subject to the plan's io knobs (torn writes, bit flips,
    ENOSPC/EACCES, crash-before-rename), then [fsck --repair] and one
    honest warm run over the repaired store.  The contract is {e
    graceful degradation}: all three store-backed sweeps must render
    byte-identically to a store-less reference sweep (faults may cost
    recomputes, never results), and repair must leave the store
    clean. *)

type disk_run = {
  disk_plan : Fault.Plan.t;
  disk_events : int;  (** injected io faults that actually fired *)
  disk_store : Store.Disk.stats;  (** the faulted cold+warm runs' counters *)
  sweep_matches : bool;  (** both faulted sweeps == the reference *)
  fsck : Store.Fsck.report;  (** the [~repair:true] scan *)
  post_repair : Store.Disk.stats;  (** one honest warm run after repair *)
  post_repair_matches : bool;
}

type disk_report = {
  disk_seed : int;
  disk_runs : disk_run list;
}

val disk :
  ?seed:int -> ?plans:Fault.Plan.t list -> unit -> disk_report
(** Defaults: {!default_seed}, {!Fault.Catalog.disk}.  Each plan gets
    a fresh scratch store under the system temp directory, removed
    before returning. *)

val disk_violations : disk_report -> string list
(** Human-readable contract violations; empty iff {!disk_ok}. *)

val disk_ok : disk_report -> bool

val disk_to_json : disk_report -> string

val pp_disk : Format.formatter -> disk_report -> unit
