module Supervisor = Resilience.Supervisor
module Run_report = Resilience.Run_report

type leg_error = { stage : string; detail : string }

type leg_outcome = Ran of Run_report.t | Failed of leg_error

type leg = {
  leg_name : string;
  expected_items : int;
  outcome : leg_outcome;
}

type plan_run = {
  plan : Fault.Plan.t;
  events : int;
  legs : leg list;
}

type report = {
  seed : int;
  retry_max : int;
  runs : plan_run list;
  memo : Pfsm.Analysis.memo_stats;
}

let default_seed = 20021130

let matrix_items () =
  List.map
    (fun (app, entries) ->
       { Supervisor.id = "matrix:" ^ app;
         resource = app;
         work = (fun () -> List.length (entries ())) })
    Exploit.Consistency.app_groups
  @ [ { Supervisor.id = "matrix:lemma";
        resource = "lemma";
        work =
          (fun () ->
             if Exploit.Protection.lemma_holds () then 1
             else raise (Resilience.Quarantine.Reject "protection lemma broken")) } ]

let curated_csv = lazy (Vulndb.Csv.of_database (Vulndb.Seed_data.database ()))

let run_one ~config ~csv plan =
  Obs.Span.with_span ~cat:"chaos" ("plan:" ^ plan.Fault.Plan.name) @@ fun () ->
  let matrix_expected = List.length Exploit.Consistency.app_groups + 1 in
  let lint_expected = List.length Minic.Corpus.all in
  let ingest_expected =
    Vulndb.Database.size (Vulndb.Seed_data.database ())
  in
  let legs, events =
    Fault.Hooks.run plan (fun () ->
        let matrix =
          Supervisor.run ~label:"chaos-matrix" ~config (matrix_items ())
        in
        let _, lint = Staticcheck.Linter.supervised_sweep ~supervise:config () in
        let ingest =
          match Resilience.Ingest.csv ~label:"chaos-ingest" ~config csv with
          | Ok o -> Ran o.Resilience.Ingest.report
          | Error e ->
              (* A document-level ingest failure (the text does not
                 tokenise, the header is wrong) is a typed leg outcome,
                 not a [failwith]: the report renders it, [violations]
                 flags it, and the CLI maps it to exit 1 per the
                 exit-code contract instead of crashing with 125. *)
              Failed
                { stage = "ingest"; detail = Vulndb.Csv.error_to_string e }
        in
        [ { leg_name = "matrix";
            expected_items = matrix_expected;
            outcome = Ran matrix.Supervisor.report };
          { leg_name = "lint";
            expected_items = lint_expected;
            outcome = Ran lint };
          { leg_name = "ingest"; expected_items = ingest_expected;
            outcome = ingest } ])
  in
  { plan; events = List.length events; legs }

let run ?(seed = default_seed) ?(plans = Fault.Catalog.all)
    ?(config = Supervisor.default_config) ?csv () =
  (* Fresh memo per run: the report carries the counters, and [stable]
     byte-compares consecutive runs — a warm cache would skew the
     second run's numbers.  Plans fan out over the Par pool; each
     worker installs its own domain-local injector, so every plan's
     event stream is exactly the sequential one, and the memo counters
     stay deterministic because misses = distinct (model, scenario)
     digests regardless of which plan computes a shared key first. *)
  Pfsm.Analysis.memo_reset ();
  let csv = match csv with Some s -> s | None -> Lazy.force curated_csv in
  let runs =
    Par.map_list ~label:"chaos.plans"
      (fun (plan : Fault.Plan.t) ->
         let retry =
           { config.Supervisor.retry with
             Resilience.Retry.seed =
               seed lxor Hashtbl.hash plan.Fault.Plan.name }
         in
         run_one ~config:{ config with Supervisor.retry } ~csv plan)
      plans
  in
  { seed;
    retry_max = config.Supervisor.retry.Resilience.Retry.max_attempts;
    runs;
    memo = Pfsm.Analysis.memo_stats () }

let leg_violations retry_max (pr : plan_run) (l : leg) =
  let where =
    Printf.sprintf "plan %s, %s leg" pr.plan.Fault.Plan.name l.leg_name
  in
  match l.outcome with
  | Failed { stage; detail } ->
      [ Printf.sprintf "%s: LEG FAILED (%s: %s)" where stage detail ]
  | Ran report ->
      let lost =
        if Run_report.no_lost ~expected:l.expected_items report then []
        else
          [ Printf.sprintf "%s: LOST ITEMS (%d of %d accounted for)" where
              (Run_report.total report) l.expected_items ]
      in
      let unbounded =
        if Run_report.max_attempts report <= retry_max then []
        else
          [ Printf.sprintf
              "%s: UNBOUNDED RETRIES (%d attempts > policy max %d)" where
              (Run_report.max_attempts report)
              retry_max ]
      in
      lost @ unbounded

let violations r =
  List.concat_map
    (fun pr -> List.concat_map (leg_violations r.retry_max pr) pr.legs)
    r.runs

let no_lost_items r =
  List.for_all
    (fun pr ->
       List.for_all
         (fun l ->
           match l.outcome with
           | Failed _ -> false  (* every item of a failed leg is lost *)
           | Ran report -> Run_report.no_lost ~expected:l.expected_items report)
         pr.legs)
    r.runs

let bounded_retries r =
  List.for_all
    (fun pr ->
       List.for_all
         (fun l ->
           match l.outcome with
           | Failed _ -> true  (* nothing ran, nothing retried *)
           | Ran report -> Run_report.max_attempts report <= r.retry_max)
         pr.legs)
    r.runs

let ok r = violations r = []

let leg_to_json l =
  match l.outcome with
  | Ran report ->
      Printf.sprintf "{\"name\": \"%s\", \"expected\": %d, \"report\": %s}"
        l.leg_name l.expected_items (Run_report.to_json report)
  | Failed { stage; detail } ->
      Printf.sprintf
        "{\"name\": \"%s\", \"expected\": %d, \"failed\": {\"stage\": \
         \"%s\", \"detail\": \"%s\"}}"
        l.leg_name l.expected_items
        (Obs.Metrics.json_escape stage)
        (Obs.Metrics.json_escape detail)

let plan_run_to_json pr =
  Printf.sprintf
    "{\"plan\": \"%s\", \"benign\": %b, \"events\": %d, \"legs\": [%s]}"
    pr.plan.Fault.Plan.name pr.plan.Fault.Plan.benign pr.events
    (String.concat ", " (List.map leg_to_json pr.legs))

let to_json r =
  Printf.sprintf
    "{\"seed\": %d, \"retry_max\": %d, \"ok\": %b, \"memo\": {\"lookups\": \
     %d, \"hits\": %d, \"misses\": %d}, \"plans\": [%s]}"
    r.seed r.retry_max (ok r) r.memo.Pfsm.Analysis.lookups
    r.memo.Pfsm.Analysis.hits r.memo.Pfsm.Analysis.misses
    (String.concat ", " (List.map plan_run_to_json r.runs))

let stable ?seed ?plans () =
  to_json (run ?seed ?plans ()) = to_json (run ?seed ?plans ())

let pp_leg ppf l =
  match l.outcome with
  | Ran report ->
      Format.fprintf ppf
        "%-8s %2d items: %2d completed (%d retried), %2d quarantined, waited %d"
        l.leg_name (Run_report.total report)
        (Run_report.completed report)
        (Run_report.retried report)
        (Run_report.quarantined report)
        report.Run_report.waited
  | Failed { stage; detail } ->
      Format.fprintf ppf "%-8s FAILED (%s: %s)" l.leg_name stage detail

let pp ppf r =
  Format.fprintf ppf "@[<v>chaos: seed %d, %d plan%s@," r.seed
    (List.length r.runs)
    (if List.length r.runs = 1 then "" else "s");
  List.iter
    (fun pr ->
       Format.fprintf ppf "plan %-14s%s  %d fault event%s@,"
         pr.plan.Fault.Plan.name
         (if pr.plan.Fault.Plan.benign then " (benign)" else "")
         pr.events
         (if pr.events = 1 then "" else "s");
       List.iter (fun l -> Format.fprintf ppf "  %a@," pp_leg l) pr.legs)
    r.runs;
  Format.fprintf ppf "analysis memo: %d lookups, %d hits, %d misses@,"
    r.memo.Pfsm.Analysis.lookups r.memo.Pfsm.Analysis.hits
    r.memo.Pfsm.Analysis.misses;
  (match violations r with
   | [] -> Format.fprintf ppf "chaos: contract holds (no lost items, retries bounded)"
   | vs ->
       List.iter (fun v -> Format.fprintf ppf "%s@," v) vs;
       Format.fprintf ppf "chaos: CONTRACT VIOLATED");
  Format.fprintf ppf "@]"
