module Supervisor = Resilience.Supervisor
module Run_report = Resilience.Run_report

type leg_error = { stage : string; detail : string }

type leg_outcome = Ran of Run_report.t | Failed of leg_error

type leg = {
  leg_name : string;
  expected_items : int;
  outcome : leg_outcome;
}

type plan_run = {
  plan : Fault.Plan.t;
  events : int;
  legs : leg list;
}

type report = {
  seed : int;
  retry_max : int;
  runs : plan_run list;
  memo : Pfsm.Analysis.memo_stats;
}

let default_seed = 20021130

let matrix_items () =
  List.map
    (fun (app, entries) ->
       { Supervisor.id = "matrix:" ^ app;
         resource = app;
         work = (fun () -> List.length (entries ())) })
    Exploit.Consistency.app_groups
  @ [ { Supervisor.id = "matrix:lemma";
        resource = "lemma";
        work =
          (fun () ->
             if Exploit.Protection.lemma_holds () then 1
             else raise (Resilience.Quarantine.Reject "protection lemma broken")) } ]

let curated_csv = lazy (Vulndb.Csv.of_database (Vulndb.Seed_data.database ()))

let run_one ~config ~csv plan =
  Obs.Span.with_span ~cat:"chaos" ("plan:" ^ plan.Fault.Plan.name) @@ fun () ->
  let matrix_expected = List.length Exploit.Consistency.app_groups + 1 in
  let lint_expected = List.length Minic.Corpus.all in
  let ingest_expected =
    Vulndb.Database.size (Vulndb.Seed_data.database ())
  in
  let legs, events =
    Fault.Hooks.run plan (fun () ->
        let matrix =
          Supervisor.run ~label:"chaos-matrix" ~config (matrix_items ())
        in
        let _, lint = Staticcheck.Linter.supervised_sweep ~supervise:config () in
        let ingest =
          match Resilience.Ingest.csv ~label:"chaos-ingest" ~config csv with
          | Ok o -> Ran o.Resilience.Ingest.report
          | Error e ->
              (* A document-level ingest failure (the text does not
                 tokenise, the header is wrong) is a typed leg outcome,
                 not a [failwith]: the report renders it, [violations]
                 flags it, and the CLI maps it to exit 1 per the
                 exit-code contract instead of crashing with 125. *)
              Failed
                { stage = "ingest"; detail = Vulndb.Csv.error_to_string e }
        in
        [ { leg_name = "matrix";
            expected_items = matrix_expected;
            outcome = Ran matrix.Supervisor.report };
          { leg_name = "lint";
            expected_items = lint_expected;
            outcome = Ran lint };
          { leg_name = "ingest"; expected_items = ingest_expected;
            outcome = ingest } ])
  in
  { plan; events = List.length events; legs }

let run ?(seed = default_seed) ?(plans = Fault.Catalog.all)
    ?(config = Supervisor.default_config) ?csv () =
  (* Fresh memo per run: the report carries the counters, and [stable]
     byte-compares consecutive runs — a warm cache would skew the
     second run's numbers.  Plans fan out over the Par pool; each
     worker installs its own domain-local injector, so every plan's
     event stream is exactly the sequential one, and the memo counters
     stay deterministic because misses = distinct (model, scenario)
     digests regardless of which plan computes a shared key first. *)
  Pfsm.Analysis.memo_reset ();
  let csv = match csv with Some s -> s | None -> Lazy.force curated_csv in
  let runs =
    Par.map_list ~label:"chaos.plans"
      (fun (plan : Fault.Plan.t) ->
         let retry =
           { config.Supervisor.retry with
             Resilience.Retry.seed =
               seed lxor Hashtbl.hash plan.Fault.Plan.name }
         in
         run_one ~config:{ config with Supervisor.retry } ~csv plan)
      plans
  in
  { seed;
    retry_max = config.Supervisor.retry.Resilience.Retry.max_attempts;
    runs;
    memo = Pfsm.Analysis.memo_stats () }

let leg_violations retry_max (pr : plan_run) (l : leg) =
  let where =
    Printf.sprintf "plan %s, %s leg" pr.plan.Fault.Plan.name l.leg_name
  in
  match l.outcome with
  | Failed { stage; detail } ->
      [ Printf.sprintf "%s: LEG FAILED (%s: %s)" where stage detail ]
  | Ran report ->
      let lost =
        if Run_report.no_lost ~expected:l.expected_items report then []
        else
          [ Printf.sprintf "%s: LOST ITEMS (%d of %d accounted for)" where
              (Run_report.total report) l.expected_items ]
      in
      let unbounded =
        if Run_report.max_attempts report <= retry_max then []
        else
          [ Printf.sprintf
              "%s: UNBOUNDED RETRIES (%d attempts > policy max %d)" where
              (Run_report.max_attempts report)
              retry_max ]
      in
      lost @ unbounded

let violations r =
  List.concat_map
    (fun pr -> List.concat_map (leg_violations r.retry_max pr) pr.legs)
    r.runs

let no_lost_items r =
  List.for_all
    (fun pr ->
       List.for_all
         (fun l ->
           match l.outcome with
           | Failed _ -> false  (* every item of a failed leg is lost *)
           | Ran report -> Run_report.no_lost ~expected:l.expected_items report)
         pr.legs)
    r.runs

let bounded_retries r =
  List.for_all
    (fun pr ->
       List.for_all
         (fun l ->
           match l.outcome with
           | Failed _ -> true  (* nothing ran, nothing retried *)
           | Ran report -> Run_report.max_attempts report <= r.retry_max)
         pr.legs)
    r.runs

let ok r = violations r = []

let leg_to_json l =
  match l.outcome with
  | Ran report ->
      Printf.sprintf "{\"name\": \"%s\", \"expected\": %d, \"report\": %s}"
        l.leg_name l.expected_items (Run_report.to_json report)
  | Failed { stage; detail } ->
      Printf.sprintf
        "{\"name\": \"%s\", \"expected\": %d, \"failed\": {\"stage\": \
         \"%s\", \"detail\": \"%s\"}}"
        l.leg_name l.expected_items
        (Obs.Metrics.json_escape stage)
        (Obs.Metrics.json_escape detail)

let plan_run_to_json pr =
  Printf.sprintf
    "{\"plan\": \"%s\", \"benign\": %b, \"events\": %d, \"legs\": [%s]}"
    pr.plan.Fault.Plan.name pr.plan.Fault.Plan.benign pr.events
    (String.concat ", " (List.map leg_to_json pr.legs))

let to_json r =
  Printf.sprintf
    "{\"seed\": %d, \"retry_max\": %d, \"ok\": %b, \"memo\": {\"lookups\": \
     %d, \"hits\": %d, \"misses\": %d}, \"plans\": [%s]}"
    r.seed r.retry_max (ok r) r.memo.Pfsm.Analysis.lookups
    r.memo.Pfsm.Analysis.hits r.memo.Pfsm.Analysis.misses
    (String.concat ", " (List.map plan_run_to_json r.runs))

let stable ?seed ?plans () =
  to_json (run ?seed ?plans ()) = to_json (run ?seed ?plans ())

(* ---- the server soak leg ------------------------------------------ *)

type soak_run = {
  soak_plan : Fault.Plan.t;
  soak_events : int;
  lines_emitted : int;
  summary : Serve.Server.summary;
}

type soak_report = {
  soak_seed : int;
  script_lines : int;
  work_requests : int;
  expect_shed : int;
  expect_malformed : int;
  soak_runs : soak_run list;
}

let soak_config =
  { Serve.Server.default_config with
    Serve.Server.capacity = 4;
    max_line = 512 }

(* A canned request mix that exercises every server path: supervised
   work across request classes, retries (boom fault), quarantine (boom
   crash), stats, a burst past the admission bound (shedding), and
   malformed + oversized lines — all between explicit flush ticks so
   queue occupancy is a pure function of the script. *)
let soak_script () =
  [ "# chaos soak script";
    {|{"id":"w1","kind":"analyze","app":"sendmail"}|};
    {|{"id":"w2","kind":"exploit","app":"nullhttpd"}|};
    {|{"id":"w3","kind":"lint","target":"tTflag (vulnerable)"}|};
    {|{"id":"w4","kind":"boom","mode":"fault","times":2}|};
    {|{"kind":"flush"}|};
    {|{"id":"s1","kind":"stats"}|};
    "this line is not a request";
    {|{"id":"w5","kind":"boom","mode":"crash"}|};
    {|{"id":"w6","kind":"lint","target":"Log (fixed)"}|};
    {|{"kind":"flush"}|} ]
  @ List.init 8 (fun i ->
        Printf.sprintf {|{"id":"b%d","kind":"lint","target":"Log (vulnerable)"}|}
          (i + 1))
  @ [ {|{"id":"big","kind":"lint","target":"|} ^ String.make 600 'x' ^ {|"}|};
      {|{"id":"s2","kind":"stats","full":false}|};
      {|{"kind":"shutdown"}|} ]

let soak_work_requests = 6 + 8  (* w1-w6 plus the b1-b8 burst *)
let soak_expect_shed = 8 - soak_config.Serve.Server.capacity
let soak_expect_malformed = 2  (* the non-JSON line, the oversized line *)

let soak ?(seed = default_seed) ?(plans = Fault.Catalog.all)
    ?(config = soak_config) () =
  let script = soak_script () in
  let soak_runs =
    (* Same fan-out discipline as [run]: each pool worker installs its
       own domain-local injector, and the server skips speculation
       under an active injector, so every plan's response stream is
       exactly the sequential one. *)
    Par.map_list ~label:"chaos.soak"
      (fun (plan : Fault.Plan.t) ->
         let config =
           { config with
             Serve.Server.seed = seed lxor Hashtbl.hash plan.Fault.Plan.name }
         in
         let (lines, summary), events =
           Fault.Hooks.run plan (fun () ->
               Serve.Server.run_script ~config script)
         in
         { soak_plan = plan;
           soak_events = List.length events;
           lines_emitted = List.length lines;
           summary })
      plans
  in
  { soak_seed = seed;
    script_lines = List.length script;
    work_requests = soak_work_requests;
    expect_shed = soak_expect_shed;
    expect_malformed = soak_expect_malformed;
    soak_runs }

let soak_run_violations r (sr : soak_run) =
  let where = Printf.sprintf "plan %s, serve soak" sr.soak_plan.Fault.Plan.name in
  let s = sr.summary in
  let check cond msg = if cond then [] else [ Printf.sprintf "%s: %s" where msg ] in
  check (Serve.Server.accounted s)
    (Printf.sprintf
       "LOST REQUESTS (%d admitted, %d terminal responses)" s.Serve.Server.admitted
       (s.Serve.Server.completed + s.Serve.Server.errors
        + s.Serve.Server.deadlined + s.Serve.Server.quarantined))
  @ check s.Serve.Server.drained "NOT DRAINED (input ended with work queued)"
  @ check
      (s.Serve.Server.admitted + s.Serve.Server.shed = r.work_requests)
      (Printf.sprintf "LOST ADMISSION (%d + %d shed <> %d work requests)"
         s.Serve.Server.admitted s.Serve.Server.shed r.work_requests)
  @ check
      (s.Serve.Server.shed = r.expect_shed)
      (Printf.sprintf "SHED DRIFT (%d shed, expected %d)" s.Serve.Server.shed
         r.expect_shed)
  @ check
      (s.Serve.Server.malformed = r.expect_malformed)
      (Printf.sprintf "MALFORMED DRIFT (%d, expected %d)"
         s.Serve.Server.malformed r.expect_malformed)
  @ check
      (Run_report.no_lost ~expected:s.Serve.Server.admitted
         s.Serve.Server.report)
      "REPORT GAP (report items <> admitted requests)"
  @ check
      (Run_report.max_attempts s.Serve.Server.report
       <= soak_config.Serve.Server.retry.Resilience.Retry.max_attempts)
      "UNBOUNDED RETRIES"

let soak_violations r = List.concat_map (soak_run_violations r) r.soak_runs

let soak_ok r = soak_violations r = []

let soak_run_to_json sr =
  Printf.sprintf
    "{\"plan\": \"%s\", \"benign\": %b, \"events\": %d, \"lines\": %d, \
     \"summary\": %s}"
    sr.soak_plan.Fault.Plan.name sr.soak_plan.Fault.Plan.benign sr.soak_events
    sr.lines_emitted
    (Serve.Server.summary_to_json sr.summary)

let soak_to_json r =
  Printf.sprintf
    "{\"seed\": %d, \"ok\": %b, \"script_lines\": %d, \"work_requests\": %d, \
     \"plans\": [%s]}"
    r.soak_seed (soak_ok r) r.script_lines r.work_requests
    (String.concat ", " (List.map soak_run_to_json r.soak_runs))

let soak_stable ?seed ?plans () =
  soak_to_json (soak ?seed ?plans ()) = soak_to_json (soak ?seed ?plans ())

let pp_soak ppf r =
  Format.fprintf ppf "@[<v>chaos soak: seed %d, %d plan%s, %d-line script@,"
    r.soak_seed
    (List.length r.soak_runs)
    (if List.length r.soak_runs = 1 then "" else "s")
    r.script_lines;
  List.iter
    (fun sr ->
       let s = sr.summary in
       Format.fprintf ppf
         "plan %-14s%s  %2d admitted (%d ok, %d err, %d ddl, %d quar), %d \
          shed, %d malformed, %d fault event%s@,"
         sr.soak_plan.Fault.Plan.name
         (if sr.soak_plan.Fault.Plan.benign then " (benign)" else "")
         s.Serve.Server.admitted s.Serve.Server.completed
         s.Serve.Server.errors s.Serve.Server.deadlined
         s.Serve.Server.quarantined s.Serve.Server.shed
         s.Serve.Server.malformed sr.soak_events
         (if sr.soak_events = 1 then "" else "s"))
    r.soak_runs;
  (match soak_violations r with
   | [] ->
       Format.fprintf ppf
         "chaos soak: contract holds (zero lost requests, clean drain)"
   | vs ->
       List.iter (fun v -> Format.fprintf ppf "%s@," v) vs;
       Format.fprintf ppf "chaos soak: CONTRACT VIOLATED");
  Format.fprintf ppf "@]"

(* ---- the disk-fault leg ------------------------------------------- *)

type disk_run = {
  disk_plan : Fault.Plan.t;
  disk_events : int;
  disk_store : Store.Disk.stats;  (** the faulted cold+warm runs' counters *)
  sweep_matches : bool;
  fsck : Store.Fsck.report;
  post_repair : Store.Disk.stats;  (** one honest warm run after repair *)
  post_repair_matches : bool;
}

type disk_report = {
  disk_seed : int;
  disk_runs : disk_run list;
}

(* Scratch store directories under the system temp dir, one per plan
   run, removed afterwards.  [Filename.temp_file] gives a unique name
   without a unix dependency; the file is replaced by a directory. *)
let fresh_store_dir () =
  let path = Filename.temp_file "dfsm_store" "" in
  Sys.remove path;
  Store.Io.mkdir_p path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  end
  else Store.Io.remove_if_exists path

(* One plan: an honest reference sweep, then a cold and a warm sweep
   against a fresh store inside [Fault.Hooks.run] — every store write
   subject to the plan's io knobs, every corrupted record degrading to
   recompute — then [fsck ~repair:true] and one honest warm run over
   the repaired store.  The robustness contract is that both faulted
   sweeps and the post-repair sweep render byte-identically to the
   reference: injected durability faults may cost recomputes, never
   results. *)
let disk_run_one ~seed:_ plan =
  Obs.Span.with_span ~cat:"chaos" ("disk:" ^ plan.Fault.Plan.name) @@ fun () ->
  let reference = Staticcheck.Linter.sweep_to_json (Staticcheck.Linter.corpus_sweep ()) in
  let dir = fresh_store_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let (faulted_jsons, disk_store), events =
    Fault.Hooks.run plan (fun () ->
        let disk = Store.Disk.open_ ~dir in
        Store.Handle.with_store (Some disk) (fun () ->
            let cold =
              Staticcheck.Linter.sweep_to_json (Staticcheck.Linter.corpus_sweep ())
            in
            let warm =
              Staticcheck.Linter.sweep_to_json (Staticcheck.Linter.corpus_sweep ())
            in
            ([ cold; warm ], Store.Disk.stats disk)))
  in
  let fsck =
    let disk = Store.Disk.open_ ~dir in
    let r = Store.Fsck.scan ~repair:true disk in
    Store.Disk.close disk;
    r
  in
  let post_disk = Store.Disk.open_ ~dir in
  let post_json, post_repair =
    Store.Handle.with_store (Some post_disk) (fun () ->
        let j =
          Staticcheck.Linter.sweep_to_json (Staticcheck.Linter.corpus_sweep ())
        in
        (j, Store.Disk.stats post_disk))
  in
  { disk_plan = plan;
    disk_events = List.length events;
    disk_store;
    sweep_matches = List.for_all (String.equal reference) faulted_jsons;
    fsck;
    post_repair;
    post_repair_matches = String.equal reference post_json }

let disk ?(seed = default_seed) ?(plans = Fault.Catalog.disk) () =
  { disk_seed = seed; disk_runs = List.map (disk_run_one ~seed) plans }

let disk_run_violations (dr : disk_run) =
  let where = Printf.sprintf "plan %s, disk leg" dr.disk_plan.Fault.Plan.name in
  let check cond msg = if cond then [] else [ Printf.sprintf "%s: %s" where msg ] in
  check dr.sweep_matches "RESULT DRIFT (faulted store changed sweep output)"
  @ check (Store.Fsck.clean dr.fsck) "UNCLEAN STORE (fsck --repair left damage)"
  @ check dr.post_repair_matches
      "RESULT DRIFT (post-repair warm run changed sweep output)"
  @ check
      (dr.post_repair.Store.Disk.corrupt = 0)
      (Printf.sprintf "POST-REPAIR CORRUPTION (%d records)"
         dr.post_repair.Store.Disk.corrupt)

let disk_violations r = List.concat_map disk_run_violations r.disk_runs

let disk_ok r = disk_violations r = []

let disk_run_to_json dr =
  Printf.sprintf
    "{\"plan\": \"%s\", \"events\": %d, \"store\": %s, \"sweep_matches\": %b, \
     \"fsck\": %s, \"post_repair\": %s, \"post_repair_matches\": %b}"
    dr.disk_plan.Fault.Plan.name dr.disk_events
    (Store.Disk.stats_to_json dr.disk_store)
    dr.sweep_matches
    (Store.Fsck.to_json dr.fsck)
    (Store.Disk.stats_to_json dr.post_repair)
    dr.post_repair_matches

let disk_to_json r =
  Printf.sprintf "{\"seed\": %d, \"ok\": %b, \"plans\": [%s]}" r.disk_seed
    (disk_ok r)
    (String.concat ", " (List.map disk_run_to_json r.disk_runs))

let pp_disk ppf r =
  Format.fprintf ppf "@[<v>chaos disk: seed %d, %d plan%s@," r.disk_seed
    (List.length r.disk_runs)
    (if List.length r.disk_runs = 1 then "" else "s");
  List.iter
    (fun dr ->
       let s = dr.disk_store in
       Format.fprintf ppf
         "plan %-14s %2d fault event%s  %d hits, %d misses, %d corrupt, %d \
          repaired, %d writes (%d failed); fsck %s@,"
         dr.disk_plan.Fault.Plan.name dr.disk_events
         (if dr.disk_events = 1 then " " else "s")
         s.Store.Disk.hits s.Store.Disk.misses s.Store.Disk.corrupt
         s.Store.Disk.repaired s.Store.Disk.writes s.Store.Disk.write_failures
         (if Store.Fsck.clean dr.fsck then "clean" else "UNCLEAN"))
    r.disk_runs;
  (match disk_violations r with
   | [] ->
       Format.fprintf ppf
         "chaos disk: contract holds (byte-identical results under every \
          durability fault)"
   | vs ->
       List.iter (fun v -> Format.fprintf ppf "%s@," v) vs;
       Format.fprintf ppf "chaos disk: CONTRACT VIOLATED");
  Format.fprintf ppf "@]"

let pp_leg ppf l =
  match l.outcome with
  | Ran report ->
      Format.fprintf ppf
        "%-8s %2d items: %2d completed (%d retried), %2d quarantined, waited %d"
        l.leg_name (Run_report.total report)
        (Run_report.completed report)
        (Run_report.retried report)
        (Run_report.quarantined report)
        report.Run_report.waited
  | Failed { stage; detail } ->
      Format.fprintf ppf "%-8s FAILED (%s: %s)" l.leg_name stage detail

let pp ppf r =
  Format.fprintf ppf "@[<v>chaos: seed %d, %d plan%s@," r.seed
    (List.length r.runs)
    (if List.length r.runs = 1 then "" else "s");
  List.iter
    (fun pr ->
       Format.fprintf ppf "plan %-14s%s  %d fault event%s@,"
         pr.plan.Fault.Plan.name
         (if pr.plan.Fault.Plan.benign then " (benign)" else "")
         pr.events
         (if pr.events = 1 then "" else "s");
       List.iter (fun l -> Format.fprintf ppf "  %a@," pp_leg l) pr.legs)
    r.runs;
  Format.fprintf ppf "analysis memo: %d lookups, %d hits, %d misses@,"
    r.memo.Pfsm.Analysis.lookups r.memo.Pfsm.Analysis.hits
    r.memo.Pfsm.Analysis.misses;
  (match violations r with
   | [] -> Format.fprintf ppf "chaos: contract holds (no lost items, retries bounded)"
   | vs ->
       List.iter (fun v -> Format.fprintf ppf "%s@," v) vs;
       Format.fprintf ppf "chaos: CONTRACT VIOLATED");
  Format.fprintf ppf "@]"
