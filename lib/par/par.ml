(* Deterministic multicore runtime: a fixed-size domain pool with
   chunked, index-ordered map/filter_map.

   The determinism contract: for a pure item function [f], every entry
   of the result lands at the index of its input, so the reduced
   output is byte-identical to the sequential run for any job count —
   parallelism changes only the wall-clock, never the value.  Code
   whose meaning depends on execution order (an installed fault
   injector's PRNG stream, for instance) registers a serial guard and
   is transparently run sequentially in the calling domain. *)

(* ---- per-item seed splitting -------------------------------------- *)

module Seed = struct
  (* splitmix64 finalizer over (seed, index): child streams are
     decorrelated from the parent and from each other, and depend only
     on the pair — not on which domain runs the item or in what order.
     Seeded fan-outs must draw from a child stream per item, never
     from a shared generator. *)
  let mix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
              0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
              0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let child ~seed ~index =
    let golden = 0x9E3779B97F4A7C15L in
    let z =
      mix64 (Int64.add (Int64.of_int seed)
               (Int64.mul golden (Int64.of_int (index + 1))))
    in
    Int64.to_int (Int64.shift_right_logical z 2)
end

(* ---- job-count configuration -------------------------------------- *)

let max_jobs = 128

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | None -> Error (Printf.sprintf "invalid job count %S (expected an integer)" s)
  | Some n when n < 1 ->
      Error (Printf.sprintf "invalid job count %d (must be >= 1)" n)
  | Some n -> Ok (min n max_jobs)

let env_var = "DFSM_JOBS"

let jobs_from_env () =
  match Sys.getenv_opt env_var with
  | None -> Ok None
  | Some s -> (
      match parse_jobs s with
      | Ok n -> Ok (Some n)
      | Error e -> Error (env_var ^ ": " ^ e))

(* The configured job count.  [None] until first use; resolved from
   DFSM_JOBS, falling back to the hardware count.  A malformed
   environment value is ignored here (library users keep working); the
   CLI validates it up front via [configure] and exits 2. *)
let jobs_ref = ref None

let recommended () = min max_jobs (Domain.recommended_domain_count ())

let default_jobs () =
  match jobs_from_env () with
  | Ok (Some n) -> n
  | Ok None | Error _ -> recommended ()

let jobs () =
  match !jobs_ref with
  | Some n -> n
  | None ->
      let n = default_jobs () in
      jobs_ref := Some n;
      n

(* Process-unique tags for code that needs collision-free scratch
   names (e.g. a store's tmp files) while running on several pool
   domains at once: a plain counter would race, a per-domain counter
   would collide across domains. *)
let tag_counter = Atomic.make 0

let unique_tag () = Atomic.fetch_and_add tag_counter 1

(* ---- typed pool errors -------------------------------------------- *)

(* A result slot left empty after a completed job is a pool bug (the
   item was never run, or its write was lost).  It surfaces as a typed
   error carrying enough context to diagnose which worker claimed the
   item — never as a bare [assert false]. *)
exception Error of { batch : string; index : int; worker : int }

let () =
  Printexc.register_printer (function
    | Error { batch; index; worker } ->
        Some
          (Printf.sprintf
             "Par.Error: batch %S lost the result of item %d (claimed by %s)"
             batch index
             (if worker < 0 then "no worker" else "worker " ^ string_of_int worker))
    | _ -> None)

(* ---- trace hooks --------------------------------------------------- *)

(* Observability side-channel (used by Obs.Trace): called around every
   top-level map so a tracer can tag events with the item index that
   produced them and merge per-domain buffers back into input order.
   Hooks must be pure bookkeeping — they run on the hot path and must
   never raise. *)
type trace_hooks = {
  on_map_start : total:int -> unit;  (* submitting domain, before any item *)
  on_item : int -> unit;             (* running domain, before item [i] *)
  on_map_end : unit -> unit;         (* submitting domain, after reduction *)
}

let trace_hooks : trace_hooks option ref = ref None

let set_trace_hooks h = trace_hooks := Some h

(* ---- the domain pool ---------------------------------------------- *)

type job = {
  run : int -> unit;          (* total-abstinence: must never raise *)
  total : int;
  chunk : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  claimed : int array;        (* worker id that grabbed each index; -1 = nobody *)
}

type pool = {
  size : int;                          (* worker domains, = jobs - 1 *)
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : (int * job) option;  (* generation * job *)
  mutable generation : int;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
}

(* Set while a domain (worker or submitter) is inside a pool task:
   nested parallel maps degrade to sequential instead of deadlocking
   on the single shared pool. *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let entered () =
  let r = Domain.DLS.get in_task in
  let prev = !r in
  r := true;
  prev

let leave prev = Domain.DLS.get in_task := prev

let inside_task () = !(Domain.DLS.get in_task)

(* Worker identity, for diagnostics: pool workers are 1..size, the
   submitting domain is 0. *)
let worker_id : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let execute pool job =
  let prev = entered () in
  Fun.protect ~finally:(fun () -> leave prev) @@ fun () ->
  let me = !(Domain.DLS.get worker_id) in
  let n = job.total in
  let rec grab () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < n then begin
      let stop = min n (start + job.chunk) in
      for i = start to stop - 1 do
        job.claimed.(i) <- me;
        job.run i
      done;
      let finished =
        Atomic.fetch_and_add job.completed (stop - start) + (stop - start)
      in
      if finished = n then begin
        Mutex.lock pool.lock;
        pool.current <- None;
        Condition.broadcast pool.work_done;
        Mutex.unlock pool.lock
      end;
      grab ()
    end
  in
  grab ()

let rec worker_loop pool last_gen =
  Mutex.lock pool.lock;
  let rec await () =
    if pool.shutdown then None
    else
      match pool.current with
      | Some (g, job) when g <> last_gen -> Some (g, job)
      | Some _ | None ->
          Condition.wait pool.work_ready pool.lock;
          await ()
  in
  match await () with
  | None -> Mutex.unlock pool.lock
  | Some (g, job) ->
      Mutex.unlock pool.lock;
      execute pool job;
      worker_loop pool g

let spawn_pool ~size =
  let pool =
    { size;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      generation = 0;
      shutdown = false;
      workers = [] }
  in
  pool.workers <-
    List.init size (fun k ->
        Domain.spawn (fun () ->
            Domain.DLS.get worker_id := k + 1;
            worker_loop pool 0));
  pool

let the_pool : pool option ref = ref None

let teardown () =
  match !the_pool with
  | None -> ()
  | Some pool ->
      Mutex.lock pool.lock;
      pool.shutdown <- true;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.lock;
      List.iter Domain.join pool.workers;
      the_pool := None

let set_jobs n =
  if n < 1 then invalid_arg "Par.set_jobs: job count must be >= 1";
  let n = min n max_jobs in
  if !jobs_ref <> Some n then begin
    teardown ();
    jobs_ref := Some n
  end

let configure ?jobs:cli () =
  match cli with
  | Some n when n < 1 ->
      Stdlib.Error (Printf.sprintf "-j: invalid job count %d (must be >= 1)" n)
  | Some n ->
      set_jobs n;
      Ok (jobs ())
  | None -> (
      match jobs_from_env () with
      | Stdlib.Error e -> Stdlib.Error e
      | Ok (Some n) ->
          set_jobs n;
          Ok (jobs ())
      | Ok None ->
          set_jobs (recommended ());
          Ok (jobs ()))

let pool_for ~jobs:j =
  let size = j - 1 in
  match !the_pool with
  | Some p when p.size = size -> p
  | Some _ ->
      teardown ();
      let p = spawn_pool ~size in
      the_pool := Some p;
      p
  | None ->
      let p = spawn_pool ~size in
      the_pool := Some p;
      p

let jobs_env_help =
  "If set, DFSM_JOBS selects the worker-domain count for parallel batch \
   commands (same meaning as -j N; the explicit flag wins). Values must be \
   integers >= 1; invalid values are a usage error."

(* ---- serial guards ------------------------------------------------ *)

let serial_guards : (unit -> bool) list ref = ref []

let add_serial_guard g = serial_guards := g :: !serial_guards

let must_serialize () =
  inside_task () || List.exists (fun g -> g ()) !serial_guards

(* ---- ordered parallel maps ---------------------------------------- *)

let submit pool job =
  Mutex.lock pool.lock;
  while pool.current <> None do
    Condition.wait pool.work_done pool.lock
  done;
  pool.generation <- pool.generation + 1;
  pool.current <- Some (pool.generation, job);
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  execute pool job;
  Mutex.lock pool.lock;
  while
    (match pool.current with Some (_, j) -> j == job | None -> false)
  do
    Condition.wait pool.work_done pool.lock
  done;
  Mutex.unlock pool.lock

(* Test seam: when set to [Some i], the next parallel map blanks result
   slot [i] before reduction, forcing the missing-result path that a
   real pool bug would take.  Consumed (reset to [None]) on use. *)
module For_testing = struct
  let drop_result : int option ref = ref None
end

let map ?(label = "par.map") f xs =
  let n = Array.length xs in
  let j = jobs () in
  if n = 0 then [||]
  else begin
    (* Trace hooks fire for top-level maps only, and identically on the
       sequential and pooled paths — the emitted positions (and hence a
       trace merged from them) cannot depend on the job count. *)
    let top = not (inside_task ()) in
    let hooks = if top then !trace_hooks else None in
    (match hooks with Some h -> h.on_map_start ~total:n | None -> ());
    Fun.protect
      ~finally:(fun () -> match hooks with Some h -> h.on_map_end () | None -> ())
    @@ fun () ->
      if j <= 1 || n <= 1 || must_serialize () then begin
        (* Sequential run of a (possibly top-level) map: mark the items
           as in-task, exactly like [execute] does, so nested maps
           behave — and fire hooks — the same at every job count. *)
        let prev = entered () in
        Fun.protect ~finally:(fun () -> leave prev) @@ fun () ->
        Array.mapi
          (fun i x ->
            (match hooks with Some h -> h.on_item i | None -> ());
            f x)
          xs
      end
      else begin
        let results = Array.make n None in
        let errors = Array.make n None in
        let run i =
          (match hooks with Some h -> h.on_item i | None -> ());
          match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
        in
        let job =
          { run;
            total = n;
            chunk = max 1 (n / (j * 8));
            next = Atomic.make 0;
            completed = Atomic.make 0;
            claimed = Array.make n (-1) }
        in
        submit (pool_for ~jobs:j) job;
        (match !For_testing.drop_result with
         | Some i when i < n ->
             For_testing.drop_result := None;
             results.(i) <- None
         | _ -> ());
        (* deterministic error propagation: the lowest failing index wins,
           independent of which domain hit it first *)
        Array.iteri
          (fun _ o -> match o with Some e -> raise e | None -> ())
          errors;
        Array.mapi
          (fun i o ->
            match o with
            | Some v -> v
            | None ->
                raise (Error { batch = label; index = i; worker = job.claimed.(i) }))
          results
      end
  end

let filter_map ?label f xs =
  let opts = map ?label f xs in
  let kept = Array.to_list opts |> List.filter_map Fun.id in
  Array.of_list kept

let map_list ?label f xs = Array.to_list (map ?label f (Array.of_list xs))

let filter_map_list ?label f xs =
  Array.to_list (map ?label f (Array.of_list xs)) |> List.filter_map Fun.id
