(** Deterministic multicore runtime.

    A fixed-size domain pool with chunked, index-ordered [map] /
    [filter_map].  The contract: for a pure item function, the result
    is byte-identical to the sequential run for every job count —
    parallelism changes wall-clock time, never values.  Seeded
    fan-outs split a per-item child seed ({!Seed.child}) instead of
    sharing a PRNG stream; order-sensitive code (an active fault
    injector) registers a {!add_serial_guard} and transparently
    degrades to sequential execution. *)

module Seed : sig
  (** [child ~seed ~index] derives a non-negative per-item seed via a
      splitmix64 finalizer.  Depends only on [(seed, index)] — never on
      domain assignment or scheduling. *)
  val child : seed:int -> index:int -> int
end

val max_jobs : int
(** Upper clamp on any configured job count. *)

val env_var : string
(** ["DFSM_JOBS"]. *)

val parse_jobs : string -> (int, string) result
(** Parse a job count; [Error] for non-integers and values [< 1],
    values above {!max_jobs} are clamped. *)

val jobs_from_env : unit -> (int option, string) result
(** Read {!env_var}: [Ok None] when unset, [Ok (Some n)] when valid,
    [Error _] when malformed. *)

val jobs : unit -> int
(** The effective job count.  Resolved on first use from [DFSM_JOBS],
    falling back to [Domain.recommended_domain_count ()]; a malformed
    environment value is ignored here (the CLI rejects it up front via
    {!configure}). *)

val set_jobs : int -> unit
(** Set the job count (clamped to [1 .. max_jobs]); tears down and
    respawns the pool when the size changes.
    @raise Invalid_argument if [< 1]. *)

val configure : ?jobs:int -> unit -> (int, string) result
(** Resolve the job count for a CLI invocation: the explicit [?jobs]
    wins, else [DFSM_JOBS], else the hardware count.  Unlike {!jobs},
    a malformed environment value (or non-positive [?jobs]) is an
    [Error] — callers map it to exit code 2. *)

val jobs_env_help : string
(** One-line help text describing [DFSM_JOBS] for CLI man pages. *)

val unique_tag : unit -> int
(** A process-unique non-negative integer (atomic counter), safe to
    draw from any domain.  Used for collision-free scratch-file names
    (a store handle's tmp files) when several pool workers write
    concurrently — never for anything output-affecting, so determinism
    is untouched. *)

val add_serial_guard : (unit -> bool) -> unit
(** Register a predicate checked at every [map] entry; when any guard
    returns [true] the map runs sequentially in the calling domain.
    Used by [Fault.Hooks] so an active injector keeps its
    deterministic event stream. *)

exception Error of { batch : string; index : int; worker : int }
(** A pool invariant broke: after a completed job, the result slot of
    [index] in the batch labelled [batch] was empty (the item never
    ran, or its write was lost).  [worker] is the pool worker that
    claimed the item (0 = the submitting domain, [-1] = nobody).
    Diagnosable, unlike the [assert false] it replaces. *)

type trace_hooks = {
  on_map_start : total:int -> unit;  (** submitting domain, before any item *)
  on_item : int -> unit;  (** running domain, just before item [i] *)
  on_map_end : unit -> unit;  (** submitting domain, after reduction *)
}
(** Observability side-channel (registered by [Obs.Trace]): fires
    around every {e top-level} map — nested maps are silent — and
    identically on the sequential and pooled paths, so positions
    derived from the hooks never depend on the job count.  Hooks must
    be cheap bookkeeping and must never raise. *)

val set_trace_hooks : trace_hooks -> unit

val map : ?label:string -> ('a -> 'b) -> 'a array -> 'b array
(** Ordered parallel map: [map f xs] equals [Array.map f xs] for pure
    [f], chunked over the domain pool.  If any item raises, the
    exception of the lowest failing index is re-raised after all items
    settle.  Nested maps (from inside an item function) run
    sequentially.  [label] names the batch in a potential {!Error}.
    @raise Error on a lost result slot (a pool bug). *)

val filter_map : ?label:string -> ('a -> 'b option) -> 'a array -> 'b array

val map_list : ?label:string -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over lists, preserving order. *)

val filter_map_list : ?label:string -> ('a -> 'b option) -> 'a list -> 'b list

(** Test seam (unit tests only): force the missing-result path of the
    next pooled map. *)
module For_testing : sig
  val drop_result : int option ref
end

val teardown : unit -> unit
(** Join all pool domains.  Safe to call when no pool exists; a later
    map respawns on demand. *)
