(** C string and memory routines over simulated memory.

    These are the unbounded / bounded copy primitives whose misuse the
    paper's elementary activities hinge on: [strcpy] keeps writing
    until the source's NUL regardless of the destination size, while
    [strncpy] and [memcpy] honour an explicit bound. *)

val strcpy : Memory.t -> dst:Addr.t -> string -> unit
(** Copy the string up to its first NUL, plus a terminating NUL — no
    bound check; faults only at the edge of the address space. *)

val strncpy : Memory.t -> dst:Addr.t -> string -> n:int -> unit
(** Copy at most [n] bytes; NUL-terminates only when the source is
    shorter than [n] (true C semantics). *)

val memcpy : Memory.t -> dst:Addr.t -> src:string -> off:int -> len:int -> unit
(** Copy [len] bytes of [src] starting at [off]. *)

val strlen : Memory.t -> Addr.t -> int

val strcat : Memory.t -> dst:Addr.t -> string -> unit
(** Append to the NUL-terminated string at [dst] — unbounded. *)
