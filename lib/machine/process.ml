type jump_result =
  | Legit of string
  | Shellcode of string
  | Wild of Addr.t

type t = {
  mem : Memory.t;
  heap : Heap.t;
  stack : Stack.t;
  got : Got.t;
  mutable code_syms : (Addr.t * string) list;
  mutable next_code : Addr.t;
  mutable shellcode : (Addr.t * int * string) list;
  mutable data_next : Addr.t;
  data_limit : Addr.t;
  mutable globals : (string * (Addr.t * int)) list;
}

let mem_base = 0x10000
let mem_size = 0x60000
let got_base = 0x10000
let data_base = 0x11000
let data_limit = 0x14000
let heap_base = 0x20000
let heap_size = 0x20000
let stack_base = 0x50000
let stack_size = 0x20000
(* Chosen so that zeroing the low byte of a code address (strcpy's NUL
   terminator landing on a return slot) never yields another symbol. *)
let text_base = 0x08000155

(* Small deterministic hash for ASLR offsets: 16-byte aligned slides
   up to a page, independent per region, as the early PaX/ExecShield
   randomisation did.  The GOT is deliberately NOT slid: pre-PIE
   executables kept it at a fixed address, which is exactly why the
   paper's GOT-corruption exploits survived early ASLR. *)
let slide seed region =
  let h = (seed * 0x9e3779b9) lxor (region * 0x85ebca6b) in
  (h lsr 8) land 0xff0

let aslr_slide ~seed ~region = slide seed region

let create ?(safe_unlink = false) ?(stack_protection = Stack.No_protection)
    ?aslr_seed () =
  let off region = match aslr_seed with None -> 0 | Some s -> slide s region in
  let mem = Memory.create ~base:mem_base ~size:mem_size in
  { mem;
    heap =
      Heap.create mem ~base:(heap_base + off 1) ~size:(heap_size - 0x1000) ~safe_unlink;
    stack =
      Stack.create mem ~base:(stack_base + off 2) ~size:(stack_size - 0x1000)
        ~protection:stack_protection;
    got = Got.create mem ~base:got_base ~capacity:64;
    code_syms = [];
    next_code = text_base;
    shellcode = [];
    data_next = data_base + off 3;
    data_limit;
    globals = [] }

let mem t = t.mem
let heap t = t.heap
let stack t = t.stack
let got t = t.got

let register_function t name =
  let code = t.next_code in
  t.next_code <- t.next_code + 0x10;
  t.code_syms <- (code, name) :: t.code_syms;
  Got.register t.got name ~code

let code_addr t name =
  let rec look = function
    | [] -> invalid_arg ("Process.code_addr: unknown function " ^ name)
    | (a, n) :: rest -> if n = name then a else look rest
  in
  look t.code_syms

let align8 n = (n + 7) land lnot 7

let alloc_global t name size =
  if List.mem_assoc name t.globals then
    invalid_arg ("Process.alloc_global: duplicate " ^ name);
  let a = t.data_next in
  if a + size > t.data_limit then
    Fault.Condition.fail (Fault.Condition.Data_segment_full { requested = size });
  t.data_next <- a + align8 size;
  t.globals <- (name, (a, size)) :: t.globals;
  a

let lookup_global t name =
  match List.assoc_opt name t.globals with
  | Some g -> g
  | None -> invalid_arg ("Process.global: unknown global " ^ name)

let global t name = fst (lookup_global t name)

let global_size t name = snd (lookup_global t name)

let mark_shellcode t ~addr ~len ~label =
  t.shellcode <- (addr, len, label) :: t.shellcode

let classify_jump t addr =
  match List.assoc_opt addr t.code_syms with
  | Some name -> Legit name
  | None ->
      let in_range (a, len, _) = addr >= a && addr < a + len in
      (match List.find_opt in_range t.shellcode with
       | Some (_, _, label) -> Shellcode label
       | None -> Wild addr)

let call_via_got t name = classify_jump t (Got.resolve t.got name)

let pp_jump ppf = function
  | Legit name -> Format.fprintf ppf "call %s (legitimate)" name
  | Shellcode label -> Format.fprintf ppf "EXECUTE %s (attacker code)" label
  | Wild addr -> Format.fprintf ppf "jump to %a (wild -- crash)" Addr.pp addr
