(** Downward-growing call stack with frames laid out as on x86:
    saved return address above the locals, so that writing past the
    end of a stack buffer reaches (canary, then) the return address.

    Two of the paper's protection techniques are modelled directly:
    {ul
    {- [Stackguard]: a canary word sits between the locals and the
       saved return address and is checked on return ([15] in the
       paper);}
    {- [Split_stack]: the return address is kept in a shadow store the
       overflow cannot reach ([16], the authors' own defense).}} *)

type protection = No_protection | Stackguard | Split_stack

type t

type return_status =
  | Returned of Addr.t      (** control transfers to this address *)
  | Smashed_canary of { expected : int; found : int }

val create : Memory.t -> base:Addr.t -> size:int -> protection:protection -> t

val protection : t -> protection

val push_frame :
  t -> func:string -> ret_addr:Addr.t -> locals:(string * int) list -> unit
(** Locals are carved below the return slot in list order, each
    8-byte aligned; the first local ends nearest the return address. *)

val local_addr : t -> string -> Addr.t
(** Address of a named local in the current (innermost) frame. *)

val local_size : t -> string -> int

val ret_slot : t -> Addr.t
(** Address of the current frame's saved return address. *)

val ret_addr_intact : t -> bool
(** Whether the in-memory return address still matches the value
    saved at [push_frame] time. *)

val canary_intact : t -> bool
(** True when no canary is in use or the canary is unmodified. *)

val distance_to_ret : t -> string -> int
(** Bytes from the start of the named local to the return slot —
    how far an overflow must run to reach the return address. *)

val pop_frame : t -> return_status
(** Performs the protection checks and returns where control goes.
    Under [Split_stack] the shadow value is used, so the status is
    always [Returned original]. *)

val depth : t -> int
