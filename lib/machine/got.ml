type entry = { slot : Addr.t; code : Addr.t }

type t = {
  mem : Memory.t;
  base : Addr.t;
  capacity : int;
  mutable entries : (string * entry) list;
  mutable next : int;
}

let create mem ~base ~capacity =
  if not (Memory.in_bounds mem base (4 * capacity)) then
    invalid_arg "Got.create: region outside memory";
  { mem; base; capacity; entries = []; next = 0 }

let register t name ~code =
  if List.mem_assoc name t.entries then invalid_arg ("Got.register: duplicate " ^ name);
  if t.next >= t.capacity then
    Fault.Condition.fail (Fault.Condition.Got_full { capacity = t.capacity });
  let slot = t.base + (4 * t.next) in
  t.next <- t.next + 1;
  Memory.write_i32 t.mem slot code;
  t.entries <- (name, { slot; code }) :: t.entries

let entry t name =
  match List.assoc_opt name t.entries with
  | Some e -> e
  | None -> invalid_arg ("Got: unknown function " ^ name)

let slot_addr t name = (entry t name).slot

let original t name = (entry t name).code

let resolve t name = Memory.read_i32 t.mem (entry t name).slot

let unchanged t name = resolve t name = original t name

let names t = List.rev_map fst t.entries
