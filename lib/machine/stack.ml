type protection = No_protection | Stackguard | Split_stack

type frame = {
  func : string;
  ret_slot : Addr.t;
  canary_slot : Addr.t option;
  locals : (string * Addr.t * int) list;
  shadow_ret : Addr.t;
  canary_value : int;
  frame_floor : Addr.t;   (* sp value before this frame was pushed *)
}

type return_status =
  | Returned of Addr.t
  | Smashed_canary of { expected : int; found : int }

type t = {
  mem : Memory.t;
  base : Addr.t;
  protection : protection;
  mutable sp : Addr.t;
  mutable frames : frame list;
}

(* The canonical terminator canary used by StackGuard. *)
let canary_word = 0x000aff0d

let create mem ~base ~size ~protection =
  if not (Memory.in_bounds mem base size) then
    invalid_arg "Stack.create: region outside memory";
  { mem; base; protection; sp = base + size; frames = [] }

let protection t = t.protection

let align8 n = (n + 7) land lnot 7

let push t n =
  let a = t.sp - n in
  if a < t.base then
    Fault.Condition.fail (Fault.Condition.Stack_exhausted { requested = n });
  t.sp <- a;
  a

let push_frame t ~func ~ret_addr ~locals =
  let frame_floor = t.sp in
  let ret_slot = push t 4 in
  Memory.write_i32 t.mem ret_slot ret_addr;
  let canary_slot =
    match t.protection with
    | Stackguard ->
        let slot = push t 4 in
        Memory.write_i32 t.mem slot canary_word;
        Some slot
    | No_protection | Split_stack -> None
  in
  let local_of (name, size) =
    let a = push t (align8 size) in
    (name, a, size)
  in
  let placed = List.map local_of locals in
  t.frames <-
    { func; ret_slot; canary_slot; locals = placed;
      shadow_ret = ret_addr; canary_value = canary_word; frame_floor }
    :: t.frames

let current t =
  match t.frames with
  | [] -> invalid_arg "Stack: no frame"
  | f :: _ -> f

let find_local t name =
  let f = current t in
  let rec look = function
    | [] -> invalid_arg ("Stack: no local " ^ name ^ " in frame " ^ f.func)
    | (n, a, size) :: rest -> if n = name then (a, size) else look rest
  in
  look f.locals

let local_addr t name = fst (find_local t name)

let local_size t name = snd (find_local t name)

let ret_slot t = (current t).ret_slot

let ret_addr_intact t =
  let f = current t in
  Memory.read_i32 t.mem f.ret_slot = f.shadow_ret

let canary_intact t =
  let f = current t in
  match f.canary_slot with
  | None -> true
  | Some slot -> Memory.read_i32 t.mem slot = f.canary_value

let distance_to_ret t name =
  let a, _ = find_local t name in
  (ret_slot t) - a

let pop_frame t =
  let f = current t in
  t.frames <- List.tl t.frames;
  t.sp <- f.frame_floor;
  let canary_ok =
    match f.canary_slot with
    | None -> None
    | Some slot ->
        let found = Memory.read_i32 t.mem slot in
        if found = f.canary_value then None
        else Some (Smashed_canary { expected = f.canary_value; found })
  in
  match canary_ok with
  | Some smashed -> smashed
  | None ->
      (match t.protection with
       | Split_stack -> Returned f.shadow_ret
       | No_protection | Stackguard -> Returned (Memory.read_i32 t.mem f.ret_slot))

let depth t = List.length t.frames
