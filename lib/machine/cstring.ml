let strcpy mem ~dst s =
  (* True C semantics: copy stops at the first NUL in the source. *)
  let s = match String.index_opt s '\000' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  Memory.write_string mem dst s;
  Memory.write_u8 mem (dst + String.length s) 0

let strncpy mem ~dst s ~n =
  let copy = min n (String.length s) in
  Memory.write_string mem dst (String.sub s 0 copy);
  if copy < n then Memory.write_u8 mem (dst + copy) 0

let memcpy mem ~dst ~src ~off ~len =
  Memory.write_string mem dst (String.sub src off len)

let strlen mem a = String.length (Memory.read_cstring mem a)

let strcat mem ~dst s =
  let existing = strlen mem dst in
  strcpy mem ~dst:(dst + existing) s
