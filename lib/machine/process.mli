(** A complete simulated process image: one flat memory holding the
    GOT, a global data segment, the heap and the stack, plus a text
    segment of registered functions living {e outside} writable
    memory (so code itself cannot be overwritten, as on a real
    system with W^X text pages).

    The memory map is fixed:

    {v
      0x08000000+   code symbols (not writable, not in Memory)
      0x10000       GOT (64 slots)
      0x11000       global data segment (bump-allocated)
      0x20000       heap
      0x50000       stack (grows down from 0x70000)
    v} *)

type t

type jump_result =
  | Legit of string         (** original code of a registered function *)
  | Shellcode of string     (** attacker-staged code ("Mcode") *)
  | Wild of Addr.t          (** neither — a crash in practice *)

val create :
  ?safe_unlink:bool ->
  ?stack_protection:Stack.protection ->
  ?aslr_seed:int ->
  unit ->
  t
(** Defaults model the 2002-era target: unsafe unlink, no stack
    protection, no ASLR.  [aslr_seed] slides the heap, stack and data
    segments by deterministic 16-byte-aligned offsets — but not the
    GOT, which pre-PIE executables kept fixed (which is why the
    paper's GOT-corruption exploits survived early ASLR). *)

val aslr_slide : seed:int -> region:int -> int
(** The deterministic slide [create ~aslr_seed] applies to a region
    (1 = heap, 2 = stack, 3 = data); exposed so experiments can pick
    seeds with non-degenerate slides. *)

val mem : t -> Memory.t

val heap : t -> Heap.t

val stack : t -> Stack.t

val got : t -> Got.t

val register_function : t -> string -> unit
(** Assign a text address to [name] and create its GOT entry. *)

val code_addr : t -> string -> Addr.t

val alloc_global : t -> string -> int -> Addr.t
(** Carve a named object out of the data segment (e.g. [tTvect]). *)

val global : t -> string -> Addr.t

val global_size : t -> string -> int

val mark_shellcode : t -> addr:Addr.t -> len:int -> label:string -> unit
(** Declare that the bytes at [addr..addr+len) are attacker code; a
    jump landing in the range counts as executing it. *)

val classify_jump : t -> Addr.t -> jump_result

val call_via_got : t -> string -> jump_result
(** Look the function up through the (possibly corrupted) GOT and
    report where control lands — the paper's elementary activity
    "execute code referred by a function pointer". *)

val pp_jump : Format.formatter -> jump_result -> unit
