type t = Bytes.t

let create n ~fill = Bytes.make n fill

let length = Bytes.length

let set_i32 t ~off v = Bytes.set_int32_le t off (Int32.of_int v)

let set_string t ~off s = Bytes.blit_string s 0 t off (String.length s)

let to_string = Bytes.to_string

let repeat s n =
  let b = Buffer.create (String.length s * n) in
  for _ = 1 to n do Buffer.add_string b s done;
  Buffer.contents b

let pattern n =
  let b = Buffer.create n in
  let letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  let i = ref 0 in
  while Buffer.length b < n do
    let block = Printf.sprintf "%c%c%02d" letters.[!i / 26 mod 26] letters.[!i mod 26] (!i mod 100) in
    Buffer.add_string b block;
    incr i
  done;
  Buffer.sub b 0 n
