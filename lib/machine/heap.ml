exception Corruption_detected of { chunk : Addr.t }

exception Double_free of { user : Addr.t }

let header_size = 8

let min_chunk = 16

let bk_field_offset = 12

type t = {
  mem : Memory.t;
  base : Addr.t;          (* bin sentinel lives at [base] *)
  heap_limit : Addr.t;
  safe_unlink : bool;
  mutable top : Addr.t;   (* start of the unallocated wilderness *)
}

let memory t = t.mem

let chunk_of_user user = user - header_size

let user_of_chunk chunk = chunk + header_size

let fd_addr ~chunk = chunk + 8

let bk_addr ~chunk = chunk + bk_field_offset

let size_field t chunk = Memory.read_i32 t.mem (chunk + 4)

let chunk_size t ~chunk = size_field t chunk land lnot 1

let is_in_use t ~chunk = size_field t chunk land 1 = 1

let set_size t chunk ~size ~in_use =
  Memory.write_i32 t.mem (chunk + 4) (size lor (if in_use then 1 else 0))

let set_prev_size t chunk v = Memory.write_i32 t.mem chunk v

let fd t chunk = Memory.read_i32 t.mem (fd_addr ~chunk)

let bk t chunk = Memory.read_i32 t.mem (bk_addr ~chunk)

let set_fd t chunk v = Memory.write_i32 t.mem (fd_addr ~chunk) v

let set_bk t chunk v = Memory.write_i32 t.mem (bk_addr ~chunk) v

let bin t = t.base

let create mem ~base ~size ~safe_unlink =
  if size < min_chunk * 2 then invalid_arg "Heap.create: region too small";
  if not (Memory.in_bounds mem base size) then
    invalid_arg "Heap.create: region outside memory";
  let t = { mem; base; heap_limit = base + size; safe_unlink; top = base + min_chunk } in
  (* Empty circular free list: the bin points to itself. *)
  set_size t (bin t) ~size:min_chunk ~in_use:true;
  set_fd t (bin t) (bin t);
  set_bk t (bin t) (bin t);
  t

let align8 n = (n + 7) land lnot 7

let request_size n = max min_chunk (align8 (n + header_size))

(* The historically unsafe unlink macro: FD->bk = BK; BK->fd = FD.
   With [safe_unlink] the glibc 2.3.4-era integrity check runs first. *)
let unlink t chunk =
  let fd_v = fd t chunk and bk_v = bk t chunk in
  if t.safe_unlink then begin
    let ok =
      Memory.in_bounds t.mem fd_v min_chunk
      && Memory.in_bounds t.mem bk_v min_chunk
      && bk t fd_v = chunk
      && fd t bk_v = chunk
    in
    if not ok then raise (Corruption_detected { chunk })
  end;
  Memory.write_i32 t.mem (bk_addr ~chunk:fd_v) bk_v;
  Memory.write_i32 t.mem (fd_addr ~chunk:bk_v) fd_v

let insert_free t chunk =
  let head = fd t (bin t) in
  set_fd t chunk head;
  set_bk t chunk (bin t);
  set_bk t head chunk;
  set_fd t (bin t) chunk

let iter_free_bounded t f =
  let rec go cursor steps =
    if steps > 0 && cursor <> bin t
       && Memory.in_bounds t.mem cursor min_chunk
    then begin
      f cursor;
      go (fd t cursor) (steps - 1)
    end
  in
  go (fd t (bin t)) 1024

let free_list t =
  let acc = ref [] in
  iter_free_bounded t (fun c -> acc := c :: !acc);
  List.rev !acc

let free_list_consistent t =
  let ok = ref true in
  iter_free_bounded t (fun c ->
      let fd_v = fd t c and bk_v = bk t c in
      let link_ok probe =
        Memory.in_bounds t.mem probe min_chunk in
      if not (link_ok fd_v && link_ok bk_v && bk t fd_v = c && fd t bk_v = c)
      then ok := false);
  !ok

let split_or_take t chunk ~csize ~req =
  let remainder = csize - req in
  if remainder >= min_chunk then begin
    let rest = chunk + req in
    set_size t chunk ~size:req ~in_use:true;
    set_size t rest ~size:remainder ~in_use:false;
    set_prev_size t rest req;
    insert_free t rest
  end
  else set_size t chunk ~size:csize ~in_use:true

let find_fit t req =
  let found = ref None in
  iter_free_bounded t (fun c ->
      if !found = None && chunk_size t ~chunk:c >= req then found := Some c);
  !found

let malloc t n =
  if n <= 0 then None
  else
    let req = request_size n in
    if Fault.Hooks.heap_alloc_fails ~requested:req then
      Fault.Condition.fail (Fault.Condition.Heap_exhausted { requested = req });
    match find_fit t req with
    | Some chunk ->
        unlink t chunk;
        split_or_take t chunk ~csize:(chunk_size t ~chunk) ~req;
        Some (user_of_chunk chunk)
    | None ->
        if t.top + req <= t.heap_limit then begin
          let chunk = t.top in
          t.top <- t.top + req;
          set_prev_size t chunk 0;
          set_size t chunk ~size:req ~in_use:true;
          Some (user_of_chunk chunk)
        end
        else None

let calloc t ~count ~size =
  (* 32-bit product, as computed by the C code of the era (no overflow
     check existed before glibc 2.1.92). *)
  let bytes = Int32.to_int (Int32.mul (Int32.of_int count) (Int32.of_int size)) in
  match malloc t bytes with
  | None -> None
  | Some user ->
      Memory.fill t.mem user bytes '\000';
      Some user

let next_chunk t ~chunk =
  let next = chunk + chunk_size t ~chunk in
  if next >= chunk + min_chunk && next + min_chunk <= t.top then Some next else None

let free t user =
  let chunk = chunk_of_user user in
  if not (is_in_use t ~chunk) then raise (Double_free { user });
  let csize = ref (chunk_size t ~chunk) in
  (* Forward coalesce: if the physically next chunk is free, unlink it
     and absorb it.  When an overflow has rewritten that chunk's
     fd/bk, this unlink IS the attacker's arbitrary 4-byte write. *)
  (match next_chunk t ~chunk with
   | Some next when not (is_in_use t ~chunk:next) ->
       unlink t next;
       csize := !csize + chunk_size t ~chunk:next
   | Some _ | None -> ());
  set_size t chunk ~size:!csize ~in_use:false;
  insert_free t chunk

let usable_size t ~user = chunk_size t ~chunk:(chunk_of_user user) - header_size

let realloc t user n =
  match malloc t n with
  | None -> None
  | Some fresh ->
      let copy = min (usable_size t ~user) n in
      let bytes = Memory.read_bytes t.mem user copy in
      Memory.write_string t.mem fresh bytes;
      free t user;
      Some fresh

type issue =
  | Bad_chunk_size of { chunk : Addr.t; size : int }
  | Chunks_overrun_top of { chunk : Addr.t }
  | Free_bit_mismatch of { chunk : Addr.t }
  | Broken_free_link of { chunk : Addr.t }

let validate t =
  let issues = ref [] in
  let push i = issues := i :: !issues in
  (* Pass 1: the physical arena must tile exactly up to [top]. *)
  let free_set = free_list t in
  let rec walk chunk =
    if chunk < t.top then begin
      let size = chunk_size t ~chunk in
      if size < min_chunk || size land 7 <> 0 then push (Bad_chunk_size { chunk; size })
      else if chunk + size > t.top then push (Chunks_overrun_top { chunk })
      else begin
        let on_list = List.mem chunk free_set in
        let marked_free = not (is_in_use t ~chunk) in
        if chunk <> bin t && marked_free <> on_list then
          push (Free_bit_mismatch { chunk });
        walk (chunk + size)
      end
    end
  in
  walk t.base;
  (* Pass 2: the free list's links must be mutually consistent. *)
  List.iter
    (fun chunk ->
       let link_ok probe = Memory.in_bounds t.mem probe min_chunk in
       let fd_v = fd t chunk and bk_v = bk t chunk in
       if not (link_ok fd_v && link_ok bk_v && bk t fd_v = chunk && fd t bk_v = chunk)
       then push (Broken_free_link { chunk }))
    free_set;
  List.rev !issues

let pp_issue ppf = function
  | Bad_chunk_size { chunk; size } ->
      Format.fprintf ppf "chunk %a has nonsense size %d" Addr.pp chunk size
  | Chunks_overrun_top { chunk } ->
      Format.fprintf ppf "chunk %a runs past the top of the arena" Addr.pp chunk
  | Free_bit_mismatch { chunk } ->
      Format.fprintf ppf "chunk %a free bit disagrees with the free list" Addr.pp chunk
  | Broken_free_link { chunk } ->
      Format.fprintf ppf "free chunk %a has inconsistent fd/bk links" Addr.pp chunk
