type fault_kind = Read | Write

exception Fault of { addr : Addr.t; kind : fault_kind }

type t = { data : Bytes.t; base : Addr.t }

let create ~base ~size =
  if size <= 0 then invalid_arg "Memory.create: size must be positive";
  { data = Bytes.make size '\000'; base }

let base t = t.base

let size t = Bytes.length t.data

let limit t = t.base + Bytes.length t.data

let in_bounds t a n =
  n >= 0 && a >= t.base && a + n <= limit t

let check t a n kind = if not (in_bounds t a n) then raise (Fault { addr = a; kind })

let offset t a = a - t.base

let read_u8 t a =
  check t a 1 Read;
  Char.code (Bytes.get t.data (offset t a))

let write_u8 t a v =
  check t a 1 Write;
  Bytes.set t.data (offset t a) (Char.chr (v land 0xff))

let read_i32 t a =
  check t a 4 Read;
  let v = Int32.to_int (Bytes.get_int32_le t.data (offset t a)) in
  v

let write_i32 t a v =
  check t a 4 Write;
  Bytes.set_int32_le t.data (offset t a) (Int32.of_int v)

let read_bytes t a n =
  check t a n Read;
  Bytes.sub_string t.data (offset t a) n

let write_string t a s =
  check t a (String.length s) Write;
  let s = Fault.Hooks.mangle s in
  Bytes.blit_string s 0 t.data (offset t a) (String.length s)

let fill t a n c =
  check t a n Write;
  Bytes.fill t.data (offset t a) n c

let read_cstring t a =
  let lim = limit t in
  let rec scan i =
    if i >= lim then raise (Fault { addr = i; kind = Read })
    else if Bytes.get t.data (offset t i) = '\000' then i
    else scan (i + 1)
  in
  let stop = scan a in
  read_bytes t a (stop - a)

let snapshot t = Bytes.to_string t.data

let diff_ranges ~before ~after ~base =
  if String.length before <> String.length after then
    invalid_arg "Memory.diff_ranges: snapshots of different sizes";
  let n = String.length before in
  let rec collect i acc =
    if i >= n then List.rev acc
    else if before.[i] = after.[i] then collect (i + 1) acc
    else
      let rec run j = if j < n && before.[j] <> after.[j] then run (j + 1) else j in
      let stop = run i in
      collect stop ((base + i, stop - i) :: acc)
  in
  collect 0 []
