(** Flat byte-addressable memory for the simulated process.

    A memory is a single contiguous range [\[base, base + size)].
    Reads and writes outside the range raise {!Fault}, modelling a
    segmentation fault.  32-bit values are stored little-endian in
    two's complement, matching the x86 processes the paper's exploits
    target. *)

type t

type fault_kind = Read | Write

exception Fault of { addr : Addr.t; kind : fault_kind }

val create : base:Addr.t -> size:int -> t
(** Fresh zeroed memory covering [\[base, base + size)]. *)

val base : t -> Addr.t

val size : t -> int

val limit : t -> Addr.t
(** One past the last valid address. *)

val in_bounds : t -> Addr.t -> int -> bool
(** [in_bounds t a n] is true when the [n]-byte range at [a] lies
    entirely inside the memory. *)

val read_u8 : t -> Addr.t -> int

val write_u8 : t -> Addr.t -> int -> unit

val read_i32 : t -> Addr.t -> int
(** Signed 32-bit little-endian load (result in [-2^31, 2^31)). *)

val write_i32 : t -> Addr.t -> int -> unit
(** Signed 32-bit little-endian store; the value is truncated to its
    low 32 bits first, exactly as a C [int] store. *)

val read_bytes : t -> Addr.t -> int -> string

val write_string : t -> Addr.t -> string -> unit

val fill : t -> Addr.t -> int -> char -> unit

val read_cstring : t -> Addr.t -> string
(** Bytes from [a] up to (not including) the first NUL; faults if the
    string runs off the end of memory. *)

val snapshot : t -> string
(** Copy of the whole memory contents, for corruption diffing. *)

val diff_ranges : before:string -> after:string -> base:Addr.t -> (Addr.t * int) list
(** Maximal contiguous ranges (address, length) whose bytes differ. *)
