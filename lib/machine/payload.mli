(** Attack payload construction.

    Exploit strings interleave filler bytes with little-endian 32-bit
    values placed at exact offsets (fake chunk headers, overwritten
    pointers, return addresses).  This module builds them the way
    published exploit code does. *)

type t

val create : int -> fill:char -> t

val length : t -> int

val set_i32 : t -> off:int -> int -> unit
(** Embed a little-endian 32-bit value at byte offset [off]. *)

val set_string : t -> off:int -> string -> unit

val to_string : t -> string

val repeat : string -> int -> string
(** [repeat s n] — [s] concatenated [n] times (e.g. ["%x"] floods). *)

val pattern : int -> string
(** De Bruijn-ish cyclic pattern of the given length, handy for
    locating offsets in tests. *)
