type t = int

let null = 0

let add a off = a + off

let diff a b = a - b

let is_null a = a = 0

let pp ppf a = Format.fprintf ppf "0x%08x" a

let to_string a = Format.asprintf "%a" pp a
