(** Boundary-tag heap allocator in the style of GNU libc 2.x (dlmalloc).

    Chunk layout, matching the paper's Figure 4 narrative:

    {v
      chunk+0   prev_size        (size of previous chunk, if free)
      chunk+4   size | IN_USE    (bit 0 set while allocated)
      chunk+8   user data ...    (fd when free)
      chunk+12  ...              (bk when free)
    v}

    Free chunks live on a circular doubly-linked list threaded
    {e through memory}, so an attacker who overflows a buffer into the
    following free chunk controls its [fd]/[bk] fields.  Removing such
    a chunk from the list executes the classic unlink write
    [FD->bk = BK; BK->fd = FD] — a write of an attacker-chosen value
    to an attacker-chosen address.  This is exactly the primitive the
    NULL HTTPD exploit (Bugtraq #5774/#6255) uses to corrupt the GOT
    entry of [free].

    [safe_unlink:true] enables the integrity check added to later
    glibc versions ([FD->bk == P && BK->fd == P]); with it the exploit
    is foiled and {!Corruption_detected} is raised instead. *)

type t

exception Corruption_detected of { chunk : Addr.t }
(** Raised by the safe-unlink check on an inconsistent free chunk. *)

exception Double_free of { user : Addr.t }

val create : Memory.t -> base:Addr.t -> size:int -> safe_unlink:bool -> t
(** Manage [\[base, base + size)] of the given memory as a heap. *)

val memory : t -> Memory.t

val malloc : t -> int -> Addr.t option
(** [malloc t n] returns the user pointer of a fresh chunk able to
    hold [n] bytes, or [None] when the heap is exhausted or [n <= 0]. *)

val calloc : t -> count:int -> size:int -> Addr.t option
(** C semantics: allocates [count * size] bytes (product truncated to
    32 bits, as in the vulnerable era) and zeroes them. *)

val free : t -> Addr.t -> unit
(** Return a chunk to the free list, coalescing with free neighbours
    via unlink.  The unlink writes go through {!Memory} and are
    therefore subject to corruption by earlier overflows. *)

val realloc : t -> Addr.t -> int -> Addr.t option
(** Grow/shrink: allocate, copy the overlapping prefix, free the old
    chunk.  [None] leaves the original allocation untouched. *)

(** {2 Integrity checking} *)

type issue =
  | Bad_chunk_size of { chunk : Addr.t; size : int }
  | Chunks_overrun_top of { chunk : Addr.t }
  | Free_bit_mismatch of { chunk : Addr.t }
  | Broken_free_link of { chunk : Addr.t }

val validate : t -> issue list
(** Walk the whole chunk arena and the free list; an empty list means
    the heap metadata is self-consistent.  A successful unlink attack
    leaves issues behind — this is the detector a hardened allocator
    would run. *)

val pp_issue : Format.formatter -> issue -> unit

(** {2 Introspection (used by exploits, models and tests)} *)

val request_size : int -> int
(** Total chunk size (header included, 8-byte aligned, minimum 16)
    that [malloc n] will carve — lets exploits predict layout. *)

val chunk_of_user : Addr.t -> Addr.t

val user_of_chunk : Addr.t -> Addr.t

val fd_addr : chunk:Addr.t -> Addr.t
(** Address of the [fd] field of a (free) chunk. *)

val bk_addr : chunk:Addr.t -> Addr.t

val bk_field_offset : int
(** Offset of [bk] from the chunk base (the "offset of field bk" in
    the paper's footnote 7). *)

val chunk_size : t -> chunk:Addr.t -> int

val is_in_use : t -> chunk:Addr.t -> bool

val usable_size : t -> user:Addr.t -> int

val next_chunk : t -> chunk:Addr.t -> Addr.t option
(** Physically following chunk, if still inside the allocated area. *)

val free_list : t -> Addr.t list
(** Chunks currently on the (in-memory) free list, excluding the bin
    sentinel; traversal is bounded so a corrupted list terminates. *)

val free_list_consistent : t -> bool
(** Whether every free-list link satisfies [fd->bk = self] and
    [bk->fd = self]. *)
