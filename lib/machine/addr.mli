(** Machine addresses.

    Addresses are plain integers into the simulated flat address
    space; this module only centralises formatting and arithmetic so
    that call sites read like the exploit write-ups they model. *)

type t = int

val null : t

val add : t -> int -> t

val diff : t -> t -> int

val is_null : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
