(** The Global Offset Table of the simulated process.

    As in position-independent ELF binaries, every call to a library
    function indirects through a writable in-memory slot holding the
    function's address (footnote 4 of the paper).  Exploits corrupt a
    slot so a later call jumps to attacker code; the paper's
    reference-consistency pFSMs ask precisely "is the GOT entry of
    [f] unchanged?". *)

type t

val create : Memory.t -> base:Addr.t -> capacity:int -> t

val register : t -> string -> code:Addr.t -> unit
(** Bind a function name to its code address; allocates the next slot
    and initialises it, as the dynamic loader would. *)

val slot_addr : t -> string -> Addr.t
(** The address of the slot itself — what an arbitrary-write exploit
    targets ([&addr_free], [&addr_setuid]). *)

val original : t -> string -> Addr.t
(** The address the loader stored at startup. *)

val resolve : t -> string -> Addr.t
(** Current slot contents — where a call through the GOT would jump. *)

val unchanged : t -> string -> bool
(** The reference-consistency predicate: slot still holds the
    loader's value. *)

val names : t -> string list
