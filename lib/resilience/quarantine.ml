type cause =
  | Retries_exhausted of { attempts : int; last : Fault.Condition.t }
  | Breaker_open of { resource : string }
  | Deadline_exceeded of { spent : int }
  | Rejected of { detail : string }
  | Crash of { exn : string }

exception Reject of string

let retryable = function
  | Retries_exhausted _ | Breaker_open _ | Deadline_exceeded _ -> true
  | Rejected _ | Crash _ -> false

let cause_to_string = function
  | Retries_exhausted { attempts; last } ->
      Printf.sprintf "retries exhausted after %d attempt%s, last fault: %s"
        attempts (if attempts = 1 then "" else "s")
        (Fault.Condition.to_string last)
  | Breaker_open { resource } ->
      Printf.sprintf "circuit breaker open for resource %s" resource
  | Deadline_exceeded { spent } ->
      Printf.sprintf "deadline exceeded after %d fuel units" spent
  | Rejected { detail } -> Printf.sprintf "rejected: %s" detail
  | Crash { exn } -> Printf.sprintf "crash: %s" exn

let pp_cause ppf c = Format.pp_print_string ppf (cause_to_string c)

type 'a entry = { id : string; item : 'a; attempts : int; cause : cause }

type 'a t = { mutable rev_entries : 'a entry list }

let create () = { rev_entries = [] }

let m_isolated = Obs.Metrics.counter "resilience.quarantine.isolated"

let isolate t ~id ~item ~attempts cause =
  Obs.Metrics.incr m_isolated;
  Obs.Span.instant ~cat:"resilience"
    ~args:[ ("id", id); ("attempts", string_of_int attempts) ]
    "quarantine";
  t.rev_entries <- { id; item; attempts; cause } :: t.rev_entries

let entries t = List.rev t.rev_entries

let count t = List.length t.rev_entries

let find t id = List.find_opt (fun e -> e.id = id) (entries t)

let pp_entry ppf e =
  Format.fprintf ppf "%s (attempts %d): %a" e.id e.attempts pp_cause e.cause
