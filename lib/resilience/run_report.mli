(** The typed result of a supervised sweep.

    A sweep never ends in an exception: every work item it saw is
    accounted for here, either completed (possibly after retries,
    possibly satisfied from a checkpoint) or quarantined with its
    typed cause.  Reports are deterministic — a sweep under the same
    seeds emits a byte-identical {!to_json} — and {!same_outcomes}
    is the resume contract: an interrupted-then-resumed sweep must
    reach the same per-item outcomes as an uninterrupted one. *)

type outcome =
  | Completed of { attempts : int }
  | Quarantined of { attempts : int; cause : Quarantine.cause }

type item = {
  id : string;
  outcome : outcome;
  from_checkpoint : bool;
      (** completed by a previous run; [attempts] is what the journal
          recorded *)
}

type t = {
  label : string;
  seed : int;    (** the retry policy's seed *)
  items : item list;  (** processing order *)
  waited : int;  (** total virtual backoff time this run *)
  journal_skipped : int;
      (** journal lines the checkpoint could not parse (a torn final
          line after a crash, corruption) — surfaced, never silently
          dropped *)
}

val total : t -> int

val completed : t -> int
(** Includes checkpointed items. *)

val retried : t -> int
(** Items that needed more than one attempt and still completed. *)

val resumed : t -> int
(** Items satisfied from the checkpoint. *)

val quarantined : t -> int

val degraded : t -> bool
(** At least one quarantined item. *)

val ok : t -> bool

val max_attempts : t -> int
(** The largest attempt count any item consumed (0 on empty). *)

val no_lost : expected:int -> t -> bool
(** Every expected item is accounted for: [total t = expected]. *)

val same_outcomes : t -> t -> bool
(** Same items, same outcomes, in the same order — ignoring
    [from_checkpoint] and [waited], which legitimately differ between
    a resumed and an uninterrupted run. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
