type state = Closed | Open | Half_open

type config = { failure_threshold : int; cooldown : int }

let default_config = { failure_threshold = 3; cooldown = 200 }

type trip = {
  resource : string;
  at : int;
  consecutive_failures : int;
  cause : string;
}

type t = {
  resource : string;
  config : config;
  mutable state : state;
  mutable consecutive : int;
  mutable opened_at : int;
  mutable rev_trips : trip list;
  mutable rev_transitions : (state * state) list;
}

let create ?(config = default_config) ~resource () =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold < 1";
  { resource;
    config;
    state = Closed;
    consecutive = 0;
    opened_at = 0;
    rev_trips = [];
    rev_transitions = [] }

let resource t = t.resource

let state t = t.state

let trips t = List.rev t.rev_trips

let transitions t = List.rev t.rev_transitions

let m_transitions = Obs.Metrics.counter "resilience.breaker.transitions"
let m_trips = Obs.Metrics.counter "resilience.breaker.trips"

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let goto t s =
  if t.state <> s then begin
    t.rev_transitions <- (t.state, s) :: t.rev_transitions;
    Obs.Metrics.incr m_transitions;
    Obs.Span.instant ~cat:"resilience"
      ~args:
        [ ("resource", t.resource);
          ("from", state_to_string t.state);
          ("to", state_to_string s) ]
      "breaker";
    t.state <- s
  end

let trip t ~now ~cause =
  Obs.Metrics.incr m_trips;
  t.rev_trips <-
    { resource = t.resource;
      at = now;
      consecutive_failures = t.consecutive;
      cause }
    :: t.rev_trips;
  t.opened_at <- now;
  goto t Open

let acquire t ~now =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      if now - t.opened_at >= t.config.cooldown then begin
        goto t Half_open;
        true
      end
      else false

let success t =
  (* Open -> Closed must pass Half_open even if a caller bypassed
     [acquire]; the invariant holds against API misuse. *)
  if t.state = Open then goto t Half_open;
  t.consecutive <- 0;
  goto t Closed

let failure t ~now ~cause =
  t.consecutive <- t.consecutive + 1;
  match t.state with
  | Half_open -> trip t ~now ~cause
  | Closed ->
      if t.consecutive >= t.config.failure_threshold then trip t ~now ~cause
  | Open -> ()

let pp ppf t =
  Format.fprintf ppf "%s: %s (%d consecutive failure%s, %d trip%s)" t.resource
    (state_to_string t.state) t.consecutive
    (if t.consecutive = 1 then "" else "s")
    (List.length t.rev_trips)
    (if List.length t.rev_trips = 1 then "" else "s")
