type config = {
  retry : Retry.policy;
  breaker : Breaker.config;
  deadline : int option;
}

let m_retry_attempts = Obs.Metrics.counter "resilience.retry.attempts"

let default_config =
  { retry = Retry.default; breaker = Breaker.default_config; deadline = None }

type 'a item = { id : string; resource : string; work : unit -> 'a }

type 'a outcome = {
  report : Run_report.t;
  results : (string * 'a) list;
  quarantined : 'a item Quarantine.t;
  breakers : Breaker.t list;
}

(* Mix the item id into the policy seed so each item owns its backoff
   schedule: outcomes stay identical whether or not earlier items were
   satisfied from a checkpoint. *)
let item_policy (config : config) id =
  { config.retry with Retry.seed = config.retry.seed lxor Hashtbl.hash id }

let run ?(label = "supervised") ?(config = default_config) ?checkpoint
    ?stop_after ?(parallel = false) items =
  Obs.Span.with_span ~cat:"resilience"
    ~args:[ ("label", label); ("items", string_of_int (List.length items)) ]
    ("supervise:" ^ label)
  @@ fun () ->
  (* Parallelism by speculation: first invocations of the fresh items
     run on the Par pool up front, then the supervision loop replays
     sequentially, consuming each speculative result at the item's
     first invocation.  The replay owns every piece of shared state —
     virtual clock, breakers, deadline fuel, checkpoint journal — so
     accounting is exactly-once and the report is byte-identical to
     the sequential run.  Invocation counts align too: speculation is
     call #1 and the replay's own calls continue at #2, so items whose
     outcome depends on how often they ran (fail-twice-then-succeed
     fakes) still report identically.  Requires only that distinct
     items do not share mutable state.  Speculation is skipped under
     [stop_after] (items past the kill must never execute) and under
     an active fault injector (its PRNG stream is order-sensitive).
     It is NOT skipped at [-j 1]: the Par map then runs sequentially
     with identical outcomes, which keeps the item spans of a traced
     run at the same (epoch, slot) coordinates for every job count. *)
  let speculated : (string, _ result) Hashtbl.t = Hashtbl.create 16 in
  if parallel && stop_after = None && Fault.Hooks.current () = None then begin
    let fresh =
      List.filter
        (fun it ->
          match checkpoint with
          | Some cp -> not (Checkpoint.seen cp it.id)
          | None -> true)
        items
    in
    Par.map_list ~label:(label ^ ".speculate")
      (fun it ->
        let r =
          Obs.Span.with_span ~cat:"resilience"
            ~args:[ ("id", it.id); ("resource", it.resource) ]
            ("item:" ^ it.id)
            (fun () ->
              match it.work () with v -> Ok v | exception e -> Error e)
        in
        (it.id, r))
      fresh
    |> List.iter (fun (id, r) -> Hashtbl.replace speculated id r)
  end;
  let invoke it =
    match Hashtbl.find_opt speculated it.id with
    | Some r -> (
        Hashtbl.remove speculated it.id;
        match r with Ok v -> v | Error e -> raise e)
    | None ->
        Obs.Span.with_span ~cat:"resilience"
          ~args:[ ("id", it.id); ("resource", it.resource) ]
          ("item:" ^ it.id) it.work
  in
  let quarantined = Quarantine.create () in
  let breakers = Hashtbl.create 7 in
  let rev_breakers = ref [] in
  let breaker_of resource =
    match Hashtbl.find_opt breakers resource with
    | Some b -> b
    | None ->
        let b = Breaker.create ~config:config.breaker ~resource () in
        Hashtbl.add breakers resource b;
        rev_breakers := b :: !rev_breakers;
        b
  in
  let deadline =
    match config.deadline with
    | Some fuel -> Deadline.of_fuel fuel
    | None -> Deadline.unlimited ()
  in
  let now = ref 0 in
  let waited = ref 0 in
  let executed = ref 0 in
  let rev_results = ref [] in
  let rev_items = ref [] in
  let emit id outcome ~from_checkpoint =
    rev_items :=
      { Run_report.id; outcome; from_checkpoint } :: !rev_items
  in
  let quarantine (it : _ item) ~attempts cause =
    Quarantine.isolate quarantined ~id:it.id ~item:it ~attempts cause;
    emit it.id (Run_report.Quarantined { attempts; cause }) ~from_checkpoint:false
  in
  let interrupted =
    List.exists
      (fun it ->
         (match stop_after with
          | Some n when !executed >= n -> true  (* the "kill" arrived *)
          | _ ->
              (match checkpoint with
               | Some cp when Checkpoint.seen cp it.id ->
                   let attempts =
                     Option.value ~default:1 (Checkpoint.attempts cp it.id)
                   in
                   emit it.id (Run_report.Completed { attempts })
                     ~from_checkpoint:true
               | _ ->
                   incr executed;
                   let schedule =
                     Array.of_list (Retry.delays (item_policy config it.id))
                   in
                   let breaker = breaker_of it.resource in
                   let backoff k =
                     (* wait before attempt k+1; false = out of fuel *)
                     let d = schedule.(k - 1) in
                     now := !now + d;
                     waited := !waited + d;
                     Obs.Metrics.incr m_retry_attempts;
                     Obs.Span.instant ~cat:"resilience"
                       ~args:
                         [ ("id", it.id);
                           ("delay", string_of_int d);
                           ("vt", string_of_int !now);
                           ("fuel_used", string_of_int (Deadline.used deadline))
                         ]
                       "backoff";
                     Deadline.spend deadline d
                   in
                   let out_of_fuel ~attempts =
                     quarantine it ~attempts
                       (Quarantine.Deadline_exceeded
                          { spent = Deadline.used deadline })
                   in
                   (* quarantine with [cause] if no retry is left, else
                      back off and run attempt k+1 *)
                   let rec retry_or k cause =
                     if k >= config.retry.Retry.max_attempts then
                       quarantine it ~attempts:k cause
                     else if not (backoff k) then out_of_fuel ~attempts:k
                     else attempt (k + 1)
                   and attempt k =
                     if not (Deadline.spend deadline 1) then
                       out_of_fuel ~attempts:(k - 1)
                     else begin
                       incr now;
                       if not (Breaker.acquire breaker ~now:!now) then
                         retry_or k
                           (Quarantine.Breaker_open { resource = it.resource })
                       else
                         match invoke it with
                         | v ->
                             Breaker.success breaker;
                             (match checkpoint with
                              | Some cp ->
                                  Checkpoint.mark cp ~id:it.id ~attempts:k
                              | None -> ());
                             rev_results := (it.id, v) :: !rev_results;
                             emit it.id (Run_report.Completed { attempts = k })
                               ~from_checkpoint:false
                         | exception Fault.Condition.Simulated c ->
                             Breaker.failure breaker ~now:!now
                               ~cause:(Fault.Condition.to_string c);
                             retry_or k
                               (Quarantine.Retries_exhausted
                                  { attempts = k; last = c })
                         | exception Quarantine.Reject detail ->
                             Breaker.failure breaker ~now:!now ~cause:detail;
                             quarantine it ~attempts:k
                               (Quarantine.Rejected { detail })
                         | exception e ->
                             let exn = Printexc.to_string e in
                             Breaker.failure breaker ~now:!now ~cause:exn;
                             quarantine it ~attempts:k (Quarantine.Crash { exn })
                     end
                   in
                   attempt 1);
              false))
      items
  in
  ignore interrupted;
  (match checkpoint with Some cp -> Checkpoint.finalize cp | None -> ());
  { report =
      { Run_report.label;
        seed = config.retry.Retry.seed;
        items = List.rev !rev_items;
        waited = !waited;
        journal_skipped =
          (match checkpoint with
           | Some cp -> Checkpoint.skipped cp
           | None -> 0) };
    results = List.rev !rev_results;
    quarantined;
    breakers = List.rev !rev_breakers }
