(** Supervised database ingestion.

    The CSV import path is the pipeline's front door and the most
    exposed to hostile input, so it gets the full treatment: each data
    row is a supervised work item (resource ["csv"]) whose text passes
    through the {!Fault.Hooks.mangle} seam before being re-tokenised
    and typed — under a bit-flip fault plan, corrupted rows surface as
    typed [Rejected] quarantine entries while the rest of the document
    still loads. *)

type csv_outcome = {
  db : Vulndb.Database.t;  (** the rows that survived, as a database *)
  report : Run_report.t;
  rejected : Vulndb.Csv.row Quarantine.t;
}

val csv :
  ?label:string ->
  ?config:Supervisor.config ->
  ?checkpoint:Checkpoint.t ->
  ?stop_after:int ->
  ?parallel:bool ->
  string ->
  (csv_outcome, Vulndb.Csv.error) result
(** Document-level problems — the text does not tokenise, or the
    header line is wrong — are [Error]: there are no rows to sweep.
    Row-level problems never are: each row either completes into the
    database or is quarantined with its {!Vulndb.Csv.error} rendered
    as the [Rejected] detail.  A report whose (possibly mangled) ID
    collides with an already-ingested one is rejected too ([add]
    would otherwise throw the whole database away) — detected in a
    sequential post-pass over the supervised results, first
    occurrence wins, so the per-row work closures share no state and
    [parallel] ingestion (default false: speculate rows on the {!Par}
    pool) reaches a byte-identical outcome at any [-j]. *)

val synth_verified :
  ?config:Supervisor.config -> seed:int -> unit -> string Supervisor.outcome
(** The synthetic-population round trip as a staged, supervised
    pipeline: generate the {!Vulndb.Synth} database, export it to
    CSV, re-parse the (mangled) text, and verify the round trip —
    four items sharing the ["synth"] resource, each later stage
    rejecting with a typed cause when its prerequisite was
    quarantined rather than crashing the sweep. *)
