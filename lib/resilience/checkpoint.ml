type damage = Torn_tail | Corrupt

let damage_to_string = function
  | Torn_tail -> "torn-tail"
  | Corrupt -> "corrupt"

type t = {
  table : (string, int) Hashtbl.t;   (* id -> attempts *)
  mutable rev_order : string list;
  path : string option;
  mutable chan : out_channel option;  (* cached append channel *)
  mutable skipped : (int * damage) list;  (* bad journal lines, 1-based, reverse *)
}

(* One line per completion: "<attempts> <escaped id>", written under a
   {!Store.Record.seal_line} checksum.  Escaping keeps ids with spaces
   and newlines on one journal line; the seal turns silent corruption
   into a detected, classified skip. *)
let line_of ~id ~attempts = Printf.sprintf "%d %s" attempts (String.escaped id)

let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
      let attempts = String.sub line 0 i in
      let id = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt attempts with
      | None -> None
      | Some attempts -> (
          match Scanf.unescaped id with
          | id -> Some (id, attempts)
          | exception Scanf.Scan_failure _ -> None))

let in_memory () =
  { table = Hashtbl.create 16; rev_order = []; path = None; chan = None;
    skipped = [] }

let record t id attempts =
  if not (Hashtbl.mem t.table id) then begin
    Hashtbl.add t.table id attempts;
    t.rev_order <- id :: t.rev_order
  end

let load path =
  let t =
    { table = Hashtbl.create 16; rev_order = []; path = Some path;
      chan = None; skipped = [] }
  in
  if Sys.file_exists path then begin
    let lines =
      In_channel.with_open_text path (fun ic ->
          let rec go acc =
            match In_channel.input_line ic with
            | None -> List.rev acc
            | Some line -> go (line :: acc)
          in
          go [])
    in
    let last = List.length lines in
    List.iteri
      (fun i line ->
        let line_no = i + 1 in
        (* sealed lines verify end-to-end; bare lines are accepted for
           journals written before sealing existed *)
        let parsed =
          match Store.Record.unseal_line line with
          | `Sealed content -> parse_line content
          | `Unsealed -> parse_line line
          | `Mismatch -> None
        in
        match parsed with
        | Some (id, attempts) -> record t id attempts
        | None ->
            (* never silently dropped — counted, surfaced, and
               classified: only the final line can be the torn tail a
               crash mid-append leaves; damage anywhere else is
               mid-file corruption *)
            let damage = if line_no = last then Torn_tail else Corrupt in
            t.skipped <- (line_no, damage) :: t.skipped)
      lines
  end;
  t

let path t = t.path

let skipped_detail t = List.rev t.skipped

let skipped_lines t = List.rev_map fst t.skipped

let skipped t = List.length t.skipped

let finalize t =
  match t.chan with
  | None -> ()
  | Some oc ->
      t.chan <- None;
      close_out_noerr oc

(* The cached append channel: opened on the first mark, flushed per
   line, closed by [finalize] / [reset].  One open/close syscall pair
   per journal instead of one per completed item. *)
let channel t path =
  match t.chan with
  | Some oc -> oc
  | None ->
      let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
      t.chan <- Some oc;
      oc

let mark t ~id ~attempts =
  if not (Hashtbl.mem t.table id) then begin
    record t id attempts;
    match t.path with
    | None -> ()
    | Some path -> (
        let oc = channel t path in
        (* through the store's fault seam: an injected torn append or
           write error degrades to a lost journal line — the item is
           re-analyzed on resume, never lost *)
        match
          Store.Io.append_line oc ~path
            (Store.Record.seal_line (line_of ~id ~attempts))
        with
        | Ok () | Error _ -> ())
  end

let seen t id = Hashtbl.mem t.table id

let attempts t id = Hashtbl.find_opt t.table id

let ids t = List.rev t.rev_order

let count t = Hashtbl.length t.table

let reset t =
  Hashtbl.reset t.table;
  t.rev_order <- [];
  t.skipped <- [];
  finalize t;
  match t.path with
  | Some path when Sys.file_exists path -> Sys.remove path
  | _ -> ()
