module Csv = Vulndb.Csv
module Database = Vulndb.Database

type csv_outcome = {
  db : Database.t;
  report : Run_report.t;
  rejected : Csv.row Quarantine.t;
}

let reject e = raise (Quarantine.Reject (Csv.error_to_string e))

let line_of_row (row : Csv.row) =
  String.concat "," (List.map (fun (_, f) -> Csv.escape f) row.Csv.fields)

(* One data row: re-render, pass through the corruption seam, then
   re-tokenise and type what actually arrived.  Deliberately free of
   shared state: under [parallel] supervision this closure runs
   speculatively on pool domains, so anything cross-row (duplicate-id
   detection) belongs to the sequential post-pass below. *)
let ingest_row (row : Csv.row) () =
  let text = Fault.Hooks.mangle (line_of_row row) in
  let row' =
    match Csv.parse_rows text with
    | Error e -> reject e
    | Ok [ row' ] -> { row' with Csv.start_line = row.Csv.start_line }
    | Ok _ ->
        reject
          { Csv.line = row.Csv.start_line;
            column = 1;
            field = None;
            message = "row corrupted: no longer a single CSV record" }
  in
  match Csv.report_of_row row' with Error e -> reject e | Ok r -> r

let duplicate_error (row : Csv.row) id =
  { Csv.line = row.Csv.start_line;
    column = 1;
    field = Some (string_of_int id);
    message = "duplicate report id" }

let csv ?(label = "csv-ingest") ?config ?checkpoint ?stop_after
    ?(parallel = false) text =
  match Csv.parse_rows text with
  | Error e -> Error e
  | Ok [] ->
      Error
        { Csv.line = 1; column = 1; field = None;
          message = "empty input: missing header" }
  | Ok (hd :: rows) ->
      if line_of_row hd <> Csv.header then
        Error
          { Csv.line = hd.Csv.start_line; column = 1; field = None;
            message = "bad header" }
      else begin
        let row_id (row : Csv.row) = Printf.sprintf "row:%d" row.Csv.start_line in
        (* every back-mapping below is through this index: one pass
           over the document, O(1) per lookup *)
        let row_by_id = Hashtbl.create (List.length rows) in
        List.iter (fun (row : Csv.row) -> Hashtbl.replace row_by_id (row_id row) row) rows;
        let items =
          List.map
            (fun (row : Csv.row) ->
               { Supervisor.id = row_id row;
                 resource = "csv";
                 work = ingest_row row })
            rows
        in
        let outcome =
          Supervisor.run ~label ?config ?checkpoint ?stop_after ~parallel items
        in
        (* Duplicate detection, owned by this (sequential) pass over
           the results in replay order: the first row carrying an id
           wins, later ones are rejected — identical at any [-j]. *)
        let seen = Hashtbl.create 64 in
        let dup = Hashtbl.create 8 in
        let kept =
          List.filter
            (fun (item_id, (r : Vulndb.Report.t)) ->
               if Hashtbl.mem seen r.Vulndb.Report.id then begin
                 Hashtbl.replace dup item_id r.Vulndb.Report.id;
                 false
               end
               else begin
                 Hashtbl.add seen r.Vulndb.Report.id ();
                 true
               end)
            outcome.Supervisor.results
        in
        let rejected_cause item_id =
          match Hashtbl.find_opt dup item_id with
          | None -> None
          | Some id ->
              let row = Hashtbl.find row_by_id item_id in
              Some
                (Quarantine.Rejected
                   { detail = Csv.error_to_string (duplicate_error row id) })
        in
        let report =
          { outcome.Supervisor.report with
            Run_report.items =
              List.map
                (fun (it : Run_report.item) ->
                   match rejected_cause it.Run_report.id with
                   | None -> it
                   | Some cause ->
                       let attempts =
                         match it.Run_report.outcome with
                         | Run_report.Completed { attempts } -> attempts
                         | Run_report.Quarantined { attempts; _ } -> attempts
                       in
                       { it with
                         Run_report.outcome =
                           Run_report.Quarantined { attempts; cause } })
                outcome.Supervisor.report.Run_report.items }
        in
        let quarantined_by_id = Hashtbl.create 16 in
        List.iter
          (fun (e : _ Quarantine.entry) ->
             Hashtbl.replace quarantined_by_id e.Quarantine.id e)
          (Quarantine.entries outcome.Supervisor.quarantined);
        let attempts_by_id = Hashtbl.create 64 in
        List.iter
          (fun (it : Run_report.item) ->
             let attempts =
               match it.Run_report.outcome with
               | Run_report.Completed { attempts } -> attempts
               | Run_report.Quarantined { attempts; _ } -> attempts
             in
             Hashtbl.replace attempts_by_id it.Run_report.id attempts)
          outcome.Supervisor.report.Run_report.items;
        let rejected = Quarantine.create () in
        List.iter
          (fun (row : Csv.row) ->
             let id = row_id row in
             match Hashtbl.find_opt quarantined_by_id id with
             | Some e ->
                 Quarantine.isolate rejected ~id ~item:row
                   ~attempts:e.Quarantine.attempts e.Quarantine.cause
             | None -> (
                 match rejected_cause id with
                 | Some cause ->
                     let attempts =
                       Option.value ~default:1
                         (Hashtbl.find_opt attempts_by_id id)
                     in
                     Quarantine.isolate rejected ~id ~item:row ~attempts cause
                 | None -> ()))
          rows;
        Ok
          { db = Database.of_reports (List.map snd kept);
            report;
            rejected }
      end

let synth_verified ?config ~seed () =
  let db = ref None and text = ref None and reparsed = ref None in
  let require what r =
    match !r with
    | Some v -> v
    | None -> raise (Quarantine.Reject (what ^ " stage did not complete"))
  in
  let stage id work = { Supervisor.id; resource = "synth"; work } in
  Supervisor.run ~label:"synth-ingest" ?config
    [ stage "synth:generate" (fun () ->
          let d = Vulndb.Synth.generate ~seed in
          db := Some d;
          Printf.sprintf "%d reports" (Database.size d));
      stage "synth:export" (fun () ->
          let s = Csv.of_database (require "generate" db) in
          text := Some s;
          Printf.sprintf "%d bytes" (String.length s));
      stage "synth:reparse" (fun () ->
          match Csv.parse (Fault.Hooks.mangle (require "export" text)) with
          | Error e -> reject e
          | Ok rs ->
              reparsed := Some rs;
              Printf.sprintf "%d rows" (List.length rs));
      stage "synth:verify" (fun () ->
          let d = require "generate" db and rs = require "reparse" reparsed in
          if rs = Database.reports d then "roundtrip ok"
          else raise (Quarantine.Reject "roundtrip mismatch")) ]
