module Csv = Vulndb.Csv
module Database = Vulndb.Database

type csv_outcome = {
  db : Database.t;
  report : Run_report.t;
  rejected : Csv.row Quarantine.t;
}

let reject e = raise (Quarantine.Reject (Csv.error_to_string e))

let line_of_row (row : Csv.row) =
  String.concat "," (List.map (fun (_, f) -> Csv.escape f) row.Csv.fields)

(* One data row: re-render, pass through the corruption seam, then
   re-tokenise and type what actually arrived. *)
let ingest_row seen (row : Csv.row) () =
  let text = Fault.Hooks.mangle (line_of_row row) in
  let row' =
    match Csv.parse_rows text with
    | Error e -> reject e
    | Ok [ row' ] -> { row' with Csv.start_line = row.Csv.start_line }
    | Ok _ ->
        reject
          { Csv.line = row.Csv.start_line;
            column = 1;
            field = None;
            message = "row corrupted: no longer a single CSV record" }
  in
  match Csv.report_of_row row' with
  | Error e -> reject e
  | Ok r ->
      if Hashtbl.mem seen r.Vulndb.Report.id then
        reject
          { Csv.line = row.Csv.start_line;
            column = 1;
            field = Some (string_of_int r.Vulndb.Report.id);
            message = "duplicate report id" }
      else begin
        Hashtbl.add seen r.Vulndb.Report.id ();
        r
      end

let csv ?(label = "csv-ingest") ?config ?checkpoint ?stop_after text =
  match Csv.parse_rows text with
  | Error e -> Error e
  | Ok [] ->
      Error
        { Csv.line = 1; column = 1; field = None;
          message = "empty input: missing header" }
  | Ok (hd :: rows) ->
      if line_of_row hd <> Csv.header then
        Error
          { Csv.line = hd.Csv.start_line; column = 1; field = None;
            message = "bad header" }
      else begin
        let seen = Hashtbl.create 64 in
        let row_id (row : Csv.row) = Printf.sprintf "row:%d" row.Csv.start_line in
        let items =
          List.map
            (fun (row : Csv.row) ->
               { Supervisor.id = row_id row;
                 resource = "csv";
                 work = ingest_row seen row })
            rows
        in
        let outcome =
          Supervisor.run ~label ?config ?checkpoint ?stop_after items
        in
        let rejected = Quarantine.create () in
        List.iter
          (fun (e : _ Quarantine.entry) ->
             let row = List.find (fun r -> row_id r = e.Quarantine.id) rows in
             Quarantine.isolate rejected ~id:e.Quarantine.id ~item:row
               ~attempts:e.Quarantine.attempts e.Quarantine.cause)
          (Quarantine.entries outcome.Supervisor.quarantined);
        Ok
          { db = Database.of_reports (List.map snd outcome.Supervisor.results);
            report = outcome.Supervisor.report;
            rejected }
      end

let synth_verified ?config ~seed () =
  let db = ref None and text = ref None and reparsed = ref None in
  let require what r =
    match !r with
    | Some v -> v
    | None -> raise (Quarantine.Reject (what ^ " stage did not complete"))
  in
  let stage id work = { Supervisor.id; resource = "synth"; work } in
  Supervisor.run ~label:"synth-ingest" ?config
    [ stage "synth:generate" (fun () ->
          let d = Vulndb.Synth.generate ~seed in
          db := Some d;
          Printf.sprintf "%d reports" (Database.size d));
      stage "synth:export" (fun () ->
          let s = Csv.of_database (require "generate" db) in
          text := Some s;
          Printf.sprintf "%d bytes" (String.length s));
      stage "synth:reparse" (fun () ->
          match Csv.parse (Fault.Hooks.mangle (require "export" text)) with
          | Error e -> reject e
          | Ok rs ->
              reparsed := Some rs;
              Printf.sprintf "%d rows" (List.length rs));
      stage "synth:verify" (fun () ->
          let d = require "generate" db and rs = require "reparse" reparsed in
          if rs = Database.reports d then "roundtrip ok"
          else raise (Quarantine.Reject "roundtrip mismatch")) ]
