(** Fuel-based execution deadlines.

    A deadline is spent in virtual-time units by the supervision
    layer (one unit per attempt plus every backoff delay).  Deadlines
    nest — spending a child spends its parent — and compose with
    {!Fault.Budget}: a deadline built over a budget forwards every
    unit to [Budget.take], so one fuel pool can bound both the
    exhaustive analyses and a supervised sweep.  Exhaustion is
    sticky: once a spend is refused the deadline stays exceeded. *)

type t

val unlimited : unit -> t

val of_fuel : int -> t
(** Negative fuel clamps to zero. *)

val of_budget : Fault.Budget.t -> t
(** Each spent unit performs one [Fault.Budget.take]. *)

val sub : t -> fuel:int -> t
(** A child deadline: spending it spends [t] too; whichever runs out
    first refuses. *)

val spend : t -> int -> bool
(** Spend [n] units ([n >= 0]).  [false] means the deadline (or an
    ancestor, or the underlying budget) is exceeded and the work
    should not proceed. *)

val used : t -> int

val exceeded : t -> bool

val remaining : t -> int option
(** [None] when unlimited or budget-backed. *)
