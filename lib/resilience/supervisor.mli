(** The supervision engine: run a batch of work items to a typed
    {!Run_report} no matter what the environment does.

    Each item runs under the retry policy (transient
    {!Fault.Condition.Simulated} failures back off and retry on the
    deterministic {!Retry} schedule), behind its resource's circuit
    {!Breaker} (consecutive failures trip it; while it is open,
    attempts are refused and consume the item's schedule), inside the
    optional fuel {!Deadline} (when it runs out, the remaining items
    are quarantined as [Deadline_exceeded], not dropped), against the
    optional {!Checkpoint} (items a previous run completed are
    reported from the journal and not re-executed; fresh completions
    are marked as they happen).

    Retry schedules are derived per item — the policy seed is mixed
    with the item id — so outcomes do not depend on how many items a
    previous run already completed: an interrupted sweep resumed from
    its checkpoint reaches {!Run_report.same_outcomes} as an
    uninterrupted one.

    Time is virtual throughout: a logical clock advances one unit per
    attempt plus each backoff delay.  Nothing sleeps. *)

type config = {
  retry : Retry.policy;
  breaker : Breaker.config;
  deadline : int option;  (** total virtual-time fuel for the sweep *)
}

val default_config : config

type 'a item = {
  id : string;        (** unique within the sweep; the checkpoint key *)
  resource : string;  (** circuit-breaker key; items may share one *)
  work : unit -> 'a;
}

type 'a outcome = {
  report : Run_report.t;
  results : (string * 'a) list;
      (** values of the items completed {e this} run, in order *)
  quarantined : 'a item Quarantine.t;
      (** the failed items themselves, for later retry *)
  breakers : Breaker.t list;  (** final breaker per resource, creation order *)
}

val run :
  ?label:string ->
  ?config:config ->
  ?checkpoint:Checkpoint.t ->
  ?stop_after:int ->
  ?parallel:bool ->
  'a item list ->
  'a outcome
(** [stop_after] simulates an interruption: after that many items
    have been executed (checkpoint skips not counted) the sweep stops
    dead, leaving the rest unprocessed and unreported — exactly what
    a kill would do.  Used by the resume tests and [--stop-after].

    [parallel] (default false) speculates the first invocation of each
    fresh item on the {!Par} domain pool, then replays the supervision
    loop sequentially, consuming each speculative result at the item's
    first invocation.  Clock, breakers, deadline and checkpoint
    appends all live in the replaying domain, so {!Run_report}
    accounting stays exactly-once and the outcome is byte-identical to
    the sequential run for any job count — provided distinct items do
    not share mutable state.  Ignored (safely sequential) under
    [stop_after], an active fault injector, or [-j 1]. *)
