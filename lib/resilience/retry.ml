type policy = {
  max_attempts : int;
  base_delay : int;
  max_delay : int;
  jitter_percent : int;
  seed : int;
}

let default =
  { max_attempts = 5;
    base_delay = 50;
    max_delay = 400;
    jitter_percent = 25;
    seed = 20021130 }

let delays policy =
  let prng = Vulndb.Prng.create ~seed:policy.seed in
  List.init
    (max 0 (policy.max_attempts - 1))
    (fun k ->
       (* base * 2^k, saturating well before overflow *)
       let exp = if k > 20 then policy.max_delay else policy.base_delay * (1 lsl k) in
       let capped = max 0 (min policy.max_delay exp) in
       let jitter = capped * policy.jitter_percent / 100 in
       if jitter <= 0 then capped
       else capped - jitter + Vulndb.Prng.below prng ((2 * jitter) + 1))

let m_attempts = Obs.Metrics.counter "resilience.retry.attempts"

let run ?(on_backoff = fun ~attempt:_ ~delay:_ -> ()) policy work =
  let schedule = Array.of_list (delays policy) in
  let rec attempt k =
    match work () with
    | v -> Ok (v, k)
    | exception Fault.Condition.Simulated c ->
        if k < policy.max_attempts then begin
          Obs.Metrics.incr m_attempts;
          on_backoff ~attempt:k ~delay:schedule.(k - 1);
          attempt (k + 1)
        end
        else Error (Quarantine.Retries_exhausted { attempts = k; last = c }, k)
    | exception Quarantine.Reject detail ->
        Error (Quarantine.Rejected { detail }, k)
    | exception e -> Error (Quarantine.Crash { exn = Printexc.to_string e }, k)
  in
  attempt 1
