(** Seeded exponential backoff.

    A policy fully determines its backoff schedule: the delays are
    exponential in the attempt number, capped at [max_delay], with
    jitter drawn from {!Vulndb.Prng} seeded by [seed] — so the same
    policy always waits the same (virtual) amounts and a retried run
    replays bit-for-bit.  Delays are {e virtual milliseconds}: the
    supervision layer advances a logical clock by them instead of
    sleeping, which keeps tests fast and schedules deterministic. *)

type policy = {
  max_attempts : int;   (** total tries, including the first (>= 1) *)
  base_delay : int;     (** virtual ms before the first retry *)
  max_delay : int;      (** cap on any single backoff *)
  jitter_percent : int; (** +- this percentage of the capped delay *)
  seed : int;           (** PRNG seed for the jitter stream *)
}

val default : policy
(** 5 attempts, base 50, cap 400, 25% jitter, seed 20021130. *)

val delays : policy -> int list
(** The full backoff schedule, [max_attempts - 1] entries: the wait
    before attempt 2, 3, ...  Pure: same policy, same list. *)

val run :
  ?on_backoff:(attempt:int -> delay:int -> unit) ->
  policy ->
  (unit -> 'a) ->
  ('a * int, Quarantine.cause * int) result
(** Run the thunk under the policy.  A {!Fault.Condition.Simulated}
    failure is transient and retried after the scheduled backoff
    ([on_backoff] observes each wait); {!Quarantine.Reject} and any
    other exception are terminal.  Either way the [int] is the number
    of attempts consumed. *)
