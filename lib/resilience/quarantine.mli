(** Isolation for failing work items.

    When a supervised sweep cannot complete an item — its retries are
    exhausted, its resource's circuit breaker is open, the run's
    deadline passed, or the work crashed outright — the item is not
    dropped and does not abort the sweep: it is {e quarantined}
    together with a typed {!cause}, and the sweep continues.  The
    quarantine store keeps the original item payload so a later run
    (or a [--resume] invocation) can retry it. *)

type cause =
  | Retries_exhausted of { attempts : int; last : Fault.Condition.t }
      (** every attempt hit a (typed, simulated) environmental fault *)
  | Breaker_open of { resource : string }
      (** the item's resource tripped its circuit breaker and did not
          recover within the item's retry schedule *)
  | Deadline_exceeded of { spent : int }
      (** the sweep's fuel deadline passed before the item could run *)
  | Rejected of { detail : string }
      (** the work item itself is invalid (e.g. a malformed CSV row) —
          retrying cannot help *)
  | Crash of { exn : string }
      (** an unexpected exception: a bug, not an environmental fault *)

exception Reject of string
(** Raised by work items to signal {!Rejected} — a typed, terminal
    "this input is bad" that supervision never retries. *)

val retryable : cause -> bool
(** Whether a {e future} run could plausibly succeed: true for
    everything except {!Rejected} and {!Crash}. *)

val cause_to_string : cause -> string

val pp_cause : Format.formatter -> cause -> unit

type 'a entry = { id : string; item : 'a; attempts : int; cause : cause }

type 'a t

val create : unit -> 'a t

val isolate : 'a t -> id:string -> item:'a -> attempts:int -> cause -> unit

val entries : 'a t -> 'a entry list
(** Oldest first. *)

val count : 'a t -> int

val find : 'a t -> string -> 'a entry option

val pp_entry : Format.formatter -> 'a entry -> unit
