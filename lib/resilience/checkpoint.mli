(** A journal of completed work-item ids.

    The supervisor marks an item here the moment it completes; an
    interrupted sweep re-invoked against the same journal skips the
    marked items (reporting them as completed from the checkpoint,
    with the attempt count the journal recorded) and analyzes each
    remaining item exactly once.  File-backed journals append one
    line per completion so a kill at any point loses at most the
    in-flight item. *)

type t

val in_memory : unit -> t

val load : string -> t
(** A file-backed journal at this path; existing entries are read
    back, later {!mark}s are appended and flushed immediately (each
    line carrying a per-line checksum; unsealed lines from journals
    written before sealing existed are still accepted).  The file is
    created on the first mark if absent.  Lines that fail their
    checksum or do not parse — a torn final line after a crash, or
    corruption — are never silently dropped: they are counted,
    surfaced through {!skipped} / {!skipped_lines}, and classified by
    {!skipped_detail}.  Journal appends go through the store's
    fault-injection seam, so durability plans exercise the resume
    path. *)

val path : t -> string option

(** Why a journal line was skipped. *)
type damage =
  | Torn_tail  (** the final line — the prefix a crash mid-append leaves *)
  | Corrupt  (** damage anywhere before the final line *)

val damage_to_string : damage -> string

val skipped : t -> int
(** Number of journal lines {!load} could not verify and parse. *)

val skipped_lines : t -> int list
(** 1-based line numbers of the skipped journal lines, in file
    order. *)

val skipped_detail : t -> (int * damage) list
(** {!skipped_lines} with each line's classification. *)

val mark : t -> id:string -> attempts:int -> unit
(** Record a completion.  Re-marking an id keeps the first record. *)

val seen : t -> string -> bool

val attempts : t -> string -> int option
(** The attempt count recorded for a completed id. *)

val ids : t -> string list
(** Journal order. *)

val count : t -> int

val finalize : t -> unit
(** Close the cached append channel (opened lazily by the first
    {!mark} on a file-backed journal and held — flushed per line —
    for the journal's lifetime).  Safe to call twice; a later
    {!mark} reopens it. *)

val reset : t -> unit
(** Forget every entry; a file-backed journal's file is removed and
    its append channel closed. *)
