type outcome =
  | Completed of { attempts : int }
  | Quarantined of { attempts : int; cause : Quarantine.cause }

type item = { id : string; outcome : outcome; from_checkpoint : bool }

type t = {
  label : string;
  seed : int;
  items : item list;
  waited : int;
  journal_skipped : int;
}

let total t = List.length t.items

let count p t = List.length (List.filter p t.items)

let completed = count (fun i -> match i.outcome with Completed _ -> true | _ -> false)

let retried =
  count (fun i ->
      match i.outcome with Completed { attempts } -> attempts > 1 | _ -> false)

let resumed = count (fun i -> i.from_checkpoint)

let quarantined =
  count (fun i -> match i.outcome with Quarantined _ -> true | _ -> false)

let degraded t = quarantined t > 0

let ok t = not (degraded t)

let attempts_of = function
  | Completed { attempts } | Quarantined { attempts; _ } -> attempts

let max_attempts t =
  List.fold_left (fun acc i -> max acc (attempts_of i.outcome)) 0 t.items

let no_lost ~expected t = total t = expected

let same_outcomes a b =
  List.length a.items = List.length b.items
  && List.for_all2
       (fun x y -> x.id = y.id && x.outcome = y.outcome)
       a.items b.items

let pp_outcome ppf = function
  | Completed { attempts } when attempts <= 1 -> Format.fprintf ppf "completed"
  | Completed { attempts } ->
      Format.fprintf ppf "completed after %d attempts" attempts
  | Quarantined { attempts; cause } ->
      Format.fprintf ppf "QUARANTINED (attempts %d): %a" attempts
        Quarantine.pp_cause cause

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d item%s, %d completed (%d retried, %d from checkpoint), %d \
     quarantined, waited %d"
    t.label (total t)
    (if total t = 1 then "" else "s")
    (completed t) (retried t) (resumed t) (quarantined t) t.waited;
  if t.journal_skipped > 0 then
    Format.fprintf ppf "@,  WARNING: %d unparseable journal line%s skipped"
      t.journal_skipped
      (if t.journal_skipped = 1 then "" else "s");
  List.iter
    (fun i ->
       Format.fprintf ppf "@,  %-34s %a%s" i.id pp_outcome i.outcome
         (if i.from_checkpoint then "  [checkpoint]" else ""))
    t.items;
  Format.fprintf ppf "@]"

(* Minimal JSON string escaping (the report never contains exotic
   control characters beyond what String.escaped covers). *)
let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
           Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let item_to_json i =
  match i.outcome with
  | Completed { attempts } ->
      Printf.sprintf
        "{\"id\": %s, \"outcome\": \"completed\", \"attempts\": %d, \
         \"from_checkpoint\": %b}"
        (json_str i.id) attempts i.from_checkpoint
  | Quarantined { attempts; cause } ->
      Printf.sprintf
        "{\"id\": %s, \"outcome\": \"quarantined\", \"attempts\": %d, \
         \"cause\": %s, \"from_checkpoint\": %b}"
        (json_str i.id) attempts
        (json_str (Quarantine.cause_to_string cause))
        i.from_checkpoint

let to_json t =
  Printf.sprintf
    "{\"label\": %s, \"seed\": %d, \"total\": %d, \"completed\": %d, \
     \"retried\": %d, \"resumed\": %d, \"quarantined\": %d, \"waited\": %d, \
     \"journal_skipped\": %d, \"ok\": %b, \"items\": [%s]}"
    (json_str t.label) t.seed (total t) (completed t) (retried t) (resumed t)
    (quarantined t) t.waited t.journal_skipped (ok t)
    (String.concat ", " (List.map item_to_json t.items))
