(** A per-resource circuit breaker.

    The classic three-state machine over a {e virtual} clock (the
    supervisor's logical time, advanced by attempts and backoff
    delays, never by the wall):

    {ul
    {- [Closed] — calls flow; [failure_threshold] consecutive
       failures trip it [Open];}
    {- [Open] — calls are refused until [cooldown] virtual time has
       passed since the trip, then the next {!acquire} moves to
       [Half_open];}
    {- [Half_open] — one probe is allowed through; success closes the
       breaker, failure re-opens it.}}

    The breaker can never move [Open] to [Closed] without passing
    [Half_open] — {!transitions} records every edge so the property
    is checkable.  Every trip is a typed record naming the resource,
    the virtual time and the fault that tripped it. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** consecutive failures that trip it *)
  cooldown : int;           (** virtual time Open before probing *)
}

val default_config : config
(** threshold 3, cooldown 200 virtual ms. *)

type trip = {
  resource : string;
  at : int;                       (** virtual time of the trip *)
  consecutive_failures : int;
  cause : string;                 (** the failure that tripped it *)
}

type t

val create : ?config:config -> resource:string -> unit -> t

val resource : t -> string

val state : t -> state

val trips : t -> trip list
(** Oldest first. *)

val transitions : t -> (state * state) list
(** Every state change, oldest first. *)

val acquire : t -> now:int -> bool
(** May a call proceed at virtual time [now]?  On an [Open] breaker
    whose cooldown has passed this transitions to [Half_open] and
    admits the probe. *)

val success : t -> unit
(** The admitted call succeeded: close (via [Half_open] if open). *)

val failure : t -> now:int -> cause:string -> unit
(** The admitted call failed. *)

val state_to_string : state -> string

val pp : Format.formatter -> t -> unit
