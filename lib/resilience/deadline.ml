type source = Unlimited | Fuel of int ref | Budget of Fault.Budget.t

type t = {
  source : source;
  parent : t option;
  mutable used : int;
  mutable dead : bool;
}

let make ?parent source = { source; parent; used = 0; dead = false }

let unlimited () = make Unlimited

let of_fuel n = make (Fuel (ref (max 0 n)))

let of_budget b = make (Budget b)

let sub t ~fuel = make ~parent:t (Fuel (ref (max 0 fuel)))

let rec spend t n =
  if n < 0 then invalid_arg "Deadline.spend: negative amount";
  if t.dead then false
  else begin
    let granted_here =
      match t.source with
      | Unlimited -> true
      | Fuel left ->
          if !left >= n then begin left := !left - n; true end else false
      | Budget b ->
          let rec take k = k = 0 || (Fault.Budget.take b && take (k - 1)) in
          take n
    in
    let granted =
      granted_here
      && (match t.parent with None -> true | Some p -> spend p n)
    in
    if granted then t.used <- t.used + n else t.dead <- true;
    granted
  end

let used t = t.used

let exceeded t = t.dead

let remaining t =
  match t.source with
  | Unlimited | Budget _ -> None
  | Fuel left -> Some !left
