(** The quantitative school the paper contrasts with (Section 2):
    Ortalo et al.'s Markov model of intruder behaviour, evaluating
    METF — Mean Effort To (security) Failure.

    A chain is derived from a pFSM model: one state per elementary
    activity in the exploit's path.  At each state the attacker
    spends one unit of effort per attempt and advances with the
    activity's success probability (1 for a missing check, the given
    retry probability for a probabilistic obstacle, 0 for a correct
    check).  METF is computed by solving the first-step linear system
    with Gaussian elimination — not just the closed form — so
    arbitrary chains (with skips and retries) are supported.

    The contrast the paper draws is visible in the numbers: the
    Markov abstraction needs transition probabilities as {e inputs}
    (which nobody has for real vulnerabilities), while the pFSM model
    needs only the predicates. *)

type t
(** A finite Markov chain with per-transition effort. *)

val create : states:int -> start:int -> target:int -> t
(** States are [0 .. states-1]; [target] is the security-failure
    (absorbing) state. *)

val add_transition : t -> src:int -> dst:int -> prob:float -> effort:float -> unit

val normalize_with_self_loops : t -> unit
(** Give every non-target state a self-loop absorbing the residual
    probability mass (the attacker retries), costing one effort
    unit. *)

val metf : t -> float option
(** Mean effort from [start] to absorption at [target]; [None] when
    the target is unreachable (infinite effort — the exploit is
    foiled). *)

val solve_linear : float array array -> float array -> float array option
(** Gaussian elimination with partial pivoting; [None] on a singular
    system.  Exposed for tests. *)

(** {2 Derivation from pFSM models} *)

val of_trace : retry:float -> Pfsm.Trace.t -> t
(** Chain over the trace's steps.  A hidden step is an obstacle the
    attacker probes with per-attempt success probability [retry]
    (geometric retries, one effort unit each); a spec-accepted step
    passes deterministically for one unit; a rejecting step has
    probability 0 — METF becomes infinite, i.e. {!metf} = [None].
    The chain ends in the compromised state when the trace
    completed. *)

val metf_of_model : retry:float -> Pfsm.Model.t -> scenario:Pfsm.Env.t -> float option
(** Build {!of_trace} from a run and compute METF.  On the paper's
    models: finite for every vulnerable configuration, [None] as soon
    as any single operation is secured — the lemma seen through
    Ortalo's metric. *)
