(** The model-checking school the paper contrasts with (Section 2):
    Sheyner-style attack graphs.

    We build the graph from data — the set of traces an
    {!Pfsm.Analysis.report} observed — rather than from a network
    description: nodes are cascade positions plus three terminals
    (compromised, foiled, benign), edges are the observed pFSM
    transitions, labelled normal or hidden.  Classic attack-graph
    questions then become graph queries:

    {ul
    {- {e reachability}: can the attacker reach the compromised
       state?}
    {- {e attack paths}: every distinct route there;}
    {- {e minimal cut}: the smallest set of hidden edges whose removal
       disconnects the attacker — which the paper's lemma predicts has
       size 1 for serial exploit chains.}} *)

type node =
  | Start
  | Site of { operation : string; pfsm : string }
  | Compromised
  | Foiled
  | Benign

type edge_kind = Normal_step | Hidden_step

type edge = { src : node; dst : node; kind : edge_kind }

type t

val of_report : Pfsm.Analysis.report -> t
(** One edge per observed step transition, deduplicated. *)

val nodes : t -> node list

val edges : t -> edge list

val exploit_reachable : t -> bool
(** A path Start → Compromised exists. *)

val attack_paths : t -> max_paths:int -> node list list
(** All simple Start→Compromised paths (bounded). *)

val hidden_edges : t -> edge list

val min_hidden_cut : t -> edge list option
(** A smallest set of hidden edges disconnecting Start from
    Compromised; [None] when no exploit is reachable (nothing to
    cut), [Some []] never. Exhaustive over subsets of ascending size
    (the graphs are small). *)

val agrees_with_lemma : t -> bool
(** Exploit reachable implies a hidden cut of size 1 exists — the
    attack-graph rendering of the paper's lemma for serial chains. *)

val node_label : node -> string

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
