type t = {
  states : int;
  start : int;
  target : int;
  mutable transitions : (int * int * float * float) list; (* src, dst, prob, effort *)
}

let create ~states ~start ~target =
  if states <= 0 || start < 0 || start >= states || target < 0 || target >= states then
    invalid_arg "Markov.create: bad state indices";
  { states; start; target; transitions = [] }

let add_transition t ~src ~dst ~prob ~effort =
  if src < 0 || src >= t.states || dst < 0 || dst >= t.states then
    invalid_arg "Markov.add_transition: bad state";
  if prob < 0.0 || prob > 1.0 then invalid_arg "Markov.add_transition: bad probability";
  t.transitions <- (src, dst, prob, effort) :: t.transitions

let outgoing_mass t src =
  List.fold_left
    (fun acc (s, _, p, _) -> if s = src then acc +. p else acc)
    0.0 t.transitions

let normalize_with_self_loops t =
  for s = 0 to t.states - 1 do
    if s <> t.target then begin
      let mass = outgoing_mass t s in
      if mass < 1.0 -. 1e-12 then
        add_transition t ~src:s ~dst:s ~prob:(1.0 -. mass) ~effort:1.0
    end
  done

(* Gaussian elimination with partial pivoting. *)
let solve_linear a b =
  let n = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let ok = ref true in
  for col = 0 to n - 1 do
    if !ok then begin
      (* pivot *)
      let pivot = ref col in
      for row = col + 1 to n - 1 do
        if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
      done;
      if Float.abs a.(!pivot).(col) < 1e-12 then ok := false
      else begin
        let tmp = a.(col) in
        a.(col) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tb = b.(col) in
        b.(col) <- b.(!pivot);
        b.(!pivot) <- tb;
        for row = col + 1 to n - 1 do
          let factor = a.(row).(col) /. a.(col).(col) in
          for k = col to n - 1 do
            a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
          done;
          b.(row) <- b.(row) -. (factor *. b.(col))
        done
      end
    end
  done;
  if not !ok then None
  else begin
    let x = Array.make n 0.0 in
    for row = n - 1 downto 0 do
      let sum = ref b.(row) in
      for k = row + 1 to n - 1 do
        sum := !sum -. (a.(row).(k) *. x.(k))
      done;
      x.(row) <- !sum /. a.(row).(row)
    done;
    Some x
  end

(* Reachability of [target] from [s] through positive-probability
   transitions; states that cannot reach the target have infinite
   expected effort. *)
let can_reach t =
  let reach = Array.make t.states false in
  reach.(t.target) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (src, dst, p, _) ->
         if p > 0.0 && reach.(dst) && not reach.(src) then begin
           reach.(src) <- true;
           changed := true
         end)
      t.transitions;
  done;
  reach

(* First-step analysis: E[s] = sum_d p(s,d) (effort(s,d) + E[d]),
   E[target] = 0.  Rearranged: E[s] - sum_d p(s,d) E[d] = c(s). *)
let metf t =
  let reach = can_reach t in
  if not reach.(t.start) then None
  else begin
    (* Only solve over states that reach the target; others are
       irrelevant (and would make the system singular). *)
    let live = ref [] in
    for s = t.states - 1 downto 0 do
      if reach.(s) && s <> t.target then live := s :: !live
    done;
    let live = Array.of_list !live in
    let index = Hashtbl.create 8 in
    Array.iteri (fun i s -> Hashtbl.replace index s i) live;
    let n = Array.length live in
    let a = Array.make_matrix n n 0.0 and b = Array.make n 0.0 in
    Array.iteri
      (fun i s ->
         a.(i).(i) <- 1.0;
         List.iter
           (fun (src, dst, p, effort) ->
              if src = s && p > 0.0 then begin
                b.(i) <- b.(i) +. (p *. effort);
                if dst <> t.target && reach.(dst) then begin
                  let j = Hashtbl.find index dst in
                  a.(i).(j) <- a.(i).(j) -. p
                end
              end)
           t.transitions)
      live;
    match solve_linear a b with
    | None -> None
    | Some x -> (
        match Hashtbl.find_opt index t.start with
        | Some i -> Some x.(i)
        | None -> None)
  end

(* ------------------------------------------------------------------ *)

let of_trace ~retry trace =
  if retry <= 0.0 || retry > 1.0 then invalid_arg "Markov.of_trace: bad retry";
  let steps = trace.Pfsm.Trace.steps in
  let n = List.length steps in
  (* state i = about to attempt step i; state n = compromised. *)
  let t = create ~states:(n + 1) ~start:0 ~target:n in
  List.iteri
    (fun i step ->
       let v = step.Pfsm.Trace.verdict in
       match v.Pfsm.Primitive.final, v.Pfsm.Primitive.hidden with
       | Pfsm.Primitive.Accept_state, true ->
           (* An obstacle: geometric probing. *)
           add_transition t ~src:i ~dst:(i + 1) ~prob:retry ~effort:1.0
       | Pfsm.Primitive.Accept_state, false ->
           add_transition t ~src:i ~dst:(i + 1) ~prob:1.0 ~effort:1.0
       | (Pfsm.Primitive.Reject_state | Pfsm.Primitive.Spec_check_state), _ ->
           (* The exploit is stopped here: no outgoing success. *)
           ())
    steps;
  (* The trace may have stopped early: if it did not complete, the
     last reached state has no path to the target at all. *)
  normalize_with_self_loops t;
  t

let metf_of_model ~retry model ~scenario =
  let trace = Pfsm.Model.run model ~env:scenario in
  if not trace.Pfsm.Trace.completed then None
  else metf (of_trace ~retry trace)
