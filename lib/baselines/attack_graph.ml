type node =
  | Start
  | Site of { operation : string; pfsm : string }
  | Compromised
  | Foiled
  | Benign

type edge_kind = Normal_step | Hidden_step

type edge = { src : node; dst : node; kind : edge_kind }

type t = { nodes : node list; edges : edge list }

let add_unique x xs = if List.mem x xs then xs else x :: xs

let edges_of_trace trace =
  let site (step : Pfsm.Trace.step) =
    Site { operation = step.Pfsm.Trace.operation;
           pfsm = step.Pfsm.Trace.pfsm.Pfsm.Primitive.name }
  in
  let final_terminal =
    if Pfsm.Trace.exploited trace then Compromised
    else if trace.Pfsm.Trace.completed then Benign
    else Foiled
  in
  (* Fold over the steps carrying the node we came from and the kind
     of the edge into the next node (= the exit verdict of the step
     just taken; entering from Start is a normal edge). *)
  let rec walk prev entry_kind steps acc =
    match steps with
    | [] -> List.rev acc
    | step :: rest -> (
        let here = site step in
        let acc = { src = prev; dst = here; kind = entry_kind } :: acc in
        let v = step.Pfsm.Trace.verdict in
        match v.Pfsm.Primitive.final with
        | Pfsm.Primitive.Reject_state | Pfsm.Primitive.Spec_check_state ->
            List.rev ({ src = here; dst = Foiled; kind = Normal_step } :: acc)
        | Pfsm.Primitive.Accept_state -> (
            let kind =
              if v.Pfsm.Primitive.hidden then Hidden_step else Normal_step
            in
            match rest with
            | [] -> List.rev ({ src = here; dst = final_terminal; kind } :: acc)
            | _ :: _ -> walk here kind rest acc))
  in
  walk Start Normal_step trace.Pfsm.Trace.steps []

let of_report (report : Pfsm.Analysis.report) =
  let all_edges =
    List.concat_map (fun (_, trace) -> edges_of_trace trace) report.Pfsm.Analysis.traces
  in
  let edges = List.fold_left (fun acc e -> add_unique e acc) [] all_edges in
  let nodes =
    List.fold_left
      (fun acc e -> add_unique e.src (add_unique e.dst acc))
      [ Start ] edges
  in
  { nodes = List.rev nodes; edges = List.rev edges }

let nodes t = t.nodes

let edges t = t.edges

let successors t ~removed node =
  List.filter_map
    (fun e ->
       if e.src = node && not (List.mem e removed) then Some e.dst else None)
    t.edges

let reachable ?(removed = []) t ~from ~target =
  let visited = ref [] in
  let rec go node =
    if node = target then true
    else if List.mem node !visited then false
    else begin
      visited := node :: !visited;
      List.exists go (successors t ~removed node)
    end
  in
  go from

let exploit_reachable t = reachable t ~from:Start ~target:Compromised

let attack_paths t ~max_paths =
  let paths = ref [] in
  let rec go node path =
    if List.length !paths >= max_paths then ()
    else if node = Compromised then paths := List.rev (node :: path) :: !paths
    else if List.mem node path then ()
    else
      List.iter (fun next -> go next (node :: path)) (successors t ~removed:[] node)
  in
  go Start [];
  List.rev !paths

let hidden_edges t = List.filter (fun e -> e.kind = Hidden_step) t.edges

(* All size-k subsets of a list. *)
let rec subsets k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let min_hidden_cut t =
  if not (exploit_reachable t) then None
  else begin
    let hidden = hidden_edges t in
    let rec try_size k =
      if k > List.length hidden then None
      else
        match
          List.find_opt
            (fun cut -> not (reachable t ~removed:cut ~from:Start ~target:Compromised))
            (subsets k hidden)
        with
        | Some cut -> Some cut
        | None -> try_size (k + 1)
    in
    try_size 1
  end

let agrees_with_lemma t =
  if not (exploit_reachable t) then true
  else match min_hidden_cut t with Some [ _ ] -> true | Some _ | None -> false

let node_label = function
  | Start -> "start"
  | Site { operation; pfsm } -> Printf.sprintf "%s / %s" operation pfsm
  | Compromised -> "COMPROMISED"
  | Foiled -> "foiled"
  | Benign -> "benign"

let pp ppf t =
  Format.fprintf ppf "@[<v>attack graph: %d nodes, %d edges (%d hidden)@,"
    (List.length t.nodes) (List.length t.edges)
    (List.length (hidden_edges t));
  List.iter
    (fun e ->
       Format.fprintf ppf "  %s --%s--> %s@," (node_label e.src)
         (match e.kind with Normal_step -> "" | Hidden_step -> "HIDDEN")
         (node_label e.dst))
    t.edges;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph attack_graph {\n  rankdir=LR;\n";
  let id node =
    "\"" ^ String.map (fun c -> if c = '"' then '\'' else c) (node_label node) ^ "\""
  in
  List.iter
    (fun e ->
       Printf.bprintf buf "  %s -> %s%s;\n" (id e.src) (id e.dst)
         (match e.kind with
          | Normal_step -> ""
          | Hidden_step -> " [style=dotted, color=red, label=\"hidden\"]"))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
