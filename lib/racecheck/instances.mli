(** The registered step systems the race analysis runs on.

    Each instance packages an application's concurrent step lists
    with a fresh-state constructor and the compromise predicate its
    replay confirmation checks.  Stock vulnerable variants sit next
    to their hardened counterparts ([+nofollow], [+ttycheck]) so the
    driver demonstrates both a confirmed and a refuted verdict on
    the same static finding, and next to the memory-error apps
    (rpc.statd, ghttpd) whose footprints contain no path attribute
    reads — the detector must stay silent there. *)

type t =
  | I : {
      name : string;  (** instance name, e.g. ["xterm+nofollow"] *)
      app : string;  (** application, one of {!apps} *)
      init : unit -> 'st;
      procs : 'st Osmodel.Scheduler.step list list;
      corrupted : 'st -> Apps.Outcome.t option;
    }
      -> t

val name : t -> string

val app : t -> string

val all : t list
(** Deterministic order: xterm, xterm+nofollow, rwall,
    rwall+ttycheck, rpcstatd, ghttpd. *)

val apps : string list
(** Valid [--app] arguments: ["xterm"; "rwall"; "rpcstatd"; "ghttpd"]. *)

val select : ?app:string -> unit -> t list
(** All instances, or only those of one application. *)
