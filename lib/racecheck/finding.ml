type t = {
  app : string;
  obj : string;
  check : string;
  use : string;
  writer : string;
  check_proc : int;
  check_idx : int;
  use_idx : int;
  writer_proc : int;
  writer_idx : int;
}

let to_string f =
  Printf.sprintf "%s: check %S then use %S on %s, concurrent writer %S"
    f.app f.check f.use f.obj f.writer

let pp ppf f = Format.pp_print_string ppf (to_string f)
