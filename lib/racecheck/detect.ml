module E = Osmodel.Effect
module Sched = Osmodel.Scheduler

(* Objects whose attributes the step checks: an attr read on a key
   the step itself never mutates.  Excluding self-mutating steps
   keeps an atomic stat-and-open (the footprint of an [O_NOFOLLOW]
   open, say) from being reported as its own check. *)
let attr_checks step =
  step.Sched.effects
  |> List.filter_map (fun e ->
         match e with
         | { E.action = E.Reads; obj = E.Path_attr p } ->
             let k = E.key e in
             if
               List.exists
                 (fun f -> E.write_like f.E.action && String.equal (E.key f) k)
                 step.Sched.effects
             then None
             else Some (p, k)
         | _ -> None)
  |> List.sort_uniq compare

let touches k step =
  List.exists (fun f -> String.equal (E.key f) k) step.Sched.effects

let mutates k step =
  List.exists
    (fun f -> E.write_like f.E.action && String.equal (E.key f) k)
    step.Sched.effects

let scan ~app procs =
  let procs = Array.of_list (List.map Array.of_list procs) in
  let findings = ref [] in
  Array.iteri
    (fun pi steps ->
      Array.iteri
        (fun si s ->
          List.iter
            (fun (obj, k) ->
              (* the first later same-process step touching the key is
                 the use; anything between check and use is inside the
                 window by construction *)
              let use = ref None in
              for ui = Array.length steps - 1 downto si + 1 do
                if touches k steps.(ui) then use := Some ui
              done;
              match !use with
              | None -> ()
              | Some ui ->
                  Array.iteri
                    (fun wi wsteps ->
                      if wi <> pi then
                        Array.iteri
                          (fun wsi w ->
                            if mutates k w then
                              findings :=
                                { Finding.app; obj;
                                  check = s.Sched.label;
                                  use = steps.(ui).Sched.label;
                                  writer = w.Sched.label;
                                  check_proc = pi; check_idx = si;
                                  use_idx = ui;
                                  writer_proc = wi; writer_idx = wsi }
                                :: !findings)
                          wsteps)
                    procs)
            (attr_checks s))
        steps)
    procs;
  List.rev !findings
