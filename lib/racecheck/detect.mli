(** The static TOCTTOU scan over declared step footprints.

    A finding is emitted for every triple (check, use, writer):
    - {b check}: a step reads [Path_attr o] and has no write-like
      effect on [o]'s key itself;
    - {b use}: the first later step of the {e same} process with any
      effect on [o]'s key;
    - {b writer}: any step of a {e different} process with a
      write-like effect on [o]'s key.

    Purely syntactic over footprints — no step is executed.  Sound
    w.r.t. declared footprints (every TOCTTOU expressible in them is
    flagged); precision comes from the dynamic confirmation pass in
    {!Driver}. *)

val scan :
  app:string -> 'st Osmodel.Scheduler.step list list -> Finding.t list
(** Findings in deterministic order: by checking process, then check
    step index, then object, then writer position. *)
