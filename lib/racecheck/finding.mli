(** A statically flagged TOCTTOU window.

    A step of one process reads an {e attribute} of object [obj]
    (the check), a later step of the same process touches [obj]
    again (the use), and a step of a concurrent process mutates
    [obj] (the writer).  If the writer can land between check and
    use, the checked attribute may be stale at use time — the
    classic time-of-check-to-time-of-use shape of Figure 5.

    A finding is only a {e candidate}: the driver replays the
    flagged window under the scheduler to confirm or refute it. *)

type t = {
  app : string;  (** application the step system models *)
  obj : string;  (** the raced object (a path) *)
  check : string;  (** label of the checking step *)
  use : string;  (** label of the using step *)
  writer : string;  (** label of the concurrent mutating step *)
  check_proc : int;  (** process index of check and use *)
  check_idx : int;
  use_idx : int;
  writer_proc : int;
  writer_idx : int;
}

val to_string : t -> string

val pp : Format.formatter -> t -> unit
