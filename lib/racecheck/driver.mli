(** Static race scan + dynamic confirmation.

    Mirrors the [staticcheck → Validate] bridge: {!Detect.scan}
    flags candidate TOCTTOU windows from declared footprints, then
    each finding is {e replayed} — the scheduler enumerates only the
    schedules realising the flagged window (writer strictly between
    check and use) and evaluates the instance's compromise
    predicate.  A finding is [Confirmed] by a witness schedule,
    [Refuted] when the window was exhausted without compromise, and
    [Unresolved] when the budget ran out first.

    With [~por:true] the window is enumerated over sleep-set
    representatives ({!Osmodel.Scheduler.schedules_n}); the window
    predicate is trace-invariant (the writer conflicts with both
    endpoints), so reduction changes only how many schedules are
    replayed, never the verdict. *)

type status =
  | Confirmed of { schedule : string list; explored : int }
      (** witness schedule (executed step labels) *)
  | Refuted of { explored : int }
      (** the whole window was replayed; no schedule compromises *)
  | Unresolved of { explored : int; total : int }
      (** budget exhausted; [total] is the unreduced interleaving
          count of the instance *)

type checked = { finding : Finding.t; status : status }

type instance_report = {
  instance : string;
  app : string;
  total : int;  (** unreduced interleaving count *)
  findings : checked list;
}

type report = {
  budget : int;
  por : bool;
  instances : instance_report list;
}

val default_budget : int
(** 512 replayed schedules per finding — enough for the stock
    instances under reduction, deliberately below their unreduced
    window sizes (see EXPERIMENTS.md RACE). *)

val analyze : ?budget:int -> ?por:bool -> ?app:string -> unit -> report
(** Scan and confirm every registered instance (or one app's).
    Instances are analysed through [Par.map_list]: deterministic,
    byte-identical output for every [DFSM_JOBS].  Bumps the
    [racecheck.findings] counter per static finding. *)

val confirmed : report -> bool
(** At least one finding is [Confirmed] — drives the CLI exit code. *)

val to_json : report -> string
(** Single-line deterministic JSON. *)

val pp : Format.formatter -> report -> unit
