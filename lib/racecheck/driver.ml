module E = Osmodel.Effect
module Sched = Osmodel.Scheduler

let default_budget = 512

type status =
  | Confirmed of { schedule : string list; explored : int }
  | Refuted of { explored : int }
  | Unresolved of { explored : int; total : int }

type checked = { finding : Finding.t; status : status }

type instance_report = {
  instance : string;
  app : string;
  total : int;
  findings : checked list;
}

type report = {
  budget : int;
  por : bool;
  instances : instance_report list;
}

let findings_counter = lazy (Obs.Metrics.counter "racecheck.findings")

(* Shares the scheduler's counter by name (registration is
   idempotent): schedules the replay did not have to run relative to
   full enumeration of the instance. *)
let por_pruned = lazy (Obs.Metrics.counter "scheduler.por_pruned")

(* Position of the (unique) label in a schedule. *)
let pos label sched =
  let rec go i = function
    | [] -> None
    | s :: rest ->
        if String.equal s.Sched.label label then Some i else go (i + 1) rest
  in
  go 0 sched

(* Restrict replay to schedules realising the flagged window: writer
   strictly between check and use.  The writer conflicts with both
   endpoints, so their relative order is invariant across a
   Mazurkiewicz trace — filtering partial-order-reduced
   representatives loses no windowed trace. *)
let in_window (f : Finding.t) sched =
  match (pos f.check sched, pos f.writer sched, pos f.use sched) with
  | Some c, Some w, Some u -> c < w && w < u
  | _ -> false

let confirm ~budget ~por ~init ~procs ~corrupted (f : Finding.t) =
  let independent = if por then Some E.independent else None in
  let total = Sched.interleaving_count_n (List.map List.length procs) in
  let schedules =
    Seq.filter (in_window f) (Sched.schedules_n ?independent procs)
  in
  let r =
    Sched.run_schedules ~budget:(Fault.Budget.of_fuel budget) ~init
      ~check:corrupted ~total schedules
  in
  if por && total < max_int && Fault.Budget.complete r.Sched.coverage then
    Obs.Metrics.add (Lazy.force por_pruned) (total - r.Sched.explored);
  match r.Sched.verdicts with
  | v :: _ ->
      Confirmed { schedule = v.Sched.schedule; explored = r.Sched.explored }
  | [] ->
      if Fault.Budget.complete r.Sched.coverage then
        Refuted { explored = r.Sched.explored }
      else Unresolved { explored = r.Sched.explored; total }

let analyze_instance ~budget ~por inst =
  match inst with
  | Instances.I { name; app; init; procs; corrupted } ->
      let findings = Detect.scan ~app procs in
      Obs.Metrics.add (Lazy.force findings_counter) (List.length findings);
      let total = Sched.interleaving_count_n (List.map List.length procs) in
      let findings =
        List.map
          (fun f ->
            { finding = f;
              status = confirm ~budget ~por ~init ~procs ~corrupted f })
          findings
      in
      { instance = name; app; total; findings }

let analyze ?(budget = default_budget) ?(por = false) ?app () =
  let instances = Instances.select ?app () in
  { budget; por;
    instances =
      Par.map_list ~label:"racecheck" (analyze_instance ~budget ~por) instances }

let confirmed report =
  List.exists
    (fun ir ->
      List.exists
        (fun c -> match c.status with Confirmed _ -> true | _ -> false)
        ir.findings)
    report.instances

(* ---- rendering ---------------------------------------------------- *)

let esc = Obs.Metrics.json_escape

let status_to_json = function
  | Confirmed { schedule; explored } ->
      Printf.sprintf "\"status\":\"confirmed\",\"explored\":%d,\"schedule\":[%s]"
        explored
        (String.concat ","
           (List.map (fun l -> Printf.sprintf "\"%s\"" (esc l)) schedule))
  | Refuted { explored } ->
      Printf.sprintf "\"status\":\"refuted\",\"explored\":%d" explored
  | Unresolved { explored; total } ->
      Printf.sprintf "\"status\":\"unresolved\",\"explored\":%d,\"total\":%d"
        explored total

let checked_to_json c =
  let f = c.finding in
  Printf.sprintf
    "{\"object\":\"%s\",\"check\":\"%s\",\"use\":\"%s\",\"writer\":\"%s\",%s}"
    (esc f.Finding.obj) (esc f.Finding.check) (esc f.Finding.use)
    (esc f.Finding.writer) (status_to_json c.status)

let instance_to_json ir =
  Printf.sprintf
    "{\"instance\":\"%s\",\"app\":\"%s\",\"interleavings\":%d,\"findings\":[%s]}"
    (esc ir.instance) (esc ir.app) ir.total
    (String.concat "," (List.map checked_to_json ir.findings))

let to_json report =
  Printf.sprintf
    "{\"budget\":%d,\"por\":%b,\"confirmed\":%b,\"instances\":[%s]}"
    report.budget report.por (confirmed report)
    (String.concat "," (List.map instance_to_json report.instances))

let pp_status ppf = function
  | Confirmed { schedule; explored } ->
      Format.fprintf ppf "CONFIRMED after %d windowed schedule%s@," explored
        (if explored = 1 then "" else "s");
      Format.fprintf ppf "    witness: %s"
        (String.concat " ; " schedule)
  | Refuted { explored } ->
      Format.fprintf ppf
        "refuted: no windowed schedule corrupts state (%d replayed)" explored
  | Unresolved { explored; total } ->
      Format.fprintf ppf
        "UNRESOLVED: budget exhausted after %d of up to %d schedules" explored
        total

let pp ppf report =
  Format.fprintf ppf "@[<v>racecheck: budget=%d por=%b@," report.budget
    report.por;
  List.iter
    (fun ir ->
      Format.fprintf ppf "%s (%s, %d interleavings): %d finding%s@,"
        ir.instance ir.app ir.total
        (List.length ir.findings)
        (if List.length ir.findings = 1 then "" else "s");
      List.iter
        (fun c ->
          Format.fprintf ppf "  %s@,  - check:  %s@,  - use:    %s@,  - writer: %s@,  - %a@,"
            c.finding.Finding.obj c.finding.Finding.check
            c.finding.Finding.use c.finding.Finding.writer pp_status c.status)
        ir.findings)
    report.instances;
  Format.fprintf ppf "verdict: %s@]"
    (if confirmed report then "CONFIRMED race(s) present"
     else "no confirmed race")
