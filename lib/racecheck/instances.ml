type t =
  | I : {
      name : string;
      app : string;
      init : unit -> 'st;
      procs : 'st Osmodel.Scheduler.step list list;
      corrupted : 'st -> Apps.Outcome.t option;
    }
      -> t

let name (I i) = i.name

let app (I i) = i.app

let xterm ~nofollow =
  I
    { name = (if nofollow then "xterm+nofollow" else "xterm");
      app = "xterm";
      init = Apps.Xterm.fresh_state;
      procs =
        [ Apps.Xterm.logger_steps { Apps.Xterm.open_nofollow = nofollow };
          Apps.Xterm.attacker_steps;
          Apps.Xterm.bystander_steps ];
      corrupted = Apps.Xterm.passwd_corrupted }

let rwall ~ttycheck =
  I
    { name = (if ttycheck then "rwall+ttycheck" else "rwall");
      app = "rwall";
      init = Apps.Rwall.race_fresh;
      procs =
        [ Apps.Rwall.daemon_steps { Apps.Rwall.recheck_at_open = ttycheck };
          Apps.Rwall.mallory_steps;
          Apps.Rwall.race_bystander_steps ];
      corrupted = Apps.Rwall.race_corrupted }

let rpcstatd =
  I
    { name = "rpcstatd";
      app = "rpcstatd";
      init = Apps.Rpc_statd.race_fresh;
      procs = [ Apps.Rpc_statd.server_steps; Apps.Rpc_statd.client_steps ];
      corrupted = Apps.Rpc_statd.race_compromised }

let ghttpd =
  I
    { name = "ghttpd";
      app = "ghttpd";
      init = Apps.Ghttpd.race_fresh;
      procs = [ Apps.Ghttpd.server_steps; Apps.Ghttpd.client_steps ];
      corrupted = Apps.Ghttpd.race_compromised }

let all =
  [ xterm ~nofollow:false; xterm ~nofollow:true;
    rwall ~ttycheck:false; rwall ~ttycheck:true;
    rpcstatd; ghttpd ]

let apps = [ "xterm"; "rwall"; "rpcstatd"; "ghttpd" ]

let select ?app:restrict () =
  match restrict with
  | None -> all
  | Some a -> List.filter (fun i -> String.equal (app i) a) all
