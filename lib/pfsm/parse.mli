(** A parser for the predicate language, inverse to {!Predicate.pp}.

    Lets users state specification and implementation predicates on
    the command line (the [dfsm check] command) and lets tests assert
    the pretty-printer/parser round trip.  Grammar (precedence low to
    high): [||], [&&], [!], comparisons, atoms.

    {v
      pred  ::= pred '||' pred | pred '&&' pred | '!' pred
              | '(' pred ')' | 'true' | 'false'
              | term CMP term | term '==' term      (on strings too)
              | 'contains' '(' term ',' STRING ')'
              | 'fits_int32' '(' term ')'
              | 'format_free' '(' term ')'
              | 'env' '[' IDENT ']'                 (boolean flag)
      term  ::= 'self' | 'env' '[' IDENT ']' | INT | STRING
              | 'length' '(' term ')'
              | 'decode' '^' INT '(' term ')'
      CMP   ::= '<=' | '<' | '==' | '!=' | '>=' | '>'
    v} *)

type error = { position : int; message : string }

val predicate : string -> (Predicate.t, error) result

val predicate_exn : string -> Predicate.t
(** Raises [Invalid_argument] with a located message. *)

val term : string -> (Predicate.term, error) result

val roundtrips : Predicate.t -> bool
(** [parse (to_string p)] succeeds and the result renders back to the
    same string — the property the test suite checks. *)
