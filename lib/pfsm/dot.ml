let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pred_label p = escape (Predicate.to_string p)

(* Nodes for one pFSM inside [buf]; returns (entry, accept) node ids. *)
let emit_pfsm buf ~id pfsm =
  let n suffix = Printf.sprintf "%s_%s" id suffix in
  let spec = pfsm.Primitive.spec and impl = pfsm.Primitive.impl in
  Printf.bprintf buf
    "    %s [shape=circle, label=\"SPEC\\ncheck\", tooltip=\"%s\"];\n"
    (n "check") (escape pfsm.Primitive.activity);
  Printf.bprintf buf "    %s [shape=doublecircle, label=\"accept\"];\n" (n "accept");
  Printf.bprintf buf "    %s [shape=circle, label=\"reject\", style=filled, fillcolor=gray85];\n"
    (n "reject");
  Printf.bprintf buf "    %s [shape=point, label=\"\"];\n" (n "mid");
  Printf.bprintf buf "    %s -> %s [label=\"SPEC_ACPT: %s\"];\n" (n "check") (n "accept")
    (pred_label spec);
  Printf.bprintf buf "    %s -> %s [label=\"SPEC_REJ: %s\"];\n" (n "check") (n "mid")
    (pred_label (Predicate.Not spec));
  if Primitive.missing_check pfsm then
    Printf.bprintf buf "    %s -> %s [label=\"IMPL_REJ: ?\", style=invis];\n" (n "mid")
      (n "reject")
  else
    Printf.bprintf buf "    %s -> %s [label=\"IMPL_REJ: %s\"];\n" (n "mid") (n "reject")
      (pred_label (Predicate.Not impl));
  if spec <> impl then
    Printf.bprintf buf
      "    %s -> %s [label=\"IMPL_ACPT\", style=dotted, color=red, fontcolor=red];\n"
      (n "mid") (n "accept");
  (n "check", n "accept")

let of_primitive pfsm =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "digraph pfsm {\n  rankdir=LR;\n";
  Printf.bprintf buf "  subgraph cluster_0 {\n    label=\"%s (%s)\";\n"
    (escape pfsm.Primitive.name)
    (escape (Taxonomy.to_string pfsm.Primitive.kind));
  ignore (emit_pfsm buf ~id:"p0" pfsm);
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

let of_model model =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "digraph %s {\n  rankdir=TB;\n  compound=true;\n"
    "vulnerability_model";
  Printf.bprintf buf "  label=\"%s\";\n" (escape model.Model.name);
  let gate_nodes = ref [] in
  List.iteri
    (fun oi binding ->
       let op = binding.Model.operation in
       Printf.bprintf buf "  subgraph cluster_op%d {\n    label=\"Operation %d: %s\";\n"
         oi (oi + 1) (escape op.Operation.name);
       let chain =
         List.mapi
           (fun pi stage ->
              emit_pfsm buf ~id:(Printf.sprintf "op%d_p%d" oi pi) stage.Operation.pfsm)
           op.Operation.stages
       in
       Buffer.add_string buf "  }\n";
       (* Chain accept of pFSM k to check of pFSM k+1. *)
       let rec link = function
         | (_, acc) :: ((chk, _) :: _ as rest) ->
             Printf.bprintf buf "  %s -> %s [style=bold];\n" acc chk;
             link rest
         | [ _ ] | [] -> ()
       in
       link chain;
       (* Propagation gate out of the operation's last accept. *)
       (match List.rev chain with
        | (_, last_accept) :: _ ->
            let gate = Printf.sprintf "gate%d" oi in
            Printf.bprintf buf "  %s [shape=triangle, label=\"%s\"];\n" gate
              (escape op.Operation.effect_label);
            Printf.bprintf buf "  %s -> %s;\n" last_accept gate;
            gate_nodes := (gate, oi) :: !gate_nodes
        | [] -> ());
       (* Gate of the previous operation feeds this operation's entry. *)
       if oi > 0 then
         (match chain with
          | (first_check, _) :: _ ->
              Printf.bprintf buf "  gate%d -> %s [style=dashed];\n" (oi - 1) first_check
          | [] -> ()))
    model.Model.bindings;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
