(** A complete FSM model of a vulnerability: operations cascaded by
    propagation gates (the triangles of Figures 3-7).

    A scenario — the attacker's inputs plus initial system facts — is
    an {!Env.t}.  Each operation draws its input object from the
    environment, runs its pFSM series, and on completion applies its
    effect, which is what downstream operations' predicates observe. *)

type binding = {
  operation : Operation.t;
  input : Env.t -> Value.t;     (** where this operation's object comes from *)
  input_label : string;
}

type t = {
  name : string;
  bugtraq_id : int option;
  description : string;
  bindings : binding list;
}

val bind : input:(Env.t -> Value.t) -> input_label:string -> Operation.t -> binding

val make :
  name:string -> ?bugtraq_id:int -> description:string -> binding list -> t

val run : t -> env:Env.t -> Trace.t
(** Cascade the operations over the scenario.  A rejection anywhere
    stops the cascade (the exploit is foiled); completion of all
    operations with at least one hidden transition is a successful
    exploit per the model. *)

val operations : t -> Operation.t list

val all_pfsms : t -> (string * Primitive.t) list
(** (operation name, pFSM) pairs, cascade order. *)

val operation_names : t -> string list

val secure_operation : t -> op_name:string -> t
(** Harden one operation (all of its checks) — the hypothesis of the
    paper's lemma, part 2. *)

val secure_pfsm : t -> op_name:string -> pfsm_name:string -> t
(** Harden a single elementary activity. *)

val secure_all : t -> t
