type transition = Spec_acpt | Spec_rej | Impl_rej | Impl_acpt

type state = Spec_check_state | Accept_state | Reject_state

type verdict = {
  final : state;
  path : transition list;
  hidden : bool;
}

type t = {
  name : string;
  kind : Taxonomy.kind;
  activity : string;
  spec : Predicate.t;
  impl : Predicate.t;
}

(* Interning spec/impl here puts every predicate in the system through
   the hashcons tables: model construction is the single choke point,
   so all downstream marshal digests see structure-determined
   sharing. *)
let make ~name ~kind ~activity ~spec ~impl =
  { name; kind; activity;
    spec = Predicate.intern spec;
    impl = Predicate.intern impl }

let run t ~env ~self =
  if Predicate.holds ~env ~self t.spec then
    { final = Accept_state; path = [ Spec_acpt ]; hidden = false }
  else if Predicate.holds ~env ~self t.impl then
    { final = Accept_state; path = [ Spec_rej; Impl_acpt ]; hidden = true }
  else
    { final = Reject_state; path = [ Spec_rej; Impl_rej ]; hidden = false }

let missing_check t = Predicate.no_check t.impl

let hidden_path_on t ~env ~self = (run t ~env ~self).hidden

let secured t = { t with impl = t.spec }

let transition_to_string = function
  | Spec_acpt -> "SPEC_ACPT"
  | Spec_rej -> "SPEC_REJ"
  | Impl_rej -> "IMPL_REJ"
  | Impl_acpt -> "IMPL_ACPT"

let state_to_string = function
  | Spec_check_state -> "SPEC check"
  | Accept_state -> "accept"
  | Reject_state -> "reject"

let pp_verdict ppf v =
  Format.fprintf ppf "%s via %s%s"
    (state_to_string v.final)
    (String.concat " -> " (List.map transition_to_string v.path))
    (if v.hidden then " [HIDDEN PATH]" else "")
