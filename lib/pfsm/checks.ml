let registry =
  [ ("representable_int32", Taxonomy.Object_type_check);
    ("is_terminal", Taxonomy.Object_type_check);
    ("index_in_bounds", Taxonomy.Content_attribute_check);
    ("length_within", Taxonomy.Content_attribute_check);
    ("length_fits_buffer", Taxonomy.Content_attribute_check);
    ("non_negative", Taxonomy.Content_attribute_check);
    ("traversal_free", Taxonomy.Content_attribute_check);
    ("format_free", Taxonomy.Content_attribute_check);
    ("has_privilege", Taxonomy.Content_attribute_check);
    ("reference_unchanged", Taxonomy.Reference_consistency_check);
    ("address_equals", Taxonomy.Reference_consistency_check) ]

let kind_of name = List.assoc_opt name registry

let names = List.map fst registry

let representable_int32 = Predicate.Fits_int32 Predicate.Self

let is_terminal ~kind_key =
  Predicate.Str_eq (Predicate.Env_val kind_key, Predicate.Lit (Value.Str "terminal"))

let index_in_bounds ~low ~high = Predicate.between Predicate.Self ~low ~high

let length_within n =
  Predicate.Cmp (Predicate.Le, Predicate.Length Predicate.Self, Predicate.Lit (Value.Int n))

let length_fits_buffer ~size_key =
  Predicate.Cmp (Predicate.Le, Predicate.Length Predicate.Self, Predicate.Env_val size_key)

let non_negative =
  Predicate.Cmp (Predicate.Ge, Predicate.Self, Predicate.Lit (Value.Int 0))

let traversal_free ~decodes =
  Predicate.Not (Predicate.Contains (Predicate.Decode (decodes, Predicate.Self), "../"))

let format_free = Predicate.Is_format_free Predicate.Self

let has_privilege ~flag = Predicate.Env_flag flag

let reference_unchanged ~flag = Predicate.Env_flag flag

let address_equals v = Predicate.Cmp (Predicate.Eq, Predicate.Self, Predicate.Lit v)

let pfsm ~name ~check ~activity ?(impl = Predicate.True) spec =
  match kind_of check with
  | None -> invalid_arg ("Checks.pfsm: unknown check " ^ check)
  | Some kind -> Primitive.make ~name ~kind ~activity ~spec ~impl
