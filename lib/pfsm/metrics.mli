(** Structural metrics of models — the quantities behind the paper's
    three Observations (Section 3.2).

    Observation 1: exploits pass through multiple elementary
    activities; Observation 2: they involve multiple operations on
    several objects; Observation 3: each activity carries a derived
    predicate.  These are countable properties of a model, tabulated
    here for all studied vulnerabilities. *)

type t = {
  model_name : string;
  operations : int;           (** Observation 2: operations in the cascade *)
  objects : string list;      (** Observation 2: distinct objects manipulated *)
  elementary_activities : int;(** Observation 1: pFSMs in total *)
  predicates : int;           (** Observation 3: one per pFSM, by construction *)
  distinct_predicates : int;  (** distinct spec/impl predicates (hashconsed) *)
  missing_checks : int;       (** pFSMs whose implementation checks nothing *)
  kinds : (Taxonomy.kind * int) list;
}

val of_model : Model.t -> t

val observation1_holds : t -> bool
(** At least two elementary activities. *)

val observation2_holds : t -> bool
(** More than one operation, or several objects. *)

val observation3_holds : t -> bool
(** Every elementary activity carries a (non-trivial) specification
    predicate. *)

val pp : Format.formatter -> t -> unit

val pp_table : Format.formatter -> t list -> unit
