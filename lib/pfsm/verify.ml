type domain =
  | Int_range of { low : int; high : int }
  | Int_edges
  | Strings of string list
  | Alphabet_strings of { alphabet : string; max_len : int }

type result =
  | Verified of { candidates : int }
  | Refuted of { witness : Value.t; candidates_tried : int }
  | Budget_exhausted of { tried : int; total : int }
  | Domain_too_large of { bound : int }

let max_candidates = 100_000

let int_edges =
  let around v = [ v - 1; v; v + 1 ] in
  List.concat_map around
    [ 0; 100; 1024; 0x7fff_ffff; -0x8000_0000; 0x8000_0000; -1024 ]

let rec alphabet_count ~k ~max_len =
  if max_len < 0 then 0
  else if max_len = 0 then 1
  else 1 + (k * alphabet_count ~k ~max_len:(max_len - 1))

let size = function
  | Int_range { low; high } -> max 0 (high - low + 1)
  | Int_edges -> List.length int_edges
  | Strings l -> List.length l
  | Alphabet_strings { alphabet; max_len } ->
      alphabet_count ~k:(String.length alphabet) ~max_len

let enumerate = function
  | Int_range { low; high } ->
      List.init (max 0 (high - low + 1)) (fun i -> Value.Int (low + i))
  | Int_edges -> List.map (fun v -> Value.Int v) int_edges
  | Strings l -> List.map (fun s -> Value.Str s) l
  | Alphabet_strings { alphabet; max_len } ->
      let letters = List.init (String.length alphabet) (String.get alphabet) in
      let rec level acc current n =
        if n = 0 then List.rev_append current acc
        else
          let next =
            List.concat_map
              (fun s -> List.map (fun c -> s ^ String.make 1 c) letters)
              current
          in
          level (List.rev_append current acc) next (n - 1)
      in
      List.map (fun s -> Value.Str s) (level [] [ "" ] max_len)

let verify ?(env = Env.empty) ?budget pfsm domain =
  let bound = size domain in
  if bound > max_candidates then Domain_too_large { bound }
  else
    let budget = match budget with Some b -> b | None -> Fault.Budget.unlimited () in
    let candidates = enumerate domain in
    let hidden self =
      match
        ( Predicate.holds_safely ~env ~self pfsm.Primitive.impl,
          Predicate.holds_safely ~env ~self pfsm.Primitive.spec )
      with
      | Some true, Some false -> true
      | (Some _ | None), (Some _ | None) -> false
    in
    let rec scan tried = function
      | [] -> Verified { candidates = tried }
      | c :: rest ->
          if not (Fault.Budget.take budget) then
            Budget_exhausted { tried; total = bound }
          else if hidden c then Refuted { witness = c; candidates_tried = tried + 1 }
          else scan (tried + 1) rest
    in
    scan 0 candidates

let verify_secured ?(env = Env.empty) ?budget pfsm domain =
  match verify ~env ?budget (Primitive.secured pfsm) domain with
  | Verified _ -> true
  | Refuted _ | Budget_exhausted _ | Domain_too_large _ -> false

let pp_result ppf = function
  | Verified { candidates } ->
      Format.fprintf ppf "VERIFIED: impl => spec on all %d candidates" candidates
  | Refuted { witness; candidates_tried } ->
      Format.fprintf ppf "REFUTED: hidden path on %a (after %d candidates)" Value.pp
        witness candidates_tried
  | Budget_exhausted { tried; total } ->
      Format.fprintf ppf "PARTIAL: budget exhausted after %d of %d candidates" tried
        total
  | Domain_too_large { bound } ->
      Format.fprintf ppf "domain too large (%d > %d)" bound max_candidates
