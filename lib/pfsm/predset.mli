(** Immutable sets of interned predicates, packed as bitsets over
    {!Predicate.id}.

    Membership is a single word test and union/intersection are
    word-wise logical ops, replacing the [List.mem] /
    [List.sort_uniq compare] idiom (and its per-call sort allocation)
    on the analysis hot paths.  Values are normalized — no trailing
    zero words — so structural equality is set equality.

    Every constructor interns its argument via {!Predicate.id}, so
    sets built from structurally equal predicates coincide bit for
    bit.  Ids (and therefore the packed representation) are stable
    only within one process; serialize predicates, never bitsets. *)

type t

val empty : t
val is_empty : t -> bool

val mem : Predicate.t -> t -> bool
val add : Predicate.t -> t -> t
val singleton : Predicate.t -> t
val of_list : Predicate.t list -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val equal : t -> t -> bool
val subset : t -> t -> bool
val cardinal : t -> int

val fold : (Predicate.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending {!Predicate.id} order. *)

val elements : t -> Predicate.t list
(** Canonical predicates, ascending id order. *)

(** {2 Raw id views} (test and bench hooks) *)

val mem_id : int -> t -> bool
val add_id : int -> t -> t
val fold_ids : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_ids : t -> int list
