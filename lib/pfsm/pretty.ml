let pp_pfsm ppf (p : Primitive.t) =
  Format.fprintf ppf "@[<v2>%s [%s] -- %s@,SPEC accepts iff: %a@,IMPL accepts iff: %a%s@]"
    p.Primitive.name
    (Taxonomy.to_string p.Primitive.kind)
    p.Primitive.activity
    Predicate.pp p.Primitive.spec
    Predicate.pp p.Primitive.impl
    (if Primitive.missing_check p then "   <-- no check in implementation (?)" else "")

let pp_operation ppf (op : Operation.t) =
  Format.fprintf ppf "@[<v2>Operation: %s (object: %s)@," op.Operation.name
    op.Operation.object_name;
  List.iteri
    (fun i stage ->
       if i > 0 then Format.fprintf ppf "@,";
       pp_pfsm ppf stage.Operation.pfsm;
       if stage.Operation.action_label <> "" then
         Format.fprintf ppf "@,  on accept: %s" stage.Operation.action_label)
    op.Operation.stages;
  if op.Operation.effect_label <> "" then
    Format.fprintf ppf "@,==> propagation gate: %s" op.Operation.effect_label;
  Format.fprintf ppf "@]"

let pp_model ppf (m : Model.t) =
  Format.fprintf ppf "@[<v>FSM model: %s%s@,%s@,"
    m.Model.name
    (match m.Model.bugtraq_id with
     | Some id -> Printf.sprintf " (Bugtraq #%d)" id
     | None -> "")
    m.Model.description;
  List.iteri
    (fun i b ->
       Format.fprintf ppf "@,";
       Format.fprintf ppf "[%d] input: %s@," (i + 1) b.Model.input_label;
       pp_operation ppf b.Model.operation;
       Format.fprintf ppf "@,")
    m.Model.bindings;
  Format.fprintf ppf "@]"

let pp_finding ppf (f : Analysis.pfsm_finding) =
  Format.fprintf ppf "%-28s %-8s %-30s hidden-hits=%d%s"
    f.Analysis.operation
    f.Analysis.pfsm.Primitive.name
    (Taxonomy.to_string f.Analysis.pfsm.Primitive.kind)
    f.Analysis.hidden_hits
    (if f.Analysis.missing_check then "  [no impl check]" else "")

let pp_report ppf (r : Analysis.report) =
  let exploited = Analysis.exploited r in
  Format.fprintf ppf "@[<v>analysis of %s: %d scenarios, %d exploited@,"
    r.Analysis.model.Model.name r.Analysis.scenarios_run (List.length exploited);
  List.iter (fun f -> Format.fprintf ppf "  %a@," pp_finding f) r.Analysis.findings;
  (match Analysis.vulnerable_operations r with
   | [] -> Format.fprintf ppf "  no vulnerable operation detected@,"
   | ops ->
       Format.fprintf ppf "  vulnerable operations: %s@," (String.concat ", " ops));
  Format.fprintf ppf "@]"

let pp_matrix ppf matrix =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (kind, cells) ->
       Format.fprintf ppf "%-32s: %s@,"
         (Taxonomy.to_string kind)
         (match cells with
          | [] -> "-"
          | _ ->
              String.concat ", "
                (List.map (fun (_op, p) -> p.Primitive.name) cells)))
    matrix;
  Format.fprintf ppf "@]"

let pp_lemma_checks ppf checks =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (c : Lemma.check) ->
       Format.fprintf ppf "secure %-40s => exploit %s@," c.Lemma.op_name
         (if c.Lemma.foiled then "FOILED" else "still succeeds (!)"))
    checks;
  Format.fprintf ppf "@]"

let model_to_string m = Format.asprintf "%a" pp_model m
