(** The predicate language of elementary activities.

    Observation 3 of the paper: for each elementary activity, the
    vulnerability data and code inspection yield a predicate whose
    violation is the vulnerability.  Predicates here are a small
    first-order language over the object under check ({!term} [Self])
    and environment facts, rich enough to express every predicate in
    the paper's Figures 3-8 and Table 2, and simple enough to
    evaluate, compare (spec vs implementation) and render as the
    Condition labels of the figures. *)

type term =
  | Self                          (** the object the pFSM checks *)
  | Env_val of string             (** an environment fact *)
  | Lit of Value.t
  | Length of term                (** string length *)
  | Decode of int * term          (** URL percent-decoding, [n] passes *)

type cmp = Le | Lt | Eq | Ne | Ge | Gt

type t =
  | True                          (** accept everything (= no check) *)
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * term * term      (** numeric comparison *)
  | Str_eq of term * term
  | Contains of term * string     (** substring test *)
  | Contains_any of term * string list
  | Fits_int32 of term            (** value representable as signed 32-bit;
                                      on strings, of the integer they denote *)
  | Is_format_free of term        (** no printf conversion directives *)
  | Env_flag of string            (** boolean environment fact, absent = false *)

exception Type_error of string

val eval_term : env:Env.t -> self:Value.t -> term -> Value.t

val holds : env:Env.t -> self:Value.t -> t -> bool
(** Raises {!Type_error} when the predicate is ill-typed for the
    object (e.g. [Length] of an integer). *)

val holds_safely : env:Env.t -> self:Value.t -> t -> bool option
(** [None] when evaluation raised {!Type_error} or referenced an
    absent environment key. *)

val no_check : t -> bool
(** Whether the predicate accepts unconditionally — the figures'
    missing IMPL_REJ transition, marked "?". *)

val conj : t list -> t

val disj : t list -> t

val between : term -> low:int -> high:int -> t
(** [low <= term && term <= high] — the paper's canonical
    [0 <= x <= 100] array-index predicate. *)

(** {2 Hashconsing} *)

val intern : t -> t
(** Canonicalize through the hashcons tables: the result is
    structurally equal to the input, and structurally equal interned
    predicates are physically equal.  Maximal sharing makes the
    marshal image of an interned model depend on structure alone —
    the property the analysis-memo digest key relies on.  Thread-safe;
    called once at construction time ({!Primitive.make}), never on the
    evaluation hot path. *)

val equal : t -> t -> bool
(** Structural equality with a physical fast path (free after
    {!intern}). *)

val id : t -> int
(** The dense intern id of a predicate: canonical nodes are numbered
    0, 1, 2, ... in canonization order, and the numbering is stable
    for the life of the process (nodes are never evicted).  [id]
    interns its argument, so it is total; on an already-interned
    predicate it costs one table lookup.  Ids are the bit positions
    {!Predset} packs predicate sets into — they depend on construction
    order and must never cross a process boundary (digests, not ids,
    key the persistent tiers). *)

val of_id : int -> t option
(** The canonical predicate carrying an id, [None] if no predicate has
    been assigned it yet. *)

val max_id : unit -> int
(** One past the largest id assigned so far (= distinct canonical
    predicates interned). *)

type intern_stats = { distinct : int; hits : int }

val intern_stats : unit -> intern_stats
(** [distinct] canonical nodes live in the tables; [hits] lookups that
    found an existing node. *)

val pp_term : Format.formatter -> term -> unit

val pp : Format.formatter -> t -> unit
(** Renders like the paper's condition labels:
    ["0 <= x && x <= 100"], ["!contains(decode^2(self), \"../\")"]. *)

val to_string : t -> string
