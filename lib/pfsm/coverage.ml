(* Per-pFSM transition coverage: which of the four Figure-2 edges
   (SPEC_ACPT / SPEC_REJ / IMPL_REJ / IMPL_ACPT) each primitive
   exercised across a corpus of scenarios.  This turns the paper's
   Figure-8 taxonomy into a measurable quantity: a pFSM whose SPEC_REJ
   edge never fired was never challenged by the corpus, and an
   IMPL_ACPT count > 0 is a driven hidden path. *)

type cell = {
  operation : string;
  pfsm : string;
  kind : Taxonomy.kind;
  spec_acpt : int;
  spec_rej : int;
  impl_rej : int;
  impl_acpt : int;
}

type t = { scenarios : int; cells : cell list }

let exercised c =
  (if c.spec_acpt > 0 then 1 else 0)
  + (if c.spec_rej > 0 then 1 else 0)
  + (if c.impl_rej > 0 then 1 else 0)
  + if c.impl_acpt > 0 then 1 else 0

let edges_total t = 4 * List.length t.cells

let edges_exercised t =
  List.fold_left (fun acc c -> acc + exercised c) 0 t.cells

let pct t =
  let total = edges_total t in
  if total = 0 then 0.0
  else 100.0 *. float_of_int (edges_exercised t) /. float_of_int total

let of_report (report : Analysis.report) =
  (* counts keyed by (operation, pfsm name); cells are emitted in
     model order, so the rendering is deterministic *)
  let counts : (string * string, int array) Hashtbl.t = Hashtbl.create 64 in
  let bump op name tr =
    let key = (op, name) in
    let a =
      match Hashtbl.find_opt counts key with
      | Some a -> a
      | None ->
          let a = Array.make 4 0 in
          Hashtbl.add counts key a;
          a
    in
    let i =
      match tr with
      | Primitive.Spec_acpt -> 0
      | Primitive.Spec_rej -> 1
      | Primitive.Impl_rej -> 2
      | Primitive.Impl_acpt -> 3
    in
    a.(i) <- a.(i) + 1
  in
  List.iter
    (fun (_env, trace) ->
      List.iter
        (fun (s : Trace.step) ->
          List.iter
            (fun tr -> bump s.operation s.pfsm.Primitive.name tr)
            s.verdict.Primitive.path)
        trace.Trace.steps)
    report.Analysis.traces;
  let cell_of (op, (p : Primitive.t)) =
    let a =
      match Hashtbl.find_opt counts (op, p.name) with
      | Some a -> a
      | None -> Array.make 4 0
    in
    { operation = op;
      pfsm = p.name;
      kind = p.kind;
      spec_acpt = a.(0);
      spec_rej = a.(1);
      impl_rej = a.(2);
      impl_acpt = a.(3) }
  in
  { scenarios = report.Analysis.scenarios_run;
    cells = List.map cell_of (Model.all_pfsms report.Analysis.model) }

(* Coverage tables from several reports side by side (e.g. one per
   corpus file): cells for the same (operation, pfsm) sum. *)
let merge a b =
  let tbl = Hashtbl.create 64 in
  let add c =
    let key = (c.operation, c.pfsm) in
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.add tbl key c
    | Some c0 ->
        Hashtbl.replace tbl key
          { c0 with
            spec_acpt = c0.spec_acpt + c.spec_acpt;
            spec_rej = c0.spec_rej + c.spec_rej;
            impl_rej = c0.impl_rej + c.impl_rej;
            impl_acpt = c0.impl_acpt + c.impl_acpt }
  in
  List.iter add a.cells;
  List.iter add b.cells;
  (* keep first-seen order: a's cells, then b's novel ones *)
  let seen = Hashtbl.create 64 in
  let ordered =
    List.filter_map
      (fun c ->
        let key = (c.operation, c.pfsm) in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Hashtbl.find_opt tbl key
        end)
      (a.cells @ b.cells)
  in
  { scenarios = a.scenarios + b.scenarios; cells = ordered }

let empty = { scenarios = 0; cells = [] }

let pp ppf t =
  Format.fprintf ppf
    "transition coverage: %d/%d edges (%.1f%%) over %d scenarios@."
    (edges_exercised t) (edges_total t) (pct t) t.scenarios;
  Format.fprintf ppf "  %-50s %-10s %9s %9s %9s %9s@." "operation / pfsm"
    "kind" "SPEC_ACPT" "SPEC_REJ" "IMPL_REJ" "IMPL_ACPT";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-50s %-10s %9d %9d %9d %9d@."
        (c.operation ^ "/" ^ c.pfsm)
        (match c.kind with
        | Taxonomy.Object_type_check -> "type"
        | Taxonomy.Content_attribute_check -> "content"
        | Taxonomy.Reference_consistency_check -> "reference")
        c.spec_acpt c.spec_rej c.impl_rej c.impl_acpt)
    t.cells

let to_json t =
  let cell_json c =
    Printf.sprintf
      "{\"operation\":\"%s\",\"pfsm\":\"%s\",\"kind\":\"%s\",\"spec_acpt\":%d,\"spec_rej\":%d,\"impl_rej\":%d,\"impl_acpt\":%d,\"exercised\":%d}"
      (Obs.Metrics.json_escape c.operation)
      (Obs.Metrics.json_escape c.pfsm)
      (Obs.Metrics.json_escape (Taxonomy.to_string c.kind))
      c.spec_acpt c.spec_rej c.impl_rej c.impl_acpt (exercised c)
  in
  Printf.sprintf
    "{\"scenarios\":%d,\"edges_exercised\":%d,\"edges_total\":%d,\"pct\":%.1f,\"cells\":[%s]}"
    t.scenarios (edges_exercised t) (edges_total t) (pct t)
    (String.concat "," (List.map cell_json t.cells))
