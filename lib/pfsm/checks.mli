(** A library of reusable security predicates.

    The paper's conclusion calls for "a comprehensive understanding of
    these predicates" as the path to an automatic analysis tool; this
    module collects the generic predicates its studied vulnerabilities
    needed, each tagged with the Figure-8 pFSM type it belongs to, so
    new models can be assembled from named checks instead of raw
    predicate syntax. *)

val kind_of : string -> Taxonomy.kind option
(** The generic type of a named check from this module. *)

val names : string list
(** All check names known to {!kind_of}. *)

(** {2 Object type checks} *)

val representable_int32 : Predicate.t
(** The object (string or integer) denotes a value a C [int] holds —
    Sendmail's pFSM1. *)

val is_terminal : kind_key:string -> Predicate.t
(** The environment fact [kind_key] says the target is a terminal —
    rwall's pFSM2. *)

(** {2 Content and attribute checks} *)

val index_in_bounds : low:int -> high:int -> Predicate.t
(** [low <= self <= high] — the array-index check. *)

val length_within : int -> Predicate.t
(** [length(self) <= n] — GHTTPD's 200-byte check. *)

val length_fits_buffer : size_key:string -> Predicate.t
(** [length(self) <= env\[size_key\]] — NULL HTTPD's pFSM2. *)

val non_negative : Predicate.t

val traversal_free : decodes:int -> Predicate.t
(** No ["../"] after [decodes] passes of URL decoding — IIS's pFSM1. *)

val format_free : Predicate.t
(** No printf conversion directives — rpc.statd's pFSM1. *)

val has_privilege : flag:string -> Predicate.t
(** The environment grants the privilege — rwall's pFSM1. *)

(** {2 Reference consistency checks} *)

val reference_unchanged : flag:string -> Predicate.t
(** The binding recorded at check time still holds at use time
    (return address, GOT entry, chunk links, file binding). *)

val address_equals : Value.t -> Predicate.t
(** The reference still points at the recorded address. *)

(** {2 Assembly helpers} *)

val pfsm :
  name:string ->
  check:string ->
  activity:string ->
  ?impl:Predicate.t ->
  Predicate.t ->
  Primitive.t
(** [pfsm ~name ~check ~activity spec] builds a primitive FSM whose
    taxonomy kind is derived from the named [check]; [impl] defaults
    to no check at all ([Predicate.True]), i.e. the vulnerable
    configuration. Raises [Invalid_argument] on an unknown check
    name. *)
