open Predicate

let fold_cmp op a b =
  let numeric = function Value.Int n -> Some n | Value.Addr a -> Some a | _ -> None in
  match a, b with
  | Lit va, Lit vb -> (
      match numeric va, numeric vb with
      | Some x, Some y ->
          let result =
            match op with
            | Le -> x <= y
            | Lt -> x < y
            | Eq -> x = y
            | Ne -> x <> y
            | Ge -> x >= y
            | Gt -> x > y
          in
          Some (if result then True else False)
      | _, _ -> None)
  | _, _ -> None

let rec step p =
  match p with
  | True | False | Env_flag _ -> p
  | Not q -> (
      match step q with
      | True -> False
      | False -> True
      | Not r -> r
      | q' -> Not q')
  | And (a, b) -> (
      match step a, step b with
      | True, b' -> b'
      | a', True -> a'
      | False, _ | _, False -> False
      | a', b' -> And (a', b'))
  | Or (a, b) -> (
      match step a, step b with
      | False, b' -> b'
      | a', False -> a'
      | True, _ | _, True -> True
      | a', b' -> Or (a', b'))
  | Cmp (op, a, b) -> (
      match fold_cmp op a b with
      | Some folded -> folded
      | None -> p)
  | Str_eq (Lit (Value.Str x), Lit (Value.Str y)) ->
      if String.equal x y then True else False
  | Str_eq _ -> p
  | Contains (_, "") -> True
  | Contains (Lit (Value.Str s), needle) ->
      let nh = String.length s and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub s i nn = needle || at (i + 1)) in
      if at 0 then True else False
  | Contains _ -> p
  | Contains_any (_, []) -> False
  | Contains_any (t, [ needle ]) -> step (Contains (t, needle))
  | Contains_any _ -> p
  | Fits_int32 (Lit (Value.Int n)) -> if Strcodec.fits_int32 n then True else False
  | Fits_int32 _ -> p
  | Is_format_free (Lit (Value.Str s)) ->
      if Strcodec.contains_format_directive s then False else True
  | Is_format_free _ -> p

let rec simplify p =
  let p' = step p in
  if p' = p then p else simplify p'

let refines_on candidates ~original ~simplified =
  List.for_all
    (fun (env, self) ->
       match holds_safely ~env ~self original, holds_safely ~env ~self simplified with
       | Some a, Some b -> a = b
       | None, _ -> true
       | Some _, None -> false)
    candidates

let rec size = function
  | True | False | Env_flag _ -> 1
  | Not p -> 1 + size p
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Cmp (_, a, b) -> 1 + term_size a + term_size b
  | Str_eq (a, b) -> 1 + term_size a + term_size b
  | Contains (t, _) | Contains_any (t, _) | Fits_int32 t | Is_format_free t ->
      1 + term_size t

and term_size = function
  | Self | Env_val _ | Lit _ -> 1
  | Length t | Decode (_, t) -> 1 + term_size t
