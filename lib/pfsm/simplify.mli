(** Predicate simplification.

    Models assembled programmatically (or parsed from user input)
    accumulate trivialities — [And (True, p)], double negations,
    constant comparisons.  [simplify] normalises them, preserving
    semantics on every object/environment (property-tested), so that
    rendered figures and Dot labels stay readable and [no_check]
    detection sees through wrappings like [And (True, True)]. *)

val simplify : Predicate.t -> Predicate.t
(** Fixpoint of the rewrite rules:
    - [!!p → p], [!true → false], [!false → true]
    - [true && p → p], [false && p → false] (and symmetric)
    - [false || p → p], [true || p → true] (and symmetric)
    - constant comparisons on literals are folded
    - [contains(t, "")] → [true]
    - [contains_any] with an empty list → [false], with one needle →
      [contains] *)

val refines_on :
  (Env.t * Value.t) list -> original:Predicate.t -> simplified:Predicate.t -> bool
(** Preservation oracle: wherever the original evaluates, the
    simplified predicate evaluates to the same boolean.  (The
    simplified form may be {e more} defined — e.g.
    [And (False, ill_typed)] folds to [False], turning an evaluation
    error into a clean rejection.) *)

val size : Predicate.t -> int
(** Number of AST nodes (simplification never increases it). *)
