type step = {
  operation : string;
  pfsm : Primitive.t;
  verdict : Primitive.verdict;
}

type t = {
  model : string;
  steps : step list;
  completed : bool;
  stopped_at : (string * string) option;
  final_env : Env.t;
}

let hidden_steps t = List.filter (fun s -> s.verdict.Primitive.hidden) t.steps

let hidden_count t = List.length (hidden_steps t)

let exploited t = t.completed && hidden_count t > 0

let foiled t = not t.completed

let pp ppf t =
  Format.fprintf ppf "@[<v>trace of %s:@," t.model;
  List.iter
    (fun s ->
       Format.fprintf ppf "  [%s] %s: %a@," s.operation s.pfsm.Primitive.name
         Primitive.pp_verdict s.verdict)
    t.steps;
  (match t.stopped_at with
   | Some (op, pfsm) -> Format.fprintf ppf "  FOILED at %s / %s@," op pfsm
   | None ->
       Format.fprintf ppf "  completed%s@,"
         (if hidden_count t > 0 then " via hidden path(s) -- EXPLOITED" else " (benign)"));
  Format.fprintf ppf "@]"
