(** Per-pFSM transition coverage.

    The paper's Figure-8 taxonomy made measurable: for every
    (operation, pFSM) pair of a model, how many scenarios drove each
    of the four Figure-2 edges — SPEC_ACPT, SPEC_REJ, IMPL_REJ and the
    hidden IMPL_ACPT.  A pFSM whose SPEC_REJ edge never fired was
    never challenged by the corpus; an IMPL_ACPT count [> 0] is a
    driven hidden path. *)

type cell = {
  operation : string;
  pfsm : string;
  kind : Taxonomy.kind;
  spec_acpt : int;
  spec_rej : int;
  impl_rej : int;
  impl_acpt : int;
}

type t = { scenarios : int; cells : cell list }

val of_report : Analysis.report -> t
(** Walk every trace of the report; cells appear in model order
    (deterministic), including never-exercised pFSMs with all-zero
    counts. *)

val merge : t -> t -> t
(** Sum cells for the same (operation, pfsm); cell order is
    first-seen. *)

val empty : t

val exercised : cell -> int
(** How many of the four edges fired at least once ([0..4]). *)

val edges_exercised : t -> int

val edges_total : t -> int
(** [4 * number of cells]. *)

val pct : t -> float

val pp : Format.formatter -> t -> unit

val to_json : t -> string
