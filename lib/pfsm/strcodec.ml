let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then
        match hex_val s.[i + 1], hex_val s.[i + 2] with
        | Some hi, Some lo ->
            Buffer.add_char b (Char.chr ((hi * 16) + lo));
            go (i + 3)
        | _, _ ->
            Buffer.add_char b s.[i];
            go (i + 1)
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let unreserved c =
  match c with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '~' | '/' | '-' -> true
  | _ -> false

let percent_encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       if unreserved c then Buffer.add_char b c
       else Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents b

let percent_decode_n n s =
  let rec loop k acc = if k <= 0 then acc else loop (k - 1) (percent_decode acc) in
  loop n s

let int32_min = -0x8000_0000

let int32_max = 0x7fff_ffff

let saturating_push acc digit =
  if acc > (max_int - digit) / 10 then max_int else (acc * 10) + digit

let parse_digits s start =
  let n = String.length s in
  let rec go i acc seen =
    if i < n then
      match s.[i] with
      | '0' .. '9' -> go (i + 1) (saturating_push acc (Char.code s.[i] - Char.code '0')) true
      | _ -> (acc, seen, i)
    else (acc, seen, i)
  in
  go start 0 false

let parse_integer s =
  let n = String.length s in
  if n = 0 then None
  else
    let negative, start =
      match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
    in
    let magnitude, seen, stop = parse_digits s start in
    if (not seen) || stop <> n then None
    else Some (if negative then -magnitude else magnitude)

let wrap32 v =
  let m = v land 0xffff_ffff in
  if m > int32_max then m - 0x1_0000_0000 else m

let fits_int32 v = v >= int32_min && v <= int32_max

let atoi32 s =
  let n = String.length s in
  let start =
    let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then skip (i + 1) else i in
    skip 0
  in
  let negative, start =
    if start < n then
      match s.[start] with
      | '-' -> (true, start + 1)
      | '+' -> (false, start + 1)
      | _ -> (false, start)
    else (false, start)
  in
  let magnitude, _, _ = parse_digits s start in
  wrap32 (if negative then -magnitude else magnitude)

let conversion_chars = "diouxXeEfgGcspn%"

let format_directives s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else if s.[i] = '%' then
      (* Skip flags, width and precision to find the conversion char. *)
      let rec conv j =
        if j >= n then None
        else if String.contains conversion_chars s.[j] then Some j
        else
          match s.[j] with
          | '0' .. '9' | '-' | '+' | ' ' | '#' | '.' | 'l' | 'h' -> conv (j + 1)
          | _ -> None
      in
      (match conv (i + 1) with
       | Some j when s.[j] <> '%' ->
           go (j + 1) (Printf.sprintf "%%%c" s.[j] :: acc)
       | Some j -> go (j + 1) acc
       | None -> go (i + 1) acc)
    else go (i + 1) acc
  in
  go 0 []

let contains_format_directive s = format_directives s <> []
