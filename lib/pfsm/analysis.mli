(** Whole-model analysis: run a set of attack scenarios through a
    model, locate the hidden paths, and classify every pFSM by the
    Section-6 taxonomy. *)

type pfsm_finding = {
  operation : string;
  pfsm : Primitive.t;
  missing_check : bool;     (** implementation performs no check at all *)
  hidden_hits : int;        (** scenarios that drove its hidden path *)
  example : Env.t option;   (** one such scenario *)
}

type report = {
  model : Model.t;
  scenarios_run : int;
  traces : (Env.t * Trace.t) list;
  findings : pfsm_finding list;
}

val analyze : Model.t -> scenarios:Env.t list -> report

val exploited : report -> (Env.t * Trace.t) list

val vulnerable_operations : report -> string list
(** Operations containing at least one pFSM with a hidden hit. *)

val vulnerable_pfsms : report -> pfsm_finding list

val taxonomy_matrix : Model.t -> (Taxonomy.kind * (string * Primitive.t) list) list
(** Table 2's rows: every pFSM of the model bucketed by its generic
    type (empty buckets included). *)

val security_checks : report -> (string * Primitive.t) list
(** Where to add checks: the vulnerable pFSMs, each paired with the
    predicate that must be enforced ([pfsm.spec]). *)
