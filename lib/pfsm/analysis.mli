(** Whole-model analysis: run a set of attack scenarios through a
    model, locate the hidden paths, and classify every pFSM by the
    Section-6 taxonomy. *)

type pfsm_finding = {
  operation : string;
  pfsm : Primitive.t;
  missing_check : bool;     (** implementation performs no check at all *)
  hidden_hits : int;        (** scenarios that drove its hidden path *)
  example : Env.t option;   (** one such scenario *)
}

type report = {
  model : Model.t;
  scenarios_run : int;
  traces : (Env.t * Trace.t) list;
  findings : pfsm_finding list;
}

val analyze : ?par:bool -> ?memo:bool -> Model.t -> scenarios:Env.t list -> report
(** [par] fans the scenarios out over the {!Par} domain pool (ordered
    reduction — the report is byte-identical to the sequential run for
    any job count); defaults to [false].  [memo] routes each scenario
    through {!run_memo}; it defaults to [true] when an ambient
    {!Store.Handle} is installed (so every analysis goes through the
    persistent store) and [false] otherwise.  Neither changes the
    report. *)

(** {2 Digest-keyed trace memo}

    [Model.run] is pure, so a trace is a function of the
    [(model, scenario)] pair alone.  The memo keys on
    model digest x scenario digest — each the MD5 of the marshal
    image, closures included; hashconsed predicates make that image
    structure-determined, so independently constructed but identical
    models share entries.  Model digests are cached by physical
    identity (a model is analyzed against many scenarios), so a warm
    lookup pays only the small scenario digest.  Compute-once:
    concurrent lookups of one key block rather than recompute, which
    keeps the counters deterministic under any scheduling
    ([misses] = distinct keys ever computed). *)

val run_memo : Model.t -> env:Env.t -> Trace.t
(** Memoized [Model.run].  When an ambient {!Store.Handle} is
    installed, an in-memory miss consults the persistent store (hex
    spelling of the same key) before computing, and computed traces
    are written back — so a warm store makes reruns recompute nothing
    even across processes.  Store corruption or write failure degrades
    silently to compute; a sim-active fault plan bypasses the store
    entirely (its results must not poison honest runs). *)

type memo_stats = { lookups : int; hits : int; misses : int }

val memo_stats : unit -> memo_stats

type digest_cache_stats = { entries : int; capacity : int; evictions : int }

val digest_cache_stats : unit -> digest_cache_stats
(** The identity-keyed model-digest cache is a fixed-capacity FIFO
    ring ([entries <= capacity] always — the unbounded assoc list it
    replaces retained every model forever).  An eviction only costs a
    digest recompute, never a wrong answer. *)

val memo_reset : unit -> unit
(** Drop all entries and zero the counters — run this at the start of
    a harness whose output includes the counters, so consecutive runs
    report identical numbers. *)

val exploited : report -> (Env.t * Trace.t) list

val vulnerable_operations : report -> string list
(** Operations containing at least one pFSM with a hidden hit,
    ascending and unique. *)

val model_predset : Model.t -> Predset.t
(** The distinct spec/impl predicates of the model, as a packed
    {!Predset} bitset over intern ids. *)

val vulnerable_pfsms : report -> pfsm_finding list

val taxonomy_matrix : Model.t -> (Taxonomy.kind * (string * Primitive.t) list) list
(** Table 2's rows: every pFSM of the model bucketed by its generic
    type (empty buckets included). *)

val security_checks : report -> (string * Primitive.t) list
(** Where to add checks: the vulnerable pFSMs, each paired with the
    predicate that must be enforced ([pfsm.spec]). *)
