(** Data-driven witness search on a single pFSM.

    A {e hidden-path witness} is an object (with its environment)
    that the specification rejects but the implementation accepts —
    concrete evidence that the IMPL_ACPT transition of Figure 2
    exists.  Finding one is finding the vulnerability; this is the
    "data-driven" half of the paper's method, mechanised. *)

type candidate = { env : Env.t; obj : Value.t }

val candidate : ?env:Env.t -> Value.t -> candidate

val hidden_witnesses : Primitive.t -> candidates:candidate list -> candidate list
(** Candidates on which the pFSM takes IMPL_ACPT.  Candidates on
    which either predicate is ill-typed are skipped. *)

val first_hidden_witness : Primitive.t -> candidates:candidate list -> candidate option

val correctly_implemented : Primitive.t -> candidates:candidate list -> bool
(** No hidden-path witness in the searched domain. *)

val overstrict_witnesses : Primitive.t -> candidates:candidate list -> candidate list
(** Objects the spec accepts but the implementation rejects — a
    functionality (not security) defect, reported separately. *)
