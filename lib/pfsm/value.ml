type t =
  | Int of int
  | Str of string
  | Addr of int
  | Bool of bool
  | Unit

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Addr x, Addr y -> x = y
  | Bool x, Bool y -> x = y
  | Unit, Unit -> true
  | (Int _ | Str _ | Addr _ | Bool _ | Unit), _ -> false

let type_name = function
  | Int _ -> "int"
  | Str _ -> "string"
  | Addr _ -> "address"
  | Bool _ -> "bool"
  | Unit -> "unit"

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Addr a -> Format.fprintf ppf "0x%08x" a
  | Bool b -> Format.pp_print_bool ppf b
  | Unit -> Format.pp_print_string ppf "()"

let to_string v = Format.asprintf "%a" pp v

let wrong expected v =
  invalid_arg (Printf.sprintf "Value: expected %s, got %s %s" expected (type_name v) (to_string v))

let as_int = function Int n -> n | v -> wrong "int" v

let as_str = function Str s -> s | v -> wrong "string" v

let as_addr = function Addr a -> a | v -> wrong "address" v

let as_bool = function Bool b -> b | v -> wrong "bool" v
