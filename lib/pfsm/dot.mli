(** Graphviz rendering of a model, in the visual language of the
    paper's figures: one cluster per operation, solid SPEC/IMPL_REJ
    edges, a dotted IMPL_ACPT edge wherever the implementation's
    predicate differs from the specification's, a "?" marker on
    missing checks, and triangle propagation gates between
    operations. *)

val of_model : Model.t -> string
(** A complete [digraph] as a string, suitable for [dot -Tsvg]. *)

val of_primitive : Primitive.t -> string
(** A single pFSM as its own digraph (Figure 2 shape). *)
