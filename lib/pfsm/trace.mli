(** The record of running an attack scenario through a model. *)

type step = {
  operation : string;
  pfsm : Primitive.t;
  verdict : Primitive.verdict;
}

type t = {
  model : string;
  steps : step list;
  completed : bool;
      (** every operation in the cascade completed *)
  stopped_at : (string * string) option;
      (** (operation, pfsm) where the scenario was rejected *)
  final_env : Env.t;
}

val hidden_steps : t -> step list

val hidden_count : t -> int

val exploited : t -> bool
(** The scenario traversed the whole cascade {e and} needed at least
    one hidden IMPL_ACPT transition to do so — i.e. the model says
    the implementation lets a spec-violating exploit through. *)

val foiled : t -> bool

val pp : Format.formatter -> t -> unit
