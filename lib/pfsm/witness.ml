type candidate = { env : Env.t; obj : Value.t }

let candidate ?(env = Env.empty) obj = { env; obj }

let verdicts pfsm c =
  let spec = Predicate.holds_safely ~env:c.env ~self:c.obj pfsm.Primitive.spec in
  let impl = Predicate.holds_safely ~env:c.env ~self:c.obj pfsm.Primitive.impl in
  match spec, impl with
  | Some s, Some i -> Some (s, i)
  | None, _ | _, None -> None

let hidden_witnesses pfsm ~candidates =
  let is_hidden c =
    match verdicts pfsm c with
    | Some (false, true) -> true
    | Some ((true, _) | (false, false)) | None -> false
  in
  List.filter is_hidden candidates

let first_hidden_witness pfsm ~candidates =
  match hidden_witnesses pfsm ~candidates with
  | [] -> None
  | w :: _ -> Some w

let correctly_implemented pfsm ~candidates = hidden_witnesses pfsm ~candidates = []

let overstrict_witnesses pfsm ~candidates =
  let is_overstrict c =
    match verdicts pfsm c with
    | Some (true, false) -> true
    | Some ((false, _) | (true, true)) | None -> false
  in
  List.filter is_overstrict candidates
