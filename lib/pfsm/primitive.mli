(** The primitive FSM of Figure 2: three states (SPEC check, accept,
    reject) and four transitions.

    {v
                    SPEC_ACPT
       SPEC check ------------> Accept
           |                      ^
           | SPEC_REJ             : IMPL_ACPT   (hidden path —
           v                      :              the vulnerability)
       (should reject) ...........:
           |
           | IMPL_REJ  (correct behaviour)
           v
         Reject
    v}

    A pFSM carries two predicates over the same object: [spec], the
    accept-condition the specification demands, and [impl], the
    accept-condition the implementation actually enforces.  The
    IMPL_ACPT transition is {e derived}: it is taken exactly when the
    implementation accepts an object the specification rejects. *)

type transition = Spec_acpt | Spec_rej | Impl_rej | Impl_acpt

type state = Spec_check_state | Accept_state | Reject_state

type verdict = {
  final : state;                (** [Accept_state] or [Reject_state] *)
  path : transition list;
  hidden : bool;                (** the run took IMPL_ACPT *)
}

type t = {
  name : string;                (** e.g. "pFSM2" *)
  kind : Taxonomy.kind;
  activity : string;            (** the elementary activity, in prose *)
  spec : Predicate.t;
  impl : Predicate.t;
}

val make :
  name:string ->
  kind:Taxonomy.kind ->
  activity:string ->
  spec:Predicate.t ->
  impl:Predicate.t ->
  t

val run : t -> env:Env.t -> self:Value.t -> verdict
(** Execute the pFSM on one object.  Per Figure 2: specification
    acceptance goes straight to accept; specification rejection goes
    to reject via IMPL_REJ when the implementation also rejects, and
    to accept via the hidden IMPL_ACPT when it does not. *)

val missing_check : t -> bool
(** Static view: the implementation performs no check at all (the
    figures' "?" on a missing IMPL_REJ edge). *)

val hidden_path_on : t -> env:Env.t -> self:Value.t -> bool
(** Whether this object would traverse IMPL_ACPT. *)

val secured : t -> t
(** The corrected pFSM: implementation enforces exactly the
    specification predicate, eliminating the hidden path. *)

val transition_to_string : transition -> string

val state_to_string : state -> string

val pp_verdict : Format.formatter -> verdict -> unit
