type pfsm_finding = {
  operation : string;
  pfsm : Primitive.t;
  missing_check : bool;
  hidden_hits : int;
  example : Env.t option;
}

type report = {
  model : Model.t;
  scenarios_run : int;
  traces : (Env.t * Trace.t) list;
  findings : pfsm_finding list;
}

let analyze model ~scenarios =
  let traces = List.map (fun env -> (env, Model.run model ~env)) scenarios in
  let finding_of (op_name, pfsm) =
    let hits =
      List.filter_map
        (fun (env, trace) ->
           let hit s =
             s.Trace.operation = op_name
             && s.Trace.pfsm.Primitive.name = pfsm.Primitive.name
             && s.Trace.verdict.Primitive.hidden
           in
           if List.exists hit trace.Trace.steps then Some env else None)
        traces
    in
    { operation = op_name;
      pfsm;
      missing_check = Primitive.missing_check pfsm;
      hidden_hits = List.length hits;
      example = (match hits with [] -> None | env :: _ -> Some env) }
  in
  { model;
    scenarios_run = List.length scenarios;
    traces;
    findings = List.map finding_of (Model.all_pfsms model) }

let exploited report =
  List.filter (fun (_, trace) -> Trace.exploited trace) report.traces

let vulnerable_pfsms report = List.filter (fun f -> f.hidden_hits > 0) report.findings

let vulnerable_operations report =
  let ops = List.map (fun f -> f.operation) (vulnerable_pfsms report) in
  List.sort_uniq compare ops

let taxonomy_matrix model =
  let pfsms = Model.all_pfsms model in
  let bucket kind =
    (kind,
     List.filter (fun (_, p) -> Taxonomy.equal p.Primitive.kind kind) pfsms)
  in
  List.map bucket Taxonomy.all

let security_checks report =
  List.map (fun f -> (f.operation, f.pfsm)) (vulnerable_pfsms report)
