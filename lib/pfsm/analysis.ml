type pfsm_finding = {
  operation : string;
  pfsm : Primitive.t;
  missing_check : bool;
  hidden_hits : int;
  example : Env.t option;
}

type report = {
  model : Model.t;
  scenarios_run : int;
  traces : (Env.t * Trace.t) list;
  findings : pfsm_finding list;
}

(* ---- digest-keyed trace memo --------------------------------------
   Key = model digest x scenario digest, each the MD5 of the marshal
   image (closures included).  Sound because [Model.run] is pure —
   predicates, actions and effects are arithmetic over the env, with
   no fault-seam calls — so equal inputs always yield the equal trace,
   installed injector or not.  Hashconsing ([Primitive.make] interns
   every predicate) makes the marshal image's sharing a function of
   structure, so two independently built but identical models collide
   on the same key.  Model digests are additionally cached by physical
   identity: a model is built once and analyzed against many
   scenarios, so the expensive half of the key is paid once per model
   and a warm lookup costs only the (small) scenario digest.

   The cache is compute-once: the first caller of a key publishes a
   [Computing] marker and evaluates outside the lock; concurrent
   callers of the same key block on the condvar instead of recomputing.
   That keeps the counters deterministic under any scheduling:
   [misses] = distinct keys, [hits] = lookups − misses. *)

type memo_stats = { lookups : int; hits : int; misses : int }

type memo_cell = Computing | Done of Trace.t

let memo_lock = Mutex.create ()
let memo_cond = Condition.create ()
let memo_table : (string, memo_cell) Hashtbl.t = Hashtbl.create 512
let memo_lookups = ref 0
let memo_hits = ref 0
let memo_misses = ref 0

let analyze_allocs = Obs.Allocs.scope "pfsm.analyze"

let m_lookups = Obs.Metrics.counter "pfsm.memo.lookups"
let m_hits = Obs.Metrics.counter "pfsm.memo.hits"
let m_misses = Obs.Metrics.counter "pfsm.memo.misses"

(* Identity-keyed model-digest cache, bounded.

   The old shape — an unbounded assoc list — retained every model ever
   digested for the life of the process (a GC leak across chaos/bench
   sweeps, which build fresh models per leg) and scanned O(n) under
   [memo_lock].  This is a fixed-capacity FIFO ring: an eviction only
   costs a recompute of that model's digest, never a wrong answer, so
   correctness and determinism are unaffected by the bound. *)

let digest_cache_capacity = 64

type digest_slot = { d_model : Model.t; d_digest : string }

let digest_ring : digest_slot option array =
  Array.make digest_cache_capacity None

let digest_next = ref 0 (* next insertion slot, under [memo_lock] *)
let digest_evictions = ref 0

type digest_cache_stats = { entries : int; capacity : int; evictions : int }

let digest_cache_stats () =
  Mutex.lock memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_lock)
    (fun () ->
      let entries =
        Array.fold_left
          (fun acc s -> match s with Some _ -> acc + 1 | None -> acc)
          0 digest_ring
      in
      { entries; capacity = digest_cache_capacity; evictions = !digest_evictions })

let digest_find_locked model =
  let found = ref None in
  Array.iter
    (fun s ->
      match s with
      | Some { d_model; d_digest } when d_model == model ->
          found := Some d_digest
      | _ -> ())
    digest_ring;
  !found

let model_digest model =
  let cached =
    Mutex.lock memo_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock memo_lock)
      (fun () -> digest_find_locked model)
  in
  match cached with
  | Some d -> d
  | None ->
      let d = Digest.string (Marshal.to_string model [ Marshal.Closures ]) in
      Mutex.lock memo_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock memo_lock)
        (fun () ->
          (* a duplicate insert under a race is harmless (same digest) *)
          if digest_find_locked model = None then begin
            let i = !digest_next in
            if digest_ring.(i) <> None then incr digest_evictions;
            digest_ring.(i) <- Some { d_model = model; d_digest = d };
            digest_next := (i + 1) mod digest_cache_capacity
          end);
      d

let memo_keys model env =
  let md = model_digest model in
  let ed = Digest.string (Marshal.to_string env [ Marshal.Closures ]) in
  (* in-memory key is the raw 32 bytes; the persistent key is its hex
     spelling (store keys must be lowercase hex) *)
  (md ^ ed, Digest.to_hex md ^ Digest.to_hex ed)

(* Persistent tier: when the CLI has installed an ambient store, an
   in-memory miss consults it before computing and a computed trace is
   written back.  Both directions degrade silently to compute — a
   corrupt or stale record reads as a miss (evicted and counted by the
   store), a failed write leaves the run on the in-memory tier. *)
let store_tag = "pfsm-trace"

let memo_stats () =
  Mutex.lock memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_lock)
    (fun () ->
      { lookups = !memo_lookups; hits = !memo_hits; misses = !memo_misses })

let memo_reset () =
  Mutex.lock memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_lock)
    (fun () ->
      Hashtbl.reset memo_table;
      memo_lookups := 0;
      memo_hits := 0;
      memo_misses := 0)

let run_memo model ~env =
  let key, key_hex = memo_keys model env in
  Mutex.lock memo_lock;
  incr memo_lookups;
  Obs.Metrics.incr m_lookups;
  let rec acquire () =
    match Hashtbl.find_opt memo_table key with
    | Some (Done trace) ->
        incr memo_hits;
        Obs.Metrics.incr m_hits;
        Mutex.unlock memo_lock;
        trace
    | Some Computing ->
        Condition.wait memo_cond memo_lock;
        acquire ()
    | None -> (
        incr memo_misses;
        Obs.Metrics.incr m_misses;
        Hashtbl.replace memo_table key Computing;
        Mutex.unlock memo_lock;
        match
          Store.Handle.cached ~tag:store_tag ~key:key_hex (fun () ->
              Model.run model ~env)
        with
        | trace ->
            Mutex.lock memo_lock;
            Hashtbl.replace memo_table key (Done trace);
            Condition.broadcast memo_cond;
            Mutex.unlock memo_lock;
            trace
        | exception e ->
            Mutex.lock memo_lock;
            Hashtbl.remove memo_table key;
            Condition.broadcast memo_cond;
            Mutex.unlock memo_lock;
            raise e)
  in
  acquire ()

let analyze ?(par = false) ?memo model ~scenarios =
  (* when the CLI installed a persistent store, memoize by default so
     every analysis routes through it; memoization never changes the
     report, only where traces come from *)
  let memo =
    match memo with Some m -> m | None -> Store.Handle.get () <> None
  in
  Obs.Span.with_span ~cat:"pfsm"
    ~args:[ ("scenarios", string_of_int (List.length scenarios)) ]
    "pfsm.analyze"
  @@ fun () ->
  Obs.Allocs.measure analyze_allocs @@ fun () ->
  let run env =
    if memo then run_memo model ~env else Model.run model ~env
  in
  let trace_of env = (env, run env) in
  let traces =
    if par then Par.map_list trace_of scenarios
    else List.map trace_of scenarios
  in
  let finding_of (op_name, pfsm) =
    let hits =
      List.filter_map
        (fun (env, trace) ->
           let hit s =
             s.Trace.operation = op_name
             && s.Trace.pfsm.Primitive.name = pfsm.Primitive.name
             && s.Trace.verdict.Primitive.hidden
           in
           if List.exists hit trace.Trace.steps then Some env else None)
        traces
    in
    { operation = op_name;
      pfsm;
      missing_check = Primitive.missing_check pfsm;
      hidden_hits = List.length hits;
      example = (match hits with [] -> None | env :: _ -> Some env) }
  in
  { model;
    scenarios_run = List.length scenarios;
    traces;
    findings = List.map finding_of (Model.all_pfsms model) }

let exploited report =
  List.filter (fun (_, trace) -> Trace.exploited trace) report.traces

let vulnerable_pfsms report = List.filter (fun f -> f.hidden_hits > 0) report.findings

module String_set = Set.Make (String)

let vulnerable_operations report =
  (* one set fold instead of re-sorting the whole operation list; the
     rendering contract (ascending, unique) is unchanged *)
  List.fold_left
    (fun acc f -> String_set.add f.operation acc)
    String_set.empty (vulnerable_pfsms report)
  |> String_set.elements

(* The distinct spec/impl predicates of a model, packed over intern
   ids.  [Primitive.make] interned every predicate, so [Predset.add]
   is a table lookup plus a bit set — no structural compares. *)
let model_predset model =
  List.fold_left
    (fun acc (_, p) ->
      Predset.add p.Primitive.spec (Predset.add p.Primitive.impl acc))
    Predset.empty (Model.all_pfsms model)

let taxonomy_matrix model =
  let pfsms = Model.all_pfsms model in
  let bucket kind =
    (kind,
     List.filter (fun (_, p) -> Taxonomy.equal p.Primitive.kind kind) pfsms)
  in
  List.map bucket Taxonomy.all

let security_checks report =
  List.map (fun f -> (f.operation, f.pfsm)) (vulnerable_pfsms report)
