type kind =
  | Object_type_check
  | Content_attribute_check
  | Reference_consistency_check

let all = [ Object_type_check; Content_attribute_check; Reference_consistency_check ]

let to_string = function
  | Object_type_check -> "Object Type Check"
  | Content_attribute_check -> "Content and Attribute Check"
  | Reference_consistency_check -> "Reference Consistency Check"

let description = function
  | Object_type_check ->
      "verify whether the input object is of the type that the operation is defined on"
  | Content_attribute_check ->
      "verify whether the content and the attributes of the object meet the security guarantee"
  | Reference_consistency_check ->
      "verify whether the binding between an object and its reference is preserved from \
       check time to use time"

let pp ppf k = Format.pp_print_string ppf (to_string k)

let equal (a : kind) b = a = b
