type check = {
  scenario : Env.t;
  op_name : string;
  foiled : bool;
}

(* Hidden steps repeat an operation (and a site) once per driven
   scenario stage; folding them through a set dedups in one pass where
   the old [List.sort_uniq compare] re-sorted the whole list per call.
   [elements] is ascending, exactly the order sort_uniq produced. *)
module String_set = Set.Make (String)

module Site_set = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let exploited_with_hidden_ops model ~scenarios =
  List.filter_map
    (fun env ->
       let trace = Model.run model ~env in
       if Trace.exploited trace then
         let hidden = Trace.hidden_steps trace in
         Some (env, trace, hidden)
       else None)
    scenarios

let sufficiency model ~scenarios =
  let per_scenario (env, _trace, hidden) =
    let ops =
      String_set.elements
        (List.fold_left
           (fun acc s -> String_set.add s.Trace.operation acc)
           String_set.empty hidden)
    in
    List.map
      (fun op_name ->
         let hardened = Model.secure_operation model ~op_name in
         let trace' = Model.run hardened ~env in
         { scenario = env; op_name; foiled = Trace.foiled trace' })
      ops
  in
  List.concat_map per_scenario (exploited_with_hidden_ops model ~scenarios)

let pfsm_sufficiency model ~scenarios =
  let per_scenario (env, _trace, hidden) =
    let sites =
      Site_set.elements
        (List.fold_left
           (fun acc s ->
             Site_set.add (s.Trace.operation, s.Trace.pfsm.Primitive.name) acc)
           Site_set.empty hidden)
    in
    List.map
      (fun (op_name, pfsm_name) ->
         let hardened = Model.secure_pfsm model ~op_name ~pfsm_name in
         let trace' = Model.run hardened ~env in
         { scenario = env;
           op_name = op_name ^ "/" ^ pfsm_name;
           foiled = Trace.foiled trace' })
      sites
  in
  List.concat_map per_scenario (exploited_with_hidden_ops model ~scenarios)

let holds model ~scenarios =
  List.for_all (fun c -> c.foiled) (sufficiency model ~scenarios)

let full_security model ~scenarios =
  let hardened = Model.secure_all model in
  List.for_all
    (fun env -> not (Trace.exploited (Model.run hardened ~env)))
    scenarios
