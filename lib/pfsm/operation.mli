(** An operation on an object: a series of pFSMs (Observation 2).

    The object enters the first pFSM; each accepting transition may
    transform it and record facts in the environment (the figures'
    [Condition ♦ Action] labels), and the last acceptance applies the
    operation itself, whose consequence feeds the propagation gate. *)

type stage = {
  pfsm : Primitive.t;
  action : Env.t -> Value.t -> Env.t * Value.t;
      (** performed on the accepting transition *)
  action_label : string;
}

type t = {
  name : string;                (** e.g. "Write debug level i to tTvect[x]" *)
  object_name : string;         (** the object manipulated *)
  stages : stage list;
  effect_label : string;        (** the propagation-gate consequence *)
  effect_ : Env.t -> Env.t;     (** applied when the operation completes *)
}

val stage :
  ?action:(Env.t -> Value.t -> Env.t * Value.t) ->
  ?action_label:string ->
  Primitive.t ->
  stage
(** Default action: identity. *)

val make :
  name:string ->
  object_name:string ->
  ?effect_label:string ->
  ?effect_:(Env.t -> Env.t) ->
  stage list ->
  t

type result = {
  verdicts : (Primitive.t * Primitive.verdict) list;
  completed : bool;             (** every pFSM accepted *)
  env : Env.t;                  (** after actions and, if completed, the effect *)
  obj : Value.t;                (** the object after transformations *)
}

val run : t -> env:Env.t -> input:Value.t -> result

val pfsms : t -> Primitive.t list

val secured : t -> t
(** Every pFSM corrected to enforce its specification. *)

val secured_only : t -> pfsm_name:string -> t
(** Correct a single pFSM — "each elementary activity offers an
    independent opportunity for checking". *)
