type t = {
  model_name : string;
  operations : int;
  objects : string list;
  elementary_activities : int;
  predicates : int;
  distinct_predicates : int;
  missing_checks : int;
  kinds : (Taxonomy.kind * int) list;
}

module String_set = Set.Make (String)

let of_model model =
  let ops = Model.operations model in
  let pfsms = List.map snd (Model.all_pfsms model) in
  (* set fold instead of sorting the whole operation list per call;
     [elements] is ascending, the order sort_uniq produced *)
  let objects =
    String_set.elements
      (List.fold_left
         (fun acc op -> String_set.add op.Operation.object_name acc)
         String_set.empty ops)
  in
  let nontrivial p = not (Predicate.no_check p.Primitive.spec) in
  let distinct =
    List.fold_left
      (fun acc p ->
        Predset.add p.Primitive.spec (Predset.add p.Primitive.impl acc))
      Predset.empty pfsms
  in
  let kinds =
    List.map
      (fun kind ->
         (kind,
          List.length
            (List.filter (fun p -> Taxonomy.equal p.Primitive.kind kind) pfsms)))
      Taxonomy.all
  in
  { model_name = model.Model.name;
    operations = List.length ops;
    objects;
    elementary_activities = List.length pfsms;
    predicates = List.length (List.filter nontrivial pfsms);
    distinct_predicates = Predset.cardinal distinct;
    missing_checks = List.length (List.filter Primitive.missing_check pfsms);
    kinds }

let observation1_holds t = t.elementary_activities >= 2

let observation2_holds t = t.operations >= 2 || List.length t.objects >= 2

let observation3_holds t = t.predicates = t.elementary_activities

let pp ppf t =
  Format.fprintf ppf
    "%s: %d operation(s) on %d object(s), %d elementary activities, %d predicates (%d \
     distinct), %d missing impl checks"
    t.model_name t.operations (List.length t.objects) t.elementary_activities
    t.predicates t.distinct_predicates t.missing_checks

let pp_table ppf metrics =
  Format.fprintf ppf "@[<v>%-56s %4s %4s %4s %5s %5s %5s@," "model" "ops" "objs"
    "acts" "preds" "dist" "miss";
  List.iter
    (fun t ->
       Format.fprintf ppf "%-56s %4d %4d %4d %5d %5d %5d@," t.model_name t.operations
         (List.length t.objects) t.elementary_activities t.predicates
         t.distinct_predicates t.missing_checks)
    metrics;
  Format.fprintf ppf "@]"
