type binding = {
  operation : Operation.t;
  input : Env.t -> Value.t;
  input_label : string;
}

type t = {
  name : string;
  bugtraq_id : int option;
  description : string;
  bindings : binding list;
}

let bind ~input ~input_label operation = { operation; input; input_label }

let make ~name ?bugtraq_id ~description bindings =
  if bindings = [] then invalid_arg "Model.make: no operations";
  { name; bugtraq_id; description; bindings }

let run t ~env =
  let step_of op (pfsm, verdict) =
    { Trace.operation = op.Operation.name; pfsm; verdict }
  in
  let rec go bindings env steps =
    match bindings with
    | [] ->
        { Trace.model = t.name; steps = List.rev steps; completed = true;
          stopped_at = None; final_env = env }
    | b :: rest ->
        let input = b.input env in
        let result = Operation.run b.operation ~env ~input in
        let steps =
          List.rev_append (List.map (step_of b.operation) result.Operation.verdicts) steps
        in
        if result.Operation.completed then go rest result.Operation.env steps
        else
          let failed_pfsm =
            match List.rev result.Operation.verdicts with
            | (p, _) :: _ -> p.Primitive.name
            | [] -> "?"
          in
          { Trace.model = t.name; steps = List.rev steps; completed = false;
            stopped_at = Some (b.operation.Operation.name, failed_pfsm);
            final_env = result.Operation.env }
  in
  go t.bindings env []

let operations t = List.map (fun b -> b.operation) t.bindings

let all_pfsms t =
  List.concat_map
    (fun b ->
       List.map (fun p -> (b.operation.Operation.name, p)) (Operation.pfsms b.operation))
    t.bindings

let operation_names t = List.map (fun b -> b.operation.Operation.name) t.bindings

let map_operation t ~op_name f =
  let found = ref false in
  let fix b =
    if b.operation.Operation.name = op_name then begin
      found := true;
      { b with operation = f b.operation }
    end
    else b
  in
  let bindings = List.map fix t.bindings in
  if not !found then invalid_arg ("Model.secure: unknown operation " ^ op_name);
  { t with bindings }

let secure_operation t ~op_name = map_operation t ~op_name Operation.secured

let secure_pfsm t ~op_name ~pfsm_name =
  map_operation t ~op_name (fun op -> Operation.secured_only op ~pfsm_name)

let secure_all t =
  { t with
    bindings = List.map (fun b -> { b with operation = Operation.secured b.operation }) t.bindings }
