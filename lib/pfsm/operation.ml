type stage = {
  pfsm : Primitive.t;
  action : Env.t -> Value.t -> Env.t * Value.t;
  action_label : string;
}

type t = {
  name : string;
  object_name : string;
  stages : stage list;
  effect_label : string;
  effect_ : Env.t -> Env.t;
}

let stage ?(action = fun env v -> (env, v)) ?(action_label = "") pfsm =
  { pfsm; action; action_label }

let make ~name ~object_name ?(effect_label = "") ?(effect_ = fun env -> env) stages =
  if stages = [] then invalid_arg "Operation.make: no stages";
  { name; object_name; stages; effect_label; effect_ }

type result = {
  verdicts : (Primitive.t * Primitive.verdict) list;
  completed : bool;
  env : Env.t;
  obj : Value.t;
}

let run t ~env ~input =
  let rec go stages env obj acc =
    match stages with
    | [] -> { verdicts = List.rev acc; completed = true; env = t.effect_ env; obj }
    | s :: rest ->
        let verdict = Primitive.run s.pfsm ~env ~self:obj in
        let acc = (s.pfsm, verdict) :: acc in
        (match verdict.Primitive.final with
         | Primitive.Reject_state | Primitive.Spec_check_state ->
             { verdicts = List.rev acc; completed = false; env; obj }
         | Primitive.Accept_state ->
             let env, obj = s.action env obj in
             go rest env obj acc)
  in
  go t.stages env input []

let pfsms t = List.map (fun s -> s.pfsm) t.stages

let secured t =
  { t with stages = List.map (fun s -> { s with pfsm = Primitive.secured s.pfsm }) t.stages }

let secured_only t ~pfsm_name =
  let fix s =
    if s.pfsm.Primitive.name = pfsm_name then { s with pfsm = Primitive.secured s.pfsm }
    else s
  in
  { t with stages = List.map fix t.stages }
