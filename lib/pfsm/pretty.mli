(** Textual rendering of models, analyses and lemma checks — the
    console counterpart of the paper's figures and tables. *)

val pp_pfsm : Format.formatter -> Primitive.t -> unit

val pp_operation : Format.formatter -> Operation.t -> unit

val pp_model : Format.formatter -> Model.t -> unit
(** The full cascade, one operation per block, with SPEC/IMPL
    predicates and hidden-path markers — a textual Figure 3/4/5/6/7. *)

val pp_report : Format.formatter -> Analysis.report -> unit

val pp_matrix :
  Format.formatter -> (Taxonomy.kind * (string * Primitive.t) list) list -> unit
(** One model's Table-2 row set. *)

val pp_lemma_checks : Format.formatter -> Lemma.check list -> unit

val model_to_string : Model.t -> string
