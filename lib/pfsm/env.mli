(** The environment threaded through a model run.

    Environment entries carry the system facts the predicates consult
    ("is the GOT entry of setuid unchanged?", "size of the PostData
    buffer") and the values operations propagate to one another — the
    paper's propagation gates are functions [t -> t]. *)

type t

val empty : t

val add : string -> Value.t -> t -> t

val add_int : string -> int -> t -> t

val add_str : string -> string -> t -> t

val add_bool : string -> bool -> t -> t

val add_addr : string -> int -> t -> t

val find : string -> t -> Value.t option

val get : string -> t -> Value.t
(** Raises [Not_found_key] with the key name when absent. *)

exception Not_found_key of string

val get_int : string -> t -> int

val get_str : string -> t -> string

val get_bool : string -> t -> bool

val get_addr : string -> t -> int

val flag : string -> t -> bool
(** [flag k t] — the boolean fact [k], defaulting to [false] when the
    key is absent. *)

val mem : string -> t -> bool

val bindings : t -> (string * Value.t) list

val of_list : (string * Value.t) list -> t

val pp : Format.formatter -> t -> unit
