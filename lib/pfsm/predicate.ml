type term =
  | Self
  | Env_val of string
  | Lit of Value.t
  | Length of term
  | Decode of int * term

type cmp = Le | Lt | Eq | Ne | Ge | Gt

type t =
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * term * term
  | Str_eq of term * term
  | Contains of term * string
  | Contains_any of term * string list
  | Fits_int32 of term
  | Is_format_free of term
  | Env_flag of string

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec eval_term ~env ~self = function
  | Self -> self
  | Env_val k -> Env.get k env
  | Lit v -> v
  | Length t ->
      (match eval_term ~env ~self t with
       | Value.Str s -> Value.Int (String.length s)
       | v -> type_error "length of non-string %s" (Value.type_name v))
  | Decode (n, t) ->
      (match eval_term ~env ~self t with
       | Value.Str s -> Value.Str (Strcodec.percent_decode_n n s)
       | v -> type_error "decode of non-string %s" (Value.type_name v))

let numeric = function
  | Value.Int n -> n
  | Value.Addr a -> a
  | v -> type_error "comparison on non-numeric %s" (Value.type_name v)

let string_of = function
  | Value.Str s -> s
  | v -> type_error "string operation on %s" (Value.type_name v)

let compare_with = function
  | Le -> ( <= )
  | Lt -> ( < )
  | Eq -> ( = )
  | Ne -> ( <> )
  | Ge -> ( >= )
  | Gt -> ( > )

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0

let rec holds ~env ~self = function
  | True -> true
  | False -> false
  | Not p -> not (holds ~env ~self p)
  | And (p, q) -> holds ~env ~self p && holds ~env ~self q
  | Or (p, q) -> holds ~env ~self p || holds ~env ~self q
  | Cmp (op, a, b) ->
      let va = numeric (eval_term ~env ~self a) in
      let vb = numeric (eval_term ~env ~self b) in
      compare_with op va vb
  | Str_eq (a, b) ->
      String.equal
        (string_of (eval_term ~env ~self a))
        (string_of (eval_term ~env ~self b))
  | Contains (t, needle) -> contains ~needle (string_of (eval_term ~env ~self t))
  | Contains_any (t, needles) ->
      let s = string_of (eval_term ~env ~self t) in
      List.exists (fun needle -> contains ~needle s) needles
  | Fits_int32 t ->
      (match eval_term ~env ~self t with
       | Value.Int n -> Strcodec.fits_int32 n
       | Value.Str s ->
           (match Strcodec.parse_integer s with
            | Some n -> Strcodec.fits_int32 n
            | None -> false)
       | v -> type_error "fits_int32 of %s" (Value.type_name v))
  | Is_format_free t ->
      not (Strcodec.contains_format_directive (string_of (eval_term ~env ~self t)))
  | Env_flag k -> Env.flag k env

let holds_safely ~env ~self p =
  match holds ~env ~self p with
  | b -> Some b
  | exception (Type_error _ | Env.Not_found_key _ | Invalid_argument _) -> None

let no_check = function True -> true | _ -> false

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let between t ~low ~high =
  And (Cmp (Ge, t, Lit (Value.Int low)), Cmp (Le, t, Lit (Value.Int high)))

(* ---- hashconsing --------------------------------------------------
   Interning rebuilds a predicate bottom-up through a table of
   canonical nodes, so structurally equal subtrees become physically
   equal.  Two payoffs: [equal] gets a physical fast path, and the
   in-memory sharing of an interned predicate is a function of its
   structure alone — which makes [Marshal]-based digests of models
   (the analysis-memo key) independent of how the model was built.
   The tables are shared across domains and mutex-protected; interning
   happens at model-construction time, never on the [holds] hot
   path. *)

type intern_stats = { distinct : int; hits : int }

let hc_lock = Mutex.create ()
let hc_terms : (term, term) Hashtbl.t = Hashtbl.create 256
let hc_preds : (t, t) Hashtbl.t = Hashtbl.create 256
let hc_hits = ref 0

(* Dense intern ids, assigned in canonization order.  An id is stable
   for the life of the process (canonical nodes are never evicted),
   which is what lets Predset pack predicate sets into bitsets: the id
   is the bit position.  Ids are construction-order-dependent and must
   never cross a process boundary — digests, not ids, key the
   persistent tiers. *)
let hc_pred_ids : (t, int) Hashtbl.t = Hashtbl.create 256
let hc_pred_by_id : (int, t) Hashtbl.t = Hashtbl.create 256
let hc_next_id = ref 0

let m_distinct = Obs.Metrics.counter "pfsm.hashcons.distinct"
let m_hc_hits = Obs.Metrics.counter "pfsm.hashcons.hits"

let canon table key =
  match Hashtbl.find_opt table key with
  | Some v ->
      incr hc_hits;
      Obs.Metrics.incr m_hc_hits;
      v
  | None ->
      Hashtbl.add table key key;
      Obs.Metrics.incr m_distinct;
      key

let canon_pred key =
  match Hashtbl.find_opt hc_preds key with
  | Some v ->
      incr hc_hits;
      Obs.Metrics.incr m_hc_hits;
      v
  | None ->
      Hashtbl.add hc_preds key key;
      Hashtbl.add hc_pred_ids key !hc_next_id;
      Hashtbl.add hc_pred_by_id !hc_next_id key;
      incr hc_next_id;
      Obs.Metrics.incr m_distinct;
      key

let rec intern_term_unlocked t =
  let rebuilt =
    match t with
    | Self | Env_val _ | Lit _ -> t
    | Length u ->
        let u' = intern_term_unlocked u in
        if u' == u then t else Length u'
    | Decode (n, u) ->
        let u' = intern_term_unlocked u in
        if u' == u then t else Decode (n, u')
  in
  canon hc_terms rebuilt

let rec intern_unlocked p =
  let node1 build u =
    let u' = intern_unlocked u in
    if u' == u then p else build u'
  in
  let term1 build a =
    let a' = intern_term_unlocked a in
    if a' == a then p else build a'
  in
  let term2 build a b =
    let a' = intern_term_unlocked a and b' = intern_term_unlocked b in
    if a' == a && b' == b then p else build a' b'
  in
  let rebuilt =
    match p with
    | True | False | Env_flag _ -> p
    | Not u -> node1 (fun u -> Not u) u
    | And (u, v) ->
        let u' = intern_unlocked u and v' = intern_unlocked v in
        if u' == u && v' == v then p else And (u', v')
    | Or (u, v) ->
        let u' = intern_unlocked u and v' = intern_unlocked v in
        if u' == u && v' == v then p else Or (u', v')
    | Cmp (op, a, b) -> term2 (fun a b -> Cmp (op, a, b)) a b
    | Str_eq (a, b) -> term2 (fun a b -> Str_eq (a, b)) a b
    | Contains (a, needle) -> term1 (fun a -> Contains (a, needle)) a
    | Contains_any (a, needles) ->
        term1 (fun a -> Contains_any (a, needles)) a
    | Fits_int32 a -> term1 (fun a -> Fits_int32 a) a
    | Is_format_free a -> term1 (fun a -> Is_format_free a) a
  in
  canon_pred rebuilt

let intern p =
  Mutex.lock hc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock hc_lock)
    (fun () -> intern_unlocked p)

let id p =
  Mutex.lock hc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock hc_lock)
    (fun () -> Hashtbl.find hc_pred_ids (intern_unlocked p))

let of_id i =
  Mutex.lock hc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock hc_lock)
    (fun () -> Hashtbl.find_opt hc_pred_by_id i)

let max_id () =
  Mutex.lock hc_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock hc_lock) (fun () -> !hc_next_id)

let equal p q = p == q || p = q

let intern_stats () =
  Mutex.lock hc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock hc_lock)
    (fun () ->
      { distinct = Hashtbl.length hc_preds + Hashtbl.length hc_terms;
        hits = !hc_hits })

let rec pp_term ppf = function
  | Self -> Format.pp_print_string ppf "self"
  | Env_val k -> Format.fprintf ppf "env[%s]" k
  | Lit v -> Value.pp ppf v
  | Length t -> Format.fprintf ppf "length(%a)" pp_term t
  | Decode (n, t) -> Format.fprintf ppf "decode^%d(%a)" n pp_term t

let cmp_symbol = function
  | Le -> "<=" | Lt -> "<" | Eq -> "==" | Ne -> "!=" | Ge -> ">=" | Gt -> ">"

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Not p -> Format.fprintf ppf "!(%a)" pp p
  | And (p, q) -> Format.fprintf ppf "(%a && %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a || %a)" pp p pp q
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_term a (cmp_symbol op) pp_term b
  | Str_eq (a, b) -> Format.fprintf ppf "%a == %a" pp_term a pp_term b
  | Contains (t, needle) -> Format.fprintf ppf "contains(%a, %S)" pp_term t needle
  | Contains_any (t, needles) ->
      Format.fprintf ppf "contains_any(%a, [%s])" pp_term t
        (String.concat "; " (List.map (Printf.sprintf "%S") needles))
  | Fits_int32 t -> Format.fprintf ppf "fits_int32(%a)" pp_term t
  | Is_format_free t -> Format.fprintf ppf "format_free(%a)" pp_term t
  | Env_flag k -> Format.fprintf ppf "env[%s]" k

let to_string p = Format.asprintf "%a" pp p
