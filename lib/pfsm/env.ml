module M = Map.Make (String)

type t = Value.t M.t

exception Not_found_key of string

let empty = M.empty

let add = M.add

let add_int k n t = M.add k (Value.Int n) t

let add_str k s t = M.add k (Value.Str s) t

let add_bool k b t = M.add k (Value.Bool b) t

let add_addr k a t = M.add k (Value.Addr a) t

let find = M.find_opt

let get k t =
  match M.find_opt k t with
  | Some v -> v
  | None -> raise (Not_found_key k)

let get_int k t = Value.as_int (get k t)

let get_str k t = Value.as_str (get k t)

let get_bool k t = Value.as_bool (get k t)

let get_addr k t = Value.as_addr (get k t)

let flag k t =
  match M.find_opt k t with
  | Some (Value.Bool b) -> b
  | Some _ | None -> false

let mem = M.mem

let bindings = M.bindings

let of_list l = List.fold_left (fun acc (k, v) -> M.add k v acc) M.empty l

let pp ppf t =
  let binding ppf (k, v) = Format.fprintf ppf "%s = %a" k Value.pp v in
  Format.fprintf ppf "{@[<hov>%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") binding)
    (bindings t)
