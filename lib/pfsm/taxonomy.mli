(** The three generic pFSM types of Section 6 / Figure 8.

    The paper's finding: these three predicates suffice to model all
    the studied vulnerability classes (stack buffer overflow, integer
    overflow, heap overflow, input validation, format string). *)

type kind =
  | Object_type_check
      (** is the input object of the type the operation is defined
          on? (integer vs long integer, terminal vs regular file) *)
  | Content_attribute_check
      (** do the object's content and attributes meet the security
          guarantee? (no "../", length within bounds, no %n) *)
  | Reference_consistency_check
      (** is the binding between an object and its reference
          preserved from check time to use time? (return address,
          GOT entry, free-chunk links, filename binding) *)

val all : kind list

val to_string : kind -> string

val description : kind -> string

val pp : Format.formatter -> kind -> unit

val equal : kind -> kind -> bool
