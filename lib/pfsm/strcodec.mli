(** String codecs shared by the predicate language and the application
    simulations: URL percent-decoding (the IIS double-decode of
    Figure 7), C integer parsing with 32-bit wrap-around (the signed
    overflow of Figure 3), and printf-directive detection (the
    rpc.statd format-string check). *)

val percent_decode : string -> string
(** One pass of URL decoding: each ["%hh"] hex escape becomes its
    byte; malformed escapes pass through untouched, as IIS's decoder
    behaved.  ["..%252f"] therefore becomes ["..%2f"], and a second
    pass turns that into ["../"]. *)

val percent_decode_n : int -> string -> string

val percent_encode : string -> string
(** Encode every byte outside [A-Za-z0-9._~/-] as ["%hh"];
    [percent_decode (percent_encode s) = s] for all [s]. *)

val parse_integer : string -> int option
(** Mathematical value of an optionally-signed decimal string; [None]
    when the string is not an integer at all.  Values beyond OCaml's
    native range saturate (they are far outside int32 anyway, which is
    all the predicates ask about). *)

val atoi32 : string -> int
(** C [atoi] on a 32-bit platform: parse a leading optionally-signed
    digit run (0 when there is none) and wrap the mathematical value
    into [\[-2{^31}, 2{^31})] — the conversion that turns the
    attacker's huge [str_x] into a negative array index. *)

val wrap32 : int -> int
(** Two's-complement truncation to signed 32 bits. *)

val fits_int32 : int -> bool

val format_directives : string -> string list
(** The printf conversion directives occurring in the string, in
    order (e.g. [["%x"; "%n"]]); the paper's input-validation check
    for format-string vulnerabilities. *)

val contains_format_directive : string -> bool
