type error = { position : int; message : string }

(* ---- lexer -------------------------------------------------------- *)

type token =
  | IDENT of string
  | INT of int
  | HEX of int
  | STRING of string
  | LPAREN | RPAREN | LBRACKET | RBRACKET
  | COMMA | SEMI | CARET | BANG
  | ANDAND | OROR
  | LE | LT | EQEQ | NE | GE | GT
  | EOF

exception Lex_error of error

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit position tok = tokens := (position, tok) :: !tokens in
  let fail position message = raise (Lex_error { position; message }) in
  let rec go i =
    if i >= n then emit i EOF
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' -> emit i LPAREN; go (i + 1)
      | ')' -> emit i RPAREN; go (i + 1)
      | '[' -> emit i LBRACKET; go (i + 1)
      | ']' -> emit i RBRACKET; go (i + 1)
      | ',' -> emit i COMMA; go (i + 1)
      | ';' -> emit i SEMI; go (i + 1)
      | '^' -> emit i CARET; go (i + 1)
      | '&' when i + 1 < n && input.[i + 1] = '&' -> emit i ANDAND; go (i + 2)
      | '|' when i + 1 < n && input.[i + 1] = '|' -> emit i OROR; go (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' -> emit i LE; go (i + 2)
      | '<' -> emit i LT; go (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' -> emit i GE; go (i + 2)
      | '>' -> emit i GT; go (i + 1)
      | '=' when i + 1 < n && input.[i + 1] = '=' -> emit i EQEQ; go (i + 2)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> emit i NE; go (i + 2)
      | '!' -> emit i BANG; go (i + 1)
      | '"' ->
          let b = Buffer.create 16 in
          let rec str j =
            if j >= n then fail i "unterminated string"
            else
              match input.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  (match input.[j + 1] with
                   | 'n' -> Buffer.add_char b '\n'
                   | 't' -> Buffer.add_char b '\t'
                   | '\\' -> Buffer.add_char b '\\'
                   | '"' -> Buffer.add_char b '"'
                   | c -> Buffer.add_char b c);
                  str (j + 2)
              | c ->
                  Buffer.add_char b c;
                  str (j + 1)
          in
          let next = str (i + 1) in
          emit i (STRING (Buffer.contents b));
          go next
      | '0' when i + 1 < n && input.[i + 1] = 'x' ->
          let rec hex j acc =
            if j < n then
              match input.[j] with
              | '0' .. '9' -> hex (j + 1) ((acc * 16) + Char.code input.[j] - 48)
              | 'a' .. 'f' -> hex (j + 1) ((acc * 16) + Char.code input.[j] - 87)
              | 'A' .. 'F' -> hex (j + 1) ((acc * 16) + Char.code input.[j] - 55)
              | _ -> (j, acc)
            else (j, acc)
          in
          let next, v = hex (i + 2) 0 in
          emit i (HEX v);
          go next
      | '0' .. '9' | '-' ->
          let negative = input.[i] = '-' in
          let start = if negative then i + 1 else i in
          if start >= n || input.[start] < '0' || input.[start] > '9' then
            fail i "expected digits"
          else begin
            let rec digits j acc =
              if j < n && input.[j] >= '0' && input.[j] <= '9' then
                digits (j + 1) ((acc * 10) + Char.code input.[j] - 48)
              else (j, acc)
            in
            let next, v = digits start 0 in
            emit i (INT (if negative then -v else v));
            go next
          end
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
          let rec ident j =
            if j < n then
              match input.[j] with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> ident (j + 1)
              | _ -> j
            else j
          in
          let next = ident i in
          emit i (IDENT (String.sub input i (next - i)));
          go next
      | c -> fail i (Printf.sprintf "unexpected character %c" c)
  in
  go 0;
  List.rev !tokens

(* ---- parser ------------------------------------------------------- *)

exception Parse_error of error

type stream = { mutable toks : (int * token) list }

let peek s = match s.toks with [] -> (0, EOF) | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let fail_at s message =
  let position, _ = peek s in
  raise (Parse_error { position; message })

let expect s tok message =
  let _, t = peek s in
  if t = tok then advance s else fail_at s message

let ident_key s =
  match peek s with
  | _, IDENT k -> advance s; k
  | _ -> fail_at s "expected an identifier"

(* term ::= self | env[k] | int | hex | string | length(t) | decode^n(t) *)
let rec parse_term s =
  match peek s with
  | _, IDENT "self" -> advance s; Predicate.Self
  | _, IDENT "env" ->
      advance s;
      expect s LBRACKET "expected [ after env";
      let k = ident_key s in
      expect s RBRACKET "expected ] after env key";
      Predicate.Env_val k
  | _, IDENT "length" ->
      advance s;
      expect s LPAREN "expected ( after length";
      let t = parse_term s in
      expect s RPAREN "expected ) after length";
      Predicate.Length t
  | _, IDENT "decode" ->
      advance s;
      expect s CARET "expected ^ after decode";
      let count =
        match peek s with
        | _, INT v when v >= 0 -> advance s; v
        | _ -> fail_at s "expected a decode count"
      in
      expect s LPAREN "expected ( after decode^n";
      let t = parse_term s in
      expect s RPAREN "expected ) after decode";
      Predicate.Decode (count, t)
  | _, IDENT "true" -> advance s; Predicate.Lit (Value.Bool true)
  | _, IDENT "false" -> advance s; Predicate.Lit (Value.Bool false)
  | _, INT v -> advance s; Predicate.Lit (Value.Int v)
  | _, HEX v -> advance s; Predicate.Lit (Value.Addr v)
  | _, STRING str -> advance s; Predicate.Lit (Value.Str str)
  | _ -> fail_at s "expected a term"

let is_stringy = function
  | Predicate.Lit (Value.Str _) | Predicate.Decode _ -> true
  | Predicate.Self | Predicate.Env_val _ | Predicate.Lit _ | Predicate.Length _ -> false

let string_list s =
  expect s LBRACKET "expected [";
  let rec items acc =
    match peek s with
    | _, STRING str ->
        advance s;
        (match peek s with
         | _, SEMI -> advance s; items (str :: acc)
         | _ -> List.rev (str :: acc))
    | _ -> List.rev acc
  in
  let l = items [] in
  expect s RBRACKET "expected ]";
  l

(* atom ::= true | false | !atom | (pred) | contains(...) | ... | cmp *)
let rec parse_atom s =
  match peek s with
  | _, IDENT "true" -> advance s; Predicate.True
  | _, IDENT "false" -> advance s; Predicate.False
  | _, BANG ->
      advance s;
      Predicate.Not (parse_atom s)
  | _, LPAREN ->
      advance s;
      let p = parse_or s in
      expect s RPAREN "expected )";
      p
  | _, IDENT "contains" ->
      advance s;
      expect s LPAREN "expected ( after contains";
      let t = parse_term s in
      expect s COMMA "expected , in contains";
      let needle =
        match peek s with
        | _, STRING str -> advance s; str
        | _ -> fail_at s "expected a string needle"
      in
      expect s RPAREN "expected ) after contains";
      Predicate.Contains (t, needle)
  | _, IDENT "contains_any" ->
      advance s;
      expect s LPAREN "expected (";
      let t = parse_term s in
      expect s COMMA "expected ,";
      let needles = string_list s in
      expect s RPAREN "expected )";
      Predicate.Contains_any (t, needles)
  | _, IDENT "fits_int32" ->
      advance s;
      expect s LPAREN "expected (";
      let t = parse_term s in
      expect s RPAREN "expected )";
      Predicate.Fits_int32 t
  | _, IDENT "format_free" ->
      advance s;
      expect s LPAREN "expected (";
      let t = parse_term s in
      expect s RPAREN "expected )";
      Predicate.Is_format_free t
  | _ -> (
      (* a term: either a comparison follows, or it was env[flag] *)
      let lhs = parse_term s in
      match peek s with
      | _, LE -> advance s; comparison s Predicate.Le lhs
      | _, LT -> advance s; comparison s Predicate.Lt lhs
      | _, GE -> advance s; comparison s Predicate.Ge lhs
      | _, GT -> advance s; comparison s Predicate.Gt lhs
      | _, NE -> advance s; comparison s Predicate.Ne lhs
      | _, EQEQ ->
          advance s;
          let rhs = parse_term s in
          if is_stringy lhs || is_stringy rhs then Predicate.Str_eq (lhs, rhs)
          else Predicate.Cmp (Predicate.Eq, lhs, rhs)
      | _ -> (
          match lhs with
          | Predicate.Env_val k -> Predicate.Env_flag k
          | _ -> fail_at s "expected a comparison operator"))

and comparison s op lhs =
  let rhs = parse_term s in
  Predicate.Cmp (op, lhs, rhs)

and parse_and s =
  let lhs = parse_atom s in
  match peek s with
  | _, ANDAND ->
      advance s;
      Predicate.And (lhs, parse_and s)
  | _ -> lhs

and parse_or s =
  let lhs = parse_and s in
  match peek s with
  | _, OROR ->
      advance s;
      Predicate.Or (lhs, parse_or s)
  | _ -> lhs

let run_parser f input =
  match lex input with
  | exception Lex_error e -> Error e
  | toks -> (
      let s = { toks } in
      match f s with
      | result ->
          (match peek s with
           | _, EOF -> Ok result
           | position, _ -> Error { position; message = "trailing input" })
      | exception Parse_error e -> Error e)

let predicate input = run_parser parse_or input

let term input = run_parser parse_term input

let predicate_exn input =
  match predicate input with
  | Ok p -> p
  | Error { position; message } ->
      invalid_arg (Printf.sprintf "Parse.predicate: at %d: %s" position message)

let roundtrips p =
  let rendered = Predicate.to_string p in
  match predicate rendered with
  | Ok q -> String.equal (Predicate.to_string q) rendered
  | Error _ -> false
