(** Objects flowing through pFSMs.

    The paper's elementary activities check "input objects" — user
    strings, converted integers, memory addresses, booleans derived
    from system state.  A value is one such object. *)

type t =
  | Int of int
  | Str of string
  | Addr of int
  | Bool of bool
  | Unit

val equal : t -> t -> bool

val type_name : t -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Partial projections; raise [Invalid_argument] on the wrong
    constructor, naming the expected type. *)

val as_int : t -> int

val as_str : t -> string

val as_addr : t -> int

val as_bool : t -> bool
