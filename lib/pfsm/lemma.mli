(** Mechanised checking of the Section-6 lemma.

    (1) An operation is secure when every one of its constituent
    predicates is correctly implemented; (2) to foil an exploit
    consisting of a sequence of vulnerable operations, it suffices to
    secure {e any one} operation in the sequence. *)

type check = {
  scenario : Env.t;
  op_name : string;           (** the single operation secured *)
  foiled : bool;              (** the exploit no longer completes *)
}

val sufficiency : Model.t -> scenarios:Env.t list -> check list
(** For every scenario the model marks as exploited, and every
    operation that took a hidden transition in its trace: secure that
    operation alone, re-run, and record whether the exploit is
    foiled.  The lemma predicts [foiled = true] throughout. *)

val pfsm_sufficiency : Model.t -> scenarios:Env.t list -> check list
(** The finer-grained variant: securing just the single elementary
    activity whose hidden path the exploit used. [op_name] then holds
    ["operation/pfsm"]. *)

val holds : Model.t -> scenarios:Env.t list -> bool
(** All {!sufficiency} checks pass. *)

val full_security : Model.t -> scenarios:Env.t list -> bool
(** Part 1 sanity: with every operation secured, no scenario
    completes via a hidden path. *)
