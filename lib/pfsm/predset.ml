(* Immutable bitsets over interned predicate ids.

   A set of predicates is an array of bit words, bit [i] standing for
   the canonical predicate with [Predicate.id] = i.  Every value is
   kept normalized (no trailing zero words), so structural equality of
   the arrays is set equality and an empty set is always [| |].

   The operations the list-based call sites used to spell as
   [List.mem] / [List.sort_uniq compare] over structural predicate
   compares become single-word tests and word-wise logical ops; a
   whole union allocates one small int array instead of a sorted
   intermediate list per call. *)

type t = int array

let bits_per_word = Sys.int_size

let empty : t = [||]

let is_empty s = Array.length s = 0

(* drop trailing zero words so equal sets are structurally equal *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mem_id i (s : t) =
  let w = i / bits_per_word in
  w < Array.length s && s.(w) land (1 lsl (i mod bits_per_word)) <> 0

let add_id i (s : t) =
  if mem_id i s then s
  else begin
    let w = i / bits_per_word in
    let a = Array.make (max (Array.length s) (w + 1)) 0 in
    Array.blit s 0 a 0 (Array.length s);
    a.(w) <- a.(w) lor (1 lsl (i mod bits_per_word));
    a
  end

let mem p s = mem_id (Predicate.id p) s

let add p s = add_id (Predicate.id p) s

let singleton p = add p empty

let of_list ps = List.fold_left (fun s p -> add p s) empty ps

let union (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let n = max la lb in
    let r = Array.make n 0 in
    for i = 0 to n - 1 do
      r.(i) <-
        (if i < la then a.(i) else 0) lor (if i < lb then b.(i) else 0)
    done;
    r
  end

let inter (a : t) (b : t) : t =
  let n = min (Array.length a) (Array.length b) in
  if n = 0 then empty
  else begin
    let r = Array.make n 0 in
    for i = 0 to n - 1 do
      r.(i) <- a.(i) land b.(i)
    done;
    normalize r
  end

let diff (a : t) (b : t) : t =
  let la = Array.length a in
  if la = 0 || Array.length b = 0 then a
  else begin
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      r.(i) <- a.(i) land lnot (if i < Array.length b then b.(i) else 0)
    done;
    normalize r
  end

let equal (a : t) (b : t) = a = b

let subset (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let rec go i = i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
  go 0

let popcount w =
  let n = ref 0 and w = ref w in
  while !w <> 0 do
    incr n;
    w := !w land (!w - 1)
  done;
  !n

let cardinal (s : t) = Array.fold_left (fun acc w -> acc + popcount w) 0 s

(* ascending id order: low words first, low bits first *)
let fold_ids f (s : t) acc =
  let acc = ref acc in
  Array.iteri
    (fun wi word ->
      let w = ref word in
      while !w <> 0 do
        let low = !w land - !w in
        let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1) in
        acc := f ((wi * bits_per_word) + bit_index low 0) !acc;
        w := !w land (!w - 1)
      done)
    s;
  !acc

let fold f s acc =
  fold_ids
    (fun i acc ->
      match Predicate.of_id i with Some p -> f p acc | None -> acc)
    s acc

let elements s = List.rev (fold (fun p acc -> p :: acc) s [])

let to_ids s = List.rev (fold_ids (fun i acc -> i :: acc) s [])
