(** Exhaustive verification of pFSMs over finite domains.

    Witness search ({!Witness}) samples; this module {e enumerates} a
    described finite domain and decides whether the implementation
    predicate implies the specification predicate on all of it —
    yielding a certificate rather than an absence of counterexamples.
    For the integer and short-string domains the studied predicates
    range over, exhaustion is cheap and turns "no witness found" into
    "no hidden path exists on this domain". *)

type domain =
  | Int_range of { low : int; high : int }
      (** every integer in [\[low, high\]] *)
  | Int_edges
      (** int32 edge values and their neighbourhoods *)
  | Strings of string list
  | Alphabet_strings of { alphabet : string; max_len : int }
      (** every string over [alphabet] up to [max_len] — exponential,
          bounded to 100k candidates *)

type result =
  | Verified of { candidates : int }
      (** impl ⇒ spec on the whole domain *)
  | Refuted of { witness : Value.t; candidates_tried : int }
      (** [candidates_tried] counts candidates actually examined,
          including the witness *)
  | Budget_exhausted of { tried : int; total : int }
      (** the {!Fault.Budget} ran dry before the scan decided — an
          explicit partial answer, never a silent truncation *)
  | Domain_too_large of { bound : int }

val enumerate : domain -> Value.t list
(** The domain's elements (raises nothing; [Alphabet_strings] beyond
    the bound yields the prefix-closed subset it reached — use
    {!verify} to get the honest [Domain_too_large]). *)

val size : domain -> int
(** Number of candidates the domain denotes. *)

val max_candidates : int
(** 100_000. *)

val verify : ?env:Env.t -> ?budget:Fault.Budget.t -> Primitive.t -> domain -> result
(** Decide [impl ⇒ spec] on the domain, consuming one unit of
    [budget] fuel per candidate examined. *)

val verify_secured : ?env:Env.t -> ?budget:Fault.Budget.t -> Primitive.t -> domain -> bool
(** Sanity: a {!Primitive.secured} pFSM always verifies. *)

val pp_result : Format.formatter -> result -> unit
