(** Execution fuel for the exhaustive analyses.

    [Scheduler.explore], [Search.hidden_paths] and [Pfsm.Verify] all
    enumerate combinatorial spaces.  A budget bounds how much of the
    space they walk; the result then carries an explicit {!coverage}
    so a truncated run can never be mistaken for an exhaustive one. *)

type t

val unlimited : unit -> t

val of_fuel : int -> t
(** A budget of [n] units (schedules, scenarios, candidates —
    whatever the consumer counts).  Negative fuel clamps to zero. *)

val take : t -> bool
(** Spend one unit.  [false] means the budget is exhausted and the
    unit was {e not} granted. *)

val used : t -> int

val exhausted : t -> bool

type coverage = Complete | Partial of { covered : int; total : int }

val coverage : covered:int -> total:int -> coverage

val complete : coverage -> bool

val pp_coverage : Format.formatter -> coverage -> unit
