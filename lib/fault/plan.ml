type t = {
  name : string;
  seed : int;
  benign : bool;
  heap_fail_percent : int option;
  recv_max_chunk : int option;
  socket_reset_after : int option;
  fs_deny_percent : int option;
  sched_drop_percent : int option;
  sched_dup_percent : int option;
  bitflip_percent : int option;
  io_torn_percent : int option;
  io_flip_percent : int option;
  io_error_percent : int option;
  io_crash_percent : int option;
}

let none =
  { name = "no-op";
    seed = 1;
    benign = true;
    heap_fail_percent = None;
    recv_max_chunk = None;
    socket_reset_after = None;
    fs_deny_percent = None;
    sched_drop_percent = None;
    sched_dup_percent = None;
    bitflip_percent = None;
    io_torn_percent = None;
    io_flip_percent = None;
    io_error_percent = None;
    io_crash_percent = None }

let sim_active t =
  t.heap_fail_percent <> None || t.recv_max_chunk <> None
  || t.socket_reset_after <> None || t.fs_deny_percent <> None
  || t.sched_drop_percent <> None || t.sched_dup_percent <> None
  || t.bitflip_percent <> None

let io_active t =
  t.io_torn_percent <> None || t.io_flip_percent <> None
  || t.io_error_percent <> None || t.io_crash_percent <> None

let is_passive t = not (sim_active t) && not (io_active t)

let pp ppf t =
  let knob name ppv = Option.map (fun v -> Format.asprintf "%s=%a" name ppv v) in
  let d ppf = Format.fprintf ppf "%d" in
  let active =
    List.filter_map Fun.id
      [ knob "heap-fail%" d t.heap_fail_percent;
        knob "recv-chunk" d t.recv_max_chunk;
        knob "reset-after" d t.socket_reset_after;
        knob "fs-deny%" d t.fs_deny_percent;
        knob "sched-drop%" d t.sched_drop_percent;
        knob "sched-dup%" d t.sched_dup_percent;
        knob "bitflip%" d t.bitflip_percent;
        knob "io-torn%" d t.io_torn_percent;
        knob "io-flip%" d t.io_flip_percent;
        knob "io-error%" d t.io_error_percent;
        knob "io-crash%" d t.io_crash_percent ]
  in
  Format.fprintf ppf "%s (seed %d%s): %s" t.name t.seed
    (if t.benign then ", benign" else "")
    (if active = [] then "no faults" else String.concat " " active)
