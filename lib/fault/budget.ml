type t = { mutable remaining : int option; mutable used : int }

let unlimited () = { remaining = None; used = 0 }

let of_fuel n = { remaining = Some (max 0 n); used = 0 }

let take t =
  match t.remaining with
  | None ->
      t.used <- t.used + 1;
      true
  | Some 0 -> false
  | Some n ->
      t.remaining <- Some (n - 1);
      t.used <- t.used + 1;
      true

let used t = t.used

let exhausted t = t.remaining = Some 0

type coverage = Complete | Partial of { covered : int; total : int }

let coverage ~covered ~total =
  if covered >= total then Complete else Partial { covered; total }

let complete = function Complete -> true | Partial _ -> false

let pp_coverage ppf = function
  | Complete -> Format.fprintf ppf "complete"
  | Partial { covered; total } ->
      Format.fprintf ppf "PARTIAL (%d of %d covered)" covered total
