type t = { seam : string; detail : string }

let make ~seam detail = { seam; detail }

let seam t = t.seam

let pp ppf t = Format.fprintf ppf "[%s] %s" t.seam t.detail
