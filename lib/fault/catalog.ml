let none = Plan.none

(* Benign: every request is fragmented at the 1024-byte chunk the
   read loops already use, so granted sizes are unchanged. *)
let mtu_recv =
  { Plan.none with name = "mtu-recv"; seed = 102; recv_max_chunk = Some 1024 }

let short_recv =
  { Plan.none with
    name = "short-recv"; seed = 103; benign = false; recv_max_chunk = Some 7 }

let heap_pressure =
  { Plan.none with
    name = "heap-pressure"; seed = 104; benign = false;
    heap_fail_percent = Some 60 }

let fs_chaos =
  { Plan.none with
    name = "fs-chaos"; seed = 105; benign = false; fs_deny_percent = Some 55 }

let sched_chaos =
  { Plan.none with
    name = "sched-chaos"; seed = 106; benign = false;
    sched_drop_percent = Some 40; sched_dup_percent = Some 25 }

let bitflip =
  { Plan.none with
    name = "bitflip"; seed = 107; benign = false; bitflip_percent = Some 70 }

let socket_reset =
  { Plan.none with
    name = "socket-reset"; seed = 108; benign = false;
    socket_reset_after = Some 1 }

let all =
  [ none; mtu_recv; short_recv; heap_pressure; fs_chaos; sched_chaos; bitflip;
    socket_reset ]

let smoke = [ none; short_recv; heap_pressure ]

(* The store-I/O fault catalog: replayed by the chaos disk leg (and
   the crash-recovery property) against a warm persistent store.  Not
   part of [all] — these knobs only perturb [Store.Io], so running
   them through the simulation legs would be a no-op.  They never
   change computed values, only durability, hence [benign]. *)
let disk_torn =
  { Plan.none with name = "disk-torn"; seed = 109; io_torn_percent = Some 45 }

let disk_flip =
  { Plan.none with name = "disk-flip"; seed = 110; io_flip_percent = Some 45 }

let disk_full =
  { Plan.none with name = "disk-full"; seed = 111; io_error_percent = Some 45 }

let disk_crash =
  { Plan.none with name = "disk-crash"; seed = 112; io_crash_percent = Some 45 }

let disk_mixed =
  { Plan.none with
    name = "disk-mixed"; seed = 113;
    io_torn_percent = Some 20; io_flip_percent = Some 20;
    io_error_percent = Some 15; io_crash_percent = Some 15 }

let disk = [ disk_torn; disk_flip; disk_full; disk_crash; disk_mixed ]

let disk_smoke = [ disk_torn; disk_mixed ]

let find name = List.find_opt (fun p -> p.Plan.name = name) (all @ disk)
