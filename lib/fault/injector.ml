type mutation = Drop_step of int | Dup_step of int

type io_fault =
  | Io_torn of int
  | Io_flip of int * int
  | Io_error of string
  | Io_crash

type t = {
  plan : Plan.t;
  rng : Vulndb.Prng.t;
  mutable allocs : int;
  mutable recvs : int;
  mutable writes : int;
  mutable schedules : int;
  mutable store_writes : int;
  mutable events : Event.t list;   (* newest first *)
}

let create plan =
  { plan;
    rng = Vulndb.Prng.create ~seed:plan.Plan.seed;
    allocs = 0;
    recvs = 0;
    writes = 0;
    schedules = 0;
    store_writes = 0;
    events = [] }

let plan t = t.plan

let events t = List.rev t.events

let m_injected = Obs.Metrics.counter "fault.injected"

let record t ~seam detail =
  Obs.Metrics.incr m_injected;
  Obs.Span.instant ~cat:"fault" ~args:[ ("seam", seam); ("detail", detail) ]
    "fault.injected";
  t.events <- Event.make ~seam detail :: t.events

let chance t = function
  | None -> false
  | Some percent -> Vulndb.Prng.below t.rng 100 < percent

let heap_alloc_fails t ~requested =
  t.allocs <- t.allocs + 1;
  match t.plan.Plan.heap_fail_percent with
  | None -> false
  | Some _ as p ->
      let fails = chance t p in
      if fails then
        record t ~seam:"machine.heap"
          (Printf.sprintf "malloc(%d) denied (allocation #%d)" requested t.allocs);
      fails

(* The socket seam both clamps the granted chunk and, past the
   configured call count, resets the connection. *)
let recv_request t ~requested ~consumed =
  let idx = t.recvs in
  t.recvs <- idx + 1;
  (match t.plan.Plan.socket_reset_after with
   | Some k when idx >= k ->
       record t ~seam:"osmodel.socket"
         (Printf.sprintf "connection reset at recv #%d" (idx + 1));
       Condition.fail (Condition.Socket_reset { consumed })
   | Some _ | None -> ());
  match t.plan.Plan.recv_max_chunk with
  | Some chunk when requested > chunk ->
      record t ~seam:"osmodel.socket"
        (Printf.sprintf "recv(%d) clamped to %d bytes" requested chunk);
      chunk
  | Some _ | None -> requested

(* Denial is a pure function of (seed, path), NOT a PRNG draw: the
   access(2)-style check and the later open(2) must agree on the same
   path, exactly as a sticky EACCES would in a real filesystem. *)
let fs_denies t ~path =
  match t.plan.Plan.fs_deny_percent with
  | None -> false
  | Some percent ->
      let h = Hashtbl.hash (t.plan.Plan.seed, "fs", path) in
      let denied = h mod 100 < percent in
      if denied then
        record t ~seam:"osmodel.filesystem" (Printf.sprintf "EACCES on %s" path);
      denied

let mangle t s =
  match t.plan.Plan.bitflip_percent with
  | None -> s
  | Some _ as p ->
      t.writes <- t.writes + 1;
      if String.length s = 0 || not (chance t p) then s
      else begin
        let off = Vulndb.Prng.below t.rng (String.length s) in
        let bit = Vulndb.Prng.below t.rng 8 in
        let b = Bytes.of_string s in
        Bytes.set b off
          (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
        record t ~seam:"machine.memory"
          (Printf.sprintf "bit %d of byte %d flipped in a %d-byte write" bit off
             (String.length s));
        Bytes.to_string b
      end

(* At most one fault per store write, first matching knob wins: a
   record is torn OR flipped OR denied OR orphaned, so a degraded read
   maps back to exactly one injected event.  [len] is the full on-disk
   record size (header + payload); a torn write keeps a strict prefix,
   so the checksum can never accidentally survive. *)
let store_write t ~len =
  if not (Plan.io_active t.plan) then None
  else begin
    t.store_writes <- t.store_writes + 1;
    let write = t.store_writes in
    if len > 0 && chance t t.plan.Plan.io_torn_percent then begin
      let keep = Vulndb.Prng.below t.rng len in
      record t ~seam:"store.io"
        (Printf.sprintf "write #%d torn: %d of %d bytes reach disk" write keep
           len);
      Some (Io_torn keep)
    end
    else if len > 0 && chance t t.plan.Plan.io_flip_percent then begin
      let off = Vulndb.Prng.below t.rng len in
      let bit = Vulndb.Prng.below t.rng 8 in
      record t ~seam:"store.io"
        (Printf.sprintf "write #%d corrupted: bit %d of byte %d flipped" write
           bit off);
      Some (Io_flip (off, bit))
    end
    else if chance t t.plan.Plan.io_error_percent then begin
      let errno =
        if Vulndb.Prng.below t.rng 2 = 0 then "ENOSPC" else "EACCES"
      in
      record t ~seam:"store.io"
        (Printf.sprintf "write #%d failed: %s" write errno);
      Some (Io_error errno)
    end
    else if chance t t.plan.Plan.io_crash_percent then begin
      record t ~seam:"store.io"
        (Printf.sprintf "write #%d crashed before rename (orphan tmp)" write);
      Some Io_crash
    end
    else None
  end

let schedule_mutation t ~steps =
  if steps = 0 then None
  else begin
    t.schedules <- t.schedules + 1;
    if chance t t.plan.Plan.sched_drop_percent then begin
      let i = Vulndb.Prng.below t.rng steps in
      record t ~seam:"osmodel.scheduler"
        (Printf.sprintf "step %d of %d dropped (schedule #%d)" i steps t.schedules);
      Some (Drop_step i)
    end
    else if chance t t.plan.Plan.sched_dup_percent then begin
      let i = Vulndb.Prng.below t.rng steps in
      record t ~seam:"osmodel.scheduler"
        (Printf.sprintf "step %d of %d duplicated (schedule #%d)" i steps t.schedules);
      Some (Dup_step i)
    end
    else None
  end
