(* The ambient injector is domain-local: a plan installed in one
   domain must never leak into pool workers (each would interleave
   draws from the injector's single PRNG stream and destroy event
   determinism).  Instead, Par is given a serial guard below — any
   parallel map attempted while an injector is active degrades to
   sequential execution in the installing domain. *)
let installed : Injector.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let slot () = Domain.DLS.get installed

let current () = !(slot ())

let () = Par.add_serial_guard (fun () -> current () <> None)

let with_injector inj f =
  let r = slot () in
  let prev = !r in
  r := Some inj;
  Fun.protect ~finally:(fun () -> r := prev) f

let with_plan plan f = with_injector (Injector.create plan) f

let run plan f =
  let inj = Injector.create plan in
  let result = with_injector inj f in
  (result, Injector.events inj)

(* Seam queries: no-ops when no injector is installed, so the default
   (unperturbed) execution pays one DLS read per seam and nothing
   else. *)

let heap_alloc_fails ~requested =
  match current () with
  | None -> false
  | Some i -> Injector.heap_alloc_fails i ~requested

let recv_request ~requested ~consumed =
  match current () with
  | None -> requested
  | Some i -> Injector.recv_request i ~requested ~consumed

let fs_denies ~path =
  match current () with None -> false | Some i -> Injector.fs_denies i ~path

let mangle s =
  match current () with None -> s | Some i -> Injector.mangle i s

let schedule_mutation ~steps =
  match current () with
  | None -> None
  | Some i -> Injector.schedule_mutation i ~steps

let store_write_fault ~len =
  match current () with
  | None -> None
  | Some i -> Injector.store_write i ~len

let sim_plan_active () =
  match current () with
  | None -> false
  | Some i -> Plan.sim_active (Injector.plan i)
