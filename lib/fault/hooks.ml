let installed : Injector.t option ref = ref None

let current () = !installed

let with_injector inj f =
  let prev = !installed in
  installed := Some inj;
  Fun.protect ~finally:(fun () -> installed := prev) f

let with_plan plan f = with_injector (Injector.create plan) f

let run plan f =
  let inj = Injector.create plan in
  let result = with_injector inj f in
  (result, Injector.events inj)

(* Seam queries: no-ops when no injector is installed, so the default
   (unperturbed) execution pays one ref read per seam and nothing
   else. *)

let heap_alloc_fails ~requested =
  match !installed with
  | None -> false
  | Some i -> Injector.heap_alloc_fails i ~requested

let recv_request ~requested ~consumed =
  match !installed with
  | None -> requested
  | Some i -> Injector.recv_request i ~requested ~consumed

let fs_denies ~path =
  match !installed with None -> false | Some i -> Injector.fs_denies i ~path

let mangle s =
  match !installed with None -> s | Some i -> Injector.mangle i s

let schedule_mutation ~steps =
  match !installed with
  | None -> None
  | Some i -> Injector.schedule_mutation i ~steps
