(** The stateful half of a fault plan: a PRNG stream plus per-seam
    counters.  One injector is created per perturbed run; because the
    plan seed determines the PRNG and the counters start at zero, two
    runs of the same workload under the same plan make identical
    injection decisions. *)

type mutation = Drop_step of int | Dup_step of int

type io_fault =
  | Io_torn of int        (** only this many leading bytes reach disk *)
  | Io_flip of int * int  (** (byte offset, bit) corrupted in flight *)
  | Io_error of string    (** the write fails outright (ENOSPC/EACCES) *)
  | Io_crash              (** the commit dies before rename: orphan tmp *)

type t

val create : Plan.t -> t

val plan : t -> Plan.t

val events : t -> Event.t list
(** Every fault injected so far, oldest first. *)

val heap_alloc_fails : t -> requested:int -> bool
(** Should this allocation be denied? *)

val recv_request : t -> requested:int -> consumed:int -> int
(** The chunk size actually granted to a [recv]; raises
    {!Condition.Simulated} with [Socket_reset] past the plan's reset
    point. *)

val fs_denies : t -> path:string -> bool
(** Deterministic per-path denial — the check and the use of the same
    path always agree. *)

val mangle : t -> string -> string
(** Possibly flip one bit of a bulk write's payload (same length). *)

val schedule_mutation : t -> steps:int -> mutation option
(** Perturb a schedule of [steps] steps: drop or duplicate one. *)

val store_write : t -> len:int -> io_fault option
(** Should this [len]-byte persistent-store write be perturbed?  At
    most one fault per write (first matching knob wins), so every
    degraded read traces back to exactly one injected event. *)
