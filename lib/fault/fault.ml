(** Deterministic fault injection and budgeted execution.

    {!Plan} says what to break, {!Injector} decides when (seeded by
    {!Vulndb.Prng}), {!Hooks} carries the decisions to the seams in
    [machine] and [osmodel], {!Condition} types the failures the
    simulated programs can hit, and {!Budget} bounds the exhaustive
    analyses with explicit coverage. *)

module Condition = Condition
module Event = Event
module Budget = Budget
module Plan = Plan
module Injector = Injector
module Hooks = Hooks
module Catalog = Catalog

type 'a outcome = 'a Condition.outcome

exception Simulated = Condition.Simulated
