(** The canned fault plans the resilience harness runs under.

    Two are benign (the no-op plan and MTU-sized [recv]
    fragmentation): model-vs-simulation agreement must survive them
    unchanged.  The rest each violate one environmental assumption —
    allocation always succeeds, [recv] returns full chunks, the
    connection stays up, the filesystem cooperates, the scheduler
    runs every step once, memory holds its bits. *)

val none : Plan.t

val mtu_recv : Plan.t
(** Benign: fragment at the read loops' own 1024-byte chunk size. *)

val short_recv : Plan.t
(** 7-byte [recv] chunks: short and fragmented reads. *)

val heap_pressure : Plan.t
(** 60% of allocations are denied. *)

val fs_chaos : Plan.t
(** 55% of paths answer EACCES (deterministically per path). *)

val sched_chaos : Plan.t
(** Schedules lose or replay a step. *)

val bitflip : Plan.t
(** 70% of bulk memory writes have one bit flipped. *)

val socket_reset : Plan.t
(** The connection resets at the second [recv]. *)

val all : Plan.t list

val smoke : Plan.t list
(** A three-plan subset for CI. *)

val find : string -> Plan.t option
