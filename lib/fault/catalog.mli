(** The canned fault plans the resilience harness runs under.

    Two are benign (the no-op plan and MTU-sized [recv]
    fragmentation): model-vs-simulation agreement must survive them
    unchanged.  The rest each violate one environmental assumption —
    allocation always succeeds, [recv] returns full chunks, the
    connection stays up, the filesystem cooperates, the scheduler
    runs every step once, memory holds its bits. *)

val none : Plan.t

val mtu_recv : Plan.t
(** Benign: fragment at the read loops' own 1024-byte chunk size. *)

val short_recv : Plan.t
(** 7-byte [recv] chunks: short and fragmented reads. *)

val heap_pressure : Plan.t
(** 60% of allocations are denied. *)

val fs_chaos : Plan.t
(** 55% of paths answer EACCES (deterministically per path). *)

val sched_chaos : Plan.t
(** Schedules lose or replay a step. *)

val bitflip : Plan.t
(** 70% of bulk memory writes have one bit flipped. *)

val socket_reset : Plan.t
(** The connection resets at the second [recv]. *)

val all : Plan.t list

val smoke : Plan.t list
(** A three-plan subset for CI. *)

val disk_torn : Plan.t
(** 45% of store writes reach disk truncated. *)

val disk_flip : Plan.t
(** 45% of store writes land with one bit flipped. *)

val disk_full : Plan.t
(** 45% of store writes fail outright (ENOSPC/EACCES). *)

val disk_crash : Plan.t
(** 45% of store commits die before their rename (orphan tmp). *)

val disk_mixed : Plan.t
(** All four store-I/O faults at lower rates. *)

val disk : Plan.t list
(** The store-I/O fault catalog (disjoint from {!all}): replayed by
    the chaos disk leg against a warm persistent store.  These plans
    perturb only [Store.Io] durability, never computed values. *)

val disk_smoke : Plan.t list
(** A two-plan disk subset for CI. *)

val find : string -> Plan.t option
(** Searches {!all} and {!disk}. *)
