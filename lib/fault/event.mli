(** One injected fault, as recorded by the {!Injector} at the seam
    where it fired — the audit trail that makes a perturbed run
    explainable after the fact. *)

type t = { seam : string; detail : string }

val make : seam:string -> string -> t

val seam : t -> string

val pp : Format.formatter -> t -> unit
