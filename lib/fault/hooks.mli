(** The ambient injector and the seam queries the simulation calls.

    [machine] and [osmodel] consult these hooks at each injectable
    seam.  With no injector installed every query is the identity /
    [false] / [None], so the unperturbed system behaves exactly as it
    did before the fault layer existed.  [with_plan] installs an
    injector for the dynamic extent of one workload and restores the
    previous one afterwards (plans nest). *)

val with_plan : Plan.t -> (unit -> 'a) -> 'a

val run : Plan.t -> (unit -> 'a) -> 'a * Event.t list
(** Like {!with_plan} but also returns the faults that fired. *)

val with_injector : Injector.t -> (unit -> 'a) -> 'a

val current : unit -> Injector.t option

(** {2 Seam queries} *)

val heap_alloc_fails : requested:int -> bool

val recv_request : requested:int -> consumed:int -> int

val fs_denies : path:string -> bool

val mangle : string -> string

val schedule_mutation : steps:int -> Injector.mutation option

val store_write_fault : len:int -> Injector.io_fault option
(** Consulted by [Store.Io] once per record write; [None] commits the
    write untouched. *)

val sim_plan_active : unit -> bool
(** An injector whose plan has a simulation knob on is installed in
    this domain: workload results may be perturbed, so result caches
    must neither serve nor record entries for its dynamic extent. *)
