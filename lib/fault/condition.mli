(** The typed failure taxonomy of the simulated machine and OS.

    Every condition here is something the {e simulated} program can
    hit — a resource running out, a syscall failing — as opposed to a
    misuse of the simulator's own API (which stays [Invalid_argument]
    and really is a bug in the caller).  Simulated conditions are
    raised as {!Simulated} and are expected to be caught at the
    application boundary and folded into an outcome, never to escape
    a simulated code path. *)

type t =
  | Heap_exhausted of { requested : int }
  | Stack_exhausted of { requested : int }
  | Got_full of { capacity : int }
  | Data_segment_full of { requested : int }
  | Socket_reset of { consumed : int }
  | Fs_denied of { path : string }

exception Simulated of t

type 'a outcome = ('a, t) result

val fail : t -> 'a
(** Raise {!Simulated}. *)

val protect : (unit -> 'a) -> 'a outcome
(** Run a simulated code path, reifying {!Simulated} as [Error]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
