(** A deterministic description of which faults to inject where.

    A plan is pure data: together with its PRNG seed it fully
    determines every injection decision, so the same plan always
    produces the same perturbed execution.  [none] (and any plan with
    every knob off) injects nothing — the seams are no-ops and
    existing behaviour is bit-for-bit unchanged.

    A plan marked [benign] only perturbs within the envelope the
    simulated programs are specified to tolerate (e.g. fragmenting
    [recv] at the chunk size the code already handles); the fault
    matrix asserts that model-vs-simulation agreement survives every
    benign plan. *)

type t = {
  name : string;
  seed : int;
  benign : bool;   (** agreement must survive this plan *)
  heap_fail_percent : int option;   (** chance a malloc is denied *)
  recv_max_chunk : int option;      (** clamp every recv to this many bytes *)
  socket_reset_after : int option;  (** reset the connection at the k-th recv *)
  fs_deny_percent : int option;     (** per-path chance of EACCES *)
  sched_drop_percent : int option;  (** chance a schedule loses one step *)
  sched_dup_percent : int option;   (** chance a schedule replays one step *)
  bitflip_percent : int option;     (** chance a bulk memory write is corrupted *)
  io_torn_percent : int option;     (** chance a store write is truncated mid-record *)
  io_flip_percent : int option;     (** chance a store write has one bit flipped *)
  io_error_percent : int option;    (** chance a store write fails ENOSPC/EACCES *)
  io_crash_percent : int option;    (** chance a commit dies before its rename *)
}

val none : t

val is_passive : t -> bool
(** Every knob is off: the plan cannot perturb anything. *)

val sim_active : t -> bool
(** A simulation knob (heap/recv/socket/fs/sched/bitflip) is on: the
    plan can perturb workload {e results}, so result caches must not
    serve or record entries computed under it. *)

val io_active : t -> bool
(** A store-I/O knob is on: the plan perturbs only the durability of
    persisted records, never computed values. *)

val pp : Format.formatter -> t -> unit
