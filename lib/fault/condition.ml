type t =
  | Heap_exhausted of { requested : int }
  | Stack_exhausted of { requested : int }
  | Got_full of { capacity : int }
  | Data_segment_full of { requested : int }
  | Socket_reset of { consumed : int }
  | Fs_denied of { path : string }

exception Simulated of t

type 'a outcome = ('a, t) result

let fail c = raise (Simulated c)

let protect f = try Ok (f ()) with Simulated c -> Error c

let pp ppf = function
  | Heap_exhausted { requested } ->
      Format.fprintf ppf "heap exhausted (malloc of %d bytes failed)" requested
  | Stack_exhausted { requested } ->
      Format.fprintf ppf "stack exhausted (push of %d bytes failed)" requested
  | Got_full { capacity } ->
      Format.fprintf ppf "GOT table full (capacity %d)" capacity
  | Data_segment_full { requested } ->
      Format.fprintf ppf "data segment full (global of %d bytes failed)" requested
  | Socket_reset { consumed } ->
      Format.fprintf ppf "connection reset by peer (after %d bytes)" consumed
  | Fs_denied { path } -> Format.fprintf ppf "I/O error on %s (injected EACCES)" path

let to_string t = Format.asprintf "%a" pp t
