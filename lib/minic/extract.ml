type danger =
  | Store_to of string
  | Copy_to of string

type site = {
  danger : danger;
  guard : Ast.expr;
  operand : Ast.expr;
}

let conj guards =
  match guards with
  | [] -> Ast.Int_lit 1
  | g :: rest -> List.fold_left (fun acc g' -> Ast.Bin (Ast.And, acc, g')) g rest

let rec expr_vars acc (e : Ast.expr) =
  match e with
  | Ast.Var v -> v :: acc
  | Ast.Int_lit _ | Ast.Str_lit _ -> acc
  | Ast.Bin (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ast.Not e | Ast.Atoi e | Ast.Strlen e -> expr_vars acc e

let mentions v e = List.mem v (expr_vars [] e)

(* Variables written anywhere in a statement list (including nested). *)
let rec assigned_in stmts =
  List.concat_map
    (fun (stmt : Ast.stmt) ->
       match stmt with
       | Ast.Decl_int (v, _) | Ast.Assign (v, _) -> [ v ]
       | Ast.Recv_into (rc, _, _, _) -> [ rc ]
       | Ast.If (_, a, b) -> assigned_in a @ assigned_in b
       | Ast.While (_, b) | Ast.Do_while (b, _) -> assigned_in b
       | Ast.Decl_buf _ | Ast.Decl_buf_dyn _ | Ast.Array_store _
       | Ast.Strcpy _ | Ast.Strncpy _ | Ast.Reject _ | Ast.Return _ -> [])
    stmts

(* A collected guard only keeps describing the state while the
   variables it mentions are untouched; a write in between invalidates
   the conjunct (check-then-clobber would otherwise smuggle a stale
   check into the path condition). *)
let drop_clobbered vs guards =
  List.filter (fun g -> not (List.exists (fun v -> mentions v g) vs)) guards

(* Does executing this statement list always leave the function? *)
let rec always_exits stmts =
  List.exists
    (fun (stmt : Ast.stmt) ->
       match stmt with
       | Ast.Reject _ | Ast.Return _ -> true
       | Ast.If (_, a, b) -> always_exits a && always_exits b
       | Ast.Decl_int _ | Ast.Decl_buf _ | Ast.Decl_buf_dyn _ | Ast.Assign _
       | Ast.Array_store _ | Ast.Strcpy _ | Ast.Strncpy _ | Ast.Recv_into _
       | Ast.While _ | Ast.Do_while _ -> false)
    stmts

let dangerous_sites (f : Ast.func) =
  let sites = ref [] in
  let emit danger operand guards =
    sites := { danger; guard = conj (List.rev guards); operand } :: !sites
  in
  let rec walk guards stmts =
    match stmts with
    | [] -> ()
    | (stmt : Ast.stmt) :: rest ->
        let continue_with guards = walk guards rest in
        (match stmt with
         | Ast.Array_store (array, idx_e, _) ->
             emit (Store_to array) idx_e guards;
             continue_with guards
         | Ast.Strcpy (buffer, src) | Ast.Strncpy (buffer, src, _) ->
             emit (Copy_to buffer) src guards;
             continue_with guards
         | Ast.Recv_into (rc, buffer, off_e, _) ->
             emit (Copy_to buffer) off_e guards;
             (* the call writes [rc] *)
             continue_with (drop_clobbered [ rc ] guards)
         | Ast.If (cond, then_, else_) ->
             walk (cond :: guards) then_;
             walk (Ast.Not cond :: guards) else_;
             (* Code after the If runs under the negation of any
                branch condition whose body always exits — and only
                the conjuncts no fall-through branch clobbered. *)
             let fall_assigns =
               (if always_exits then_ then [] else assigned_in then_)
               @ (if always_exits else_ then [] else assigned_in else_)
             in
             let after =
               (if always_exits then_ then
                  drop_clobbered fall_assigns [ Ast.Not cond ]
                else [])
               @ (if always_exits else_ then
                    drop_clobbered fall_assigns [ cond ]
                  else [])
               @ drop_clobbered fall_assigns guards
             in
             if not (always_exits then_ && always_exits else_) then
               walk after rest
         | Ast.While (cond, body) ->
             (* from iteration two on, guards over body-assigned
                variables are stale — drop them before entering *)
             let inner = drop_clobbered (assigned_in body) guards in
             walk (cond :: inner) body;
             continue_with (Ast.Not cond :: inner)
         | Ast.Do_while (body, cond) ->
             (* the first iteration runs unconditionally, but later
                ones see the body's writes; keep only the stable part *)
             let inner = drop_clobbered (assigned_in body) guards in
             walk inner body;
             continue_with (Ast.Not cond :: inner)
         | Ast.Reject _ | Ast.Return _ -> ()   (* unreachable afterwards *)
         | Ast.Decl_int (v, _) | Ast.Assign (v, _) ->
             continue_with (drop_clobbered [ v ] guards)
         | Ast.Decl_buf _ | Ast.Decl_buf_dyn _ ->
             continue_with guards)
  in
  walk [] f.Ast.body;
  List.rev !sites

(* ---- guard -> predicate ------------------------------------------- *)

let cmp_of = function
  | Ast.Lt -> Some Pfsm.Predicate.Lt
  | Ast.Le -> Some Pfsm.Predicate.Le
  | Ast.Gt -> Some Pfsm.Predicate.Gt
  | Ast.Ge -> Some Pfsm.Predicate.Ge
  | Ast.Eq -> Some Pfsm.Predicate.Eq
  | Ast.Ne -> Some Pfsm.Predicate.Ne
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.And | Ast.Or -> None

(* Terms: the object variable itself, strlen of it, and integer
   literals. *)
let rec translate_term ~object_var (e : Ast.expr) =
  match e with
  | Ast.Var v when v = object_var -> Some Pfsm.Predicate.Self
  | Ast.Int_lit n -> Some (Pfsm.Predicate.Lit (Pfsm.Value.Int n))
  | Ast.Strlen inner -> (
      match translate_term ~object_var inner with
      | Some t -> Some (Pfsm.Predicate.Length t)
      | None -> None)
  | Ast.Atoi inner -> translate_term ~object_var inner
      (* atoi(object) as a term: the predicate then speaks about the
         converted value; callers designate which view they model. *)
  | Ast.Str_lit _ | Ast.Var _ | Ast.Bin _ | Ast.Not _ -> None

let rec translate ~object_var (e : Ast.expr) =
  match e with
  | Ast.Int_lit 0 -> Some Pfsm.Predicate.False
  | Ast.Int_lit _ -> Some Pfsm.Predicate.True
  | Ast.Not inner -> (
      match translate ~object_var inner with
      | Some p -> Some (Pfsm.Predicate.Not p)
      | None -> None)
  | Ast.Bin (Ast.And, a, b) -> connective ~object_var a b (fun p q -> Pfsm.Predicate.And (p, q))
  | Ast.Bin (Ast.Or, a, b) -> connective ~object_var a b (fun p q -> Pfsm.Predicate.Or (p, q))
  | Ast.Bin (op, a, b) -> (
      match cmp_of op, translate_term ~object_var a, translate_term ~object_var b with
      | Some cmp, Some ta, Some tb -> Some (Pfsm.Predicate.Cmp (cmp, ta, tb))
      | _, _, _ -> None)
  | Ast.Str_lit _ | Ast.Var _ | Ast.Atoi _ | Ast.Strlen _ -> None

and connective ~object_var a b build =
  match translate ~object_var a, translate ~object_var b with
  | Some p, Some q -> Some (build p q)
  | _, _ -> None

let impl_predicate_at ~object_var site =
  match translate ~object_var site.guard with
  | Some p -> Some (Pfsm.Simplify.simplify p)
  | None -> None

let impl_predicate f ~object_var =
  match dangerous_sites f with
  | [] -> None
  | site :: _ -> impl_predicate_at ~object_var site

let site_relevant ~object_var site = mentions object_var site.operand

let weakest_predicate f ~object_var =
  match List.filter (site_relevant ~object_var) (dangerous_sites f) with
  | [] -> None
  | sites ->
      let preds = List.map (impl_predicate_at ~object_var) sites in
      if List.exists Option.is_none preds then None
      else
        Some
          (Pfsm.Simplify.simplify
             (Pfsm.Predicate.disj (List.filter_map Fun.id preds)))

let pfsm_of ~name ~kind ~activity ~spec ~object_var f =
  match impl_predicate f ~object_var with
  | Some impl -> Pfsm.Primitive.make ~name ~kind ~activity ~spec ~impl
  | None ->
      invalid_arg
        (Printf.sprintf "Extract.pfsm_of: no extractable guard in %s" f.Ast.name)
