open Ast

(* ---- Sendmail tTflag ---------------------------------------------- *)

let tTvect_size = 101

let tTflag_arrays = [ ("tTvect", tTvect_size) ]

let tTflag_body ~check =
  [ Decl_int ("x", Atoi (Var "str_x"));
    Decl_int ("i", Atoi (Var "str_i"));
    If (check, [ Reject "debug level out of range" ], []);
    Array_store ("tTvect", Var "x", Var "i");
    Return (Int_lit 0) ]

let tTflag_vulnerable =
  { name = "tTflag";
    params = [ Str_param "str_x"; Str_param "str_i" ];
    body = tTflag_body ~check:(Bin (Gt, Var "x", Int_lit 100)) }

let tTflag_fixed =
  { name = "tTflag_fixed";
    params = [ Str_param "str_x"; Str_param "str_i" ];
    body =
      tTflag_body
        ~check:
          (Bin (Or, Bin (Lt, Var "x", Int_lit 0), Bin (Gt, Var "x", Int_lit 100))) }

let tTflag_spec = Pfsm.Predicate.between Pfsm.Predicate.Self ~low:0 ~high:100

let tTflag_object = "x"

let run_tTflag f ~str_x ~str_i =
  Interp.run ~arrays:tTflag_arrays f
    ~args:[ Interp.Vstr str_x; Interp.Vstr str_i ]

(* ---- GHTTPD Log ---------------------------------------------------- *)

let log_buffer_size = 200

let log_body ~checks =
  checks
  @ [ Decl_buf ("buf", log_buffer_size);
      Strcpy ("buf", Var "request");
      Return (Int_lit 0) ]

let log_vulnerable =
  { name = "Log"; params = [ Str_param "request" ]; body = log_body ~checks:[] }

let log_fixed =
  { name = "Log_fixed";
    params = [ Str_param "request" ];
    body =
      log_body
        ~checks:
          [ If
              ( Bin (Gt, Strlen (Var "request"), Int_lit (log_buffer_size - 1)),
                [ Reject "request too long" ],
                [] ) ] }

let log_off_by_one =
  { name = "Log_off_by_one";
    params = [ Str_param "request" ];
    body =
      log_body
        ~checks:
          [ If
              ( Bin (Gt, Strlen (Var "request"), Int_lit log_buffer_size),
                [ Reject "request too long" ],
                [] ) ] }

let log_spec =
  Pfsm.Predicate.Cmp
    (Pfsm.Predicate.Le, Pfsm.Predicate.Length Pfsm.Predicate.Self,
     Pfsm.Predicate.Lit (Pfsm.Value.Int (log_buffer_size - 1)))

let log_object = "request"

let run_log f ~request = Interp.run f ~args:[ Interp.Vstr request ]

(* ---- NULL HTTPD ReadPOSTData --------------------------------------- *)

let read_post_data_body ~fixed =
  let rc_full = Bin (Eq, Var "rc", Int_lit 1024) in
  let more_declared = Bin (Lt, Var "x", Var "contentLen") in
  let continue_cond =
    if fixed then Bin (And, rc_full, more_declared)
    else Bin (Or, rc_full, more_declared)
  in
  [ Decl_buf_dyn ("PostData", Bin (Add, Var "contentLen", Int_lit 1024));
    Decl_int ("x", Int_lit 0);
    Decl_int ("rc", Int_lit 0);
    Do_while
      ( [ Recv_into ("rc", "PostData", Var "x", Int_lit 1024);
          Assign ("x", Bin (Add, Var "x", Var "rc")) ],
        continue_cond );
    Return (Var "x") ]

let read_post_data_buggy =
  { name = "ReadPOSTData";
    params = [ Int_param "contentLen" ];
    body = read_post_data_body ~fixed:false }

let read_post_data_fixed =
  { name = "ReadPOSTData_fixed";
    params = [ Int_param "contentLen" ];
    body = read_post_data_body ~fixed:true }

let run_read_post_data f ~content_len ~body =
  Interp.run ~socket:body f ~args:[ Interp.Vint content_len ]

let all =
  [ ("tTflag (vulnerable)", tTflag_vulnerable);
    ("tTflag (fixed)", tTflag_fixed);
    ("Log (vulnerable)", log_vulnerable);
    ("Log (fixed)", log_fixed);
    ("Log (off-by-one fix)", log_off_by_one);
    ("ReadPOSTData (|| loop, #6255)", read_post_data_buggy);
    ("ReadPOSTData (&& fix)", read_post_data_fixed) ]
