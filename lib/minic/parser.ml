type error = { line : int; message : string }

(* ---- lexer -------------------------------------------------------- *)

type token =
  | KW of string           (* int, char, const, if, else, while, return,
                              strcpy, strncpy, atoi, strlen *)
  | IDENT of string
  | INT of int
  | STRING of string
  | REJECT_COMMENT of string
  | SYM of string          (* punctuation and operators *)
  | EOF

exception Error_at of error

let fail line message = raise (Error_at { line; message })

let keywords =
  [ "int"; "char"; "const"; "if"; "else"; "while"; "do"; "return"; "strcpy";
    "strncpy"; "atoi"; "strlen"; "recv" ]

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let emit tok = tokens := (!line, tok) :: !tokens in
  let rec go i =
    if i >= n then emit EOF
    else
      match input.[i] with
      | '\n' -> incr line; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && input.[i + 1] = '*' ->
          (* comment: capture "reject: ..." bodies, skip the rest *)
          let rec close j =
            if j + 1 >= n then fail !line "unterminated comment"
            else if input.[j] = '*' && input.[j + 1] = '/' then j + 2
            else begin
              if input.[j] = '\n' then incr line;
              close (j + 1)
            end
          in
          let stop = close (i + 2) in
          let body = String.trim (String.sub input (i + 2) (stop - i - 4)) in
          let prefix = "reject:" in
          if String.length body >= String.length prefix
             && String.sub body 0 (String.length prefix) = prefix
          then
            emit
              (REJECT_COMMENT
                 (String.trim
                    (String.sub body (String.length prefix)
                       (String.length body - String.length prefix))));
          go stop
      | '/' when i + 1 < n && input.[i + 1] = '/' ->
          let rec eol j = if j < n && input.[j] <> '\n' then eol (j + 1) else j in
          go (eol i)
      | '"' ->
          let b = Buffer.create 16 in
          let rec str j =
            if j >= n then fail !line "unterminated string"
            else
              match input.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  (match input.[j + 1] with
                   | 'n' -> Buffer.add_char b '\n'
                   | 't' -> Buffer.add_char b '\t'
                   | c -> Buffer.add_char b c);
                  str (j + 2)
              | c ->
                  Buffer.add_char b c;
                  str (j + 1)
          in
          let stop = str (i + 1) in
          emit (STRING (Buffer.contents b));
          go stop
      | '0' .. '9' ->
          let rec digits j acc =
            if j < n && input.[j] >= '0' && input.[j] <= '9' then
              digits (j + 1) ((acc * 10) + Char.code input.[j] - 48)
            else (j, acc)
          in
          let stop, v = digits i 0 in
          emit (INT v);
          go stop
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
          let rec ident j =
            if j < n then
              match input.[j] with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ident (j + 1)
              | _ -> j
            else j
          in
          let stop = ident i in
          let word = String.sub input i (stop - i) in
          emit (if List.mem word keywords then KW word else IDENT word);
          go stop
      | _ ->
          let two = if i + 1 < n then String.sub input i 2 else "" in
          if List.mem two [ "&&"; "||"; "<="; ">="; "=="; "!=" ] then begin
            emit (SYM two);
            go (i + 2)
          end
          else begin
            let one = String.make 1 input.[i] in
            if String.contains "(){}[];,=<>!+-*" input.[i] then begin
              emit (SYM one);
              go (i + 1)
            end
            else fail !line (Printf.sprintf "unexpected character %c" input.[i])
          end
  in
  go 0;
  List.rev !tokens

(* ---- parser ------------------------------------------------------- *)

type stream = { mutable toks : (int * token) list }

let peek s = match s.toks with [] -> (0, EOF) | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let fail_tok s message =
  let line, _ = peek s in
  fail line message

let expect_sym s sym =
  match peek s with
  | _, SYM x when x = sym -> advance s
  | _ -> fail_tok s (Printf.sprintf "expected '%s'" sym)

let expect_kw s kw =
  match peek s with
  | _, KW x when x = kw -> advance s
  | _ -> fail_tok s (Printf.sprintf "expected '%s'" kw)

let ident s =
  match peek s with
  | _, IDENT x -> advance s; x
  | _ -> fail_tok s "expected an identifier"

(* expressions, precedence climbing *)
let rec parse_expr s = parse_or s

and parse_or s =
  let lhs = parse_and s in
  match peek s with
  | _, SYM "||" ->
      advance s;
      Ast.Bin (Ast.Or, lhs, parse_or s)
  | _ -> lhs

and parse_and s =
  let lhs = parse_cmp s in
  match peek s with
  | _, SYM "&&" ->
      advance s;
      Ast.Bin (Ast.And, lhs, parse_and s)
  | _ -> lhs

and parse_cmp s =
  let lhs = parse_add s in
  let op sym = function
    | "<" -> Ast.Lt | "<=" -> Ast.Le | ">" -> Ast.Gt | ">=" -> Ast.Ge
    | "==" -> Ast.Eq | "!=" -> Ast.Ne
    | _ -> fail_tok s ("bad comparison " ^ sym)
  in
  match peek s with
  | _, SYM (("<" | "<=" | ">" | ">=" | "==" | "!=") as sym) ->
      advance s;
      Ast.Bin (op sym sym, lhs, parse_add s)
  | _ -> lhs

and parse_add s =
  let rec loop lhs =
    match peek s with
    | _, SYM "+" ->
        advance s;
        loop (Ast.Bin (Ast.Add, lhs, parse_mul s))
    | _, SYM "-" ->
        advance s;
        loop (Ast.Bin (Ast.Sub, lhs, parse_mul s))
    | _ -> lhs
  in
  loop (parse_mul s)

and parse_mul s =
  let rec loop lhs =
    match peek s with
    | _, SYM "*" ->
        advance s;
        loop (Ast.Bin (Ast.Mul, lhs, parse_unary s))
    | _ -> lhs
  in
  loop (parse_unary s)

and parse_unary s =
  match peek s with
  | _, SYM "!" ->
      advance s;
      Ast.Not (parse_unary s)
  | _, SYM "-" ->
      advance s;
      (match peek s with
       | _, INT v ->
           advance s;
           Ast.Int_lit (-v)
       | _ -> Ast.Bin (Ast.Sub, Ast.Int_lit 0, parse_unary s))
  | _ -> parse_primary s

and parse_primary s =
  match peek s with
  | _, INT v -> advance s; Ast.Int_lit v
  | _, STRING str -> advance s; Ast.Str_lit str
  | _, KW "atoi" ->
      advance s;
      expect_sym s "(";
      let e = parse_expr s in
      expect_sym s ")";
      Ast.Atoi e
  | _, KW "strlen" ->
      advance s;
      expect_sym s "(";
      let e = parse_expr s in
      expect_sym s ")";
      Ast.Strlen e
  | _, IDENT v -> advance s; Ast.Var v
  | _, SYM "(" ->
      advance s;
      let e = parse_expr s in
      expect_sym s ")";
      e
  | _ -> fail_tok s "expected an expression"

(* statements *)
let rec parse_block s =
  expect_sym s "{";
  let rec stmts acc =
    match peek s with
    | _, SYM "}" ->
        advance s;
        List.rev acc
    | _ -> stmts (parse_stmt s :: acc)
  in
  stmts []

and parse_stmt s =
  match peek s with
  | _, KW "int" ->
      advance s;
      let v = ident s in
      expect_sym s "=";
      let e = parse_expr s in
      expect_sym s ";";
      Ast.Decl_int (v, e)
  | _, KW "char" ->
      advance s;
      let v = ident s in
      expect_sym s "[";
      let size = parse_expr s in
      expect_sym s "]";
      expect_sym s ";";
      (match size with
       | Ast.Int_lit n -> Ast.Decl_buf (v, n)
       | e -> Ast.Decl_buf_dyn (v, e))
  | _, KW "strcpy" ->
      advance s;
      expect_sym s "(";
      let buf = ident s in
      expect_sym s ",";
      let e = parse_expr s in
      expect_sym s ")";
      expect_sym s ";";
      Ast.Strcpy (buf, e)
  | _, KW "strncpy" ->
      advance s;
      expect_sym s "(";
      let buf = ident s in
      expect_sym s ",";
      let e = parse_expr s in
      expect_sym s ",";
      let bound = parse_expr s in
      expect_sym s ")";
      expect_sym s ";";
      Ast.Strncpy (buf, e, bound)
  | _, KW "if" ->
      advance s;
      let cond = parse_expr s in
      let then_ = parse_block s in
      let else_ =
        match peek s with
        | _, KW "else" ->
            advance s;
            parse_block s
        | _ -> []
      in
      Ast.If (cond, then_, else_)
  | _, KW "while" ->
      advance s;
      let cond = parse_expr s in
      let body = parse_block s in
      Ast.While (cond, body)
  | _, KW "do" ->
      advance s;
      let body = parse_block s in
      expect_kw s "while";
      let cond = parse_expr s in
      expect_sym s ";";
      Ast.Do_while (body, cond)
  | _, KW "return" ->
      advance s;
      let e = parse_expr s in
      expect_sym s ";";
      (match e with
       | Ast.Int_lit (-1) -> (
           match peek s with
           | _, REJECT_COMMENT reason ->
               advance s;
               Ast.Reject reason
           | _ -> Ast.Reject "rejected")
       | _ -> Ast.Return e)
  | _, IDENT v -> (
      advance s;
      match peek s with
      | _, SYM "=" -> (
          advance s;
          match peek s with
          | _, KW "recv" ->
              advance s;
              expect_sym s "(";
              let sock = ident s in
              if sock <> "sock" then fail_tok s "recv reads from 'sock'";
              expect_sym s ",";
              let buf = ident s in
              expect_sym s "+";
              let off = parse_expr s in
              expect_sym s ",";
              let maxlen = parse_expr s in
              expect_sym s ")";
              expect_sym s ";";
              Ast.Recv_into (v, buf, off, maxlen)
          | _ ->
              let e = parse_expr s in
              expect_sym s ";";
              Ast.Assign (v, e))
      | _, SYM "[" ->
          advance s;
          let idx = parse_expr s in
          expect_sym s "]";
          expect_sym s "=";
          let value = parse_expr s in
          expect_sym s ";";
          Ast.Array_store (v, idx, value)
      | _ -> fail_tok s "expected '=' or '[' after identifier")
  | _ -> fail_tok s "expected a statement"

and parse_param s =
  match peek s with
  | _, KW "int" ->
      advance s;
      Ast.Int_param (ident s)
  | _, KW ("const" | "char") ->
      (match peek s with _, KW "const" -> advance s | _ -> ());
      expect_kw s "char";
      expect_sym s "*";
      Ast.Str_param (ident s)
  | _ -> fail_tok s "expected a parameter"

let parse_func s =
  expect_kw s "int";
  let name = ident s in
  expect_sym s "(";
  let params =
    match peek s with
    | _, SYM ")" -> []
    | _ ->
        let rec more acc =
          match peek s with
          | _, SYM "," ->
              advance s;
              more (parse_param s :: acc)
          | _ -> List.rev acc
        in
        more [ parse_param s ]
  in
  expect_sym s ")";
  let body = parse_block s in
  { Ast.name; params; body }

let run f input =
  match lex input with
  | exception Error_at e -> Error e
  | toks -> (
      let s = { toks } in
      match f s with
      | result -> Ok result
      | exception Error_at e -> Error e)

let func input =
  run
    (fun s ->
       let f = parse_func s in
       match peek s with
       | _, EOF -> f
       | line, _ -> fail line "trailing input after function")
    input

let func_exn input =
  match func input with
  | Ok f -> f
  | Error { line; message } ->
      invalid_arg (Printf.sprintf "Minic.Parser: line %d: %s" line message)

let program input =
  run
    (fun s ->
       let rec funcs acc =
         match peek s with
         | _, EOF -> List.rev acc
         | _ -> funcs (parse_func s :: acc)
       in
       funcs [])
    input

let roundtrips f =
  match func (Ast.func_to_string f) with
  | Ok g -> Ast.func_to_string g = Ast.func_to_string f
  | Error _ -> false