(** A miniature C subset — just enough to write the paper's vulnerable
    functions as {e code} rather than hand-built models, so that the
    implementation predicate can be {e extracted} from the source
    (the automatic-tool direction of the paper's conclusion).

    Values are integers and strings; storage is integer globals,
    global [int] arrays, and fixed-size [char] stack buffers. *)

type binop =
  | Add | Sub | Mul
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type expr =
  | Int_lit of int
  | Str_lit of string
  | Var of string               (** integer variable or string parameter *)
  | Bin of binop * expr * expr
  | Not of expr
  | Atoi of expr                (** C atoi: 32-bit wrap *)
  | Strlen of expr

type stmt =
  | Decl_int of string * expr
  | Decl_buf of string * int    (** [char name\[n\]] on the stack *)
  | Decl_buf_dyn of string * expr
      (** [char name\[e\]] — size computed at function entry from the
          parameters (models calloc/alloca-sized buffers) *)
  | Assign of string * expr
  | Array_store of string * expr * expr
      (** [name\[idx\] = v] into a global int array *)
  | Strcpy of string * expr     (** [strcpy(buf, e)] — unbounded! *)
  | Strncpy of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
      (** C's [do {...} while (cond);] — the ReadPOSTData loop shape *)
  | Recv_into of string * string * expr * expr
      (** [rc = recv(sock, buf + off, max)]: read up to [max] bytes
          from the implicit socket into [buf + off]; the count lands
          in the first variable.  The copy is bounded by [max], never
          by the buffer — exactly like the real call. *)
  | Reject of string            (** early error return — the check firing *)
  | Return of expr

type param = Int_param of string | Str_param of string

type func = {
  name : string;
  params : param list;
  body : stmt list;
}

val pp_expr : Format.formatter -> expr -> unit

val pp_stmt : indent:int -> Format.formatter -> stmt -> unit

val pp_func : Format.formatter -> func -> unit
(** Renders as C-ish source. *)

val func_to_string : func -> string
