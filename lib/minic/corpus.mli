(** The showcase sources: the paper's vulnerable functions written in
    mini-C, in vulnerable and fixed variants, with the specification
    predicates an analyst would state for them.

    These close the loop of the paper's conclusion: the
    implementation predicate is {e extracted} from this code
    ({!Extract}), checked against the spec ({!Pfsm.Verify}), and the
    prediction validated against actual execution ({!Interp}). *)

(** {2 Sendmail's tTflag (Figure 3)} *)

val tTvect_size : int
(** 101 elements (valid indices 0..100). *)

val tTflag_arrays : (string * int) list

val tTflag_vulnerable : Ast.func
(** Checks only [x > 100] — the real bug. *)

val tTflag_fixed : Ast.func
(** Checks [x < 0 || x > 100]. *)

val tTflag_spec : Pfsm.Predicate.t
(** [0 <= x <= 100], over the converted integer. *)

val tTflag_object : string
(** ["x"]. *)

val run_tTflag : Ast.func -> str_x:string -> str_i:string -> Interp.outcome

(** {2 GHTTPD's Log (Bugtraq #5960)} *)

val log_buffer_size : int

val log_vulnerable : Ast.func
(** Unbounded [strcpy] into [char buf\[200\]]. *)

val log_fixed : Ast.func
(** Rejects requests longer than 199 bytes (the terminator needs its
    byte too — the off-by-one the original "fix" proposals missed). *)

val log_off_by_one : Ast.func
(** The tempting wrong fix: rejects only [> 200], so a 200-byte
    request still clobbers one byte past the buffer. *)

val log_spec : Pfsm.Predicate.t
(** [length(request) <= 199]. *)

val log_object : string
(** ["request"]. *)

val run_log : Ast.func -> request:string -> Interp.outcome

(** {2 NULL HTTPD's ReadPOSTData (Figure 4b, Bugtraq #6255)} *)

val read_post_data_buggy : Ast.func
(** The shipped loop: [while ((rc == 1024) || (x < contentLen))].
    Note that static guard extraction reports the recv site as
    {e unguarded} in both variants — first-iteration path conditions
    cannot see the loop operator.  Distinguishing [||] from [&&]
    needs the dynamic differential ({!Interp} + the spec), exactly
    the combination that found #6255. *)

val read_post_data_fixed : Ast.func
(** The [&&] correction. *)

val run_read_post_data :
  Ast.func -> content_len:int -> body:string -> Interp.outcome

(** {2 The whole corpus} *)

val all : (string * Ast.func) list
