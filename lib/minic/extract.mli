(** Extracting implementation predicates from source code.

    The paper derives each pFSM's implementation predicate by reading
    the application's code; this module mechanises that reading for
    mini-C: the {e path condition} guarding the first dangerous
    operation (an array store or a string copy) {e is} the
    implementation's accept-predicate for the object involved.

    With the specification supplied by the analyst, the extracted
    predicate completes a pFSM automatically — and {!Pfsm.Verify} can
    then certify or refute it.  This is the conclusion's "automatic
    tool for the vulnerability analysis", for the subset of C the
    corpus covers. *)

type danger =
  | Store_to of string   (** [Array_store] into this global array *)
  | Copy_to of string    (** [Strcpy]/[Strncpy] into this stack buffer *)

type site = {
  danger : danger;
  guard : Ast.expr;
      (** conjunction of branch conditions dominating the operation *)
  operand : Ast.expr;
      (** the expression under check: the store's index, or the
          copy's source (the recv's offset) — what relates a site to
          an object variable *)
}

val dangerous_sites : Ast.func -> site list
(** Every dangerous operation with its path condition, in program
    order.  Branches that unconditionally exit ([Reject]/[Return])
    contribute their negated condition to the code after them — the
    C guard idiom [if (bad) return -1;].  A conjunct only survives
    while the variables it mentions are unwritten: an assignment
    between check and use drops it (check-then-clobber), and guards
    entering a loop body are pre-filtered by the variables the body
    assigns, since from the second iteration on they are stale. *)

val translate : object_var:string -> Ast.expr -> Pfsm.Predicate.t option
(** Render a guard as a predicate over [Self] (the named variable's
    value); [None] when the expression leaves the supported fragment
    (comparisons, boolean connectives, [strlen] of the object,
    integer literals). *)

val impl_predicate_at : object_var:string -> site -> Pfsm.Predicate.t option
(** The site's path condition, translated and simplified. *)

val impl_predicate : Ast.func -> object_var:string -> Pfsm.Predicate.t option
(** The path condition of the {e first} dangerous site, translated
    and simplified — the implementation predicate of the activity. *)

val site_relevant : object_var:string -> site -> bool
(** Whether the site's operand mentions the object variable. *)

val weakest_predicate : Ast.func -> object_var:string -> Pfsm.Predicate.t option
(** The per-function implementation predicate across {e all} sites
    relevant to [object_var]: the disjunction of their path
    conditions — the weakest condition under which some relevant
    dangerous operation runs.  [None] when no relevant site exists or
    any relevant guard leaves the translatable fragment. *)

val pfsm_of :
  name:string ->
  kind:Pfsm.Taxonomy.kind ->
  activity:string ->
  spec:Pfsm.Predicate.t ->
  object_var:string ->
  Ast.func ->
  Pfsm.Primitive.t
(** Assemble a pFSM whose impl is extracted from the code.  Raises
    [Invalid_argument] when the function has no dangerous site or the
    guard cannot be translated. *)
