(** Parsing mini-C source text.

    Accepts the C-ish concrete syntax {!Ast.pp_func} prints (comments
    are skipped), so vulnerable functions can be fed to the extractor
    as source files — [dfsm extract].  [return -1;] parses as
    {!Ast.Reject} (the reject idiom); any other [return] as
    {!Ast.Return}. *)

type error = { line : int; message : string }

val func : string -> (Ast.func, error) result
(** Parse a single function definition. *)

val func_exn : string -> Ast.func

val program : string -> (Ast.func list, error) result
(** Parse a sequence of function definitions. *)

val roundtrips : Ast.func -> bool
(** [func (func_to_string f)] succeeds and renders back identically
    (reject reasons normalise to the comment text). *)
