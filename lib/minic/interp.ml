type value = Vint of int | Vstr of string

type violation =
  | Array_oob of { array : string; index : int }
  | Buffer_overflow of { buffer : string; wrote : int; capacity : int }
  | Machine_fault of Machine.Addr.t

type outcome =
  | Returned of int
  | Rejected of string
  | Memory_violation of violation
  | Diverged

let loop_bound = 100_000

exception Stop of outcome

type state = {
  proc : Machine.Process.t;
  vars : (string, value) Hashtbl.t;
  arrays : (string * (Machine.Addr.t * int)) list;   (* base, element count *)
  buffers : (string, Machine.Addr.t * int) Hashtbl.t; (* addr, capacity *)
  socket : Osmodel.Socket.t;
}

let truthy n = n <> 0

let as_int = function
  | Vint n -> n
  | Vstr _ -> raise (Stop (Rejected "type error: expected int"))

let as_str = function
  | Vstr s -> s
  | Vint _ -> raise (Stop (Rejected "type error: expected string"))

let lookup st v =
  match Hashtbl.find_opt st.vars v with
  | Some value -> value
  | None -> raise (Stop (Rejected ("unbound variable " ^ v)))

let rec eval st (e : Ast.expr) : value =
  match e with
  | Ast.Int_lit n -> Vint n
  | Ast.Str_lit s -> Vstr s
  | Ast.Var v -> (
      match Hashtbl.find_opt st.buffers v with
      | Some (addr, _) ->
          (* a buffer in expression position reads as its C string *)
          Vstr (Machine.Memory.read_cstring (Machine.Process.mem st.proc) addr)
      | None -> lookup st v)
  | Ast.Bin (op, a, b) -> eval_bin st op a b
  | Ast.Not e -> Vint (if truthy (as_int (eval st e)) then 0 else 1)
  | Ast.Atoi e -> Vint (Pfsm.Strcodec.atoi32 (as_str (eval st e)))
  | Ast.Strlen e -> Vint (String.length (as_str (eval st e)))

and eval_bin st op a b =
  (* One exhaustive match, each constructor with its own arm: the
     short-circuit ops never reach the strict-evaluation helpers, by
     construction rather than by an [assert false] that adversarial
     Progen ASTs could in principle reach. *)
  let num f =
    let x = as_int (eval st a) and y = as_int (eval st b) in
    Vint (Pfsm.Strcodec.wrap32 (f x y))
  in
  let cmp f =
    let x = as_int (eval st a) and y = as_int (eval st b) in
    Vint (if f x y then 1 else 0)
  in
  match op with
  | Ast.And -> Vint (if truthy (as_int (eval st a)) && truthy (as_int (eval st b)) then 1 else 0)
  | Ast.Or -> Vint (if truthy (as_int (eval st a)) || truthy (as_int (eval st b)) then 1 else 0)
  | Ast.Add -> num ( + )
  | Ast.Sub -> num ( - )
  | Ast.Mul -> num ( * )
  | Ast.Lt -> cmp ( < )
  | Ast.Le -> cmp ( <= )
  | Ast.Gt -> cmp ( > )
  | Ast.Ge -> cmp ( >= )
  | Ast.Eq -> cmp ( = )
  | Ast.Ne -> cmp ( <> )

let copy_into_buffer st buffer data =
  match Hashtbl.find_opt st.buffers buffer with
  | None -> raise (Stop (Rejected ("no such buffer " ^ buffer)))
  | Some (addr, capacity) -> (
      match Machine.Cstring.strcpy (Machine.Process.mem st.proc) ~dst:addr data with
      | () ->
          if String.length data + 1 > capacity then
            raise
              (Stop
                 (Memory_violation
                    (Buffer_overflow
                       { buffer; wrote = String.length data + 1; capacity })))
      | exception Machine.Memory.Fault { addr; _ } ->
          raise (Stop (Memory_violation (Machine_fault addr))))

let rec exec st (stmt : Ast.stmt) =
  match stmt with
  | Ast.Decl_int (v, e) | Ast.Assign (v, e) -> Hashtbl.replace st.vars v (eval st e)
  | Ast.Decl_buf (_, _) | Ast.Decl_buf_dyn (_, _) ->
      ()   (* allocated up front, like C stack slots *)
  | Ast.Recv_into (rc_var, buffer, off_e, max_e) -> (
      match Hashtbl.find_opt st.buffers buffer with
      | None -> raise (Stop (Rejected ("no such buffer " ^ buffer)))
      | Some (addr, capacity) -> (
          let off = as_int (eval st off_e) in
          let maxlen = as_int (eval st max_e) in
          let chunk = Osmodel.Socket.recv st.socket maxlen in
          let rc = String.length chunk in
          match
            Machine.Memory.write_string (Machine.Process.mem st.proc) (addr + off) chunk
          with
          | () ->
              Hashtbl.replace st.vars rc_var (Vint rc);
              if rc > 0 && off + rc > capacity then
                raise
                  (Stop
                     (Memory_violation
                        (Buffer_overflow
                           { buffer; wrote = off + rc; capacity })))
          | exception Machine.Memory.Fault { addr; _ } ->
              raise (Stop (Memory_violation (Machine_fault addr)))))
  | Ast.Array_store (array, idx_e, v_e) -> (
      match List.assoc_opt array st.arrays with
      | None -> raise (Stop (Rejected ("no such array " ^ array)))
      | Some (base, count) -> (
          let idx = as_int (eval st idx_e) in
          let v = as_int (eval st v_e) in
          let addr = base + (4 * idx) in
          match Machine.Memory.write_i32 (Machine.Process.mem st.proc) addr v with
          | () ->
              if idx < 0 || idx >= count then
                raise (Stop (Memory_violation (Array_oob { array; index = idx })))
          | exception Machine.Memory.Fault { addr; _ } ->
              raise (Stop (Memory_violation (Machine_fault addr)))))
  | Ast.Strcpy (buffer, e) -> copy_into_buffer st buffer (as_str (eval st e))
  | Ast.Strncpy (buffer, e, bound_e) ->
      let s = as_str (eval st e) in
      let bound = as_int (eval st bound_e) in
      let copy = if bound < 0 then s else String.sub s 0 (min bound (String.length s)) in
      copy_into_buffer st buffer copy
  | Ast.If (cond, then_, else_) ->
      if truthy (as_int (eval st cond)) then List.iter (exec st) then_
      else List.iter (exec st) else_
  | Ast.While (cond, body) ->
      let iterations = ref 0 in
      while truthy (as_int (eval st cond)) do
        incr iterations;
        if !iterations > loop_bound then raise (Stop Diverged);
        List.iter (exec st) body
      done
  | Ast.Do_while (body, cond) ->
      let iterations = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        incr iterations;
        if !iterations > loop_bound then raise (Stop Diverged);
        List.iter (exec st) body;
        continue_ := truthy (as_int (eval st cond))
      done
  | Ast.Reject reason -> raise (Stop (Rejected reason))
  | Ast.Return e -> raise (Stop (Returned (as_int (eval st e))))

(* Gather every buffer declaration (C reserves stack slots at function
   entry regardless of where the declaration appears). *)
let rec buffer_decls ~size_of stmts =
  List.concat_map
    (fun (stmt : Ast.stmt) ->
       match stmt with
       | Ast.Decl_buf (name, n) -> [ (name, n) ]
       | Ast.Decl_buf_dyn (name, e) -> [ (name, max 0 (size_of e)) ]
       | Ast.If (_, a, b) -> buffer_decls ~size_of a @ buffer_decls ~size_of b
       | Ast.While (_, body) | Ast.Do_while (body, _) -> buffer_decls ~size_of body
       | Ast.Decl_int _ | Ast.Assign _ | Ast.Array_store _ | Ast.Strcpy _
       | Ast.Strncpy _ | Ast.Recv_into _ | Ast.Reject _ | Ast.Return _ -> [])
    stmts

let run ?(arrays = []) ?(socket = "") (f : Ast.func) ~args =
  let proc = Machine.Process.create () in
  Machine.Process.register_function proc "caller";
  let array_layout =
    List.map
      (fun (name, count) -> (name, (Machine.Process.alloc_global proc name (4 * count), count)))
      arrays
  in
  let stack = Machine.Process.stack proc in
  let param_env = Hashtbl.create 8 in
  (try
     List.iter2
       (fun param arg ->
          match param with
          | Ast.Int_param p | Ast.Str_param p -> Hashtbl.replace param_env p arg)
       f.Ast.params args
   with Invalid_argument _ -> ());
  let size_of e =
    let probe =
      { proc; vars = param_env; arrays = []; buffers = Hashtbl.create 1;
        socket = Osmodel.Socket.of_string "" }
    in
    match eval probe e with
    | Vint n -> n
    | Vstr _ -> 0
    | exception Stop _ -> 0
  in
  let bufs = buffer_decls ~size_of f.Ast.body in
  Machine.Stack.push_frame stack ~func:f.Ast.name
    ~ret_addr:(Machine.Process.code_addr proc "caller")
    ~locals:(List.map (fun (name, n) -> (name, n)) bufs);
  let buffers = Hashtbl.create 4 in
  List.iter
    (fun (name, n) -> Hashtbl.replace buffers name (Machine.Stack.local_addr stack name, n))
    bufs;
  let vars = Hashtbl.create 8 in
  (try
     List.iter2
       (fun param arg ->
          match param, arg with
          | Ast.Int_param p, Vint _ -> Hashtbl.replace vars p arg
          | Ast.Str_param p, Vstr _ -> Hashtbl.replace vars p arg
          | Ast.Int_param p, _ | Ast.Str_param p, _ ->
              invalid_arg ("Interp.run: argument type mismatch for " ^ p))
       f.Ast.params args
   with Invalid_argument _ ->
     invalid_arg "Interp.run: wrong number or types of arguments");
  let st =
    { proc; vars; arrays = array_layout; buffers;
      socket = Osmodel.Socket.of_string socket }
  in
  match List.iter (exec st) f.Ast.body with
  | () -> Returned 0
  | exception Stop outcome -> outcome

let pp_outcome ppf = function
  | Returned n -> Format.fprintf ppf "returned %d" n
  | Rejected reason -> Format.fprintf ppf "rejected: %s" reason
  | Memory_violation (Array_oob { array; index }) ->
      Format.fprintf ppf "MEMORY VIOLATION: %s[%d] is out of bounds" array index
  | Memory_violation (Buffer_overflow { buffer; wrote; capacity }) ->
      Format.fprintf ppf "MEMORY VIOLATION: wrote %d bytes into %s[%d]" wrote buffer
        capacity
  | Memory_violation (Machine_fault addr) ->
      Format.fprintf ppf "MEMORY VIOLATION: fault at 0x%08x" addr
  | Diverged -> Format.fprintf ppf "diverged (loop bound exceeded)"
