type binop =
  | Add | Sub | Mul
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type expr =
  | Int_lit of int
  | Str_lit of string
  | Var of string
  | Bin of binop * expr * expr
  | Not of expr
  | Atoi of expr
  | Strlen of expr

type stmt =
  | Decl_int of string * expr
  | Decl_buf of string * int
  | Decl_buf_dyn of string * expr
  | Assign of string * expr
  | Array_store of string * expr * expr
  | Strcpy of string * expr
  | Strncpy of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | Recv_into of string * string * expr * expr
  | Reject of string
  | Return of expr

type param = Int_param of string | Str_param of string

type func = {
  name : string;
  params : param list;
  body : stmt list;
}

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let rec pp_expr ppf = function
  | Int_lit n -> Format.pp_print_int ppf n
  | Str_lit s -> Format.fprintf ppf "%S" s
  | Var v -> Format.pp_print_string ppf v
  | Bin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Not e -> Format.fprintf ppf "!%a" pp_expr e
  | Atoi e -> Format.fprintf ppf "atoi(%a)" pp_expr e
  | Strlen e -> Format.fprintf ppf "strlen(%a)" pp_expr e

let rec pp_stmt ~indent ppf stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Decl_int (v, e) -> Format.fprintf ppf "%sint %s = %a;" pad v pp_expr e
  | Decl_buf (v, n) -> Format.fprintf ppf "%schar %s[%d];" pad v n
  | Decl_buf_dyn (v, e) -> Format.fprintf ppf "%schar %s[%a];" pad v pp_expr e
  | Recv_into (rc, buf, off, maxlen) ->
      Format.fprintf ppf "%s%s = recv(sock, %s + %a, %a);" pad rc buf pp_expr off
        pp_expr maxlen
  | Assign (v, e) -> Format.fprintf ppf "%s%s = %a;" pad v pp_expr e
  | Array_store (arr, idx, v) ->
      Format.fprintf ppf "%s%s[%a] = %a;" pad arr pp_expr idx pp_expr v
  | Strcpy (buf, e) -> Format.fprintf ppf "%sstrcpy(%s, %a);" pad buf pp_expr e
  | Strncpy (buf, e, bound) ->
      Format.fprintf ppf "%sstrncpy(%s, %a, %a);" pad buf pp_expr e pp_expr bound
  | If (cond, then_, else_) ->
      Format.fprintf ppf "%sif %a {" pad pp_expr cond;
      List.iter (fun s -> Format.fprintf ppf "@,%a" (pp_stmt ~indent:(indent + 2)) s) then_;
      (match else_ with
       | [] -> Format.fprintf ppf "@,%s}" pad
       | _ ->
           Format.fprintf ppf "@,%s} else {" pad;
           List.iter
             (fun s -> Format.fprintf ppf "@,%a" (pp_stmt ~indent:(indent + 2)) s)
             else_;
           Format.fprintf ppf "@,%s}" pad)
  | While (cond, body) ->
      Format.fprintf ppf "%swhile %a {" pad pp_expr cond;
      List.iter (fun s -> Format.fprintf ppf "@,%a" (pp_stmt ~indent:(indent + 2)) s) body;
      Format.fprintf ppf "@,%s}" pad
  | Do_while (body, cond) ->
      Format.fprintf ppf "%sdo {" pad;
      List.iter (fun s -> Format.fprintf ppf "@,%a" (pp_stmt ~indent:(indent + 2)) s) body;
      Format.fprintf ppf "@,%s} while %a;" pad pp_expr cond
  | Reject reason -> Format.fprintf ppf "%sreturn -1;  /* reject: %s */" pad reason
  | Return e -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e

let pp_func ppf f =
  let param_str = function
    | Int_param p -> "int " ^ p
    | Str_param p -> "const char *" ^ p
  in
  Format.fprintf ppf "@[<v>int %s(%s) {" f.name
    (String.concat ", " (List.map param_str f.params));
  List.iter (fun s -> Format.fprintf ppf "@,%a" (pp_stmt ~indent:2) s) f.body;
  Format.fprintf ppf "@,}@]"

let func_to_string f = Format.asprintf "%a" pp_func f
