(** Executing mini-C on the simulated machine.

    Buffers live in a real {!Machine.Stack} frame and arrays in the
    global data segment, so out-of-bounds stores and unbounded
    [strcpy]s hit actual simulated memory — the interpreter reports
    the {e first} violation, which is what the extracted predicates
    must predict. *)

type value = Vint of int | Vstr of string

type violation =
  | Array_oob of { array : string; index : int }
      (** an [Array_store] outside the array's bounds *)
  | Buffer_overflow of { buffer : string; wrote : int; capacity : int }
      (** a string copy past the buffer's end *)
  | Machine_fault of Machine.Addr.t

type outcome =
  | Returned of int
  | Rejected of string          (** a [Reject] statement fired *)
  | Memory_violation of violation
  | Diverged                    (** loop iteration bound exceeded *)

val loop_bound : int

val run :
  ?arrays:(string * int) list ->
  ?socket:string ->
  Ast.func ->
  args:value list ->
  outcome
(** Execute the function on a fresh process image.  [arrays] declares
    the global [int] arrays (name, element count) the body may store
    into; [socket] is the byte stream [Recv_into] consumes; [args]
    must match the parameter list. *)

val pp_outcome : Format.formatter -> outcome -> unit
