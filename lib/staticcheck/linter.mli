(** The linter front end: analyze a function, validate every raw
    finding, and render reports; plus the corpus sweep with its
    ground-truth expectations.

    The sweep is the linter's acceptance harness: every vulnerable
    corpus variant must be flagged with at least one {e confirmed}
    finding of the expected kind, and every fixed variant must come
    back with {e zero} findings — the symbolic bounds in {!Absval}
    exist precisely so the ReadPOSTData [&&] fix is provably clean
    while the [||] loop is caught. *)

type report = {
  func : Minic.Ast.func;
  findings : Finding.t list;
  nodes : int;               (** CFG size *)
  edges : int;
  back_edges : int;
  loop_iterations : int;
  widenings : int;
}

val lint : ?config:Absint.config -> Minic.Ast.func -> report

val lint_cached : config:Absint.config -> string -> Minic.Ast.func -> report
(** [lint] routed through the ambient persistent store (when one is
    installed) under the digest of [label x function x config]; a
    verified record short-circuits the analysis, anything unsound
    degrades to a fresh [lint] whose report is written back. *)

val lint_program : ?config:Absint.config -> Minic.Ast.func list -> report list

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string

(** Ground truth for one corpus entry. *)
type expectation =
  | Flagged of string list
      (** kind names ({!Finding.kind_name}) that must all appear,
          every finding confirmed *)
  | Clean

type sweep_row = {
  label : string;
  expected : expectation;
  report : report;
  ok : bool;
}

val corpus_config : Absint.config
(** {!Absint.default_config} plus the tTflag array registrations. *)

val corpus_sweep : unit -> sweep_row list
(** Lint every {!Minic.Corpus} variant against its expectation.
    Variants fan out over the {!Par} domain pool with ordered
    reduction — rows are byte-identical to the sequential sweep for
    any job count.  When an ambient {!Store.Handle} is installed, each
    variant's report is served from the store when a verified record
    exists (keyed on the digest of label x function x config) and
    written back otherwise, so a warm store makes a rerun recompute
    nothing; expectations are always re-evaluated live. *)

val supervised_sweep :
  ?config:Absint.config ->
  ?supervise:Resilience.Supervisor.config ->
  ?checkpoint:Resilience.Checkpoint.t ->
  ?stop_after:int ->
  ?parallel:bool ->
  unit ->
  sweep_row list * Resilience.Run_report.t
(** The corpus sweep as a supervised batch: one work item per variant
    (resource ["lint"]), each drawing its analysis arena from the
    simulated heap so allocation-fault plans hit the sweep itself.
    Returns the rows completed {e this} run — under [?checkpoint],
    variants a previous run finished are reported from the journal
    and not re-linted — plus the typed run report. *)

val sweep_ok : sweep_row list -> bool

val pp_sweep : Format.formatter -> sweep_row list -> unit

val sweep_to_json : sweep_row list -> string
