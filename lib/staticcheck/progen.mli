(** Deterministic seeded program generation for property tests.

    Two generators over {!Vulndb.Prng} streams (seeded with
    {!Discovery.Domain_gen} boundary integers in the literal pools),
    so qcheck shrinks over seeds and every failure replays
    bit-for-bit:

    - {!func}: arbitrary ASTs constrained only to render/reparse
      cleanly — the {!Minic.Parser.roundtrips} property.
    - {!vuln}: well-formed guard-then-sink programs (Log-, tTflag-
      and strncpy-shaped) with randomized constants, together with
      their array declarations and the ground truth of whether the
      chosen constants actually admit an overflow — the linter
      precision/soundness property. *)

val func : seed:int -> Minic.Ast.func
(** Roundtrip-safe random AST. *)

type vuln = {
  f : Minic.Ast.func;
  arrays : (string * int) list;
  vulnerable : bool;   (** ground truth from the chosen constants *)
}

val vuln : seed:int -> vuln
