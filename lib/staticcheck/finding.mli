(** Typed linter findings with interpreter-validated witnesses.

    A finding is born from an abstract fact (the checker's
    over-approximation says the bad state is reachable) and then put
    through the validation bridge: concrete candidate inputs are
    replayed in {!Minic.Interp}.  A reproducing run upgrades the
    finding to [Confirmed] and is carried as the witness; otherwise
    the finding stays [Unconfirmed] — reported, never silently kept,
    mirroring the fault layer's no-silent-truncation discipline. *)

type direction = Low | High

type kind =
  | Array_store_oob of { array : string; direction : direction }
      (** index can leave [\[0, count)] — [Low] is the Sendmail
          missing-lower-bound case *)
  | Atoi_wrap_index of { array : string }
      (** a 32-bit-wrapping [atoi] result reaches an index unchecked *)
  | Strcpy_unbounded of { buffer : string }
      (** no length check dominates the copy (GHTTPD [Log]) *)
  | Strcpy_off_by_one of { buffer : string }
      (** the check admits exactly the terminator overflow *)
  | Strcpy_overflow of { buffer : string }
      (** bounded but insufficient check *)
  | Strncpy_overflow of { buffer : string }
  | Recv_overflow of { buffer : string }
      (** [recv] can run past the buffer (NULL HTTPD [ReadPOSTData]) *)

type witness = {
  args : Minic.Interp.value list;
  socket : string;
  arrays : (string * int) list;
  outcome : Minic.Interp.outcome;   (** the reproduced violation *)
}

type status = Confirmed of witness | Unconfirmed

type t = {
  func : string;
  kind : kind;
  path : Cfg.path;
  site : string;
  detail : string;
  status : status;
  pfsm : string option;
      (** the {!Pfsm.Verify} corroboration verdict, rendered — the
          second leg of the validation bridge *)
}

val target : kind -> string
(** The array or buffer the finding is about. *)

val kind_name : kind -> string

val is_confirmed : t -> bool

val outcome_matches : kind -> Minic.Interp.outcome -> bool
(** Does a replayed outcome reproduce this finding? *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string

val json_str : string -> string
(** Quote and escape a string as a JSON literal (shared by the
    report-level JSON in {!Linter}). *)
