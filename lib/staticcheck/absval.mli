(** Abstract values for the mini-C abstract interpreter.

    A numeric value is an {!Interval.t} plus optional {e affine
    symbolic bounds} of the form [param + offset] — just enough
    relational information to prove [x < contentLen] implies
    [x + 1024 < contentLen + 1024] (the ReadPOSTData [&&] fix) while
    the [||] variant loses the relation at the disjunction and is
    flagged.  Strings are abstracted by the interval of their possible
    lengths.  [from_atoi] taints values that flowed out of a C [atoi],
    powering the integer-wrap-into-index checker. *)

type sym = { base : string; off : int }
(** The affine bound [base + off], [base] a function parameter. *)

type num = {
  itv : Interval.t;
  lo_sym : sym option;   (** value [>= base + off] *)
  hi_sym : sym option;   (** value [<= base + off] *)
  from_atoi : bool;
}

type t =
  | Num of num
  | Str of num           (** a string, abstracted by its length *)

val num :
  ?lo_sym:sym option -> ?hi_sym:sym option -> ?from_atoi:bool ->
  Interval.t -> num

val of_itv : Interval.t -> t
val str_of_len : Interval.t -> t
val const : int -> t

val param_int : string -> Interval.t -> t
(** An integer parameter: its interval plus the exact self-bound
    [param + 0] on both sides. *)

val top : t
val top_num : num
val str_top : t
(** Any string: length in [\[0, +inf)]. *)

val as_num : t -> num
(** Numeric view; a string coerces to [top] (type confusion is the
    interpreter's problem, not the linter's). *)

val as_len : t -> num
(** Length view of a string; a number coerces to [\[0, +inf)]. *)

val is_bot : t -> bool

val join : t -> t -> t
val widen : t -> t -> t
val equal : t -> t -> bool
val equal_num : num -> num -> bool

val join_num : num -> num -> num
val widen_num : num -> num -> num

val join_r : resolve:(string -> Interval.t) -> t -> t -> t
val join_num_r : resolve:(string -> Interval.t) -> num -> num -> num
(** Joins that can {e recover} a symbolic bound for a side that only
    has a concrete interval, by resolving the other side's base
    parameter to its interval: [x <= h] and [base >= bl] imply
    [x <= base + (h - bl)].  Without recovery every loop-head join
    against the entry state would destroy the relations the
    ReadPOSTData safety proof needs. *)

val meet_hi_sym : sym option -> sym option -> sym option
val meet_lo_sym : sym option -> sym option -> sym option
(** Tighter-of; [None] is the identity. *)

val add_num : num -> num -> num
val sub_num : num -> num -> num
(** Subtraction performs symbolic cancellation: [a <= p + c] and
    [b >= p + c'] bound [a - b] above by [c - c'] — the heart of the
    buffer-excess safety proofs. *)

val mul_num : num -> num -> num
val min_num : num -> num -> num
val meet_num : num -> num -> num

val sym_shift : int -> sym option -> sym option

val pp : Format.formatter -> t -> unit
val pp_num : Format.formatter -> num -> unit
val to_string : t -> string
