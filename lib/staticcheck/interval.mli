(** The classic integer interval domain, with explicit infinities.

    Intervals abstract both integer variables and string {e lengths};
    widening jumps unstable bounds to infinity so loops such as the
    NULL HTTPD [ReadPOSTData] offset accumulation converge in a
    handful of iterations. *)

type bound = Minf | Fin of int | Pinf

type t = Bot | Itv of bound * bound
(** [Itv (lo, hi)] with [lo <= hi]; [Bot] is the empty interval. *)

type cmp = Lt | Le | Gt | Ge | Eq | Ne

val top : t
val bot : t
val const : int -> t
val range : int -> int -> t
(** [range lo hi] is [Bot] when [lo > hi]. *)

val of_bounds : bound -> bound -> t

val int32_full : t
(** [\[-2^31, 2^31 - 1\]] — the image of C [atoi]. *)

val nat : t
(** [\[0, +inf)]. *)

val is_bot : t -> bool

val mem : int -> t -> bool

val lo : t -> bound
val hi : t -> bound
(** Bounds of a non-bottom interval; raise [Invalid_argument] on [Bot]. *)

val lo_int : t -> int option
val hi_int : t -> int option
(** Finite bounds, when the interval is non-bottom and the bound finite. *)

val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
(** [widen old new_]: bounds that grew jump to the matching infinity. *)

val equal : t -> t -> bool
val subset : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val min_ : t -> t -> t
(** Pointwise [min] (for [strncpy]'s effective copy length). *)

val clamp_lo : int -> t -> t
(** [clamp_lo n t] = [meet t \[n, +inf)]. *)

val clamp_hi : int -> t -> t

val refine : cmp -> t -> t -> t * t
(** [refine op a b] is the pair of sub-intervals of [a] and [b] on
    which [a op b] can hold — the assume-transfer of a comparison.
    Either side may come back [Bot] (the comparison is infeasible). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
