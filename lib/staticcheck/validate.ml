module A = Minic.Ast
module I = Interval
module V = Absval
module P = Pfsm.Predicate

type corroboration =
  | Pfsm_refuted of { witness : Pfsm.Value.t; candidates : int }
  | Pfsm_verified of { candidates : int }
  | Pfsm_inapplicable of string

let corroboration_to_string = function
  | Pfsm_refuted { witness; candidates } ->
      let w = Format.asprintf "%a" Pfsm.Value.pp witness in
      let w =
        if String.length w <= 40 then w
        else Printf.sprintf "%s... (%d chars)" (String.sub w 0 24) (String.length w)
      in
      Printf.sprintf "refuted (witness %s, %d candidates)" w candidates
  | Pfsm_verified { candidates } ->
      Printf.sprintf "verified on %d candidates (tension with the finding)"
        candidates
  | Pfsm_inapplicable reason -> "inapplicable: " ^ reason

(* ---- interpreter replay -------------------------------------------- *)

let default_array_count = 64

let stored_arrays (f : A.func) =
  let acc = ref [] in
  let rec go (s : A.stmt) =
    match s with
    | A.Array_store (a, _, _) -> if not (List.mem a !acc) then acc := a :: !acc
    | A.If (_, t, e) ->
        List.iter go t;
        List.iter go e
    | A.While (_, b) | A.Do_while (b, _) -> List.iter go b
    | _ -> ()
  in
  List.iter go f.A.body;
  List.rev !acc

(* Arrays for the replay: the configured ones, plus a default
   registration for any stored-to array the config does not know —
   without it the interpreter would reject before reaching the store. *)
let replay_arrays ~(config : Absint.config) f =
  config.Absint.arrays
  @ List.filter_map
      (fun a ->
         if List.mem_assoc a config.Absint.arrays then None
         else Some (a, default_array_count))
      (stored_arrays f)

let replay ~config (f : A.func) (raw : Absint.raw) : Finding.status =
  let arrays = replay_arrays ~config f in
  let try_one (args, socket) =
    match Minic.Interp.run ~arrays ~socket f ~args with
    | outcome when Finding.outcome_matches raw.Absint.kind outcome ->
        Some { Finding.args; socket; arrays; outcome }
    | _ -> None
    | exception _ -> None
  in
  match List.find_map try_one (Concretize.candidates f raw) with
  | Some w -> Finding.Confirmed w
  | None -> Finding.Unconfirmed

(* ---- pFSM corroboration -------------------------------------------- *)

(* The variable a site's operand checks: the object the pFSM is about. *)
let rec object_of (e : A.expr) =
  match e with
  | A.Var v -> Some v
  | A.Atoi inner | A.Strlen inner -> object_of inner
  | _ -> None

let site_for ~stmt (f : A.func) =
  let open Minic.Extract in
  let wanted =
    match (stmt : A.stmt) with
    | A.Array_store (a, idx, _) -> Some (Store_to a, idx)
    | A.Strcpy (b, src) | A.Strncpy (b, src, _) -> Some (Copy_to b, src)
    | A.Recv_into (_, b, off, _) -> Some (Copy_to b, off)
    | _ -> None
  in
  match wanted with
  | None -> None
  | Some (danger, operand) ->
      List.find_opt
        (fun s -> s.danger = danger && s.operand = operand)
        (dangerous_sites f)

let verify_outcome primitive domain =
  match Pfsm.Verify.verify primitive domain with
  | Pfsm.Verify.Refuted { witness; candidates_tried } ->
      Pfsm_refuted { witness; candidates = candidates_tried }
  | Pfsm.Verify.Verified { candidates } -> Pfsm_verified { candidates }
  | Pfsm.Verify.Budget_exhausted { tried; total } ->
      Pfsm_inapplicable (Printf.sprintf "budget exhausted (%d/%d)" tried total)
  | Pfsm.Verify.Domain_too_large { bound } ->
      Pfsm_inapplicable (Printf.sprintf "domain beyond %d" bound)

let corroborate ~cfg (f : A.func) (raw : Absint.raw) =
  match Cfg.stmt_at cfg raw.Absint.path with
  | None -> Pfsm_inapplicable "no statement at path"
  | Some stmt -> (
      match site_for ~stmt f with
      | None -> Pfsm_inapplicable "site not in the extractable fragment"
      | Some site -> (
          match object_of site.Minic.Extract.operand with
          | None -> Pfsm_inapplicable "operand is not a variable"
          | Some object_var -> (
              match Minic.Extract.impl_predicate_at ~object_var site with
              | None -> Pfsm_inapplicable "guard outside the predicate fragment"
              | Some impl -> (
                  let spec_domain =
                    match raw.Absint.fact with
                    | Absint.Index_fact { count = Some c; _ } ->
                        Some
                          ( P.between P.Self ~low:0 ~high:(c - 1),
                            Pfsm.Verify.Int_range
                              { low = -256; high = c + 256 } )
                    | Absint.Index_fact { count = None; _ } ->
                        Some
                          ( P.Cmp (P.Ge, P.Self, P.Lit (Pfsm.Value.Int 0)),
                            Pfsm.Verify.Int_range { low = -256; high = 256 } )
                    | Absint.Copy_fact { cap; _ } -> (
                        match I.lo_int cap.V.itv with
                        | Some c when c > 0 ->
                            let lens =
                              List.sort_uniq compare
                                [ 0; c - 1; c; c + 1; c + 16 ]
                            in
                            Some
                              ( P.Cmp
                                  ( P.Le, P.Length P.Self,
                                    P.Lit (Pfsm.Value.Int (c - 1)) ),
                                Pfsm.Verify.Strings
                                  (List.filter_map
                                     (fun l ->
                                        if l >= 0 then Some (String.make l 'a')
                                        else None)
                                     lens) )
                        | _ -> None)
                    | Absint.Recv_fact { max; cap; _ } -> (
                        match I.lo_int cap.V.itv, I.hi_int max.V.itv with
                        | Some c, Some m when c > 0 && m > 0 ->
                            (* with the smallest admissible capacity,
                               any offset above c - m overflows *)
                            Some
                              ( P.between P.Self ~low:0 ~high:(c - m),
                                Pfsm.Verify.Int_range { low = 0; high = c } )
                        | _ -> None)
                  in
                  match spec_domain with
                  | None -> Pfsm_inapplicable "no finite specification domain"
                  | Some (spec, domain) ->
                      let primitive =
                        Pfsm.Primitive.make
                          ~name:("lint:" ^ Finding.kind_name raw.Absint.kind)
                          ~kind:Pfsm.Taxonomy.Content_attribute_check
                          ~activity:
                            (Printf.sprintf "%s at %s" f.A.name
                               (Cfg.path_to_string cfg raw.Absint.path))
                          ~spec ~impl
                      in
                      verify_outcome primitive domain))))

(* ---- assembly ------------------------------------------------------ *)

let finding ~config ~cfg (f : A.func) (raw : Absint.raw) : Finding.t =
  let status = replay ~config f raw in
  let pfsm = Some (corroboration_to_string (corroborate ~cfg f raw)) in
  { Finding.func = f.A.name;
    kind = raw.Absint.kind;
    path = raw.Absint.path;
    site = Cfg.path_to_string cfg raw.Absint.path;
    detail = raw.Absint.detail;
    status;
    pfsm }
