module A = Minic.Ast

type report = {
  func : A.func;
  findings : Finding.t list;
  nodes : int;
  edges : int;
  back_edges : int;
  loop_iterations : int;
  widenings : int;
}

let m_functions = Obs.Metrics.counter "staticcheck.functions"
let m_findings = Obs.Metrics.counter "staticcheck.findings"

let lint ?(config = Absint.default_config) (f : A.func) =
  Obs.Span.with_span ~cat:"staticcheck" ~args:[ ("func", f.A.name) ]
    ("lint:" ^ f.A.name)
  @@ fun () ->
  Obs.Metrics.incr m_functions;
  let result = Absint.analyze ~config f in
  let cfg = result.Absint.cfg in
  let findings =
    List.map (Validate.finding ~config ~cfg f) result.Absint.raws
  in
  Obs.Metrics.add m_findings (List.length findings);
  { func = f;
    findings;
    nodes = Cfg.node_count cfg;
    edges = Cfg.edge_count cfg;
    back_edges = Cfg.back_edge_count cfg;
    loop_iterations = result.Absint.loop_iterations;
    widenings = result.Absint.widenings }

(* functions lint independently; ordered Par reduction keeps the
   report list identical to the sequential one *)
let lint_program ?config fs = Par.map_list (fun f -> lint ?config f) fs

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %d finding%s  (cfg %d nodes / %d edges, %d \
                      back-edge%s, %d loop iteration%s, %d widening%s)"
    r.func.A.name (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    r.nodes r.edges r.back_edges
    (if r.back_edges = 1 then "" else "s")
    r.loop_iterations
    (if r.loop_iterations = 1 then "" else "s")
    r.widenings
    (if r.widenings = 1 then "" else "s");
  List.iter (fun f -> Format.fprintf ppf "@,%a" Finding.pp f) r.findings;
  Format.fprintf ppf "@]"

let report_to_json r =
  Printf.sprintf
    "{\"func\": %s, \"nodes\": %d, \"edges\": %d, \"back_edges\": %d, \
     \"loop_iterations\": %d, \"widenings\": %d, \"findings\": [%s]}"
    (Finding.json_str r.func.A.name)
    r.nodes r.edges r.back_edges r.loop_iterations r.widenings
    (String.concat ", " (List.map Finding.to_json r.findings))

(* ---- corpus sweep -------------------------------------------------- *)

type expectation = Flagged of string list | Clean

type sweep_row = {
  label : string;
  expected : expectation;
  report : report;
  ok : bool;
}

(* Ground truth per corpus label (see Minic.Corpus.all). *)
let expectations =
  [ ("tTflag (vulnerable)",
     Flagged [ "array-store-oob-low"; "atoi-wrap-index" ]);
    ("tTflag (fixed)", Clean);
    ("Log (vulnerable)", Flagged [ "strcpy-unbounded" ]);
    ("Log (fixed)", Clean);
    ("Log (off-by-one fix)", Flagged [ "strcpy-off-by-one" ]);
    ("ReadPOSTData (|| loop, #6255)", Flagged [ "recv-overflow" ]);
    ("ReadPOSTData (&& fix)", Clean) ]

module String_set = Set.Make (String)

let row_ok expected (r : report) =
  match expected with
  | Clean -> r.findings = []
  | Flagged kinds ->
      let names =
        String_set.of_list
          (List.map (fun f -> Finding.kind_name f.Finding.kind) r.findings)
      in
      r.findings <> []
      && List.for_all Finding.is_confirmed r.findings
      && List.for_all (fun k -> String_set.mem k names) kinds

let corpus_config =
  { Absint.default_config with Absint.arrays = Minic.Corpus.tTflag_arrays }

(* Persistent row cache: a variant's report is a pure function of
   (label, function, config), so its digest keys the report in the
   ambient store.  Expectations are re-evaluated against the cached
   report — only the analysis itself is persisted, so editing the
   ground truth never serves a stale verdict. *)
let store_tag = "lint-report"

let report_key ~config label f =
  Digest.to_hex
    (Digest.string (Marshal.to_string (label, f, config) [ Marshal.Closures ]))

let lint_cached ~config label f =
  Store.Handle.cached ~tag:store_tag ~key:(report_key ~config label f)
    (fun () -> lint ~config f)

let lint_row ~config (label, f) =
  let expected =
    match List.assoc_opt label expectations with
    | Some e -> e
    | None -> Clean
  in
  let report = lint_cached ~config label f in
  { label; expected; report; ok = row_ok expected report }

(* Each corpus variant lints independently; the Par map keeps row
   order, so the sweep is byte-identical to the sequential one.  Under
   an active fault plan the serial guard drops to sequential, keeping
   the injector's event stream intact. *)
let corpus_sweep () =
  Par.map_list ~label:"lint.corpus"
    (fun item -> lint_row ~config:corpus_config item)
    Minic.Corpus.all

let sweep_ok rows = List.for_all (fun r -> r.ok) rows

(* Supervised sweep: one work item per corpus variant.  The analyzer
   draws its workspace from the simulated heap, so allocation-failure
   plans perturb the sweep itself — a denied arena is a transient
   {!Fault.Condition.Heap_exhausted} the supervisor retries. *)
let arena_bytes = 4096

let sweep_item ~config (label, f) =
  { Resilience.Supervisor.id = label;
    resource = "lint";
    work =
      (fun () ->
         if Fault.Hooks.heap_alloc_fails ~requested:arena_bytes then
           Fault.Condition.fail
             (Fault.Condition.Heap_exhausted { requested = arena_bytes });
         lint_row ~config (label, f)) }

let supervised_sweep ?(config = corpus_config) ?supervise ?checkpoint
    ?stop_after ?parallel () =
  let outcome =
    Resilience.Supervisor.run ~label:"lint-sweep" ?config:supervise ?checkpoint
      ?stop_after ?parallel
      (List.map (sweep_item ~config) Minic.Corpus.all)
  in
  (List.map snd outcome.Resilience.Supervisor.results,
   outcome.Resilience.Supervisor.report)

let expectation_to_string = function
  | Clean -> "clean"
  | Flagged kinds -> "flagged: " ^ String.concat ", " kinds

let pp_sweep ppf rows =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun row ->
       Format.fprintf ppf "[%s] %-30s expected %s@,  %a@,"
         (if row.ok then "ok" else "FAIL")
         row.label
         (expectation_to_string row.expected)
         pp_report row.report)
    rows;
  Format.fprintf ppf "sweep: %s@]"
    (if sweep_ok rows then "all expectations met"
     else "EXPECTATION MISMATCH")

let sweep_to_json rows =
  Printf.sprintf "{\"ok\": %b, \"rows\": [%s]}" (sweep_ok rows)
    (String.concat ", "
       (List.map
          (fun row ->
             Printf.sprintf
               "{\"label\": %s, \"expected\": %s, \"ok\": %b, \"report\": %s}"
               (Finding.json_str row.label)
               (Finding.json_str (expectation_to_string row.expected))
               row.ok
               (report_to_json row.report))
          rows))
