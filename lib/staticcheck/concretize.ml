module A = Minic.Ast
module I = Interval
module V = Absval

let dedup l = List.sort_uniq compare l

let clamp lo hi v = max lo (min hi v)

(* Index witnesses: a small negative (reliably inside the mapped
   segment, so the interpreter reports Array_oob rather than a wild
   fault), the abstract lower bound, and for the high direction the
   count and the abstract upper bound. *)
let index_ints (idx : V.num) count =
  let neg =
    match I.lo_int idx.V.itv with
    | Some l when l < 0 -> [ max l (-65536); -1 ]
    | _ -> [ -1 ]
  in
  let high =
    match count with
    | Some c -> (
        c
        ::
        (match I.hi_int idx.V.itv with
         | Some h when h >= c -> [ clamp (-65536) 65536 h ]
         | _ -> []))
    | None -> []
  in
  dedup (neg @ high)

(* Copy-length witnesses: the smallest overflowing length is
   capacity's lower bound (wrote = len + 1 > capacity), kept only if
   the abstract length admits it. *)
let copy_lengths (len : V.num) (cap : V.num) =
  let cap_lo =
    match I.lo_int cap.V.itv with Some c when c >= 0 -> c | _ -> 256
  in
  let admissible l =
    l >= 0 && l <= 1 lsl 20
    &&
    match I.hi_int len.V.itv with Some h -> l <= h | None -> true
  in
  let base = [ cap_lo; cap_lo + 1; cap_lo + 63 ] in
  let lens = List.filter admissible base in
  dedup (if lens = [] then [ cap_lo ] else lens)

(* Socket bodies big enough that the recv loop runs past the smallest
   capacity the abstraction admits. *)
let recv_sockets (max : V.num) (cap : V.num) =
  let cap_lo =
    match I.lo_int cap.V.itv with Some c when c >= 0 -> c | _ -> 1024
  in
  let m = match I.hi_int max.V.itv with Some m when m > 0 -> m | _ -> 1024 in
  let mk n = String.make (clamp 1 (1 lsl 20) n) 'z' in
  dedup [ mk (cap_lo + m); mk ((2 * cap_lo) + (2 * m)) ]

let rec product = function
  | [] -> [ [] ]
  | cs :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) cs

let take n l = List.filteri (fun i _ -> i < n) l

let candidates (f : A.func) (raw : Absint.raw) =
  let int_cands, str_cands, sockets =
    match raw.Absint.fact with
    | Absint.Index_fact { idx; count } ->
        let ints = index_ints idx count in
        let strs =
          List.concat_map
            (fun w ->
               if w < 0 then
                 (* the decimal itself, and its 32-bit-wrapping alias *)
                 [ string_of_int w; string_of_int (w + 4294967296) ]
               else [ string_of_int w ])
            ints
          @ [ "1" ]
        in
        (dedup ((0 :: 1 :: List.filter (fun v -> v >= 0) ints)), dedup strs, [ "" ])
    | Absint.Copy_fact { len; cap } ->
        let lens = copy_lengths len cap in
        ( [ 0; 1 ],
          dedup (List.map (fun l -> String.make l 'a') lens @ [ "1" ]),
          [ "" ] )
    | Absint.Recv_fact { off = _; max; cap } ->
        ([ 0; 1; 4096 ], [ "1" ], recv_sockets max cap @ [ "" ])
  in
  let per_param =
    List.map
      (function
        | A.Int_param _ -> List.map (fun v -> Minic.Interp.Vint v) int_cands
        | A.Str_param _ -> List.map (fun s -> Minic.Interp.Vstr s) str_cands)
      f.A.params
  in
  let vectors = take 256 (product per_param) in
  List.concat_map
    (fun sock -> List.map (fun args -> (args, sock)) vectors)
    sockets
