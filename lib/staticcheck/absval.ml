(* Abstract values: an interval plus optional affine bounds relative
   to one function parameter ("zones-lite").  The symbolic bounds are
   what separates ReadPOSTData's && loop (x <= contentLen - 1 at the
   recv) from the || loop (no relation survives the disjunction). *)

type sym = { base : string; off : int }

type num = {
  itv : Interval.t;
  lo_sym : sym option;   (* value >= base + off *)
  hi_sym : sym option;   (* value <= base + off *)
  from_atoi : bool;      (* the value flowed out of a C atoi *)
}

type t =
  | Num of num
  | Str of num           (* a string, abstracted by its length *)

let num ?(lo_sym = None) ?(hi_sym = None) ?(from_atoi = false) itv =
  { itv; lo_sym; hi_sym; from_atoi }

let of_itv itv = Num (num itv)
let str_of_len itv = Str (num itv)
let const n = of_itv (Interval.const n)

let param_int name range =
  Num { itv = range; lo_sym = Some { base = name; off = 0 };
        hi_sym = Some { base = name; off = 0 }; from_atoi = false }

let top_num = num Interval.top
let top = Num top_num
let str_top = Str (num Interval.nat)

let as_num = function Num n -> n | Str _ -> top_num
let as_len = function Str n -> n | Num _ -> num Interval.nat

let is_bot = function Num n | Str n -> Interval.is_bot n.itv

let sym_eq a b =
  match a, b with
  | Some s1, Some s2 -> s1.base = s2.base && s1.off = s2.off
  | None, None -> true
  | _ -> false

let sym_shift k = Option.map (fun s -> { s with off = s.off + k })

(* Join of upper symbolic bounds.  When both sides carry a bound over
   the same parameter, take the looser offset.  When only one side
   does, the resolver lets us *recover* a bound for the sym-less side
   from its concrete interval: x <= h and base >= bl imply
   x <= base + (h - bl).  This is what keeps "x <= contentLen - 1"
   alive through the loop-head join with the entry state x = 0 in the
   ReadPOSTData && fix — the entry state satisfies x <= contentLen + 0
   because contentLen >= 0. *)
let join_hi_sym_r resolve a b =
  match a.hi_sym, b.hi_sym with
  | Some s1, Some s2 when s1.base = s2.base ->
      Some { s1 with off = max s1.off s2.off }
  | (Some s, None | None, Some s) ->
      let symless = if a.hi_sym = None then a else b in
      (match Interval.hi_int symless.itv, Interval.lo_int (resolve s.base) with
       | Some h, Some bl -> Some { s with off = max s.off (h - bl) }
       | _ -> None)
  | _ -> None

let join_lo_sym_r resolve a b =
  match a.lo_sym, b.lo_sym with
  | Some s1, Some s2 when s1.base = s2.base ->
      Some { s1 with off = min s1.off s2.off }
  | (Some s, None | None, Some s) ->
      let symless = if a.lo_sym = None then a else b in
      (match Interval.lo_int symless.itv, Interval.hi_int (resolve s.base) with
       | Some l, Some bh -> Some { s with off = min s.off (l - bh) }
       | _ -> None)
  | _ -> None

let no_resolve (_ : string) = Interval.top

let join_lo_sym a b =
  join_lo_sym_r no_resolve
    { itv = Interval.top; lo_sym = a; hi_sym = None; from_atoi = false }
    { itv = Interval.top; lo_sym = b; hi_sym = None; from_atoi = false }

let meet_hi_sym a b =
  match a, b with
  | Some s1, Some s2 when s1.base = s2.base ->
      Some { s1 with off = min s1.off s2.off }
  | Some s, None | None, Some s -> Some s
  | _ -> a

let meet_lo_sym a b =
  match a, b with
  | Some s1, Some s2 when s1.base = s2.base ->
      Some { s1 with off = max s1.off s2.off }
  | Some s, None | None, Some s -> Some s
  | _ -> a

let join_num_r ~resolve a b =
  { itv = Interval.join a.itv b.itv;
    lo_sym = join_lo_sym_r resolve a b;
    hi_sym = join_hi_sym_r resolve a b;
    from_atoi = a.from_atoi || b.from_atoi }

let join_num a b = join_num_r ~resolve:no_resolve a b

let widen_num old next =
  { itv = Interval.widen old.itv next.itv;
    (* a symbolic bound survives widening only if it was already stable *)
    lo_sym = (if sym_eq old.lo_sym next.lo_sym then next.lo_sym else None);
    hi_sym = (if sym_eq old.hi_sym next.hi_sym then next.hi_sym else None);
    from_atoi = old.from_atoi || next.from_atoi }

let join_r ~resolve a b =
  match a, b with
  | Num x, Num y -> Num (join_num_r ~resolve x y)
  | Str x, Str y -> Str (join_num_r ~resolve x y)
  | x, y -> if is_bot x then y else if is_bot y then x else top

let join a b = join_r ~resolve:no_resolve a b

let widen a b =
  match a, b with
  | Num x, Num y -> Num (widen_num x y)
  | Str x, Str y -> Str (widen_num x y)
  | x, y -> if is_bot x then y else if is_bot y then x else top

let equal_num a b =
  Interval.equal a.itv b.itv && sym_eq a.lo_sym b.lo_sym
  && sym_eq a.hi_sym b.hi_sym && a.from_atoi = b.from_atoi

let equal a b =
  match a, b with
  | Num x, Num y | Str x, Str y -> equal_num x y
  | _ -> false

(* ---- arithmetic --------------------------------------------------- *)

(* a + b: a symbolic bound shifts by the other side's finite bound *)
let add_num a b =
  let hi_sym =
    match a.hi_sym, Interval.hi_int b.itv with
    | Some s, Some k -> Some { s with off = s.off + k }
    | _ -> (
        match b.hi_sym, Interval.hi_int a.itv with
        | Some s, Some k -> Some { s with off = s.off + k }
        | _ -> None)
  in
  let lo_sym =
    match a.lo_sym, Interval.lo_int b.itv with
    | Some s, Some k -> Some { s with off = s.off + k }
    | _ -> (
        match b.lo_sym, Interval.lo_int a.itv with
        | Some s, Some k -> Some { s with off = s.off + k }
        | _ -> None)
  in
  { itv = Interval.add a.itv b.itv; lo_sym; hi_sym;
    from_atoi = a.from_atoi || b.from_atoi }

let sub_num a b =
  (* cancellation: a <= p + c and b >= p + c'  ==>  a - b <= c - c' *)
  let cancel_hi =
    match a.hi_sym, b.lo_sym with
    | Some s1, Some s2 when s1.base = s2.base -> Some (s1.off - s2.off)
    | _ -> None
  in
  let cancel_lo =
    match a.lo_sym, b.hi_sym with
    | Some s1, Some s2 when s1.base = s2.base -> Some (s1.off - s2.off)
    | _ -> None
  in
  let base = Interval.sub a.itv b.itv in
  let itv =
    let with_hi =
      match cancel_hi with
      | Some c -> Interval.clamp_hi c base
      | None -> base
    in
    match cancel_lo with
    | Some c -> Interval.clamp_lo c with_hi
    | None -> with_hi
  in
  let hi_sym =
    match a.hi_sym, Interval.lo_int b.itv with
    | Some s, Some k -> Some { s with off = s.off - k }
    | _ -> None
  in
  let lo_sym =
    match a.lo_sym, Interval.hi_int b.itv with
    | Some s, Some k -> Some { s with off = s.off - k }
    | _ -> None
  in
  { itv; lo_sym; hi_sym; from_atoi = a.from_atoi || b.from_atoi }

let mul_num a b =
  { itv = Interval.mul a.itv b.itv; lo_sym = None; hi_sym = None;
    from_atoi = a.from_atoi || b.from_atoi }

let min_num a b =
  { itv = Interval.min_ a.itv b.itv;
    hi_sym = (match a.hi_sym with Some s -> Some s | None -> b.hi_sym);
    lo_sym = join_lo_sym a.lo_sym b.lo_sym;
    from_atoi = a.from_atoi || b.from_atoi }

let meet_num a b =
  { itv = Interval.meet a.itv b.itv;
    lo_sym = meet_lo_sym a.lo_sym b.lo_sym;
    hi_sym = meet_hi_sym a.hi_sym b.hi_sym;
    from_atoi = a.from_atoi || b.from_atoi }

(* ---- rendering ---------------------------------------------------- *)

let pp_sym ppf { base; off } =
  if off = 0 then Format.pp_print_string ppf base
  else if off > 0 then Format.fprintf ppf "%s+%d" base off
  else Format.fprintf ppf "%s%d" base off

let pp_num ppf n =
  Interval.pp ppf n.itv;
  (match n.lo_sym with
   | Some s -> Format.fprintf ppf " >=%a" pp_sym s
   | None -> ());
  (match n.hi_sym with
   | Some s -> Format.fprintf ppf " <=%a" pp_sym s
   | None -> ());
  if n.from_atoi then Format.pp_print_string ppf " (atoi)"

let pp ppf = function
  | Num n -> pp_num ppf n
  | Str n -> Format.fprintf ppf "str(len=%a)" pp_num n

let to_string t = Format.asprintf "%a" pp t
