(** The validation bridge: no raw finding is reported as [Confirmed]
    without a concrete witness {!Minic.Interp} reproduces.

    Two independent legs:

    - {!replay}: concretize the abstract witness ({!Concretize}) and
      run the candidates through the interpreter; the first input
      whose outcome matches the claimed violation becomes the
      finding's witness.  No match — the finding stays [Unconfirmed],
      reported as such, never silently kept.
    - {!corroborate}: rebuild the site as a pFSM — implementation
      predicate extracted with {!Minic.Extract.impl_predicate_at},
      specification derived from the abstract fact (index within
      count, length within capacity) — and let {!Pfsm.Verify}
      exhaustively scan a boundary domain.  [Refuted] means the
      paper's machinery found a spec-violating input the
      implementation accepts, agreeing with the linter. *)

type corroboration =
  | Pfsm_refuted of { witness : Pfsm.Value.t; candidates : int }
      (** pFSM verification agrees: impl admits a spec violation *)
  | Pfsm_verified of { candidates : int }
      (** impl implied spec on the whole domain — tension with the
          finding, worth a human look *)
  | Pfsm_inapplicable of string
      (** no extractable predicate / spec for this site *)

val corroboration_to_string : corroboration -> string

val replay :
  config:Absint.config -> Minic.Ast.func -> Absint.raw -> Finding.status

val corroborate :
  cfg:Cfg.t -> Minic.Ast.func -> Absint.raw -> corroboration

val finding :
  config:Absint.config -> cfg:Cfg.t -> Minic.Ast.func -> Absint.raw ->
  Finding.t
(** Both legs plus rendering: the finished finding. *)
