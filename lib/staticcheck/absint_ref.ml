(* Executable specification of {!Absint}: the original string-keyed
   [Map.Make (String)] abstract environments and the per-store
   [List.assoc_opt] array lookup, kept verbatim so the slot-array
   production interpreter can be checked against it finding for
   finding (and benchmarked against it).  Emits {!Absint.raw} values,
   so results from the two interpreters compare structurally. *)

module A = Minic.Ast
module I = Interval
module V = Absval
module Smap = Map.Make (String)

(* ---- abstract environments ---------------------------------------- *)

type env = { vars : V.t Smap.t; bufs : V.num Smap.t }

let resolve_in env base =
  match Smap.find_opt base env.vars with
  | Some v -> (V.as_num v).V.itv
  | None -> I.top

let merge_with f a b =
  Smap.merge
    (fun _ x y ->
       match x, y with
       | Some x, Some y -> Some (f x y)
       | (Some _ as v), None | None, (Some _ as v) -> v
       | None, None -> None)
    a b

let join_env e1 e2 =
  let resolve base = I.join (resolve_in e1 base) (resolve_in e2 base) in
  { vars = merge_with (V.join_r ~resolve) e1.vars e2.vars;
    bufs = merge_with (V.join_num_r ~resolve) e1.bufs e2.bufs }

let widen_env old next =
  { vars = merge_with V.widen old.vars next.vars;
    bufs = merge_with V.widen_num old.bufs next.bufs }

let env_equal a b =
  Smap.equal V.equal a.vars b.vars && Smap.equal V.equal_num a.bufs b.bufs

let join_opt a b =
  match a, b with
  | None, x | x, None -> x
  | Some e1, Some e2 -> Some (join_env e1 e2)

let kill_sym v (n : V.num) =
  let keep = function Some s when s.V.base = v -> None | o -> o in
  { n with V.lo_sym = keep n.V.lo_sym; hi_sym = keep n.V.hi_sym }

let kill_sym_t v = function
  | V.Num n -> V.Num (kill_sym v n)
  | V.Str n -> V.Str (kill_sym v n)

let kill_base v env =
  { vars = Smap.map (kill_sym_t v) env.vars;
    bufs = Smap.map (kill_sym v) env.bufs }

let tighten env (n : V.num) =
  let itv = n.V.itv in
  let itv =
    match n.V.lo_sym with
    | Some s -> (
        match I.lo_int (resolve_in env s.V.base) with
        | Some l -> I.clamp_lo (l + s.V.off) itv
        | None -> itv)
    | None -> itv
  in
  let itv =
    match n.V.hi_sym with
    | Some s -> (
        match I.hi_int (resolve_in env s.V.base) with
        | Some h -> I.clamp_hi (h + s.V.off) itv
        | None -> itv)
    | None -> itv
  in
  { n with V.itv }

(* ---- expression evaluation ---------------------------------------- *)

let buffer_as_str cap =
  let capm1 = I.add cap.V.itv (I.const (-1)) in
  let itv =
    if I.is_bot capm1 then I.const 0
    else
      match I.of_bounds (I.Fin 0) (I.hi capm1) with
      | t when I.is_bot t -> I.const 0
      | t -> t
  in
  V.Str { V.itv; lo_sym = None; hi_sym = V.sym_shift (-1) cap.V.hi_sym;
          from_atoi = false }

let rec eval env (e : A.expr) : V.t =
  match e with
  | A.Int_lit n -> V.const n
  | A.Str_lit s -> V.str_of_len (I.const (String.length s))
  | A.Var v -> (
      match Smap.find_opt v env.bufs with
      | Some cap -> buffer_as_str (tighten env cap)
      | None -> (
          match Smap.find_opt v env.vars with
          | Some value -> value
          | None -> V.top))
  | A.Bin ((A.Add | A.Sub | A.Mul) as op, a, b) ->
      let x = V.as_num (eval env a) and y = V.as_num (eval env b) in
      let f = match op with
        | A.Add -> V.add_num
        | A.Sub -> V.sub_num
        | _ -> V.mul_num
      in
      V.Num (f x y)
  | A.Bin (_, _, _) | A.Not _ -> V.of_itv (I.range 0 1)
  | A.Atoi _ ->
      V.Num { V.itv = I.int32_full; lo_sym = None; hi_sym = None;
              from_atoi = true }
  | A.Strlen e -> V.Num (V.as_len (eval env e))

(* ---- assume: condition refinement --------------------------------- *)

let cmp_of (op : A.binop) : I.cmp =
  match op with
  | A.Lt -> I.Lt | A.Le -> I.Le | A.Gt -> I.Gt | A.Ge -> I.Ge
  | A.Eq -> I.Eq | A.Ne -> I.Ne
  | A.Add | A.Sub | A.Mul | A.And | A.Or -> invalid_arg "cmp_of"

let negate : I.cmp -> I.cmp = function
  | I.Lt -> I.Ge | I.Le -> I.Gt | I.Gt -> I.Le | I.Ge -> I.Lt
  | I.Eq -> I.Ne | I.Ne -> I.Eq

let flip : I.cmp -> I.cmp = function
  | I.Lt -> I.Gt | I.Le -> I.Ge | I.Gt -> I.Lt | I.Ge -> I.Le
  | I.Eq -> I.Eq | I.Ne -> I.Ne

let derived_syms (op : I.cmp) (other : V.num) ~self =
  let drop_self = function
    | Some s when s.V.base = self -> None
    | o -> o
  in
  let hi = drop_self other.V.hi_sym and lo = drop_self other.V.lo_sym in
  match op with
  | I.Lt -> (None, V.sym_shift (-1) hi)
  | I.Le -> (None, hi)
  | I.Eq -> (lo, hi)
  | I.Ge -> (lo, None)
  | I.Gt -> (V.sym_shift 1 lo, None)
  | I.Ne -> (None, None)

let restrict env expr itv (lo_sym, hi_sym) =
  match expr with
  | A.Var x -> (
      match Smap.find_opt x env.vars with
      | Some (V.Num cur) ->
          let refined =
            V.meet_num cur { V.itv; lo_sym; hi_sym; from_atoi = false }
          in
          { env with vars = Smap.add x (V.Num refined) env.vars }
      | _ -> env)
  | A.Strlen (A.Var s) -> (
      match Smap.find_opt s env.vars with
      | Some (V.Str cur) ->
          let refined =
            V.meet_num cur
              { V.itv = I.meet itv I.nat; lo_sym; hi_sym; from_atoi = false }
          in
          { env with vars = Smap.add s (V.Str refined) env.vars }
      | _ -> env)
  | _ -> env

let assume_cmp env op a b =
  let va = V.as_num (eval env a) and vb = V.as_num (eval env b) in
  let ia', ib' = I.refine op va.V.itv vb.V.itv in
  if I.is_bot ia' || I.is_bot ib' then None
  else
    let self_of = function A.Var x -> x | _ -> "" in
    let env = restrict env a ia' (derived_syms op vb ~self:(self_of a)) in
    let env = restrict env b ib' (derived_syms (flip op) va ~self:(self_of b)) in
    Some env

let rec assume_env env (e : A.expr) : env option =
  match e with
  | A.Int_lit 0 -> None
  | A.Int_lit _ | A.Str_lit _ -> Some env
  | A.Not e -> assume_not_env env e
  | A.Bin (A.And, a, b) ->
      Option.bind (assume_env env a) (fun env -> assume_env env b)
  | A.Bin (A.Or, a, b) -> join_opt (assume_env env a) (assume_env env b)
  | A.Bin ((A.Lt | A.Le | A.Gt | A.Ge | A.Eq | A.Ne) as op, a, b) ->
      assume_cmp env (cmp_of op) a b
  | A.Bin ((A.Add | A.Sub | A.Mul), _, _) -> Some env
  | (A.Var _ | A.Atoi _ | A.Strlen _) as e ->
      assume_cmp env I.Ne e (A.Int_lit 0)

and assume_not_env env (e : A.expr) : env option =
  match e with
  | A.Int_lit 0 -> Some env
  | A.Int_lit _ -> None
  | A.Str_lit _ -> Some env
  | A.Not e -> assume_env env e
  | A.Bin (A.And, a, b) ->
      join_opt (assume_not_env env a) (assume_not_env env b)
  | A.Bin (A.Or, a, b) ->
      Option.bind (assume_not_env env a) (fun env -> assume_not_env env b)
  | A.Bin ((A.Lt | A.Le | A.Gt | A.Ge | A.Eq | A.Ne) as op, a, b) ->
      assume_cmp env (negate (cmp_of op)) a b
  | A.Bin ((A.Add | A.Sub | A.Mul), _, _) -> Some env
  | (A.Var _ | A.Atoi _ | A.Strlen _) as e ->
      assume_cmp env I.Eq e (A.Int_lit 0)

(* ---- checkers ------------------------------------------------------ *)

type ctx = {
  config : Absint.config;
  mutable raws : Absint.raw list;
  mutable emit : bool;
  mutable loop_iterations : int;
  mutable widenings : int;
}

let emit ctx path kind detail fact =
  if ctx.emit then
    ctx.raws <- { Absint.kind; path; detail; fact } :: ctx.raws

let pos_part itv = I.meet itv (I.of_bounds (I.Fin 1) I.Pinf)
let neg_part itv = I.meet itv (I.of_bounds I.Minf (I.Fin (-1)))

let num_str n = Format.asprintf "%a" V.pp_num n

let check_array_store ctx path arr (idx : V.num) =
  let count = List.assoc_opt arr ctx.config.Absint.arrays in
  if not (I.is_bot (neg_part idx.V.itv)) then begin
    emit ctx path
      (Finding.Array_store_oob { array = arr; direction = Finding.Low })
      (Printf.sprintf "index %s can be negative%s" (num_str idx)
         (match count with
          | Some c -> Printf.sprintf " (array has %d slots)" c
          | None -> ""))
      (Absint.Index_fact { idx; count });
    if idx.V.from_atoi then
      emit ctx path
        (Finding.Atoi_wrap_index { array = arr })
        (Printf.sprintf
           "index flows from atoi: inputs beyond 2^31 wrap negative; \
            abstract index %s" (num_str idx))
        (Absint.Index_fact { idx; count })
  end;
  match count with
  | Some c ->
      let high = I.meet idx.V.itv (I.of_bounds (I.Fin c) I.Pinf) in
      if not (I.is_bot high) then
        emit ctx path
          (Finding.Array_store_oob { array = arr; direction = Finding.High })
          (Printf.sprintf "index %s can reach %s, past count %d" (num_str idx)
             (I.to_string high) c)
          (Absint.Index_fact { idx; count })
  | None -> ()

let check_copy ctx env path buf (len : V.num) ~strncpy =
  match Smap.find_opt buf env.bufs with
  | None -> ()
  | Some cap ->
      let cap = tighten env cap in
      if not (I.is_bot len.V.itv || I.is_bot cap.V.itv) then begin
        let wrote = V.add_num len (V.num (I.const 1)) in
        let excess = tighten env (V.sub_num wrote cap) in
        if not (I.is_bot (pos_part excess.V.itv)) then
          let kind =
            if strncpy then Finding.Strncpy_overflow { buffer = buf }
            else if I.hi len.V.itv = I.Pinf && len.V.hi_sym = None then
              Finding.Strcpy_unbounded { buffer = buf }
            else if I.hi excess.V.itv = I.Fin 1 then
              Finding.Strcpy_off_by_one { buffer = buf }
            else Finding.Strcpy_overflow { buffer = buf }
          in
          emit ctx path kind
            (Printf.sprintf "copies len %s (+NUL) into capacity %s; excess %s"
               (num_str len) (num_str cap) (I.to_string excess.V.itv))
            (Absint.Copy_fact { len; cap })
      end

(* ---- statement transfer -------------------------------------------- *)

let rec exec_block ctx prefix env stmts =
  List.fold_left
    (fun (i, env) stmt -> (i + 1, exec_stmt ctx (prefix @ [ i ]) env stmt))
    (0, env) stmts
  |> snd

and exec_stmt ctx path env_opt (stmt : A.stmt) : env option =
  match env_opt with
  | None -> None
  | Some env -> (
      match stmt with
      | A.Decl_int (v, e) | A.Assign (v, e) ->
          let value = kill_sym_t v (eval env e) in
          let env = kill_base v env in
          Some { env with vars = Smap.add v value env.vars }
      | A.Decl_buf (v, n) ->
          Some { env with bufs = Smap.add v (V.num (I.const n)) env.bufs }
      | A.Decl_buf_dyn (v, e) ->
          let cap = tighten env (V.as_num (eval env e)) in
          let cap =
            match I.lo_int cap.V.itv with
            | Some l when l >= 0 -> cap
            | _ ->
                let hi =
                  match I.hi_int cap.V.itv with
                  | Some h -> I.Fin (max h 0)
                  | None -> I.Pinf
                in
                { V.itv = I.of_bounds (I.Fin 0) hi; lo_sym = cap.V.lo_sym;
                  hi_sym = None; from_atoi = false }
          in
          Some { env with bufs = Smap.add v cap env.bufs }
      | A.Array_store (arr, idx_e, _) ->
          let idx = tighten env (V.as_num (eval env idx_e)) in
          if not (I.is_bot idx.V.itv) then check_array_store ctx path arr idx;
          Some env
      | A.Strcpy (buf, e) ->
          let len = tighten env (V.as_len (eval env e)) in
          check_copy ctx env path buf len ~strncpy:false;
          Some env
      | A.Strncpy (buf, e, bound_e) ->
          let len = tighten env (V.as_len (eval env e)) in
          let bound = tighten env (V.as_num (eval env bound_e)) in
          let bpos = V.meet_num bound (V.num I.nat) in
          let truncated =
            if I.is_bot bpos.V.itv then None else Some (V.min_num len bpos)
          in
          let full =
            if I.is_bot (neg_part bound.V.itv) then None else Some len
          in
          let eff =
            match truncated, full with
            | Some t, Some f -> V.join_num t f
            | Some t, None -> t
            | None, Some f -> f
            | None, None -> len
          in
          check_copy ctx env path buf eff ~strncpy:true;
          Some env
      | A.Recv_into (rc, buf, off_e, max_e) ->
          let off = tighten env (V.as_num (eval env off_e)) in
          let maxv = tighten env (V.as_num (eval env max_e)) in
          (match Smap.find_opt buf env.bufs with
           | Some cap0 ->
               let cap = tighten env cap0 in
               let maxpos = I.meet maxv.V.itv (I.of_bounds (I.Fin 1) I.Pinf) in
               if not (I.is_bot maxpos || I.is_bot off.V.itv
                       || I.is_bot cap.V.itv)
               then begin
                 let end_ = V.add_num off { maxv with V.itv = maxpos } in
                 let excess = tighten env (V.sub_num end_ cap) in
                 if not (I.is_bot (pos_part excess.V.itv)) then
                   emit ctx path
                     (Finding.Recv_overflow { buffer = buf })
                     (Printf.sprintf
                        "recv at offset %s of up to %s bytes into capacity \
                         %s; excess %s" (num_str off) (I.to_string maxpos)
                        (num_str cap) (I.to_string excess.V.itv))
                     (Absint.Recv_fact { off; max = maxv; cap })
               end
           | None -> ());
          let rc_itv =
            let m = I.meet maxv.V.itv I.nat in
            if I.is_bot m then I.const 0 else I.join (I.const 0) m
          in
          let rc_hi_sym =
            match I.lo_int maxv.V.itv with
            | Some l when l >= 0 -> maxv.V.hi_sym
            | _ -> None
          in
          let env = kill_base rc env in
          let rc_val =
            kill_sym_t rc
              (V.Num { V.itv = rc_itv; lo_sym = None; hi_sym = rc_hi_sym;
                       from_atoi = false })
          in
          Some { env with vars = Smap.add rc rc_val env.vars }
      | A.If (c, then_, else_) ->
          let st = exec_block ctx (path @ [ 0 ]) (assume_env env c) then_ in
          let se = exec_block ctx (path @ [ 1 ]) (assume_not_env env c) else_ in
          join_opt st se
      | A.While (c, body) -> exec_while ctx path env c body
      | A.Do_while (body, c) -> exec_do_while ctx path env body c
      | A.Reject _ | A.Return _ -> None)

and fixpoint ctx step env =
  let rec go head round =
    ctx.loop_iterations <- ctx.loop_iterations + 1;
    let grown =
      match step head with None -> head | Some out -> join_env head out
    in
    if env_equal grown head || round >= 64 then head
    else begin
      let next =
        if round >= 2 then begin
          ctx.widenings <- ctx.widenings + 1;
          widen_env head grown
        end
        else grown
      in
      go next (round + 1)
    end
  in
  go env 0

and exec_while ctx path env cond body =
  let saved = ctx.emit in
  ctx.emit <- false;
  let step head =
    exec_block ctx (path @ [ 0 ]) (assume_env head cond) body
  in
  let head = fixpoint ctx step env in
  ctx.emit <- saved;
  if saved then ignore (exec_block ctx (path @ [ 0 ]) (assume_env head cond) body);
  assume_not_env head cond

and exec_do_while ctx path env body cond =
  let saved = ctx.emit in
  ctx.emit <- false;
  let step head =
    match exec_block ctx (path @ [ 0 ]) (Some head) body with
    | None -> None
    | Some out -> assume_env out cond
  in
  let head = fixpoint ctx step env in
  ctx.emit <- saved;
  match exec_block ctx (path @ [ 0 ]) (Some head) body with
  | None -> None
  | Some out -> assume_not_env out cond

(* ---- entry --------------------------------------------------------- *)

let initial_env (config : Absint.config) (f : A.func) =
  let vars =
    List.fold_left
      (fun m p ->
         match p with
         | A.Int_param name ->
             Smap.add name (V.param_int name config.Absint.int_params) m
         | A.Str_param name -> Smap.add name V.str_top m)
      Smap.empty f.A.params
  in
  { vars; bufs = Smap.empty }

let dedupe raws =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (r : Absint.raw) ->
       let k = (r.Absint.path, Finding.kind_name r.Absint.kind) in
       if Hashtbl.mem seen k then false
       else begin
         Hashtbl.add seen k ();
         true
       end)
    raws

let analyze ?(config = Absint.default_config) (f : A.func) : Absint.result =
  let cfg = Cfg.build f in
  let ctx =
    { config; raws = []; emit = true; loop_iterations = 0; widenings = 0 }
  in
  ignore (exec_block ctx [] (Some (initial_env config f)) f.A.body);
  { Absint.cfg;
    raws = dedupe (List.rev ctx.raws);
    loop_iterations = ctx.loop_iterations;
    widenings = ctx.widenings }
