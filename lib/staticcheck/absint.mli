(** The abstract interpreter: a forward analysis of a {!Minic.Ast}
    function over {!Absval} states, with widening at loop heads.

    Checkers run at the dangerous statements ([Array_store], [Strcpy],
    [Strncpy], [Recv_into]) and emit {e raw} findings — abstract facts
    saying the bad state is reachable in the over-approximation.  The
    validation bridge ({!Validate}) then tries to concretize each raw
    into an input {!Minic.Interp} actually crashes on.

    The analysis assumes the documented precondition that integer
    parameters are non-negative ([\[0, 2^31-1\]] by default): callers
    are expected to have sanitised signs, and the negative-length
    ReadPOSTData hole is Bugtraq #5774, a separate report from the
    #6255 loop-condition bug this linter targets.  Arithmetic is
    unbounded (no 32-bit wrap except at [atoi]); that is the standard
    interval-linter approximation and is compensated by validation. *)

type config = {
  arrays : (string * int) list;
      (** global [int] array sizes, as {!Minic.Interp.run} takes them *)
  int_params : Interval.t;
      (** initial interval of every integer parameter *)
}

val default_config : config
(** No arrays; integer parameters in [\[0, 2^31 - 1\]]. *)

(** The abstract fact behind a raw finding — what the concretizer
    mines for candidate witnesses. *)
type fact =
  | Index_fact of { idx : Absval.num; count : int option }
  | Copy_fact of { len : Absval.num; cap : Absval.num }
  | Recv_fact of { off : Absval.num; max : Absval.num; cap : Absval.num }

type raw = {
  kind : Finding.kind;
  path : Cfg.path;
  detail : string;
  fact : fact;
}

type result = {
  cfg : Cfg.t;
  raws : raw list;          (** deduplicated by (path, kind), program order *)
  loop_iterations : int;    (** total fixpoint iterations across loops *)
  widenings : int;          (** widening applications *)
}

val analyze : ?config:config -> Minic.Ast.func -> result
