(** From abstract witness to concrete candidate inputs.

    Each raw finding carries the abstract fact it was derived from
    ({!Absint.fact}); this module mines the fact's intervals for the
    boundary inputs most likely to reproduce the violation — negative
    and 2^32-wrapping decimal strings for atoi-fed indices, strings of
    exactly the overflowing length for copies, oversized socket bodies
    for recv — and assembles candidate argument vectors over the
    function's parameters. *)

val candidates :
  Minic.Ast.func -> Absint.raw -> (Minic.Interp.value list * string) list
(** Candidate [(args, socket)] pairs, bounded (at most a few hundred),
    most promising first. *)
