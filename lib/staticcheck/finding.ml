type direction = Low | High

type kind =
  | Array_store_oob of { array : string; direction : direction }
  | Atoi_wrap_index of { array : string }
  | Strcpy_unbounded of { buffer : string }
  | Strcpy_off_by_one of { buffer : string }
  | Strcpy_overflow of { buffer : string }
  | Strncpy_overflow of { buffer : string }
  | Recv_overflow of { buffer : string }

type witness = {
  args : Minic.Interp.value list;
  socket : string;
  arrays : (string * int) list;
  outcome : Minic.Interp.outcome;
}

type status = Confirmed of witness | Unconfirmed

type t = {
  func : string;
  kind : kind;
  path : Cfg.path;
  site : string;
  detail : string;
  status : status;
  pfsm : string option;
      (* what the Pfsm.Verify corroboration said, rendered *)
}

let target = function
  | Array_store_oob { array; _ } | Atoi_wrap_index { array } -> array
  | Strcpy_unbounded { buffer } | Strcpy_off_by_one { buffer }
  | Strcpy_overflow { buffer } | Strncpy_overflow { buffer }
  | Recv_overflow { buffer } -> buffer

let kind_name = function
  | Array_store_oob { direction = Low; _ } -> "array-store-oob-low"
  | Array_store_oob { direction = High; _ } -> "array-store-oob-high"
  | Atoi_wrap_index _ -> "atoi-wrap-index"
  | Strcpy_unbounded _ -> "strcpy-unbounded"
  | Strcpy_off_by_one _ -> "strcpy-off-by-one"
  | Strcpy_overflow _ -> "strcpy-overflow"
  | Strncpy_overflow _ -> "strncpy-overflow"
  | Recv_overflow _ -> "recv-overflow"

let is_confirmed t = match t.status with Confirmed _ -> true | Unconfirmed -> false

(* A replayed outcome confirms a finding when it is a memory violation
   on the finding's target (a machine fault also counts for copies:
   a large enough overflow runs off the mapped segment before the
   capacity book-keeping fires). *)
let outcome_matches kind (outcome : Minic.Interp.outcome) =
  match kind, outcome with
  | (Array_store_oob { array; _ } | Atoi_wrap_index { array }),
    Minic.Interp.Memory_violation (Minic.Interp.Array_oob { array = a; _ }) ->
      a = array
  | (Strcpy_unbounded { buffer } | Strcpy_off_by_one { buffer }
    | Strcpy_overflow { buffer } | Strncpy_overflow { buffer }
    | Recv_overflow { buffer }),
    Minic.Interp.Memory_violation (Minic.Interp.Buffer_overflow { buffer = b; _ }) ->
      b = buffer
  | (Strcpy_unbounded _ | Strcpy_off_by_one _ | Strcpy_overflow _
    | Strncpy_overflow _ | Recv_overflow _),
    Minic.Interp.Memory_violation (Minic.Interp.Machine_fault _) ->
      true
  | _ -> false

(* ---- rendering ---------------------------------------------------- *)

let pp_status ppf = function
  | Unconfirmed -> Format.pp_print_string ppf "UNCONFIRMED"
  | Confirmed w ->
      Format.fprintf ppf "CONFIRMED (%a)" Minic.Interp.pp_outcome w.outcome

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s: %s on %s [%a]@,at %s@,%s@,%a" t.func
    (kind_name t.kind) (target t.kind) Cfg.pp_path t.path t.site t.detail
    pp_status t.status;
  (match t.status with
   | Confirmed w ->
       let arg = function
         | Minic.Interp.Vint n -> string_of_int n
         | Minic.Interp.Vstr s ->
             if String.length s <= 24 then Printf.sprintf "%S" s
             else Printf.sprintf "<%d-byte string>" (String.length s)
       in
       Format.fprintf ppf "@,witness args: (%s)%s"
         (String.concat ", " (List.map arg w.args))
         (if w.socket = "" then ""
          else Printf.sprintf ", socket: %d bytes" (String.length w.socket))
   | Unconfirmed -> ());
  (match t.pfsm with
   | Some note -> Format.fprintf ppf "@,pfsm: %s" note
   | None -> ());
  Format.fprintf ppf "@]"

(* ---- JSON (hand-rolled; the toolchain has no JSON package) -------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
           Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let witness_to_json w =
  let arg = function
    | Minic.Interp.Vint n -> Printf.sprintf "{\"int\": %d}" n
    | Minic.Interp.Vstr s ->
        if String.length s <= 64 then Printf.sprintf "{\"str\": %s}" (json_str s)
        else
          Printf.sprintf "{\"str_len\": %d, \"str_head\": %s}" (String.length s)
            (json_str (String.sub s 0 16))
  in
  Printf.sprintf
    "{\"args\": [%s], \"socket_len\": %d, \"arrays\": [%s], \"outcome\": %s}"
    (String.concat ", " (List.map arg w.args))
    (String.length w.socket)
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "{\"array\": %s, \"count\": %d}" (json_str n) c)
          w.arrays))
    (json_str (Format.asprintf "%a" Minic.Interp.pp_outcome w.outcome))

let to_json t =
  let status, witness =
    match t.status with
    | Confirmed w -> ("confirmed", Printf.sprintf ", \"witness\": %s" (witness_to_json w))
    | Unconfirmed -> ("unconfirmed", "")
  in
  let pfsm =
    match t.pfsm with
    | Some note -> Printf.sprintf ", \"pfsm\": %s" (json_str note)
    | None -> ""
  in
  Printf.sprintf
    "{\"func\": %s, \"kind\": %s, \"target\": %s, \"path\": [%s], \"site\": %s, \
     \"detail\": %s, \"status\": %s%s%s}"
    (json_str t.func) (json_str (kind_name t.kind)) (json_str (target t.kind))
    (String.concat ", " (List.map string_of_int t.path))
    (json_str t.site) (json_str t.detail) (json_str status) witness pfsm
