(** Executable specification of {!Absint}.

    The original abstract interpreter, verbatim: string-keyed
    [Map.Make (String)] environments and a per-store [List.assoc_opt]
    scan of the array-size config.  {!Absint.analyze} replaced those
    with per-function integer slots, dense option arrays and a hoisted
    array-count table; this module is what it must agree with.  The
    differential property test runs both over generated functions and
    the bench harness times them side by side — do not "optimize"
    this copy. *)

val analyze : ?config:Absint.config -> Minic.Ast.func -> Absint.result
(** Same result, path for path and count for count, as
    {!Absint.analyze}. *)
