(** A control-flow graph over {!Minic.Ast} functions, with
    per-statement {e paths} so diagnostics can point at code without
    changing the AST.

    A path addresses a statement structurally: [\[2\]] is the third
    statement of the function body; inside an [If] at path [p], the
    then-branch is [p @ \[0; j\]] and the else-branch [p @ \[1; j\]];
    a loop body is [p @ \[0; j\]].  The CFG itself is a conventional
    node/edge graph — [Entry], [Exit], and one node per statement —
    with labelled edges including loop back-edges, built in one AST
    walk alongside the side-table from paths to statements. *)

type path = int list

type node = Entry | Exit | Stmt of path

type edge_kind = Seq | If_true | If_false | Loop_back | Loop_exit

type edge = { src : node; dst : node; kind : edge_kind }

type t = {
  func : Minic.Ast.func;
  nodes : node list;             (** [Entry], [Exit], then program order *)
  edges : edge list;
  table : (path * Minic.Ast.stmt) list;   (** the side-table *)
}

val build : Minic.Ast.func -> t

val stmt_at : t -> path -> Minic.Ast.stmt option

val successors : t -> node -> (node * edge_kind) list

val node_count : t -> int
val edge_count : t -> int
val back_edge_count : t -> int
(** Loop back-edges — the places the abstract interpreter widens. *)

val pp_path : Format.formatter -> path -> unit
(** Raw dotted indices, e.g. ["2.0.1"]. *)

val path_to_string : t -> path -> string
(** Resolves branch indices against the AST and appends a one-line
    rendering of the addressed statement, e.g.
    ["3.then.0: strcpy(buf, request);"]. *)

val to_dot : t -> string
(** Graphviz rendering, statements as node labels. *)
