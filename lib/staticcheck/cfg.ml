module A = Minic.Ast

type path = int list

type node = Entry | Exit | Stmt of path

type edge_kind = Seq | If_true | If_false | Loop_back | Loop_exit

type edge = { src : node; dst : node; kind : edge_kind }

type t = {
  func : A.func;
  nodes : node list;
  edges : edge list;
  table : (path * A.stmt) list;
}

(* One walk builds the side-table, program-order node list, and edges.
   [pending] is the dangling frontier: edges waiting for their target. *)
let build (f : A.func) =
  let table = ref [] and nodes = ref [] and edges = ref [] in
  let register path stmt =
    table := (path, stmt) :: !table;
    nodes := Stmt path :: !nodes
  in
  let connect pending target =
    List.iter (fun (src, kind) -> edges := { src; dst = target; kind } :: !edges)
      pending
  in
  let rec walk_block prefix pending stmts =
    List.fold_left
      (fun (i, pending) stmt ->
         (i + 1, walk_stmt (prefix @ [ i ]) pending stmt))
      (0, pending) stmts
    |> snd
  and walk_stmt path pending (stmt : A.stmt) =
    let n = Stmt path in
    register path stmt;
    match stmt with
    | A.Decl_int _ | A.Decl_buf _ | A.Decl_buf_dyn _ | A.Assign _
    | A.Array_store _ | A.Strcpy _ | A.Strncpy _ | A.Recv_into _ ->
        connect pending n;
        [ (n, Seq) ]
    | A.Reject _ | A.Return _ ->
        connect pending n;
        connect [ (n, Seq) ] Exit;
        []
    | A.If (_, then_, else_) ->
        connect pending n;
        let out_t = walk_block (path @ [ 0 ]) [ (n, If_true) ] then_ in
        let out_e = walk_block (path @ [ 1 ]) [ (n, If_false) ] else_ in
        out_t @ out_e
    | A.While (_, body) ->
        connect pending n;
        let out = walk_block (path @ [ 0 ]) [ (n, If_true) ] body in
        List.iter (fun (src, _) -> edges := { src; dst = n; kind = Loop_back } :: !edges)
          out;
        [ (n, Loop_exit) ]
    | A.Do_while (body, _) ->
        (* the condition node sits after the body; the body is entered
           directly, first from the predecessors, then via the back-edge *)
        (match body with
         | [] -> connect pending n
         | _ ->
             let out = walk_block (path @ [ 0 ]) pending body in
             connect out n;
             edges :=
               { src = n; dst = Stmt (path @ [ 0; 0 ]); kind = Loop_back } :: !edges);
        [ (n, Loop_exit) ]
  in
  let out = walk_block [] [ (Entry, Seq) ] f.A.body in
  connect out Exit;
  { func = f;
    nodes = Entry :: Exit :: List.rev !nodes;
    edges = List.rev !edges;
    table = List.rev !table }

let stmt_at t path = List.assoc_opt path t.table

let successors t node =
  List.filter_map
    (fun e -> if e.src = node then Some (e.dst, e.kind) else None)
    t.edges

let node_count t = List.length t.nodes
let edge_count t = List.length t.edges

let back_edge_count t =
  List.length (List.filter (fun e -> e.kind = Loop_back) t.edges)

(* Render a path against the function's AST so branch indices become
   "then" / "else" / "body". *)
let path_segments (f : A.func) path =
  let rec go block path =
    match path with
    | [] -> []
    | i :: rest -> (
        match List.nth_opt block i with
        | None -> List.map string_of_int path
        | Some stmt -> (
            string_of_int i
            ::
            (match stmt, rest with
             | _, [] -> []
             | A.If (_, then_, _), 0 :: rest' -> "then" :: go then_ rest'
             | A.If (_, _, else_), 1 :: rest' -> "else" :: go else_ rest'
             | (A.While (_, body) | A.Do_while (body, _)), 0 :: rest' ->
                 "body" :: go body rest'
             | _, rest' -> List.map string_of_int rest')))
  in
  go f.A.body path

let pp_path ppf path =
  Format.pp_print_string ppf (String.concat "." (List.map string_of_int path))

let stmt_headline stmt =
  let s = Format.asprintf "%a" (A.pp_stmt ~indent:0) stmt in
  let s = match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let s = String.trim s in
  if String.length s > 48 then String.sub s 0 45 ^ "..." else s

let path_to_string t path =
  let loc = String.concat "." (path_segments t.func path) in
  match stmt_at t path with
  | Some stmt -> Printf.sprintf "%s: %s" loc (stmt_headline stmt)
  | None -> loc

let node_id = function
  | Entry -> "entry"
  | Exit -> "exit"
  | Stmt p -> "s_" ^ String.concat "_" (List.map string_of_int p)

let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let to_dot t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n  rankdir=TB;\n" t.func.A.name);
  List.iter
    (fun n ->
       let label =
         match n with
         | Entry -> "entry"
         | Exit -> "exit"
         | Stmt p -> (
             match stmt_at t p with
             | Some s -> escape (stmt_headline s)
             | None -> node_id n)
       in
       let shape = match n with Entry | Exit -> "ellipse" | Stmt _ -> "box" in
       Buffer.add_string b
         (Printf.sprintf "  %s [shape=%s, label=\"%s\"];\n" (node_id n) shape label))
    t.nodes;
  List.iter
    (fun e ->
       let style =
         match e.kind with
         | Seq -> ""
         | If_true -> " [label=\"T\"]"
         | If_false -> " [label=\"F\"]"
         | Loop_back -> " [style=dashed, label=\"back\"]"
         | Loop_exit -> " [label=\"exit\"]"
       in
       Buffer.add_string b
         (Printf.sprintf "  %s -> %s%s;\n" (node_id e.src) (node_id e.dst) style))
    t.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
