module A = Minic.Ast
module R = Vulndb.Prng

(* Identifier pools steer clear of the parser's keywords
   (int/char/const/if/else/while/do/return/strcpy/strncpy/atoi/
   strlen/recv) and of "sock", which the grammar reserves as the
   receive source. *)
let idents = [| "a"; "b"; "c"; "x"; "y"; "n"; "len"; "idx"; "tmp"; "acc" |]
let buffers = [| "buf"; "data"; "out"; "line" |]
let arrays = [| "tab"; "slots"; "vect" |]
let words = [| ""; "abc"; "x1"; "hello world"; "0"; "q" |]
let reasons = [| "bad"; "toolong"; "range"; "nope" |]

let literal_pool =
  Array.of_list
    (List.sort_uniq compare
       (List.filter (fun n -> n <> -1) Discovery.Domain_gen.boundary_ints
        @ [ 0; 1; 2; 7; 16; 63; 64; 100; 255; 1024 ]))

let binops = [| A.Add; A.Sub; A.Mul; A.Lt; A.Le; A.Gt; A.Ge; A.Eq; A.Ne;
                A.And; A.Or |]

let gen_int r =
  if R.below r 3 = 0 then R.in_range r ~low:(-4) ~high:300
  else R.pick r literal_pool

let rec gen_expr r depth =
  if depth <= 0 then gen_leaf r
  else
    match R.below r 8 with
    | 0 | 1 | 2 ->
        A.Bin (R.pick r binops, gen_expr r (depth - 1), gen_expr r (depth - 1))
    | 3 -> A.Not (gen_expr r (depth - 1))
    | 4 -> A.Atoi (gen_expr r (depth - 1))
    | 5 -> A.Strlen (gen_expr r (depth - 1))
    | _ -> gen_leaf r

and gen_leaf r =
  match R.below r 4 with
  | 0 -> A.Int_lit (gen_int r)
  | 1 -> A.Var (R.pick r idents)
  | 2 -> A.Str_lit (R.pick r words)
  | _ -> A.Var (R.pick r buffers)

(* [return -1;] pretty-prints like a [Reject], whose own rendering
   differs — the one AST shape that cannot survive a string-level
   roundtrip, so the generator never emits it. *)
let safe_return e =
  match e with A.Int_lit (-1) -> A.Return (A.Int_lit 0) | e -> A.Return e

let rec gen_stmt r depth =
  match R.below r 12 with
  | 0 -> A.Decl_int (R.pick r idents, gen_expr r depth)
  | 1 -> A.Decl_buf (R.pick r buffers, R.in_range r ~low:1 ~high:256)
  | 2 -> A.Decl_buf_dyn (R.pick r buffers, gen_expr r depth)
  | 3 -> A.Assign (R.pick r idents, gen_expr r depth)
  | 4 -> A.Array_store (R.pick r arrays, gen_expr r depth, gen_expr r depth)
  | 5 -> A.Strcpy (R.pick r buffers, gen_expr r depth)
  | 6 -> A.Strncpy (R.pick r buffers, gen_expr r depth, gen_expr r depth)
  | 7 when depth > 0 ->
      A.If (gen_expr r depth, gen_block r (depth - 1), gen_block r (depth - 1))
  | 8 when depth > 0 -> A.While (gen_expr r depth, gen_block r (depth - 1))
  | 9 when depth > 0 -> A.Do_while (gen_block r (depth - 1), gen_expr r depth)
  | 10 ->
      A.Recv_into
        (R.pick r idents, R.pick r buffers, gen_expr r depth, gen_expr r depth)
  | 11 -> A.Reject (R.pick r reasons)
  | _ -> safe_return (gen_expr r depth)

and gen_block r depth =
  List.init (R.below r 4) (fun _ -> gen_stmt r depth)

let gen_params r =
  List.init (R.below r 4) (fun i ->
      let base = [| "s"; "t"; "k"; "m" |].(i) in
      if R.below r 2 = 0 then A.Str_param base else A.Int_param base)

let func ~seed =
  let r = R.create ~seed in
  { A.name = "gen";
    params = gen_params r;
    body =
      (let b = gen_block r 3 in
       if b = [] then [ safe_return (gen_expr r 1) ] else b) }

(* ---- lintable guard-then-sink templates ---------------------------- *)

type vuln = {
  f : A.func;
  arrays : (string * int) list;
  vulnerable : bool;
}

(* Log-shaped: length guard then strcpy.  The guard admits strings up
   to [limit] chars; strcpy writes len+1 bytes, so the program is
   vulnerable iff limit + 1 > cap. *)
let vuln_strcpy r =
  let cap = 16 + R.below r 240 in
  let limit = cap - 2 + R.below r 5 in
  { f =
      { A.name = "gen_log";
        params = [ A.Str_param "s" ];
        body =
          [ A.If
              ( A.Bin (A.Gt, A.Strlen (A.Var "s"), A.Int_lit limit),
                [ A.Reject "toolong" ],
                [] );
            A.Decl_buf ("buf", cap);
            A.Strcpy ("buf", A.Var "s");
            A.Return (A.Int_lit 0) ] };
    arrays = [];
    vulnerable = limit + 1 > cap }

(* tTflag-shaped: atoi'd index, range guard that may miss the lower
   bound or overshoot the upper one. *)
let vuln_index r =
  let count = 8 + R.below r 120 in
  let hi = count - 2 + R.below r 5 in
  let low_checked = R.below r 2 = 0 in
  let bad_high = A.Bin (A.Gt, A.Var "x", A.Int_lit hi) in
  let check =
    if low_checked then
      A.Bin (A.Or, A.Bin (A.Lt, A.Var "x", A.Int_lit 0), bad_high)
    else bad_high
  in
  { f =
      { A.name = "gen_setoption";
        params = [ A.Str_param "s"; A.Str_param "t" ];
        body =
          [ A.Decl_int ("x", A.Atoi (A.Var "s"));
            A.Decl_int ("v", A.Atoi (A.Var "t"));
            A.If (check, [ A.Reject "range" ], []);
            A.Array_store ("tab", A.Var "x", A.Var "v");
            A.Return (A.Int_lit 0) ] };
    arrays = [ ("tab", count) ];
    vulnerable = (not low_checked) || hi >= count }

(* strncpy with a literal bound: copies min(len, bound) chars plus a
   NUL, so vulnerable iff bound + 1 > cap. *)
let vuln_strncpy r =
  let cap = 16 + R.below r 240 in
  let bound = cap - 2 + R.below r 5 in
  { f =
      { A.name = "gen_copy";
        params = [ A.Str_param "s" ];
        body =
          [ A.Decl_buf ("buf", cap);
            A.Strncpy ("buf", A.Var "s", A.Int_lit bound);
            A.Return (A.Int_lit 0) ] };
    arrays = [];
    vulnerable = bound + 1 > cap }

let vuln ~seed =
  let r = R.create ~seed in
  match R.below r 3 with
  | 0 -> vuln_strcpy r
  | 1 -> vuln_index r
  | _ -> vuln_strncpy r
