type bound = Minf | Fin of int | Pinf

type t = Bot | Itv of bound * bound

type cmp = Lt | Le | Gt | Ge | Eq | Ne

let top = Itv (Minf, Pinf)
let bot = Bot
let const n = Itv (Fin n, Fin n)
let range lo hi = if lo > hi then Bot else Itv (Fin lo, Fin hi)

let norm lo hi =
  match lo, hi with
  | Pinf, _ | _, Minf -> Bot
  | Fin a, Fin b when a > b -> Bot
  | _ -> Itv (lo, hi)

let of_bounds lo hi = norm lo hi

let int32_full = Itv (Fin (-0x8000_0000), Fin 0x7fff_ffff)
let nat = Itv (Fin 0, Pinf)

let is_bot t = t = Bot

let mem n = function
  | Bot -> false
  | Itv (lo, hi) ->
      (match lo with Minf -> true | Fin a -> a <= n | Pinf -> false)
      && (match hi with Pinf -> true | Fin b -> n <= b | Minf -> false)

let lo = function Bot -> invalid_arg "Interval.lo: bot" | Itv (l, _) -> l
let hi = function Bot -> invalid_arg "Interval.hi: bot" | Itv (_, h) -> h

let lo_int = function Itv (Fin a, _) -> Some a | _ -> None
let hi_int = function Itv (_, Fin b) -> Some b | _ -> None

(* bound orderings *)
let bmin a b =
  match a, b with
  | Minf, _ | _, Minf -> Minf
  | Pinf, x | x, Pinf -> x
  | Fin x, Fin y -> Fin (min x y)

let bmax a b =
  match a, b with
  | Pinf, _ | _, Pinf -> Pinf
  | Minf, x | x, Minf -> x
  | Fin x, Fin y -> Fin (max x y)

let ble a b = bmin a b = a || a = b

let join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) -> Itv (bmin l1 l2, bmax h1 h2)

let meet a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> norm (bmax l1 l2) (bmin h1 h2)

let widen old next =
  match old, next with
  | Bot, x -> x
  | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) ->
      let lo = if ble l1 l2 then l1 else Minf in
      let hi = if ble h2 h1 then h1 else Pinf in
      Itv (lo, hi)

let equal a b = a = b

let subset a b =
  match a, b with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv (l1, h1), Itv (l2, h2) -> ble l2 l1 && ble h1 h2

(* bound arithmetic; [Minf + Pinf] never arises because each sum below
   pairs two like-signed extremes of the operand intervals *)
let badd a b =
  match a, b with
  | Minf, _ | _, Minf -> Minf
  | Pinf, _ | _, Pinf -> Pinf
  | Fin x, Fin y -> Fin (x + y)

let bneg = function Minf -> Pinf | Pinf -> Minf | Fin x -> Fin (-x)

let add a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> Itv (badd l1 l2, badd h1 h2)

let neg = function
  | Bot -> Bot
  | Itv (l, h) -> Itv (bneg h, bneg l)

let sub a b = add a (neg b)

let bmul a b =
  match a, b with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Fin x, Fin y -> Fin (x * y)
  | (Pinf | Fin _), (Pinf | Fin _) ->
      (match a, b with
       | Fin x, _ when x < 0 -> Minf
       | _, Fin y when y < 0 -> Minf
       | _ -> Pinf)
  | Minf, Minf -> Pinf
  | Minf, Fin y | Fin y, Minf -> if y < 0 then Pinf else Minf
  | Minf, Pinf | Pinf, Minf -> Minf

let mul a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) ->
      let products = [ bmul l1 l2; bmul l1 h2; bmul h1 l2; bmul h1 h2 ] in
      Itv
        (List.fold_left bmin Pinf products, List.fold_left bmax Minf products)

let min_ a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> Itv (bmin l1 l2, bmin h1 h2)

let clamp_lo n t = meet t (Itv (Fin n, Pinf))
let clamp_hi n t = meet t (Itv (Minf, Fin n))

let bpred = function Fin x -> Fin (x - 1) | b -> b
let bsucc = function Fin x -> Fin (x + 1) | b -> b

let refine op a b =
  match a, b with
  | Bot, _ | _, Bot -> (Bot, Bot)
  | Itv (la, ha), Itv (lb, hb) -> (
      match op with
      | Lt -> (norm la (bmin ha (bpred hb)), norm (bmax lb (bsucc la)) hb)
      | Le -> (norm la (bmin ha hb), norm (bmax lb la) hb)
      | Gt -> (norm (bmax la (bsucc lb)) ha, norm lb (bmin hb (bpred ha)))
      | Ge -> (norm (bmax la lb) ha, norm lb (bmin hb ha))
      | Eq ->
          let m = meet a b in
          (m, m)
      | Ne -> (
          (* only singleton exclusions shave anything off *)
          let shave t = function
            | Itv (Fin x, Fin y) when x = y -> (
                match t with
                | Itv (Fin l, h) when l = x -> norm (Fin (l + 1)) h
                | Itv (l, Fin h) when h = x -> norm l (Fin (h - 1))
                | t -> t)
            | _ -> t
          in
          (shave a b, shave b a)))

let pp_bound ppf = function
  | Minf -> Format.pp_print_string ppf "-inf"
  | Pinf -> Format.pp_print_string ppf "+inf"
  | Fin n -> Format.pp_print_int ppf n

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "_|_"
  | Itv (l, h) -> Format.fprintf ppf "[%a, %a]" pp_bound l pp_bound h

let to_string t = Format.asprintf "%a" pp t
