(** CSV export {e and} import of the database (RFC-4180 quoting), so
    the statistics can be reproduced in external tooling and fed back
    in.  [parse] is a full inverse of [of_database]:
    [parse (of_database db) = Ok (Database.reports db)]. *)

val header : string

val of_report : Report.t -> string
(** One CSV line (no trailing newline). *)

val of_database : Database.t -> string
(** Header plus one line per report, ascending by ID. *)

val field_count : int

val escape : string -> string
(** Quote a field iff it contains a comma, quote, CR or newline. *)

type error = {
  line : int;    (** physical line of the offence (1-based) *)
  column : int;  (** character column on that line (1-based) *)
  field : string option;
      (** the offending field's contents, when the offence is a bad
          field rather than a syntax error *)
  message : string;
}
(** Malformed input never raises: every parsing entry point returns a
    typed error locating the offence. *)

val error_to_string : error -> string
(** ["line L, column C: message (field \"...\")"]. *)

type row = {
  start_line : int;  (** physical line the row starts on *)
  fields : (int * string) list;  (** (starting column, contents) *)
}

val parse_rows : string -> (row list, error) result
(** RFC-4180 tokenisation only — no header check, no field typing.
    Handles quoted fields with embedded commas, doubled quotes and
    raw newlines; accepts CRLF and LF row endings; rejects an
    unterminated quote, garbage after a closing quote, and a bare CR
    outside quotes. *)

val report_of_row : row -> (Report.t, error) result
(** Type one tokenised row: ragged rows and unparseable fields are
    typed errors carrying the offending field.  An empty
    [elementary_activity] field reads back as [None]. *)

val parse : string -> (Report.t list, error) result
(** Parse a [header]-led CSV document: {!parse_rows}, the header
    check, then {!report_of_row} on every row — first error wins. *)
