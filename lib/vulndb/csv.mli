(** CSV export {e and} import of the database (RFC-4180 quoting), so
    the statistics can be reproduced in external tooling and fed back
    in.  [parse] is a full inverse of [of_database]:
    [parse (of_database db) = Ok (Database.reports db)]. *)

val header : string

val of_report : Report.t -> string
(** One CSV line (no trailing newline). *)

val of_database : Database.t -> string
(** Header plus one line per report, ascending by ID. *)

val field_count : int

val escape : string -> string
(** Quote a field iff it contains a comma, quote or newline. *)

type error = { line : int; message : string }
(** [line] is the physical line the offending row starts on. *)

val parse : string -> (Report.t list, error) result
(** Parse a [header]-led CSV document.  Handles quoted fields with
    embedded commas, doubled quotes and raw newlines; accepts CRLF
    and LF row endings; an empty [elementary_activity] field reads
    back as [None]. *)
