(** CSV export of the database (RFC-4180 quoting), so the statistics
    can be reproduced in external tooling. *)

val header : string

val of_report : Report.t -> string
(** One CSV line (no trailing newline). *)

val of_database : Database.t -> string
(** Header plus one line per report, ascending by ID. *)

val field_count : int

val escape : string -> string
(** Quote a field iff it contains a comma, quote or newline. *)
