let synthetic_id_base = 100_000

let legacy_total = Category.total_reports

(* Flaw mechanism targets per category at the legacy total.  Family
   total: 700 + 150 + 60 + 50 + 250 + 100 = 1310 of 5925 = 22.1%, the
   paper's "22% of all vulnerabilities". *)
let flaw_quota = function
  | Category.Boundary_condition_error ->
      [ (Report.Stack_buffer_overflow, 700); (Report.Heap_overflow, 150);
        (Report.Integer_overflow, 60) ]
  | Category.Input_validation_error ->
      [ (Report.Format_string, 250); (Report.Path_traversal, 300) ]
  | Category.Failure_to_handle_exceptional_conditions ->
      [ (Report.Integer_overflow, 50) ]
  | Category.Race_condition_error -> [ (Report.File_race, 100) ]
  | Category.Access_validation_error
  | Category.Atomicity_error
  | Category.Configuration_error
  | Category.Design_error
  | Category.Environment_error
  | Category.Origin_validation_error
  | Category.Serialization_error
  | Category.Unknown -> []

let software_pool =
  [| "AcmeHTTPd"; "OpenLPD"; "MegaFTPd"; "QuickIMAPd"; "NetTelnetd"; "FastDNSd";
     "ProxyCacheD"; "MailRelayd"; "WebCartPro"; "StatCGI"; "AuthGate"; "NewsSpool";
     "PrintSrv"; "IRCore"; "TimeSyncd"; "DirIndexer"; "FormMailer"; "ChatServ";
     "LogRotated"; "BackupMgr" |]

let flaw_phrase = function
  | Report.Stack_buffer_overflow -> "Buffer Overflow Vulnerability"
  | Report.Heap_overflow -> "Heap Corruption Vulnerability"
  | Report.Integer_overflow -> "Signed Integer Overflow Vulnerability"
  | Report.Format_string -> "Format String Vulnerability"
  | Report.File_race -> "Temporary File Race Condition Vulnerability"
  | Report.Path_traversal -> "Directory Traversal Vulnerability"
  | Report.Other_flaw -> "Vulnerability"

let category_phrase c =
  match c with
  | Category.Access_validation_error -> "Access Validation"
  | Category.Atomicity_error -> "Partial Update"
  | Category.Boundary_condition_error -> "Boundary Condition"
  | Category.Configuration_error -> "Default Configuration"
  | Category.Design_error -> "Design"
  | Category.Environment_error -> "Environment Interaction"
  | Category.Failure_to_handle_exceptional_conditions -> "Exception Handling"
  | Category.Input_validation_error -> "Input Validation"
  | Category.Origin_validation_error -> "Origin Validation"
  | Category.Race_condition_error -> "Race Condition"
  | Category.Serialization_error -> "Serialization"
  | Category.Unknown -> "Unspecified"

let date_of rng =
  Printf.sprintf "%04d-%02d-%02d"
    (Prng.in_range rng ~low:1998 ~high:2002)
    (Prng.in_range rng ~low:1 ~high:12)
    (Prng.in_range rng ~low:1 ~high:28)

let synth_report rng ~id ~category ~flaw =
  let software =
    Printf.sprintf "%s %d.%d" (Prng.pick rng software_pool)
      (Prng.in_range rng ~low:0 ~high:4)
      (Prng.in_range rng ~low:0 ~high:9)
  in
  let title =
    Printf.sprintf "%s %s %s" software (category_phrase category) (flaw_phrase flaw)
  in
  let range =
    match Prng.below rng 4 with
    | 0 -> Report.Local
    | 1 -> Report.Both
    | _ -> Report.Remote
  in
  Report.make ~id ~title ~date:(date_of rng) ~category ~software ~range ~flaw
    ~synthetic:true ()

(* ------------------------------------------------------------------ *)
(* The validated corpus plan. *)

type error =
  | Invalid_total of int
  | Invalid_chunk of int
  | Duplicate_curated_id of int
  | Id_overflow of { base : int; count : int }

let error_to_string = function
  | Invalid_total t ->
      Printf.sprintf "invalid corpus total %d: must be at least 1" t
  | Invalid_chunk c ->
      Printf.sprintf "invalid chunk size %d: must be at least 1" c
  | Duplicate_curated_id id ->
      Printf.sprintf "duplicate curated report id %d" id
  | Id_overflow { base; count } ->
      Printf.sprintf
        "synthetic id block of %d ids starting at %d overflows the id space"
        count base

type segment = {
  seg_category : Category.t;
  seg_flaw : Report.flaw;
  seg_first : int;  (* first synthetic position of this segment *)
  seg_count : int;
}

type plan = {
  target : int;
  curated : Report.t array;  (* ascending id *)
  synthetic : int;           (* synthetic positions in total *)
  segments : segment array;  (* contiguous, covering [0, synthetic) *)
  skips : int array;         (* curated ids >= synthetic_id_base, ascending *)
  digest : string;
}

(* Largest-remainder apportionment of [total] over the Figure-1
   category counts: exact at the legacy total, proportional (within
   one report) anywhere else, deterministic tie-break by category
   order. *)
let scaled_targets total =
  let cats = Array.of_list Category.all in
  let n = Array.length cats in
  let targets = Array.make n 0 and rems = Array.make n 0 in
  Array.iteri
    (fun i c ->
      let share = Category.paper_count c * total in
      targets.(i) <- share / legacy_total;
      rems.(i) <- share mod legacy_total)
    cats;
  let leftover = total - Array.fold_left ( + ) 0 targets in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare rems.(b) rems.(a) with 0 -> compare a b | c -> c)
    order;
  for k = 0 to leftover - 1 do
    let i = order.(k) in
    targets.(i) <- targets.(i) + 1
  done;
  (cats, targets)

let digest_of ~target ~curated ~segments ~skips =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "dfsm-synth-plan/1|%d|%d" target synthetic_id_base);
  Array.iter
    (fun (r : Report.t) ->
      Buffer.add_char b '|';
      Buffer.add_string b (Csv.of_report r))
    curated;
  Array.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "|%s/%s@%d+%d"
           (Category.to_string s.seg_category)
           (Report.flaw_to_string s.seg_flaw)
           s.seg_first s.seg_count))
    segments;
  Array.iter (fun id -> Buffer.add_string b (Printf.sprintf "|skip%d" id)) skips;
  Digest.to_hex (Digest.string (Buffer.contents b))

let plan ?(curated = Seed_data.reports) ~total () =
  (* [scaled_targets] multiplies paper counts by [total]; reject
     totals that could overflow that product (typed, up front). *)
  if total < 1 then Error (Invalid_total total)
  else if total > max_int / legacy_total then
    Error (Id_overflow { base = synthetic_id_base; count = total })
  else begin
    let curated =
      Array.of_list
        (List.sort (fun (a : Report.t) (b : Report.t) -> compare a.Report.id b.Report.id)
           curated)
    in
    let dup = ref None in
    Array.iteri
      (fun i (r : Report.t) ->
        if !dup = None && i > 0 && curated.(i - 1).Report.id = r.Report.id then
          dup := Some r.Report.id)
      curated;
    match !dup with
    | Some id -> Error (Duplicate_curated_id id)
    | None ->
        let curated_in category flaw_opt =
          Array.fold_left
            (fun acc (r : Report.t) ->
              if
                Category.equal r.Report.category category
                && (match flaw_opt with None -> true | Some f -> r.Report.flaw = f)
              then acc + 1
              else acc)
            0 curated
        in
        let cats, targets = scaled_targets total in
        let segments = ref [] and pos = ref 0 in
        let push category flaw count =
          if count > 0 then begin
            segments :=
              { seg_category = category; seg_flaw = flaw; seg_first = !pos;
                seg_count = count }
              :: !segments;
            pos := !pos + count
          end
        in
        Array.iteri
          (fun i category ->
            let per_flaw =
              List.map
                (fun (flaw, quota) ->
                  let scaled = quota * total / legacy_total in
                  (flaw, max 0 (scaled - curated_in category (Some flaw))))
                (flaw_quota category)
            in
            let emitted = List.fold_left (fun acc (_, n) -> acc + n) 0 per_flaw in
            let other =
              max 0 (targets.(i) - (curated_in category None + emitted))
            in
            List.iter (fun (flaw, n) -> push category flaw n) per_flaw;
            push category Report.Other_flaw other)
          cats;
        let synthetic = !pos in
        let segments = Array.of_list (List.rev !segments) in
        let skips =
          Array.of_list
            (List.filter
               (fun id -> id >= synthetic_id_base)
               (Array.to_list (Array.map (fun (r : Report.t) -> r.Report.id) curated)))
        in
        if
          synthetic > 0
          && synthetic > max_int - synthetic_id_base - Array.length skips
        then Error (Id_overflow { base = synthetic_id_base; count = synthetic })
        else
          Ok
            { target = total; curated; synthetic; segments; skips;
              digest = digest_of ~target:total ~curated ~segments ~skips }
  end

let plan_size p = Array.length p.curated + p.synthetic

let plan_synthetic p = p.synthetic

let plan_digest p = p.digest

let chunk_count p ~chunk = (plan_size p + chunk - 1) / chunk

(* Synthetic ids count up from the base, stepping over curated ids
   that live inside the block (ascending cascade: every skipped id
   shifts the rest of the block up by one). *)
let id_at p pos =
  let id = ref (synthetic_id_base + pos) in
  Array.iter (fun s -> if s <= !id then incr id) p.skips;
  !id

let seg_at p sp =
  let lo = ref 0 and hi = ref (Array.length p.segments - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let s = p.segments.(mid) in
    if sp < s.seg_first then hi := mid - 1
    else if sp >= s.seg_first + s.seg_count then lo := mid + 1
    else begin
      lo := mid;
      hi := mid
    end
  done;
  p.segments.(!lo)

let report_at p ~seed ~pos =
  let nc = Array.length p.curated in
  if pos < nc then p.curated.(pos)
  else begin
    let sp = pos - nc in
    let seg = seg_at p sp in
    let rng = Prng.create ~seed:(Par.Seed.child ~seed ~index:sp) in
    synth_report rng ~id:(id_at p sp) ~category:seg.seg_category
      ~flaw:seg.seg_flaw
  end

let chunk_reports p ~seed ~chunk ~index =
  let size = plan_size p in
  let lo = index * chunk in
  let hi = min size (lo + chunk) in
  let rec go i acc =
    if i < lo then acc else go (i - 1) (report_at p ~seed ~pos:i :: acc)
  in
  go (hi - 1) []

(* ------------------------------------------------------------------ *)
(* Streaming generation.  Every report is a pure function of
   [(plan, seed, position)], so chunks fan out over the domain pool
   and the merge is trivially deterministic: the sink sees chunk 0,
   chunk 1, ... with identical contents at any [-j] and any chunk
   size.  Only one wave of chunks is resident at a time. *)

let generate_stream ?curated ~seed ~total ~chunk f =
  if chunk < 1 then Error (Invalid_chunk chunk)
  else
    match plan ?curated ~total () with
    | Error e -> Error e
    | Ok p ->
        let n = chunk_count p ~chunk in
        let wave = max 1 (2 * Par.jobs ()) in
        let next = ref 0 in
        while !next < n do
          let count = min wave (n - !next) in
          let first = !next in
          let lists =
            Par.map ~label:"synth-stream"
              (fun i -> chunk_reports p ~seed ~chunk ~index:i)
              (Array.init count (fun k -> first + k))
          in
          Array.iteri (fun k l -> f ~index:(first + k) l) lists;
          next := first + count
        done;
        Ok (plan_size p)

let generate ~seed =
  let db = Database.empty () in
  match
    generate_stream ~seed ~total:legacy_total ~chunk:512 (fun ~index:_ rs ->
        List.iter (Database.add db) rs)
  with
  | Ok _ -> db
  | Error e -> invalid_arg ("Synth.generate: " ^ error_to_string e)
