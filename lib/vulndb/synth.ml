let synthetic_id_base = 100_000

(* Flaw mechanism targets per category.  Family total:
   700 + 150 + 60 + 50 + 250 + 100 = 1310 of 5925 = 22.1%, the
   paper's "22% of all vulnerabilities". *)
let flaw_quota = function
  | Category.Boundary_condition_error ->
      [ (Report.Stack_buffer_overflow, 700); (Report.Heap_overflow, 150);
        (Report.Integer_overflow, 60) ]
  | Category.Input_validation_error ->
      [ (Report.Format_string, 250); (Report.Path_traversal, 300) ]
  | Category.Failure_to_handle_exceptional_conditions ->
      [ (Report.Integer_overflow, 50) ]
  | Category.Race_condition_error -> [ (Report.File_race, 100) ]
  | Category.Access_validation_error
  | Category.Atomicity_error
  | Category.Configuration_error
  | Category.Design_error
  | Category.Environment_error
  | Category.Origin_validation_error
  | Category.Serialization_error
  | Category.Unknown -> []

let software_pool =
  [| "AcmeHTTPd"; "OpenLPD"; "MegaFTPd"; "QuickIMAPd"; "NetTelnetd"; "FastDNSd";
     "ProxyCacheD"; "MailRelayd"; "WebCartPro"; "StatCGI"; "AuthGate"; "NewsSpool";
     "PrintSrv"; "IRCore"; "TimeSyncd"; "DirIndexer"; "FormMailer"; "ChatServ";
     "LogRotated"; "BackupMgr" |]

let flaw_phrase = function
  | Report.Stack_buffer_overflow -> "Buffer Overflow Vulnerability"
  | Report.Heap_overflow -> "Heap Corruption Vulnerability"
  | Report.Integer_overflow -> "Signed Integer Overflow Vulnerability"
  | Report.Format_string -> "Format String Vulnerability"
  | Report.File_race -> "Temporary File Race Condition Vulnerability"
  | Report.Path_traversal -> "Directory Traversal Vulnerability"
  | Report.Other_flaw -> "Vulnerability"

let category_phrase c =
  match c with
  | Category.Access_validation_error -> "Access Validation"
  | Category.Atomicity_error -> "Partial Update"
  | Category.Boundary_condition_error -> "Boundary Condition"
  | Category.Configuration_error -> "Default Configuration"
  | Category.Design_error -> "Design"
  | Category.Environment_error -> "Environment Interaction"
  | Category.Failure_to_handle_exceptional_conditions -> "Exception Handling"
  | Category.Input_validation_error -> "Input Validation"
  | Category.Origin_validation_error -> "Origin Validation"
  | Category.Race_condition_error -> "Race Condition"
  | Category.Serialization_error -> "Serialization"
  | Category.Unknown -> "Unspecified"

let date_of rng =
  Printf.sprintf "%04d-%02d-%02d"
    (Prng.in_range rng ~low:1998 ~high:2002)
    (Prng.in_range rng ~low:1 ~high:12)
    (Prng.in_range rng ~low:1 ~high:28)

let synth_report rng ~id ~category ~flaw =
  let software =
    Printf.sprintf "%s %d.%d" (Prng.pick rng software_pool)
      (Prng.in_range rng ~low:0 ~high:4)
      (Prng.in_range rng ~low:0 ~high:9)
  in
  let title =
    Printf.sprintf "%s %s %s" software (category_phrase category) (flaw_phrase flaw)
  in
  let range =
    match Prng.below rng 4 with
    | 0 -> Report.Local
    | 1 -> Report.Both
    | _ -> Report.Remote
  in
  Report.make ~id ~title ~date:(date_of rng) ~category ~software ~range ~flaw
    ~synthetic:true ()

(* Generation is sharded per category.  Every per-category report
   count is fixed by the quotas and the curated database before a
   single PRNG draw, so each category owns a precomputed id block
   (prefix sums over [Category.all]) and a child PRNG stream split
   from the seed ([Par.Seed.child]).  Shards therefore fan out over
   the domain pool and merge into a database that is a pure function
   of [seed] — identical for any job count. *)
let generate ~seed =
  let db = Database.empty () in
  List.iter (Database.add db) Seed_data.reports;
  let curated_in category flaw_opt =
    List.length
      (List.filter
         (fun (rep : Report.t) ->
            Category.equal rep.Report.category category
            && (match flaw_opt with
                | None -> true
                | Some f -> rep.Report.flaw = f))
         Seed_data.reports)
  in
  (* emission plan per category: (flaw, count) in emission order *)
  let plan_for category =
    let per_flaw =
      List.map
        (fun (flaw, quota) ->
          (flaw, max 0 (quota - curated_in category (Some flaw))))
        (flaw_quota category)
    in
    let emitted = List.fold_left (fun acc (_, n) -> acc + n) 0 per_flaw in
    let target = Category.paper_count category in
    let other = max 0 (target - (curated_in category None + emitted)) in
    per_flaw @ [ (Report.Other_flaw, other) ]
  in
  let categories = Array.of_list Category.all in
  let plans = Array.map plan_for categories in
  let plan_total plan = List.fold_left (fun acc (_, n) -> acc + n) 0 plan in
  let bases = Array.make (Array.length categories) synthetic_id_base in
  let acc = ref synthetic_id_base in
  Array.iteri
    (fun i plan ->
      bases.(i) <- !acc;
      acc := !acc + plan_total plan)
    plans;
  let shard i =
    let category = categories.(i) in
    let rng = Prng.create ~seed:(Par.Seed.child ~seed ~index:i) in
    let next = ref bases.(i) in
    List.concat_map
      (fun (flaw, n) ->
        (* explicit recursion: ids and PRNG draws must advance in
           emission order (List.init leaves the order unspecified) *)
        let rec emit k acc =
          if k = 0 then List.rev acc
          else begin
            let id = !next in
            incr next;
            emit (k - 1) (synth_report rng ~id ~category ~flaw :: acc)
          end
        in
        emit n [])
      plans.(i)
  in
  let shards = Par.map shard (Array.init (Array.length categories) Fun.id) in
  Array.iter (List.iter (Database.add db)) shards;
  db
