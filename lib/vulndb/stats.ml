type row = {
  category : Category.t;
  count : int;
  percent : float;
  rounded : int;
  paper_percent : int;
}

let breakdown db =
  let total = float_of_int (Database.size db) in
  let row category =
    let count = List.length (Database.by_category db category) in
    let percent = 100.0 *. float_of_int count /. total in
    { category; count; percent;
      rounded = int_of_float (Float.round percent);
      paper_percent = Category.paper_percent category }
  in
  Category.all
  |> List.map row
  |> List.sort (fun a b -> compare b.count a.count)

let matches_paper db =
  List.for_all (fun r -> r.rounded = r.paper_percent) (breakdown db)

let family_count db =
  Database.count db (fun r -> Report.studied_family r.Report.flaw)

let family_share db =
  100.0 *. float_of_int (family_count db) /. float_of_int (Database.size db)

let flaw_breakdown db =
  let flaws =
    [ Report.Stack_buffer_overflow; Report.Heap_overflow; Report.Integer_overflow;
      Report.Format_string; Report.File_race; Report.Path_traversal; Report.Other_flaw ]
  in
  flaws
  |> List.map (fun f -> (f, Database.count db (fun r -> r.Report.flaw = f)))
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp_breakdown ppf db =
  Format.fprintf ppf "@[<v>%-44s %8s %8s %8s@," "category" "count" "ours%" "paper%";
  List.iter
    (fun r ->
       Format.fprintf ppf "%-44s %8d %7.1f%% %7d%%@,"
         (Category.to_string r.category) r.count r.percent r.paper_percent)
    (breakdown db);
  Format.fprintf ppf "%-44s %8d@," "total" (Database.size db);
  Format.fprintf ppf "studied family (overflow/integer/format/race): %d reports = %.1f%% \
                      (paper: 22%%)@,"
    (family_count db) (family_share db);
  Format.fprintf ppf "@]"
