type t = { table : (int, Report.t) Hashtbl.t }

let empty () = { table = Hashtbl.create 1024 }

let add t (r : Report.t) =
  if Hashtbl.mem t.table r.Report.id then
    invalid_arg (Printf.sprintf "Database.add: duplicate report id %d" r.Report.id);
  Hashtbl.replace t.table r.Report.id r

let of_reports rs =
  let t = empty () in
  List.iter (add t) rs;
  t

let find t id = Hashtbl.find_opt t.table id

let find_exn t id =
  match find t id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database.find_exn: no report %d" id)

let size t = Hashtbl.length t.table

let reports t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun (a : Report.t) b -> compare a.Report.id b.Report.id)

let filter t p = List.filter p (reports t)

let by_category t c = filter t (fun r -> Category.equal r.Report.category c)

let count t p = Hashtbl.fold (fun _ r acc -> if p r then acc + 1 else acc) t.table 0

let curated t = filter t (fun r -> not r.Report.synthetic)
