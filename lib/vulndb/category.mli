(** The twelve Bugtraq vulnerability classes of Figure 1, with the
    definitions the figure gives and the percentages the paper
    reports for the 5925-report snapshot of 2002-11-30. *)

type t =
  | Access_validation_error
  | Atomicity_error
  | Boundary_condition_error
  | Configuration_error
  | Design_error
  | Environment_error
  | Failure_to_handle_exceptional_conditions
  | Input_validation_error
  | Origin_validation_error
  | Race_condition_error
  | Serialization_error
  | Unknown

val all : t list

val to_string : t -> string

val of_string : string -> t option

val definition : t -> string
(** The definition box of Figure 1 (empty for the undefined ones). *)

val paper_percent : t -> int
(** The (rounded) share Figure 1 reports. *)

val paper_count : t -> int
(** Integer counts summing to exactly 5925 whose rounded shares
    reproduce {!paper_percent}. *)

val total_reports : int
(** 5925 — the database size on 2002-11-30. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
