(** The statistics engine behind Figure 1 and the 22% claim. *)

type row = {
  category : Category.t;
  count : int;
  percent : float;
  rounded : int;
  paper_percent : int;
}

val breakdown : Database.t -> row list
(** All twelve categories, descending by count. *)

val matches_paper : Database.t -> bool
(** Every category's rounded share equals Figure 1's. *)

val family_count : Database.t -> int
(** Reports in the studied family (buffer/heap/integer/format/race). *)

val family_share : Database.t -> float
(** Their share of the database — the paper reports 22%. *)

val flaw_breakdown : Database.t -> (Report.flaw * int) list
(** Descending by count. *)

val pp_breakdown : Format.formatter -> Database.t -> unit
(** Figure 1 as a console table: ours vs the paper's percentages. *)
