(** Deterministic synthetic population of the database, at any scale.

    The paper's Figure 1 depends only on the per-category counts of
    the 2002-11-30 Bugtraq snapshot, which {!Category.paper_count}
    fixes.  [generate] embeds the curated reports and fills every
    category up to its count with clearly-marked synthetic reports,
    assigning flaw mechanisms so the studied family (stack/heap
    overflow, integer overflow, format string, file race) lands at
    the paper's 22% of the total.

    Beyond the paper's 5925 reports, a {!plan} scales the Figure-1
    distribution to an arbitrary [total] (largest-remainder
    apportionment of the category shares, flaw quotas scaled
    proportionally) and lays the whole corpus out as a pure function
    of position: report [pos] of a plan draws from its own
    {!Par.Seed.child} PRNG stream, so any chunking of the position
    space — at any job count — yields byte-identical reports.  The
    plan is validated up front: duplicate curated ids and id-space
    overflow are typed {!error}s instead of a [Database.add] crash
    deep inside a worker, and synthetic id assignment skips over any
    curated id that falls inside the synthetic block (the stock data
    has two, 900001 and 900002, which a million-report corpus
    overlaps). *)

type error =
  | Invalid_total of int      (** requested corpus size below 1 *)
  | Invalid_chunk of int      (** chunk size below 1 *)
  | Duplicate_curated_id of int
  | Id_overflow of { base : int; count : int }
      (** the synthetic block starting at [base] cannot fit [count]
          ids below [max_int] *)

val error_to_string : error -> string

type plan
(** A validated corpus layout: curated reports first (ascending id),
    then every synthetic (category, flaw) segment at its precomputed
    position range.  Pure data — generation needs only [plan], [seed]
    and a position. *)

val plan : ?curated:Report.t list -> total:int -> unit -> (plan, error) result
(** Lay out a corpus of [total] reports scaled from the Figure-1
    distribution.  [curated] defaults to {!Seed_data.reports}.  When a
    category holds more curated reports than its scaled share the
    extras are kept (never dropped), so {!plan_size} can exceed
    [total] by at most the curated count. *)

val plan_size : plan -> int
(** Reports in the corpus: curated plus synthetic. *)

val plan_synthetic : plan -> int

val plan_digest : plan -> string
(** Hex digest of the full layout (targets, segments, curated rows,
    skipped ids) — a cache key component; independent of [seed]. *)

val chunk_count : plan -> chunk:int -> int

val id_at : plan -> int -> int
(** The report id at synthetic position [pos]: ids count up from
    {!synthetic_id_base}, skipping curated ids inside the block. *)

val report_at : plan -> seed:int -> pos:int -> Report.t
(** The report at corpus position [pos] (curated first, then
    synthetic) — a pure function of [(plan, seed, pos)]. *)

val chunk_reports : plan -> seed:int -> chunk:int -> index:int -> Report.t list
(** Positions [[index*chunk, min (plan_size) ((index+1)*chunk))]. *)

val generate_stream :
  ?curated:Report.t list ->
  seed:int ->
  total:int ->
  chunk:int ->
  (index:int -> Report.t list -> unit) ->
  (int, error) result
(** Stream the corpus through the sink chunk by chunk, in index
    order, generating waves of chunks on the {!Par} pool; at most one
    wave (a few chunks per job) is resident at a time.  Returns the
    number of reports streamed.  The sink runs on the calling domain. *)

val generate : seed:int -> Database.t
(** The legacy corpus: a 5925-report database; same seed, same
    database, at any [-j]. *)

val legacy_total : int
(** 5925 — {!Category.total_reports}, the corpus size of the paper. *)

val flaw_quota : Category.t -> (Report.flaw * int) list
(** Target number of synthetic+curated reports of each non-[Other]
    flaw inside a category, at the legacy total. *)

val synthetic_id_base : int
(** All generated IDs are at or above this (100000), far from real
    Bugtraq IDs of the era. *)
