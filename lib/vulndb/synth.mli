(** Deterministic synthetic population of the database.

    The paper's Figure 1 depends only on the per-category counts of
    the 2002-11-30 Bugtraq snapshot, which {!Category.paper_count}
    fixes.  [generate] embeds the curated reports and fills every
    category up to its count with clearly-marked synthetic reports,
    assigning flaw mechanisms so the studied family (stack/heap
    overflow, integer overflow, format string, file race) lands at
    the paper's 22% of the total. *)

val generate : seed:int -> Database.t
(** A 5925-report database; same seed, same database. *)

val flaw_quota : Category.t -> (Report.flaw * int) list
(** Target number of synthetic+curated reports of each non-[Other]
    flaw inside a category. *)

val synthetic_id_base : int
(** All generated IDs are at or above this (100000), far from real
    Bugtraq IDs of the era. *)
