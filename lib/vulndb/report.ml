type range = Remote | Local | Both

type flaw =
  | Stack_buffer_overflow
  | Heap_overflow
  | Integer_overflow
  | Format_string
  | File_race
  | Path_traversal
  | Other_flaw

type t = {
  id : int;
  title : string;
  date : string;
  category : Category.t;
  software : string;
  range : range;
  flaw : flaw;
  elementary_activity : string option;
  description : string;
  synthetic : bool;
}

let make ~id ~title ~date ~category ~software ?(range = Remote) ?(flaw = Other_flaw)
    ?elementary_activity ?(description = "") ?(synthetic = false) () =
  { id; title; date; category; software; range; flaw; elementary_activity;
    description; synthetic }

let studied_family = function
  | Stack_buffer_overflow | Heap_overflow | Integer_overflow | Format_string | File_race ->
      true
  | Path_traversal | Other_flaw -> false

let range_to_string = function
  | Remote -> "remote"
  | Local -> "local"
  | Both -> "remote+local"

let flaw_to_string = function
  | Stack_buffer_overflow -> "stack buffer overflow"
  | Heap_overflow -> "heap overflow"
  | Integer_overflow -> "integer overflow"
  | Format_string -> "format string"
  | File_race -> "file race condition"
  | Path_traversal -> "path traversal"
  | Other_flaw -> "other"

let all_ranges = [ Remote; Local; Both ]

let range_of_string s =
  List.find_opt (fun r -> String.equal (range_to_string r) s) all_ranges

let all_flaws =
  [ Stack_buffer_overflow; Heap_overflow; Integer_overflow; Format_string;
    File_race; Path_traversal; Other_flaw ]

let flaw_of_string s =
  List.find_opt (fun f -> String.equal (flaw_to_string f) s) all_flaws

let pp ppf t =
  Format.fprintf ppf "#%d %s [%s] (%s, %s)" t.id t.title
    (Category.to_string t.category) t.software (range_to_string t.range)
