(** Per-year series over the database: how the report volume and the
    studied family evolve across the 1998-2002 window the synthetic
    population covers. *)

val per_year : Database.t -> (int * int) list
(** (year, reports) ascending by year; years with no report omitted. *)

val family_per_year : Database.t -> (int * int) list

val category_per_year : Database.t -> Category.t -> (int * int) list

val pp_series : Format.formatter -> (int * int) list -> unit
(** A console bar chart (one row per year). *)
