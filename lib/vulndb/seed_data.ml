let xterm_id = 900001

let rwall_id = 900002

let r = Report.make

let reports =
  [ r ~id:3163 ~title:"Sendmail Debugging Function Signed Integer Overflow Vulnerability"
      ~date:"2001-08-17" ~category:Category.Input_validation_error ~software:"Sendmail"
      ~range:Report.Local ~flaw:Report.Integer_overflow
      ~elementary_activity:"Get an input integer"
      ~description:
        "A negative input integer accepted as an array index; tTvect[x] write in tTflag() \
         underflows the array and can rewrite the GOT entry of setuid()."
      ();
    r ~id:5493 ~title:"FreeBSD System Call Signed Integer Buffer Overflow Vulnerability"
      ~date:"2002-08-12" ~category:Category.Boundary_condition_error ~software:"FreeBSD"
      ~range:Report.Local ~flaw:Report.Integer_overflow
      ~elementary_activity:"Use the integer as the index to an array"
      ~description:
        "A negative value supplied for the argument allows exceeding the boundary of an \
         array."
      ();
    r ~id:3958 ~title:"rsync Signed Array Index Remote Code Execution Vulnerability"
      ~date:"2002-01-24" ~category:Category.Access_validation_error ~software:"rsync"
      ~flaw:Report.Integer_overflow
      ~elementary_activity:"Execute a code referred by a function pointer or a return address"
      ~description:
        "A remotely supplied signed value used as an array index, allowing the corruption \
         of a function pointer or a return address."
      ();
    r ~id:6157 ~title:"Buffer overflow reported against the input-reading path"
      ~date:"2002-11-01" ~category:Category.Input_validation_error ~software:"(unnamed server)"
      ~flaw:Report.Stack_buffer_overflow
      ~elementary_activity:"Get input string"
      ~description:"Cited by the paper as a buffer overflow classified at activity 1."
      ();
    r ~id:5960 ~title:"GHTTPD Log() Function Buffer Overflow Vulnerability"
      ~date:"2002-10-28" ~category:Category.Boundary_condition_error ~software:"GHTTPD"
      ~flaw:Report.Stack_buffer_overflow
      ~elementary_activity:"Copy the string to a buffer"
      ~description:
        "A 200-byte stack buffer in Log() is overflowed by an oversized request, \
         overwriting the saved return address."
      ();
    r ~id:4479 ~title:"Buffer overflow reported against post-buffer data handling"
      ~date:"2002-04-10"
      ~category:Category.Failure_to_handle_exceptional_conditions
      ~software:"(unnamed server)" ~flaw:Report.Stack_buffer_overflow
      ~elementary_activity:"Handle data (e.g. return address) following the buffer"
      ~description:"Cited by the paper as a buffer overflow classified at activity 3."
      ();
    r ~id:1387 ~title:"Wu-Ftpd Remote Format String Stack Overwrite Vulnerability"
      ~date:"2000-06-22" ~category:Category.Input_validation_error ~software:"wu-ftpd"
      ~flaw:Report.Format_string
      ~elementary_activity:"Get input string"
      ~description:"SITE EXEC input containing format directives reaches *printf." ();
    r ~id:2210 ~title:"Splitvt Format String Vulnerability"
      ~date:"2001-01-09" ~category:Category.Access_validation_error ~software:"splitvt"
      ~range:Report.Local ~flaw:Report.Format_string
      ~elementary_activity:"Use the string as a format argument"
      ~description:"Format directives in arguments reach a logging printf." ();
    r ~id:2264 ~title:"Icecast Print_Client() Format String Vulnerability"
      ~date:"2001-01-29" ~category:Category.Boundary_condition_error ~software:"icecast"
      ~flaw:Report.Format_string
      ~elementary_activity:"Write formatted output to a buffer"
      ~description:"print_client() passes client data as the format string." ();
    r ~id:5774 ~title:"Null HTTPD Remote Heap Overflow Vulnerability"
      ~date:"2002-09-23" ~category:Category.Boundary_condition_error ~software:"Null HTTPD 0.5"
      ~flaw:Report.Heap_overflow
      ~elementary_activity:"Copy the oversized user input to a heap buffer"
      ~description:
        "Negative Content-Length makes calloc(contentLen+1024) undersized while at least \
         1024 bytes are copied, overflowing into the following free chunk."
      ();
    r ~id:6255 ~title:"Null HTTPD ReadPOSTData Remote Heap Overflow Vulnerability"
      ~date:"2002-11-21" ~category:Category.Boundary_condition_error
      ~software:"Null HTTPD 0.5.1" ~flaw:Report.Heap_overflow
      ~elementary_activity:"Copy the string to a buffer"
      ~description:
        "Discovered by the paper's authors while constructing the FSM model of #5774: a \
         logic error (|| instead of &&) in the recv loop of ReadPOSTData lets a correct \
         contentLen with an oversized body overflow PostData."
      ();
    r ~id:1480 ~title:"Multiple Linux Vendor rpc.statd Remote Format String Vulnerability"
      ~date:"2000-07-16" ~category:Category.Input_validation_error ~software:"rpc.statd"
      ~flaw:Report.Format_string
      ~elementary_activity:"Pass the filename to syslog as a format string"
      ~description:"User-controlled data is used as the format argument of syslog()." ();
    r ~id:2708 ~title:"Microsoft IIS CGI Filename Decode Error Vulnerability"
      ~date:"2001-05-15" ~category:Category.Input_validation_error ~software:"Microsoft IIS"
      ~flaw:Report.Path_traversal
      ~elementary_activity:"Decode the filename after applying security checks"
      ~description:
        "IIS decodes the CGI filename a second time after the \"../\" check; \"..%252f\" \
         escapes /wwwroot/scripts.  Actively exploited by the Nimda worm."
      ();
    r ~id:xterm_id ~title:"Xterm Log File Race Condition (CERT CA-1993-17)"
      ~date:"1993-11-11" ~category:Category.Race_condition_error ~software:"xterm"
      ~range:Report.Local ~flaw:Report.File_race
      ~elementary_activity:"Open the log file after checking it"
      ~description:
        "Between xterm's access check on the user log file and the open, the user can \
         replace the file with a symlink to /etc/passwd."
      ();
    r ~id:rwall_id ~title:"Solaris Rwall Arbitrary File Corruption (CERT CA-1994-06)"
      ~date:"1994-03-03" ~category:Category.Access_validation_error ~software:"rwalld"
      ~flaw:Report.Path_traversal
      ~elementary_activity:"Write user message to the terminal or file"
      ~description:
        "World-writable /etc/utmp lets any user add \"../etc/passwd\"; rwalld writes the \
         broadcast message to it without checking the file is a terminal."
      () ]

let table1 =
  List.filter (fun (rep : Report.t) -> List.mem rep.Report.id [ 3163; 5493; 3958 ]) reports

let database () = Database.of_reports reports
