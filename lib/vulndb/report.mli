(** One vulnerability report, after the fields of a Bugtraq entry the
    paper relies on (Section 3.1): ID, title, date, category, the
    affected software, and — for the reports the paper analyses in
    depth — the elementary activity the category was assigned
    against, plus the underlying flaw mechanism used for the studied-
    family statistics. *)

type range = Remote | Local | Both

type flaw =
  | Stack_buffer_overflow
  | Heap_overflow
  | Integer_overflow
  | Format_string
  | File_race
  | Path_traversal
  | Other_flaw

type t = {
  id : int;
  title : string;
  date : string;                       (** YYYY-MM-DD *)
  category : Category.t;
  software : string;
  range : range;
  flaw : flaw;
  elementary_activity : string option; (** the analyst's reference point *)
  description : string;
  synthetic : bool;                    (** generated, not curated *)
}

val make :
  id:int ->
  title:string ->
  date:string ->
  category:Category.t ->
  software:string ->
  ?range:range ->
  ?flaw:flaw ->
  ?elementary_activity:string ->
  ?description:string ->
  ?synthetic:bool ->
  unit ->
  t

val studied_family : flaw -> bool
(** Membership in the family the paper models: buffer overflow (stack
    and heap), signed integer overflow, format string, file race —
    the 22% claim of the introduction. *)

val range_to_string : range -> string

val range_of_string : string -> range option
(** Inverse of {!range_to_string}. *)

val flaw_to_string : flaw -> string

val flaw_of_string : string -> flaw option
(** Inverse of {!flaw_to_string}. *)

val pp : Format.formatter -> t -> unit
