(** Queries over the report database — the lookups the paper's
    analysis workflow needs (find the reports about one program,
    one mechanism, one period). *)

val by_software : Database.t -> string -> Report.t list
(** Case-insensitive substring match on the software field. *)

val by_flaw : Database.t -> Report.flaw -> Report.t list

val by_range : Database.t -> Report.range -> Report.t list

val by_year : Database.t -> int -> Report.t list

val between : Database.t -> since:string -> until:string -> Report.t list
(** Inclusive ISO-date interval (lexicographic comparison is exact
    for YYYY-MM-DD). *)

val text_search : Database.t -> string -> Report.t list
(** Case-insensitive substring search over title and description. *)

val remote_share : Database.t -> float
(** Percentage of reports exploitable remotely (counting [Both]). *)

val year_of : Report.t -> int
