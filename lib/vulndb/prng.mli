(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic element of the reproduction — synthetic report
    generation, witness-domain sampling — draws from this generator
    so that runs are bit-for-bit repeatable from a seed. *)

type t

val create : seed:int -> t

val next : t -> int
(** Uniform non-negative 62-bit value. *)

val below : t -> int -> int
(** Uniform in [\[0, bound)]; [bound] must be positive. *)

val in_range : t -> low:int -> high:int -> int
(** Uniform in [\[low, high\]]. *)

val pick : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
