(** The curated reports the paper analyses or cites.

    IDs below 10000 are genuine Bugtraq IDs quoted in the paper.  The
    two advisories that predate Bugtraq's numbering (the xterm log
    race and the Solaris rwall corruption, known from CERT advisories)
    carry IDs in the 900000 range so they cannot collide with either
    real or synthetic IDs. *)

val xterm_id : int

val rwall_id : int

val reports : Report.t list

val table1 : Report.t list
(** Exactly the three signed-integer-overflow reports of Table 1, in
    the paper's order (#3163, #5493, #3958). *)

val database : unit -> Database.t
