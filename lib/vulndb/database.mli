(** A queryable store of vulnerability reports. *)

type t

val empty : unit -> t

val of_reports : Report.t list -> t

val add : t -> Report.t -> unit
(** Raises [Invalid_argument] on a duplicate ID. *)

val find : t -> int -> Report.t option

val find_exn : t -> int -> Report.t

val size : t -> int

val reports : t -> Report.t list
(** All reports, ascending by ID. *)

val by_category : t -> Category.t -> Report.t list

val filter : t -> (Report.t -> bool) -> Report.t list

val count : t -> (Report.t -> bool) -> int

val curated : t -> Report.t list
(** The non-synthetic reports. *)
