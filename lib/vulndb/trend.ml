let tally db keep =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun r ->
       if keep r then begin
         let year = Query.year_of r in
         Hashtbl.replace counts year
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts year))
       end)
    (Database.reports db);
  Hashtbl.fold (fun y n acc -> (y, n) :: acc) counts []
  |> List.sort compare

let per_year db = tally db (fun _ -> true)

let family_per_year db = tally db (fun r -> Report.studied_family r.Report.flaw)

let category_per_year db category =
  tally db (fun r -> Category.equal r.Report.category category)

let pp_series ppf series =
  let peak = List.fold_left (fun acc (_, n) -> max acc n) 1 series in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (year, n) ->
       let width = n * 50 / peak in
       Format.fprintf ppf "%4d %6d %s@." year n (String.make width '#'))
    series;
  Format.fprintf ppf "@]"
