let lowercase = String.lowercase_ascii

let contains ~needle haystack =
  let needle = lowercase needle and haystack = lowercase haystack in
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0

let by_software db s =
  Database.filter db (fun r -> contains ~needle:s r.Report.software)

let by_flaw db flaw = Database.filter db (fun r -> r.Report.flaw = flaw)

let by_range db range = Database.filter db (fun r -> r.Report.range = range)

let year_of (r : Report.t) =
  match int_of_string_opt (String.sub r.Report.date 0 4) with
  | Some y -> y
  | None -> 0

let by_year db year = Database.filter db (fun r -> year_of r = year)

let between db ~since ~until =
  Database.filter db (fun r -> r.Report.date >= since && r.Report.date <= until)

let text_search db text =
  Database.filter db (fun r ->
      contains ~needle:text r.Report.title
      || contains ~needle:text r.Report.description)

let remote_share db =
  let remote =
    Database.count db (fun r ->
        match r.Report.range with
        | Report.Remote | Report.Both -> true
        | Report.Local -> false)
  in
  100.0 *. float_of_int remote /. float_of_int (max 1 (Database.size db))
