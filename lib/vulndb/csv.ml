let field_count = 9

let header = "id,title,date,category,software,range,flaw,synthetic,description"

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let of_report (r : Report.t) =
  String.concat ","
    [ string_of_int r.Report.id;
      escape r.Report.title;
      r.Report.date;
      escape (Category.to_string r.Report.category);
      escape r.Report.software;
      Report.range_to_string r.Report.range;
      escape (Report.flaw_to_string r.Report.flaw);
      string_of_bool r.Report.synthetic;
      escape r.Report.description ]

let of_database db =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
       Buffer.add_string b (of_report r);
       Buffer.add_char b '\n')
    (Database.reports db);
  Buffer.contents b
