let field_count = 10

let header =
  "id,title,date,category,software,range,flaw,synthetic,elementary_activity,description"

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let of_report (r : Report.t) =
  String.concat ","
    [ string_of_int r.Report.id;
      escape r.Report.title;
      r.Report.date;
      escape (Category.to_string r.Report.category);
      escape r.Report.software;
      Report.range_to_string r.Report.range;
      escape (Report.flaw_to_string r.Report.flaw);
      string_of_bool r.Report.synthetic;
      escape (Option.value r.Report.elementary_activity ~default:"");
      escape r.Report.description ]

let of_database db =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
       Buffer.add_string b (of_report r);
       Buffer.add_char b '\n')
    (Database.reports db);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing. *)

type error = { line : int; message : string }

exception Parse_error of error

let fail ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* RFC-4180 tokeniser: rows of fields, quotes escape commas, quote
   pairs and raw newlines.  [line] tracks the physical line each row
   starts on, for error messages. *)
let rows_of_string s =
  let len = String.length s in
  let rows = ref [] and fields = ref [] and buf = Buffer.create 64 in
  let line = ref 1 and row_line = ref 1 in
  let push_field () = fields := Buffer.contents buf :: !fields; Buffer.clear buf in
  let push_row () =
    push_field ();
    rows := (!row_line, List.rev !fields) :: !rows;
    fields := [];
    row_line := !line
  in
  (* state: [`Start] of field, [`Bare] unquoted, [`Quoted], or
     [`Closed] just after a closing quote. *)
  let rec go i state =
    if i >= len then begin
      (match state with
       | `Quoted -> fail ~line:!row_line "unterminated quoted field"
       | `Start when !fields = [] && Buffer.length buf = 0 -> ()  (* no final row *)
       | `Start | `Bare | `Closed -> push_row ())
    end
    else
      let c = s.[i] in
      if c = '\n' then incr line;
      match state, c with
      | `Quoted, '"' -> go (i + 1) `Closed
      | `Quoted, c -> Buffer.add_char buf c; go (i + 1) `Quoted
      | `Closed, '"' -> Buffer.add_char buf '"'; go (i + 1) `Quoted
      | (`Start | `Bare | `Closed), ',' -> push_field (); go (i + 1) `Start
      | (`Start | `Bare | `Closed), '\n' -> push_row (); go (i + 1) `Start
      | (`Start | `Bare | `Closed), '\r'
        when i + 1 < len && s.[i + 1] = '\n' ->
          incr line; push_row (); go (i + 2) `Start
      | `Start, '"' -> go (i + 1) `Quoted
      | `Closed, _ -> fail ~line:!line "garbage after closing quote"
      | (`Start | `Bare), c -> Buffer.add_char buf c; go (i + 1) `Bare
  in
  go 0 `Start;
  List.rev !rows

let report_of_fields ~line fields =
  match fields with
  | [ id; title; date; category; software; range; flaw; synthetic;
      elementary_activity; description ] ->
      let id =
        match int_of_string_opt id with
        | Some id -> id
        | None -> fail ~line "bad id %S" id
      in
      let category =
        match Category.of_string category with
        | Some c -> c
        | None -> fail ~line "unknown category %S" category
      in
      let range =
        match Report.range_of_string range with
        | Some r -> r
        | None -> fail ~line "unknown range %S" range
      in
      let flaw =
        match Report.flaw_of_string flaw with
        | Some f -> f
        | None -> fail ~line "unknown flaw %S" flaw
      in
      let synthetic =
        match bool_of_string_opt synthetic with
        | Some b -> b
        | None -> fail ~line "bad synthetic flag %S" synthetic
      in
      Report.make ~id ~title ~date ~category ~software ~range ~flaw
        ?elementary_activity:
          (if elementary_activity = "" then None else Some elementary_activity)
        ~description ~synthetic ()
  | fields -> fail ~line "expected %d fields, got %d" field_count (List.length fields)

let parse s =
  match rows_of_string s with
  | exception Parse_error e -> Error e
  | [] -> Error { line = 1; message = "empty input: missing header" }
  | (line, hd) :: rows ->
      if String.concat "," (List.map escape hd) <> header then
        Error { line; message = "bad header" }
      else begin
        match List.map (fun (line, fields) -> report_of_fields ~line fields) rows with
        | reports -> Ok reports
        | exception Parse_error e -> Error e
      end
