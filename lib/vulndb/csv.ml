let field_count = 10

let header =
  "id,title,date,category,software,range,flaw,synthetic,elementary_activity,description"

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let of_report (r : Report.t) =
  String.concat ","
    [ string_of_int r.Report.id;
      escape r.Report.title;
      r.Report.date;
      escape (Category.to_string r.Report.category);
      escape r.Report.software;
      Report.range_to_string r.Report.range;
      escape (Report.flaw_to_string r.Report.flaw);
      string_of_bool r.Report.synthetic;
      escape (Option.value r.Report.elementary_activity ~default:"");
      escape r.Report.description ]

let of_database db =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
       Buffer.add_string b (of_report r);
       Buffer.add_char b '\n')
    (Database.reports db);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing. *)

type error = {
  line : int;
  column : int;
  field : string option;
  message : string;
}

let error_to_string e =
  Printf.sprintf "line %d, column %d: %s%s" e.line e.column e.message
    (match e.field with
     | Some f -> Printf.sprintf " (field %S)" f
     | None -> "")

type row = { start_line : int; fields : (int * string) list }

exception Parse_error of error

let fail ~line ~column ?field fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { line; column; field; message }))
    fmt

(* RFC-4180 tokeniser: rows of fields, quotes escape commas, quote
   pairs and raw newlines.  Tracks the physical (line, column) of
   every character and the starting position of every field, so
   errors — here and in the typed layer above — point at the
   offence. *)
let rows_of_string s =
  let len = String.length s in
  let rows = ref [] and fields = ref [] and buf = Buffer.create 64 in
  let line = ref 1 and col = ref 1 in
  let row_line = ref 1 in
  let field_col = ref 1 in
  (* position of the opening quote of the field being read *)
  let quote_line = ref 1 and quote_col = ref 1 in
  let push_field () =
    fields := (!field_col, Buffer.contents buf) :: !fields;
    Buffer.clear buf
  in
  let push_row () =
    push_field ();
    rows := { start_line = !row_line; fields = List.rev !fields } :: !rows;
    fields := []
  in
  let advance c =
    if c = '\n' then begin incr line; col := 1 end else incr col
  in
  (* state: [`Start] of field, [`Bare] unquoted, [`Quoted], or
     [`Closed] just after a closing quote. *)
  let rec go i state =
    if i >= len then begin
      match state with
      | `Quoted ->
          fail ~line:!quote_line ~column:!quote_col "unterminated quoted field"
      | `Start when !fields = [] && Buffer.length buf = 0 -> ()  (* no final row *)
      | `Start | `Bare | `Closed -> push_row ()
    end
    else begin
      let c = s.[i] in
      match state, c with
      | `Quoted, '"' -> advance c; go (i + 1) `Closed
      | `Quoted, c -> Buffer.add_char buf c; advance c; go (i + 1) `Quoted
      | `Closed, '"' -> Buffer.add_char buf '"'; advance c; go (i + 1) `Quoted
      | (`Start | `Bare | `Closed), ',' ->
          push_field ();
          advance c;
          field_col := !col;
          go (i + 1) `Start
      | (`Start | `Bare | `Closed), '\n' ->
          push_row ();
          advance c;
          row_line := !line;
          field_col := !col;
          go (i + 1) `Start
      | (`Start | `Bare | `Closed), '\r' when i + 1 < len && s.[i + 1] = '\n' ->
          push_row ();
          advance '\n';
          row_line := !line;
          field_col := !col;
          go (i + 2) `Start
      | (`Start | `Bare | `Closed), '\r' ->
          fail ~line:!line ~column:!col
            "bare carriage return (CR not followed by LF)"
      | `Start, '"' ->
          quote_line := !line;
          quote_col := !col;
          advance c;
          go (i + 1) `Quoted
      | `Closed, _ ->
          fail ~line:!line ~column:!col "garbage after closing quote"
      | (`Start | `Bare), c -> Buffer.add_char buf c; advance c; go (i + 1) `Bare
    end
  in
  go 0 `Start;
  List.rev !rows

let parse_rows s =
  match rows_of_string s with
  | rows -> Ok rows
  | exception Parse_error e -> Error e

let report_of_row { start_line = line; fields } =
  match fields with
  | [ (idc, id); (_, title); (_, date); (catc, category); (_, software);
      (rangec, range); (flawc, flaw); (sync, synthetic);
      (_, elementary_activity); (_, description) ] -> (
      try
        let id =
          match int_of_string_opt id with
          | Some id -> id
          | None -> fail ~line ~column:idc ~field:id "bad id"
        in
        let category =
          match Category.of_string category with
          | Some c -> c
          | None -> fail ~line ~column:catc ~field:category "unknown category"
        in
        let range =
          match Report.range_of_string range with
          | Some r -> r
          | None -> fail ~line ~column:rangec ~field:range "unknown range"
        in
        let flaw =
          match Report.flaw_of_string flaw with
          | Some f -> f
          | None -> fail ~line ~column:flawc ~field:flaw "unknown flaw"
        in
        let synthetic =
          match bool_of_string_opt synthetic with
          | Some b -> b
          | None -> fail ~line ~column:sync ~field:synthetic "bad synthetic flag"
        in
        Ok
          (Report.make ~id ~title ~date ~category ~software ~range ~flaw
             ?elementary_activity:
               (if elementary_activity = "" then None
                else Some elementary_activity)
             ~description ~synthetic ())
      with Parse_error e -> Error e)
  | fields ->
      Error
        { line;
          column = 1;
          field = None;
          message =
            Printf.sprintf "ragged row: expected %d fields, got %d" field_count
              (List.length fields) }

let parse s =
  match parse_rows s with
  | Error e -> Error e
  | Ok [] ->
      Error { line = 1; column = 1; field = None; message = "empty input: missing header" }
  | Ok (hd :: rows) ->
      if String.concat "," (List.map (fun (_, f) -> escape f) hd.fields) <> header
      then
        Error
          { line = hd.start_line; column = 1; field = None; message = "bad header" }
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | row :: rest -> (
              match report_of_row row with
              | Ok r -> go (r :: acc) rest
              | Error e -> Error e)
        in
        go [] rows
