type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutable admitted : int;
  mutable shed : int;
}

let create ~capacity = { capacity = max 1 capacity; q = Queue.create (); admitted = 0; shed = 0 }

let capacity t = t.capacity

let depth t = Queue.length t.q

let admit t x =
  if Queue.length t.q >= t.capacity then begin
    t.shed <- t.shed + 1;
    `Shed
  end
  else begin
    Queue.add x t.q;
    t.admitted <- t.admitted + 1;
    `Admitted
  end

let drain t =
  let rec go acc =
    match Queue.take_opt t.q with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let admitted t = t.admitted

let shed t = t.shed
