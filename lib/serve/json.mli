(** A minimal JSON codec for the serve protocol.

    Just enough of RFC 8259 for request/response framing: objects,
    arrays, strings (with the standard escapes; [\uXXXX] above
    U+007F decodes to ['?'] — the protocol never carries non-ASCII
    payloads), integers, floats, booleans and null.  The printer is
    canonical — object fields print in construction order with no
    insignificant whitespace — so a value round-trips byte-identically,
    which the serve determinism contract relies on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** One JSON value; trailing garbage after it is an error. *)

val to_string : t -> string

(** {2 Accessors} — all total, [None] on kind mismatch. *)

val mem : string -> t -> t option
(** First binding of the field in an [Obj]. *)

val str : t -> string option

val int : t -> int option

val bool : t -> bool option

val field_str : string -> t -> string option

val field_int : string -> t -> int option

val field_bool : string -> t -> bool option

val escape : string -> string
(** The body of a JSON string literal (no surrounding quotes). *)
