(** The request loop: admission → supervision → pool → trace.

    {!run} pulls request lines from a source, admits work requests
    into the bounded {!Admission} queue (shedding with typed
    [overloaded] once it is full), and at every scheduling tick — a
    [flush] request, [shutdown], end of input — drains the queue as
    one batch onto the {!Par} domain pool.  Each batch request is
    supervised with the {!Resilience} primitives: a deterministic
    per-request retry schedule, a circuit {!Resilience.Breaker} per
    request {e class} (so a poison class trips without taking down
    the others — breakers persist across batches), per-attempt
    {!Resilience.Deadline} fuel inside the handler, and typed
    quarantine for crashes.  Every admitted request gets exactly one
    terminal response.

    Time is virtual: the clock ticks once per work-request arrival,
    once per attempt, by each backoff delay and by the fuel a
    handler spends — so per-request latency (completion minus
    admission) is a pure function of the request script, and the
    whole response stream (summary line included) is byte-identical
    at every [-j].

    Parallelism follows the {!Resilience.Supervisor} speculation
    pattern: first attempts of a batch run on the pool up front, the
    sequential replay consumes each result at the request's first
    invocation and owns every piece of shared state (clock,
    breakers, responses).  Speculation runs at every [-j] so traced
    spans land at the same coordinates for every job count; it is
    skipped under an active fault injector (its PRNG stream is
    order-sensitive). *)

type config = {
  capacity : int;      (** admission queue bound *)
  default_fuel : int;  (** per-attempt handler fuel unless the request says *)
  max_line : int;      (** oversized request lines get a typed error *)
  retry : Resilience.Retry.policy;
  breaker : Resilience.Breaker.config;
  seed : int;          (** mixed into each request's retry schedule *)
}

val default_config : config
(** capacity 16, fuel 64, max_line 65536, the default retry/breaker
    policies, seed 20021130. *)

type summary = {
  admitted : int;
  shed : int;
  completed : int;     (** [ok] responses *)
  errors : int;        (** [error] responses (rejected / malformed args) *)
  deadlined : int;     (** [deadline] responses *)
  quarantined : int;   (** [quarantined] responses *)
  malformed : int;     (** unparseable or oversized lines *)
  stats_served : int;
  batches : int;
  vt : int;            (** final virtual time *)
  drained : bool;      (** input ended via EOF/shutdown and the queue emptied *)
  latencies : int list;  (** completed-request latencies, completion order *)
  report : Resilience.Run_report.t;  (** one item per admitted request *)
  store : Store.Disk.stats option;
      (** this run's delta against the ambient persistent store, when
          the CLI installed one ([None] otherwise — the summary JSON
          then renders byte-identically to the store-less format) *)
  store_degraded : int;
      (** requests that hit store corruption or a failed store write
          during some attempt and completed by recompute instead;
          always 0 without a store.  Speculation is disabled while a
          store is installed so this accounting (and the store delta)
          is per-request well-defined and [-j]-independent. *)
}

val accounted : summary -> bool
(** Every admitted request got exactly one terminal response — the
    zero-lost-requests contract. *)

val percentile : int -> int list -> int
(** Nearest-rank percentile; 0 on the empty list. *)

val summary_to_json : summary -> string

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?config:config -> emit:(string -> unit) -> (unit -> string option) -> summary
(** Serve until the source returns [None] (EOF / interrupt) or a
    [shutdown] request arrives, then drain: process everything
    admitted, emit the summary as a final JSONL line, and return it.
    [emit] receives each response line (no trailing newline). *)

val run_script : ?config:config -> string list -> string list * summary
(** {!run} over an in-memory request script; returns the emitted
    lines (summary line last) and the summary. *)
