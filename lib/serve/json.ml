type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let error pos msg = raise (Bad (Printf.sprintf "at %d: %s" pos msg))

(* ---- parser ------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c.pos (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c.pos (Printf.sprintf "expected %s" word)

let hex_digit = function
  | '0' .. '9' as ch -> Char.code ch - Char.code '0'
  | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
  | _ -> -1

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        (match peek c with
         | Some '"' -> Buffer.add_char b '"'
         | Some '\\' -> Buffer.add_char b '\\'
         | Some '/' -> Buffer.add_char b '/'
         | Some 'b' -> Buffer.add_char b '\b'
         | Some 'f' -> Buffer.add_char b '\012'
         | Some 'n' -> Buffer.add_char b '\n'
         | Some 'r' -> Buffer.add_char b '\r'
         | Some 't' -> Buffer.add_char b '\t'
         | Some 'u' ->
             let code = ref 0 in
             for _ = 1 to 4 do
               advance c;
               match peek c with
               | Some ch when hex_digit ch >= 0 ->
                   code := (!code * 16) + hex_digit ch
               | _ -> error c.pos "bad \\u escape"
             done;
             Buffer.add_char b (if !code < 128 then Char.chr !code else '?')
         | _ -> error c.pos "bad escape");
        advance c;
        go ())
    | Some ch when Char.code ch < 0x20 -> error c.pos "control char in string"
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error start "bad number"
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> error start "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c.pos "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> error c.pos "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elems (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> error c.pos "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c.pos (Printf.sprintf "unexpected %C" ch)

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length src then Ok v
      else Error (Printf.sprintf "at %d: trailing garbage" c.pos)
  | exception Bad msg -> Error msg

(* ---- printer ------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | ch when Char.code ch < 0x20 ->
           Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
       | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int n -> string_of_int n
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.6g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | List xs -> "[" ^ String.concat ", " (List.map to_string xs) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_string v)
             fields)
      ^ "}"

(* ---- accessors ---------------------------------------------------- *)

let mem key = function Obj fields -> List.assoc_opt key fields | _ -> None

let str = function Str s -> Some s | _ -> None

let int = function Int n -> Some n | _ -> None

let bool = function Bool b -> Some b | _ -> None

let field_str key v = Option.bind (mem key v) str

let field_int key v = Option.bind (mem key v) int

let field_bool key v = Option.bind (mem key v) bool
