type work =
  | Lint of { target : string }
  | Analyze of { app : string }
  | Exploit of { app : string }
  | Chaos of { plan : string }
  | Boom of { mode : string; times : int }

let work_class = function
  | Lint _ -> "lint"
  | Analyze _ -> "analyze"
  | Exploit _ -> "exploit"
  | Chaos _ -> "chaos"
  | Boom _ -> "boom"

type request =
  | Work of { id : string; fuel : int option; work : work }
  | Stats of { id : string; full : bool }
  | Flush
  | Shutdown

let parse ~line_id line =
  match Json.parse line with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok json -> (
      let id = Option.value ~default:line_id (Json.field_str "id" json) in
      let required field k =
        match Json.field_str field json with
        | Some v -> k v
        | None -> Error (Printf.sprintf "missing field %S" field)
      in
      let work w = Ok (Work { id; fuel = Json.field_int "fuel" json; work = w }) in
      match Json.field_str "kind" json with
      | None -> Error "missing field \"kind\""
      | Some "lint" -> required "target" (fun target -> work (Lint { target }))
      | Some "analyze" -> required "app" (fun app -> work (Analyze { app }))
      | Some "exploit" -> required "app" (fun app -> work (Exploit { app }))
      | Some "chaos" -> required "plan" (fun plan -> work (Chaos { plan }))
      | Some "boom" ->
          let mode =
            Option.value ~default:"crash" (Json.field_str "mode" json)
          in
          let times = Option.value ~default:max_int (Json.field_int "times" json) in
          work (Boom { mode; times })
      | Some "stats" ->
          Ok
            (Stats
               { id;
                 full = Option.value ~default:false (Json.field_bool "full" json) })
      | Some "flush" -> Ok Flush
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown kind %S" other))

let request_id = function
  | Work { id; _ } | Stats { id; _ } -> Some id
  | Flush | Shutdown -> None

type status = Ok_ | Error_ | Deadline | Quarantined | Overloaded

let status_to_string = function
  | Ok_ -> "ok"
  | Error_ -> "error"
  | Deadline -> "deadline"
  | Quarantined -> "quarantined"
  | Overloaded -> "overloaded"

type response = {
  id : string;
  status : status;
  latency : int option;
  attempts : int option;
  body : (string * Json.t) list;
}

let ok ~id ~latency ~attempts result =
  { id; status = Ok_; latency = Some latency; attempts = Some attempts;
    body = [ ("result", result) ] }

let error ~id ?attempts detail =
  { id; status = Error_; latency = None; attempts;
    body = [ ("detail", Json.Str detail) ] }

let deadline ~id ?attempts ~spent () =
  { id; status = Deadline; latency = None; attempts;
    body = [ ("spent", Json.Int spent) ] }

let quarantined ~id ~attempts cause =
  { id; status = Quarantined; latency = None; attempts = Some attempts;
    body =
      [ ("cause", Json.Str (Resilience.Quarantine.cause_to_string cause)) ] }

let overloaded ~id ~depth ~capacity =
  { id; status = Overloaded; latency = None; attempts = None;
    body = [ ("queue", Json.Int depth); ("capacity", Json.Int capacity) ] }

let render r =
  let opt name = function
    | None -> []
    | Some n -> [ (name, Json.Int n) ]
  in
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str r.id);
          ("status", Json.Str (status_to_string r.status)) ]
        @ opt "latency" r.latency @ opt "attempts" r.attempts @ r.body))
