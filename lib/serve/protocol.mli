(** The serve wire protocol: JSONL request/response framing.

    One JSON object per line in each direction.  Every request
    carries a [kind] and an optional [id] (defaulted to ["line:N"]
    from the 1-based input line number, which is also the fallback
    id for lines that do not parse).  Work requests — [lint],
    [analyze], [exploit], [chaos], [boom] — enter the admission
    queue; control requests act immediately: [stats] is answered
    out-of-band even when the queue is full, [flush] is the
    scheduling tick that drains the queue onto the pool, [shutdown]
    begins the graceful drain.

    Every admitted work request receives exactly one response whose
    [status] is one of [ok] / [error] / [deadline] / [quarantined];
    a request shed at admission receives [overloaded]; an
    unparseable or oversized line receives [error].  The response
    stream for a given request script and seed is byte-identical at
    every [-j]. *)

type work =
  | Lint of { target : string }
      (** a {!Minic.Corpus} variant name, or ["corpus"] for the
          whole sweep *)
  | Analyze of { app : string }
  | Exploit of { app : string }
  | Chaos of { plan : string }  (** a {!Fault.Catalog} plan name *)
  | Boom of { mode : string; times : int }
      (** testing aid: [crash] raises, [reject] raises
          {!Resilience.Quarantine.Reject}, [fault] hits a simulated
          transient fault on the first [times] attempts *)

val work_class : work -> string
(** The request class — the circuit-breaker resource: ["lint"],
    ["analyze"], ["exploit"], ["chaos"] or ["boom"]. *)

type request =
  | Work of { id : string; fuel : int option; work : work }
  | Stats of { id : string; full : bool }
      (** [full] additionally embeds the {!Obs.Metrics} snapshot
          (whose gauge high-water marks may depend on scheduling, so
          byte-compare scripts leave it off) *)
  | Flush
  | Shutdown

val parse : line_id:string -> string -> (request, string) result
(** Parse one request line; [line_id] is the fallback id.  [Error]
    carries a human-readable reason (unknown kind, missing field,
    JSON syntax). *)

val request_id : request -> string option

type status = Ok_ | Error_ | Deadline | Quarantined | Overloaded

val status_to_string : status -> string

type response = {
  id : string;
  status : status;
  latency : int option;  (** virtual time from admission to completion *)
  attempts : int option;
  body : (string * Json.t) list;  (** status-specific payload fields *)
}

val ok : id:string -> latency:int -> attempts:int -> Json.t -> response

val error : id:string -> ?attempts:int -> string -> response

val deadline : id:string -> ?attempts:int -> spent:int -> unit -> response

val quarantined :
  id:string -> attempts:int -> Resilience.Quarantine.cause -> response

val overloaded : id:string -> depth:int -> capacity:int -> response

val render : response -> string
(** The response as one JSONL line (no trailing newline). *)
