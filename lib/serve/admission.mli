(** The bounded admission queue.

    Requests wait here between scheduling ticks.  Admission never
    buffers beyond [capacity]: once the queue is full, {!admit}
    answers [`Shed] and the caller must emit a typed [overloaded]
    rejection instead of queueing — load-shedding is part of the
    protocol, not an error path.  FIFO order is preserved by
    {!drain}, so the scheduler processes requests in arrival order
    and the response stream stays deterministic. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int

val depth : 'a t -> int

val admit : 'a t -> 'a -> [ `Admitted | `Shed ]

val drain : 'a t -> 'a list
(** Remove and return everything, oldest first. *)

val admitted : 'a t -> int
(** Total ever admitted. *)

val shed : 'a t -> int
(** Total ever shed. *)
