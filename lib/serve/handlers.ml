let reject fmt = Printf.ksprintf (fun s -> raise (Resilience.Quarantine.Reject s)) fmt

(* ---- the application registry ------------------------------------ *)

let apps = [ "sendmail"; "nullhttpd"; "xterm"; "rwall"; "iis"; "ghttpd"; "rpcstatd" ]

let model_of = function
  | "sendmail" -> Apps.Sendmail.model (Apps.Sendmail.setup ())
  | "nullhttpd" -> Apps.Nullhttpd.model (Apps.Nullhttpd.setup ())
  | "xterm" -> Apps.Xterm.model ()
  | "rwall" -> Apps.Rwall.model (Apps.Rwall.setup ())
  | "iis" -> Apps.Iis.model (Apps.Iis.setup ())
  | "ghttpd" -> Apps.Ghttpd.model (Apps.Ghttpd.setup ())
  | "rpcstatd" -> Apps.Rpc_statd.model (Apps.Rpc_statd.setup ())
  | other -> reject "unknown application: %s" other

let scenarios_of = function
  | "sendmail" ->
      let app = Apps.Sendmail.setup () in
      [ Apps.Sendmail.exploit_scenario app; Apps.Sendmail.benign_scenario ]
  | "nullhttpd" ->
      let app = Apps.Nullhttpd.setup () in
      let cl5774, body5774 = Exploit.Attack.nullhttpd_5774 app in
      let cl6255, body6255 = Exploit.Attack.nullhttpd_6255 app in
      [ Apps.Nullhttpd.scenario ~content_len:cl5774 ~body:body5774;
        Apps.Nullhttpd.scenario ~content_len:cl6255 ~body:body6255;
        Apps.Nullhttpd.benign_scenario ]
  | "xterm" -> [ Apps.Xterm.race_scenario; Apps.Xterm.benign_scenario ]
  | "rwall" -> [ Apps.Rwall.attack_scenario; Apps.Rwall.benign_scenario ]
  | "iis" ->
      [ Apps.Iis.scenario ~path:Exploit.Attack.iis_path;
        Apps.Iis.scenario ~path:Apps.Iis.benign_path ]
  | "ghttpd" ->
      let app = Apps.Ghttpd.setup () in
      [ Apps.Ghttpd.scenario ~request:(Exploit.Attack.ghttpd_request app);
        Apps.Ghttpd.benign_scenario ]
  | "rpcstatd" ->
      let app = Apps.Rpc_statd.setup () in
      [ Apps.Rpc_statd.scenario ~filename:(Exploit.Attack.rpc_statd_filename app);
        Apps.Rpc_statd.benign_scenario ]
  | other -> reject "unknown application: %s" other

(* Exploit.Driver groups are keyed by display name; requests use the
   CLI app names. *)
let row_group_of = function
  | "sendmail" -> "Sendmail #3163"
  | "nullhttpd" -> "NULL HTTPD"
  | "xterm" -> "xterm race"
  | "rwall" -> "Solaris rwall"
  | "iis" -> "IIS decode"
  | "ghttpd" -> "GHTTPD #5960"
  | "rpcstatd" -> "rpc.statd #1480"
  | other -> reject "unknown application: %s" other

(* ---- fuel --------------------------------------------------------- *)

type outcome =
  | Done of Json.t
  | Deadline_hit of { spent : int }

exception Out_of_fuel

(* ---- the handlers ------------------------------------------------- *)

let lint_result ~target reports =
  let findings =
    List.concat_map (fun r -> r.Staticcheck.Linter.findings) reports
  in
  let confirmed = List.filter Staticcheck.Finding.is_confirmed findings in
  Json.Obj
    [ ("target", Json.Str target);
      ("functions", Json.Int (List.length reports));
      ("findings", Json.Int (List.length findings));
      ("confirmed", Json.Int (List.length confirmed)) ]

let lint ~spend target =
  let config = Staticcheck.Linter.corpus_config in
  match target with
  | "corpus" ->
      let reports =
        List.map
          (fun (label, func) ->
             spend 1;
             Staticcheck.Linter.lint_cached ~config label func)
          Minic.Corpus.all
      in
      lint_result ~target reports
  | name -> (
      match List.assoc_opt name Minic.Corpus.all with
      | None -> reject "unknown corpus variant: %s" name
      | Some func ->
          spend 1;
          lint_result ~target [ Staticcheck.Linter.lint_cached ~config name func ])

let analyze ~spend app =
  let model = model_of app in
  let scenarios = scenarios_of app in
  List.iter (fun _ -> spend 1) scenarios;
  let report = Pfsm.Analysis.analyze ~memo:true model ~scenarios in
  Json.Obj
    [ ("app", Json.Str app);
      ("scenarios", Json.Int report.Pfsm.Analysis.scenarios_run);
      ("hidden",
       Json.List
         (List.filter_map
            (fun (f : Pfsm.Analysis.pfsm_finding) ->
               if f.hidden_hits = 0 then None
               else
                 Some
                   (Json.Obj
                      [ ("operation", Json.Str f.operation);
                        ("hits", Json.Int f.hidden_hits) ]))
            report.Pfsm.Analysis.findings)) ]

let exploit ~spend app =
  let group = row_group_of app in
  let rows_fn =
    match List.assoc_opt group Exploit.Driver.app_row_groups with
    | Some f -> f
    | None -> reject "unknown application: %s" app
  in
  spend 1;
  let rows = rows_fn () in
  List.iter (fun _ -> spend 1) rows;
  Json.Obj
    [ ("app", Json.Str app);
      ("rows", Json.Int (List.length rows));
      ("ok", Json.Bool (Exploit.Driver.rows_ok rows)) ]

let chaos ~spend plan_name =
  match Fault.Catalog.find plan_name with
  | None -> reject "unknown fault plan: %s" plan_name
  | Some plan ->
      let results, events =
        Fault.Hooks.run plan (fun () ->
            List.map
              (fun (app, entries) ->
                 spend 1;
                 let entries = entries () in
                 (app,
                  List.length entries,
                  List.length
                    (List.filter
                       (fun (e : Exploit.Consistency.entry) -> e.consistent)
                       entries)))
              Exploit.Consistency.app_groups)
      in
      let entries = List.fold_left (fun acc (_, n, _) -> acc + n) 0 results in
      let consistent =
        List.fold_left (fun acc (_, _, k) -> acc + k) 0 results
      in
      Json.Obj
        [ ("plan", Json.Str plan_name);
          ("benign", Json.Bool plan.Fault.Plan.benign);
          ("groups", Json.Int (List.length results));
          ("entries", Json.Int entries);
          ("consistent", Json.Int consistent);
          ("events", Json.Int (List.length events)) ]

let boom ~attempt ~spend mode times =
  spend 1;
  match mode with
  | "crash" -> failwith "boom: deliberate crash"
  | "reject" -> reject "boom: deliberate reject"
  | "fault" ->
      if attempt <= times then
        Fault.Condition.fail
          (Fault.Condition.Heap_exhausted { requested = attempt })
      else
        Json.Obj
          [ ("boom", Json.Str "survived"); ("attempt", Json.Int attempt) ]
  | other -> reject "unknown boom mode: %s" other

let run ~attempt ~fuel work =
  let d = Resilience.Deadline.of_fuel (max 1 fuel) in
  let spend n = if not (Resilience.Deadline.spend d n) then raise_notrace Out_of_fuel in
  match
    match (work : Protocol.work) with
    | Lint { target } -> lint ~spend target
    | Analyze { app } -> analyze ~spend app
    | Exploit { app } -> exploit ~spend app
    | Chaos { plan } -> chaos ~spend plan
    | Boom { mode; times } -> boom ~attempt ~spend mode times
  with
  | v -> (Done v, Resilience.Deadline.used d)
  | exception Out_of_fuel ->
      let spent = Resilience.Deadline.used d in
      (Deadline_hit { spent }, spent)
