(** Request bodies: what each work request actually runs.

    Every handler is deterministic — its result (and its fuel
    consumption) is a pure function of the request and the attempt
    number — so responses are byte-identical whether the work ran
    speculatively on a pool domain or inline in the scheduler's
    replay.

    Fuel: each attempt runs under its own {!Resilience.Deadline} of
    [fuel] units and spends them at defined points (one per corpus
    variant, scenario, exploit row, consistency group).  Exhaustion
    is a typed {!outcome}, not an exception — the scheduler maps it
    to a [deadline] response.  Bad arguments (an unknown app,
    variant or plan) raise {!Resilience.Quarantine.Reject};
    anything else that escapes is a crash and quarantines the
    request. *)

type outcome =
  | Done of Json.t
  | Deadline_hit of { spent : int }

val apps : string list
(** The application names accepted by [analyze] / [exploit]
    requests (the CLI's app list). *)

val model_of : string -> Pfsm.Model.t
(** @raise Resilience.Quarantine.Reject on an unknown name. *)

val scenarios_of : string -> Pfsm.Env.t list
(** The canned exploit + benign scenarios for an app.
    @raise Resilience.Quarantine.Reject on an unknown name. *)

val run : attempt:int -> fuel:int -> Protocol.work -> outcome * int
(** Execute one attempt of a work request under [fuel]; the [int] is
    the fuel actually spent (the scheduler advances virtual time by
    it). *)
